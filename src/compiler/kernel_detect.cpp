#include "compiler/kernel_detect.hpp"

#include "common/strings.hpp"

namespace dssoc::compiler {

std::vector<Region> detect_kernels(const Function& entry, const Trace& trace,
                                   const DetectionOptions& options) {
  DSSOC_REQUIRE(!entry.blocks.empty(), "cannot detect kernels in empty code");
  const auto entry_count_it = trace.block_counts.find(0);
  const double entry_count =
      entry_count_it == trace.block_counts.end()
          ? 1.0
          : static_cast<double>(entry_count_it->second);
  const double threshold = options.hot_ratio * std::max(entry_count, 1.0);

  auto is_hot = [&](int block) {
    const auto it = trace.block_counts.find(block);
    if (it == trace.block_counts.end()) {
      return false;
    }
    return static_cast<double>(it->second) >= threshold;
  };

  std::vector<Region> regions;
  int kernel_index = 0;
  int cold_index = 0;
  for (int block = 0; block < static_cast<int>(entry.blocks.size()); ++block) {
    const bool hot = is_hot(block);
    if (regions.empty() || regions.back().is_kernel != hot) {
      Region region;
      region.first_block = block;
      region.last_block = block;
      region.is_kernel = hot;
      region.name = hot ? cat("kernel_", kernel_index++)
                        : cat("region_", cold_index++);
      regions.push_back(std::move(region));
    } else {
      regions.back().last_block = block;
    }
    const auto it = trace.block_instructions.find(block);
    if (it != trace.block_instructions.end()) {
      regions.back().executed_instructions += it->second;
    }
  }
  return regions;
}

}  // namespace dssoc::compiler
