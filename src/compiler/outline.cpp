#include "compiler/outline.hpp"

#include <algorithm>
#include <set>

#include "common/strings.hpp"

namespace dssoc::compiler {

namespace {

struct InstrRegs {
  std::vector<Reg> uses;
  Reg def = -1;
};

InstrRegs instr_regs(const Instr& instr) {
  InstrRegs regs;
  switch (instr.op) {
    case Op::kConst:
      regs.def = instr.dst;
      break;
    case Op::kMov:
    case Op::kNeg:
    case Op::kSin:
    case Op::kCos:
    case Op::kSqrt:
    case Op::kFloor:
      regs.uses = {instr.a};
      regs.def = instr.dst;
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kCmpLt:
      regs.uses = {instr.a, instr.b};
      regs.def = instr.dst;
      break;
    case Op::kLoad:
      regs.uses = {instr.a};
      regs.def = instr.dst;
      break;
    case Op::kStore:
      regs.uses = {instr.a, instr.b};
      break;
    case Op::kAlloc:
    case Op::kCall:
      break;
  }
  return regs;
}

/// Which region (by index) each block belongs to.
std::vector<std::size_t> block_to_region(const Function& entry,
                                         const std::vector<Region>& regions) {
  std::vector<std::size_t> map(entry.blocks.size());
  int expected = 0;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    DSSOC_REQUIRE(regions[r].first_block == expected,
                  "regions do not tile the entry function");
    DSSOC_REQUIRE(regions[r].last_block >= regions[r].first_block,
                  "empty region");
    for (int b = regions[r].first_block; b <= regions[r].last_block; ++b) {
      map[static_cast<std::size_t>(b)] = r;
    }
    expected = regions[r].last_block + 1;
  }
  DSSOC_REQUIRE(expected == static_cast<int>(entry.blocks.size()),
                "regions do not cover the entry function");
  return map;
}

}  // namespace

OutlineResult outline_regions(const Module& module,
                              const std::vector<Region>& regions) {
  const Function& entry = module.function(module.entry);
  DSSOC_REQUIRE(!regions.empty(), "no regions to outline");
  const auto region_of = block_to_region(entry, regions);

  // Per-region def/use sets; "use before def inside region" -> live-in
  // candidate, "def inside region" -> live-out candidate.
  const std::size_t region_count = regions.size();
  std::vector<std::set<Reg>> defs(region_count);
  std::vector<std::set<Reg>> upward_uses(region_count);  // used before defined
  for (const BasicBlock& block : entry.blocks) {
    const std::size_t r = region_of[static_cast<std::size_t>(block.id)];
    for (const Instr& instr : block.instrs) {
      const InstrRegs touched = instr_regs(instr);
      for (const Reg use : touched.uses) {
        // Conservative: within loops a register may be used before its
        // straight-line def executes, so every use counts as upward-exposed.
        upward_uses[r].insert(use);
      }
      if (touched.def >= 0) {
        defs[r].insert(touched.def);
      }
    }
    if (block.term.kind == TermKind::kBranch) {
      upward_uses[r].insert(block.term.cond);
    }
  }

  // live-in(R): upward-used in R and defined in any earlier region.
  // live-out(R): defined in R and upward-used in any later region.
  std::vector<std::vector<Reg>> live_in(region_count);
  std::vector<std::vector<Reg>> live_out(region_count);
  for (std::size_t r = 0; r < region_count; ++r) {
    for (const Reg reg : upward_uses[r]) {
      for (std::size_t earlier = 0; earlier < r; ++earlier) {
        if (defs[earlier].count(reg)) {
          live_in[r].push_back(reg);
          break;
        }
      }
    }
    for (const Reg reg : defs[r]) {
      for (std::size_t later = r + 1; later < region_count; ++later) {
        if (upward_uses[later].count(reg)) {
          live_out[r].push_back(reg);
          break;
        }
      }
    }
  }

  OutlineResult result;
  result.module.globals = module.globals;
  result.module.globals.emplace_back(
      kSpillArray, static_cast<std::size_t>(std::max(entry.num_regs, 1)));
  result.module.entry = entry.name;
  // Copy the callee functions (the entry is rebuilt below).
  for (const auto& [name, function] : module.functions) {
    if (name != module.entry) {
      result.module.functions.emplace(name, function);
    }
  }

  // Build one function per region.
  for (std::size_t r = 0; r < region_count; ++r) {
    const Region& region = regions[r];
    Function outlined;
    outlined.name = region.name;
    outlined.num_regs = entry.num_regs;

    const int first = region.first_block;
    const int last = region.last_block;
    const int body_blocks = last - first + 1;
    const int prologue_id = 0;
    const int epilogue_id = body_blocks + 1;
    auto remap = [&](int old_id) { return old_id - first + 1; };

    // Prologue: load live-ins from the spill array.
    BasicBlock prologue;
    prologue.id = prologue_id;
    prologue.label = "prologue";
    for (const Reg reg : live_in[r]) {
      Instr slot{Op::kConst, outlined.num_regs, -1, -1,
                 static_cast<double>(reg), "", true};
      Instr load{Op::kLoad, reg, outlined.num_regs, -1, 0.0, kSpillArray,
                 true};
      outlined.num_regs += 1;
      prologue.instrs.push_back(slot);
      prologue.instrs.push_back(load);
    }
    prologue.term = {TermKind::kJump, -1, 1, -1};
    outlined.blocks.push_back(std::move(prologue));

    // Body: copy blocks, remap control flow; exits go to the epilogue.
    for (int b = first; b <= last; ++b) {
      BasicBlock block = entry.block(b);
      block.id = remap(b);
      Terminator& term = block.term;
      auto remap_target = [&](int target) {
        if (target >= first && target <= last) {
          return remap(target);
        }
        DSSOC_REQUIRE(target == last + 1,
                      cat("region \"", region.name,
                          "\" has a branch escaping to block ", target,
                          " (only fall-through to the next region is "
                          "outlineable)"));
        return epilogue_id;
      };
      switch (term.kind) {
        case TermKind::kJump:
          term.target = remap_target(term.target);
          break;
        case TermKind::kBranch:
          term.target = remap_target(term.target);
          term.else_target = remap_target(term.else_target);
          break;
        case TermKind::kRet:
          DSSOC_REQUIRE(r == region_count - 1,
                        "early return inside an inner region");
          term = {TermKind::kJump, -1, epilogue_id, -1};
          break;
      }
      outlined.blocks.push_back(std::move(block));
    }

    // Epilogue: store live-outs, return.
    BasicBlock epilogue;
    epilogue.id = epilogue_id;
    epilogue.label = "epilogue";
    for (const Reg reg : live_out[r]) {
      Instr slot{Op::kConst, outlined.num_regs, -1, -1,
                 static_cast<double>(reg), "", true};
      Instr store{Op::kStore, -1, outlined.num_regs, reg, 0.0, kSpillArray,
                  true};
      outlined.num_regs += 1;
      epilogue.instrs.push_back(slot);
      epilogue.instrs.push_back(store);
    }
    epilogue.term = {TermKind::kRet, -1, -1, -1};
    outlined.blocks.push_back(std::move(epilogue));

    result.module.functions.emplace(region.name, outlined);
    result.region_functions.push_back(region.name);
  }

  // New entry: the sequence of region calls.
  FunctionBuilder new_entry(entry.name);
  for (const std::string& name : result.region_functions) {
    new_entry.call(name);
  }
  new_entry.ret();
  result.module.functions.emplace(entry.name, new_entry.build());

  validate(result.module);
  return result;
}

}  // namespace dssoc::compiler
