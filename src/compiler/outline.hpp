// Region outlining (the CodeExtractor stage of Fig. 5): each detected
// region of the entry function becomes a standalone function. Registers that
// are live across region boundaries are spilled to a compiler-generated
// "__regs" global array; each outlined function loads its live-ins in a
// prologue and stores its live-outs in an epilogue. The new entry function
// is the sequence of region calls that recreates the original behaviour.
#pragma once

#include <vector>

#include "compiler/kernel_detect.hpp"
#include "compiler/ir.hpp"

namespace dssoc::compiler {

/// Name of the spill array shared by all outlined functions.
inline constexpr const char* kSpillArray = "__regs";

struct OutlineResult {
  Module module;  ///< new entry + one function per region
  /// Region-function names in execution order (parallel to the input
  /// regions vector).
  std::vector<std::string> region_functions;
};

/// Outlines every region of `module`'s entry function. Regions must tile the
/// entry function in layout order, and control flow may leave a region only
/// to the first block of the next region (which holds for structured
/// programs built with FunctionBuilder). Throws DssocError otherwise.
OutlineResult outline_regions(const Module& module,
                              const std::vector<Region>& regions);

}  // namespace dssoc::compiler
