#include "compiler/recognize.hpp"

#include <algorithm>
#include <cstring>

#include "common/strings.hpp"
#include "compiler/interp.hpp"
#include "compiler/kernel_detect.hpp"
#include "compiler/outline.hpp"
#include "compiler/radar_program.hpp"
#include "dsp/fft.hpp"
#include "platform/cost_model.hpp"

namespace dssoc::compiler {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix(std::uint64_t& hash, std::uint64_t value) {
  hash ^= value;
  hash *= kFnvPrime;
}

/// Dense id assigned on first use.
class Canonicalizer {
 public:
  std::uint64_t reg(Reg r) {
    if (r < 0) {
      return 0xFFFF;
    }
    const auto [it, inserted] = regs_.emplace(r, regs_.size());
    (void)inserted;
    return it->second;
  }
  std::uint64_t array(const std::string& name) {
    const auto [it, inserted] = arrays_.emplace(name, arrays_.size());
    (void)inserted;
    return it->second;
  }

 private:
  std::map<Reg, std::uint64_t> regs_;
  std::map<std::string, std::uint64_t> arrays_;
};

}  // namespace

StructuralHash hash_function(const Function& function) {
  std::uint64_t hash = kFnvOffset;
  Canonicalizer canon;
  for (const BasicBlock& block : function.blocks) {
    for (const Instr& instr : block.instrs) {
      if (instr.is_spill) {
        continue;
      }
      mix(hash, static_cast<std::uint64_t>(instr.op));
      mix(hash, canon.reg(instr.dst));
      mix(hash, canon.reg(instr.a));
      mix(hash, canon.reg(instr.b));
      if (!instr.array.empty()) {
        mix(hash, canon.array(instr.array) + 0x1000);
      }
      std::uint64_t imm_bits = 0;
      static_assert(sizeof(imm_bits) == sizeof(instr.imm));
      std::memcpy(&imm_bits, &instr.imm, sizeof(imm_bits));
      mix(hash, imm_bits);
    }
  }
  return hash;
}

void RecognitionLibrary::register_variant(StructuralHash hash,
                                          OptimizedVariant variant) {
  DSSOC_REQUIRE(variant.make_cpu != nullptr,
                "optimized variant needs a CPU factory");
  const bool inserted = variants_.emplace(hash, std::move(variant)).second;
  DSSOC_REQUIRE(inserted, "hash collision in recognition library");
}

const OptimizedVariant* RecognitionLibrary::match(StructuralHash hash) const {
  const auto it = variants_.find(hash);
  return it == variants_.end() ? nullptr : &it->second;
}

namespace {

std::size_t argument_index(core::KernelContext& ctx, const std::string& name) {
  const auto& args = ctx.node().arguments;
  const auto it = std::find(args.begin(), args.end(), name);
  DSSOC_REQUIRE(it != args.end(),
                cat("optimized kernel: node lacks argument \"", name, "\""));
  return static_cast<std::size_t>(it - args.begin());
}

std::vector<dsp::cfloat> gather(core::KernelContext& ctx,
                                const std::string& re_name,
                                const std::string& im_name) {
  const auto re = ctx.buffer<double>(argument_index(ctx, re_name));
  const auto im = ctx.buffer<double>(argument_index(ctx, im_name));
  DSSOC_REQUIRE(re.size() == im.size(), "re/im array size mismatch");
  std::vector<dsp::cfloat> out(re.size());
  for (std::size_t i = 0; i < re.size(); ++i) {
    out[i] = dsp::cfloat(static_cast<float>(re[i]),
                         static_cast<float>(im[i]));
  }
  return out;
}

void scatter(core::KernelContext& ctx, const std::string& re_name,
             const std::string& im_name,
             const std::vector<dsp::cfloat>& data) {
  const auto re = ctx.buffer<double>(argument_index(ctx, re_name));
  const auto im = ctx.buffer<double>(argument_index(ctx, im_name));
  DSSOC_REQUIRE(re.size() >= data.size() && im.size() >= data.size(),
                "output arrays too small");
  for (std::size_t i = 0; i < data.size(); ++i) {
    re[i] = static_cast<double>(data[i].real());
    im[i] = static_cast<double>(data[i].imag());
  }
}

/// Compiles a canonical micro-program through the real pipeline stages and
/// returns the structural hash of its *last* detected kernel.
StructuralHash canonical_kernel_hash(
    const std::function<void(FunctionBuilder&)>& emit_program) {
  FunctionBuilder fb("main");
  emit_program(fb);
  fb.ret();
  Module module;
  module.entry = "main";
  module.functions.emplace("main", fb.build());
  validate(module);

  OwningMemory memory;
  const Trace trace = trace_execution(module, memory);
  const auto regions =
      detect_kernels(module.function("main"), trace, DetectionOptions{});
  const OutlineResult outlined = outline_regions(module, regions);
  // Last kernel region is the loop nest of interest.
  const Region* last_kernel = nullptr;
  for (const Region& region : regions) {
    if (region.is_kernel) {
      last_kernel = &region;
    }
  }
  DSSOC_REQUIRE(last_kernel != nullptr, "canonical program has no kernel");
  return hash_function(outlined.module.function(last_kernel->name));
}

core::CostAnnotation fft_cost(std::size_t n, bool inverse) {
  core::CostAnnotation cost;
  cost.kernel = inverse ? "ifft" : "fft";
  cost.units = platform::fft_units(n);
  cost.samples = static_cast<double>(n);
  return cost;
}

}  // namespace

RecognitionLibrary RecognitionLibrary::standard() {
  RecognitionLibrary library;
  constexpr std::size_t kCanonN = 16;

  // Canonical micro-program: cold setup + one fill loop + the naive DFT.
  const StructuralHash dft_hash = canonical_kernel_hash([](FunctionBuilder& fb) {
    for (const char* array : {"c_in_re", "c_in_im", "c_out_re", "c_out_im"}) {
      fb.alloc(array, kCanonN);
    }
    const Reg n = fb.constant(static_cast<double>(kCanonN));
    const Reg zero = fb.constant(0.0);
    fb.for_loop(zero, n, [&](FunctionBuilder& b, Reg i) {
      b.store("c_in_re", i, b.sin(i));
      b.store("c_in_im", i, b.cos(i));
    });
    emit_naive_dft(fb, n, "c_in_re", "c_in_im", "c_out_re", "c_out_im");
  });

  OptimizedVariant dft_variant;
  dft_variant.name = "library_fft";
  dft_variant.make_cpu = [](const std::vector<std::string>& arrays) {
    DSSOC_REQUIRE(arrays.size() == 4, "DFT variant expects 4 arrays");
    return [arrays](core::KernelContext& ctx) {
      auto data = gather(ctx, arrays[0], arrays[1]);
      if (dsp::is_power_of_two(data.size())) {
        dsp::fft(data);
      } else {
        data = dsp::dft(data);
      }
      scatter(ctx, arrays[2], arrays[3], data);
    };
  };
  dft_variant.make_accel = [](const std::vector<std::string>& arrays) {
    DSSOC_REQUIRE(arrays.size() == 4, "DFT variant expects 4 arrays");
    return [arrays](core::KernelContext& ctx) {
      core::AcceleratorPort* accel = ctx.accelerator();
      DSSOC_REQUIRE(accel != nullptr, "accel variant without a device");
      auto data = gather(ctx, arrays[0], arrays[1]);
      accel->fft(data, /*inverse=*/false);
      scatter(ctx, arrays[2], arrays[3], data);
    };
  };
  dft_variant.make_cost = [](std::size_t n) { return fft_cost(n, false); };
  library.register_variant(dft_hash, std::move(dft_variant));

  // Canonical fused IDFT-of-product.
  const StructuralHash idft_hash =
      canonical_kernel_hash([](FunctionBuilder& fb) {
        for (const char* array : {"c_a_re", "c_a_im", "c_b_re", "c_b_im",
                                  "c_o_re", "c_o_im"}) {
          fb.alloc(array, kCanonN);
        }
        const Reg n = fb.constant(static_cast<double>(kCanonN));
        const Reg zero = fb.constant(0.0);
        fb.for_loop(zero, n, [&](FunctionBuilder& b, Reg i) {
          b.store("c_a_re", i, b.sin(i));
          b.store("c_a_im", i, b.cos(i));
          b.store("c_b_re", i, b.cos(i));
          b.store("c_b_im", i, b.sin(i));
        });
        emit_idft_product(fb, n, "c_a_re", "c_a_im", "c_b_re", "c_b_im",
                          "c_o_re", "c_o_im");
      });

  OptimizedVariant idft_variant;
  idft_variant.name = "library_ifft_product";
  idft_variant.make_cpu = [](const std::vector<std::string>& arrays) {
    DSSOC_REQUIRE(arrays.size() == 6, "IDFT variant expects 6 arrays");
    return [arrays](core::KernelContext& ctx) {
      const auto a = gather(ctx, arrays[0], arrays[1]);
      const auto b = gather(ctx, arrays[2], arrays[3]);
      std::vector<dsp::cfloat> product(a.size());
      dsp::multiply_conj(a, b, product);
      if (dsp::is_power_of_two(product.size())) {
        dsp::ifft(product);
      } else {
        product = dsp::idft(product);
      }
      scatter(ctx, arrays[4], arrays[5], product);
    };
  };
  idft_variant.make_accel = [](const std::vector<std::string>& arrays) {
    DSSOC_REQUIRE(arrays.size() == 6, "IDFT variant expects 6 arrays");
    return [arrays](core::KernelContext& ctx) {
      core::AcceleratorPort* accel = ctx.accelerator();
      DSSOC_REQUIRE(accel != nullptr, "accel variant without a device");
      const auto a = gather(ctx, arrays[0], arrays[1]);
      const auto b = gather(ctx, arrays[2], arrays[3]);
      std::vector<dsp::cfloat> product(a.size());
      dsp::multiply_conj(a, b, product);
      accel->fft(product, /*inverse=*/true);
      scatter(ctx, arrays[4], arrays[5], product);
    };
  };
  idft_variant.make_cost = [](std::size_t n) { return fft_cost(n, true); };
  library.register_variant(idft_hash, std::move(idft_variant));

  return library;
}

}  // namespace dssoc::compiler
