// The monolithic, unlabeled range-detection program of case study 4,
// written in the mini-IR exactly as naive C would compile: six hot loops
// (waveform generation, echo synthesis, two O(n^2) DFTs, one fused
// conjugate-multiply IDFT, and a magnitude/output loop) separated by cold
// straight-line setup code.
#pragma once

#include <cstddef>

#include "compiler/ir.hpp"

namespace dssoc::compiler {

struct RangeProgramParams {
  std::size_t n = 256;        ///< sample count (any size; DFT is O(n^2))
  std::size_t delay = 37;     ///< planted echo delay
  double chirp_rate = 0.02;   ///< quadratic phase coefficient
};

/// Builds the monolithic program. Arrays created by the program:
/// lfm_re/lfm_im, rx_re/rx_im, X1_re/X1_im, X2_re/X2_im, corr_re/corr_im,
/// mag — all of length n.
Module build_monolithic_range_detection(const RangeProgramParams& params = {});

/// Emits the canonical naive-DFT loop nest into `fb`:
///   for k < n: out[k] = sum_t in[t] * e^(-2*pi*i*k*t/n)
/// with separate re/im arrays. Shared between the monolithic program and the
/// recognition library so structural hashes match by construction.
void emit_naive_dft(FunctionBuilder& fb, Reg n, const std::string& in_re,
                    const std::string& in_im, const std::string& out_re,
                    const std::string& out_im);

/// Emits the canonical fused IDFT-of-product loop nest:
///   for k < n: out[k] = (1/n) * sum_t (a[t] * conj(b[t])) * e^(+2*pi*i*k*t/n)
void emit_idft_product(FunctionBuilder& fb, Reg n, const std::string& a_re,
                       const std::string& a_im, const std::string& b_re,
                       const std::string& b_im, const std::string& out_re,
                       const std::string& out_im);

}  // namespace dssoc::compiler
