#include "compiler/radar_program.hpp"

#include <numbers>

namespace dssoc::compiler {

void emit_naive_dft(FunctionBuilder& fb, Reg n, const std::string& in_re,
                    const std::string& in_im, const std::string& out_re,
                    const std::string& out_im) {
  const Reg zero = fb.constant(0.0);
  const Reg two_pi = fb.constant(2.0 * std::numbers::pi);
  const Reg step = fb.div(two_pi, n);  // 2*pi/n
  fb.for_loop(zero, n, [&](FunctionBuilder& b, Reg k) {
    const Reg acc_re = b.mov(zero);
    const Reg acc_im = b.mov(zero);
    const Reg k_step = b.mul(k, step);
    b.for_loop(zero, n, [&](FunctionBuilder& bb, Reg t) {
      const Reg angle = bb.neg(bb.mul(k_step, t));
      const Reg c = bb.cos(angle);
      const Reg s = bb.sin(angle);
      const Reg xr = bb.load(in_re, t);
      const Reg xi = bb.load(in_im, t);
      // (xr + j xi) * (c + j s)
      const Reg re = bb.sub(bb.mul(xr, c), bb.mul(xi, s));
      const Reg im = bb.add(bb.mul(xr, s), bb.mul(xi, c));
      bb.assign(acc_re, bb.add(acc_re, re));
      bb.assign(acc_im, bb.add(acc_im, im));
    });
    b.store(out_re, k, acc_re);
    b.store(out_im, k, acc_im);
  });
}

void emit_idft_product(FunctionBuilder& fb, Reg n, const std::string& a_re,
                       const std::string& a_im, const std::string& b_re,
                       const std::string& b_im, const std::string& out_re,
                       const std::string& out_im) {
  const Reg zero = fb.constant(0.0);
  const Reg two_pi = fb.constant(2.0 * std::numbers::pi);
  const Reg step = fb.div(two_pi, n);
  fb.for_loop(zero, n, [&](FunctionBuilder& b, Reg k) {
    const Reg acc_re = b.mov(zero);
    const Reg acc_im = b.mov(zero);
    const Reg k_step = b.mul(k, step);
    b.for_loop(zero, n, [&](FunctionBuilder& bb, Reg t) {
      // p = a[t] * conj(b[t]) — the naive code recomputes it every k.
      const Reg ar = bb.load(a_re, t);
      const Reg ai = bb.load(a_im, t);
      const Reg br = bb.load(b_re, t);
      const Reg bi = bb.load(b_im, t);
      const Reg pr = bb.add(bb.mul(ar, br), bb.mul(ai, bi));
      const Reg pi = bb.sub(bb.mul(ai, br), bb.mul(ar, bi));
      const Reg angle = bb.mul(k_step, t);  // +2*pi*k*t/n (inverse)
      const Reg c = bb.cos(angle);
      const Reg s = bb.sin(angle);
      const Reg re = bb.sub(bb.mul(pr, c), bb.mul(pi, s));
      const Reg im = bb.add(bb.mul(pr, s), bb.mul(pi, c));
      bb.assign(acc_re, bb.add(acc_re, re));
      bb.assign(acc_im, bb.add(acc_im, im));
    });
    b.store(out_re, k, b.div(acc_re, n));
    b.store(out_im, k, b.div(acc_im, n));
  });
}

Module build_monolithic_range_detection(const RangeProgramParams& params) {
  FunctionBuilder fb("main");
  const double n_value = static_cast<double>(params.n);

  // Cold setup: allocations and parameters (the "not a kernel" glue).
  for (const char* array :
       {"lfm_re", "lfm_im", "rx_re", "rx_im", "X1_re", "X1_im", "X2_re",
        "X2_im", "corr_re", "corr_im", "mag"}) {
    fb.alloc(array, params.n);
  }
  const Reg n = fb.constant(n_value);
  const Reg zero = fb.constant(0.0);
  const Reg rate = fb.constant(params.chirp_rate);
  const Reg delay = fb.constant(static_cast<double>(params.delay));
  const Reg amplitude = fb.constant(0.8);

  // Kernel 1 (file-I/O-like): generate the LFM waveform.
  fb.for_loop(zero, n, [&](FunctionBuilder& b, Reg i) {
    const Reg centered = b.sub(i, b.div(n, b.constant(2.0)));
    const Reg phase = b.mul(rate, b.mul(centered, centered));
    b.store("lfm_re", i, b.cos(phase));
    b.store("lfm_im", i, b.sin(phase));
  });

  // Kernel 2 (file-I/O-like): synthesize the delayed echo (cyclic).
  fb.for_loop(zero, n, [&](FunctionBuilder& b, Reg i) {
    const Reg shifted = b.add(i, delay);
    const Reg wrapped = b.sub(shifted, b.mul(b.floor(b.div(shifted, n)), n));
    b.store("rx_re", wrapped, b.mul(amplitude, b.load("lfm_re", i)));
    b.store("rx_im", wrapped, b.mul(amplitude, b.load("lfm_im", i)));
  });

  // Kernels 3 and 4: naive DFTs of the received and reference signals.
  emit_naive_dft(fb, n, "rx_re", "rx_im", "X1_re", "X1_im");
  emit_naive_dft(fb, n, "lfm_re", "lfm_im", "X2_re", "X2_im");

  // Kernel 5: fused conjugate-multiply + inverse DFT (the correlation).
  emit_idft_product(fb, n, "X1_re", "X1_im", "X2_re", "X2_im", "corr_re",
                    "corr_im");

  // Kernel 6 (file-I/O-like): magnitude output.
  fb.for_loop(zero, n, [&](FunctionBuilder& b, Reg k) {
    const Reg re = b.load("corr_re", k);
    const Reg im = b.load("corr_im", k);
    b.store("mag", k, b.sqrt(b.add(b.mul(re, re), b.mul(im, im))));
  });

  fb.ret();

  Module module;
  module.entry = "main";
  module.functions.emplace("main", fb.build());
  validate(module);
  return module;
}

}  // namespace dssoc::compiler
