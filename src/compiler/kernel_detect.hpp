// Trace-based kernel detection (the TraceAtlas stage of Fig. 5): basic
// blocks whose dynamic execution count dwarfs the function entry's count are
// "hot"; maximal contiguous runs of hot blocks become kernels, the gaps
// become non-kernels.
#pragma once

#include <string>
#include <vector>

#include "compiler/interp.hpp"
#include "compiler/ir.hpp"

namespace dssoc::compiler {

struct Region {
  std::string name;
  int first_block = 0;
  int last_block = 0;  ///< inclusive
  bool is_kernel = false;
  /// Dynamically executed instructions attributed to this region.
  std::size_t executed_instructions = 0;

  bool contains(int block) const {
    return block >= first_block && block <= last_block;
  }
};

struct DetectionOptions {
  /// A block is hot when its execution count is at least hot_ratio times the
  /// entry block's count.
  double hot_ratio = 8.0;
};

/// Partitions the entry function's blocks (in layout order) into alternating
/// kernel / non-kernel regions. Every block belongs to exactly one region;
/// unexecuted blocks count as cold.
std::vector<Region> detect_kernels(const Function& entry, const Trace& trace,
                                   const DetectionOptions& options = {});

}  // namespace dssoc::compiler
