#include "compiler/ir.hpp"

#include "common/strings.hpp"

namespace dssoc::compiler {

const Function& Module::function(const std::string& name) const {
  const auto it = functions.find(name);
  DSSOC_REQUIRE(it != functions.end(),
                cat("IR module has no function \"", name, "\""));
  return it->second;
}

Function& Module::function(const std::string& name) {
  const auto it = functions.find(name);
  DSSOC_REQUIRE(it != functions.end(),
                cat("IR module has no function \"", name, "\""));
  return it->second;
}

namespace {
void validate_function(const Function& function) {
  DSSOC_REQUIRE(!function.blocks.empty(),
                cat("function \"", function.name, "\" has no blocks"));
  const int block_count = static_cast<int>(function.blocks.size());
  for (int i = 0; i < block_count; ++i) {
    const BasicBlock& block = function.blocks[static_cast<std::size_t>(i)];
    DSSOC_REQUIRE(block.id == i,
                  cat("block ids not dense in \"", function.name, "\""));
    auto check_reg = [&](Reg reg, bool allow_unset) {
      if (reg < 0) {
        DSSOC_REQUIRE(allow_unset, cat("unset register in \"", function.name,
                                       "\" block ", i));
        return;
      }
      DSSOC_REQUIRE(reg < function.num_regs,
                    cat("register r", reg, " out of range in \"",
                        function.name, "\""));
    };
    for (const Instr& instr : block.instrs) {
      switch (instr.op) {
        case Op::kConst:
          check_reg(instr.dst, false);
          break;
        case Op::kMov:
        case Op::kNeg:
        case Op::kSin:
        case Op::kCos:
        case Op::kSqrt:
        case Op::kFloor:
          check_reg(instr.dst, false);
          check_reg(instr.a, false);
          break;
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kDiv:
        case Op::kCmpLt:
          check_reg(instr.dst, false);
          check_reg(instr.a, false);
          check_reg(instr.b, false);
          break;
        case Op::kLoad:
          check_reg(instr.dst, false);
          check_reg(instr.a, false);
          DSSOC_REQUIRE(!instr.array.empty(), "load without array");
          break;
        case Op::kStore:
          check_reg(instr.a, false);
          check_reg(instr.b, false);
          DSSOC_REQUIRE(!instr.array.empty(), "store without array");
          break;
        case Op::kAlloc:
          DSSOC_REQUIRE(!instr.array.empty(), "alloc without array");
          DSSOC_REQUIRE(instr.imm >= 1.0, "alloc of empty array");
          break;
        case Op::kCall:
          DSSOC_REQUIRE(!instr.array.empty(), "call without callee");
          break;
      }
    }
    auto check_target = [&](int target) {
      DSSOC_REQUIRE(target >= 0 && target < block_count,
                    cat("branch target ", target, " out of range in \"",
                        function.name, "\""));
    };
    switch (block.term.kind) {
      case TermKind::kJump:
        check_target(block.term.target);
        break;
      case TermKind::kBranch:
        check_reg(block.term.cond, false);
        check_target(block.term.target);
        check_target(block.term.else_target);
        break;
      case TermKind::kRet:
        break;
    }
  }
}
}  // namespace

void validate(const Module& module) {
  DSSOC_REQUIRE(module.has_function(module.entry),
                cat("module entry \"", module.entry, "\" not defined"));
  for (const auto& [name, function] : module.functions) {
    validate_function(function);
    for (const BasicBlock& block : function.blocks) {
      for (const Instr& instr : block.instrs) {
        if (instr.op == Op::kCall) {
          DSSOC_REQUIRE(module.has_function(instr.array),
                        cat("call to undefined function \"", instr.array,
                            "\""));
        }
      }
    }
  }
}

std::size_t instruction_count(const Function& function) {
  std::size_t count = 0;
  for (const BasicBlock& block : function.blocks) {
    count += block.instrs.size();
  }
  return count;
}

// ---------------------------------------------------------------------------
// FunctionBuilder

FunctionBuilder::FunctionBuilder(std::string name) {
  function_.name = std::move(name);
  current_ = new_block("entry");
}

Reg FunctionBuilder::fresh() { return function_.num_regs++; }

Instr& FunctionBuilder::emit(Instr instr) {
  DSSOC_ASSERT(!finished_);
  DSSOC_ASSERT(current_ >= 0);
  auto& instrs =
      function_.blocks[static_cast<std::size_t>(current_)].instrs;
  instrs.push_back(std::move(instr));
  return instrs.back();
}

Reg FunctionBuilder::constant(double value) {
  const Reg dst = fresh();
  emit({Op::kConst, dst, -1, -1, value, "", false});
  return dst;
}

namespace {
Instr unary(Op op, Reg dst, Reg a) { return {op, dst, a, -1, 0.0, "", false}; }
Instr binary(Op op, Reg dst, Reg a, Reg b) {
  return {op, dst, a, b, 0.0, "", false};
}
}  // namespace

Reg FunctionBuilder::mov(Reg a) {
  const Reg dst = fresh();
  emit(unary(Op::kMov, dst, a));
  return dst;
}
Reg FunctionBuilder::add(Reg a, Reg b) {
  const Reg dst = fresh();
  emit(binary(Op::kAdd, dst, a, b));
  return dst;
}
Reg FunctionBuilder::sub(Reg a, Reg b) {
  const Reg dst = fresh();
  emit(binary(Op::kSub, dst, a, b));
  return dst;
}
Reg FunctionBuilder::mul(Reg a, Reg b) {
  const Reg dst = fresh();
  emit(binary(Op::kMul, dst, a, b));
  return dst;
}
Reg FunctionBuilder::div(Reg a, Reg b) {
  const Reg dst = fresh();
  emit(binary(Op::kDiv, dst, a, b));
  return dst;
}
Reg FunctionBuilder::neg(Reg a) {
  const Reg dst = fresh();
  emit(unary(Op::kNeg, dst, a));
  return dst;
}
Reg FunctionBuilder::sin(Reg a) {
  const Reg dst = fresh();
  emit(unary(Op::kSin, dst, a));
  return dst;
}
Reg FunctionBuilder::cos(Reg a) {
  const Reg dst = fresh();
  emit(unary(Op::kCos, dst, a));
  return dst;
}
Reg FunctionBuilder::sqrt(Reg a) {
  const Reg dst = fresh();
  emit(unary(Op::kSqrt, dst, a));
  return dst;
}
Reg FunctionBuilder::floor(Reg a) {
  const Reg dst = fresh();
  emit(unary(Op::kFloor, dst, a));
  return dst;
}
Reg FunctionBuilder::cmp_lt(Reg a, Reg b) {
  const Reg dst = fresh();
  emit(binary(Op::kCmpLt, dst, a, b));
  return dst;
}

Reg FunctionBuilder::load(const std::string& array, Reg index) {
  const Reg dst = fresh();
  emit({Op::kLoad, dst, index, -1, 0.0, array, false});
  return dst;
}

void FunctionBuilder::store(const std::string& array, Reg index, Reg value) {
  emit({Op::kStore, -1, index, value, 0.0, array, false});
}

void FunctionBuilder::alloc(const std::string& array, std::size_t size) {
  emit({Op::kAlloc, -1, -1, -1, static_cast<double>(size), array, false});
}

void FunctionBuilder::call(const std::string& callee) {
  emit({Op::kCall, -1, -1, -1, 0.0, callee, false});
}

int FunctionBuilder::new_block(const std::string& label) {
  BasicBlock block;
  block.id = static_cast<int>(function_.blocks.size());
  block.label = label;
  function_.blocks.push_back(std::move(block));
  return function_.blocks.back().id;
}

void FunctionBuilder::switch_to(int block) {
  DSSOC_ASSERT(block >= 0 &&
               static_cast<std::size_t>(block) < function_.blocks.size());
  current_ = block;
}

void FunctionBuilder::jump(int target) {
  function_.blocks[static_cast<std::size_t>(current_)].term = {
      TermKind::kJump, -1, target, -1};
}

void FunctionBuilder::branch(Reg cond, int taken, int not_taken) {
  function_.blocks[static_cast<std::size_t>(current_)].term = {
      TermKind::kBranch, cond, taken, not_taken};
}

void FunctionBuilder::ret() {
  function_.blocks[static_cast<std::size_t>(current_)].term = {
      TermKind::kRet, -1, -1, -1};
}

void FunctionBuilder::assign(Reg dst, Reg src) {
  emit(unary(Op::kMov, dst, src));
}

void FunctionBuilder::for_loop(
    Reg begin, Reg end,
    const std::function<void(FunctionBuilder&, Reg)>& body) {
  // i lives in its own register, initialized in the current block. The exit
  // block is created only after the body ran, so all blocks the body creates
  // (e.g. nested loops) keep ids inside [header, exit) — kernel detection
  // relies on hot regions being contiguous in layout order.
  const Reg i = mov(begin);
  const int header = new_block("loop_header");
  jump(header);

  const int body_block = new_block("loop_body");
  switch_to(body_block);
  body(*this, i);
  const Reg one = constant(1.0);
  const Reg next = add(i, one);
  assign(i, next);
  jump(header);

  const int exit_block = new_block("loop_exit");
  switch_to(header);
  const Reg cond = cmp_lt(i, end);
  branch(cond, body_block, exit_block);
  switch_to(exit_block);
}

Function FunctionBuilder::build() {
  DSSOC_ASSERT(!finished_);
  finished_ = true;
  return std::move(function_);
}

}  // namespace dssoc::compiler
