#include "compiler/dag_emit.hpp"

#include <algorithm>
#include <map>

#include "common/strings.hpp"

namespace dssoc::compiler {

namespace {

/// Arrays a region function touches, in first-use order (spill array
/// excluded — it is prepended explicitly as argument 0).
std::vector<std::string> touched_arrays(const Function& function) {
  std::vector<std::string> arrays;
  auto touch = [&](const std::string& name) {
    if (name == kSpillArray || name.empty()) {
      return;
    }
    if (std::find(arrays.begin(), arrays.end(), name) == arrays.end()) {
      arrays.push_back(name);
    }
  };
  for (const BasicBlock& block : function.blocks) {
    for (const Instr& instr : block.instrs) {
      if (instr.op == Op::kLoad || instr.op == Op::kStore ||
          instr.op == Op::kAlloc) {
        touch(instr.array);
      }
    }
  }
  return arrays;
}

}  // namespace

EmitResult emit_dag(const std::string& app_name,
                    std::shared_ptr<const Module> outlined,
                    const std::vector<Region>& regions, const Trace& trace,
                    core::SharedObjectRegistry& registry) {
  DSSOC_REQUIRE(outlined != nullptr, "emit_dag needs an outlined module");
  const std::string object_name = app_name + ".so";

  // Memory analysis: array name -> element count, from the module globals
  // (includes the spill array) plus dynamically observed allocations.
  std::map<std::string, std::size_t> arrays;
  for (const auto& [name, size] : outlined->globals) {
    arrays[name] = std::max(arrays[name], size);
  }
  for (const auto& [name, size] : trace.allocations) {
    arrays[name] = std::max(arrays[name], size);
  }

  core::AppBuilder builder(app_name, object_name);
  for (const auto& [name, size] : arrays) {
    builder.buffer(name, size * sizeof(double));
  }

  core::SharedObject object(object_name);
  EmitResult result;

  std::string previous;
  for (const Region& region : regions) {
    const Function& fn = outlined->function(region.name);
    const std::vector<std::string> region_arrays = touched_arrays(fn);
    result.region_arrays.push_back(region_arrays);

    std::vector<std::string> arguments;
    arguments.push_back(kSpillArray);
    arguments.insert(arguments.end(), region_arrays.begin(),
                     region_arrays.end());

    const std::string runfunc = "run_" + region.name;
    // The generated kernel interprets the outlined function against the
    // application instance's buffers.
    const std::string fn_name = region.name;
    auto kernel = [outlined, fn_name,
                   arguments](core::KernelContext& ctx) {
      BoundMemory memory;
      for (std::size_t i = 0; i < arguments.size(); ++i) {
        memory.bind(arguments[i], ctx.buffer<double>(i));
      }
      execute_function(*outlined, fn_name, memory);
    };
    object.add_symbol(runfunc, std::move(kernel));

    core::CostAnnotation cost;
    cost.kernel = "ir_ops";
    cost.units = static_cast<double>(region.executed_instructions);

    std::vector<core::PlatformOption> platforms = {
        {"cpu", runfunc, ""}, {"big", runfunc, ""}, {"little", runfunc, ""}};
    std::vector<std::string> predecessors;
    if (!previous.empty()) {
      predecessors.push_back(previous);
    }
    builder.node(region.name, arguments, predecessors, std::move(platforms),
                 cost);
    previous = region.name;
  }

  registry.register_object(std::move(object));
  result.model = builder.build();
  result.shared_object_name = object_name;
  return result;
}

}  // namespace dssoc::compiler
