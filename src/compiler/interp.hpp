// IR interpreter and dynamic tracer — the TraceAtlas substitute: executing
// an instrumented program yields a runtime trace of basic-block entries and
// memory allocations, which kernel detection and memory analysis consume.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "compiler/ir.hpp"

namespace dssoc::compiler {

/// Abstract program memory: named f64 arrays. The standalone interpreter
/// owns its arrays; the emitted DAG kernels bind array names to application
/// heap blocks instead.
class MemoryStore {
 public:
  virtual ~MemoryStore() = default;
  /// Returns the array, creating it zero-filled if `create_size` > 0 and it
  /// does not exist. Throws DssocError for unknown arrays otherwise.
  virtual std::span<double> array(const std::string& name) = 0;
  virtual void alloc(const std::string& name, std::size_t size) = 0;
  virtual bool has_array(const std::string& name) const = 0;
};

/// Heap-owning store used by standalone execution and tracing.
class OwningMemory final : public MemoryStore {
 public:
  std::span<double> array(const std::string& name) override;
  void alloc(const std::string& name, std::size_t size) override;
  bool has_array(const std::string& name) const override;

 private:
  std::map<std::string, std::vector<double>> arrays_;
};

/// Span-binding store: array names resolve to caller-provided buffers
/// (application variables); alloc() re-binding is rejected.
class BoundMemory final : public MemoryStore {
 public:
  void bind(const std::string& name, std::span<double> view);
  std::span<double> array(const std::string& name) override;
  void alloc(const std::string& name, std::size_t size) override;
  bool has_array(const std::string& name) const override;

 private:
  std::map<std::string, std::span<double>> views_;
};

/// One basic-block entry event.
struct TraceEvent {
  int block = 0;
};

/// Dynamic trace of one entry-function execution.
struct Trace {
  std::vector<TraceEvent> events;
  std::map<int, std::size_t> block_counts;       ///< entry-fn blocks only
  std::map<std::string, std::size_t> allocations;  ///< array -> elements
  std::size_t executed_instructions = 0;
  /// Executed-instruction count attributed to each entry-function block.
  std::map<int, std::size_t> block_instructions;
};

struct InterpreterLimits {
  /// Safety valve against runaway programs.
  std::size_t max_instructions = 200'000'000;
};

/// Executes module.entry against `memory` (globals are allocated first).
/// Returns the executed-instruction count.
std::size_t execute(const Module& module, MemoryStore& memory,
                    InterpreterLimits limits = {});

/// Executes a single function (used by outlined-kernel DAG nodes).
std::size_t execute_function(const Module& module, const std::string& name,
                             MemoryStore& memory, InterpreterLimits limits = {});

/// Instrumented execution of module.entry: records block-entry events,
/// per-block execution/instruction counts and allocations.
Trace trace_execution(const Module& module, MemoryStore& memory,
                      InterpreterLimits limits = {});

}  // namespace dssoc::compiler
