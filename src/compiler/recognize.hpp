// Hash-based kernel recognition (§II-E / case study 4): outlined kernel
// functions are structurally hashed (opcode sequence with canonicalized
// registers and array names; spill code excluded). A recognition library
// maps known hashes — e.g. the naive DFT loop nest — to semantically
// equivalent optimized implementations: a library FFT call (FFTW's role) and
// an FFT-accelerator invocation. Matching nodes in an emitted DAG get their
// run_func platform entries redirected, exactly as the paper's FFT_0 node
// redirects into fft_accel.so.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/app_model.hpp"
#include "core/kernel_registry.hpp"
#include "compiler/ir.hpp"

namespace dssoc::compiler {

using StructuralHash = std::uint64_t;

/// Structural hash of a function body: opcode sequence in block order with
/// registers and arrays canonicalized by first use; instructions flagged
/// is_spill (outliner prologues/epilogues) are skipped, so the hash is
/// invariant to live-value plumbing and to the kernel's data-set size.
StructuralHash hash_function(const Function& function);

/// One optimized replacement. The factories receive the region's array
/// argument names in first-use order (the same order emitted into the DAG
/// node's argument list) and produce kernels reading/writing those
/// application variables.
struct OptimizedVariant {
  std::string name;  ///< e.g. "library_fft", "library_ifft_product"
  std::function<core::KernelFn(const std::vector<std::string>& arrays)>
      make_cpu;
  /// Optional accelerator-backed variant (uses KernelContext::accelerator()).
  std::function<core::KernelFn(const std::vector<std::string>& arrays)>
      make_accel;
  /// Replacement cost annotation builder, given the data-set size.
  std::function<core::CostAnnotation(std::size_t n)> make_cost;
};

class RecognitionLibrary {
 public:
  void register_variant(StructuralHash hash, OptimizedVariant variant);
  const OptimizedVariant* match(StructuralHash hash) const;
  std::size_t size() const noexcept { return variants_.size(); }

  /// The standard SDR library: naive-DFT and fused-IDFT-product loop nests
  /// mapped to FFT-based implementations. Hashes are derived by compiling
  /// canonical micro-programs through the same detect/outline pipeline, so
  /// they match outlined user code by construction.
  static RecognitionLibrary standard();

 private:
  std::map<StructuralHash, OptimizedVariant> variants_;
};

}  // namespace dssoc::compiler
