// DAG emission: turns an outlined module into a framework-compatible
// application — variables from the memory analysis (array allocations plus
// the spill array), one DAG node per region chained sequentially, and a
// generated shared object whose run_funcs execute the outlined IR functions
// against the application instance's buffers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compiler/interp.hpp"
#include "compiler/kernel_detect.hpp"
#include "compiler/outline.hpp"
#include "core/app_model.hpp"
#include "core/kernel_registry.hpp"

namespace dssoc::compiler {

struct EmitResult {
  core::AppModel model;
  std::string shared_object_name;
  /// Array argument names of each region (first-use order, without the
  /// spill array) — what the recognizer's optimized-variant factories need.
  std::vector<std::vector<std::string>> region_arrays;
};

/// Emits the application. Registers the generated shared object (named
/// "<app_name>.so") into `registry`; its symbols are "run_<region>".
/// `outlined` is shared ownership because the generated kernels keep the
/// module alive.
EmitResult emit_dag(const std::string& app_name,
                    std::shared_ptr<const Module> outlined,
                    const std::vector<Region>& regions, const Trace& trace,
                    core::SharedObjectRegistry& registry);

}  // namespace dssoc::compiler
