// Miniature typed IR — the Clang/LLVM substitute of the automatic
// application-conversion toolchain (§II-E). Programs are functions of basic
// blocks over an unlimited register file of f64 values; memory is a set of
// named f64 arrays (module globals or kAlloc-created). The structure mirrors
// what the real toolchain sees after lowering unlabeled C to LLVM IR:
// straight-line blocks, explicit branches, loads/stores, and calls.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace dssoc::compiler {

using Reg = int;

enum class Op {
  kConst,  // dst = imm
  kMov,    // dst = a
  kAdd,    // dst = a + b
  kSub,
  kMul,
  kDiv,
  kNeg,    // dst = -a
  kSin,    // dst = sin(a)
  kCos,
  kSqrt,
  kFloor,
  kCmpLt,  // dst = a < b ? 1 : 0
  kLoad,   // dst = array[a]
  kStore,  // array[a] = b
  kAlloc,  // allocate array of imm elements (zeroed)
  kCall,   // call function `array` (shares module memory)
};

struct Instr {
  Op op = Op::kConst;
  Reg dst = -1;
  Reg a = -1;
  Reg b = -1;
  double imm = 0.0;
  std::string array;     ///< kLoad/kStore/kAlloc array or kCall callee
  bool is_spill = false; ///< inserted by the outliner; excluded from hashing
};

enum class TermKind { kJump, kBranch, kRet };

struct Terminator {
  TermKind kind = TermKind::kRet;
  Reg cond = -1;
  int target = -1;       ///< kJump / kBranch taken
  int else_target = -1;  ///< kBranch not taken
};

struct BasicBlock {
  int id = 0;
  std::string label;
  std::vector<Instr> instrs;
  Terminator term;
};

struct Function {
  std::string name;
  int num_regs = 0;
  std::vector<BasicBlock> blocks;  ///< blocks[i].id == i (layout order)

  const BasicBlock& block(int id) const {
    DSSOC_ASSERT(id >= 0 && static_cast<std::size_t>(id) < blocks.size());
    return blocks[static_cast<std::size_t>(id)];
  }
};

struct Module {
  std::string entry = "main";
  std::map<std::string, Function> functions;
  /// Pre-declared arrays (name, element count) that exist before execution.
  std::vector<std::pair<std::string, std::size_t>> globals;

  const Function& function(const std::string& name) const;
  Function& function(const std::string& name);
  bool has_function(const std::string& name) const {
    return functions.count(name) == 1;
  }
};

/// Structural validation: block ids dense and ordered, branch targets in
/// range, registers within num_regs, terminators present. Throws DssocError.
void validate(const Module& module);

/// Total static instruction count (diagnostics).
std::size_t instruction_count(const Function& function);

/// Fluent builder for one function. Blocks are created in layout order; the
/// current block receives emitted instructions.
class FunctionBuilder {
 public:
  explicit FunctionBuilder(std::string name);

  Reg fresh();
  Reg constant(double value);
  Reg mov(Reg a);
  Reg add(Reg a, Reg b);
  Reg sub(Reg a, Reg b);
  Reg mul(Reg a, Reg b);
  Reg div(Reg a, Reg b);
  Reg neg(Reg a);
  Reg sin(Reg a);
  Reg cos(Reg a);
  Reg sqrt(Reg a);
  Reg floor(Reg a);
  Reg cmp_lt(Reg a, Reg b);
  /// dst = src into an existing register (loop carried accumulators).
  void assign(Reg dst, Reg src);
  Reg load(const std::string& array, Reg index);
  void store(const std::string& array, Reg index, Reg value);
  void alloc(const std::string& array, std::size_t size);
  void call(const std::string& callee);

  /// Creates a new block; does not switch to it.
  int new_block(const std::string& label);
  void switch_to(int block);
  int current_block() const { return current_; }

  void jump(int target);
  void branch(Reg cond, int taken, int not_taken);
  void ret();

  /// Structured counted loop: for (i = begin; i < end; i += 1) body(i).
  /// Emits header/body/increment/exit blocks; leaves the builder in the exit
  /// block. `begin`/`end` are registers evaluated before the loop.
  void for_loop(Reg begin, Reg end,
                const std::function<void(FunctionBuilder&, Reg)>& body);

  Function build();

 private:
  Instr& emit(Instr instr);
  Function function_;
  int current_ = -1;
  bool finished_ = false;
};

}  // namespace dssoc::compiler
