// End-to-end compilation pipeline (Fig. 5): trace instrumentation, trace
// collection, kernel detection/recognition, outlining, and DAG emission —
// monolithic unlabeled IR in, framework-ready application out.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "compiler/dag_emit.hpp"
#include "compiler/recognize.hpp"
#include "core/emulation.hpp"
#include "json/json.hpp"

namespace dssoc::compiler {

struct CompileOptions {
  std::string app_name = "auto_app";
  DetectionOptions detection;
  /// Attempt hash-based kernel recognition and run_func redirection.
  bool recognize = true;
};

struct CompiledApp {
  core::AppModel model;
  json::Value dag_json;  ///< Listing-1-compatible emission
  std::string shared_object_name;
  std::vector<Region> regions;
  std::size_t traced_instructions = 0;
  /// (node name, optimized variant name) for every recognized kernel.
  std::vector<std::pair<std::string, std::string>> recognized;

  std::size_t kernel_count() const;
};

/// Compiles `program` into a DAG application. The generated shared object is
/// registered into `registry` under "<app_name>.so"; recognized kernels get
/// optimized CPU run_funcs plus an FFT-accelerator platform entry.
CompiledApp compile_to_dag(const Module& program, const CompileOptions& options,
                           core::SharedObjectRegistry& registry,
                           const RecognitionLibrary* library = nullptr);

}  // namespace dssoc::compiler
