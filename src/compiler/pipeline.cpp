#include "compiler/pipeline.hpp"

#include "common/strings.hpp"
#include "core/app_json.hpp"

namespace dssoc::compiler {

std::size_t CompiledApp::kernel_count() const {
  std::size_t count = 0;
  for (const Region& region : regions) {
    count += region.is_kernel ? 1 : 0;
  }
  return count;
}

CompiledApp compile_to_dag(const Module& program, const CompileOptions& options,
                           core::SharedObjectRegistry& registry,
                           const RecognitionLibrary* library) {
  validate(program);

  // Trace instrumentation + collection (the dynamic-analysis run).
  OwningMemory trace_memory;
  const Trace trace = trace_execution(program, trace_memory);

  // Kernel detection over the trace.
  const Function& entry = program.function(program.entry);
  const std::vector<Region> regions =
      detect_kernels(entry, trace, options.detection);

  // Outline every region into a standalone function.
  OutlineResult outlined = outline_regions(program, regions);
  auto module = std::make_shared<const Module>(std::move(outlined.module));

  // Emit the DAG application + generated shared object.
  EmitResult emitted =
      emit_dag(options.app_name, module, regions, trace, registry);

  CompiledApp compiled;
  compiled.model = std::move(emitted.model);
  compiled.shared_object_name = emitted.shared_object_name;
  compiled.regions = regions;
  compiled.traced_instructions = trace.executed_instructions;

  // Hash-based recognition: redirect run_funcs of known kernels to the
  // optimized library and add accelerator support.
  if (options.recognize && library != nullptr) {
    core::SharedObject& object =
        registry.mutable_object(compiled.shared_object_name);
    for (std::size_t r = 0; r < regions.size(); ++r) {
      const Region& region = regions[r];
      if (!region.is_kernel) {
        continue;
      }
      const StructuralHash hash =
          hash_function(module->function(region.name));
      const OptimizedVariant* variant = library->match(hash);
      if (variant == nullptr) {
        continue;
      }
      const std::vector<std::string>& arrays = emitted.region_arrays[r];
      const std::string cpu_symbol =
          cat("opt_", variant->name, "_", region.name);
      object.add_symbol(cpu_symbol, variant->make_cpu(arrays));

      core::DagNode& node =
          compiled.model.nodes[compiled.model.node_index(region.name)];
      std::vector<core::PlatformOption> platforms = {
          {"cpu", cpu_symbol, ""},
          {"big", cpu_symbol, ""},
          {"little", cpu_symbol, ""}};
      if (variant->make_accel != nullptr) {
        const std::string accel_symbol =
            cat("opt_accel_", variant->name, "_", region.name);
        object.add_symbol(accel_symbol, variant->make_accel(arrays));
        platforms.push_back({"fft", accel_symbol, ""});
      }
      node.platforms = std::move(platforms);
      if (variant->make_cost != nullptr && !arrays.empty()) {
        // Data-set size: the first array's observed allocation.
        const auto it = trace.allocations.find(arrays.front());
        const std::size_t n =
            it == trace.allocations.end() ? 0 : it->second;
        if (n > 0) {
          node.cost = variant->make_cost(n);
        }
      }
      compiled.recognized.emplace_back(region.name, variant->name);
    }
    compiled.model.finalize();
  }

  compiled.dag_json = core::app_to_json(compiled.model);
  return compiled;
}

}  // namespace dssoc::compiler
