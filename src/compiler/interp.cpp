#include "compiler/interp.hpp"

#include <cmath>

#include "common/strings.hpp"

namespace dssoc::compiler {

std::span<double> OwningMemory::array(const std::string& name) {
  const auto it = arrays_.find(name);
  DSSOC_REQUIRE(it != arrays_.end(), cat("unknown array \"", name, "\""));
  return it->second;
}

void OwningMemory::alloc(const std::string& name, std::size_t size) {
  arrays_[name].assign(size, 0.0);
}

bool OwningMemory::has_array(const std::string& name) const {
  return arrays_.count(name) == 1;
}

void BoundMemory::bind(const std::string& name, std::span<double> view) {
  views_[name] = view;
}

std::span<double> BoundMemory::array(const std::string& name) {
  const auto it = views_.find(name);
  DSSOC_REQUIRE(it != views_.end(), cat("unbound array \"", name, "\""));
  return it->second;
}

void BoundMemory::alloc(const std::string& name, std::size_t size) {
  // Allocations map onto pre-bound application variables; re-running an
  // alloc simply zeroes the bound storage (malloc + memset semantics).
  const auto it = views_.find(name);
  DSSOC_REQUIRE(it != views_.end(),
                cat("alloc of unbound array \"", name, "\""));
  DSSOC_REQUIRE(it->second.size() >= size,
                cat("bound buffer for \"", name, "\" smaller than alloc"));
  for (double& x : it->second) {
    x = 0.0;
  }
}

bool BoundMemory::has_array(const std::string& name) const {
  return views_.count(name) == 1;
}

namespace {

class Interpreter {
 public:
  Interpreter(const Module& module, MemoryStore& memory,
              InterpreterLimits limits, Trace* trace)
      : module_(module), memory_(memory), limits_(limits), trace_(trace) {}

  std::size_t run(const std::string& function_name) {
    for (const auto& [name, size] : module_.globals) {
      if (!memory_.has_array(name)) {
        memory_.alloc(name, size);
      }
    }
    run_function(module_.function(function_name), /*is_entry=*/true);
    return executed_;
  }

 private:
  void run_function(const Function& function, bool is_entry) {
    std::vector<double> regs(static_cast<std::size_t>(function.num_regs),
                             0.0);
    int block_id = 0;
    for (;;) {
      const BasicBlock& block = function.block(block_id);
      if (trace_ != nullptr && is_entry) {
        trace_->events.push_back({block.id});
        trace_->block_counts[block.id] += 1;
      }
      for (const Instr& instr : block.instrs) {
        ++executed_;
        DSSOC_REQUIRE(executed_ <= limits_.max_instructions,
                      "interpreter instruction limit exceeded");
        if (trace_ != nullptr && is_entry) {
          trace_->block_instructions[block.id] += 1;
        }
        step(instr, regs);
      }
      switch (block.term.kind) {
        case TermKind::kJump:
          block_id = block.term.target;
          break;
        case TermKind::kBranch:
          block_id = regs[static_cast<std::size_t>(block.term.cond)] != 0.0
                         ? block.term.target
                         : block.term.else_target;
          break;
        case TermKind::kRet:
          return;
      }
    }
  }

  void step(const Instr& instr, std::vector<double>& regs) {
    auto r = [&regs](Reg reg) -> double& {
      return regs[static_cast<std::size_t>(reg)];
    };
    switch (instr.op) {
      case Op::kConst: r(instr.dst) = instr.imm; break;
      case Op::kMov: r(instr.dst) = r(instr.a); break;
      case Op::kAdd: r(instr.dst) = r(instr.a) + r(instr.b); break;
      case Op::kSub: r(instr.dst) = r(instr.a) - r(instr.b); break;
      case Op::kMul: r(instr.dst) = r(instr.a) * r(instr.b); break;
      case Op::kDiv: r(instr.dst) = r(instr.a) / r(instr.b); break;
      case Op::kNeg: r(instr.dst) = -r(instr.a); break;
      case Op::kSin: r(instr.dst) = std::sin(r(instr.a)); break;
      case Op::kCos: r(instr.dst) = std::cos(r(instr.a)); break;
      case Op::kSqrt: r(instr.dst) = std::sqrt(r(instr.a)); break;
      case Op::kFloor: r(instr.dst) = std::floor(r(instr.a)); break;
      case Op::kCmpLt:
        r(instr.dst) = r(instr.a) < r(instr.b) ? 1.0 : 0.0;
        break;
      case Op::kLoad: {
        const auto view = memory_.array(instr.array);
        const auto index = static_cast<std::size_t>(r(instr.a));
        DSSOC_REQUIRE(index < view.size(),
                      cat("load out of bounds: ", instr.array, "[", index,
                          "] size ", view.size()));
        r(instr.dst) = view[index];
        break;
      }
      case Op::kStore: {
        const auto view = memory_.array(instr.array);
        const auto index = static_cast<std::size_t>(r(instr.a));
        DSSOC_REQUIRE(index < view.size(),
                      cat("store out of bounds: ", instr.array, "[", index,
                          "] size ", view.size()));
        view[index] = r(instr.b);
        break;
      }
      case Op::kAlloc: {
        memory_.alloc(instr.array, static_cast<std::size_t>(instr.imm));
        if (trace_ != nullptr) {
          trace_->allocations[instr.array] =
              static_cast<std::size_t>(instr.imm);
        }
        break;
      }
      case Op::kCall:
        run_function(module_.function(instr.array), /*is_entry=*/false);
        break;
    }
  }

  const Module& module_;
  MemoryStore& memory_;
  InterpreterLimits limits_;
  Trace* trace_;
  std::size_t executed_ = 0;
};

}  // namespace

std::size_t execute(const Module& module, MemoryStore& memory,
                    InterpreterLimits limits) {
  return Interpreter(module, memory, limits, nullptr).run(module.entry);
}

std::size_t execute_function(const Module& module, const std::string& name,
                             MemoryStore& memory, InterpreterLimits limits) {
  return Interpreter(module, memory, limits, nullptr).run(name);
}

Trace trace_execution(const Module& module, MemoryStore& memory,
                      InterpreterLimits limits) {
  Trace trace;
  Interpreter interpreter(module, memory, limits, &trace);
  trace.executed_instructions = interpreter.run(module.entry);
  return trace;
}

}  // namespace dssoc::compiler
