#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace dssoc {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  DSSOC_REQUIRE(!samples.empty(), "percentile of empty sample set");
  DSSOC_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0, 100]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) {
    return samples.front();
  }
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

FiveNumberSummary five_number_summary(std::vector<double> samples) {
  DSSOC_REQUIRE(!samples.empty(), "five_number_summary of empty sample set");
  std::sort(samples.begin(), samples.end());
  FiveNumberSummary out;
  out.min = samples.front();
  out.max = samples.back();
  auto pct = [&](double p) {
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] + frac * (samples[hi] - samples[lo]);
  };
  out.q1 = pct(25.0);
  out.median = pct(50.0);
  out.q3 = pct(75.0);
  return out;
}

double mean_of(const std::vector<double>& samples) {
  DSSOC_REQUIRE(!samples.empty(), "mean of empty sample set");
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

}  // namespace dssoc
