#include "common/logging.hpp"

#include <cstdio>

namespace dssoc {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::write(LogLevel level, const std::string& message) {
  std::scoped_lock lock(mutex_);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace dssoc
