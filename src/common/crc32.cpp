#include "common/crc32.hpp"

#include <array>

namespace dssoc {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320U;  // reflected IEEE 802.3

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1U) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table()[(crc ^ bytes[i]) & 0xFFU];
  }
  return crc ^ 0xFFFFFFFFU;
}

}  // namespace dssoc
