// Typed free-list object pool.
//
// acquire() pops a recycled object (nullptr when the free list is empty —
// the caller constructs a fresh one); release() pushes an object back for
// the next acquire. Ownership round-trips through std::unique_ptr, so
// objects the caller never returns are simply destroyed by their owner and
// the pool never double-frees. The pool itself is not thread-safe: each
// engine / sweep worker owns its own instance.
#pragma once

#include <memory>
#include <utility>
#include <vector>

namespace dssoc {

template <typename T>
class Pool {
 public:
  /// A recycled object, or nullptr when none is available.
  std::unique_ptr<T> acquire() {
    if (free_.empty()) {
      return nullptr;
    }
    std::unique_ptr<T> object = std::move(free_.back());
    free_.pop_back();
    return object;
  }

  /// Returns an object to the free list. Null handles are ignored.
  void release(std::unique_ptr<T> object) {
    if (object != nullptr) {
      free_.push_back(std::move(object));
    }
  }

  std::size_t free_count() const noexcept { return free_.size(); }

  void clear() noexcept { free_.clear(); }

 private:
  std::vector<std::unique_ptr<T>> free_;
};

}  // namespace dssoc
