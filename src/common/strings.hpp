// Small string utilities (libstdc++ 12 lacks std::format; these cover the
// framework's formatting needs without a heavyweight dependency).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace dssoc {

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Fixed-precision decimal formatting (printf "%.*f").
std::string format_double(double value, int precision);

/// Shortest decimal form that parses back to the identical double
/// (std::to_chars). Used where a formatted value re-enters a computation —
/// e.g. arrival-process spec strings, whose probabilities must survive the
/// format/parse round trip bit-exactly for trace reproducibility.
std::string format_double_roundtrip(double value);

/// Zero-padded 16-digit lowercase hex ("00000000deadbeef") — the canonical
/// text form for 64-bit digests and config hashes in artifacts.
std::string format_hex64(std::uint64_t value);

/// Left-pads with spaces to at least `width` characters.
std::string pad_left(std::string_view text, std::size_t width);
/// Right-pads with spaces to at least `width` characters.
std::string pad_right(std::string_view text, std::size_t width);

}  // namespace dssoc
