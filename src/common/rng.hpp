// Deterministic pseudo-random number generation.
//
// Workload traces, AWGN noise and the RANDOM scheduler must be reproducible
// across runs and platforms, so the framework owns its generator (xoshiro256**
// seeded via splitmix64) instead of relying on implementation-defined
// std::random distributions.
#pragma once

#include <array>
#include <cstdint>

namespace dssoc {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, and stable across
/// platforms, which std::mt19937 + std:: distributions are not.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Exponentially distributed value with the given rate (events per unit).
  double exponential(double rate);

  /// Snapshot of the generator state. The virtual-time engine compares
  /// snapshots to prove a scheduler invocation consumed no randomness before
  /// fast-forwarding identical busy-wait cycles analytically.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  /// Restores a previously captured state() — the checkpoint-restore path.
  /// The stream continues exactly where the captured generator left off.
  void set_state(const std::array<std::uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = state[static_cast<std::size_t>(i)];
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace dssoc
