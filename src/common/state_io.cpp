#include "common/state_io.hpp"

#include <cstring>

#include "common/crc32.hpp"
#include "common/strings.hpp"

namespace dssoc {

namespace {

constexpr std::uint32_t kMagic = state_tag('D', 'S', 'S', 'B');

// Header layout: magic u32, format version u32, payload kind u32.
constexpr std::size_t kHeaderBytes = 12;

// Trailer layout: CRC-32 (u32) over everything before it.
constexpr std::size_t kTrailerBytes = 4;

void put_u32(std::uint8_t* dst, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void put_u64(std::uint8_t* dst, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint32_t get_u32(const std::uint8_t* src) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(src[i]) << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const std::uint8_t* src) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(src[i]) << (8 * i);
  }
  return value;
}

std::string tag_name(std::uint32_t tag) {
  std::string name;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
    name.push_back(c >= 0x20 && c < 0x7F ? c : '?');
  }
  return name;
}

}  // namespace

// --- StateWriter ------------------------------------------------------------

StateWriter::StateWriter(std::uint32_t payload_kind) {
  out_.resize(kHeaderBytes);
  put_u32(out_.data(), kMagic);
  put_u32(out_.data() + 4, kStateFormatVersion);
  put_u32(out_.data() + 8, payload_kind);
}

void StateWriter::u8(std::uint8_t value) { out_.push_back(value); }

void StateWriter::u32(std::uint32_t value) {
  const std::size_t at = out_.size();
  out_.resize(at + 4);
  put_u32(out_.data() + at, value);
}

void StateWriter::u64(std::uint64_t value) {
  const std::size_t at = out_.size();
  out_.resize(at + 8);
  put_u64(out_.data() + at, value);
}

void StateWriter::i32(std::int32_t value) {
  u32(static_cast<std::uint32_t>(value));
}

void StateWriter::i64(std::int64_t value) {
  u64(static_cast<std::uint64_t>(value));
}

void StateWriter::f64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  u64(bits);
}

void StateWriter::str(const std::string& value) {
  u64(value.size());
  bytes(value.data(), value.size());
}

void StateWriter::bytes(const void* data, std::size_t size) {
  if (size == 0) {  // empty-buffer data() may be null; null + 0 is still UB
    return;
  }
  const auto* src = static_cast<const std::uint8_t*>(data);
  out_.insert(out_.end(), src, src + size);
}

void StateWriter::begin_section(std::uint32_t tag) {
  u32(tag);
  open_.push_back(out_.size());
  u64(0);  // length placeholder, patched by end_section()
}

void StateWriter::end_section() {
  DSSOC_ASSERT_MSG(!open_.empty(), "end_section without begin_section");
  const std::size_t at = open_.back();
  open_.pop_back();
  put_u64(out_.data() + at, out_.size() - (at + 8));
}

std::vector<std::uint8_t> StateWriter::take() {
  DSSOC_ASSERT_MSG(open_.empty(), "take() with an open section");
  const std::uint32_t crc = crc32(out_.data(), out_.size());
  const std::size_t at = out_.size();
  out_.resize(at + kTrailerBytes);
  put_u32(out_.data() + at, crc);
  return std::move(out_);
}

// --- StateReader ------------------------------------------------------------

StateReader::StateReader(const std::uint8_t* data, std::size_t size,
                         std::uint32_t payload_kind)
    : data_(data), size_(size) {
  if (size_ < kHeaderBytes) {
    throw StateError("state stream truncated: no header");
  }
  if (get_u32(data_) != kMagic) {
    throw StateError("state stream has no DSSB magic — not a snapshot");
  }
  const std::uint32_t version = get_u32(data_ + 4);
  if (version != kStateFormatVersion) {
    // The version rule: reject loudly, never silently reinterpret.
    throw StateError(cat("snapshot format version ", version,
                         " does not match this build's version ",
                         kStateFormatVersion,
                         " — re-capture the snapshot with this build"));
  }
  const std::uint32_t kind = get_u32(data_ + 8);
  if (kind != payload_kind) {
    throw StateError(cat("snapshot payload kind \"", tag_name(kind),
                         "\" does not match expected \"",
                         tag_name(payload_kind), "\""));
  }
  if (size_ < kHeaderBytes + kTrailerBytes) {
    throw StateError("state stream truncated: no CRC trailer");
  }
  // Verify the trailer before any payload byte is handed out, then shrink
  // the visible stream so reads can never consume the CRC itself.
  const std::uint32_t declared = get_u32(data_ + size_ - kTrailerBytes);
  const std::uint32_t actual = crc32(data_, size_ - kTrailerBytes);
  if (declared != actual) {
    throw StateError(
        cat("state stream corrupt: CRC-32 mismatch (stored ", declared,
            ", computed ", actual,
            ") — torn write, truncation or bit corruption"));
  }
  size_ -= kTrailerBytes;
  pos_ = kHeaderBytes;
}

void StateReader::need(std::size_t count) const {
  const std::size_t limit = limits_.empty() ? size_ : limits_.back();
  if (pos_ + count > limit) {
    throw StateError(cat("state stream truncated: need ", count,
                         " byte(s) at offset ", pos_, ", limit ", limit));
  }
}

std::uint8_t StateReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t StateReader::u32() {
  need(4);
  const std::uint32_t value = get_u32(data_ + pos_);
  pos_ += 4;
  return value;
}

std::uint64_t StateReader::u64() {
  need(8);
  const std::uint64_t value = get_u64(data_ + pos_);
  pos_ += 8;
  return value;
}

std::int32_t StateReader::i32() { return static_cast<std::int32_t>(u32()); }

std::int64_t StateReader::i64() { return static_cast<std::int64_t>(u64()); }

double StateReader::f64() {
  const std::uint64_t bits = u64();
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string StateReader::str() {
  const std::uint64_t size = u64();
  need(size);
  std::string value(reinterpret_cast<const char*>(data_ + pos_),
                    static_cast<std::size_t>(size));
  pos_ += static_cast<std::size_t>(size);
  return value;
}

void StateReader::bytes(void* data, std::size_t size) {
  need(size);
  if (size > 0) {  // empty-buffer data() may be null
    std::memcpy(data, data_ + pos_, size);
  }
  pos_ += size;
}

std::uint32_t StateReader::begin_section() {
  const std::uint32_t tag = u32();
  const std::uint64_t length = u64();
  need(static_cast<std::size_t>(length));
  limits_.push_back(pos_ + static_cast<std::size_t>(length));
  return tag;
}

void StateReader::begin_section(std::uint32_t expected) {
  const std::uint32_t tag = begin_section();
  if (tag != expected) {
    throw StateError(cat("expected section \"", tag_name(expected),
                         "\", found \"", tag_name(tag), "\""));
  }
}

void StateReader::skip_section() {
  if (limits_.empty()) {
    throw StateError("skip_section without begin_section");
  }
  pos_ = limits_.back();
  limits_.pop_back();
}

void StateReader::end_section() {
  if (limits_.empty()) {
    throw StateError("end_section without begin_section");
  }
  const std::size_t limit = limits_.back();
  limits_.pop_back();
  if (pos_ != limit) {
    throw StateError(cat("section consumed ", pos_, " byte(s), declared end ",
                         limit, " — save/load drift"));
  }
}

bool StateReader::at_end() const {
  return pos_ == (limits_.empty() ? size_ : limits_.back());
}

}  // namespace dssoc
