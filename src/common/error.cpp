#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace dssoc::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "DSSOC_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace dssoc::detail
