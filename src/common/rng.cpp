#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace dssoc {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits scaled into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DSSOC_ASSERT(bound > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  // Box-Muller; draw u1 away from zero to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::exponential(double rate) {
  DSSOC_ASSERT(rate > 0.0);
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

}  // namespace dssoc
