// Canonical configuration hashing.
//
// The durable sweep journal (exp/journal.hpp) keys each persisted result by
// a hash of everything that determines the result's bytes: the sweep point's
// parameters, the scheduler, the seed, and the engine build flags. Two runs
// whose hashes match are guaranteed to produce bit-identical statistics (the
// engine is deterministic), so a journaled result can stand in for a re-run;
// any parameter change flips the hash and forces re-execution.
//
// ConfigHasher is the canonical mixer behind that key: an order-sensitive
// FNV-1a 64 over typed, little-endian primitive encodings. Every value is
// prefixed with a one-byte type tag, so adjacent fields cannot alias across
// type or framing boundaries ("ab" + "c" hashes differently from "a" + "bc",
// a u32 0 differently from a u64 0). The encoding is host-independent —
// hashes computed on different machines agree, like state_io streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dssoc {

/// Order-sensitive canonical hash builder (FNV-1a 64, typed + tagged
/// little-endian encoding). Feed fields in a fixed order; read digest().
class ConfigHasher {
 public:
  ConfigHasher& u8(std::uint8_t value);
  ConfigHasher& u32(std::uint32_t value);
  ConfigHasher& u64(std::uint64_t value);
  ConfigHasher& i64(std::int64_t value);
  ConfigHasher& f64(double value);  ///< hashes the IEEE-754 bit pattern
  ConfigHasher& boolean(bool value);
  ConfigHasher& str(std::string_view value);  ///< length-framed + raw bytes

  std::uint64_t digest() const noexcept { return hash_; }

 private:
  void tag(std::uint8_t type_tag);
  void raw(const void* data, std::size_t size);

  std::uint64_t hash_ = 1469598103934665603ULL;  // FNV-1a 64 offset basis
};

/// Fingerprint of the engine build: the state-format version plus the
/// compile-time flags that could plausibly change emitted statistics or
/// their encoding (NDEBUG, sanitizers). Mixed into every config hash so a
/// journal written by one build is not silently replayed by an incompatible
/// one.
std::uint64_t build_fingerprint();

}  // namespace dssoc
