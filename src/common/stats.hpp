// Descriptive statistics for emulation results.
//
// Fig. 9 of the paper reports box plots over 50 iterations; RunningStats and
// FiveNumberSummary provide the numbers those plots are drawn from.
#pragma once

#include <cstddef>
#include <vector>

namespace dssoc {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Box-plot summary: min, first quartile, median, third quartile, max.
struct FiveNumberSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

/// Linear-interpolated percentile (p in [0, 100]) of a sample set.
/// Throws DssocError when the sample set is empty.
double percentile(std::vector<double> samples, double p);

/// Five-number summary of a sample set. Throws DssocError when empty.
FiveNumberSummary five_number_summary(std::vector<double> samples);

/// Arithmetic mean; throws DssocError when empty.
double mean_of(const std::vector<double>& samples);

}  // namespace dssoc
