// Atomic whole-file replacement.
//
// A process that dies mid-write (crash, OOM-kill, CI timeout) must never
// leave a torn artifact behind where a previous good one stood — a
// half-written BENCH_sweep.json is worse than none, because downstream
// tooling parses it. write_file_atomic() gives the POSIX guarantee: the
// contents land in a temporary file in the same directory, are fsync()ed,
// and are rename()d over the target in one step. Readers see either the old
// complete file or the new complete file, never a mixture, regardless of
// when the writer dies.
#pragma once

#include <cstddef>
#include <string>

namespace dssoc {

/// Atomically replaces `path` with `size` bytes at `data` (temp file +
/// fsync + rename). Throws DssocError on any I/O failure; the target is
/// left untouched and the temporary is removed on error.
void write_file_atomic(const std::string& path, const void* data,
                       std::size_t size);

/// Convenience overload for text artifacts.
void write_file_atomic(const std::string& path, const std::string& contents);

}  // namespace dssoc
