// Error handling primitives used across the emulation framework.
//
// The framework is a library first: errors that a caller can reasonably
// provoke (bad JSON, unknown kernel symbol, invalid configuration) throw
// DssocError with a descriptive message. Internal invariant violations use
// DSSOC_ASSERT, which is active in all build types because the emulator's
// correctness claims depend on them.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace dssoc {

/// Base exception for all user-provocable framework errors.
class DssocError : public std::runtime_error {
 public:
  explicit DssocError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when parsing an application description (JSON) fails.
class ParseError : public DssocError {
 public:
  ParseError(const std::string& what, std::size_t line, std::size_t column)
      : DssocError(what + " at line " + std::to_string(line) + ", column " +
                   std::to_string(column)),
        line_(line),
        column_(column) {}
  explicit ParseError(const std::string& what) : DssocError(what), line_(0), column_(0) {}

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Raised when an emulation configuration is inconsistent (e.g. more PEs
/// than the platform's resource pool can host).
class ConfigError : public DssocError {
 public:
  using DssocError::DssocError;
};

/// Raised when symbol resolution against a registered shared object fails.
class SymbolError : public DssocError {
 public:
  using DssocError::DssocError;
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace dssoc

/// Always-on assertion: emulation invariants must hold in release builds too.
#define DSSOC_ASSERT(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::dssoc::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
    }                                                                   \
  } while (false)

#define DSSOC_ASSERT_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::dssoc::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                   \
  } while (false)

/// Validates a caller-supplied precondition; throws DssocError on failure.
#define DSSOC_REQUIRE(expr, msg)                       \
  do {                                                 \
    if (!(expr)) {                                     \
      throw ::dssoc::DssocError(msg);                  \
    }                                                  \
  } while (false)
