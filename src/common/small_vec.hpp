// Inline-capacity vector for allocation-free steady-state hot paths.
//
// The first N elements live inside the object; exceeding N moves storage to
// the heap. Capacity never shrinks — clear() destroys elements but keeps the
// buffer — so a warmed-up SmallVec that is cleared and refilled every event
// performs zero heap allocations, which is the property the engine's
// per-event scratch buffers (ready lists, newly-ready batches, scheduler
// candidate sets) rely on. Interface is the std::vector subset those call
// sites need; iterators are raw pointers and are invalidated by growth.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dssoc {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "SmallVec requires a non-zero inline capacity");

 public:
  using value_type = T;
  using size_type = std::size_t;
  using iterator = T*;
  using const_iterator = const T*;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;
  using reference = T&;
  using const_reference = const T&;

  SmallVec() noexcept : data_(inline_data()), size_(0), capacity_(N) {}

  SmallVec(std::initializer_list<T> init) : SmallVec() {
    reserve(init.size());
    for (const T& value : init) {
      push_back(value);
    }
  }

  SmallVec(const SmallVec& other) : SmallVec() {
    reserve(other.size_);
    for (size_type i = 0; i < other.size_; ++i) {
      ::new (static_cast<void*>(data_ + i)) T(other.data_[i]);
    }
    size_ = other.size_;
  }

  SmallVec(SmallVec&& other) noexcept : SmallVec() {
    steal_or_move(std::move(other));
  }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      assign(other.begin(), other.end());
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear();
      release_heap();
      steal_or_move(std::move(other));
    }
    return *this;
  }

  ~SmallVec() {
    clear();
    release_heap();
  }

  iterator begin() noexcept { return data_; }
  const_iterator begin() const noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator end() const noexcept { return data_ + size_; }
  reverse_iterator rbegin() noexcept { return reverse_iterator(end()); }
  const_reverse_iterator rbegin() const noexcept {
    return const_reverse_iterator(end());
  }
  reverse_iterator rend() noexcept { return reverse_iterator(begin()); }
  const_reverse_iterator rend() const noexcept {
    return const_reverse_iterator(begin());
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  size_type size() const noexcept { return size_; }
  size_type capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return size_ == 0; }

  reference operator[](size_type i) { return data_[i]; }
  const_reference operator[](size_type i) const { return data_[i]; }
  reference front() { return data_[0]; }
  const_reference front() const { return data_[0]; }
  reference back() { return data_[size_ - 1]; }
  const_reference back() const { return data_[size_ - 1]; }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  reference emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      return grow_emplace(std::forward<Args>(args)...);
    }
    T* slot = ::new (static_cast<void*>(data_ + size_))
        T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    data_[--size_].~T();
  }

  /// Destroys the elements; capacity (inline or heap) is retained.
  void clear() noexcept {
    for (size_type i = 0; i < size_; ++i) {
      data_[i].~T();
    }
    size_ = 0;
  }

  void reserve(size_type wanted) {
    if (wanted > capacity_) {
      grow(wanted);
    }
  }

  void resize(size_type wanted, const T& fill = T()) {
    reserve(wanted);
    while (size_ < wanted) {
      push_back(fill);
    }
    while (size_ > wanted) {
      pop_back();
    }
  }

  /// Removes the element at `pos`, shifting the tail left (stable order).
  iterator erase(const_iterator pos) {
    const size_type index = static_cast<size_type>(pos - data_);
    for (size_type i = index; i + 1 < size_; ++i) {
      data_[i] = std::move(data_[i + 1]);
    }
    pop_back();
    return data_ + index;
  }

  template <typename InputIt>
  void assign(InputIt first, InputIt last) {
    clear();
    for (; first != last; ++first) {
      push_back(*first);
    }
  }

  void assign(size_type count, const T& value) {
    clear();
    reserve(count);
    for (size_type i = 0; i < count; ++i) {
      push_back(value);
    }
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) {
      return false;
    }
    for (size_type i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) {
        return false;
      }
    }
    return true;
  }

 private:
  T* inline_data() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }

  bool on_heap() const noexcept { return capacity_ > N; }

  void release_heap() noexcept {
    if (on_heap()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
      data_ = inline_data();
      capacity_ = N;
    }
  }

  static T* allocate(size_type count) {
    return static_cast<T*>(::operator new(count * sizeof(T),
                                          std::align_val_t(alignof(T))));
  }

  /// Moves the elements into `fresh` and adopts it as the buffer.
  void adopt(T* fresh, size_type next) {
    for (size_type i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (on_heap()) {
      ::operator delete(data_, std::align_val_t(alignof(T)));
    }
    data_ = fresh;
    capacity_ = next;
  }

  void grow(size_type wanted) {
    size_type next = capacity_;
    while (next < wanted) {
      next *= 2;
    }
    adopt(allocate(next), next);
  }

  /// Growth path of emplace_back: the argument may alias an element of this
  /// vector (v.push_back(v[0]) is valid on std::vector), so the new element
  /// is constructed into the fresh buffer *before* the existing elements are
  /// moved out of the old one.
  template <typename... Args>
  reference grow_emplace(Args&&... args) {
    const size_type next = capacity_ * 2;
    T* fresh = allocate(next);
    T* slot;
    try {
      slot = ::new (static_cast<void*>(fresh + size_))
          T(std::forward<Args>(args)...);
    } catch (...) {
      ::operator delete(fresh, std::align_val_t(alignof(T)));
      throw;
    }
    adopt(fresh, next);
    ++size_;
    return *slot;
  }

  /// Move-construction helper: steal the heap buffer when `other` has one,
  /// move element-wise otherwise. `this` must be empty and inline.
  void steal_or_move(SmallVec&& other) noexcept {
    if (other.on_heap()) {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_data();
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      for (size_type i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_;
  size_type size_;
  size_type capacity_;
};

}  // namespace dssoc
