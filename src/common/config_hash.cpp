#include "common/config_hash.hpp"

#include <cstring>

#include "common/state_io.hpp"

namespace dssoc {

namespace {

// Type tags keep the stream self-delimiting: a field read as the wrong type
// changes the byte sequence, so save/feed drift shows up as a hash change
// instead of a silent collision.
enum : std::uint8_t {
  kTagU8 = 1,
  kTagU32 = 2,
  kTagU64 = 3,
  kTagI64 = 4,
  kTagF64 = 5,
  kTagBool = 6,
  kTagStr = 7,
};

}  // namespace

void ConfigHasher::raw(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash_ ^= bytes[i];
    hash_ *= 1099511628211ULL;  // FNV-1a 64 prime
  }
}

void ConfigHasher::tag(std::uint8_t type_tag) { raw(&type_tag, 1); }

ConfigHasher& ConfigHasher::u8(std::uint8_t value) {
  tag(kTagU8);
  raw(&value, 1);
  return *this;
}

ConfigHasher& ConfigHasher::u32(std::uint32_t value) {
  tag(kTagU32);
  std::uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  raw(bytes, sizeof(bytes));
  return *this;
}

ConfigHasher& ConfigHasher::u64(std::uint64_t value) {
  tag(kTagU64);
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  raw(bytes, sizeof(bytes));
  return *this;
}

ConfigHasher& ConfigHasher::i64(std::int64_t value) {
  tag(kTagI64);
  std::uint8_t bytes[8];
  const auto u = static_cast<std::uint64_t>(value);
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(u >> (8 * i));
  }
  raw(bytes, sizeof(bytes));
  return *this;
}

ConfigHasher& ConfigHasher::f64(double value) {
  tag(kTagF64);
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
  raw(bytes, sizeof(bytes));
  return *this;
}

ConfigHasher& ConfigHasher::boolean(bool value) {
  tag(kTagBool);
  const std::uint8_t byte = value ? 1 : 0;
  raw(&byte, 1);
  return *this;
}

ConfigHasher& ConfigHasher::str(std::string_view value) {
  tag(kTagStr);
  std::uint8_t length[8];
  const auto size = static_cast<std::uint64_t>(value.size());
  for (int i = 0; i < 8; ++i) {
    length[i] = static_cast<std::uint8_t>(size >> (8 * i));
  }
  raw(length, sizeof(length));
  raw(value.data(), value.size());
  return *this;
}

std::uint64_t build_fingerprint() {
  ConfigHasher hasher;
  hasher.u32(kStateFormatVersion);
#ifdef NDEBUG
  hasher.boolean(true);
#else
  hasher.boolean(false);
#endif
  bool sanitized = false;
#if defined(__SANITIZE_ADDRESS__)
  sanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  sanitized = true;
#endif
#endif
  hasher.boolean(sanitized);
  return hasher.digest();
}

}  // namespace dssoc
