// Time representations for both execution engines.
//
// The real-time engine measures wall-clock durations with std::chrono's
// steady clock. The virtual-time engine advances a SimTime counter in
// nanoseconds. Both express results in SimTime so statistics, schedulers and
// reports are engine-agnostic.
#pragma once

#include <chrono>
#include <cstdint>

namespace dssoc {

/// Emulated (or measured) time in nanoseconds since emulation start.
using SimTime = std::int64_t;

constexpr SimTime kSimTimeNever = INT64_MAX;

constexpr SimTime sim_from_us(double us) {
  return static_cast<SimTime>(us * 1e3);
}
constexpr SimTime sim_from_ms(double ms) {
  return static_cast<SimTime>(ms * 1e6);
}
constexpr SimTime sim_from_sec(double s) {
  return static_cast<SimTime>(s * 1e9);
}
constexpr double sim_to_us(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double sim_to_ms(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double sim_to_sec(SimTime t) { return static_cast<double>(t) / 1e9; }

/// Monotonic wall-clock stopwatch used by the real-time engine and by the
/// virtual engine when it measures the actual CPU cost of scheduler code.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Nanoseconds elapsed since construction or the last reset().
  SimTime elapsed() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dssoc
