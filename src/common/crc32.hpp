// CRC-32 (IEEE 802.3 polynomial, reflected) over byte buffers.
//
// This is the integrity check behind every state_io frame trailer: a
// snapshot or wire frame whose bytes were torn, truncated or bit-flipped in
// transit fails its CRC loudly instead of being deserialized into garbage.
// The DSP layer's bit-level CRC (dsp/crc.hpp, the WiFi pipelines) delegates
// to the same table.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dssoc {

/// CRC-32 of `size` bytes at `data`. `seed` chains incremental computations:
/// crc32(ab) == crc32(b, len_b, crc32(a, len_a)).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace dssoc
