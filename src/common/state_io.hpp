// Versioned, length-prefixed binary state serialization.
//
// The checkpoint subsystem (core::Checkpointable) persists engine-visible
// mutable state through these two classes. The format is deliberately dumb:
// fixed-width little-endian primitives inside tagged, length-prefixed
// sections, preceded by a header carrying a magic word, the format version
// and a payload kind. Dumb buys the two properties checkpoints live or die
// by — the bytes are host-independent (a snapshot taken on one machine
// restores on another), and a loader can verify structure as it reads:
// every end_section() checks the consumed byte count against the declared
// length, so a drifted save/load pair fails loudly at the first divergent
// section instead of silently misinterpreting the rest of the stream.
//
// Every finished stream carries a CRC-32 trailer over header + payload
// (format version 2). The reader verifies it before handing out a single
// byte, so a torn pipe write, truncated file or bit flip in transit is
// reported as corruption instead of being deserialized into plausible
// garbage — the property the process-pool sweep fabric's wire frames
// (exp/wire.hpp) depend on.
//
// Version rule: a StateReader REJECTS a mismatched format version with a
// StateError — never silently reinterprets. Bump kStateFormatVersion on any
// layout change; old snapshots are then invalid by construction (cheap
// warm-up state is not worth a migration path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace dssoc {

/// Raised on any malformed, truncated or version-mismatched state stream.
class StateError : public DssocError {
 public:
  using DssocError::DssocError;
};

/// Current checkpoint format version (header field). See the version rule in
/// the file comment.
inline constexpr std::uint32_t kStateFormatVersion =
    3;  // v2: CRC-32 trailer; v3: SLO stats fields (deadline, saturation)

/// Builds a state stream: header first, then begin_section()/end_section()
/// pairs wrapping primitive writes. Sections may nest; take() finalizes the
/// stream and fails if a section is still open.
class StateWriter {
 public:
  /// `payload_kind` identifies what the stream describes (e.g. a virtual
  /// engine snapshot); the matching StateReader must expect the same kind.
  explicit StateWriter(std::uint32_t payload_kind);

  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i32(std::int32_t value);
  void i64(std::int64_t value);
  void f64(double value);
  void str(const std::string& value);            ///< u64 length + raw bytes
  void bytes(const void* data, std::size_t size);  ///< raw, caller-framed

  /// Opens a tagged section; its byte length is back-patched by
  /// end_section(). Tags are caller-chosen u32s (FourCC-style).
  void begin_section(std::uint32_t tag);
  void end_section();

  /// The finished stream, CRC-32 trailer appended. The writer is spent
  /// afterwards.
  std::vector<std::uint8_t> take();

 private:
  std::vector<std::uint8_t> out_;
  std::vector<std::size_t> open_;  ///< offsets of unpatched length fields
};

/// Consumes a state stream produced by StateWriter. Every read validates
/// bounds; begin_section() returns the tag and end_section() verifies the
/// section was consumed exactly. All failures throw StateError.
class StateReader {
 public:
  /// Parses and validates the header — magic, format version (must equal
  /// kStateFormatVersion), payload kind (must equal `payload_kind`) — then
  /// verifies the CRC-32 trailer over the whole stream; any corruption
  /// throws StateError before a single payload byte is handed out.
  /// The buffer must outlive the reader.
  StateReader(const std::uint8_t* data, std::size_t size,
              std::uint32_t payload_kind);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  std::string str();
  void bytes(void* data, std::size_t size);

  /// Opens the next section and returns its tag.
  std::uint32_t begin_section();
  /// Like begin_section(), but requires the tag to be `expected`.
  void begin_section(std::uint32_t expected);
  void end_section();
  /// Discards the rest of the current section and closes it — how a loader
  /// steps over a section it does not consume (e.g. engine-specific state a
  /// different engine has no use for).
  void skip_section();

  /// True when the cursor (at the current nesting level) is exhausted.
  bool at_end() const;

 private:
  void need(std::size_t count) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::vector<std::size_t> limits_;  ///< section end offsets (nested)
};

/// FourCC-style section/payload tag ('S','T','A','T' -> 0x54415453-ish,
/// byte order irrelevant as long as save and load agree).
constexpr std::uint32_t state_tag(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

}  // namespace dssoc
