// Minimal thread-safe leveled logger.
//
// The emulation engines run many PE-manager threads; log lines from them must
// not interleave mid-line. A single global sink with a mutex is sufficient —
// logging is off the measurement path (the virtual engine never charges log
// time into emulated time).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace dssoc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  /// Writes one complete line to stderr under the sink lock.
  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dssoc

#define DSSOC_LOG(level)                                  \
  if (!::dssoc::Logger::instance().enabled(level)) {      \
  } else                                                  \
    ::dssoc::detail::LogLine(level)

#define DSSOC_LOG_DEBUG DSSOC_LOG(::dssoc::LogLevel::kDebug)
#define DSSOC_LOG_INFO DSSOC_LOG(::dssoc::LogLevel::kInfo)
#define DSSOC_LOG_WARN DSSOC_LOG(::dssoc::LogLevel::kWarn)
#define DSSOC_LOG_ERROR DSSOC_LOG(::dssoc::LogLevel::kError)
