#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace dssoc {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string format_double_roundtrip(double value) {
  char buffer[32];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return std::string(buffer, result.ptr);
}

std::string format_hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) {
    return std::string(text);
  }
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
  if (text.size() >= width) {
    return std::string(text);
  }
  return std::string(text) + std::string(width - text.size(), ' ');
}

}  // namespace dssoc
