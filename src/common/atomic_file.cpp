#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc {

void write_file_atomic(const std::string& path, const void* data,
                       std::size_t size) {
  // Same directory as the target: rename() is only atomic within one
  // filesystem. The pid suffix keeps concurrent writers of *different*
  // targets from colliding; concurrent writers of the same target race to
  // a last-rename-wins, each leaving a complete file.
  const std::string temp = cat(path, ".tmp.", ::getpid());
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw DssocError(cat("cannot open \"", temp,
                         "\" for writing: ", std::strerror(errno)));
  }
  const auto fail = [&](const char* what) -> DssocError {
    const int saved = errno;
    ::close(fd);
    ::unlink(temp.c_str());
    return DssocError(
        cat(what, " \"", temp, "\": ", std::strerror(saved)));
  };
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t wrote = ::write(fd, bytes + done, size - done);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw fail("failed writing");
    }
    done += static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd) != 0) {
    throw fail("failed syncing");
  }
  if (::close(fd) != 0) {
    const int saved = errno;
    ::unlink(temp.c_str());
    throw DssocError(
        cat("failed closing \"", temp, "\": ", std::strerror(saved)));
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(temp.c_str());
    throw DssocError(cat("failed renaming \"", temp, "\" to \"", path,
                         "\": ", std::strerror(saved)));
  }
  // Durability of the rename itself: sync the containing directory. Failure
  // here is not worth failing the run over — the file is already complete
  // and visible.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

void write_file_atomic(const std::string& path, const std::string& contents) {
  write_file_atomic(path, contents.data(), contents.size());
}

}  // namespace dssoc
