// Fault-isolated process-pool sweep fabric.
//
// exp::SweepRunner fans points across threads of one process — fast, but a
// single bad point (OOM, stuck spin loop, latent engine bug) takes down the
// whole sweep and every result with it. ProcessPool is the containment
// variant the ROADMAP's distributed-sweep-fabric item asks for: a
// fork-server supervisor pre-forks N worker processes (each inherits the
// fully-built point vector by fork, so only point *indices* and results
// cross the pipes — see exp/wire.hpp), dispatches points, and collects
// results in input order exactly like SweepRunner. Every failure mode is
// contained:
//
//  * worker crash (nonzero exit or signal): the worker is respawned and the
//    point retried with exponential backoff, up to a bounded attempt count;
//    exhausted attempts mark the point PointStatus::kFailed and the sweep
//    continues.
//  * per-point wall-clock timeout: the worker is SIGKILLed and the point
//    requeued through the same retry path.
//  * malformed, truncated or garbled result frames (detected by the frame
//    header check and the state_io CRC-32 trailer): treated as a crash —
//    the worker is discarded, the point retried.
//
// A clean run is bit-identical to SweepRunner over the same points (each
// worker process runs core::run_virtual with a per-process instance pool,
// exactly like a SweepRunner worker thread; tests pin the digests equal).
//
// Fabric selection: run_sweep() reads DSSOC_SWEEP_FABRIC — unset/"off"/
// "inproc" runs the in-process SweepRunner, "proc" runs the ProcessPool,
// falling back to in-process transparently when fork/pipes are unavailable.
//
// Deterministic fault injection (tests, CI): DSSOC_FAULT_INJECT =
// crash@K | hang@K | garble@K [+ ":N"] makes the worker holding point K
// crash / hang / corrupt its result frame on the first N attempts (every
// attempt when ":N" is omitted), exercising each containment path on
// demand. killsup@K targets the *supervisor* instead: the driver process
// _exit(43)s after K results have been collected (and journaled, when a
// journal is attached) — the deterministic mid-sweep crash behind the
// resume tests and the CI sweep-resume job.
//
// Graceful shutdown: run() installs SIGINT/SIGTERM handlers (self-pipe into
// the poll loop) for its duration. On a signal the supervisor stops
// dispatching, reaps every worker, marks unresolved points failed
// ("interrupted by signal N") and returns the partial result vector —
// journaled results are already on disk, so a resumed run re-executes only
// what the interruption voided.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/sweep.hpp"

namespace dssoc::exp {

/// Parsed DSSOC_FAULT_INJECT plan, checked inside the worker loop before a
/// point runs (crash/hang) or before its result frame is written (garble).
/// kKillSup is supervisor-side: run_sweep() _exit(43)s the driver process
/// after K collected results (see file comment).
struct FaultPlan {
  enum class Kind { kNone, kCrash, kHang, kGarble, kKillSup };

  Kind kind = Kind::kNone;
  /// Sweep point index the fault targets — or, for kKillSup, the collected
  /// result count that triggers the supervisor exit.
  std::size_t point = 0;
  int attempts = -1;  ///< fire on the first N attempts; -1 = every one

  /// True when the fault fires for this (point, 1-based attempt). Always
  /// false for kKillSup — it is not a per-point worker fault.
  bool fires(std::size_t point_index, int attempt) const;

  /// Parses "crash@K", "hang@K", "garble@K", optionally ":N"-suffixed
  /// ("crash@3:1" = crash the first attempt of point 3 only), and
  /// "killsup@K" (K >= 1, no ":N"). An empty spec is kNone; anything
  /// malformed throws DssocError.
  static FaultPlan parse(const std::string& spec);
  /// parse() of DSSOC_FAULT_INJECT (kNone when unset).
  static FaultPlan from_env();
};

/// Supervisor tunables; from_env() is what drivers use.
struct ProcessPoolOptions {
  /// Worker process count; <= 0 resolves DSSOC_SWEEP_PROCS, then the
  /// SweepRunner thread resolution (DSSOC_SWEEP_THREADS / hardware).
  int workers = 0;
  /// Retries per point after the first attempt (DSSOC_SWEEP_RETRIES).
  int max_retries = 2;
  /// Per-point wall-clock budget in ms; 0 disables the watchdog
  /// (DSSOC_SWEEP_TIMEOUT_MS). Keep disabled for full-scale sweeps whose
  /// legitimate points run long.
  double timeout_ms = 0.0;
  /// Delay before the first retry of a point, doubling per further retry
  /// (DSSOC_SWEEP_BACKOFF_MS).
  double backoff_ms = 25.0;

  static ProcessPoolOptions from_env();
};

/// Raised when the fabric cannot start at all (fork or pipe creation failed
/// for the initial worker set); run_sweep() degrades to the in-process
/// runner on this error. Failures after startup are contained per point,
/// never thrown.
class FabricUnavailable : public DssocError {
 public:
  using DssocError::DssocError;
};

/// The fork-server supervisor. Not thread-safe; run() is serial from the
/// caller's perspective and leaves no children or inherited pipe fds behind
/// (normal return and exception paths both reap every worker).
class ProcessPool {
 public:
  /// Per-run failure accounting, exposed for the artifact writer.
  struct Accounting {
    std::size_t worker_respawns = 0;  ///< crashes + timeouts + garbles
    std::size_t points_failed = 0;    ///< exhausted retries + interrupted
    std::size_t points_retried = 0;   ///< retry dispatches performed
    /// Signal that gracefully stopped the run (0 = ran to completion).
    int interrupted_signal = 0;
  };

  explicit ProcessPool(
      ProcessPoolOptions options = ProcessPoolOptions::from_env());

  int workers() const noexcept { return workers_; }
  const Accounting& accounting() const noexcept { return accounting_; }

  /// Runs every point across the worker processes. Results land at their
  /// point's input index; contained failures surface as
  /// PointStatus::kFailed entries (never exceptions). Throws
  /// FabricUnavailable only when no worker could be forked at startup, and
  /// DssocError on a malformed DSSOC_FAULT_INJECT spec. `on_result`
  /// (optional) fires from the supervisor thread for each terminal ok or
  /// failed result as it lands — never for points voided by a signal
  /// interruption (those must re-run on resume).
  std::vector<SweepResult> run(const std::vector<SweepPoint>& points,
                               const ResultCallback& on_result = {});

  /// True when the platform supports fork + pipes at all.
  static bool available() noexcept;

 private:
  ProcessPoolOptions options_;
  int workers_;
  Accounting accounting_;
};

/// One sweep execution's results plus which fabric actually ran it — the
/// metadata BENCH_sweep.json schema 4 stamps into the artifact.
struct SweepExecution {
  std::vector<SweepResult> results;
  std::string fabric = "inproc";  ///< "inproc" or "proc"
  int width = 0;                  ///< threads (inproc) or workers (proc)
  std::size_t worker_respawns = 0;
  std::size_t points_failed = 0;
  /// True when DSSOC_SWEEP_RESUME=1 found a pre-existing journal to resume
  /// from (even one that ended up contributing zero reusable records).
  bool resumed = false;
  /// Points replayed from the journal instead of executed.
  std::size_t journal_points_reused = 0;
  /// Signal that gracefully stopped the run (0 = ran to completion);
  /// unresolved points are kFailed with an "interrupted" error.
  int interrupted_signal = 0;

  /// Labels + reasons of failed points, for driver-side reporting.
  std::vector<const SweepResult*> failed() const;
};

/// DSSOC_SWEEP_FABRIC normalized to "inproc" or "proc"; throws DssocError
/// on any other value.
std::string sweep_fabric_from_env();

/// Driver-side failure report: one line per failed point (label, reason,
/// attempts), or the empty string when every point completed. Drivers print
/// this after their tables so a contained failure is visible without
/// digging into the JSON artifact.
std::string failure_summary(const std::vector<SweepResult>& results);

/// Driver-side resume report: one line naming how many points were replayed
/// from the journal vs. re-executed, or the empty string when no journal
/// reuse happened.
std::string resume_summary(const SweepExecution& execution);

/// Runs the sweep on the environment-selected fabric (see file comment).
/// `width` > 0 pins the thread/worker count. In-process failures still
/// rethrow (SweepRunner semantics); process-fabric failures are contained
/// as kFailed results.
///
/// Durability (DSSOC_SWEEP_JOURNAL=path): every terminal result is appended
/// to the journal as it lands, whichever fabric runs. Resume
/// (DSSOC_SWEEP_RESUME=1, requires the journal): points whose canonical
/// config hash matches a journaled ok record are replayed from the journal
/// — bit-identical, source == kJournal — and only the rest execute; the
/// merged result vector is indistinguishable (per-point digests and table
/// values) from an uninterrupted run's. Changed or failed points always
/// re-execute.
SweepExecution run_sweep(const std::vector<SweepPoint>& points,
                         int width = 0);

}  // namespace dssoc::exp
