// Parallel sweep execution (the experiment layer).
//
// Every headline result of the paper — Fig. 9-11, Tables I-II, the
// design-space-exploration case study — is a *sweep*: dozens of independent
// emulations across configurations x schedulers x injection rates. A
// SweepPoint is one such emulation; SweepRunner fans the points across a
// host thread pool. Points are completely independent (each engine owns its
// runtimes, instances and RNG; the shared Platform / ApplicationLibrary /
// SharedObjectRegistry are only read), so results are bit-identical to a
// serial run and are returned in input order regardless of which thread
// finished first.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/emulation.hpp"

namespace dssoc::exp {

/// One independent emulation of a sweep: a full engine configuration plus
/// the arrival trace to drive through it.
struct SweepPoint {
  std::string label;  ///< e.g. "3C+2F/EFT/6.92"
  core::EmulationSetup setup;
  core::Workload workload;
  /// Injection window the workload was generated over (0 = not
  /// arrival-driven, e.g. validation mode). Declaring it lets the
  /// DSSOC_ARRIVALS whole-sweep override (exp/sweep_env.hpp) regenerate the
  /// point's trace from a different arrival process over the same window.
  SimTime time_frame = 0;
};

/// Terminal state of one sweep point. In-process runs either succeed or
/// rethrow (kOk/kSaturated everywhere); the fault-isolated process fabric
/// (exp/proc_pool.hpp) contains failures instead, marking the casualty
/// kFailed and completing the rest of the sweep. kSaturated is a *clean*
/// termination: the engine's overload detector cut the point and its stats
/// (up to the cut) are valid — but the point did not complete its workload,
/// so tables must not mix it into completed-run reductions
/// (exp/aggregate.hpp skips it) and bench_compare.py refuses to diff runs
/// whose non-ok point sets differ.
enum class PointStatus { kOk, kFailed, kSaturated };

/// "ok" / "failed" / "saturated" — the BENCH_sweep.json status strings.
const char* to_string(PointStatus status);

/// kSaturated when the engine's overload cut terminated the run, else kOk.
/// The fabrics derive every successful result's status through this, so
/// saturation classification is identical in-process and cross-process.
PointStatus status_from_stats(const core::EmulationStats& stats);

/// Where a result's bytes came from: freshly executed this run, or replayed
/// from a durable sweep journal (exp/journal.hpp) whose config hash matched.
enum class ResultSource { kRun, kJournal };

/// "run" / "journal" — the BENCH_sweep.json schema-4 source strings.
const char* to_string(ResultSource source);

/// The outcome of one point, plus the host wall time it took (the
/// perf-trajectory datum BENCH_sweep.json records).
struct SweepResult {
  std::string label;
  core::EmulationStats stats;
  double wall_ms = 0.0;
  PointStatus status = PointStatus::kOk;
  /// Failure reason (point index, config label, cause) when kFailed.
  std::string error;
  /// Extra attempts consumed before the terminal state (0 on a clean run).
  int retries = 0;
  /// Fresh execution vs. journal replay (always kRun outside resume mode).
  ResultSource source = ResultSource::kRun;
  /// Canonical config hash of the point that produced this result (0 when
  /// no journal is in play — hashing is skipped entirely off the journal
  /// path so the hot path stays untouched).
  std::uint64_t config_hash = 0;
};

/// Invoked by a sweep fabric as each point reaches its *terminal* state —
/// the durable-journal hook. `index` is the point's input index within the
/// vector handed to the fabric. SweepRunner invokes it from worker threads
/// (serialized internally) on success only (failures rethrow); ProcessPool
/// invokes it from the single supervisor thread on both ok and failed
/// terminal results, but never for points voided by a signal interruption.
using ResultCallback =
    std::function<void(std::size_t index, const SweepResult& result)>;

/// Rethrows a captured per-point exception with the point index and config
/// label prepended to the message, preserving the dynamic type for the
/// framework's exception hierarchy (StateError stays StateError, ConfigError
/// stays ConfigError, ...). A mid-sweep throw thus always names which point
/// died instead of surfacing a bare engine message.
[[noreturn]] void rethrow_point_error(const std::exception_ptr& error,
                                      std::size_t point_index,
                                      const std::string& label);

/// Fans independent emulation points across a std::thread pool.
class SweepRunner {
 public:
  /// threads <= 0 resolves the pool size from the DSSOC_SWEEP_THREADS
  /// environment variable, falling back to std::thread::hardware_concurrency.
  explicit SweepRunner(int threads = 0);

  int threads() const noexcept { return threads_; }

  /// Runs every point. Work is handed out through an atomic cursor; results
  /// land at their point's input index, so ordering is deterministic. The
  /// first failing point's exception (by input order) is rethrown after the
  /// pool drains. `on_result` (optional) fires for each successful point as
  /// it lands — even when a later point's rethrow abandons the sweep, every
  /// completed point was reported (what makes mid-sweep crashes resumable).
  std::vector<SweepResult> run(const std::vector<SweepPoint>& points,
                               const ResultCallback& on_result = {}) const;

  /// The pool size `requested` resolves to (env var / hardware fallback),
  /// before capping by point count.
  static int resolve_threads(int requested);

  // --- fork mode -----------------------------------------------------------

  /// A warmed engine snapshot plus the wall time spent producing it.
  struct Warmup {
    core::EngineSnapshot snapshot;
    double wall_ms = 0.0;
  };

  /// Runs `warmup` through an engine configured by `base` until the first
  /// quiescent cycle boundary at or after `fork_time`, and captures the
  /// snapshot every forked point restores from. Serial (it is one
  /// emulation); the returned wall time is the warm-up cost every forked
  /// point skips.
  static Warmup warm_up(const core::EmulationSetup& base,
                        const core::Workload& warmup, SimTime fork_time);

  /// Runs every point by restoring `snapshot` and finishing, instead of
  /// emulating from time zero. Each point's workload must extend the
  /// snapshot's consumed arrival prefix (checkpoint.hpp's fork rules;
  /// violations throw StateError through the usual first-by-input-order
  /// rethrow). Results are bit-identical to run() over the same composite
  /// workloads — fork mode only skips re-emulating the shared warm-up.
  std::vector<SweepResult> run_forked(
      const std::vector<SweepPoint>& points,
      const core::EngineSnapshot& snapshot,
      const ResultCallback& on_result = {}) const;

 private:
  std::vector<SweepResult> run_impl(const std::vector<SweepPoint>& points,
                                    const core::EngineSnapshot* snapshot,
                                    const ResultCallback& on_result) const;

  int threads_;
};

/// Opt-in helper for drivers that want distinct per-point RNG streams
/// derived from one sweep-level seed: deterministic, well-mixed seeds per
/// point index (splitmix64 of seed + f(index)). The runner itself never
/// reseeds a point — each emulation uses whatever
/// `setup.options.seed` its driver put in the SweepPoint.
std::uint64_t point_seed(std::uint64_t sweep_seed, std::size_t point_index);

}  // namespace dssoc::exp
