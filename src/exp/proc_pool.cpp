#include "exp/proc_pool.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <optional>
#include <thread>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "exp/journal.hpp"
#include "exp/wire.hpp"

namespace dssoc::exp {

namespace {

using Clock = std::chrono::steady_clock;

double ms_until(Clock::time_point when, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(when - now).count();
}

Clock::time_point after_ms(Clock::time_point from, double ms) {
  return from + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
}

int env_int(const char* name, int fallback, int min_value) {
  if (const char* env = std::getenv(name)) {
    const int parsed = std::atoi(env);
    if (parsed >= min_value) {
      return parsed;
    }
  }
  return fallback;
}

double env_ms(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double parsed = std::atof(env);
    if (parsed >= 0.0) {
      return parsed;
    }
  }
  return fallback;
}

std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return cat("exit code ", WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return cat("signal ", WTERMSIG(status));
  }
  return cat("wait status ", status);
}

/// Restores the previous SIGPIPE disposition on scope exit. The supervisor
/// writes job frames into pipes whose worker may just have died; with the
/// default disposition that one EPIPE would kill the whole sweep.
class SigpipeGuard {
 public:
  SigpipeGuard() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &old_);
  }
  ~SigpipeGuard() { ::sigaction(SIGPIPE, &old_, nullptr); }
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  struct sigaction old_ {};
};

// Self-pipe signal delivery: the handler only sets a flag and writes one
// byte (both async-signal-safe); the poll loop owns everything else. File
// scope because signal handlers cannot capture state.
volatile sig_atomic_t g_signal_seen = 0;
int g_signal_pipe_wr = -1;

void on_stop_signal(int sig) {
  g_signal_seen = sig;
  if (g_signal_pipe_wr >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe_wr, &byte, 1);
  }
}

/// Installs SIGINT/SIGTERM handlers feeding a self-pipe for the supervisor
/// loop's lifetime; restores the previous dispositions on scope exit. If
/// pipe creation fails the guard degrades to "no graceful shutdown" (fds
/// stay -1, handlers untouched) rather than failing the sweep.
class SignalGuard {
 public:
  SignalGuard() {
    if (::pipe(fds_) != 0) {
      fds_[0] = fds_[1] = -1;
      return;
    }
    ::fcntl(fds_[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds_[1], F_SETFL, O_NONBLOCK);
    g_signal_seen = 0;
    g_signal_pipe_wr = fds_[1];
    struct sigaction action {};
    action.sa_handler = on_stop_signal;
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
    installed_ = true;
  }
  ~SignalGuard() {
    if (installed_) {
      ::sigaction(SIGINT, &old_int_, nullptr);
      ::sigaction(SIGTERM, &old_term_, nullptr);
      g_signal_pipe_wr = -1;
    }
    close_fd(fds_[0]);
    close_fd(fds_[1]);
  }
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  int read_fd() const noexcept { return fds_[0]; }
  int write_fd() const noexcept { return fds_[1]; }
  int seen() const noexcept { return static_cast<int>(g_signal_seen); }

  /// Forked workers must not act as supervisors: default dispositions back,
  /// inherited pipe ends closed (a worker holding the write end would keep
  /// the self-pipe readable forever).
  void reset_in_child() const {
    if (installed_) {
      struct sigaction dfl {};
      dfl.sa_handler = SIG_DFL;
      ::sigaction(SIGINT, &dfl, nullptr);
      ::sigaction(SIGTERM, &dfl, nullptr);
      g_signal_pipe_wr = -1;
    }
    if (fds_[0] >= 0) {
      ::close(fds_[0]);
    }
    if (fds_[1] >= 0) {
      ::close(fds_[1]);
    }
  }

 private:
  static void close_fd(int& fd) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  int fds_[2] = {-1, -1};
  bool installed_ = false;
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

/// The worker process body: read jobs, run points, answer results. Never
/// returns; never touches stdio (the parent owns those buffers — flushed
/// before fork, but a worker must not add to them).
[[noreturn]] void worker_main(const std::vector<SweepPoint>& points,
                              int job_rd, int result_wr,
                              const FaultPlan& fault) {
  // One instance pool per worker *process*, alive across its points — the
  // same recycling discipline as a SweepRunner worker thread, which is what
  // keeps the fabrics bit-identical.
  core::AppInstancePool pool;
  std::vector<std::uint8_t> payload;
  for (;;) {
    bool got = false;
    try {
      got = read_frame(job_rd, payload);
    } catch (...) {
      _exit(3);  // desynced job stream: nothing sane left to do
    }
    if (!got) {
      _exit(0);  // clean EOF: supervisor closed the job pipe, shut down
    }
    WireJob job;
    try {
      job = decode_job(payload);
    } catch (...) {
      _exit(3);
    }
    if (job.point_index >= points.size()) {
      _exit(3);
    }
    const SweepPoint& point = points[job.point_index];
    const bool inject =
        fault.fires(job.point_index, static_cast<int>(job.attempt));
    if (inject && fault.kind == FaultPlan::Kind::kCrash) {
      _exit(42);  // the injected "latent engine bug" path
    }
    if (inject && fault.kind == FaultPlan::Kind::kHang) {
      for (;;) {  // the injected "stuck spin loop": only SIGKILL ends it
        std::this_thread::sleep_for(std::chrono::seconds(3600));
      }
    }

    WireResult result;
    result.point_index = job.point_index;
    result.attempt = job.attempt;
    Stopwatch watch;
    try {
      result.stats = core::run_virtual(point.setup, point.workload, &pool);
      result.ok = true;
    } catch (const std::exception& e) {
      result.ok = false;
      result.error = e.what();
    }
    result.wall_ms = sim_to_ms(watch.elapsed());

    std::vector<std::uint8_t> bytes = encode_result(result);
    if (inject && fault.kind == FaultPlan::Kind::kGarble &&
        bytes.size() > 24) {
      // Flip one payload byte *after* the CRC was computed: the frame
      // delimits fine, the state_io trailer check must catch the damage.
      bytes[bytes.size() / 2] ^= 0xFF;
    }
    try {
      write_frame(result_wr, bytes.data(), bytes.size());
    } catch (...) {
      _exit(4);  // supervisor is gone; don't linger as an orphan
    }
  }
}

struct Worker {
  pid_t pid = -1;
  int job_wr = -1;     ///< parent-side job pipe end
  int result_rd = -1;  ///< parent-side result pipe end (non-blocking)
  FrameBuffer rx;
  bool busy = false;
  std::size_t point = 0;
  int attempt = 0;
  Clock::time_point deadline = Clock::time_point::max();
};

struct PendingPoint {
  std::size_t index = 0;
  int attempt = 1;
  Clock::time_point ready = Clock::time_point::min();
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

// --- FaultPlan --------------------------------------------------------------

bool FaultPlan::fires(std::size_t point_index, int attempt) const {
  if (kind == Kind::kNone || kind == Kind::kKillSup || point_index != point) {
    return false;
  }
  return attempts < 0 || attempt <= attempts;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) {
    return plan;
  }
  const auto bad = [&spec]() -> DssocError {
    return DssocError(
        cat("malformed fault spec \"", spec,
            "\" — expected crash@K, hang@K or garble@K (optional :N "
            "attempt count, e.g. crash@3:1), or killsup@K (K >= 1 "
            "collected results, no :N)"));
  };
  const std::size_t at = spec.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= spec.size()) {
    throw bad();
  }
  const std::string kind = spec.substr(0, at);
  std::string index = spec.substr(at + 1);
  std::string count;
  bool has_count = false;
  if (const std::size_t colon = index.find(':');
      colon != std::string::npos) {
    count = index.substr(colon + 1);
    index = index.substr(0, colon);
    has_count = true;
  }
  if (kind == "crash") {
    plan.kind = Kind::kCrash;
  } else if (kind == "hang") {
    plan.kind = Kind::kHang;
  } else if (kind == "garble") {
    plan.kind = Kind::kGarble;
  } else if (kind == "killsup") {
    plan.kind = Kind::kKillSup;
  } else {
    throw bad();
  }
  const auto all_digits = [](const std::string& text) {
    if (text.empty()) {
      return false;
    }
    for (const char c : text) {
      if (c < '0' || c > '9') {
        return false;
      }
    }
    return true;
  };
  if (!all_digits(index)) {
    throw bad();
  }
  plan.point = static_cast<std::size_t>(std::stoull(index));
  if (plan.kind == Kind::kKillSup && (has_count || plan.point < 1)) {
    throw bad();  // ":N" is meaningless and K=0 would fire before any result
  }
  if (has_count) {
    if (!all_digits(count) || count.size() > 9) {
      throw bad();
    }
    plan.attempts = std::stoi(count);
    if (plan.attempts < 1) {
      throw bad();
    }
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* env = std::getenv("DSSOC_FAULT_INJECT");
  return parse(env != nullptr ? env : "");
}

// --- options ----------------------------------------------------------------

ProcessPoolOptions ProcessPoolOptions::from_env() {
  ProcessPoolOptions options;
  options.workers = env_int("DSSOC_SWEEP_PROCS", 0, 1);
  options.max_retries = env_int("DSSOC_SWEEP_RETRIES", options.max_retries, 0);
  options.timeout_ms = env_ms("DSSOC_SWEEP_TIMEOUT_MS", options.timeout_ms);
  options.backoff_ms = env_ms("DSSOC_SWEEP_BACKOFF_MS", options.backoff_ms);
  return options;
}

// --- ProcessPool ------------------------------------------------------------

ProcessPool::ProcessPool(ProcessPoolOptions options)
    : options_(options),
      workers_(options.workers > 0
                   ? options.workers
                   : SweepRunner::resolve_threads(0)) {}

bool ProcessPool::available() noexcept {
  return true;  // POSIX fork + pipes; the runtime fallback is startup-time
}

std::vector<SweepResult> ProcessPool::run(
    const std::vector<SweepPoint>& points, const ResultCallback& on_result) {
  accounting_ = Accounting{};
  std::vector<SweepResult> results(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    results[i].label = points[i].label;
  }
  if (points.empty()) {
    return results;
  }
  // Validate the fault spec in the supervisor, before any fork: a malformed
  // spec is a usage error and should fail the run loudly, not kill workers.
  const FaultPlan fault = FaultPlan::from_env();

  const int worker_count =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(workers_), points.size()));
  std::vector<Worker> workers(static_cast<std::size_t>(worker_count));

  SigpipeGuard sigpipe_guard;
  SignalGuard signal_guard;

  // Spawns (or respawns) the worker in `slot`. Throws FabricUnavailable on
  // pipe/fork failure; the caller decides whether that is fatal.
  const auto spawn = [&](Worker& w) {
    int job_fds[2];
    int result_fds[2];
    if (::pipe(job_fds) != 0) {
      throw FabricUnavailable(
          cat("pipe() failed: ", std::strerror(errno)));
    }
    if (::pipe(result_fds) != 0) {
      const int saved = errno;
      ::close(job_fds[0]);
      ::close(job_fds[1]);
      throw FabricUnavailable(cat("pipe() failed: ", std::strerror(saved)));
    }
    // The child inherits the parent's stdio buffers; flush so nothing
    // pending gets emitted twice.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int saved = errno;
      ::close(job_fds[0]);
      ::close(job_fds[1]);
      ::close(result_fds[0]);
      ::close(result_fds[1]);
      throw FabricUnavailable(cat("fork() failed: ", std::strerror(saved)));
    }
    if (pid == 0) {
      // Worker: keep only this worker's child-side ends. Closing every
      // other worker's parent-side ends matters — a child holding a
      // sibling's job-pipe write end would keep that sibling alive past
      // the supervisor's shutdown EOF.
      ::close(job_fds[1]);
      ::close(result_fds[0]);
      for (const Worker& other : workers) {
        if (other.job_wr >= 0) {
          ::close(other.job_wr);
        }
        if (other.result_rd >= 0) {
          ::close(other.result_rd);
        }
      }
      signal_guard.reset_in_child();
      worker_main(points, job_fds[0], result_fds[1], fault);
    }
    ::close(job_fds[0]);
    ::close(result_fds[1]);
    w.pid = pid;
    w.job_wr = job_fds[1];
    w.result_rd = result_fds[0];
    ::fcntl(w.result_rd, F_SETFL, O_NONBLOCK);
    w.rx = FrameBuffer{};
    w.busy = false;
  };

  // Reaps every worker and closes every fd; `force` SIGKILLs instead of
  // waiting for the EOF-triggered clean exit.
  const auto shutdown = [&](bool force) {
    for (Worker& w : workers) {
      close_fd(w.job_wr);  // EOF: a idle worker _exit(0)s promptly
    }
    for (Worker& w : workers) {
      if (w.pid <= 0) {
        continue;
      }
      if (force) {
        ::kill(w.pid, SIGKILL);
      }
      int status = 0;
      bool reaped = false;
      // Grace period for the EOF path; a worker that ignores it (stuck in
      // an injected hang with the watchdog off) is killed outright.
      for (int spin = 0; spin < 2000 && !reaped; ++spin) {
        const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
        if (r == w.pid || (r < 0 && errno == ECHILD)) {
          reaped = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (!reaped) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, &status, 0);
      }
      w.pid = -1;
      close_fd(w.result_rd);
    }
  };

  std::deque<PendingPoint> pending;
  for (std::size_t i = 0; i < points.size(); ++i) {
    pending.push_back(PendingPoint{i, 1, Clock::time_point::min()});
  }
  std::size_t unresolved = points.size();

  // Terminal-failure / requeue decision for the attempt that just died.
  const auto retry_or_fail = [&](std::size_t index, int attempt,
                                 const std::string& reason) {
    if (attempt >= options_.max_retries + 1) {
      results[index].status = PointStatus::kFailed;
      results[index].error =
          cat("sweep point ", index, " (", points[index].label, "): ",
              reason, " — failed after ", attempt, " attempt(s)");
      results[index].retries = attempt - 1;
      ++accounting_.points_failed;
      --unresolved;
      if (on_result) {
        on_result(index, results[index]);
      }
      return;
    }
    ++accounting_.points_retried;
    const double delay =
        options_.backoff_ms * static_cast<double>(1 << (attempt - 1));
    pending.push_back(
        PendingPoint{index, attempt + 1, after_ms(Clock::now(), delay)});
  };

  // Reap + respawn a dead worker; requeues its assignment if it held one.
  // Returns false when the slot could not be respawned (marked dead).
  const auto worker_died = [&](Worker& w, const std::string& reason) {
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.pid = -1;
    ++accounting_.worker_respawns;
    const bool had_assignment = w.busy;
    const std::size_t index = w.point;
    const int attempt = w.attempt;
    w.busy = false;
    close_fd(w.job_wr);
    close_fd(w.result_rd);
    if (had_assignment) {
      retry_or_fail(index, attempt,
                    cat(reason, " (", describe_exit(status), ")"));
    }
    try {
      spawn(w);
    } catch (const FabricUnavailable&) {
      return false;  // slot stays dead; run() checks live capacity
    }
    return true;
  };

  const auto kill_and_respawn = [&](Worker& w, const std::string& reason) {
    ::kill(w.pid, SIGKILL);
    return worker_died(w, reason);
  };

  // Handles one decoded result frame for the worker that sent it.
  const auto handle_result = [&](Worker& w, WireResult result) {
    if (!w.busy || result.point_index != w.point ||
        static_cast<int>(result.attempt) != w.attempt) {
      // Answer for a point this worker does not hold: the stream is not
      // trustworthy any more — same treatment as a garbled frame.
      kill_and_respawn(w, "out-of-order result frame");
      return;
    }
    const std::size_t index = w.point;
    const int attempt = w.attempt;
    w.busy = false;
    if (result.ok) {
      results[index].stats = std::move(result.stats);
      results[index].wall_ms = result.wall_ms;
      // Saturation travels inside the stats encoding, so the supervisor
      // classifies worker results exactly like the in-process runner.
      results[index].status = status_from_stats(results[index].stats);
      results[index].retries = attempt - 1;
      --unresolved;
      if (on_result) {
        on_result(index, results[index]);
      }
      return;
    }
    // Worker-reported engine error (caught exception): deterministic or
    // not, it gets the same bounded retry treatment as a crash.
    retry_or_fail(index, attempt, result.error);
  };

  // Drains a worker's result pipe and processes complete frames.
  const auto drain_worker = [&](Worker& w) {
    for (;;) {
      std::uint8_t buf[65536];
      const ssize_t got = ::read(w.result_rd, buf, sizeof(buf));
      if (got > 0) {
        w.rx.feed(buf, static_cast<std::size_t>(got));
        continue;
      }
      if (got == 0) {
        worker_died(w, w.busy ? "worker crashed" : "idle worker exited");
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      worker_died(w, cat("result pipe read failed: ",
                         std::strerror(errno)));
      return;
    }
    try {
      std::vector<std::uint8_t> payload;
      while (w.rx.take_frame(payload)) {
        handle_result(w, decode_result(payload));
        if (w.pid <= 0) {
          return;  // handle_result discarded the worker
        }
      }
    } catch (const DssocError& e) {
      // Bad frame magic (WireError) or CRC/layout corruption inside the
      // frame (StateError): the worker's stream is garbage from here on.
      kill_and_respawn(w, cat("malformed result frame: ", e.what()));
    }
  };

  // Assigns one pending-and-ready point to `w`. Returns true if dispatched.
  const auto dispatch_to = [&](Worker& w) {
    const Clock::time_point now = Clock::now();
    for (auto it = pending.begin(); it != pending.end(); ++it) {
      if (it->ready > now) {
        continue;
      }
      const PendingPoint item = *it;
      pending.erase(it);
      const std::vector<std::uint8_t> bytes = encode_job(
          WireJob{static_cast<std::uint64_t>(item.index),
                  static_cast<std::uint32_t>(item.attempt)});
      try {
        write_frame(w.job_wr, bytes.data(), bytes.size());
      } catch (const WireError&) {
        // Worker died while idle; charge the attempt (bounds pathological
        // respawn loops) and let the fresh worker pick the retry up.
        w.busy = true;
        w.point = item.index;
        w.attempt = item.attempt;
        worker_died(w, "job dispatch failed");
        return false;
      }
      w.busy = true;
      w.point = item.index;
      w.attempt = item.attempt;
      w.deadline = options_.timeout_ms > 0.0
                       ? after_ms(now, options_.timeout_ms)
                       : Clock::time_point::max();
      return true;
    }
    return false;
  };

  try {
    for (Worker& w : workers) {
      spawn(w);  // FabricUnavailable propagates: nothing started yet
    }

    while (unresolved > 0) {
      // Keep every idle live worker fed with whatever is ready.
      for (Worker& w : workers) {
        if (w.pid > 0 && !w.busy) {
          dispatch_to(w);
        }
      }
      std::size_t live = 0;
      for (const Worker& w : workers) {
        live += w.pid > 0 ? 1u : 0u;
      }
      if (live == 0) {
        throw DssocError(
            "process-pool fabric lost every worker and could not respawn "
            "any — aborting the sweep");
      }

      // Sleep until the next result, deadline or backoff release.
      const Clock::time_point now = Clock::now();
      double wait_ms = -1.0;
      for (const Worker& w : workers) {
        if (w.pid > 0 && w.busy &&
            w.deadline != Clock::time_point::max()) {
          const double d = ms_until(w.deadline, now);
          wait_ms = wait_ms < 0.0 ? d : std::min(wait_ms, d);
        }
      }
      for (const PendingPoint& item : pending) {
        if (item.ready != Clock::time_point::min()) {
          const double d = ms_until(item.ready, now);
          wait_ms = wait_ms < 0.0 ? d : std::min(wait_ms, d);
        }
      }
      std::vector<pollfd> fds;
      std::vector<Worker*> fd_owner;
      for (Worker& w : workers) {
        if (w.pid > 0) {
          fds.push_back(pollfd{w.result_rd, POLLIN, 0});
          fd_owner.push_back(&w);
        }
      }
      if (signal_guard.read_fd() >= 0) {
        // The self-pipe wakes the poll even when the signal lands outside
        // it; no owner — the flag, not the byte, carries the information.
        fds.push_back(pollfd{signal_guard.read_fd(), POLLIN, 0});
        fd_owner.push_back(nullptr);
      }
      int poll_timeout = -1;
      if (wait_ms >= 0.0) {
        poll_timeout = static_cast<int>(
            std::min(std::max(wait_ms, 0.0), 60'000.0)) + 1;
      }
      const int ready = ::poll(fds.data(),
                               static_cast<nfds_t>(fds.size()),
                               poll_timeout);
      if (ready < 0 && errno != EINTR) {
        throw DssocError(cat("poll() failed: ", std::strerror(errno)));
      }
      if (ready > 0) {
        for (std::size_t i = 0; i < fds.size(); ++i) {
          if (fd_owner[i] != nullptr &&
              (fds[i].revents & (POLLIN | POLLHUP | POLLERR))) {
            drain_worker(*fd_owner[i]);
          }
        }
      }

      // Graceful shutdown: a SIGINT/SIGTERM stops dispatch after the drain
      // above (results already in the pipes were collected — and journaled
      // by on_result — before anything is voided). Unresolved points are
      // marked failed so the partial artifact stays well-formed; they
      // re-execute on resume because only ok records are ever replayed.
      if (const int sig = signal_guard.seen(); sig != 0) {
        accounting_.interrupted_signal = sig;
        const auto interrupt_point = [&](std::size_t index) {
          results[index].status = PointStatus::kFailed;
          results[index].error =
              cat("sweep point ", index, " (", points[index].label,
                  "): interrupted by signal ", sig);
          ++accounting_.points_failed;
          --unresolved;
        };
        for (const Worker& w : workers) {
          if (w.pid > 0 && w.busy) {
            interrupt_point(w.point);
          }
        }
        for (const PendingPoint& item : pending) {
          interrupt_point(item.index);
        }
        pending.clear();
        // Force: an interrupted run must not linger for a worker that is
        // mid-point (or stuck) — SIGKILL + reap, then hand back the
        // partial results.
        shutdown(/*force=*/true);
        return results;
      }

      // Watchdog: kill + requeue anything past its wall-clock budget.
      const Clock::time_point checked = Clock::now();
      for (Worker& w : workers) {
        if (w.pid > 0 && w.busy && checked >= w.deadline) {
          kill_and_respawn(
              w, cat("point timed out after ",
                     format_double(options_.timeout_ms, 0), " ms"));
        }
      }
    }
  } catch (...) {
    shutdown(/*force=*/true);
    throw;
  }
  shutdown(/*force=*/false);
  return results;
}

// --- fabric selection -------------------------------------------------------

std::vector<const SweepResult*> SweepExecution::failed() const {
  std::vector<const SweepResult*> out;
  for (const SweepResult& result : results) {
    if (result.status == PointStatus::kFailed) {
      out.push_back(&result);
    }
  }
  return out;
}

std::string failure_summary(const std::vector<SweepResult>& results) {
  std::size_t failed = 0;
  for (const SweepResult& result : results) {
    failed += result.status == PointStatus::kFailed ? 1u : 0u;
  }
  if (failed == 0) {
    return std::string();
  }
  std::string out =
      cat("[sweep] ", failed, " of ", results.size(),
          " point(s) failed and are excluded from the tables:\n");
  for (const SweepResult& result : results) {
    if (result.status == PointStatus::kFailed) {
      out += cat("  - ", result.error, "\n");
    }
  }
  return out;
}

std::string sweep_fabric_from_env() {
  const char* env = std::getenv("DSSOC_SWEEP_FABRIC");
  const std::string value = env != nullptr ? env : "";
  if (value.empty() || value == "off" || value == "inproc") {
    return "inproc";
  }
  if (value == "proc") {
    return "proc";
  }
  throw DssocError(
      cat("DSSOC_SWEEP_FABRIC must be unset, \"off\", \"inproc\" or "
          "\"proc\", got \"",
          value, "\""));
}

std::string resume_summary(const SweepExecution& execution) {
  if (!execution.resumed && execution.journal_points_reused == 0) {
    return std::string();
  }
  return cat("[sweep] journal resume: ", execution.journal_points_reused,
             " of ", execution.results.size(),
             " point(s) replayed from the journal, ",
             execution.results.size() - execution.journal_points_reused,
             " executed\n");
}

namespace {

bool sweep_resume_from_env() {
  const char* env = std::getenv("DSSOC_SWEEP_RESUME");
  const std::string value = env != nullptr ? env : "";
  if (value.empty() || value == "0") {
    return false;
  }
  if (value == "1") {
    return true;
  }
  throw DssocError(
      cat("DSSOC_SWEEP_RESUME must be unset, \"0\" or \"1\", got \"", value,
          "\""));
}

}  // namespace

SweepExecution run_sweep(const std::vector<SweepPoint>& points, int width) {
  SweepExecution execution;

  const char* journal_path = std::getenv("DSSOC_SWEEP_JOURNAL");
  const bool resume = sweep_resume_from_env();
  if (resume && journal_path == nullptr) {
    throw DssocError(
        "DSSOC_SWEEP_RESUME=1 needs DSSOC_SWEEP_JOURNAL=path — there is "
        "no journal to resume from");
  }

  // Journal setup. Hashes are computed once, up front, outside any per-point
  // wall-time measurement; without a journal the hot path never hashes.
  std::optional<SweepJournal> journal;
  std::vector<std::uint64_t> hashes;
  if (journal_path != nullptr) {
    journal.emplace(journal_path);
    hashes.reserve(points.size());
    for (const SweepPoint& point : points) {
      hashes.push_back(point_config_hash(point));
    }
  }

  // Resume partition: replay journaled ok records whose config hash still
  // matches, execute everything else. Failed records never replay.
  std::vector<SweepResult> replayed(points.size());
  std::vector<bool> from_journal(points.size(), false);
  std::vector<std::size_t> todo_map;  // fabric index -> input index
  std::size_t reused = 0;
  if (resume) {
    execution.resumed = journal->recovery().existed;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (const SweepResult* hit = journal->find_ok(hashes[i])) {
        replayed[i] = *hit;
        from_journal[i] = true;
        ++reused;
      } else {
        todo_map.push_back(i);
      }
    }
  }
  execution.journal_points_reused = reused;

  const std::vector<SweepPoint>* run_points = &points;
  std::vector<SweepPoint> todo_points;
  if (reused > 0) {
    todo_points.reserve(todo_map.size());
    for (const std::size_t index : todo_map) {
      todo_points.push_back(points[index]);
    }
    run_points = &todo_points;
  }

  // The terminal-result hook: journal the result under its *input*-index
  // config hash, then (fault injection) kill the supervisor after K
  // collected results — after the journal append + fsync, so exactly K
  // results survive the crash.
  const FaultPlan fault = FaultPlan::from_env();
  std::size_t collected = 0;  // fabric callbacks are serialized
  ResultCallback on_result;
  if (journal.has_value() || fault.kind == FaultPlan::Kind::kKillSup) {
    on_result = [&](std::size_t fabric_index, const SweepResult& result) {
      const std::size_t input_index =
          reused > 0 ? todo_map[fabric_index] : fabric_index;
      if (journal.has_value()) {
        SweepResult keyed = result;
        keyed.config_hash = hashes[input_index];
        journal->append(hashes[input_index], keyed);
      }
      ++collected;
      if (fault.kind == FaultPlan::Kind::kKillSup &&
          collected >= fault.point) {
        // The deterministic mid-sweep supervisor death (killsup@K): flush
        // whatever stdio buffered, then die without unwinding — exactly
        // what an OOM-kill or CI timeout would do, minus the flush.
        std::fflush(nullptr);
        _exit(43);
      }
    };
  }

  // Run the remaining points on the environment-selected fabric.
  std::vector<SweepResult> fresh;
  if (!run_points->empty()) {
    bool ran = false;
    if (sweep_fabric_from_env() == "proc" && ProcessPool::available()) {
      ProcessPoolOptions options = ProcessPoolOptions::from_env();
      if (width > 0) {
        options.workers = width;
      }
      ProcessPool pool(options);
      try {
        fresh = pool.run(*run_points, on_result);
        execution.fabric = "proc";
        execution.width = pool.workers();
        execution.worker_respawns = pool.accounting().worker_respawns;
        execution.points_failed = pool.accounting().points_failed;
        execution.interrupted_signal = pool.accounting().interrupted_signal;
        ran = true;
      } catch (const FabricUnavailable& e) {
        std::cerr << "[sweep] process fabric unavailable (" << e.what()
                  << "); falling back to the in-process runner\n";
      }
    }
    if (!ran) {
      const SweepRunner runner(width);
      fresh = runner.run(*run_points, on_result);
      execution.fabric = "inproc";
      execution.width = runner.threads();
    }
  } else {
    // Everything replayed: no fabric ran, but stamp which one *would* have
    // so resumed artifacts stay comparable to their uninterrupted originals.
    execution.fabric = sweep_fabric_from_env();
  }

  // Merge: journal replays at their input index, fresh results at theirs.
  if (reused == 0) {
    execution.results = std::move(fresh);
  } else {
    execution.results.resize(points.size());
    std::size_t fabric_index = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      execution.results[i] = from_journal[i]
                                 ? std::move(replayed[i])
                                 : std::move(fresh[fabric_index++]);
    }
  }
  if (journal.has_value()) {
    for (std::size_t i = 0; i < execution.results.size(); ++i) {
      execution.results[i].config_hash = hashes[i];
    }
  }
  return execution;
}

}  // namespace dssoc::exp
