// Wire protocol of the process-pool sweep fabric.
//
// The supervisor (exp/proc_pool.hpp) and its forked workers exchange
// messages over pipes. Each message is a state_io stream — versioned DSSB
// header, CRC-32 trailer — so a torn or bit-flipped pipe write is detected
// at the receiver instead of being deserialized into plausible garbage, and
// is carried inside a tiny length-prefixed pipe frame so the receiver knows
// how many bytes to accumulate before parsing.
//
// Two message kinds exist:
//  * job   (supervisor -> worker): which sweep point to run, which attempt.
//    The worker was forked from the supervisor *after* the point vector was
//    built, so the point itself travels by inherited memory — only its
//    index crosses the pipe.
//  * result (worker -> supervisor): the point's EmulationStats (checkpoint
//    encoding) and wall time on success, or the error message on a caught
//    engine failure. A worker that dies instead of answering is detected by
//    pipe EOF, not by any message.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/state_io.hpp"
#include "core/emu_stats.hpp"

namespace dssoc::exp {

/// Raised on pipe-level transport failures: short writes to a dead peer,
/// EOF mid-frame, a frame header that is not a frame header. (Payload
/// corruption inside a well-delimited frame surfaces as StateError from the
/// state_io CRC check instead.)
class WireError : public DssocError {
 public:
  using DssocError::DssocError;
};

/// state_io payload kinds of the two message types.
inline constexpr std::uint32_t kJobKind = state_tag('P', 'J', 'O', 'B');
inline constexpr std::uint32_t kResultKind = state_tag('P', 'R', 'E', 'S');

/// Supervisor -> worker: run sweep point `point_index` (attempt is 1-based
/// and echoed back, so the supervisor can match answers to dispatches and
/// the fault-injection hook can target specific attempts).
struct WireJob {
  std::uint64_t point_index = 0;
  std::uint32_t attempt = 1;
};

std::vector<std::uint8_t> encode_job(const WireJob& job);
/// Throws StateError on a corrupt or truncated payload.
WireJob decode_job(const std::vector<std::uint8_t>& payload);

/// Worker -> supervisor: one point's outcome.
struct WireResult {
  std::uint64_t point_index = 0;
  std::uint32_t attempt = 1;
  bool ok = false;
  std::string error;  ///< caught engine error message when !ok
  double wall_ms = 0.0;
  core::EmulationStats stats;  ///< meaningful when ok
};

std::vector<std::uint8_t> encode_result(const WireResult& result);
/// Throws StateError on a corrupt or truncated payload (the garbled-frame
/// containment path).
WireResult decode_result(const std::vector<std::uint8_t>& payload);

// --- pipe framing -----------------------------------------------------------
//
// frame := magic 'DSSF' (u32 LE) | payload length (u64 LE) | payload bytes

/// Writes one frame, looping over partial writes and EINTR. Throws WireError
/// when the peer is gone (EPIPE with SIGPIPE ignored) or any write fails.
void write_frame(int fd, const std::uint8_t* payload, std::size_t size);

/// Blocking read of one frame into `payload`. Returns false on a clean EOF
/// at a frame boundary (the shutdown signal); throws WireError on EOF
/// mid-frame, a bad frame header, or a read error.
bool read_frame(int fd, std::vector<std::uint8_t>& payload);

/// Reassembles frames from a non-blocking stream: the supervisor feeds
/// whatever read() returned and takes out complete frames as they close.
class FrameBuffer {
 public:
  void feed(const std::uint8_t* data, std::size_t size);

  /// Extracts the next complete frame's payload. Returns false when the
  /// buffered bytes do not yet hold a full frame; throws WireError when the
  /// buffered prefix cannot be a frame (bad magic, absurd length) — the
  /// stream is then unrecoverable and the peer must be discarded.
  bool take_frame(std::vector<std::uint8_t>& payload);

  /// True when partial frame bytes are pending — EOF now means truncation.
  bool mid_frame() const noexcept { return !buffer_.empty(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

}  // namespace dssoc::exp
