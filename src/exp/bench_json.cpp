#include "exp/bench_json.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/error.hpp"

namespace dssoc::exp {

json::Value sweep_to_json(const std::string& bench_name, int threads,
                          double total_wall_ms,
                          const std::vector<SweepResult>& results) {
  json::Object doc;
  doc.set("bench", bench_name);
  doc.set("threads", threads);
  doc.set("total_wall_ms", total_wall_ms);
  doc.set("point_count", static_cast<std::int64_t>(results.size()));
  json::Array points;
  points.reserve(results.size());
  for (const SweepResult& result : results) {
    json::Object point;
    point.set("label", result.label);
    point.set("wall_ms", result.wall_ms);
    point.set("makespan_ms", result.stats.makespan_ms());
    point.set("sched_overhead_ms",
              sim_to_ms(result.stats.scheduling_overhead_total));
    point.set("sched_events",
              static_cast<std::int64_t>(result.stats.scheduling_events));
    point.set("avg_sched_overhead_us",
              result.stats.avg_scheduling_overhead_us());
    point.set("tasks", static_cast<std::int64_t>(result.stats.tasks.size()));
    point.set("apps", static_cast<std::int64_t>(result.stats.apps.size()));
    point.set("config", result.stats.config_label);
    point.set("scheduler", result.stats.scheduler_name);
    points.emplace_back(std::move(point));
  }
  doc.set("points", std::move(points));
  return json::Value(std::move(doc));
}

void write_json_file(const std::string& path, const json::Value& doc) {
  std::ofstream out(path);
  DSSOC_REQUIRE(out.good(), "cannot open \"" + path + "\" for writing");
  out << doc.dump_pretty() << '\n';
  out.flush();
  DSSOC_REQUIRE(out.good(), "failed writing \"" + path + "\"");
}

std::string bench_json_path_from_env() {
  const char* env = std::getenv("DSSOC_BENCH_JSON");
  return env != nullptr ? std::string(env) : std::string();
}

void maybe_write_bench_json(const std::string& bench_name, int threads,
                            double total_wall_ms,
                            const std::vector<SweepResult>& results) {
  const std::string path = bench_json_path_from_env();
  if (path.empty()) {
    return;
  }
  write_json_file(path,
                  sweep_to_json(bench_name, threads, total_wall_ms, results));
  std::cout << "[sweep] wrote " << path << " (" << results.size()
            << " points, " << threads << " threads)\n";
}

}  // namespace dssoc::exp
