#include "exp/bench_json.hpp"

#include <cstdlib>
#include <iostream>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::exp {

SweepArtifactMeta SweepArtifactMeta::detect() {
  SweepArtifactMeta meta;
  const char* env = std::getenv("DSSOC_POOL_DISABLE");
  meta.pool_enabled = !(env != nullptr && std::string(env) == "1");
  meta.spin_fast_forward = core::EmulationOptions{}.spin_fast_forward;
  return meta;
}

void SweepArtifactMeta::apply(const SweepExecution& execution) {
  fabric = execution.fabric;
  worker_respawns = execution.worker_respawns;
  resumed = execution.resumed;
  journal_points_reused = execution.journal_points_reused;
  interrupted_signal = execution.interrupted_signal;
}

json::Value sweep_to_json(const std::string& bench_name, int threads,
                          double total_wall_ms,
                          const std::vector<SweepResult>& results) {
  return sweep_to_json(bench_name, threads, total_wall_ms, results,
                       SweepArtifactMeta::detect());
}

json::Value sweep_to_json(const std::string& bench_name, int threads,
                          double total_wall_ms,
                          const std::vector<SweepResult>& results,
                          const SweepArtifactMeta& meta) {
  std::size_t failed = 0;
  std::size_t saturated = 0;
  for (const SweepResult& result : results) {
    failed += result.status == PointStatus::kFailed ? 1u : 0u;
    saturated += result.status == PointStatus::kSaturated ? 1u : 0u;
  }
  json::Object doc;
  doc.set("schema_version", static_cast<std::int64_t>(5));
  doc.set("bench", bench_name);
  doc.set("threads", threads);
  doc.set("total_wall_ms", total_wall_ms);
  doc.set("sweep_mode", meta.sweep_mode);
  doc.set("warmup_wall_ms", meta.warmup_wall_ms);
  doc.set("pool_enabled", meta.pool_enabled);
  doc.set("spin_fast_forward", meta.spin_fast_forward);
  doc.set("fabric", meta.fabric);
  doc.set("worker_respawns", static_cast<std::int64_t>(meta.worker_respawns));
  doc.set("resumed", meta.resumed);
  doc.set("journal_points_reused",
          static_cast<std::int64_t>(meta.journal_points_reused));
  doc.set("interrupted", static_cast<std::int64_t>(meta.interrupted_signal));
  doc.set("point_count", static_cast<std::int64_t>(results.size()));
  doc.set("failed_count", static_cast<std::int64_t>(failed));
  doc.set("saturated_count", static_cast<std::int64_t>(saturated));
  json::Array points;
  points.reserve(results.size());
  for (const SweepResult& result : results) {
    json::Object point;
    point.set("label", result.label);
    point.set("status", std::string(to_string(result.status)));
    point.set("source", std::string(to_string(result.source)));
    point.set("retries", static_cast<std::int64_t>(result.retries));
    if (result.config_hash != 0) {
      point.set("config_hash", format_hex64(result.config_hash));
    }
    if (result.status == PointStatus::kFailed) {
      // No measurement keys: a failed point has no meaningful stats, and
      // their absence is what bench_compare.py keys its refusal logic on.
      point.set("error", result.error);
      points.emplace_back(std::move(point));
      continue;
    }
    point.set("wall_ms", result.wall_ms);
    point.set("makespan_ms", result.stats.makespan_ms());
    point.set("sched_overhead_ms",
              sim_to_ms(result.stats.scheduling_overhead_total));
    point.set("sched_events",
              static_cast<std::int64_t>(result.stats.scheduling_events));
    point.set("avg_sched_overhead_us",
              result.stats.avg_scheduling_overhead_us());
    point.set("tasks", static_cast<std::int64_t>(result.stats.tasks.size()));
    point.set("apps", static_cast<std::int64_t>(result.stats.apps.size()));
    point.set("config", result.stats.config_label);
    point.set("scheduler", result.stats.scheduler_name);
    {
      const core::LatencyStats slo = result.stats.latency_stats();
      point.set("latency_mean_ms", slo.mean_ms);
      point.set("latency_p50_ms", slo.p50_ms);
      point.set("latency_p95_ms", slo.p95_ms);
      point.set("latency_p99_ms", slo.p99_ms);
      point.set("latency_max_ms", slo.max_ms);
      point.set("jitter_ms", slo.jitter_ms);
      point.set("deadline_count",
                static_cast<std::int64_t>(slo.deadline_count));
      point.set("deadline_misses",
                static_cast<std::int64_t>(slo.deadline_misses));
      point.set("deadline_miss_rate", slo.deadline_miss_rate());
    }
    if (result.status == PointStatus::kSaturated) {
      point.set("saturation_ms", sim_to_ms(result.stats.saturation_time));
      point.set("saturation_arrivals",
                static_cast<std::int64_t>(result.stats.saturation_arrivals));
      point.set("saturation_rate_jobs_per_ms",
                result.stats.saturation_rate_jobs_per_ms());
    }
    // The bit-identity proof: resumed and uninterrupted runs of the same
    // sweep must produce equal digests point by point.
    point.set("digest", format_hex64(result.stats.digest()));
    points.emplace_back(std::move(point));
  }
  doc.set("points", std::move(points));
  return json::Value(std::move(doc));
}

void write_json_file(const std::string& path, const json::Value& doc) {
  write_file_atomic(path, doc.dump_pretty() + '\n');
}

std::string bench_json_path_from_env() {
  const char* env = std::getenv("DSSOC_BENCH_JSON");
  return env != nullptr ? std::string(env) : std::string();
}

void maybe_write_bench_json(const std::string& bench_name, int threads,
                            double total_wall_ms,
                            const std::vector<SweepResult>& results) {
  maybe_write_bench_json(bench_name, threads, total_wall_ms, results,
                         SweepArtifactMeta::detect());
}

void maybe_write_bench_json(const std::string& bench_name, int threads,
                            double total_wall_ms,
                            const std::vector<SweepResult>& results,
                            const SweepArtifactMeta& meta) {
  const std::string path = bench_json_path_from_env();
  if (path.empty()) {
    return;
  }
  write_json_file(
      path, sweep_to_json(bench_name, threads, total_wall_ms, results, meta));
  std::cout << "[sweep] wrote " << path << " (" << results.size()
            << " points, " << threads << " threads, " << meta.sweep_mode
            << " mode)\n";
}

}  // namespace dssoc::exp
