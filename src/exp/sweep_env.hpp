// Driver-side sweep environment: one place that reads the DSSOC_SWEEP_*
// family (and DSSOC_SCHED), runs the sweep, and performs the epilogue every
// experiment driver used to hand-roll — wall timing, artifact-meta capture,
// resume/failure summaries, BENCH_sweep.json emission and the
// interrupted-sweep exit protocol. Drivers declare their points and their
// tables; everything else lives here.
//
//   std::vector<exp::SweepPoint> points = ...;
//   exp::SweepRun run = exp::run_sweep(points, exp::SweepEnv::from_env());
//   ... render tables from run.execution.results ...
//   return run.finish("bench_fig9");
#pragma once

#include <string>
#include <vector>

#include "exp/bench_json.hpp"
#include "exp/proc_pool.hpp"
#include "exp/sweep.hpp"

namespace dssoc::exp {

/// The environment knobs a sweep driver honors, read once at startup.
struct SweepEnv {
  /// DSSOC_SWEEP_FABRIC normalized: "inproc" or "proc".
  std::string fabric = "inproc";
  /// DSSOC_SWEEP_MODE verbatim ("", "cold", "fork", ...); meaning is
  /// driver-specific (bench_fig10's warm-prefix modes), validated there.
  std::string mode;
  /// DSSOC_SWEEP_THREADS (0 = auto-size to the host).
  int threads = 0;
  /// DSSOC_SWEEP_JOURNAL / DSSOC_SWEEP_RESUME (durability, proc_pool.hpp).
  std::string journal_path;
  bool resume = false;
  /// DSSOC_SCHED: when set, overrides every point's scheduling policy —
  /// any registry name or "policy:..." spec (policy/register.hpp), e.g.
  /// DSSOC_SCHED=policy:table:weights.json. Empty = keep driver defaults.
  std::string scheduler_override;
  /// DSSOC_ARRIVALS: when set, overrides every point's arrival trace — an
  /// "arrivals:..." spec (core/arrivals.hpp) regenerated per point over the
  /// point's declared time_frame with the point's own seed, e.g.
  /// DSSOC_ARRIVALS=arrivals:poisson:app=TX,rate_per_ms=2. Composes with
  /// DSSOC_SCHED (traffic and policy override independently). Points that
  /// declare no injection window (time_frame == 0) reject the override with
  /// a ConfigError naming the point. Empty = keep driver workloads.
  std::string arrivals_override;

  static SweepEnv from_env();
};

/// One executed sweep plus the bookkeeping finish() needs.
struct SweepRun {
  SweepExecution execution;
  double total_wall_ms = 0.0;
  SweepArtifactMeta meta;

  /// "N worker process(es)" / "N host thread(s)" — the header phrase every
  /// driver prints.
  std::string width_phrase() const;

  /// The shared driver epilogue: prints the resume and failure summaries,
  /// writes the BENCH_sweep.json artifact when requested, reports an
  /// interrupted sweep, and returns the process exit code (0, or
  /// 128 + signal after a graceful interruption).
  int finish(const std::string& bench_name);
};

/// Runs `points` with the environment applied: registers the policy-bridge
/// specs, rewrites each point's scheduler when DSSOC_SCHED is set,
/// regenerates each point's workload when DSSOC_ARRIVALS is set, executes
/// on the selected fabric, and captures wall time + artifact meta.
SweepRun run_sweep(std::vector<SweepPoint>& points, const SweepEnv& env);

}  // namespace dssoc::exp
