// BENCH_sweep.json: the perf-trajectory artifact sweep-based experiment
// drivers emit (wall time, makespan and scheduling overhead per point, plus
// pool metadata), consumed by CI's perf-smoke job and by longitudinal
// performance tracking. Schema documented in EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "json/json.hpp"

namespace dssoc::exp {

/// Engine build/run flags stamped into the artifact so longitudinal
/// comparisons know *what* produced the numbers, not just how fast it was.
struct SweepArtifactMeta {
  /// "cold" (every point emulated from time zero), "fork" (points restored
  /// from a shared warmed snapshot), or a driver-specific variant.
  std::string sweep_mode = "cold";
  /// Wall time spent producing the fork-mode warm-up snapshot(s); 0 in
  /// cold mode. This is the cost fork mode pays once instead of per point.
  double warmup_wall_ms = 0.0;
  bool pool_enabled = true;        ///< !DSSOC_POOL_DISABLE
  bool spin_fast_forward = true;   ///< EmulationOptions default
  /// Environment-derived defaults (pool flag from DSSOC_POOL_DISABLE).
  static SweepArtifactMeta detect();
};

/// Builds the artifact document (schema_version 2):
/// {
///   "schema_version": 2,
///   "bench": <driver name>, "threads": N, "total_wall_ms": ...,
///   "sweep_mode": "cold"|"fork"|..., "warmup_wall_ms": ...,
///   "pool_enabled": bool, "spin_fast_forward": bool,
///   "point_count": P,
///   "points": [{"label", "wall_ms", "makespan_ms",
///               "sched_overhead_ms", "sched_events",
///               "avg_sched_overhead_us", "tasks", "apps",
///               "config", "scheduler"}, ...]
/// }
/// Additions over schema 1 are purely additive; tools/bench_compare.py
/// tolerates unknown keys in either document.
json::Value sweep_to_json(const std::string& bench_name, int threads,
                          double total_wall_ms,
                          const std::vector<SweepResult>& results,
                          const SweepArtifactMeta& meta);

/// Schema-2 document with environment-detected meta (cold sweep).
json::Value sweep_to_json(const std::string& bench_name, int threads,
                          double total_wall_ms,
                          const std::vector<SweepResult>& results);

/// Writes `doc` pretty-printed to `path`. Throws DssocError on I/O failure.
void write_json_file(const std::string& path, const json::Value& doc);

/// The artifact destination from the DSSOC_BENCH_JSON environment variable;
/// empty string when unset (no artifact requested).
std::string bench_json_path_from_env();

/// Convenience used by the experiment drivers: when DSSOC_BENCH_JSON is set,
/// writes the artifact there and prints a one-line note to stdout.
void maybe_write_bench_json(const std::string& bench_name, int threads,
                            double total_wall_ms,
                            const std::vector<SweepResult>& results);

/// Same, with explicit artifact meta (fork-mode drivers).
void maybe_write_bench_json(const std::string& bench_name, int threads,
                            double total_wall_ms,
                            const std::vector<SweepResult>& results,
                            const SweepArtifactMeta& meta);

}  // namespace dssoc::exp
