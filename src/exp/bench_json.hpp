// BENCH_sweep.json: the perf-trajectory artifact sweep-based experiment
// drivers emit (wall time, makespan and scheduling overhead per point, plus
// pool metadata), consumed by CI's perf-smoke job and by longitudinal
// performance tracking. Schema documented in EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "exp/sweep.hpp"
#include "json/json.hpp"

namespace dssoc::exp {

/// Builds the artifact document:
/// {
///   "bench": <driver name>, "threads": N, "total_wall_ms": ...,
///   "point_count": P,
///   "points": [{"label", "wall_ms", "makespan_ms",
///               "sched_overhead_ms", "sched_events",
///               "avg_sched_overhead_us", "tasks", "apps",
///               "config", "scheduler"}, ...]
/// }
json::Value sweep_to_json(const std::string& bench_name, int threads,
                          double total_wall_ms,
                          const std::vector<SweepResult>& results);

/// Writes `doc` pretty-printed to `path`. Throws DssocError on I/O failure.
void write_json_file(const std::string& path, const json::Value& doc);

/// The artifact destination from the DSSOC_BENCH_JSON environment variable;
/// empty string when unset (no artifact requested).
std::string bench_json_path_from_env();

/// Convenience used by the experiment drivers: when DSSOC_BENCH_JSON is set,
/// writes the artifact there and prints a one-line note to stdout.
void maybe_write_bench_json(const std::string& bench_name, int threads,
                            double total_wall_ms,
                            const std::vector<SweepResult>& results);

}  // namespace dssoc::exp
