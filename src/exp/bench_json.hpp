// BENCH_sweep.json: the perf-trajectory artifact sweep-based experiment
// drivers emit (wall time, makespan and scheduling overhead per point, plus
// pool metadata), consumed by CI's perf-smoke job and by longitudinal
// performance tracking. Schema documented in EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

#include "exp/proc_pool.hpp"
#include "exp/sweep.hpp"
#include "json/json.hpp"

namespace dssoc::exp {

/// Engine build/run flags stamped into the artifact so longitudinal
/// comparisons know *what* produced the numbers, not just how fast it was.
struct SweepArtifactMeta {
  /// "cold" (every point emulated from time zero), "fork" (points restored
  /// from a shared warmed snapshot), or a driver-specific variant.
  std::string sweep_mode = "cold";
  /// Wall time spent producing the fork-mode warm-up snapshot(s); 0 in
  /// cold mode. This is the cost fork mode pays once instead of per point.
  double warmup_wall_ms = 0.0;
  bool pool_enabled = true;        ///< !DSSOC_POOL_DISABLE
  bool spin_fast_forward = true;   ///< EmulationOptions default
  /// Which execution fabric ran the sweep: "inproc" (SweepRunner threads)
  /// or "proc" (the fault-isolated process pool, exp/proc_pool.hpp).
  std::string fabric = "inproc";
  /// Workers respawned by the process fabric after crashes, timeouts or
  /// garbled frames; always 0 in-process.
  std::size_t worker_respawns = 0;
  /// DSSOC_SWEEP_RESUME=1 found a pre-existing journal (schema 4).
  bool resumed = false;
  /// Points replayed from the sweep journal instead of executed (schema 4).
  std::size_t journal_points_reused = 0;
  /// Signal that gracefully stopped the sweep; 0 = ran to completion. A
  /// nonzero value marks the artifact as *partial* (schema 4).
  int interrupted_signal = 0;

  /// Environment-derived defaults (pool flag from DSSOC_POOL_DISABLE).
  static SweepArtifactMeta detect();

  /// Copies a sweep execution's fabric + durability fields into the meta —
  /// what every run_sweep()-based driver stamps before writing the artifact.
  void apply(const SweepExecution& execution);
};

/// Builds the artifact document (schema_version 5):
/// {
///   "schema_version": 5,
///   "bench": <driver name>, "threads": N, "total_wall_ms": ...,
///   "sweep_mode": "cold"|"fork"|..., "warmup_wall_ms": ...,
///   "pool_enabled": bool, "spin_fast_forward": bool,
///   "fabric": "inproc"|"proc", "worker_respawns": R,
///   "resumed": bool, "journal_points_reused": J, "interrupted": S,
///   "point_count": P, "failed_count": F, "saturated_count": C,
///   "points": [{"label", "status": "ok"|"failed"|"saturated",
///               "source": "run"|"journal",
///               "retries", "wall_ms", "makespan_ms",
///               "sched_overhead_ms", "sched_events",
///               "avg_sched_overhead_us", "tasks", "apps",
///               "config", "scheduler",
///               "latency_mean_ms", "latency_p50_ms", "latency_p95_ms",
///               "latency_p99_ms", "latency_max_ms", "jitter_ms",
///               "deadline_count", "deadline_misses", "deadline_miss_rate",
///               "saturation_ms"?, "saturation_arrivals"?,
///               "saturation_rate_jobs_per_ms"?,
///               "digest", "config_hash"?}, ...]
/// }
/// A failed point carries {"label", "status": "failed", "source", "retries",
/// "error"} and *no* measurement keys — its stats are meaningless. A
/// *saturated* point carries the full measurement keys (its stats are valid
/// up to the overload cut; makespan_ms is the cut time's last completion)
/// plus the three saturation_* keys. Schema 5 additions over 4: top-level
/// saturated_count, the "saturated" status string, per-point latency
/// percentiles / jitter / deadline-miss keys and the saturation_* keys.
/// Schema 4 additions over 3: top-level resumed / journal_points_reused /
/// interrupted (the stopping signal, 0 = completed), per-point source,
/// per-point digest (16-hex EmulationStats::digest(), the bit-identity
/// proof resume comparisons key on) and — when a journal was attached —
/// config_hash (16-hex canonical point key). tools/bench_compare.py
/// tolerates unknown keys in either document but refuses to diff runs whose
/// non-ok point sets differ, and refuses --update from a resumed run.
json::Value sweep_to_json(const std::string& bench_name, int threads,
                          double total_wall_ms,
                          const std::vector<SweepResult>& results,
                          const SweepArtifactMeta& meta);

/// Schema-5 document with environment-detected meta (cold in-process sweep).
json::Value sweep_to_json(const std::string& bench_name, int threads,
                          double total_wall_ms,
                          const std::vector<SweepResult>& results);

/// Writes `doc` pretty-printed to `path` — atomically (temp + fsync +
/// rename, common/atomic_file.hpp), so a driver dying mid-write can never
/// leave a torn artifact where a good one stood. Throws DssocError on I/O
/// failure.
void write_json_file(const std::string& path, const json::Value& doc);

/// The artifact destination from the DSSOC_BENCH_JSON environment variable;
/// empty string when unset (no artifact requested).
std::string bench_json_path_from_env();

/// Convenience used by the experiment drivers: when DSSOC_BENCH_JSON is set,
/// writes the artifact there and prints a one-line note to stdout.
void maybe_write_bench_json(const std::string& bench_name, int threads,
                            double total_wall_ms,
                            const std::vector<SweepResult>& results);

/// Same, with explicit artifact meta (fork-mode drivers).
void maybe_write_bench_json(const std::string& bench_name, int threads,
                            double total_wall_ms,
                            const std::vector<SweepResult>& results,
                            const SweepArtifactMeta& meta);

}  // namespace dssoc::exp
