#include "exp/wire.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.hpp"

namespace dssoc::exp {

namespace {

constexpr std::uint32_t kFrameMagic = state_tag('D', 'S', 'S', 'F');
constexpr std::size_t kFrameHeaderBytes = 12;  // magic u32 + length u64
// A result frame holds one point's task records; even the full-scale fig10
// EFT row is well under a few MB. Anything larger is a desynced stream.
constexpr std::uint64_t kMaxFramePayload = 1ULL << 30;

void put_u32(std::uint8_t* dst, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void put_u64(std::uint8_t* dst, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint32_t get_u32(const std::uint8_t* src) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(src[i]) << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const std::uint8_t* src) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(src[i]) << (8 * i);
  }
  return value;
}

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t wrote = ::write(fd, data + done, size - done);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw WireError(cat("pipe write failed: ", std::strerror(errno)));
    }
    done += static_cast<std::size_t>(wrote);
  }
}

/// Reads exactly `size` bytes. Returns the count read before EOF (== size
/// unless the peer closed); throws WireError on a read error.
std::size_t read_exact(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t got = ::read(fd, data + done, size - done);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw WireError(cat("pipe read failed: ", std::strerror(errno)));
    }
    if (got == 0) {
      break;  // EOF
    }
    done += static_cast<std::size_t>(got);
  }
  return done;
}

std::uint64_t validate_header(const std::uint8_t* header) {
  const std::uint32_t magic = get_u32(header);
  if (magic != kFrameMagic) {
    throw WireError(cat("bad frame magic 0x", magic,
                        " — pipe stream desynced or corrupt"));
  }
  const std::uint64_t length = get_u64(header + 4);
  if (length > kMaxFramePayload) {
    throw WireError(cat("frame length ", length,
                        " exceeds the sanity cap — pipe stream corrupt"));
  }
  return length;
}

}  // namespace

// --- messages ---------------------------------------------------------------

std::vector<std::uint8_t> encode_job(const WireJob& job) {
  StateWriter out(kJobKind);
  out.u64(job.point_index);
  out.u32(job.attempt);
  return out.take();
}

WireJob decode_job(const std::vector<std::uint8_t>& payload) {
  StateReader in(payload.data(), payload.size(), kJobKind);
  WireJob job;
  job.point_index = in.u64();
  job.attempt = in.u32();
  return job;
}

std::vector<std::uint8_t> encode_result(const WireResult& result) {
  StateWriter out(kResultKind);
  out.u64(result.point_index);
  out.u32(result.attempt);
  out.u8(result.ok ? 1 : 0);
  out.str(result.error);
  out.f64(result.wall_ms);
  if (result.ok) {
    result.stats.save(out);
  }
  return out.take();
}

WireResult decode_result(const std::vector<std::uint8_t>& payload) {
  StateReader in(payload.data(), payload.size(), kResultKind);
  WireResult result;
  result.point_index = in.u64();
  result.attempt = in.u32();
  result.ok = in.u8() != 0;
  result.error = in.str();
  result.wall_ms = in.f64();
  if (result.ok) {
    result.stats.load(in);
  }
  return result;
}

// --- pipe framing -----------------------------------------------------------

void write_frame(int fd, const std::uint8_t* payload, std::size_t size) {
  std::uint8_t header[kFrameHeaderBytes];
  put_u32(header, kFrameMagic);
  put_u64(header + 4, static_cast<std::uint64_t>(size));
  write_all(fd, header, sizeof(header));
  write_all(fd, payload, size);
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t header[kFrameHeaderBytes];
  const std::size_t got = read_exact(fd, header, sizeof(header));
  if (got == 0) {
    return false;  // clean EOF at a frame boundary: shutdown
  }
  if (got < sizeof(header)) {
    throw WireError("pipe closed mid-frame header");
  }
  const std::uint64_t length = validate_header(header);
  payload.resize(static_cast<std::size_t>(length));
  if (read_exact(fd, payload.data(), payload.size()) < payload.size()) {
    throw WireError("pipe closed mid-frame payload");
  }
  return true;
}

void FrameBuffer::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

bool FrameBuffer::take_frame(std::vector<std::uint8_t>& payload) {
  if (buffer_.size() < kFrameHeaderBytes) {
    return false;
  }
  const std::uint64_t length = validate_header(buffer_.data());
  const std::size_t total =
      kFrameHeaderBytes + static_cast<std::size_t>(length);
  if (buffer_.size() < total) {
    return false;
  }
  payload.assign(buffer_.begin() + kFrameHeaderBytes,
                 buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  return true;
}

}  // namespace dssoc::exp
