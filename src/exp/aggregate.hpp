// Sweep-level result aggregation.
//
// SweepRunner returns raw per-point EmulationStats; every figure driver
// then reduces them — fig9 groups iterations per configuration into box
// plots and per-PE utilization, fig10/fig11 tabulate per-point makespans
// and overheads. This header is the shared home for those reductions so
// drivers declare *what* they group by and read summaries instead of
// re-implementing index arithmetic (ROADMAP: "sweep-level result
// aggregation").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "exp/sweep.hpp"

namespace dssoc::exp {

/// One group of sweep results sharing a key (e.g. a configuration label),
/// in input order.
///
/// Failure-aware: the process fabric (exp/proc_pool.hpp) can hand a group
/// members marked PointStatus::kFailed, and the saturation detector can cut
/// members to PointStatus::kSaturated. Completed-run reductions (makespan,
/// overhead) use *ok* members only — a crashed point must not drag a zeroed
/// EmulationStats into a mean, and a saturated point never finished its
/// workload so its makespan is not comparable. Saturated members keep valid
/// stats up to the cut; the SLO reductions below read them explicitly.
/// Reductions over a group with *no* eligible member throw.
struct ResultGroup {
  std::string key;
  std::vector<const SweepResult*> members;  ///< borrowed from the result set

  /// Members that completed (status kOk), input order.
  std::size_t ok_count() const;
  /// Members that exhausted their retries (status kFailed).
  std::size_t failed_count() const;
  /// Members cut by the saturation detector (status kSaturated).
  std::size_t saturated_count() const;
  bool all_ok() const { return ok_count() == members.size(); }

  /// Makespans of the group's *ok* members, in ms, input order.
  std::vector<double> makespans_ms() const;

  /// Box-plot summary over makespans_ms() (fig9a's cell).
  FiveNumberSummary makespan_summary_ms() const;
  double mean_makespan_ms() const;

  /// Mean of the ok members' average per-event scheduling overhead (us).
  double mean_avg_sched_overhead_us() const;

  // --- SLO reductions (latency percentiles, saturation) --------------------

  /// Latency distribution pooled over the ok *and* saturated members'
  /// completed applications (a saturated point's completions are real
  /// measurements up to the cut). Throws when no member carries stats.
  core::LatencyStats latency() const;

  /// The first saturated member in input order, or nullptr when the group
  /// never saturated — the "saturation knee" probe for load sweeps.
  const SweepResult* first_saturated() const;

  /// Representative member for per-PE reductions: the group's *last ok*
  /// point, matching the legacy drivers' "last iteration" utilization row.
  /// Throws when every member failed.
  const core::EmulationStats& representative() const;
};

/// Groups results by `key_of`, preserving first-appearance group order and
/// input order within each group.
class Aggregation {
 public:
  static Aggregation by(
      const std::vector<SweepResult>& results,
      const std::function<std::string(const SweepResult&)>& key_of);

  /// Convenience for the drivers' "config/variant" label convention: groups
  /// by everything before the *last* '/' of the point label (a label with
  /// no '/' forms its own group).
  static Aggregation by_label_prefix(const std::vector<SweepResult>& results);

  const std::vector<ResultGroup>& groups() const noexcept { return groups_; }

  /// The group with the exact key, or nullptr.
  const ResultGroup* find(const std::string& key) const;

 private:
  std::vector<ResultGroup> groups_;
};

}  // namespace dssoc::exp
