#include "exp/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/config_hash.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/state_io.hpp"
#include "common/strings.hpp"

namespace dssoc::exp {

namespace {

constexpr std::uint32_t kJournalMagic = state_tag('D', 'S', 'S', 'J');
constexpr std::uint32_t kRecordMagic = state_tag('J', 'R', 'E', 'C');
constexpr std::uint32_t kRecordKind = state_tag('P', 'J', 'N', 'L');
constexpr std::uint32_t kMetaSection = state_tag('J', 'M', 'T', 'A');
constexpr std::uint32_t kStatsSection = state_tag('J', 'S', 'T', 'A');

constexpr std::size_t kHeaderBytes = 8;        // magic + version
constexpr std::size_t kRecordHeaderBytes = 12; // magic + payload length

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = value << 8 | p[i];
  }
  return value;
}

void put_u32(std::uint8_t* p, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void put_u64(std::uint8_t* p, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

// Three-way status byte (journal format v2). Failed records carry no stats
// section; ok and saturated records carry the full stats encoding.
constexpr std::uint8_t kStatusFailed = 0;
constexpr std::uint8_t kStatusOk = 1;
constexpr std::uint8_t kStatusSaturated = 2;

std::uint8_t encode_status(PointStatus status) {
  switch (status) {
    case PointStatus::kOk:
      return kStatusOk;
    case PointStatus::kSaturated:
      return kStatusSaturated;
    case PointStatus::kFailed:
      break;
  }
  return kStatusFailed;
}

PointStatus decode_status(std::uint8_t status) {
  switch (status) {
    case kStatusOk:
      return PointStatus::kOk;
    case kStatusSaturated:
      return PointStatus::kSaturated;
    case kStatusFailed:
      return PointStatus::kFailed;
    default:
      throw StateError(cat("unknown journal record status ", int(status)));
  }
}

std::vector<std::uint8_t> encode_record(std::uint64_t config_hash,
                                        const SweepResult& result) {
  StateWriter out(kRecordKind);
  out.begin_section(kMetaSection);
  out.u64(config_hash);
  out.str(result.label);
  out.u8(encode_status(result.status));
  out.i32(result.retries);
  out.f64(result.wall_ms);
  out.str(result.error);
  out.end_section();
  if (result.status != PointStatus::kFailed) {
    out.begin_section(kStatsSection);
    result.stats.save(out);
    out.end_section();
  }
  const std::vector<std::uint8_t> payload = out.take();

  std::vector<std::uint8_t> frame(kRecordHeaderBytes + payload.size());
  put_u32(frame.data(), kRecordMagic);
  put_u64(frame.data() + 4, payload.size());
  std::memcpy(frame.data() + kRecordHeaderBytes, payload.data(),
              payload.size());
  return frame;
}

JournalRecord decode_record(const std::uint8_t* payload, std::size_t size) {
  StateReader in(payload, size, kRecordKind);
  JournalRecord record;
  in.begin_section(kMetaSection);
  record.config_hash = in.u64();
  record.result.label = in.str();
  record.result.status = decode_status(in.u8());
  record.result.retries = in.i32();
  record.result.wall_ms = in.f64();
  record.result.error = in.str();
  in.end_section();
  if (record.result.status != PointStatus::kFailed) {
    in.begin_section(kStatsSection);
    record.result.stats.load(in);
    in.end_section();
  }
  record.result.source = ResultSource::kJournal;
  record.result.config_hash = record.config_hash;
  return record;
}

}  // namespace

std::uint64_t point_config_hash(const SweepPoint& point) {
  ConfigHasher hasher;
  hasher.u64(build_fingerprint());
  hasher.str(point.label);

  const core::EmulationSetup& setup = point.setup;
  hasher.boolean(setup.platform != nullptr);
  if (setup.platform != nullptr) {
    setup.platform->hash_into(hasher);
  }
  setup.soc.hash_into(hasher);
  setup.cost_model.hash_into(hasher);
  hasher.u64(setup.apps != nullptr ? setup.apps->size() : 0);

  const core::EmulationOptions& options = setup.options;
  hasher.str(options.scheduler)
      .u8(static_cast<std::uint8_t>(options.overhead_mode))
      .i64(options.modeled_base_ns)
      .f64(options.modeled_pair_ns)
      .f64(options.modeled_estimate_ns)
      .boolean(options.run_kernels)
      .f64(options.overlay_calibration)
      .i64(options.monitor_cost_ns)
      .i64(options.injection_cost_ns)
      .i64(options.dispatch_cost_ns)
      .i64(options.poll_cost_ns)
      .i64(options.interrupt_cost_ns)
      .i64(options.pe_queue_depth)
      .boolean(options.spin_fast_forward)
      .u64(options.saturation_backlog_limit)
      .u64(options.seed);

  hasher.str(point.workload.source_spec);
  hasher.u64(point.workload.entries.size());
  for (const core::WorkloadEntry& entry : point.workload.entries) {
    hasher.str(entry.app_name).i64(entry.arrival).i64(entry.deadline);
  }
  return hasher.digest();
}

SweepJournal::SweepJournal(std::string path) : path_(std::move(path)) {
  // Phase 1: read whatever is on disk and find the valid prefix.
  std::vector<std::uint8_t> data;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      recovery_.existed = true;
      data.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    }
  }

  const auto warn = [this](std::string message) {
    DSSOC_LOG_WARN << "[journal] " << path_ << ": " << message;
    recovery_.warnings.push_back(std::move(message));
  };

  std::size_t valid = 0;
  if (data.size() < kHeaderBytes) {
    if (!data.empty()) {
      warn(cat("truncated header (", data.size(),
               " byte(s)) — starting the journal over"));
    }
  } else if (get_u32(data.data()) != kJournalMagic) {
    // A full-size header with the wrong magic is most plausibly *not* a
    // journal at all — refuse to clobber it.
    throw DssocError(
        cat("\"", path_,
            "\" is not a sweep journal (bad magic) — refusing to "
            "overwrite it; point DSSOC_SWEEP_JOURNAL at a journal file "
            "or a new path"));
  } else if (get_u32(data.data() + 4) != kJournalFormatVersion) {
    warn(cat("journal format version ", get_u32(data.data() + 4),
             " does not match ", kJournalFormatVersion,
             " — starting the journal over"));
  } else {
    valid = kHeaderBytes;
    while (valid < data.size()) {
      const std::size_t remaining = data.size() - valid;
      if (remaining < kRecordHeaderBytes) {
        warn(cat("torn record header at offset ", valid, " (", remaining,
                 " byte(s)) — dropping the tail"));
        break;
      }
      const std::uint8_t* frame = data.data() + valid;
      if (get_u32(frame) != kRecordMagic) {
        warn(cat("bad record magic at offset ", valid,
                 " — dropping the tail"));
        break;
      }
      const std::uint64_t length = get_u64(frame + 4);
      if (length > remaining - kRecordHeaderBytes) {
        warn(cat("torn record at offset ", valid, " (declares ", length,
                 " byte(s), ", remaining - kRecordHeaderBytes,
                 " present) — dropping the tail"));
        break;
      }
      try {
        JournalRecord record = decode_record(
            frame + kRecordHeaderBytes, static_cast<std::size_t>(length));
        if (record.result.status != PointStatus::kFailed) {
          ok_index_[record.config_hash] = records_.size();
        }
        records_.push_back(std::move(record));
      } catch (const StateError& e) {
        warn(cat("corrupt record at offset ", valid, " (", e.what(),
                 ") — dropping the tail"));
        break;
      }
      valid += kRecordHeaderBytes + static_cast<std::size_t>(length);
    }
  }
  recovery_.records = records_.size();
  recovery_.dropped_bytes = data.size() > valid ? data.size() - valid : 0;

  // Phase 2: open for appending, truncated back to the valid prefix so a
  // recovered torn tail can never sit between old and new records.
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    throw DssocError(cat("cannot open sweep journal \"", path_,
                         "\": ", std::strerror(errno)));
  }
  if (valid == 0) {
    std::uint8_t header[kHeaderBytes];
    put_u32(header, kJournalMagic);
    put_u32(header + 4, kJournalFormatVersion);
    if (::ftruncate(fd_, 0) != 0 ||
        ::pwrite(fd_, header, sizeof(header), 0) !=
            static_cast<ssize_t>(sizeof(header))) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      throw DssocError(cat("cannot initialize sweep journal \"", path_,
                           "\": ", std::strerror(saved)));
    }
    valid = kHeaderBytes;
  } else if (::ftruncate(fd_, static_cast<off_t>(valid)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw DssocError(cat("cannot truncate sweep journal \"", path_,
                         "\" to its valid prefix: ", std::strerror(saved)));
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw DssocError(cat("cannot seek sweep journal \"", path_,
                         "\": ", std::strerror(saved)));
  }
  ::fsync(fd_);
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::size_t SweepJournal::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

const SweepResult* SweepJournal::find_ok(std::uint64_t config_hash) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ok_index_.find(config_hash);
  return it == ok_index_.end() ? nullptr : &records_[it->second].result;
}

void SweepJournal::append(std::uint64_t config_hash,
                          const SweepResult& result) {
  const std::vector<std::uint8_t> frame = encode_record(config_hash, result);
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t done = 0;
  while (done < frame.size()) {
    const ssize_t wrote = ::write(fd_, frame.data() + done,
                                  frame.size() - done);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw DssocError(cat("failed appending to sweep journal \"", path_,
                           "\": ", std::strerror(errno)));
    }
    done += static_cast<std::size_t>(wrote);
  }
  if (::fsync(fd_) != 0) {
    throw DssocError(cat("failed syncing sweep journal \"", path_,
                         "\": ", std::strerror(errno)));
  }
  JournalRecord record;
  record.config_hash = config_hash;
  record.result = result;
  if (result.status != PointStatus::kFailed) {
    ok_index_[config_hash] = records_.size();
  }
  records_.push_back(std::move(record));
}

}  // namespace dssoc::exp
