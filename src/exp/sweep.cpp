#include "exp/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/state_io.hpp"
#include "common/strings.hpp"

namespace dssoc::exp {

const char* to_string(PointStatus status) {
  switch (status) {
    case PointStatus::kOk:
      return "ok";
    case PointStatus::kSaturated:
      return "saturated";
    case PointStatus::kFailed:
      break;
  }
  return "failed";
}

PointStatus status_from_stats(const core::EmulationStats& stats) {
  return stats.saturated ? PointStatus::kSaturated : PointStatus::kOk;
}

const char* to_string(ResultSource source) {
  return source == ResultSource::kRun ? "run" : "journal";
}

namespace {

// Rebuilds the exception with an augmented message, keeping the type so
// callers' catch clauses (and tests pinning exception types) still match.
template <typename Error>
[[noreturn]] void throw_with_point(const Error& error, std::size_t index,
                                   const std::string& label) {
  throw Error(
      cat("sweep point ", index, " (", label, "): ", error.what()));
}

}  // namespace

void rethrow_point_error(const std::exception_ptr& error,
                         std::size_t point_index, const std::string& label) {
  try {
    std::rethrow_exception(error);
  } catch (const StateError& e) {
    throw_with_point(e, point_index, label);
  } catch (const ConfigError& e) {
    throw_with_point(e, point_index, label);
  } catch (const SymbolError& e) {
    throw_with_point(e, point_index, label);
  } catch (const ParseError& e) {
    throw_with_point(e, point_index, label);
  } catch (const DssocError& e) {
    throw_with_point(e, point_index, label);
  } catch (const std::exception& e) {
    throw DssocError(
        cat("sweep point ", point_index, " (", label, "): ", e.what()));
  }
}

SweepRunner::SweepRunner(int threads) : threads_(resolve_threads(threads)) {}

int SweepRunner::resolve_threads(int requested) {
  if (requested > 0) {
    return requested;
  }
  if (const char* env = std::getenv("DSSOC_SWEEP_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) {
      return parsed;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<SweepResult> SweepRunner::run(
    const std::vector<SweepPoint>& points,
    const ResultCallback& on_result) const {
  return run_impl(points, nullptr, on_result);
}

std::vector<SweepResult> SweepRunner::run_forked(
    const std::vector<SweepPoint>& points,
    const core::EngineSnapshot& snapshot,
    const ResultCallback& on_result) const {
  return run_impl(points, &snapshot, on_result);
}

SweepRunner::Warmup SweepRunner::warm_up(const core::EmulationSetup& base,
                                         const core::Workload& warmup,
                                         SimTime fork_time) {
  Stopwatch watch;
  core::Emulation emulation(base, warmup);
  emulation.run_until_idle(fork_time);
  Warmup result;
  result.snapshot = emulation.snapshot();
  result.wall_ms = sim_to_ms(watch.elapsed());
  return result;
}

std::vector<SweepResult> SweepRunner::run_impl(
    const std::vector<SweepPoint>& points,
    const core::EngineSnapshot* snapshot,
    const ResultCallback& on_result) const {
  std::vector<SweepResult> results(points.size());
  if (points.empty()) {
    return results;
  }
  std::vector<std::exception_ptr> errors(points.size());
  std::atomic<std::size_t> cursor{0};
  // Serializes on_result across worker threads: the journal hook behind it
  // appends + fsyncs, and callers should not need their own locking.
  std::mutex callback_mutex;

  const auto worker = [&]() {
    // One instance pool per worker thread, alive for the whole sweep: points
    // of the same sweep share application archetypes, so instance arenas
    // recycle *across* points instead of being rebuilt per emulation. Points
    // stay bit-identical to a serial pool-less run (the pool only recycles
    // storage; every acquire resets to the freshly-constructed state).
    core::AppInstancePool pool;
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) {
        return;
      }
      SweepResult& result = results[i];
      result.label = points[i].label;
      Stopwatch watch;
      try {
        if (snapshot != nullptr) {
          // Fork mode: every point resumes from the shared warmed state
          // instead of re-emulating the warm-up prefix from time zero.
          core::Emulation emulation(points[i].setup, points[i].workload,
                                    &pool);
          emulation.restore(*snapshot);
          result.stats = emulation.finish();
        } else {
          result.stats =
              core::run_virtual(points[i].setup, points[i].workload, &pool);
        }
        result.status = status_from_stats(result.stats);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      result.wall_ms = sim_to_ms(watch.elapsed());
      if (on_result && !errors[i]) {
        const std::lock_guard<std::mutex> lock(callback_mutex);
        on_result(i, result);
      }
    }
  };

  const std::size_t pool = std::min<std::size_t>(
      static_cast<std::size_t>(threads_), points.size());
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) {
      threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (errors[i]) {
      rethrow_point_error(errors[i], i, points[i].label);
    }
  }
  return results;
}

std::uint64_t point_seed(std::uint64_t sweep_seed, std::size_t point_index) {
  // splitmix64 finalizer over the combined words: consecutive indices map to
  // statistically independent seeds, and index 0 does not collapse onto the
  // sweep seed itself.
  std::uint64_t z = sweep_seed + 0x9E3779B97F4A7C15ULL *
                                     (static_cast<std::uint64_t>(point_index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace dssoc::exp
