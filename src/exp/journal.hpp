// Durable sweep journal: crash-safe resume and incremental re-runs.
//
// A sweep is all-or-nothing without it: a supervisor crash, OOM-kill,
// Ctrl-C or CI timeout throws away every completed point. SweepJournal is
// the write-ahead log that fixes that — each point's terminal result is
// appended (and fsync()ed) the moment the fabric collects it, keyed by a
// canonical config hash over everything that determines the result's bytes
// (point parameters, scheduler, seed, engine build flags). The engine is
// deterministic, so a matching hash guarantees a journaled result is
// bit-identical to what a re-run would produce; replaying it *is* running
// the point. The same key makes incremental sweeps fall out for free:
// change one point's parameters and only that point's hash misses.
//
// File layout (all little-endian):
//
//   header  := magic 'DSSJ' (u32) | journal format version (u32)
//   record  := magic 'JREC' (u32) | payload length (u64) | payload
//   payload := a state_io v2 stream (DSSB header, payload kind 'PJNL',
//              CRC-32 trailer) carrying config hash, label, status,
//              retries, wall time, error and — for ok and saturated
//              records — the full EmulationStats checkpoint encoding.
//
// Recovery is a valid-prefix scan: records are read in order until the
// first structural problem (bad record magic, length past EOF, failed CRC,
// short header). Everything before it is recovered, everything from it on
// is discarded — loudly (one warn line per journal) but non-fatally,
// because a torn tail is the *expected* artifact of the crash the journal
// exists to survive. Opening the journal truncates the file back to the
// valid prefix before appending, so garbage never ends up between records.
//
// Concurrency: one SweepJournal per process, appended from whichever thread
// the fabric's ResultCallback fires on (appends are mutex-serialized).
// Multiple processes must not share one journal file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "exp/sweep.hpp"

namespace dssoc::exp {

/// Journal file format version (bump on any layout change; old journals are
/// then recovered as empty rather than misread).
/// v2: three-way point status (saturated joins ok/failed) and stats payloads
/// for saturated records.
inline constexpr std::uint32_t kJournalFormatVersion = 2;

/// Canonical hash of everything that determines `point`'s result bytes:
/// the engine build fingerprint (common/config_hash.hpp), the platform and
/// SoC configuration, the cost model, every EmulationOptions field
/// (scheduler, seed, all modeled costs), and the full arrival trace. The
/// application library contributes only its size — application archetypes
/// are built by this binary's code, so changing them means rebuilding,
/// which is the operator's cue to start a fresh journal.
std::uint64_t point_config_hash(const SweepPoint& point);

/// One recovered/persisted journal entry.
struct JournalRecord {
  std::uint64_t config_hash = 0;
  SweepResult result;  ///< result.source is kJournal after recovery
};

/// Append-only, CRC-checked write-ahead log of per-point sweep results.
class SweepJournal {
 public:
  /// What open-time recovery found — exposed for resume accounting and for
  /// tests pinning the corruption-handling paths.
  struct Recovery {
    bool existed = false;          ///< file was present before open
    std::size_t records = 0;       ///< valid records recovered
    std::size_t dropped_bytes = 0; ///< torn/corrupt tail bytes discarded
    /// One human-readable line per discard decision (also logged at warn
    /// level — corruption must never be silent).
    std::vector<std::string> warnings;
  };

  /// Opens (creating if absent) the journal at `path`: recovers the valid
  /// record prefix, truncates any torn tail, and leaves the file positioned
  /// for appending. Throws DssocError when the file cannot be opened or is
  /// not a sweep journal at all (wrong magic on a non-empty, non-truncated
  /// header — likely a user pointing DSSOC_SWEEP_JOURNAL at the wrong
  /// file, which must not be clobbered).
  explicit SweepJournal(std::string path);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  const std::string& path() const noexcept { return path_; }
  const Recovery& recovery() const noexcept { return recovery_; }

  /// Number of valid records held (recovered + appended this session).
  std::size_t size() const;

  /// The most recent *replayable* record for this config hash, or nullptr.
  /// Ok and saturated records replay (both are deterministic terminal
  /// outcomes carrying full stats); failed records never do — a resume
  /// always re-executes failures.
  const SweepResult* find_ok(std::uint64_t config_hash) const;

  /// Appends one record and fsync()s it to disk before returning, so a
  /// supervisor death at any later instant cannot lose it. Thread-safe.
  void append(std::uint64_t config_hash, const SweepResult& result);

 private:
  std::string path_;
  int fd_ = -1;
  Recovery recovery_;
  mutable std::mutex mutex_;
  std::vector<JournalRecord> records_;
  /// config hash -> index of the latest replayable (ok/saturated) record.
  std::map<std::uint64_t, std::size_t> ok_index_;
};

}  // namespace dssoc::exp
