#include "exp/aggregate.hpp"

#include <map>

#include "common/error.hpp"

namespace dssoc::exp {

std::size_t ResultGroup::ok_count() const {
  std::size_t count = 0;
  for (const SweepResult* member : members) {
    count += member->status == PointStatus::kOk ? 1u : 0u;
  }
  return count;
}

std::size_t ResultGroup::failed_count() const {
  std::size_t count = 0;
  for (const SweepResult* member : members) {
    count += member->status == PointStatus::kFailed ? 1u : 0u;
  }
  return count;
}

std::size_t ResultGroup::saturated_count() const {
  std::size_t count = 0;
  for (const SweepResult* member : members) {
    count += member->status == PointStatus::kSaturated ? 1u : 0u;
  }
  return count;
}

std::vector<double> ResultGroup::makespans_ms() const {
  std::vector<double> samples;
  samples.reserve(members.size());
  for (const SweepResult* member : members) {
    if (member->status == PointStatus::kOk) {
      samples.push_back(member->stats.makespan_ms());
    }
  }
  return samples;
}

FiveNumberSummary ResultGroup::makespan_summary_ms() const {
  return five_number_summary(makespans_ms());
}

double ResultGroup::mean_makespan_ms() const {
  return mean_of(makespans_ms());
}

double ResultGroup::mean_avg_sched_overhead_us() const {
  double total = 0.0;
  std::size_t count = 0;
  for (const SweepResult* member : members) {
    if (member->status == PointStatus::kOk) {
      total += member->stats.avg_scheduling_overhead_us();
      ++count;
    }
  }
  DSSOC_REQUIRE(count > 0,
                "result group \"" + key + "\" has no completed member");
  return total / static_cast<double>(count);
}

core::LatencyStats ResultGroup::latency() const {
  std::vector<const core::AppRecord*> pooled;
  std::size_t eligible = 0;
  for (const SweepResult* member : members) {
    if (member->status == PointStatus::kFailed) {
      continue;
    }
    ++eligible;
    for (const core::AppRecord& app : member->stats.apps) {
      pooled.push_back(&app);
    }
  }
  DSSOC_REQUIRE(eligible > 0,
                "result group \"" + key + "\" has no member with stats");
  return core::latency_stats_over(pooled);
}

const SweepResult* ResultGroup::first_saturated() const {
  for (const SweepResult* member : members) {
    if (member->status == PointStatus::kSaturated) {
      return member;
    }
  }
  return nullptr;
}

const core::EmulationStats& ResultGroup::representative() const {
  for (auto it = members.rbegin(); it != members.rend(); ++it) {
    if ((*it)->status == PointStatus::kOk) {
      return (*it)->stats;
    }
  }
  throw DssocError("result group \"" + key + "\" has no completed member");
}

Aggregation Aggregation::by(
    const std::vector<SweepResult>& results,
    const std::function<std::string(const SweepResult&)>& key_of) {
  DSSOC_REQUIRE(key_of != nullptr, "null aggregation key function");
  Aggregation aggregation;
  std::map<std::string, std::size_t> index;
  for (const SweepResult& result : results) {
    std::string key = key_of(result);
    const auto [it, inserted] =
        index.try_emplace(std::move(key), aggregation.groups_.size());
    if (inserted) {
      ResultGroup group;
      group.key = it->first;
      aggregation.groups_.push_back(std::move(group));
    }
    aggregation.groups_[it->second].members.push_back(&result);
  }
  return aggregation;
}

Aggregation Aggregation::by_label_prefix(
    const std::vector<SweepResult>& results) {
  return by(results, [](const SweepResult& result) {
    const std::size_t slash = result.label.rfind('/');
    return slash == std::string::npos ? result.label
                                      : result.label.substr(0, slash);
  });
}

const ResultGroup* Aggregation::find(const std::string& key) const {
  for (const ResultGroup& group : groups_) {
    if (group.key == key) {
      return &group;
    }
  }
  return nullptr;
}

}  // namespace dssoc::exp
