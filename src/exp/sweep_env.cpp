#include "exp/sweep_env.hpp"

#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "core/arrivals.hpp"
#include "policy/register.hpp"

namespace dssoc::exp {
namespace {

std::string env_or(const char* name, const char* fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : fallback;
}

}  // namespace

SweepEnv SweepEnv::from_env() {
  SweepEnv env;
  env.fabric = sweep_fabric_from_env();
  env.mode = env_or("DSSOC_SWEEP_MODE", "");
  env.journal_path = env_or("DSSOC_SWEEP_JOURNAL", "");
  env.resume = env_or("DSSOC_SWEEP_RESUME", "") == "1";
  env.scheduler_override = env_or("DSSOC_SCHED", "");
  env.arrivals_override = env_or("DSSOC_ARRIVALS", "");
  const std::string threads = env_or("DSSOC_SWEEP_THREADS", "");
  if (!threads.empty()) {
    try {
      env.threads = std::stoi(threads);
    } catch (const std::exception&) {
      throw ConfigError(cat("DSSOC_SWEEP_THREADS must be an integer, got \"",
                            threads, "\""));
    }
  }
  return env;
}

std::string SweepRun::width_phrase() const {
  return cat(execution.width, execution.fabric == "proc"
                                  ? " worker process(es)"
                                  : " host thread(s)");
}

int SweepRun::finish(const std::string& bench_name) {
  std::cout << resume_summary(execution) << failure_summary(execution.results);
  maybe_write_bench_json(bench_name, execution.width, total_wall_ms,
                         execution.results, meta);
  if (execution.interrupted_signal != 0) {
    std::cout << "[sweep] interrupted by signal "
              << execution.interrupted_signal
              << "; partial artifact written, resume with "
                 "DSSOC_SWEEP_RESUME=1\n";
    return 128 + execution.interrupted_signal;
  }
  return 0;
}

SweepRun run_sweep(std::vector<SweepPoint>& points, const SweepEnv& env) {
  // Makes "policy:..." specs resolvable before any worker creates a
  // scheduler — static libraries drop self-registering TUs, so the sweep
  // entry point is the registration site.
  policy::register_policies();
  if (!env.scheduler_override.empty()) {
    for (SweepPoint& point : points) {
      point.setup.options.scheduler = env.scheduler_override;
    }
  }
  if (!env.arrivals_override.empty()) {
    // Parse/validate the spec once (a typo must fail before any point runs),
    // then regenerate every point's trace over its declared window with its
    // own seed — points keep distinct, reproducible streams.
    const std::unique_ptr<core::ArrivalProcess> process =
        core::ArrivalRegistry::instance().create(env.arrivals_override);
    for (SweepPoint& point : points) {
      if (point.time_frame <= 0) {
        throw ConfigError(
            cat("DSSOC_ARRIVALS cannot apply to sweep point \"", point.label,
                "\": the point declares no injection window (it is not "
                "arrival-driven)"));
      }
      Rng rng(point.setup.options.seed);
      point.workload = process->generate(point.time_frame, rng);
    }
  }
  SweepRun run;
  Stopwatch watch;
  run.execution = run_sweep(points, env.threads);
  run.total_wall_ms = sim_to_ms(watch.elapsed());
  run.meta = SweepArtifactMeta::detect();
  run.meta.apply(run.execution);
  return run;
}

}  // namespace dssoc::exp
