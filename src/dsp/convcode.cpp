#include "dsp/convcode.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>

#include "common/error.hpp"

namespace dssoc::dsp {

namespace {
constexpr unsigned kConstraint = 7;
constexpr unsigned kStates = 1U << (kConstraint - 1);  // 64 states
// The 802.11 generators are 133 and 171 in octal
// *including* the current input bit as the MSB of a 7-bit window. We keep the
// window as (input << 6) | state where state holds the previous 6 bits,
// newest in bit 5. With that layout the taps are:
//   g0 = 1011011 (0133) and g1 = 1111001 (0171).
constexpr unsigned kGen0 = 0133;
constexpr unsigned kGen1 = 0171;

inline std::uint8_t parity(unsigned x) {
  return static_cast<std::uint8_t>(std::popcount(x) & 1U);
}

// Output pair for (state, input).
inline void encode_step(unsigned state, unsigned input, std::uint8_t& out0,
                        std::uint8_t& out1) {
  const unsigned window = (input << 6) | state;  // 7-bit shift register view
  out0 = parity(window & kGen0);
  out1 = parity(window & kGen1);
}

inline unsigned next_state(unsigned state, unsigned input) {
  // Shift the register right: new bit enters at position 5.
  return ((input << 5) | (state >> 1)) & (kStates - 1);
}
}  // namespace

std::vector<std::uint8_t> convolutional_encode(
    std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  out.reserve(2 * (bits.size() + kConstraint - 1));
  unsigned state = 0;
  auto push = [&](unsigned input) {
    std::uint8_t o0 = 0;
    std::uint8_t o1 = 0;
    encode_step(state, input, o0, o1);
    out.push_back(o0);
    out.push_back(o1);
    state = next_state(state, input);
  };
  for (const std::uint8_t bit : bits) {
    push(bit & 1U);
  }
  for (unsigned i = 0; i < kConstraint - 1; ++i) {
    push(0);  // tail flush back to the zero state
  }
  return out;
}

std::vector<std::uint8_t> viterbi_decode(std::span<const std::uint8_t> coded) {
  DSSOC_REQUIRE(coded.size() % 2 == 0,
                "viterbi input must contain bit pairs");
  DSSOC_REQUIRE(coded.size() >= 2 * (kConstraint - 1),
                "viterbi input shorter than the tail");
  const std::size_t steps = coded.size() / 2;

  constexpr unsigned kInf = std::numeric_limits<unsigned>::max() / 2;
  std::array<unsigned, kStates> metric;
  metric.fill(kInf);
  metric[0] = 0;  // encoder starts in the zero state

  // survivors[t][s] = input bit that led into state s at step t, plus the
  // predecessor state packed alongside.
  std::vector<std::array<std::uint8_t, kStates>> survivor_input(steps);
  std::vector<std::array<std::uint8_t, kStates>> survivor_prev(steps);

  std::array<unsigned, kStates> next_metric;
  for (std::size_t t = 0; t < steps; ++t) {
    next_metric.fill(kInf);
    const std::uint8_t r0 = coded[2 * t] & 1U;
    const std::uint8_t r1 = coded[2 * t + 1] & 1U;
    for (unsigned state = 0; state < kStates; ++state) {
      if (metric[state] >= kInf) {
        continue;
      }
      for (unsigned input = 0; input < 2; ++input) {
        std::uint8_t o0 = 0;
        std::uint8_t o1 = 0;
        encode_step(state, input, o0, o1);
        const unsigned branch = static_cast<unsigned>(o0 != r0) +
                                static_cast<unsigned>(o1 != r1);
        const unsigned candidate = metric[state] + branch;
        const unsigned ns = next_state(state, input);
        if (candidate < next_metric[ns]) {
          next_metric[ns] = candidate;
          survivor_input[t][ns] = static_cast<std::uint8_t>(input);
          survivor_prev[t][ns] = static_cast<std::uint8_t>(state);
        }
      }
    }
    metric = next_metric;
  }

  // The tail drives the encoder back to state 0; trace back from there.
  unsigned state = 0;
  std::vector<std::uint8_t> decoded(steps);
  for (std::size_t t = steps; t-- > 0;) {
    decoded[t] = survivor_input[t][state];
    state = survivor_prev[t][state];
  }
  decoded.resize(steps - (kConstraint - 1));  // drop tail bits
  return decoded;
}

}  // namespace dssoc::dsp
