#include "dsp/vec.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dssoc::dsp {

void multiply(std::span<const cfloat> a, std::span<const cfloat> b,
              std::span<cfloat> out) {
  DSSOC_ASSERT(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] * b[i];
  }
}

void multiply_conj(std::span<const cfloat> a, std::span<const cfloat> b,
                   std::span<cfloat> out) {
  DSSOC_ASSERT(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] * std::conj(b[i]);
  }
}

void conjugate(std::span<cfloat> data) {
  for (cfloat& x : data) {
    x = std::conj(x);
  }
}

void scale(std::span<cfloat> data, float factor) {
  for (cfloat& x : data) {
    x *= factor;
  }
}

float magnitude_squared(cfloat x) {
  return x.real() * x.real() + x.imag() * x.imag();
}

std::size_t max_magnitude_index(std::span<const cfloat> data) {
  std::size_t best = 0;
  float best_mag = -1.0F;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const float mag = magnitude_squared(data[i]);
    if (mag > best_mag) {
      best_mag = mag;
      best = i;
    }
  }
  return best;
}

double energy(std::span<const cfloat> data) {
  double total = 0.0;
  for (const cfloat x : data) {
    total += static_cast<double>(magnitude_squared(x));
  }
  return total;
}

double rms_error(std::span<const cfloat> a, std::span<const cfloat> b) {
  DSSOC_ASSERT(a.size() == b.size());
  if (a.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += static_cast<double>(magnitude_squared(a[i] - b[i]));
  }
  return std::sqrt(total / static_cast<double>(a.size()));
}

}  // namespace dssoc::dsp
