#include "dsp/crc.hpp"

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace dssoc::dsp {

std::uint32_t crc32_bytes(std::span<const std::uint8_t> bytes) {
  // Same polynomial and reflection as the framework-wide byte CRC.
  return dssoc::crc32(bytes.data(), bytes.size());
}

std::uint32_t crc32_bits(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] & 1U) {
      bytes[i / 8] |= static_cast<std::uint8_t>(1U << (i % 8));
    }
  }
  return crc32_bytes(bytes);
}

std::vector<std::uint8_t> append_crc_bits(std::span<const std::uint8_t> bits) {
  const std::uint32_t crc = crc32_bits(bits);
  std::vector<std::uint8_t> out(bits.begin(), bits.end());
  for (int i = 0; i < 32; ++i) {
    out.push_back(static_cast<std::uint8_t>((crc >> i) & 1U));
  }
  return out;
}

std::vector<std::uint8_t> check_and_strip_crc(
    std::span<const std::uint8_t> bits, bool& ok) {
  DSSOC_REQUIRE(bits.size() >= 32, "buffer shorter than a CRC-32");
  const std::size_t payload_size = bits.size() - 32;
  std::vector<std::uint8_t> payload(bits.begin(),
                                    bits.begin() + static_cast<std::ptrdiff_t>(
                                                       payload_size));
  std::uint32_t received = 0;
  for (int i = 0; i < 32; ++i) {
    received |= static_cast<std::uint32_t>(bits[payload_size +
                                                static_cast<std::size_t>(i)] &
                                           1U)
                << i;
  }
  ok = crc32_bits(payload) == received;
  return payload;
}

}  // namespace dssoc::dsp
