// CRC-32 (IEEE 802.3 polynomial, reflected) over bit vectors — the WiFi TX
// pipeline's final task and the RX pipeline's integrity check.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dssoc::dsp {

/// CRC-32 of a vector of bits (each element 0/1); bits are consumed LSB-first
/// in groups of eight (trailing partial byte padded with zeros).
std::uint32_t crc32_bits(std::span<const std::uint8_t> bits);

/// CRC-32 of a byte buffer.
std::uint32_t crc32_bytes(std::span<const std::uint8_t> bytes);

/// Appends the 32 CRC bits (LSB first) to a copy of the payload bits.
std::vector<std::uint8_t> append_crc_bits(std::span<const std::uint8_t> bits);

/// Verifies and strips a CRC appended by append_crc_bits. Returns the payload
/// and sets ok accordingly; on failure the payload is still returned.
std::vector<std::uint8_t> check_and_strip_crc(
    std::span<const std::uint8_t> bits, bool& ok);

}  // namespace dssoc::dsp
