// Radar waveform kernels: LFM chirp generation, FFT-based cross-correlation,
// echo synthesis for tests, and range/velocity conversion helpers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "dsp/vec.hpp"

namespace dssoc::dsp {

/// Generates a complex linear-frequency-modulated (LFM) chirp of n samples
/// sweeping from -bandwidth/2 to +bandwidth/2 over the pulse, sampled at
/// sample_rate (Hz).
std::vector<cfloat> lfm_chirp(std::size_t n, double bandwidth,
                              double sample_rate);

/// Synthesizes a received signal: the reference delayed by `delay_samples`
/// (cyclically), scaled, with optional AWGN of the given standard deviation.
std::vector<cfloat> synthesize_echo(std::span<const cfloat> reference,
                                    std::size_t delay_samples, float amplitude,
                                    float noise_stddev, Rng& rng);

/// Circular cross-correlation via FFT: corr[lag] = sum_t rx[t+lag]*conj(ref[t]).
/// Sizes must match and be powers of two.
std::vector<cfloat> circular_correlate(std::span<const cfloat> rx,
                                       std::span<const cfloat> reference);

/// Converts a correlation-peak lag into range in meters.
/// range = c * lag / (2 * sample_rate).
double lag_to_range_m(std::size_t lag, double sample_rate);

/// Converts a Doppler-bin index (after fftshift, m pulses, PRF in Hz,
/// carrier wavelength in meters) into radial velocity in m/s.
double doppler_bin_to_velocity(std::ptrdiff_t shifted_bin, std::size_t m,
                               double prf, double wavelength);

}  // namespace dssoc::dsp
