// Gray-coded QPSK modulation and hard-decision demodulation.
// Bit pairs map to constellation points at +-1/sqrt(2) +- j/sqrt(2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/vec.hpp"

namespace dssoc::dsp {

/// bits.size() must be even; two bits become one symbol (first bit -> I sign,
/// second bit -> Q sign; Gray mapping).
std::vector<cfloat> qpsk_modulate(std::span<const std::uint8_t> bits);

/// Hard-decision demodulation: sign of I and Q recover the bit pair.
std::vector<std::uint8_t> qpsk_demodulate(std::span<const cfloat> symbols);

}  // namespace dssoc::dsp
