#include "dsp/channel.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dssoc::dsp {

void awgn(std::span<cfloat> signal, float stddev, Rng& rng) {
  if (stddev <= 0.0F) {
    return;
  }
  for (cfloat& x : signal) {
    x += cfloat(stddev * static_cast<float>(rng.normal()),
                stddev * static_cast<float>(rng.normal()));
  }
}

std::vector<cfloat> frame_preamble(std::size_t length) {
  // Deterministic PN-QPSK sequence; seed is part of the air-interface spec.
  Rng rng(0xC0FFEE123456789AULL);
  std::vector<cfloat> out(length);
  const float amp = 1.0F / std::sqrt(2.0F);
  for (cfloat& x : out) {
    const float re = rng.bernoulli(0.5) ? amp : -amp;
    const float im = rng.bernoulli(0.5) ? amp : -amp;
    x = cfloat(re, im);
  }
  return out;
}

std::vector<cfloat> build_frame(std::span<const cfloat> payload,
                                std::size_t preamble_length, std::size_t pad) {
  const std::vector<cfloat> preamble = frame_preamble(preamble_length);
  std::vector<cfloat> frame;
  frame.reserve(pad + preamble_length + payload.size());
  frame.insert(frame.end(), pad, cfloat(0.0F, 0.0F));
  frame.insert(frame.end(), preamble.begin(), preamble.end());
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

std::size_t matched_filter_locate(std::span<const cfloat> rx,
                                  std::size_t preamble_length) {
  DSSOC_REQUIRE(rx.size() >= preamble_length,
                "received buffer shorter than the preamble");
  const std::vector<cfloat> preamble = frame_preamble(preamble_length);
  std::size_t best_offset = 0;
  float best_mag = -1.0F;
  for (std::size_t offset = 0; offset + preamble_length <= rx.size();
       ++offset) {
    cfloat acc(0.0F, 0.0F);
    for (std::size_t i = 0; i < preamble_length; ++i) {
      acc += rx[offset + i] * std::conj(preamble[i]);
    }
    const float mag = magnitude_squared(acc);
    if (mag > best_mag) {
      best_mag = mag;
      best_offset = offset;
    }
  }
  return best_offset;
}

std::vector<cfloat> extract_payload(std::span<const cfloat> rx,
                                    std::size_t preamble_start,
                                    std::size_t preamble_length,
                                    std::size_t payload_length) {
  const std::size_t begin = preamble_start + preamble_length;
  DSSOC_REQUIRE(begin + payload_length <= rx.size(),
                "payload runs past the end of the received buffer");
  return std::vector<cfloat>(
      rx.begin() + static_cast<std::ptrdiff_t>(begin),
      rx.begin() + static_cast<std::ptrdiff_t>(begin + payload_length));
}

}  // namespace dssoc::dsp
