#include "dsp/matrix.hpp"

#include "common/error.hpp"

namespace dssoc::dsp {

std::vector<cfloat> transpose(std::span<const cfloat> data, std::size_t rows,
                              std::size_t cols) {
  DSSOC_REQUIRE(data.size() == rows * cols, "transpose size mismatch");
  std::vector<cfloat> out(data.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out[c * rows + r] = data[r * cols + c];
    }
  }
  return out;
}

std::vector<cfloat> matrix_row(std::span<const cfloat> data, std::size_t rows,
                               std::size_t cols, std::size_t r) {
  DSSOC_REQUIRE(data.size() == rows * cols, "matrix_row size mismatch");
  DSSOC_REQUIRE(r < rows, "matrix_row index out of range");
  return std::vector<cfloat>(
      data.begin() + static_cast<std::ptrdiff_t>(r * cols),
      data.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols));
}

void set_matrix_row(std::span<cfloat> data, std::size_t rows, std::size_t cols,
                    std::size_t r, std::span<const cfloat> row) {
  DSSOC_REQUIRE(data.size() == rows * cols, "set_matrix_row size mismatch");
  DSSOC_REQUIRE(r < rows, "set_matrix_row index out of range");
  DSSOC_REQUIRE(row.size() == cols, "set_matrix_row row width mismatch");
  for (std::size_t c = 0; c < cols; ++c) {
    data[r * cols + c] = row[c];
  }
}

}  // namespace dssoc::dsp
