// Complex vector primitives shared by the SDR kernels.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace dssoc::dsp {

using cfloat = std::complex<float>;

/// Element-wise a[i] * b[i]; sizes must match.
void multiply(std::span<const cfloat> a, std::span<const cfloat> b,
              std::span<cfloat> out);

/// Element-wise a[i] * conj(b[i]) — the frequency-domain correlation core.
void multiply_conj(std::span<const cfloat> a, std::span<const cfloat> b,
                   std::span<cfloat> out);

/// In-place complex conjugate.
void conjugate(std::span<cfloat> data);

/// Multiplies every element by a real scale factor.
void scale(std::span<cfloat> data, float factor);

/// Index of the element with the largest magnitude; ties resolve to the
/// earliest index. Returns 0 for empty input.
std::size_t max_magnitude_index(std::span<const cfloat> data);

/// |x|^2 without the sqrt.
float magnitude_squared(cfloat x);

/// Sum of |x|^2 over the vector (signal energy).
double energy(std::span<const cfloat> data);

/// Root-mean-square error between two vectors of equal size.
double rms_error(std::span<const cfloat> a, std::span<const cfloat> b);

}  // namespace dssoc::dsp
