// Row-major complex matrix helpers for the pulse-Doppler corner turn
// ("Realign matrix" in Fig. 8 of the paper).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/vec.hpp"

namespace dssoc::dsp {

/// Transposes a rows x cols row-major matrix into cols x rows.
/// data.size() must equal rows * cols.
std::vector<cfloat> transpose(std::span<const cfloat> data, std::size_t rows,
                              std::size_t cols);

/// Extracts row `r` of a rows x cols row-major matrix.
std::vector<cfloat> matrix_row(std::span<const cfloat> data, std::size_t rows,
                               std::size_t cols, std::size_t r);

/// Writes `row` into row `r` of a rows x cols row-major matrix.
void set_matrix_row(std::span<cfloat> data, std::size_t rows, std::size_t cols,
                    std::size_t r, std::span<const cfloat> row);

}  // namespace dssoc::dsp
