#include "dsp/interleaver.hpp"

#include "common/error.hpp"

namespace dssoc::dsp {

std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> bits,
                                     std::size_t rows, std::size_t cols) {
  DSSOC_REQUIRE(rows > 0 && cols > 0, "interleaver geometry must be non-zero");
  DSSOC_REQUIRE(bits.size() == rows * cols,
                "interleaver input size must equal rows * cols");
  std::vector<std::uint8_t> out(bits.size());
  std::size_t write = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      out[write++] = bits[r * cols + c];
    }
  }
  return out;
}

std::vector<std::uint8_t> deinterleave(std::span<const std::uint8_t> bits,
                                       std::size_t rows, std::size_t cols) {
  DSSOC_REQUIRE(rows > 0 && cols > 0, "interleaver geometry must be non-zero");
  DSSOC_REQUIRE(bits.size() == rows * cols,
                "deinterleaver input size must equal rows * cols");
  std::vector<std::uint8_t> out(bits.size());
  std::size_t read = 0;
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      out[r * cols + c] = bits[read++];
    }
  }
  return out;
}

}  // namespace dssoc::dsp
