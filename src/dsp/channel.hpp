// AWGN channel model and the WiFi frame preamble/matched-filter machinery.
//
// The paper's WiFi pipeline (Fig. 7) transmits through an AWGN channel; the
// receiver's first two tasks are "Match Filter & Payload Extraction". The
// frame format here is: [preamble (known chirp-like sequence)] [payload
// OFDM time-domain samples]. The matched filter correlates against the
// preamble to find the frame start.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "dsp/vec.hpp"

namespace dssoc::dsp {

/// Adds complex AWGN with per-component standard deviation `stddev`.
void awgn(std::span<cfloat> signal, float stddev, Rng& rng);

/// Known preamble sequence of the given length (deterministic pseudo-noise
/// QPSK sequence — both TX and RX derive it from the same generator seed).
std::vector<cfloat> frame_preamble(std::size_t length);

/// Builds a frame: preamble followed by payload, with `pad` zero samples in
/// front (models unknown arrival time).
std::vector<cfloat> build_frame(std::span<const cfloat> payload,
                                std::size_t preamble_length, std::size_t pad);

/// Sliding-window matched filter against the known preamble; returns the
/// offset of the best match (start of the preamble within rx).
std::size_t matched_filter_locate(std::span<const cfloat> rx,
                                  std::size_t preamble_length);

/// Extracts `payload_length` samples following the preamble that starts at
/// `preamble_start`. Throws DssocError if the frame would run past the end.
std::vector<cfloat> extract_payload(std::span<const cfloat> rx,
                                    std::size_t preamble_start,
                                    std::size_t preamble_length,
                                    std::size_t payload_length);

}  // namespace dssoc::dsp
