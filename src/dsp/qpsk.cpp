#include "dsp/qpsk.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dssoc::dsp {

namespace {
const float kAmp = 1.0F / std::sqrt(2.0F);
}

std::vector<cfloat> qpsk_modulate(std::span<const std::uint8_t> bits) {
  DSSOC_REQUIRE(bits.size() % 2 == 0, "QPSK needs an even number of bits");
  std::vector<cfloat> out(bits.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float re = (bits[2 * i] & 1U) ? -kAmp : kAmp;
    const float im = (bits[2 * i + 1] & 1U) ? -kAmp : kAmp;
    out[i] = cfloat(re, im);
  }
  return out;
}

std::vector<std::uint8_t> qpsk_demodulate(std::span<const cfloat> symbols) {
  std::vector<std::uint8_t> out(symbols.size() * 2);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    out[2 * i] = symbols[i].real() < 0.0F ? 1 : 0;
    out[2 * i + 1] = symbols[i].imag() < 0.0F ? 1 : 0;
  }
  return out;
}

}  // namespace dssoc::dsp
