#include "dsp/radar.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "dsp/fft.hpp"

namespace dssoc::dsp {

std::vector<cfloat> lfm_chirp(std::size_t n, double bandwidth,
                              double sample_rate) {
  DSSOC_REQUIRE(n > 0, "lfm_chirp needs at least one sample");
  DSSOC_REQUIRE(sample_rate > 0.0, "sample_rate must be positive");
  std::vector<cfloat> out(n);
  const double duration = static_cast<double>(n) / sample_rate;
  const double slope = bandwidth / duration;  // Hz per second
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sample_rate - duration / 2.0;
    const double phase = std::numbers::pi * slope * t * t;
    out[i] = cfloat(static_cast<float>(std::cos(phase)),
                    static_cast<float>(std::sin(phase)));
  }
  return out;
}

std::vector<cfloat> synthesize_echo(std::span<const cfloat> reference,
                                    std::size_t delay_samples, float amplitude,
                                    float noise_stddev, Rng& rng) {
  const std::size_t n = reference.size();
  DSSOC_REQUIRE(n > 0, "synthesize_echo needs a non-empty reference");
  std::vector<cfloat> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[(i + delay_samples) % n] = amplitude * reference[i];
  }
  if (noise_stddev > 0.0F) {
    for (cfloat& x : out) {
      x += cfloat(noise_stddev * static_cast<float>(rng.normal()),
                  noise_stddev * static_cast<float>(rng.normal()));
    }
  }
  return out;
}

std::vector<cfloat> circular_correlate(std::span<const cfloat> rx,
                                       std::span<const cfloat> reference) {
  DSSOC_REQUIRE(rx.size() == reference.size(),
                "correlation inputs must have equal length");
  DSSOC_REQUIRE(is_power_of_two(rx.size()),
                "circular_correlate requires power-of-two length");
  std::vector<cfloat> rx_freq(rx.begin(), rx.end());
  std::vector<cfloat> ref_freq(reference.begin(), reference.end());
  const FftPlan plan(rx.size());
  plan.forward(rx_freq);
  plan.forward(ref_freq);
  std::vector<cfloat> product(rx.size());
  multiply_conj(rx_freq, ref_freq, product);
  plan.inverse(product);
  return product;
}

double lag_to_range_m(std::size_t lag, double sample_rate) {
  constexpr double kSpeedOfLight = 299'792'458.0;
  return kSpeedOfLight * static_cast<double>(lag) / (2.0 * sample_rate);
}

double doppler_bin_to_velocity(std::ptrdiff_t shifted_bin, std::size_t m,
                               double prf, double wavelength) {
  DSSOC_REQUIRE(m > 0, "doppler_bin_to_velocity needs m > 0");
  // After fftshift, bin 0 corresponds to -PRF/2; center bin is zero Doppler.
  const double half = static_cast<double>(m) / 2.0;
  const double doppler_hz =
      (static_cast<double>(shifted_bin) - half) * prf / static_cast<double>(m);
  return doppler_hz * wavelength / 2.0;
}

}  // namespace dssoc::dsp
