// Rate-1/2, constraint-length-7 convolutional code (the 802.11a industry
// standard generators g0 = 133o, g1 = 171o) with a hard-decision Viterbi
// decoder. The decoder is the dominant compute kernel of the WiFi RX
// application (Table I: RX at 2.22 ms vs TX at 0.13 ms).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dssoc::dsp {

/// Encodes `bits` (0/1 values) with K=7 rate-1/2; the encoder is flushed with
/// six zero tail bits, so the output has 2 * (bits.size() + 6) bits.
std::vector<std::uint8_t> convolutional_encode(
    std::span<const std::uint8_t> bits);

/// Hard-decision Viterbi decode of a sequence produced by
/// convolutional_encode (including the tail). Returns the original payload
/// bits (tail removed). coded.size() must be even and >= 12.
std::vector<std::uint8_t> viterbi_decode(std::span<const std::uint8_t> coded);

}  // namespace dssoc::dsp
