#include "dsp/fft.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <memory>
#include <numbers>

#include "common/error.hpp"

namespace dssoc::dsp {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

FftPlan::FftPlan(std::size_t n) : n_(n), log2n_(0) {
  DSSOC_REQUIRE(is_power_of_two(n), "FftPlan size must be a power of two");
  while ((std::size_t{1} << log2n_) < n_) {
    ++log2n_;
  }
  twiddles_.resize(n_ / 2);
  for (std::size_t k = 0; k < n_ / 2; ++k) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n_);
    twiddles_[k] = cfloat(static_cast<float>(std::cos(angle)),
                          static_cast<float>(std::sin(angle)));
  }
  reversal_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    std::uint32_t reversed = 0;
    std::size_t value = i;
    for (std::size_t bit = 0; bit < log2n_; ++bit) {
      reversed = (reversed << 1) | static_cast<std::uint32_t>(value & 1);
      value >>= 1;
    }
    reversal_[i] = reversed;
  }
}

void FftPlan::transform(std::span<cfloat> data, bool inverse) const {
  DSSOC_REQUIRE(data.size() == n_, "FftPlan applied to wrong-size buffer");
  // Bit-reversal permutation.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = reversal_[i];
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  // Iterative Cooley-Tukey butterflies.
  for (std::size_t stage_size = 2; stage_size <= n_; stage_size <<= 1) {
    const std::size_t half = stage_size / 2;
    const std::size_t twiddle_step = n_ / stage_size;
    for (std::size_t block = 0; block < n_; block += stage_size) {
      for (std::size_t k = 0; k < half; ++k) {
        cfloat w = twiddles_[k * twiddle_step];
        if (inverse) {
          w = std::conj(w);
        }
        const cfloat even = data[block + k];
        const cfloat odd = data[block + k + half] * w;
        data[block + k] = even + odd;
        data[block + k + half] = even - odd;
      }
    }
  }
  if (inverse) {
    const float norm = 1.0F / static_cast<float>(n_);
    for (cfloat& x : data) {
      x *= norm;
    }
  }
}

void FftPlan::forward(std::span<cfloat> data) const { transform(data, false); }
void FftPlan::inverse(std::span<cfloat> data) const { transform(data, true); }

namespace {

/// Per-size plan cache for the free fft()/ifft() entry points: functional
/// execution runs (run_kernels=true) call them once per FFT task, and the
/// twiddle/bit-reversal setup is O(n log n) — as expensive as the transform
/// itself. Sizes are powers of two, so plans live in a log2-indexed table.
/// thread_local because parallel sweeps (exp::SweepRunner) execute kernels
/// concurrently; per-thread duplication is cheap and needs no locking.
const FftPlan& cached_plan(std::size_t n) {
  constexpr std::size_t kMaxLog2 = 26;  // 64M points, far above any workload
  thread_local std::array<std::unique_ptr<FftPlan>, kMaxLog2 + 1> plans;
  DSSOC_REQUIRE(is_power_of_two(n), "FftPlan size must be a power of two");
  const auto log2n = static_cast<std::size_t>(std::countr_zero(n));
  if (log2n > kMaxLog2) {
    thread_local std::unique_ptr<FftPlan> oversized;
    if (oversized == nullptr || oversized->size() != n) {
      oversized = std::make_unique<FftPlan>(n);
    }
    return *oversized;
  }
  if (plans[log2n] == nullptr) {
    plans[log2n] = std::make_unique<FftPlan>(n);
  }
  return *plans[log2n];
}

}  // namespace

void fft(std::span<cfloat> data) { cached_plan(data.size()).forward(data); }
void ifft(std::span<cfloat> data) { cached_plan(data.size()).inverse(data); }

std::vector<cfloat> dft(std::span<const cfloat> input) {
  const std::size_t n = input.size();
  std::vector<cfloat> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      acc += std::complex<double>(input[t].real(), input[t].imag()) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = cfloat(static_cast<float>(acc.real()),
                    static_cast<float>(acc.imag()));
  }
  return out;
}

std::vector<cfloat> idft(std::span<const cfloat> input) {
  const std::size_t n = input.size();
  std::vector<cfloat> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = 2.0 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      acc += std::complex<double>(input[t].real(), input[t].imag()) *
             std::complex<double>(std::cos(angle), std::sin(angle));
    }
    acc /= static_cast<double>(n);
    out[k] = cfloat(static_cast<float>(acc.real()),
                    static_cast<float>(acc.imag()));
  }
  return out;
}

void fftshift(std::span<cfloat> data) {
  const std::size_t n = data.size();
  if (n < 2) {
    return;
  }
  const std::size_t half = (n + 1) / 2;  // rotate left by ceil(n/2)
  std::rotate(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(half),
              data.end());
}

}  // namespace dssoc::dsp
