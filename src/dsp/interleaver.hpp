// Block interleaver: writes bits row-major into a rows x cols matrix and
// reads them column-major, dispersing burst errors across the codeword
// before Viterbi decoding.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dssoc::dsp {

/// bits.size() must equal rows * cols.
std::vector<std::uint8_t> interleave(std::span<const std::uint8_t> bits,
                                     std::size_t rows, std::size_t cols);

/// Exact inverse of interleave with the same geometry.
std::vector<std::uint8_t> deinterleave(std::span<const std::uint8_t> bits,
                                       std::size_t rows, std::size_t cols);

}  // namespace dssoc::dsp
