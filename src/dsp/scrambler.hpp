// 802.11-style additive scrambler/descrambler over the LFSR x^7 + x^4 + 1.
// Scrambling and descrambling are the same XOR operation with identical seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dssoc::dsp {

/// Scrambles a bit vector (values 0/1) with the given 7-bit seed.
/// seed must be non-zero (an all-zero LFSR never advances).
std::vector<std::uint8_t> scramble(std::span<const std::uint8_t> bits,
                                   std::uint8_t seed = 0x5D);

/// Descrambling is symmetric; provided for call-site clarity.
inline std::vector<std::uint8_t> descramble(std::span<const std::uint8_t> bits,
                                            std::uint8_t seed = 0x5D) {
  return scramble(bits, seed);
}

}  // namespace dssoc::dsp
