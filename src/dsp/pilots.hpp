// OFDM pilot insertion/removal on a 64-subcarrier symbol (802.11a layout in
// miniature): data symbols fill the non-pilot, non-guard subcarriers; four
// pilot tones at fixed indices carry a known BPSK value used by the receiver
// for phase sanity checks.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "dsp/vec.hpp"

namespace dssoc::dsp {

inline constexpr std::size_t kOfdmSubcarriers = 64;
inline constexpr std::array<std::size_t, 4> kPilotIndices = {11, 25, 39, 53};
inline constexpr float kPilotValue = 1.0F;

/// Number of data symbols one OFDM symbol carries.
std::size_t ofdm_data_capacity();

/// Places `data` into the data subcarriers of a 64-bin symbol and writes the
/// pilot tones. data.size() must be <= ofdm_data_capacity(); remaining data
/// bins are zero. Guard bins (0 and 32) stay zero.
std::vector<cfloat> insert_pilots(std::span<const cfloat> data);

/// Extracts `count` data symbols back out of a 64-bin symbol.
std::vector<cfloat> remove_pilots(std::span<const cfloat> symbol,
                                  std::size_t count);

/// Mean pilot-tone value of a received symbol (equalization/phase estimate).
cfloat pilot_average(std::span<const cfloat> symbol);

}  // namespace dssoc::dsp
