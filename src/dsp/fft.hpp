// Fourier transforms: an optimized iterative radix-2 FFT (the "library FFT"
// that plays FFTW's role in case study 4), the naive O(n^2) DFT that the
// compiler toolchain detects and replaces, and fftshift.
#pragma once

#include <span>
#include <vector>

#include "dsp/vec.hpp"

namespace dssoc::dsp {

/// Returns true when n is a power of two (and non-zero).
bool is_power_of_two(std::size_t n);

/// Precomputed twiddle/bit-reversal plan for repeated transforms of one size.
/// Construction cost corresponds to FFTW's plan-creation overhead, which the
/// paper includes in its reported 102x speedup.
class FftPlan {
 public:
  /// n must be a power of two. Throws DssocError otherwise.
  explicit FftPlan(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// In-place forward transform (no normalization).
  void forward(std::span<cfloat> data) const;
  /// In-place inverse transform (normalized by 1/n).
  void inverse(std::span<cfloat> data) const;

 private:
  void transform(std::span<cfloat> data, bool inverse) const;

  std::size_t n_;
  std::size_t log2n_;
  std::vector<cfloat> twiddles_;        // forward twiddles, n/2 entries
  std::vector<std::uint32_t> reversal_; // bit-reversal permutation
};

/// One-shot transforms (plan built internally). data.size() must be a power
/// of two.
void fft(std::span<cfloat> data);
void ifft(std::span<cfloat> data);

/// Naive O(n^2) discrete Fourier transform — any size. This is the loop the
/// monolithic radar code in case study 4 ships with.
std::vector<cfloat> dft(std::span<const cfloat> input);
/// Naive inverse DFT (normalized by 1/n).
std::vector<cfloat> idft(std::span<const cfloat> input);

/// Swaps the two halves of the spectrum (even n) or rotates by floor(n/2)+...
/// for odd n, matching the usual fftshift convention.
void fftshift(std::span<cfloat> data);

}  // namespace dssoc::dsp
