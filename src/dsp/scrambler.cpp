#include "dsp/scrambler.hpp"

#include "common/error.hpp"

namespace dssoc::dsp {

std::vector<std::uint8_t> scramble(std::span<const std::uint8_t> bits,
                                   std::uint8_t seed) {
  DSSOC_REQUIRE((seed & 0x7F) != 0, "scrambler seed must be non-zero");
  std::uint8_t state = seed & 0x7F;
  std::vector<std::uint8_t> out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // Feedback bit: x^7 + x^4 + 1 -> XOR of bits 6 and 3 (0-indexed).
    const std::uint8_t feedback =
        static_cast<std::uint8_t>(((state >> 6) ^ (state >> 3)) & 1U);
    state = static_cast<std::uint8_t>(((state << 1) | feedback) & 0x7F);
    out[i] = static_cast<std::uint8_t>((bits[i] ^ feedback) & 1U);
  }
  return out;
}

}  // namespace dssoc::dsp
