#include "dsp/pilots.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dssoc::dsp {

namespace {
bool is_pilot(std::size_t index) {
  return std::find(kPilotIndices.begin(), kPilotIndices.end(), index) !=
         kPilotIndices.end();
}

bool is_guard(std::size_t index) { return index == 0 || index == 32; }
}  // namespace

std::size_t ofdm_data_capacity() {
  return kOfdmSubcarriers - kPilotIndices.size() - 2;  // minus guard bins
}

std::vector<cfloat> insert_pilots(std::span<const cfloat> data) {
  DSSOC_REQUIRE(data.size() <= ofdm_data_capacity(),
                "too many data symbols for one OFDM symbol");
  std::vector<cfloat> symbol(kOfdmSubcarriers, cfloat(0.0F, 0.0F));
  std::size_t read = 0;
  for (std::size_t bin = 0; bin < kOfdmSubcarriers; ++bin) {
    if (is_guard(bin)) {
      continue;
    }
    if (is_pilot(bin)) {
      symbol[bin] = cfloat(kPilotValue, 0.0F);
    } else if (read < data.size()) {
      symbol[bin] = data[read++];
    }
  }
  return symbol;
}

std::vector<cfloat> remove_pilots(std::span<const cfloat> symbol,
                                  std::size_t count) {
  DSSOC_REQUIRE(symbol.size() == kOfdmSubcarriers,
                "OFDM symbol must have 64 subcarriers");
  DSSOC_REQUIRE(count <= ofdm_data_capacity(),
                "requested more data symbols than one OFDM symbol carries");
  std::vector<cfloat> data;
  data.reserve(count);
  for (std::size_t bin = 0; bin < kOfdmSubcarriers && data.size() < count;
       ++bin) {
    if (is_guard(bin) || is_pilot(bin)) {
      continue;
    }
    data.push_back(symbol[bin]);
  }
  return data;
}

cfloat pilot_average(std::span<const cfloat> symbol) {
  DSSOC_REQUIRE(symbol.size() == kOfdmSubcarriers,
                "OFDM symbol must have 64 subcarriers");
  cfloat sum(0.0F, 0.0F);
  for (const std::size_t bin : kPilotIndices) {
    sum += symbol[bin];
  }
  return sum / static_cast<float>(kPilotIndices.size());
}

}  // namespace dssoc::dsp
