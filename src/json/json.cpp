#include "json/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"

namespace dssoc::json {

// ---------------------------------------------------------------------------
// Object

Object::Object(const Object& other) : members_(other.members_) {
  rebuild_index();
}

Object& Object::operator=(const Object& other) {
  if (this != &other) {
    members_ = other.members_;
    rebuild_index();
  }
  return *this;
}

void Object::rebuild_index() {
  index_.clear();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    index_.emplace(members_[i].first, i);
  }
}

bool Object::contains(std::string_view key) const {
  return index_.find(key) != index_.end();
}

const Value* Object::find(std::string_view key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &members_[it->second].second;
}

Value* Object::find(std::string_view key) {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &members_[it->second].second;
}

const Value& Object::at(std::string_view key) const {
  const Value* value = find(key);
  if (value == nullptr) {
    throw DssocError(cat("JSON object has no member \"", key, "\""));
  }
  return *value;
}

Value& Object::at(std::string_view key) {
  Value* value = find(key);
  if (value == nullptr) {
    throw DssocError(cat("JSON object has no member \"", key, "\""));
  }
  return *value;
}

Value& Object::set(std::string key, Value value) {
  if (Value* existing = find(key)) {
    *existing = std::move(value);
    return *existing;
  }
  members_.emplace_back(std::move(key), std::move(value));
  index_.emplace(members_.back().first, members_.size() - 1);
  return members_.back().second;
}

Value& Object::operator[](std::string_view key) {
  if (Value* existing = find(key)) {
    return *existing;
  }
  return set(std::string(key), Value());
}

// ---------------------------------------------------------------------------
// Value

Type Value::type() const noexcept {
  switch (data_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kInt;
    case 3: return Type::kDouble;
    case 4: return Type::kString;
    case 5: return Type::kArray;
    default: return Type::kObject;
  }
}

namespace {
const char* type_name(Type type) {
  switch (type) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kDouble: return "double";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(Type want, Type have) {
  throw DssocError(cat("JSON type mismatch: wanted ", type_name(want),
                       ", value is ", type_name(have)));
}
}  // namespace

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) {
    return *b;
  }
  type_error(Type::kBool, type());
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return *i;
  }
  if (const auto* d = std::get_if<double>(&data_)) {
    // Allow exact integral doubles (e.g. "4.0" in hand-written configs).
    if (*d == std::floor(*d) && std::abs(*d) < 9.0e18) {
      return static_cast<std::int64_t>(*d);
    }
  }
  type_error(Type::kInt, type());
}

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&data_)) {
    return *d;
  }
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  type_error(Type::kDouble, type());
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) {
    return *s;
  }
  type_error(Type::kString, type());
}

const Array& Value::as_array() const {
  if (const auto* a = std::get_if<Array>(&data_)) {
    return *a;
  }
  type_error(Type::kArray, type());
}

Array& Value::as_array() {
  if (auto* a = std::get_if<Array>(&data_)) {
    return *a;
  }
  type_error(Type::kArray, type());
}

const Object& Value::as_object() const {
  if (const auto* o = std::get_if<Object>(&data_)) {
    return *o;
  }
  type_error(Type::kObject, type());
}

Object& Value::as_object() {
  if (auto* o = std::get_if<Object>(&data_)) {
    return *o;
  }
  type_error(Type::kObject, type());
}

const Value& Value::at(std::size_t index) const {
  const Array& array = as_array();
  if (index >= array.size()) {
    throw DssocError(cat("JSON array index ", index, " out of range (size ",
                         array.size(), ")"));
  }
  return array[index];
}

bool Value::get_or(std::string_view key, bool fallback) const {
  const Value* v = as_object().find(key);
  return v == nullptr ? fallback : v->as_bool();
}

std::int64_t Value::get_or(std::string_view key, std::int64_t fallback) const {
  const Value* v = as_object().find(key);
  return v == nullptr ? fallback : v->as_int();
}

double Value::get_or(std::string_view key, double fallback) const {
  const Value* v = as_object().find(key);
  return v == nullptr ? fallback : v->as_double();
}

std::string Value::get_or(std::string_view key,
                          const std::string& fallback) const {
  const Value* v = as_object().find(key);
  return v == nullptr ? fallback : v->as_string();
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) {
    // int/double cross-comparisons compare numerically.
    if (is_number() && other.is_number()) {
      return as_double() == other.as_double();
    }
    return false;
  }
  switch (type()) {
    case Type::kNull: return true;
    case Type::kBool: return as_bool() == other.as_bool();
    case Type::kInt: return as_int() == other.as_int();
    case Type::kDouble: return as_double() == other.as_double();
    case Type::kString: return as_string() == other.as_string();
    case Type::kArray: return as_array() == other.as_array();
    case Type::kObject: {
      const Object& a = as_object();
      const Object& b = other.as_object();
      if (a.size() != b.size()) {
        return false;
      }
      for (const auto& [key, value] : a) {
        const Value* bv = b.find(key);
        if (bv == nullptr || !(value == *bv)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Serialization

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {
void write_number(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; null is the conventional degradation.
    out += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", d);
  out += buffer;
}
}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline_indent = [&](int d) {
    if (pretty) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += as_bool() ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(as_int()); break;
    case Type::kDouble: write_number(out, as_double()); break;
    case Type::kString:
      out += '"';
      out += escape(as_string());
      out += '"';
      break;
    case Type::kArray: {
      const Array& array = as_array();
      if (array.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Value& element : array) {
        if (!first) {
          out += pretty ? "," : ",";
        }
        first = false;
        newline_indent(depth + 1);
        element.write(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const Object& object = as_object();
      if (object.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object) {
        if (!first) {
          out += ",";
        }
        first = false;
        newline_indent(depth + 1);
        out += '"';
        out += escape(key);
        out += pretty ? "\": " : "\":";
        value.write(out, indent, depth + 1);
      }
      newline_indent(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Value::dump_pretty(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_whitespace();
    Value value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing content after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, line_, column_);
  }

  bool eof() const noexcept { return pos_ >= text_.size(); }

  char peek() const {
    if (eof()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(cat("expected '", std::string(1, c), "'"));
    }
    advance();
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  Value parse_value() {
    if (eof()) {
      fail("unexpected end of input");
    }
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': parse_literal("true"); return Value(true);
      case 'f': parse_literal("false"); return Value(false);
      case 'n': parse_literal("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

  void parse_literal(std::string_view literal) {
    for (const char c : literal) {
      if (eof() || peek() != c) {
        fail(cat("invalid literal, expected \"", literal, "\""));
      }
      advance();
    }
  }

  Value parse_object() {
    expect('{');
    Object object;
    skip_whitespace();
    if (!eof() && peek() == '}') {
      advance();
      return Value(std::move(object));
    }
    while (true) {
      skip_whitespace();
      if (eof() || peek() != '"') {
        fail("expected string key in object");
      }
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      skip_whitespace();
      if (object.contains(key)) {
        fail(cat("duplicate object key \"", key, "\""));
      }
      object.set(std::move(key), parse_value());
      skip_whitespace();
      if (eof()) {
        fail("unterminated object");
      }
      const char c = advance();
      if (c == '}') {
        return Value(std::move(object));
      }
      if (c != ',') {
        fail("expected ',' or '}' in object");
      }
    }
  }

  Value parse_array() {
    expect('[');
    Array array;
    skip_whitespace();
    if (!eof() && peek() == ']') {
      advance();
      return Value(std::move(array));
    }
    while (true) {
      skip_whitespace();
      array.push_back(parse_value());
      skip_whitespace();
      if (eof()) {
        fail("unterminated array");
      }
      const char c = advance();
      if (c == ']') {
        return Value(std::move(array));
      }
      if (c != ',') {
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) {
        fail("unterminated string");
      }
      const char c = advance();
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) {
        fail("unterminated escape sequence");
      }
      const char esc = advance();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  std::string parse_unicode_escape() {
    const unsigned first = parse_hex4();
    unsigned codepoint = first;
    if (first >= 0xD800 && first <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (eof() || advance() != '\\' || eof() || advance() != 'u') {
        fail("high surrogate not followed by \\u escape");
      }
      const unsigned second = parse_hex4();
      if (second < 0xDC00 || second > 0xDFFF) {
        fail("invalid low surrogate");
      }
      codepoint = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
    } else if (first >= 0xDC00 && first <= 0xDFFF) {
      fail("unexpected low surrogate");
    }
    // Encode as UTF-8.
    std::string out;
    if (codepoint < 0x80) {
      out += static_cast<char>(codepoint);
    } else if (codepoint < 0x800) {
      out += static_cast<char>(0xC0 | (codepoint >> 6));
      out += static_cast<char>(0x80 | (codepoint & 0x3F));
    } else if (codepoint < 0x10000) {
      out += static_cast<char>(0xE0 | (codepoint >> 12));
      out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (codepoint & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (codepoint >> 18));
      out += static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (codepoint & 0x3F));
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) {
        fail("unterminated \\u escape");
      }
      const char c = advance();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    bool is_double = false;
    if (!eof() && peek() == '-') {
      advance();
    }
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid number");
    }
    const bool leading_zero = peek() == '0';
    advance();
    if (leading_zero && !eof() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("leading zeros are not allowed");
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      advance();
    }
    if (!eof() && text_[pos_] == '.') {
      is_double = true;
      advance();
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required after decimal point");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        advance();
      }
    }
    if (!eof() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      advance();
      if (!eof() && (peek() == '+' || peek() == '-')) {
        advance();
      }
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required in exponent");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        advance();
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Value(static_cast<std::int64_t>(parsed));
      }
      // Out-of-range integers degrade to double below.
    }
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("invalid number");
    }
    return Value(parsed);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace dssoc::json
