// Self-contained JSON DOM, parser and serializer.
//
// The paper's application descriptions (Listing 1) are JSON documents; the
// framework also exports run statistics as JSON. No third-party JSON library
// is assumed, so this module implements RFC 8259 parsing with precise
// line/column error reporting.
//
// Object member order is preserved (the DAG section of an application is an
// ordered mapping in spirit: iteration order should match the document).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace dssoc::json {

class Value;

/// Ordered string→Value mapping: preserves insertion order, O(log n) lookup
/// via a side index.
class Object {
 public:
  using Member = std::pair<std::string, Value>;

  Object() = default;
  Object(const Object& other);
  Object& operator=(const Object& other);
  Object(Object&&) noexcept = default;
  Object& operator=(Object&&) noexcept = default;
  ~Object() = default;

  bool contains(std::string_view key) const;
  /// Returns nullptr when the key is absent.
  const Value* find(std::string_view key) const;
  Value* find(std::string_view key);
  /// Throws DssocError when the key is absent.
  const Value& at(std::string_view key) const;
  Value& at(std::string_view key);
  /// Inserts or overwrites; insertion order is kept for new keys.
  Value& set(std::string key, Value value);
  /// operator[] inserts a null value for missing keys (like std::map).
  Value& operator[](std::string_view key);

  std::size_t size() const noexcept { return members_.size(); }
  bool empty() const noexcept { return members_.empty(); }

  auto begin() const { return members_.begin(); }
  auto end() const { return members_.end(); }
  auto begin() { return members_.begin(); }
  auto end() { return members_.end(); }

 private:
  void rebuild_index();
  std::vector<Member> members_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

using Array = std::vector<Value>;

enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

/// A JSON value. Integers that fit int64 are kept exact (variable byte
/// vectors in application descriptions must not round-trip through double).
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(unsigned i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : data_(i) {}
  Value(std::uint64_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const noexcept;

  bool is_null() const noexcept { return type() == Type::kNull; }
  bool is_bool() const noexcept { return type() == Type::kBool; }
  bool is_int() const noexcept { return type() == Type::kInt; }
  bool is_double() const noexcept { return type() == Type::kDouble; }
  bool is_number() const noexcept { return is_int() || is_double(); }
  bool is_string() const noexcept { return type() == Type::kString; }
  bool is_array() const noexcept { return type() == Type::kArray; }
  bool is_object() const noexcept { return type() == Type::kObject; }

  // Checked accessors: throw DssocError on type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Accepts both integer and floating values.
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member access; throws on non-objects or missing keys.
  const Value& at(std::string_view key) const { return as_object().at(key); }
  /// Array element access; throws on non-arrays, asserts bounds.
  const Value& at(std::size_t index) const;

  /// get_or helpers for optional members.
  bool get_or(std::string_view key, bool fallback) const;
  std::int64_t get_or(std::string_view key, std::int64_t fallback) const;
  double get_or(std::string_view key, double fallback) const;
  std::string get_or(std::string_view key, const std::string& fallback) const;

  bool operator==(const Value& other) const;

  /// Compact single-line serialization.
  std::string dump() const;
  /// Pretty-printed serialization with the given indent width.
  std::string dump_pretty(int indent = 2) const;

 private:
  void write(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      data_;
};

/// Parses a complete JSON document. Trailing non-whitespace content is an
/// error. Throws ParseError with 1-based line/column on malformed input.
Value parse(std::string_view text);

/// Escapes a string per RFC 8259 (without surrounding quotes).
std::string escape(std::string_view text);

}  // namespace dssoc::json
