#include "trace/report.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::trace {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  DSSOC_REQUIRE(cells.size() == headers_.size(),
                cat("table row has ", cells.size(), " cells, expected ",
                    headers_.size()));
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ") << pad_right(cells[c], widths[c]);
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
  return out.str();
}

std::string boxplot_cell(const FiveNumberSummary& summary, int precision) {
  return cat(format_double(summary.min, precision), "/",
             format_double(summary.q1, precision), "/",
             format_double(summary.median, precision), "/",
             format_double(summary.q3, precision), "/",
             format_double(summary.max, precision));
}

void write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(fs_path.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary);
  DSSOC_REQUIRE(out.good(), cat("cannot open \"", path, "\" for writing"));
  out << content;
  DSSOC_REQUIRE(out.good(), cat("write to \"", path, "\" failed"));
}

std::string utilization_summary(const core::EmulationStats& stats) {
  std::ostringstream out;
  for (const core::PERecord& pe : stats.pes) {
    out << pe.label << "="
        << format_double(stats.pe_utilization_percent(pe.pe_id), 1) << "% ";
  }
  return out.str();
}

}  // namespace dssoc::trace
