// Console/table reporting used by the benchmark harnesses to print the
// paper-style tables and figure series, plus file export helpers.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/emu_stats.hpp"

namespace dssoc::trace {

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Renders with column auto-sizing, a header rule and aligned cells.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "min/q1/median/q3/max" cell for box-plot figures.
std::string boxplot_cell(const FiveNumberSummary& summary, int precision);

/// Writes `content` to `path`, creating parent directories as needed.
/// Throws DssocError on I/O failure.
void write_file(const std::string& path, const std::string& content);

/// Per-PE utilization summary of one emulation (Fig. 9b row).
std::string utilization_summary(const core::EmulationStats& stats);

}  // namespace dssoc::trace
