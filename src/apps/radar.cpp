#include "apps/radar.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "dsp/fft.hpp"
#include "dsp/matrix.hpp"
#include "dsp/radar.hpp"
#include "dsp/vec.hpp"
#include "platform/cost_model.hpp"

namespace dssoc::apps {

using core::AppBuilder;
using core::AppModel;
using core::KernelContext;
using core::PlatformOption;
using dsp::cfloat;

namespace {

/// Trailing integer of a node name like "P_FFT_17" -> 17.
std::size_t node_row(const KernelContext& ctx) {
  const std::string& name = ctx.node().name;
  const std::size_t pos = name.find_last_of('_');
  DSSOC_REQUIRE(pos != std::string::npos && pos + 1 < name.size(),
                cat("node \"", name, "\" has no row suffix"));
  return static_cast<std::size_t>(std::stoul(name.substr(pos + 1)));
}

PlatformOption cpu(const char* runfunc) { return {"cpu", runfunc, ""}; }
PlatformOption big(const char* runfunc) { return {"big", runfunc, ""}; }
PlatformOption little(const char* runfunc) { return {"little", runfunc, ""}; }
PlatformOption accel(const char* runfunc) {
  return {"fft", runfunc, "fft_accel.so"};
}

std::vector<PlatformOption> cpu_all(const char* runfunc) {
  return {cpu(runfunc), big(runfunc), little(runfunc)};
}

std::vector<PlatformOption> cpu_and_accel(const char* runfunc,
                                          const char* accel_runfunc) {
  auto options = cpu_all(runfunc);
  options.push_back(accel(accel_runfunc));
  return options;
}

void fft_in_place(std::span<cfloat> data, bool inverse,
                  core::AcceleratorPort* accel_port) {
  if (accel_port != nullptr) {
    accel_port->fft(data, inverse);
  } else if (inverse) {
    dsp::ifft(data);
  } else {
    dsp::fft(data);
  }
}

// --- range detection kernels -------------------------------------------------
// Argument layout is fixed by the DAG in make_range_detection().

void rd_lfm(KernelContext& ctx) {
  const auto n = ctx.scalar<std::uint32_t>(0);
  const float sample_rate = ctx.scalar<float>(1);
  const auto delay = ctx.scalar<std::uint32_t>(2);
  const float noise = ctx.scalar<float>(3);
  const auto lfm = ctx.buffer<cfloat>(4);
  const auto rx = ctx.buffer<cfloat>(5);
  const auto chirp = dsp::lfm_chirp(n, 0.2 * static_cast<double>(sample_rate),
                                    static_cast<double>(sample_rate));
  std::copy(chirp.begin(), chirp.end(), lfm.begin());
  const auto echo =
      dsp::synthesize_echo(chirp, delay, 0.8F, noise, ctx.rng());
  std::copy(echo.begin(), echo.end(), rx.begin());
}

void rd_fft(KernelContext& ctx) {
  const auto n = ctx.scalar<std::uint32_t>(0);
  const auto in = ctx.buffer<cfloat>(1);
  const auto out = ctx.buffer<cfloat>(2);
  std::copy_n(in.begin(), n, out.begin());
  fft_in_place(out.subspan(0, n), /*inverse=*/false, ctx.accelerator());
}

void rd_mul(KernelContext& ctx) {
  const auto n = ctx.scalar<std::uint32_t>(0);
  const auto x1 = ctx.buffer<cfloat>(1);
  const auto x2 = ctx.buffer<cfloat>(2);
  const auto out = ctx.buffer<cfloat>(3);
  // Multiply by the conjugate: Fig. 2's "Complex Conjugate" folded into the
  // vector multiplication, which is how the 6-task DAG of Table I is formed.
  dsp::multiply_conj(x1.subspan(0, n), x2.subspan(0, n), out.subspan(0, n));
}

void rd_ifft(KernelContext& ctx) {
  const auto n = ctx.scalar<std::uint32_t>(0);
  const auto in = ctx.buffer<cfloat>(1);
  const auto out = ctx.buffer<cfloat>(2);
  std::copy_n(in.begin(), n, out.begin());
  fft_in_place(out.subspan(0, n), /*inverse=*/true, ctx.accelerator());
}

void rd_max(KernelContext& ctx) {
  const auto n = ctx.scalar<std::uint32_t>(0);
  const float sample_rate = ctx.scalar<float>(1);
  const auto corr = ctx.buffer<cfloat>(2);
  const std::size_t index = dsp::max_magnitude_index(corr.subspan(0, n));
  ctx.scalar<std::uint32_t>(3) = static_cast<std::uint32_t>(index);
  ctx.scalar<float>(4) = std::sqrt(dsp::magnitude_squared(corr[index]));
  ctx.scalar<std::uint32_t>(5) = static_cast<std::uint32_t>(index);
  ctx.scalar<float>(6) = static_cast<float>(
      dsp::lag_to_range_m(index, static_cast<double>(sample_rate)));
}

// --- pulse Doppler kernels ----------------------------------------------------

void pd_ref_fft(KernelContext& ctx) {
  const auto pulses = ctx.scalar<std::uint32_t>(0);
  const auto samples = ctx.scalar<std::uint32_t>(1);
  const auto delay = ctx.scalar<std::uint32_t>(2);
  const auto dop_bin = ctx.scalar<std::uint32_t>(3);
  const float noise = ctx.scalar<float>(4);
  const auto ref = ctx.buffer<cfloat>(5);
  const auto rx = ctx.buffer<cfloat>(6);
  const auto ref_f = ctx.buffer<cfloat>(7);
  const std::size_t padded = 2 * samples;

  // Reference chirp, zero-padded to 2n for linear correlation.
  const auto chirp = dsp::lfm_chirp(samples, 2.0e5, 1.0e6);
  std::fill(ref.begin(), ref.end(), cfloat(0.0F, 0.0F));
  std::copy(chirp.begin(), chirp.end(), ref.begin());

  // Received pulse matrix: the echo appears at `delay` in every pulse with a
  // per-pulse Doppler phase rotation of 2*pi*dop_bin*p/m.
  for (std::size_t p = 0; p < pulses; ++p) {
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(dop_bin) *
                         static_cast<double>(p) / static_cast<double>(pulses);
    const cfloat rotation(static_cast<float>(std::cos(phase)),
                          static_cast<float>(std::sin(phase)));
    const auto row = rx.subspan(p * padded, padded);
    std::fill(row.begin(), row.end(), cfloat(0.0F, 0.0F));
    for (std::size_t i = 0; i < samples; ++i) {
      row[(i + delay) % padded] = 0.8F * chirp[i] * rotation;
    }
    if (noise > 0.0F) {
      for (cfloat& x : row) {
        x += cfloat(noise * static_cast<float>(ctx.rng().normal()),
                    noise * static_cast<float>(ctx.rng().normal()));
      }
    }
  }

  // FFT of the padded reference.
  std::copy_n(ref.begin(), padded, ref_f.begin());
  fft_in_place(ref_f.subspan(0, padded), false, ctx.accelerator());
}

void pd_conj(KernelContext& ctx) {
  const auto samples = ctx.scalar<std::uint32_t>(0);
  const auto ref_f = ctx.buffer<cfloat>(1);
  dsp::conjugate(ref_f.subspan(0, 2 * samples));
}

void pd_row_fft(KernelContext& ctx) {
  const auto samples = ctx.scalar<std::uint32_t>(0);
  const auto rx = ctx.buffer<cfloat>(1);
  const std::size_t padded = 2 * samples;
  fft_in_place(rx.subspan(node_row(ctx) * padded, padded), false,
               ctx.accelerator());
}

void pd_mul(KernelContext& ctx) {
  const auto samples = ctx.scalar<std::uint32_t>(0);
  const auto rx = ctx.buffer<cfloat>(1);
  const auto ref_f = ctx.buffer<cfloat>(2);
  const auto corr = ctx.buffer<cfloat>(3);
  const std::size_t padded = 2 * samples;
  const std::size_t row = node_row(ctx);
  // ref_f is already conjugated by the CONJ task.
  dsp::multiply(rx.subspan(row * padded, padded), ref_f.subspan(0, padded),
                corr.subspan(row * padded, padded));
}

void pd_row_ifft(KernelContext& ctx) {
  const auto samples = ctx.scalar<std::uint32_t>(0);
  const auto corr = ctx.buffer<cfloat>(1);
  const std::size_t padded = 2 * samples;
  fft_in_place(corr.subspan(node_row(ctx) * padded, padded), true,
               ctx.accelerator());
}

void pd_realign(KernelContext& ctx) {
  const auto pulses = ctx.scalar<std::uint32_t>(0);
  const auto samples = ctx.scalar<std::uint32_t>(1);
  const auto gates = ctx.scalar<std::uint32_t>(2);
  const auto corr = ctx.buffer<cfloat>(3);
  const auto gates_mat = ctx.buffer<cfloat>(4);
  const std::size_t padded = 2 * samples;
  // Corner turn: gates_mat[g][p] = corr[p][g] for the range window.
  for (std::size_t g = 0; g < gates; ++g) {
    for (std::size_t p = 0; p < pulses; ++p) {
      gates_mat[g * pulses + p] = corr[p * padded + g];
    }
  }
}

void pd_dop_fft(KernelContext& ctx) {
  const auto pulses = ctx.scalar<std::uint32_t>(0);
  const auto gates_mat = ctx.buffer<cfloat>(1);
  const auto dop = ctx.buffer<cfloat>(2);
  const std::size_t row = node_row(ctx);
  const auto src = gates_mat.subspan(row * pulses, pulses);
  const auto dst = dop.subspan(row * pulses, pulses);
  std::copy(src.begin(), src.end(), dst.begin());
  fft_in_place(dst, false, ctx.accelerator());
}

void pd_shift(KernelContext& ctx) {
  const auto pulses = ctx.scalar<std::uint32_t>(0);
  const auto dop = ctx.buffer<cfloat>(1);
  dsp::fftshift(dop.subspan(node_row(ctx) * pulses, pulses));
}

void pd_max(KernelContext& ctx) {
  const auto pulses = ctx.scalar<std::uint32_t>(0);
  const auto gates = ctx.scalar<std::uint32_t>(1);
  const float prf = ctx.scalar<float>(2);
  const float wavelength = ctx.scalar<float>(3);
  const auto dop = ctx.buffer<cfloat>(4);
  const std::size_t index = dsp::max_magnitude_index(
      dop.subspan(0, static_cast<std::size_t>(gates) * pulses));
  const std::size_t gate = index / pulses;
  const std::size_t bin = index % pulses;
  ctx.scalar<std::uint32_t>(5) = static_cast<std::uint32_t>(gate);
  ctx.scalar<std::uint32_t>(6) = static_cast<std::uint32_t>(bin);
  ctx.scalar<float>(7) = static_cast<float>(dsp::doppler_bin_to_velocity(
      static_cast<std::ptrdiff_t>(bin), pulses, static_cast<double>(prf),
      static_cast<double>(wavelength)));
}

}  // namespace

AppModel make_range_detection(const RangeDetectionParams& params) {
  const std::size_t n = params.n_samples;
  DSSOC_REQUIRE(dsp::is_power_of_two(n),
                "range detection needs a power-of-two sample count");
  const std::size_t bytes = n * sizeof(cfloat);
  const double fft_u = platform::fft_units(n);

  AppBuilder builder("range_detection", "range_detection.so");
  builder.scalar_u32("n_samples", static_cast<std::uint32_t>(n))
      .scalar_f32("sampling_rate", static_cast<float>(params.sample_rate_hz))
      .scalar_u32("true_delay", static_cast<std::uint32_t>(params.true_delay))
      .scalar_f32("noise", params.noise_stddev)
      .buffer("lfm_waveform", bytes)
      .buffer("rx", bytes)
      .buffer("X1", bytes)
      .buffer("X2", bytes)
      .buffer("corr_f", bytes)
      .buffer("corr", bytes)
      .scalar_u32("index", 0)
      .scalar_f32("max_corr", 0.0F)
      .scalar_u32("lag", 0)
      .scalar_f32("range_m", 0.0F);

  builder.node("LFM",
               {"n_samples", "sampling_rate", "true_delay", "noise",
                "lfm_waveform", "rx"},
               {}, cpu_all("range_detect_LFM"),
               {"lfm", static_cast<double>(n), 0});
  builder.node("FFT_0", {"n_samples", "rx", "X1"}, {"LFM"},
               cpu_and_accel("range_detect_FFT_0_CPU",
                             "range_detect_FFT_0_ACCEL"),
               {"fft", fft_u, static_cast<double>(n)});
  builder.node("FFT_1", {"n_samples", "lfm_waveform", "X2"}, {"LFM"},
               cpu_and_accel("range_detect_FFT_1_CPU",
                             "range_detect_FFT_1_ACCEL"),
               {"fft", fft_u, static_cast<double>(n)});
  builder.node("MUL", {"n_samples", "X1", "X2", "corr_f"}, {"FFT_0", "FFT_1"},
               cpu_all("range_detect_MUL"),
               {"vector_multiply", static_cast<double>(n), 0});
  builder.node("IFFT", {"n_samples", "corr_f", "corr"}, {"MUL"},
               cpu_and_accel("range_detect_IFFT_CPU",
                             "range_detect_IFFT_ACCEL"),
               {"ifft", fft_u, static_cast<double>(n)});
  builder.node("MAX",
               {"n_samples", "sampling_rate", "corr", "index", "max_corr",
                "lag", "range_m"},
               {"IFFT"}, cpu_all("range_detect_MAX"),
               {"max_index", static_cast<double>(n), 0});
  return builder.build();
}

AppModel make_pulse_doppler(const PulseDopplerParams& params) {
  const std::size_t m = params.pulses;
  const std::size_t n = params.samples;
  const std::size_t gates = params.range_gates;
  const std::size_t padded = params.padded();
  DSSOC_REQUIRE(dsp::is_power_of_two(n) && dsp::is_power_of_two(m),
                "pulse Doppler needs power-of-two pulse/sample counts");
  DSSOC_REQUIRE(gates <= padded, "range window exceeds correlation length");
  const double row_fft_u = platform::fft_units(padded);
  const double dop_fft_u = platform::fft_units(m);

  AppBuilder builder("pulse_doppler", "pulse_doppler.so");
  builder.scalar_u32("pulses", static_cast<std::uint32_t>(m))
      .scalar_u32("samples", static_cast<std::uint32_t>(n))
      .scalar_u32("gates", static_cast<std::uint32_t>(gates))
      .scalar_u32("true_delay", static_cast<std::uint32_t>(params.true_delay))
      .scalar_u32("true_doppler_bin",
                  static_cast<std::uint32_t>(params.true_doppler_bin))
      .scalar_f32("noise", params.noise_stddev)
      .scalar_f32("prf", static_cast<float>(params.prf_hz))
      .scalar_f32("wavelength", static_cast<float>(params.wavelength_m))
      .buffer("ref", padded * sizeof(cfloat))
      .buffer("ref_f", padded * sizeof(cfloat))
      .buffer("rx", m * padded * sizeof(cfloat))
      .buffer("corr", m * padded * sizeof(cfloat))
      .buffer("gates_mat", gates * m * sizeof(cfloat))
      .buffer("dop", gates * m * sizeof(cfloat))
      .scalar_u32("max_gate", 0)
      .scalar_u32("max_bin", 0)
      .scalar_f32("velocity", 0.0F);

  builder.node("REF_FFT",
               {"pulses", "samples", "true_delay", "true_doppler_bin",
                "noise", "ref", "rx", "ref_f"},
               {},
               cpu_and_accel("pd_ref_fft", "pd_ref_fft_accel"),
               {"fft", row_fft_u, static_cast<double>(padded)});
  builder.node("CONJ", {"samples", "ref_f"}, {"REF_FFT"}, cpu_all("pd_conj"),
               {"conjugate", static_cast<double>(padded), 0});

  std::vector<std::string> ifft_names;
  ifft_names.reserve(m);
  for (std::size_t p = 0; p < m; ++p) {
    const std::string fft_name = cat("P_FFT_", p);
    const std::string mul_name = cat("P_MUL_", p);
    const std::string ifft_name = cat("P_IFFT_", p);
    builder.node(fft_name, {"samples", "rx"}, {"REF_FFT"},
                 cpu_and_accel("pd_row_fft", "pd_row_fft_accel"),
                 {"fft", row_fft_u, static_cast<double>(padded)});
    builder.node(mul_name, {"samples", "rx", "ref_f", "corr"},
                 {fft_name, "CONJ"}, cpu_all("pd_mul"),
                 {"vector_multiply", static_cast<double>(padded), 0});
    builder.node(ifft_name, {"samples", "corr"}, {mul_name},
                 cpu_and_accel("pd_row_ifft", "pd_row_ifft_accel"),
                 {"ifft", row_fft_u, static_cast<double>(padded)});
    ifft_names.push_back(ifft_name);
  }

  builder.node("REALIGN",
               {"pulses", "samples", "gates", "corr", "gates_mat"},
               ifft_names, cpu_all("pd_realign"),
               {"realign", static_cast<double>(gates * m), 0});

  std::vector<std::string> shift_names;
  shift_names.reserve(gates);
  for (std::size_t g = 0; g < gates; ++g) {
    const std::string dop_name = cat("D_FFT_", g);
    const std::string shift_name = cat("D_SHIFT_", g);
    builder.node(dop_name, {"pulses", "gates_mat", "dop"}, {"REALIGN"},
                 cpu_and_accel("pd_dop_fft", "pd_dop_fft_accel"),
                 {"fft", dop_fft_u, static_cast<double>(m)});
    builder.node(shift_name, {"pulses", "dop"}, {dop_name},
                 cpu_all("pd_shift"),
                 {"fft_shift", static_cast<double>(m), 0});
    shift_names.push_back(shift_name);
  }

  builder.node("MAX",
               {"pulses", "gates", "prf", "wavelength", "dop", "max_gate",
                "max_bin", "velocity"},
               shift_names, cpu_all("pd_max"),
               {"max_index", static_cast<double>(gates * m), 0});

  AppModel model = builder.build();
  DSSOC_ASSERT(model.nodes.size() == params.task_count());
  return model;
}

void register_radar_kernels(core::SharedObjectRegistry& registry) {
  core::SharedObject rd("range_detection.so");
  rd.add_symbol("range_detect_LFM", rd_lfm);
  rd.add_symbol("range_detect_FFT_0_CPU", rd_fft);
  rd.add_symbol("range_detect_FFT_1_CPU", rd_fft);
  rd.add_symbol("range_detect_MUL", rd_mul);
  rd.add_symbol("range_detect_IFFT_CPU", rd_ifft);
  rd.add_symbol("range_detect_MAX", rd_max);
  registry.register_object(std::move(rd));

  core::SharedObject pd("pulse_doppler.so");
  pd.add_symbol("pd_ref_fft", pd_ref_fft);
  pd.add_symbol("pd_conj", pd_conj);
  pd.add_symbol("pd_row_fft", pd_row_fft);
  pd.add_symbol("pd_mul", pd_mul);
  pd.add_symbol("pd_row_ifft", pd_row_ifft);
  pd.add_symbol("pd_realign", pd_realign);
  pd.add_symbol("pd_dop_fft", pd_dop_fft);
  pd.add_symbol("pd_shift", pd_shift);
  pd.add_symbol("pd_max", pd_max);
  registry.register_object(std::move(pd));

  if (!registry.has_object("fft_accel.so")) {
    registry.register_object(core::SharedObject("fft_accel.so"));
  }
  core::SharedObject& accel_so = registry.mutable_object("fft_accel.so");
  // The same kernel bodies serve as accelerator variants: KernelContext
  // exposes the device port, and fft_in_place() routes through it.
  accel_so.add_symbol("range_detect_FFT_0_ACCEL", rd_fft);
  accel_so.add_symbol("range_detect_FFT_1_ACCEL", rd_fft);
  accel_so.add_symbol("range_detect_IFFT_ACCEL", rd_ifft);
  accel_so.add_symbol("pd_ref_fft_accel", pd_ref_fft);
  accel_so.add_symbol("pd_row_fft_accel", pd_row_fft);
  accel_so.add_symbol("pd_row_ifft_accel", pd_row_ifft);
  accel_so.add_symbol("pd_dop_fft_accel", pd_dop_fft);
}

}  // namespace dssoc::apps
