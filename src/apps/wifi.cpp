#include "apps/wifi.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "dsp/channel.hpp"
#include "dsp/convcode.hpp"
#include "dsp/crc.hpp"
#include "dsp/fft.hpp"
#include "dsp/interleaver.hpp"
#include "dsp/pilots.hpp"
#include "dsp/qpsk.hpp"
#include "dsp/scrambler.hpp"
#include "platform/cost_model.hpp"

namespace dssoc::apps {

using core::AppBuilder;
using core::AppModel;
using core::CostAnnotation;
using core::KernelContext;
using core::PlatformOption;
using dsp::cfloat;

WifiParams default_wifi_params() { return WifiParams{}; }

std::size_t WifiParams::ofdm_symbols() const {
  const std::size_t capacity = dsp::ofdm_data_capacity();
  return (qpsk_symbols() + capacity - 1) / capacity;
}

std::vector<std::uint8_t> reference_payload_bits(std::size_t count) {
  // Fixed PRBS-7-style pattern: deterministic, balanced, aperiodic enough to
  // exercise the scrambler/coder.
  std::vector<std::uint8_t> bits(count);
  std::uint8_t state = 0x2A;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t fb =
        static_cast<std::uint8_t>(((state >> 6) ^ (state >> 5)) & 1U);
    state = static_cast<std::uint8_t>(((state << 1) | fb) & 0x7F);
    bits[i] = fb;
  }
  return bits;
}

namespace {

/// TX chain stages shared by the TX kernels and the RX frame synthesizer.
std::vector<std::uint8_t> tx_coded_bits(const std::vector<std::uint8_t>& bits) {
  const auto scrambled = dsp::scramble(bits);
  return dsp::convolutional_encode(scrambled);
}

std::vector<cfloat> tx_freq_symbols(const WifiParams& params,
                                    const std::vector<std::uint8_t>& coded) {
  const auto interleaved =
      dsp::interleave(coded, params.interleaver_rows, params.interleaver_cols);
  const auto symbols = dsp::qpsk_modulate(interleaved);
  const std::size_t capacity = dsp::ofdm_data_capacity();
  std::vector<cfloat> ofdm;
  ofdm.reserve(params.ofdm_symbols() * dsp::kOfdmSubcarriers);
  for (std::size_t offset = 0; offset < symbols.size(); offset += capacity) {
    const std::size_t chunk = std::min(capacity, symbols.size() - offset);
    const auto symbol = dsp::insert_pilots(
        std::span<const cfloat>(symbols.data() + offset, chunk));
    ofdm.insert(ofdm.end(), symbol.begin(), symbol.end());
  }
  return ofdm;
}

}  // namespace

std::vector<cfloat> wifi_modulate(const WifiParams& params,
                                  const std::vector<std::uint8_t>& bits) {
  DSSOC_REQUIRE(bits.size() == params.payload_bits,
                "payload size does not match frame parameters");
  auto ofdm = tx_freq_symbols(params, tx_coded_bits(bits));
  const dsp::FftPlan plan(dsp::kOfdmSubcarriers);
  for (std::size_t s = 0; s < ofdm.size(); s += dsp::kOfdmSubcarriers) {
    plan.inverse(std::span<cfloat>(ofdm.data() + s, dsp::kOfdmSubcarriers));
  }
  return ofdm;
}

// ---------------------------------------------------------------------------
// Kernels. Bits are stored one per byte in the application heap blocks.

namespace {

const WifiParams kParams = default_wifi_params();

std::vector<std::uint8_t> read_bits(KernelContext& ctx, std::size_t arg,
                                    std::size_t count) {
  const auto view = ctx.buffer<std::uint8_t>(arg);
  DSSOC_REQUIRE(view.size() >= count, "bit buffer smaller than frame needs");
  return {view.begin(), view.begin() + static_cast<std::ptrdiff_t>(count)};
}

void write_bits(KernelContext& ctx, std::size_t arg,
                const std::vector<std::uint8_t>& bits) {
  const auto view = ctx.buffer<std::uint8_t>(arg);
  DSSOC_REQUIRE(view.size() >= bits.size(),
                "bit buffer smaller than produced data");
  std::copy(bits.begin(), bits.end(), view.begin());
}

// --- TX ---------------------------------------------------------------------

void tx_scrambler(KernelContext& ctx) {
  const auto n = ctx.scalar<std::uint32_t>(0);
  write_bits(ctx, 2, dsp::scramble(read_bits(ctx, 1, n)));
}

void tx_encoder(KernelContext& ctx) {
  const auto n = ctx.scalar<std::uint32_t>(0);
  write_bits(ctx, 2, dsp::convolutional_encode(read_bits(ctx, 1, n)));
}

void tx_interleaver(KernelContext& ctx) {
  write_bits(ctx, 1,
             dsp::interleave(read_bits(ctx, 0, kParams.coded_bits()),
                             kParams.interleaver_rows,
                             kParams.interleaver_cols));
}

void tx_qpsk(KernelContext& ctx) {
  const auto bits = read_bits(ctx, 0, kParams.coded_bits());
  const auto symbols = dsp::qpsk_modulate(bits);
  const auto out = ctx.buffer<cfloat>(1);
  DSSOC_REQUIRE(out.size() >= symbols.size(), "symbol buffer too small");
  std::copy(symbols.begin(), symbols.end(), out.begin());
}

void tx_pilot_insert(KernelContext& ctx) {
  const auto symbols = ctx.buffer<cfloat>(0);
  const auto out = ctx.buffer<cfloat>(1);
  const std::size_t total = kParams.qpsk_symbols();
  const std::size_t capacity = dsp::ofdm_data_capacity();
  std::size_t written = 0;
  for (std::size_t offset = 0; offset < total; offset += capacity) {
    const std::size_t chunk = std::min(capacity, total - offset);
    const auto symbol = dsp::insert_pilots(
        std::span<const cfloat>(symbols.data() + offset, chunk));
    DSSOC_REQUIRE(out.size() >= written + symbol.size(),
                  "OFDM buffer too small");
    std::copy(symbol.begin(), symbol.end(), out.begin() + static_cast<std::ptrdiff_t>(written));
    written += symbol.size();
  }
}

void tx_ifft_cpu(KernelContext& ctx) {
  const auto in = ctx.buffer<cfloat>(0);
  const auto out = ctx.buffer<cfloat>(1);
  const std::size_t samples = kParams.payload_samples();
  DSSOC_REQUIRE(in.size() >= samples && out.size() >= samples,
                "OFDM buffers too small");
  std::copy_n(in.begin(), samples, out.begin());
  const dsp::FftPlan plan(dsp::kOfdmSubcarriers);
  for (std::size_t s = 0; s < samples; s += dsp::kOfdmSubcarriers) {
    plan.inverse(out.subspan(s, dsp::kOfdmSubcarriers));
  }
}

void tx_ifft_accel(KernelContext& ctx) {
  core::AcceleratorPort* accel = ctx.accelerator();
  DSSOC_REQUIRE(accel != nullptr, "accel kernel dispatched without a device");
  const auto in = ctx.buffer<cfloat>(0);
  const auto out = ctx.buffer<cfloat>(1);
  const std::size_t samples = kParams.payload_samples();
  std::copy_n(in.begin(), samples, out.begin());
  for (std::size_t s = 0; s < samples; s += dsp::kOfdmSubcarriers) {
    accel->fft(out.subspan(s, dsp::kOfdmSubcarriers), /*inverse=*/true);
  }
}

void tx_crc(KernelContext& ctx) {
  const auto n = ctx.scalar<std::uint32_t>(0);
  ctx.scalar<std::uint32_t>(2) = dsp::crc32_bits(read_bits(ctx, 1, n));
}

// --- RX ---------------------------------------------------------------------

void rx_match_filter(KernelContext& ctx) {
  const auto n = ctx.scalar<std::uint32_t>(0);
  const float noise = ctx.scalar<float>(1);
  auto& frame_len = ctx.scalar<std::uint32_t>(4);
  const auto frame_buf = ctx.buffer<cfloat>(3);
  if (frame_len == 0) {
    // Standalone mode: no antenna/file input, so synthesize the air frame
    // (TX chain + preamble + random arrival offset + AWGN) before filtering.
    const auto payload = wifi_modulate(kParams, read_bits(ctx, 2, n));
    const std::size_t pad = static_cast<std::size_t>(ctx.rng().next_below(24));
    auto frame = dsp::build_frame(payload, kParams.preamble_len, pad);
    dsp::awgn(frame, noise, ctx.rng());
    DSSOC_REQUIRE(frame_buf.size() >= frame.size(), "rx_frame buffer too small");
    std::copy(frame.begin(), frame.end(), frame_buf.begin());
    frame_len = static_cast<std::uint32_t>(frame.size());
  }
  const std::span<const cfloat> frame(frame_buf.data(), frame_len);
  ctx.scalar<std::uint32_t>(5) = static_cast<std::uint32_t>(
      dsp::matched_filter_locate(frame, kParams.preamble_len));
}

void rx_payload_extract(KernelContext& ctx) {
  const auto frame_buf = ctx.buffer<cfloat>(0);
  const auto frame_len = ctx.scalar<std::uint32_t>(1);
  const auto located = ctx.scalar<std::uint32_t>(2);
  const auto out = ctx.buffer<cfloat>(3);
  const auto payload = dsp::extract_payload(
      std::span<const cfloat>(frame_buf.data(), frame_len), located,
      kParams.preamble_len, kParams.payload_samples());
  std::copy(payload.begin(), payload.end(), out.begin());
}

void rx_fft_cpu(KernelContext& ctx) {
  const auto in = ctx.buffer<cfloat>(0);
  const auto out = ctx.buffer<cfloat>(1);
  const std::size_t samples = kParams.payload_samples();
  std::copy_n(in.begin(), samples, out.begin());
  const dsp::FftPlan plan(dsp::kOfdmSubcarriers);
  for (std::size_t s = 0; s < samples; s += dsp::kOfdmSubcarriers) {
    plan.forward(out.subspan(s, dsp::kOfdmSubcarriers));
  }
}

void rx_fft_accel(KernelContext& ctx) {
  core::AcceleratorPort* accel = ctx.accelerator();
  DSSOC_REQUIRE(accel != nullptr, "accel kernel dispatched without a device");
  const auto in = ctx.buffer<cfloat>(0);
  const auto out = ctx.buffer<cfloat>(1);
  const std::size_t samples = kParams.payload_samples();
  std::copy_n(in.begin(), samples, out.begin());
  for (std::size_t s = 0; s < samples; s += dsp::kOfdmSubcarriers) {
    accel->fft(out.subspan(s, dsp::kOfdmSubcarriers), /*inverse=*/false);
  }
}

void rx_pilot_remove(KernelContext& ctx) {
  const auto in = ctx.buffer<cfloat>(0);
  const auto out = ctx.buffer<cfloat>(1);
  const std::size_t total = kParams.qpsk_symbols();
  const std::size_t capacity = dsp::ofdm_data_capacity();
  std::size_t read = 0;
  std::size_t written = 0;
  while (written < total) {
    const std::size_t chunk = std::min(capacity, total - written);
    const auto data = dsp::remove_pilots(
        std::span<const cfloat>(in.data() + read, dsp::kOfdmSubcarriers),
        chunk);
    std::copy(data.begin(), data.end(),
              out.begin() + static_cast<std::ptrdiff_t>(written));
    read += dsp::kOfdmSubcarriers;
    written += chunk;
  }
}

void rx_qpsk_demod(KernelContext& ctx) {
  const auto in = ctx.buffer<cfloat>(0);
  const auto bits = dsp::qpsk_demodulate(
      std::span<const cfloat>(in.data(), kParams.qpsk_symbols()));
  write_bits(ctx, 1, bits);
}

void rx_deinterleave(KernelContext& ctx) {
  write_bits(ctx, 1,
             dsp::deinterleave(read_bits(ctx, 0, kParams.coded_bits()),
                               kParams.interleaver_rows,
                               kParams.interleaver_cols));
}

void rx_decoder(KernelContext& ctx) {
  write_bits(ctx, 1,
             dsp::viterbi_decode(read_bits(ctx, 0, kParams.coded_bits())));
}

void rx_descrambler(KernelContext& ctx) {
  const auto n = ctx.scalar<std::uint32_t>(0);
  write_bits(ctx, 2, dsp::descramble(read_bits(ctx, 1, n)));
}

void rx_crc_check(KernelContext& ctx) {
  const auto n = ctx.scalar<std::uint32_t>(0);
  const auto decoded = read_bits(ctx, 1, n);
  const auto expected = read_bits(ctx, 2, n);
  const bool ok = dsp::crc32_bits(decoded) == dsp::crc32_bits(expected) &&
                  decoded == expected;
  ctx.scalar<std::uint32_t>(3) = ok ? 1 : 0;
}

PlatformOption cpu(const char* runfunc) { return {"cpu", runfunc, ""}; }
PlatformOption big(const char* runfunc) { return {"big", runfunc, ""}; }
PlatformOption little(const char* runfunc) { return {"little", runfunc, ""}; }
PlatformOption accel(const char* runfunc) {
  return {"fft", runfunc, "fft_accel.so"};
}

/// Every CPU-capable node carries cpu + big + little options so the same
/// applications run on both the ZCU102 and the Odroid XU3 (the paper's
/// portability case study).
std::vector<PlatformOption> cpu_all(const char* runfunc) {
  return {cpu(runfunc), big(runfunc), little(runfunc)};
}

std::vector<PlatformOption> cpu_and_accel(const char* runfunc,
                                          const char* accel_runfunc) {
  auto options = cpu_all(runfunc);
  options.push_back(accel(accel_runfunc));
  return options;
}

}  // namespace

AppModel make_wifi_tx() {
  const WifiParams& p = kParams;
  const double n = static_cast<double>(p.payload_bits);
  const double coded = static_cast<double>(p.coded_bits());
  AppBuilder builder("wifi_tx", "wifi_tx.so");
  builder.scalar_u32("n_bits", static_cast<std::uint32_t>(p.payload_bits))
      .buffer_init("payload_bits", p.payload_bits,
                   reference_payload_bits(p.payload_bits))
      .buffer("scrambled", p.payload_bits)
      .buffer("coded", p.coded_bits())
      .buffer("interleaved", p.coded_bits())
      .buffer("symbols", p.qpsk_symbols() * sizeof(cfloat))
      .buffer("ofdm", p.payload_samples() * sizeof(cfloat))
      .buffer("tx_time", p.payload_samples() * sizeof(cfloat))
      .scalar_u32("tx_crc", 0);

  builder.node("SCRAMBLER", {"n_bits", "payload_bits", "scrambled"}, {},
               cpu_all("wifi_tx_scrambler"), {"scrambler", n, 0});
  builder.node("ENCODER", {"n_bits", "scrambled", "coded"}, {"SCRAMBLER"},
               cpu_all("wifi_tx_encoder"), {"conv_encoder", n, 0});
  builder.node("INTERLEAVER", {"coded", "interleaved"}, {"ENCODER"},
               cpu_all("wifi_tx_interleaver"), {"interleaver", coded, 0});
  builder.node("QPSK_MOD", {"interleaved", "symbols"}, {"INTERLEAVER"},
               cpu_all("wifi_tx_qpsk"), {"qpsk_mod", coded, 0});
  builder.node("PILOT_INSERT", {"symbols", "ofdm"}, {"QPSK_MOD"},
               cpu_all("wifi_tx_pilot_insert"),
               {"pilot_insert", static_cast<double>(p.payload_samples()), 0});
  builder.node(
      "IFFT", {"ofdm", "tx_time"}, {"PILOT_INSERT"},
      cpu_and_accel("wifi_tx_ifft_cpu", "wifi_tx_ifft_accel"),
      {"ifft",
       static_cast<double>(p.ofdm_symbols()) * platform::fft_units(64),
       static_cast<double>(p.payload_samples())});
  builder.node("CRC", {"n_bits", "payload_bits", "tx_crc"}, {"IFFT"},
               cpu_all("wifi_tx_crc"), {"crc", n, 0});
  return builder.build();
}

AppModel make_wifi_rx() {
  const WifiParams& p = kParams;
  const double n = static_cast<double>(p.payload_bits);
  const double coded = static_cast<double>(p.coded_bits());
  const std::size_t frame_capacity =
      32 + p.preamble_len + p.payload_samples();  // max pad + preamble + data
  AppBuilder builder("wifi_rx", "wifi_rx.so");
  builder.scalar_u32("n_bits", static_cast<std::uint32_t>(p.payload_bits))
      .scalar_f32("noise", 0.02F)
      .buffer_init("payload_bits", p.payload_bits,
                   reference_payload_bits(p.payload_bits))
      .buffer("rx_frame", frame_capacity * sizeof(cfloat))
      .scalar_u32("frame_len", 0)
      .scalar_u32("located", 0)
      .buffer("payload_time", p.payload_samples() * sizeof(cfloat))
      .buffer("ofdm_rx", p.payload_samples() * sizeof(cfloat))
      .buffer("symbols_rx", p.qpsk_symbols() * sizeof(cfloat))
      .buffer("demod_bits", p.coded_bits())
      .buffer("deint_bits", p.coded_bits())
      .buffer("decoded_bits", p.payload_bits)
      .buffer("descrambled", p.payload_bits)
      .scalar_u32("crc_ok", 0);

  builder.node(
      "MATCH_FILTER",
      {"n_bits", "noise", "payload_bits", "rx_frame", "frame_len", "located"},
      {}, cpu_all("wifi_rx_match_filter"),
      {"matched_filter",
       static_cast<double>((32 + p.payload_samples()) * p.preamble_len), 0});
  builder.node("PAYLOAD_EXTRACT",
               {"rx_frame", "frame_len", "located", "payload_time"},
               {"MATCH_FILTER"}, cpu_all("wifi_rx_payload_extract"),
               {"payload_extract", static_cast<double>(p.payload_samples()),
                0});
  builder.node(
      "FFT", {"payload_time", "ofdm_rx"}, {"PAYLOAD_EXTRACT"},
      cpu_and_accel("wifi_rx_fft_cpu", "wifi_rx_fft_accel"),
      {"fft", static_cast<double>(p.ofdm_symbols()) * platform::fft_units(64),
       static_cast<double>(p.payload_samples())});
  builder.node("PILOT_REMOVAL", {"ofdm_rx", "symbols_rx"}, {"FFT"},
               cpu_all("wifi_rx_pilot_remove"),
               {"pilot_remove", static_cast<double>(p.payload_samples()), 0});
  builder.node("QPSK_DEMOD", {"symbols_rx", "demod_bits"}, {"PILOT_REMOVAL"},
               cpu_all("wifi_rx_qpsk_demod"), {"qpsk_demod", coded, 0});
  builder.node("DEINTERLEAVER", {"demod_bits", "deint_bits"}, {"QPSK_DEMOD"},
               cpu_all("wifi_rx_deinterleave"), {"deinterleaver", coded, 0});
  builder.node("DECODER", {"deint_bits", "decoded_bits"}, {"DEINTERLEAVER"},
               cpu_all("wifi_rx_decoder"), {"viterbi_decode", n, 0});
  builder.node("DESCRAMBLER", {"n_bits", "decoded_bits", "descrambled"},
               {"DECODER"}, cpu_all("wifi_rx_descrambler"),
               {"descrambler", n, 0});
  builder.node("CRC_CHECK",
               {"n_bits", "descrambled", "payload_bits", "crc_ok"},
               {"DESCRAMBLER"}, cpu_all("wifi_rx_crc_check"), {"crc_check", n, 0});
  return builder.build();
}

void register_wifi_kernels(core::SharedObjectRegistry& registry) {
  core::SharedObject tx("wifi_tx.so");
  tx.add_symbol("wifi_tx_scrambler", tx_scrambler);
  tx.add_symbol("wifi_tx_encoder", tx_encoder);
  tx.add_symbol("wifi_tx_interleaver", tx_interleaver);
  tx.add_symbol("wifi_tx_qpsk", tx_qpsk);
  tx.add_symbol("wifi_tx_pilot_insert", tx_pilot_insert);
  tx.add_symbol("wifi_tx_ifft_cpu", tx_ifft_cpu);
  tx.add_symbol("wifi_tx_crc", tx_crc);
  registry.register_object(std::move(tx));

  core::SharedObject rx("wifi_rx.so");
  rx.add_symbol("wifi_rx_match_filter", rx_match_filter);
  rx.add_symbol("wifi_rx_payload_extract", rx_payload_extract);
  rx.add_symbol("wifi_rx_fft_cpu", rx_fft_cpu);
  rx.add_symbol("wifi_rx_pilot_remove", rx_pilot_remove);
  rx.add_symbol("wifi_rx_qpsk_demod", rx_qpsk_demod);
  rx.add_symbol("wifi_rx_deinterleave", rx_deinterleave);
  rx.add_symbol("wifi_rx_decoder", rx_decoder);
  rx.add_symbol("wifi_rx_descrambler", rx_descrambler);
  rx.add_symbol("wifi_rx_crc_check", rx_crc_check);
  registry.register_object(std::move(rx));

  // Accelerator variants live in the shared fft_accel.so, as in Listing 1.
  if (!registry.has_object("fft_accel.so")) {
    registry.register_object(core::SharedObject("fft_accel.so"));
  }
  core::SharedObject& accel_so = registry.mutable_object("fft_accel.so");
  accel_so.add_symbol("wifi_tx_ifft_accel", tx_ifft_accel);
  accel_so.add_symbol("wifi_rx_fft_accel", rx_fft_accel);
}

}  // namespace dssoc::apps
