#include "apps/registry.hpp"

namespace dssoc::apps {

void register_all_kernels(core::SharedObjectRegistry& registry) {
  register_wifi_kernels(registry);
  register_radar_kernels(registry);
}

core::ApplicationLibrary default_application_library() {
  core::ApplicationLibrary library;
  library.add(make_wifi_tx());
  library.add(make_wifi_rx());
  library.add(make_range_detection());
  library.add(make_pulse_doppler());
  return library;
}

}  // namespace dssoc::apps
