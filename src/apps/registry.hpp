// One-stop setup for the built-in signal-processing domain: the framework
// ships "integrated with the applications from the signal processing domain,
// such as Radar and WiFi" (§II-A).
#pragma once

#include "apps/radar.hpp"
#include "apps/wifi.hpp"
#include "core/emulation.hpp"

namespace dssoc::apps {

/// Registers every built-in kernel table (the four app .so's plus
/// fft_accel.so) into `registry`.
void register_all_kernels(core::SharedObjectRegistry& registry);

/// Parses/builds the four applications into a library:
/// wifi_tx, wifi_rx, range_detection, pulse_doppler.
core::ApplicationLibrary default_application_library();

}  // namespace dssoc::apps
