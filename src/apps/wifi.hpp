// WiFi transmitter (7 tasks) and receiver (9 tasks) applications — the
// Fig. 7 pipelines of the paper, built from real DSP kernels: additive
// scrambling, K=7 rate-1/2 convolutional coding, block interleaving, QPSK,
// OFDM pilots, 64-point (I)FFT, CRC-32, AWGN channel and a preamble matched
// filter. One frame carries 64 payload bits, as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "core/app_model.hpp"
#include "core/kernel_registry.hpp"
#include "dsp/vec.hpp"

namespace dssoc::apps {

/// Frame geometry shared by TX, RX and the channel helpers.
struct WifiParams {
  std::size_t payload_bits = 64;
  std::size_t preamble_len = 64;
  /// Coded length: 2 * (payload + 6 tail bits).
  std::size_t coded_bits() const { return 2 * (payload_bits + 6); }
  /// Interleaver geometry (rows * cols == coded_bits()).
  std::size_t interleaver_rows = 10;
  std::size_t interleaver_cols = 14;
  std::size_t qpsk_symbols() const { return coded_bits() / 2; }
  std::size_t ofdm_symbols() const;
  /// Time-domain payload samples (64 per OFDM symbol).
  std::size_t payload_samples() const { return ofdm_symbols() * 64; }
};

/// The default 64-bit-payload frame.
WifiParams default_wifi_params();

/// Deterministic payload bit pattern used by the standalone applications
/// (one byte per bit, values 0/1).
std::vector<std::uint8_t> reference_payload_bits(std::size_t count);

/// Runs the full TX chain over `payload_bits` and returns the time-domain
/// payload samples (used by TX kernels, the RX frame synthesizer and tests).
std::vector<dsp::cfloat> wifi_modulate(const WifiParams& params,
                                       const std::vector<std::uint8_t>& bits);

/// Application models (Fig. 7, 7 and 9 tasks respectively).
core::AppModel make_wifi_tx();
core::AppModel make_wifi_rx();

/// Registers wifi_tx.so / wifi_rx.so kernels plus their fft_accel.so
/// accelerator variants.
void register_wifi_kernels(core::SharedObjectRegistry& registry);

}  // namespace dssoc::apps
