// Radar applications: range detection (Fig. 2, 6 tasks) and pulse Doppler
// (Fig. 8, 770 tasks with the default geometry), built from real kernels —
// LFM chirp synthesis, FFT-based correlation, corner turn, Doppler FFTs.
#pragma once

#include <cstdint>

#include "core/app_model.hpp"
#include "core/kernel_registry.hpp"

namespace dssoc::apps {

/// Range-detection geometry (Listing 1: n_samples = 256).
struct RangeDetectionParams {
  std::size_t n_samples = 256;
  double sample_rate_hz = 1.0e6;
  double bandwidth_hz = 2.0e5;
  std::size_t true_delay = 37;  ///< planted echo delay (samples)
  float noise_stddev = 0.05F;
};

/// Pulse-Doppler geometry. The defaults give the paper's 770-task DAG:
///   4 + 3 * pulses + 2 * range_gates = 4 + 384 + 382 = 770.
struct PulseDopplerParams {
  std::size_t pulses = 128;        ///< m in Fig. 8
  std::size_t samples = 128;       ///< n samples per pulse
  std::size_t range_gates = 191;   ///< range window rows kept after realign
  double prf_hz = 2'000.0;
  double wavelength_m = 0.03;      ///< ~10 GHz radar
  std::size_t true_delay = 23;     ///< planted target delay (samples)
  std::size_t true_doppler_bin = 37;  ///< planted Doppler bin (pre-shift)
  float noise_stddev = 0.02F;

  /// Zero-padded row length used for the per-pulse correlation FFTs (2n).
  std::size_t padded() const { return 2 * samples; }
  /// Total task count of the generated DAG.
  std::size_t task_count() const { return 4 + 3 * pulses + 2 * range_gates; }
};

core::AppModel make_range_detection(
    const RangeDetectionParams& params = RangeDetectionParams{});
core::AppModel make_pulse_doppler(
    const PulseDopplerParams& params = PulseDopplerParams{});

/// Registers range_detection.so / pulse_doppler.so kernels and their
/// fft_accel.so accelerator variants.
void register_radar_kernels(core::SharedObjectRegistry& registry);

}  // namespace dssoc::apps
