#include "policy/register.hpp"

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/scheduler.hpp"
#include "policy/policy_scheduler.hpp"
#include "policy/socket_policy.hpp"
#include "policy/table_policy.hpp"
#include "policy/trace_policy.hpp"

namespace dssoc::policy {
namespace {

constexpr const char* kUsage =
    "policy:trace-record:<inner>:<path> | policy:trace-replay:<path> | "
    "policy:table:<path>[,fallback=NAME] | "
    "policy:socket:<path>[,fallback=NAME][,timeout_ms=N]";

/// Splits "<first>[,key=value]..." into the positional head and key=value
/// options.
struct SpecArgs {
  std::string head;
  std::string fallback;
  int timeout_ms = 100;
};

SpecArgs parse_args(const std::string& spec, const std::string& rest,
                    bool allow_timeout) {
  SpecArgs args;
  std::size_t pos = rest.find(',');
  args.head = rest.substr(0, pos);
  while (pos != std::string::npos) {
    const std::size_t begin = pos + 1;
    pos = rest.find(',', begin);
    const std::string option = rest.substr(
        begin, pos == std::string::npos ? std::string::npos : pos - begin);
    const std::size_t eq = option.find('=');
    const std::string key = option.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : option.substr(eq + 1);
    if (key == "fallback" && !value.empty()) {
      args.fallback = value;
    } else if (key == "timeout_ms" && allow_timeout) {
      try {
        args.timeout_ms = std::stoi(value);
      } catch (const std::exception&) {
        args.timeout_ms = 0;
      }
      if (args.timeout_ms <= 0) {
        throw ConfigError(cat("spec \"", spec,
                              "\": timeout_ms must be a positive integer"));
      }
    } else {
      throw ConfigError(cat("spec \"", spec, "\": unknown option \"", key,
                            "\" (usage: ", kUsage, ")"));
    }
  }
  if (args.head.empty()) {
    throw ConfigError(cat("spec \"", spec, "\" is missing its path (usage: ",
                          kUsage, ")"));
  }
  return args;
}

std::unique_ptr<core::Scheduler> create_policy(const std::string& spec) {
  // spec = "policy:<kind>:<rest>"
  const std::size_t kind_begin = spec.find(':') + 1;
  const std::size_t kind_end = spec.find(':', kind_begin);
  if (kind_begin == 0 || kind_end == std::string::npos ||
      kind_end + 1 >= spec.size()) {
    throw ConfigError(cat("malformed policy spec \"", spec, "\" (usage: ",
                          kUsage, ")"));
  }
  const std::string kind = spec.substr(kind_begin, kind_end - kind_begin);
  const std::string rest = spec.substr(kind_end + 1);

  if (kind == "trace-record") {
    const std::size_t split = rest.find(':');
    if (split == std::string::npos || split == 0 ||
        split + 1 >= rest.size()) {
      throw ConfigError(cat("spec \"", spec,
                            "\": expected policy:trace-record:<inner>:<path>"));
    }
    return std::make_unique<TraceRecordScheduler>(
        core::SchedulerRegistry::instance().create(rest.substr(0, split)),
        rest.substr(split + 1));
  }
  if (kind == "trace-replay") {
    Trace trace = Trace::load(rest);
    // Report the recorded scheduler's name so stats and digests compare
    // directly against the original run.
    std::string name = trace.scheduler_name;
    return std::make_unique<PolicyScheduler>(
        std::make_unique<TraceReplayPolicy>(std::move(trace)),
        std::move(name));
  }
  if (kind == "table") {
    const SpecArgs args = parse_args(spec, rest, /*allow_timeout=*/false);
    return std::make_unique<PolicyScheduler>(TablePolicy::from_file(args.head),
                                             spec, args.fallback);
  }
  if (kind == "socket") {
    SpecArgs args = parse_args(spec, rest, /*allow_timeout=*/true);
    if (args.fallback.empty()) {
      args.fallback = "FRFS";  // a dead agent must never wedge the sweep
    }
    return std::make_unique<PolicyScheduler>(
        std::make_unique<SocketPolicy>(args.head, args.timeout_ms), spec,
        args.fallback);
  }
  throw ConfigError(cat("unknown policy kind \"", kind, "\" in \"", spec,
                        "\" (usage: ", kUsage, ")"));
}

}  // namespace

void register_policies() {
  static const bool registered = [] {
    core::SchedulerRegistry::instance().register_prefix("policy",
                                                        create_policy);
    return true;
  }();
  (void)registered;
}

}  // namespace dssoc::policy
