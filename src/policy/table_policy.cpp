#include "policy/table_policy.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::policy {
namespace {

std::string read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw ConfigError(cat("cannot open policy table \"", path, "\""));
  }
  std::string text;
  char chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    text.append(chunk, got);
  }
  std::fclose(file);
  return text;
}

}  // namespace

std::unique_ptr<TablePolicy> TablePolicy::from_file(const std::string& path) {
  return std::make_unique<TablePolicy>(json::parse(read_file(path)));
}

TablePolicy::TablePolicy(const json::Value& table) { load_table(table); }

const std::string& TablePolicy::name() const {
  static const std::string n = "table";
  return n;
}

void TablePolicy::load_table(const json::Value& table) {
  if (!table.is_object()) {
    throw ConfigError("policy table must be a JSON object");
  }
  const std::int64_t version = table.get_or("version", std::int64_t{1});
  if (version != 1) {
    throw ConfigError(cat("policy table version ", version, " unsupported"));
  }

  std::vector<std::uint64_t> buckets;
  if (const json::Value* raw = table.as_object().find("backlog_buckets")) {
    for (const json::Value& bound : raw->as_array()) {
      const std::int64_t value = bound.as_int();
      if (value < 0 ||
          (!buckets.empty() &&
           static_cast<std::uint64_t>(value) <= buckets.back())) {
        throw ConfigError(
            "backlog_buckets must be non-negative and strictly ascending");
      }
      buckets.push_back(static_cast<std::uint64_t>(value));
    }
  }
  if (buckets.empty()) {
    buckets.push_back(0);
  }

  std::vector<Rule> rules;
  std::map<std::string, std::size_t, std::less<>> rule_index;
  for (const auto& [key, value] : table.at("rules").as_object()) {
    Rule rule;
    if (value.is_string()) {
      rule.types.assign(buckets.size(), value.as_string());
    } else if (value.is_array()) {
      const json::Array& types = value.as_array();
      if (types.size() != buckets.size()) {
        throw ConfigError(cat("rule \"", key, "\" lists ", types.size(),
                              " types for ", buckets.size(),
                              " backlog buckets"));
      }
      for (const json::Value& type : types) {
        rule.types.push_back(type.as_string());
      }
    } else {
      throw ConfigError(cat("rule \"", key,
                            "\" must be a PE type or an array of them"));
    }
    rule_index.emplace(key, rules.size());
    rules.push_back(std::move(rule));
  }

  table_json_ = table;
  buckets_ = std::move(buckets);
  rules_ = std::move(rules);
  rule_index_ = std::move(rule_index);
  resolved_.clear();
}

const TablePolicy::Rule* TablePolicy::lookup(const TaskFeatures& task) {
  if (resolved_.size() <= task.archetype) {
    resolved_.resize(task.archetype + 1);
  }
  Resolved& memo = resolved_[task.archetype];
  if (memo.app != task.app || memo.node != task.node) {
    memo.app.assign(task.app);
    memo.node.assign(task.node);
    memo.rule = -1;
    key_buf_.assign(task.app);
    key_buf_ += ':';
    key_buf_ += task.node;
    auto it = rule_index_.find(key_buf_);
    if (it == rule_index_.end()) {
      it = rule_index_.find(memo.node);
    }
    if (it != rule_index_.end()) {
      memo.rule = static_cast<std::int32_t>(it->second);
    }
  }
  return memo.rule >= 0 ? &rules_[static_cast<std::size_t>(memo.rule)]
                        : nullptr;
}

PolicyResult TablePolicy::decide(const Observation& observation,
                                 Action& action) {
  const std::size_t h_count = observation.handlers.size();
  std::size_t bucket = 0;
  for (std::size_t b = 1; b < buckets_.size(); ++b) {
    if (buckets_[b] <= observation.tasks.size()) {
      bucket = b;
    }
  }

  // Local availability/capacity view, advanced as this invocation assigns.
  avail_.clear();
  slots_.clear();
  for (const HandlerFeatures& handler : observation.handlers) {
    avail_.push_back(std::max(observation.now, handler.available_at));
    slots_.push_back(handler.free_slots);
  }

  for (std::size_t t = 0; t < observation.tasks.size(); ++t) {
    const TaskFeatures& task = observation.tasks[t];
    const Rule* rule = lookup(task);
    const std::string* preferred =
        rule != nullptr ? &rule->types[bucket] : nullptr;

    if (preferred != nullptr) {
      ++hits_;
      // MET semantics on the preferred type: earliest-available free PE, or
      // wait for one (skip every other type even if idle).
      std::size_t best = h_count;
      bool type_supported = false;
      for (std::size_t h = 0; h < h_count; ++h) {
        if (observation.handlers[h].pe_type != *preferred ||
            !observation.supported(t, h)) {
          continue;
        }
        type_supported = true;
        if (slots_[h] == 0) {
          continue;
        }
        if (best == h_count || avail_[h] < avail_[best]) {
          best = h;
        }
      }
      if (type_supported) {
        if (best != h_count) {
          action.assign(static_cast<std::uint32_t>(t),
                        static_cast<std::uint32_t>(best));
          avail_[best] =
              std::max(avail_[best], observation.now) + observation.estimate(t, best);
          --slots_[best];
        }
        continue;  // assigned, or waiting for the preferred type
      }
      // Rule targets a type this node cannot execute on: fall through.
    } else {
      ++misses_;
    }

    // Greedy earliest-finish over every supporting handler with capacity.
    std::size_t best = h_count;
    SimTime best_finish = std::numeric_limits<SimTime>::max();
    for (std::size_t h = 0; h < h_count; ++h) {
      if (slots_[h] == 0 || !observation.supported(t, h)) {
        continue;
      }
      const SimTime finish = avail_[h] + observation.estimate(t, h);
      if (finish < best_finish) {
        best_finish = finish;
        best = h;
      }
    }
    if (best != h_count) {
      action.assign(static_cast<std::uint32_t>(t),
                    static_cast<std::uint32_t>(best));
      avail_[best] = best_finish;
      --slots_[best];
    }
  }
  return {};
}

void TablePolicy::save_state(StateWriter& out) const {
  out.str(table_json_.dump());
  out.u64(hits_);
  out.u64(misses_);
}

void TablePolicy::load_state(StateReader& in) {
  load_table(json::parse(in.str()));
  hits_ = in.u64();
  misses_ = in.u64();
}

}  // namespace dssoc::policy
