// PolicyScheduler: the adapter that makes any policy::Policy a
// registry-creatable core::Scheduler.
//
// Per invocation it (1) builds the Observation from the engine's
// SchedulerContext — zero-allocation once warm, with estimator accounting
// identical to the built-in cost-aware schedulers' —, (2) calls
// Policy::decide(), (3) forwards the reported logical-estimate and
// external-latency charges into the engine's overhead path, and (4) applies
// the Action (or runs the configured fallback scheduler when the policy
// reported itself unavailable). Assigned tasks are removed from the ready
// list preserving order, like every built-in policy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/scheduler.hpp"
#include "policy/policy.hpp"

namespace dssoc::policy {

/// Builds Observations into member scratch. One builder serves one engine's
/// scheduler from one thread; buffers warm up on the first invocation and
/// are reused afterwards (the per-model depth table and per-archetype
/// estimate memo allocate once per archetype, not per invocation).
class ObservationBuilder {
 public:
  /// Fills `out` from the scheduler inputs. kFull makes one real estimate
  /// call per (archetype, supporting handler) pair, replays the memo for
  /// further instances of the same archetype (reported via
  /// note_logical_estimates), and one available_at call per handler —
  /// mirroring MET/EFT so the modeled overhead charge prices the same
  /// algorithmic work.
  void build(const core::ReadyList& ready,
             const std::vector<core::ResourceHandler*>& handlers,
             const core::SchedulerContext& ctx, ObservationLevel level,
             Observation& out);

 private:
  /// Longest head-to-node chain per node index; computed once per model.
  const std::vector<std::uint32_t>& depths(const core::AppModel& model);

  struct ArchMemo {
    std::uint64_t epoch = 0;
    std::vector<SimTime> estimates;  ///< per handler; -1 = unsupported
    std::size_t pairs = 0;           ///< supported-pair count
  };

  std::vector<TaskFeatures> tasks_;
  std::vector<HandlerFeatures> handlers_;
  std::vector<SimTime> estimates_;           ///< flat [task][handler]
  std::vector<std::uint32_t> handler_slot_;  ///< handler index -> type slot
  std::uint32_t type_slots_ = 0;
  std::unordered_map<std::string_view, std::uint32_t> slot_of_type_;
  std::unordered_map<const core::DagNode*, ArchMemo> memo_;
  std::uint64_t epoch_ = 0;
  std::unordered_map<const core::AppModel*, std::vector<std::uint32_t>>
      depths_;
};

/// The Policy -> core::Scheduler adapter. `name` is what the scheduler
/// reports to the engine (snapshot sections and EmulationStats validate and
/// record it); a replaying policy passes the recorded scheduler's name so
/// digests stay comparable with the original run. `fallback` names a
/// registry policy run whenever decide() reports unavailable ("" = none:
/// unavailability leaves the ready list untouched).
class PolicyScheduler final : public core::Scheduler {
 public:
  PolicyScheduler(std::unique_ptr<Policy> policy, std::string name,
                  const std::string& fallback = "");

  const std::string& name() const override { return name_; }
  void schedule(core::ReadyList& ready,
                std::vector<core::ResourceHandler*>& handlers,
                core::SchedulerContext& ctx) override;
  void save_state(StateWriter& out) const override;
  void load_state(StateReader& in) override;
  bool time_invariant() const override;

  Policy& policy() { return *policy_; }

 private:
  std::unique_ptr<Policy> policy_;
  std::string name_;
  std::unique_ptr<core::Scheduler> fallback_;
  ObservationBuilder builder_;
  Observation observation_;
  Action action_;
  std::vector<char> assigned_;  ///< per ready index, applied this round
};

}  // namespace dssoc::policy
