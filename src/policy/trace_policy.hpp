// Decision traces: record any scheduler's per-invocation decisions to a
// file, replay them bit-identically later.
//
// TraceRecordScheduler wraps an inner core::Scheduler; each schedule() call
// appends one frame capturing the invocation inputs it validates on replay
// (clock, ready count), the estimator work the inner policy performed, and
// the decisions it made (task index within the pre-call ready list, handler
// index, platform-option index). TraceReplayPolicy is a Policy that plays
// the frames back through PolicyScheduler: it builds only a kShallow
// observation (zero estimator calls) and re-charges the recorded estimator
// count via PolicyResult::logical_estimates, so a kModeled replay run is
// charged identically to the recorded run — EmulationStats digests match.
//
// Fidelity notes: recording is supported under the virtual-time engine
// (decision capture reads handler queues between events; the real-time
// engine's handler threads race such reads). Replay of a policy that draws
// from SchedulerContext::rng (RANDOM) reproduces the decisions but not the
// engine's subsequent rng stream; the deterministic library (FRFS, MET,
// EFT) replays digest-identically.
//
// File format: repeated [u32 'DSTF'][u64 length][state stream] records,
// each an independent CRC-checked state_io stream of kind 'PTRC' (the
// exp/wire framing idiom; implemented here because exp links against this
// module). The first record is a header frame naming the recorded
// scheduler; every subsequent record is one scheduling invocation.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "policy/policy.hpp"

namespace dssoc::policy {

inline constexpr std::uint32_t kTraceFileMagic = state_tag('D', 'S', 'T', 'F');
inline constexpr std::uint32_t kTraceFrameKind = state_tag('P', 'T', 'R', 'C');
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// One recorded decision: indices into the invocation's pre-call ready list
/// and the engine handler list, plus the chosen node platform option.
struct TraceDecision {
  std::uint32_t task = 0;
  std::uint32_t handler = 0;
  std::int32_t option = -1;
};

/// One recorded scheduler invocation.
struct TraceFrame {
  SimTime now = 0;
  std::uint64_t ready_count = 0;
  /// Estimator calls the inner scheduler made (estimate + available_at +
  /// logical estimates), re-charged on replay.
  std::uint64_t estimator_calls = 0;
  std::vector<TraceDecision> decisions;
};

/// A parsed trace: header + every frame, loaded eagerly.
struct Trace {
  std::string scheduler_name;
  std::vector<TraceFrame> frames;

  static Trace load(const std::string& path);
};

/// Wraps an inner scheduler and appends one trace frame per invocation to
/// `path`. Reports the inner scheduler's name, so the recording run's stats
/// and digest are identical to an unrecorded run.
class TraceRecordScheduler final : public core::Scheduler {
 public:
  TraceRecordScheduler(std::unique_ptr<core::Scheduler> inner,
                       std::string path);
  ~TraceRecordScheduler() override;

  const std::string& name() const override { return inner_->name(); }
  void schedule(core::ReadyList& ready,
                std::vector<core::ResourceHandler*>& handlers,
                core::SchedulerContext& ctx) override;
  void save_state(StateWriter& out) const override {
    inner_->save_state(out);
  }
  void load_state(StateReader& in) override { inner_->load_state(in); }
  bool time_invariant() const override { return inner_->time_invariant(); }

 private:
  /// Estimator proxy that forwards to the engine's estimator while counting
  /// the calls, so the frame records the inner policy's charged work.
  class CountingEstimator final : public core::ExecutionEstimator {
   public:
    const core::ExecutionEstimator* target = nullptr;
    mutable std::uint64_t calls = 0;

    SimTime estimate(const core::TaskInstance& task,
                     const core::PlatformOption& option,
                     const core::ResourceHandler& handler) const override {
      ++calls;
      return target->estimate(task, option, handler);
    }
    SimTime available_at(const core::ResourceHandler& handler) const override {
      ++calls;
      return target->available_at(handler);
    }
    void note_logical_estimates(std::size_t count) const override {
      calls += count;
      target->note_logical_estimates(count);
    }
    void note_external_latency_ns(std::uint64_t host_ns) const override {
      target->note_external_latency_ns(host_ns);
    }
  };

  void write_frame(const std::vector<std::uint8_t>& payload);

  std::unique_ptr<core::Scheduler> inner_;
  std::string path_;
  std::FILE* file_ = nullptr;
  CountingEstimator counting_;
  std::vector<core::TaskInstance*> pre_ready_;
  std::vector<std::size_t> pre_load_;
  std::vector<core::Assignment> queue_scratch_;
};

/// Plays a recorded trace back as a Policy. Construct through
/// `policy:trace-replay:<path>` (see register.hpp) or directly; adapt with
/// a PolicyScheduler named after Trace::scheduler_name for digest-comparable
/// stats. Throws StateError on divergence (clock or ready-count mismatch)
/// and on exhaustion — a replayed trace must cover the whole emulation.
class TraceReplayPolicy final : public Policy {
 public:
  explicit TraceReplayPolicy(Trace trace);

  const std::string& name() const override { return name_; }
  ObservationLevel observation_level() const override {
    return ObservationLevel::kShallow;
  }
  PolicyResult decide(const Observation& observation,
                      Action& action) override;
  /// Round-trips the replay cursor, so a mid-replay snapshot restores to
  /// the exact frame.
  void save_state(StateWriter& out) const override;
  void load_state(StateReader& in) override;

  const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
  std::string name_;
  std::size_t cursor_ = 0;
};

}  // namespace dssoc::policy
