// SocketPolicy: scheduling decisions from an external agent process over a
// Unix-domain socket — the bridge an out-of-process learner (a Python
// training loop, a deployed model server) plugs into.
//
// Protocol, synchronous request/response per scheduling invocation:
//
//   frame   := [u32 magic 'DSPF'][u64 payload length][payload]
//   payload := one CRC-checked state_io stream (exp/wire framing idiom)
//     kind 'POBS' (policy -> agent): the full Observation — clock, type-slot
//       count, per-task features, per-handler features, the flat
//       task x handler estimate matrix (-1 = unsupported pair);
//     kind 'PACT' (agent -> policy): u32 count, then count x
//       (u32 task, u32 handler, i32 option) assignments, applied with the
//       Action's lenient semantics (stale picks skip, tasks stay ready).
//
// Failure model: connect/send/receive share one deadline per decision
// (`timeout_ms`). The first failure — no socket, refused, timed out, short
// frame — marks the agent dead: that decision reports unavailable with the
// measured wait charged as external latency (the engine prices the timeout
// into emulated scheduling overhead), and every later decision reports
// unavailable immediately. PolicyScheduler then runs the configured
// fallback policy, so the sweep completes on the baseline scheduler.
//
// Wall-clock waits make decisions time-variant: time_invariant() is false,
// which disables the virtual engine's busy-wait fast-forward for these runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "policy/policy.hpp"

namespace dssoc::policy {

inline constexpr std::uint32_t kSocketFrameMagic =
    state_tag('D', 'S', 'P', 'F');
inline constexpr std::uint32_t kSocketObsKind = state_tag('P', 'O', 'B', 'S');
inline constexpr std::uint32_t kSocketActKind = state_tag('P', 'A', 'C', 'T');

// --- wire codec (shared with test/reference agents) -------------------------

/// Observation as decoded by an agent (owning copies of the string views).
struct WireTask {
  std::uint32_t archetype = 0;
  std::uint32_t node_index = 0;
  std::uint32_t depth = 0;
  std::string app;
  std::string node;
  SimTime waiting_ns = 0;
};

struct WireHandler {
  std::uint32_t pe_id = 0;
  std::uint32_t type_slot = 0;
  std::string pe_type;
  std::uint32_t queue_depth = 0;
  std::uint32_t free_slots = 0;
  SimTime available_at = 0;
  double speed_factor = 1.0;
};

struct WireObservation {
  SimTime now = 0;
  std::uint32_t type_slots = 0;
  std::vector<WireTask> tasks;
  std::vector<WireHandler> handlers;
  std::vector<SimTime> estimates;  ///< flat [task][handler]; -1 unsupported
};

std::vector<std::uint8_t> encode_observation(const Observation& observation);
WireObservation decode_observation(const std::vector<std::uint8_t>& payload);
std::vector<std::uint8_t> encode_action(
    const std::vector<ActionItem>& items);
std::vector<ActionItem> decode_action(
    const std::vector<std::uint8_t>& payload);

/// Blocking frame I/O over a connected socket fd (agent side; the policy
/// side uses deadline-bounded equivalents internally). Return false on EOF.
bool read_socket_frame(int fd, std::vector<std::uint8_t>& payload);
bool write_socket_frame(int fd, const std::vector<std::uint8_t>& payload);

// --- the policy --------------------------------------------------------------

class SocketPolicy final : public Policy {
 public:
  /// `path` is the agent's Unix-socket path; `timeout_ms` bounds each
  /// decision's connect+round-trip wall time.
  explicit SocketPolicy(std::string path, int timeout_ms = 100);
  ~SocketPolicy() override;

  const std::string& name() const override;
  PolicyResult decide(const Observation& observation,
                      Action& action) override;
  bool time_invariant() const override { return false; }

  bool dead() const { return dead_; }

 private:
  bool ensure_connected(SimTime deadline_ns);
  bool send_payload(const std::vector<std::uint8_t>& payload,
                    SimTime deadline_ns);
  bool receive_payload(std::vector<std::uint8_t>& payload,
                       SimTime deadline_ns);
  void disconnect();

  std::string path_;
  int timeout_ms_;
  int fd_ = -1;
  bool dead_ = false;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace dssoc::policy
