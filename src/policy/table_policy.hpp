// TablePolicy: a learned lookup-table policy over quantized observations.
//
// The table maps (DAG node, backlog bucket) -> preferred PE type — the shape
// a table-driven learner (tabular Q over quantized state, or an offline fit
// of a better scheduler's choices) exports. The observation is quantized to
// the ready-list backlog: `backlog_buckets` lists ascending lower bounds and
// the invocation's bucket is the last bound <= ready count, so a rule can
// e.g. prefer an accelerator when lightly loaded but spread to CPUs under
// backlog.
//
// JSON schema (see EXPERIMENTS.md):
//   {
//     "version": 1,
//     "backlog_buckets": [0, 4, 8],            // optional; default [0]
//     "rules": {
//       "radar_correlator:FFT_0": "fft",       // "app:node" or bare "node"
//       "ZIP_0": ["cpu", "cpu", "little"]      // per-bucket array form
//     }
//   }
//
// Per decision, each ready task with a matching rule goes to the
// preferred-type handler with free capacity that is available earliest; if
// every preferred-type PE is busy the task waits (MET semantics). Tasks
// without a rule — and rule targets the node cannot execute on — fall back
// to greedy earliest-finish over all supporting handlers (EFT semantics).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "policy/policy.hpp"

namespace dssoc::policy {

class TablePolicy final : public Policy {
 public:
  /// Loads the table from a JSON file. Throws ConfigError on schema errors.
  static std::unique_ptr<TablePolicy> from_file(const std::string& path);
  /// Builds from an in-memory JSON document (tests, programmatic export).
  explicit TablePolicy(const json::Value& table);

  const std::string& name() const override;
  PolicyResult decide(const Observation& observation,
                      Action& action) override;
  /// Round-trips the table itself plus the hit/miss counters, so a restored
  /// emulation continues with the identical policy even if the source file
  /// changed on disk.
  void save_state(StateWriter& out) const override;
  void load_state(StateReader& in) override;

  std::uint64_t rule_hits() const { return hits_; }
  std::uint64_t rule_misses() const { return misses_; }

 private:
  struct Rule {
    std::vector<std::string> types;  ///< preferred PE type per bucket
  };

  /// Per-archetype memo of the rule lookup; validated against the task's
  /// app/node names (archetype ids are dense per emulation, so a fresh
  /// emulation reusing ids revalidates instead of misrouting).
  struct Resolved {
    std::string app;
    std::string node;
    std::int32_t rule = -1;  ///< index into rules_; -1 = no rule
  };

  void load_table(const json::Value& table);
  const Rule* lookup(const TaskFeatures& task);

  json::Value table_json_;
  std::vector<std::uint64_t> buckets_;  ///< ascending backlog lower bounds
  std::vector<Rule> rules_;
  std::map<std::string, std::size_t, std::less<>> rule_index_;
  std::vector<Resolved> resolved_;  ///< indexed by archetype id
  std::string key_buf_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<SimTime> avail_;
  std::vector<std::uint32_t> slots_;
};

}  // namespace dssoc::policy
