// The pluggable policy bridge: a layered observation/action interface over
// the core scheduling API.
//
// core::Scheduler hands a policy raw engine objects (task instances,
// resource handlers, an estimator) and expects it to mutate them correctly —
// the right interface for the built-in library, a hostile one for learned
// schedulers, external agents and recorded traces. This module narrows the
// surface to the classic RL-style contract (the ns3-gym shape):
//
//   Observation  — POD feature views over the ready list and the PE set
//                  (archetype id, DAG depth, estimated cost per PE,
//                  per-handler queue depth / availability / type slot, the
//                  emulation clock), built zero-allocation from the
//                  SchedulerContext each invocation;
//   Action       — the decision: (task index, handler index[, option]) :=
//                  assignments to apply this invocation;
//   Policy       — decide(Observation) -> Action, plus the checkpoint and
//                  accounting hooks the engines need.
//
// PolicyScheduler (policy_scheduler.hpp) adapts any Policy into a
// registry-creatable core::Scheduler whose decision cost is charged through
// the engines' existing modeled/measured overhead path — a policy's
// estimator reads and reported external latency price its decisions in
// emulated time exactly like the built-in library's work.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/clock.hpp"
#include "common/small_vec.hpp"
#include "common/state_io.hpp"

namespace dssoc::policy {

/// Features of one ready task, valid for the duration of one decide() call.
struct TaskFeatures {
  /// Dense per-emulation archetype id (the interned DAG-node id); instances
  /// of the same node share it. Stable within one emulation only.
  std::uint32_t archetype = 0;
  /// The node's index within its DAG.
  std::uint32_t node_index = 0;
  /// Longest head-to-node chain length in the DAG (heads are depth 0).
  std::uint32_t depth = 0;
  std::string_view app;   ///< application model name
  std::string_view node;  ///< DAG node name
  /// How long the task has been ready (observation clock - ready time).
  SimTime waiting_ns = 0;
};

/// Features of one PE / resource handler, indexed like the engine's handler
/// list (Action handler indices refer to this order).
struct HandlerFeatures {
  std::uint32_t pe_id = 0;
  /// Dense PE-type slot within this emulation (handlers of the same type
  /// share it; slots are numbered in first-appearance order).
  std::uint32_t type_slot = 0;
  std::string_view pe_type;       ///< type name, e.g. "a53" / "fft"
  std::uint32_t queue_depth = 0;  ///< assignments queued or running
  /// Assignments the scheduler may hand this PE right now (0 = cannot
  /// accept).
  std::uint32_t free_slots = 0;
  /// Emulation time at which the PE is predicted to be free (kFull only).
  SimTime available_at = 0;
  double speed_factor = 1.0;
};

/// How much of the observation a policy consumes. kShallow skips the
/// estimate matrix and availability reads — and therefore makes *no*
/// estimator calls, so a replay-style policy adds nothing to the modeled
/// overhead charge. kFull prices one estimate per (archetype, supporting
/// handler) pair plus one availability read per handler, the same
/// accounting the built-in cost-aware schedulers perform.
enum class ObservationLevel { kShallow, kFull };

/// The feature view handed to Policy::decide(). All spans point into
/// builder-owned scratch that is overwritten by the next invocation; a
/// policy that wants history must copy what it keeps.
class Observation {
 public:
  SimTime now = 0;                            ///< emulation clock
  std::span<const TaskFeatures> tasks;        ///< ready list, engine order
  std::span<const HandlerFeatures> handlers;  ///< PE set, engine order
  std::uint32_t type_slots = 0;               ///< distinct PE-type count

  /// Predicted execution time of ready task `task` on handler `handler`
  /// (flat matrix), or -1 when the pair is unsupported or the observation
  /// is kShallow.
  SimTime estimate(std::size_t task, std::size_t handler) const {
    return estimates_[task * handlers.size() + handler];
  }

  /// True when `task` can execute on `handler` at all (kFull only).
  bool supported(std::size_t task, std::size_t handler) const {
    return estimate(task, handler) >= 0;
  }

 private:
  friend class ObservationBuilder;
  std::span<const SimTime> estimates_;
};

/// One task-to-handler assignment decided by a policy. Indices refer to
/// Observation::tasks / Observation::handlers. `option` selects the task
/// node's platform option by index; -1 lets the adapter resolve the first
/// supported option for the handler's PE type (the supported_option()
/// semantics every built-in policy uses).
struct ActionItem {
  std::uint32_t task = 0;
  std::uint32_t handler = 0;
  std::int32_t option = -1;
};

/// The decision of one invocation: an ordered list of assignments. Items
/// are applied in order; an item whose handler can no longer accept (or
/// whose pair is unsupported) is skipped and its task stays ready — the
/// lenient semantics an external agent with a stale view needs. Structural
/// errors (out-of-range indices, duplicate task) are invariant violations
/// and throw.
class Action {
 public:
  void assign(std::uint32_t task, std::uint32_t handler,
              std::int32_t option = -1) {
    items_.push_back({task, handler, option});
  }

  std::span<const ActionItem> items() const {
    return {items_.begin(), items_.size()};
  }
  void clear() { items_.clear(); }

 private:
  SmallVec<ActionItem, 16> items_;
};

/// What decide() reports back to the overhead accounting, beyond the action.
struct PolicyResult {
  /// False = the policy could not decide (dead agent, exhausted trace with
  /// lenient mode, ...): the adapter runs its fallback scheduler on the
  /// unmodified ready list instead of applying the action.
  bool available = true;
  /// Measured host-side wait on something external (agent round trip,
  /// timeout). Charged into emulated time via
  /// ExecutionEstimator::note_external_latency_ns.
  std::uint64_t external_latency_ns = 0;
  /// Estimator work the policy logically performed beyond its observation
  /// reads (e.g. a trace replay re-charging the recorded scheduler's
  /// estimate count). Forwarded to note_logical_estimates.
  std::size_t logical_estimates = 0;
};

/// The policy interface. One instance drives one emulation from one thread;
/// implementations keep member scratch (warm after the first invocation)
/// to preserve the engines' zero-allocation steady state.
class Policy {
 public:
  virtual ~Policy() = default;

  virtual const std::string& name() const = 0;

  /// How much observation to build before each decide() (see
  /// ObservationLevel). Sampled per invocation.
  virtual ObservationLevel observation_level() const {
    return ObservationLevel::kFull;
  }

  /// One scheduling decision. `action` arrives cleared.
  virtual PolicyResult decide(const Observation& observation,
                              Action& action) = 0;

  /// Checkpoint hooks, same contract as core::Scheduler's: serialize real
  /// history (learned tables, replay cursors), not per-invocation memos.
  virtual void save_state(StateWriter& out) const { (void)out; }
  virtual void load_state(StateReader& in) { (void)in; }

  /// Same contract as core::Scheduler::time_invariant(): false disables the
  /// virtual engine's busy-wait fast-forward for this policy's emulations.
  virtual bool time_invariant() const { return true; }
};

}  // namespace dssoc::policy
