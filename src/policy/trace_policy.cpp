#include "policy/trace_policy.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/app_model.hpp"

namespace dssoc::policy {
namespace {

constexpr std::uint32_t kHeaderTag = state_tag('T', 'H', 'D', 'R');
constexpr std::uint32_t kFrameTag = state_tag('T', 'F', 'R', 'M');

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw StateError(cat("cannot open trace file \"", path, "\""));
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(file);
  return bytes;
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(read_u32(p)) |
         (static_cast<std::uint64_t>(read_u32(p + 4)) << 32);
}

}  // namespace

Trace Trace::load(const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  Trace trace;
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 12) {
      throw StateError(cat("trace \"", path, "\": truncated record framing"));
    }
    if (read_u32(bytes.data() + pos) != kTraceFileMagic) {
      throw StateError(cat("trace \"", path, "\": bad record magic"));
    }
    const std::uint64_t length = read_u64(bytes.data() + pos + 4);
    pos += 12;
    if (length > bytes.size() - pos) {
      throw StateError(cat("trace \"", path, "\": truncated record payload"));
    }
    StateReader in(bytes.data() + pos, static_cast<std::size_t>(length),
                   kTraceFrameKind);
    pos += static_cast<std::size_t>(length);
    const std::uint32_t tag = in.begin_section();
    if (tag == kHeaderTag) {
      if (saw_header) {
        throw StateError(cat("trace \"", path, "\": duplicate header frame"));
      }
      const std::uint32_t version = in.u32();
      if (version != kTraceFormatVersion) {
        throw StateError(cat("trace \"", path, "\": format version ", version,
                             " (expected ", kTraceFormatVersion, ")"));
      }
      trace.scheduler_name = in.str();
      saw_header = true;
    } else if (tag == kFrameTag) {
      if (!saw_header) {
        throw StateError(cat("trace \"", path, "\": frame before header"));
      }
      TraceFrame frame;
      frame.now = in.i64();
      frame.ready_count = in.u64();
      frame.estimator_calls = in.u64();
      const std::uint32_t n = in.u32();
      frame.decisions.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        TraceDecision decision;
        decision.task = in.u32();
        decision.handler = in.u32();
        decision.option = in.i32();
        frame.decisions.push_back(decision);
      }
      trace.frames.push_back(std::move(frame));
    } else {
      throw StateError(cat("trace \"", path, "\": unknown record tag"));
    }
    in.end_section();
  }
  if (!saw_header) {
    throw StateError(cat("trace \"", path, "\": empty or headerless trace"));
  }
  return trace;
}

TraceRecordScheduler::TraceRecordScheduler(
    std::unique_ptr<core::Scheduler> inner, std::string path)
    : inner_(std::move(inner)), path_(std::move(path)) {
  DSSOC_REQUIRE(inner_ != nullptr, "trace recording requires a scheduler");
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw StateError(cat("cannot create trace file \"", path_, "\""));
  }
  StateWriter header(kTraceFrameKind);
  header.begin_section(kHeaderTag);
  header.u32(kTraceFormatVersion);
  header.str(inner_->name());
  header.end_section();
  write_frame(header.take());
}

TraceRecordScheduler::~TraceRecordScheduler() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void TraceRecordScheduler::write_frame(
    const std::vector<std::uint8_t>& payload) {
  std::uint8_t framing[12];
  const std::uint32_t magic = kTraceFileMagic;
  const std::uint64_t length = payload.size();
  for (int i = 0; i < 4; ++i) {
    framing[i] = static_cast<std::uint8_t>((magic >> (8 * i)) & 0xff);
  }
  for (int i = 0; i < 8; ++i) {
    framing[4 + i] = static_cast<std::uint8_t>((length >> (8 * i)) & 0xff);
  }
  if (std::fwrite(framing, 1, sizeof framing, file_) != sizeof framing ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    throw StateError(cat("short write to trace file \"", path_, "\""));
  }
  // One frame per scheduling event; flush so a crashed run leaves a
  // replayable prefix.
  std::fflush(file_);
}

void TraceRecordScheduler::schedule(
    core::ReadyList& ready, std::vector<core::ResourceHandler*>& handlers,
    core::SchedulerContext& ctx) {
  pre_ready_.assign(ready.begin(), ready.end());
  pre_load_.clear();
  for (const core::ResourceHandler* handler : handlers) {
    pre_load_.push_back(handler->load());
  }

  counting_.target = ctx.estimator;
  counting_.calls = 0;
  core::SchedulerContext counted = ctx;
  if (ctx.estimator != nullptr) {
    counted.estimator = &counting_;
  }
  inner_->schedule(ready, handlers, counted);

  StateWriter out(kTraceFrameKind);
  out.begin_section(kFrameTag);
  out.i64(ctx.now);
  out.u64(pre_ready_.size());
  out.u64(counting_.calls);

  // Queue entries beyond the pre-call load are this invocation's decisions.
  std::vector<TraceDecision> decisions;
  for (std::size_t h = 0; h < handlers.size(); ++h) {
    queue_scratch_.clear();
    handlers[h]->snapshot_queue(queue_scratch_);
    for (std::size_t q = pre_load_[h]; q < queue_scratch_.size(); ++q) {
      const core::Assignment& assignment = queue_scratch_[q];
      TraceDecision decision;
      decision.handler = static_cast<std::uint32_t>(h);
      bool found = false;
      for (std::size_t t = 0; t < pre_ready_.size(); ++t) {
        if (pre_ready_[t] == assignment.task) {
          decision.task = static_cast<std::uint32_t>(t);
          found = true;
          break;
        }
      }
      DSSOC_ASSERT_MSG(found, "scheduler assigned a task not in ready list");
      decision.option = static_cast<std::int32_t>(
          assignment.platform - assignment.task->node->platforms.data());
      decisions.push_back(decision);
    }
  }
  out.u32(static_cast<std::uint32_t>(decisions.size()));
  for (const TraceDecision& decision : decisions) {
    out.u32(decision.task);
    out.u32(decision.handler);
    out.i32(decision.option);
  }
  out.end_section();
  write_frame(out.take());
}

TraceReplayPolicy::TraceReplayPolicy(Trace trace)
    : trace_(std::move(trace)),
      name_(cat("trace-replay(", trace_.scheduler_name, ")")) {}

PolicyResult TraceReplayPolicy::decide(const Observation& observation,
                                       Action& action) {
  if (cursor_ >= trace_.frames.size()) {
    throw StateError(cat("trace exhausted after ", trace_.frames.size(),
                         " frames: the emulation scheduled more events than "
                         "the recorded run"));
  }
  const TraceFrame& frame = trace_.frames[cursor_];
  if (frame.now != observation.now ||
      frame.ready_count != observation.tasks.size()) {
    throw StateError(
        cat("trace divergence at frame ", cursor_, ": recorded (now=",
            frame.now, ", ready=", frame.ready_count, "), live (now=",
            observation.now, ", ready=", observation.tasks.size(), ")"));
  }
  ++cursor_;
  for (const TraceDecision& decision : frame.decisions) {
    action.assign(decision.task, decision.handler, decision.option);
  }
  PolicyResult result;
  result.logical_estimates = frame.estimator_calls;
  return result;
}

void TraceReplayPolicy::save_state(StateWriter& out) const {
  out.u64(cursor_);
}

void TraceReplayPolicy::load_state(StateReader& in) {
  const std::uint64_t cursor = in.u64();
  if (cursor > trace_.frames.size()) {
    throw StateError(cat("snapshot replay cursor ", cursor, " beyond the ",
                         trace_.frames.size(), "-frame trace"));
  }
  cursor_ = static_cast<std::size_t>(cursor);
}

}  // namespace dssoc::policy
