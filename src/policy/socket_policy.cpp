#include "policy/socket_policy.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::policy {
namespace {

constexpr std::uint32_t kObsTag = state_tag('O', 'B', 'S', 'V');
constexpr std::uint32_t kActTag = state_tag('A', 'C', 'T', 'N');

void put_framing(std::uint8_t* out, std::uint64_t length) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>((kSocketFrameMagic >> (8 * i)) & 0xff);
  }
  for (int i = 0; i < 8; ++i) {
    out[4 + i] = static_cast<std::uint8_t>((length >> (8 * i)) & 0xff);
  }
}

bool parse_framing(const std::uint8_t* in, std::uint64_t& length) {
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  length = 0;
  for (int i = 0; i < 8; ++i) {
    length |= static_cast<std::uint64_t>(in[4 + i]) << (8 * i);
  }
  return magic == kSocketFrameMagic;
}

/// Transfers exactly `size` bytes, blocking; false on EOF/error.
bool io_exact(int fd, void* data, std::size_t size, bool write) {
  auto* cursor = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t got =
        write ? ::send(fd, cursor, size, MSG_NOSIGNAL)
              : ::recv(fd, cursor, size, 0);
    if (got > 0) {
      cursor += got;
      size -= static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK)) {
      struct pollfd pfd {fd, static_cast<short>(write ? POLLOUT : POLLIN), 0};
      ::poll(&pfd, 1, -1);
      continue;
    }
    return false;  // EOF or hard error
  }
  return true;
}

}  // namespace

// --- wire codec --------------------------------------------------------------

std::vector<std::uint8_t> encode_observation(const Observation& observation) {
  StateWriter out(kSocketObsKind);
  out.begin_section(kObsTag);
  out.i64(observation.now);
  out.u32(observation.type_slots);
  out.u64(observation.tasks.size());
  for (const TaskFeatures& task : observation.tasks) {
    out.u32(task.archetype);
    out.u32(task.node_index);
    out.u32(task.depth);
    out.str(std::string(task.app));
    out.str(std::string(task.node));
    out.i64(task.waiting_ns);
  }
  out.u64(observation.handlers.size());
  for (const HandlerFeatures& handler : observation.handlers) {
    out.u32(handler.pe_id);
    out.u32(handler.type_slot);
    out.str(std::string(handler.pe_type));
    out.u32(handler.queue_depth);
    out.u32(handler.free_slots);
    out.i64(handler.available_at);
    out.f64(handler.speed_factor);
  }
  for (std::size_t t = 0; t < observation.tasks.size(); ++t) {
    for (std::size_t h = 0; h < observation.handlers.size(); ++h) {
      out.i64(observation.estimate(t, h));
    }
  }
  out.end_section();
  return out.take();
}

WireObservation decode_observation(const std::vector<std::uint8_t>& payload) {
  StateReader in(payload.data(), payload.size(), kSocketObsKind);
  in.begin_section(kObsTag);
  WireObservation observation;
  observation.now = in.i64();
  observation.type_slots = in.u32();
  const std::uint64_t n = in.u64();
  observation.tasks.reserve(n);
  for (std::uint64_t t = 0; t < n; ++t) {
    WireTask task;
    task.archetype = in.u32();
    task.node_index = in.u32();
    task.depth = in.u32();
    task.app = in.str();
    task.node = in.str();
    task.waiting_ns = in.i64();
    observation.tasks.push_back(std::move(task));
  }
  const std::uint64_t h = in.u64();
  observation.handlers.reserve(h);
  for (std::uint64_t i = 0; i < h; ++i) {
    WireHandler handler;
    handler.pe_id = in.u32();
    handler.type_slot = in.u32();
    handler.pe_type = in.str();
    handler.queue_depth = in.u32();
    handler.free_slots = in.u32();
    handler.available_at = in.i64();
    handler.speed_factor = in.f64();
    observation.handlers.push_back(std::move(handler));
  }
  observation.estimates.reserve(n * h);
  for (std::uint64_t i = 0; i < n * h; ++i) {
    observation.estimates.push_back(in.i64());
  }
  in.end_section();
  return observation;
}

std::vector<std::uint8_t> encode_action(
    const std::vector<ActionItem>& items) {
  StateWriter out(kSocketActKind);
  out.begin_section(kActTag);
  out.u32(static_cast<std::uint32_t>(items.size()));
  for (const ActionItem& item : items) {
    out.u32(item.task);
    out.u32(item.handler);
    out.i32(item.option);
  }
  out.end_section();
  return out.take();
}

std::vector<ActionItem> decode_action(
    const std::vector<std::uint8_t>& payload) {
  StateReader in(payload.data(), payload.size(), kSocketActKind);
  in.begin_section(kActTag);
  const std::uint32_t count = in.u32();
  std::vector<ActionItem> items;
  items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ActionItem item;
    item.task = in.u32();
    item.handler = in.u32();
    item.option = in.i32();
    items.push_back(item);
  }
  in.end_section();
  return items;
}

bool read_socket_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t framing[12];
  if (!io_exact(fd, framing, sizeof framing, /*write=*/false)) {
    return false;
  }
  std::uint64_t length = 0;
  if (!parse_framing(framing, length)) {
    return false;
  }
  payload.resize(static_cast<std::size_t>(length));
  return io_exact(fd, payload.data(), payload.size(), /*write=*/false);
}

bool write_socket_frame(int fd, const std::vector<std::uint8_t>& payload) {
  std::uint8_t framing[12];
  put_framing(framing, payload.size());
  return io_exact(fd, framing, sizeof framing, /*write=*/true) &&
         io_exact(fd, const_cast<std::uint8_t*>(payload.data()),
                  payload.size(), /*write=*/true);
}

// --- the policy --------------------------------------------------------------

SocketPolicy::SocketPolicy(std::string path, int timeout_ms)
    : path_(std::move(path)), timeout_ms_(timeout_ms) {
  DSSOC_REQUIRE(timeout_ms_ > 0, "socket policy timeout must be positive");
}

SocketPolicy::~SocketPolicy() { disconnect(); }

const std::string& SocketPolicy::name() const {
  static const std::string n = "socket";
  return n;
}

void SocketPolicy::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SocketPolicy::ensure_connected(SimTime deadline_ns) {
  if (fd_ >= 0) {
    return true;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof addr.sun_path) {
    disconnect();
    return false;
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
  Stopwatch watch;
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      disconnect();
      return false;
    }
    struct pollfd pfd {fd_, POLLOUT, 0};
    const SimTime remaining = deadline_ns - watch.elapsed();
    const int wait_ms =
        remaining > 0 ? static_cast<int>(remaining / 1'000'000) : 0;
    if (::poll(&pfd, 1, wait_ms) <= 0) {
      disconnect();
      return false;
    }
    int error = 0;
    socklen_t len = sizeof error;
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &error, &len) != 0 ||
        error != 0) {
      disconnect();
      return false;
    }
  }
  return true;
}

bool SocketPolicy::send_payload(const std::vector<std::uint8_t>& payload,
                                SimTime deadline_ns) {
  std::uint8_t framing[12];
  put_framing(framing, payload.size());
  const std::uint8_t* chunks[2] = {framing, payload.data()};
  std::size_t sizes[2] = {sizeof framing, payload.size()};
  Stopwatch watch;
  for (int part = 0; part < 2; ++part) {
    const std::uint8_t* cursor = chunks[part];
    std::size_t left = sizes[part];
    while (left > 0) {
      const ssize_t sent = ::send(fd_, cursor, left, MSG_NOSIGNAL);
      if (sent > 0) {
        cursor += sent;
        left -= static_cast<std::size_t>(sent);
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                       errno == EINTR)) {
        const SimTime remaining = deadline_ns - watch.elapsed();
        if (remaining <= 0) {
          return false;
        }
        struct pollfd pfd {fd_, POLLOUT, 0};
        if (::poll(&pfd, 1, static_cast<int>(remaining / 1'000'000) + 1) <=
            0) {
          return false;
        }
        continue;
      }
      return false;
    }
  }
  return true;
}

bool SocketPolicy::receive_payload(std::vector<std::uint8_t>& payload,
                                   SimTime deadline_ns) {
  Stopwatch watch;
  std::uint8_t framing[12];
  std::size_t have = 0;
  std::uint64_t length = 0;
  bool header_done = false;
  payload.clear();
  while (true) {
    std::uint8_t* cursor;
    std::size_t want;
    if (!header_done) {
      cursor = framing + have;
      want = sizeof framing - have;
    } else {
      cursor = payload.data() + have;
      want = payload.size() - have;
      if (want == 0) {
        return true;
      }
    }
    const ssize_t got = ::recv(fd_, cursor, want, 0);
    if (got > 0) {
      have += static_cast<std::size_t>(got);
      if (!header_done && have == sizeof framing) {
        if (!parse_framing(framing, length) || length > (64u << 20)) {
          return false;
        }
        payload.resize(static_cast<std::size_t>(length));
        have = 0;
        header_done = true;
      }
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)) {
      const SimTime remaining = deadline_ns - watch.elapsed();
      if (remaining <= 0) {
        return false;
      }
      struct pollfd pfd {fd_, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(remaining / 1'000'000) + 1) <= 0) {
        return false;
      }
      continue;
    }
    return false;  // EOF or hard error
  }
}

PolicyResult SocketPolicy::decide(const Observation& observation,
                                  Action& action) {
  PolicyResult result;
  if (dead_) {
    // The death already charged its timeout; later invocations fall back
    // immediately (the agent is gone, not slow).
    result.available = false;
    return result;
  }

  Stopwatch watch;
  const SimTime deadline =
      static_cast<SimTime>(timeout_ms_) * 1'000'000;
  bool ok = ensure_connected(deadline - watch.elapsed());
  if (ok) {
    ok = send_payload(encode_observation(observation),
                      deadline - watch.elapsed());
  }
  if (ok) {
    ok = receive_payload(scratch_, deadline - watch.elapsed());
  }
  result.external_latency_ns =
      static_cast<std::uint64_t>(watch.elapsed());
  if (!ok) {
    disconnect();
    dead_ = true;
    result.available = false;
    return result;
  }
  try {
    for (const ActionItem& item : decode_action(scratch_)) {
      action.assign(item.task, item.handler, item.option);
    }
  } catch (const StateError&) {
    // Corrupt reply = dead agent: same failure path as a timeout.
    disconnect();
    dead_ = true;
    action.clear();
    result.available = false;
  }
  return result;
}

}  // namespace dssoc::policy
