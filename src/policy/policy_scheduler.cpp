#include "policy/policy_scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/app_model.hpp"

namespace dssoc::policy {

const std::vector<std::uint32_t>& ObservationBuilder::depths(
    const core::AppModel& model) {
  const auto it = depths_.find(&model);
  if (it != depths_.end()) {
    return it->second;
  }
  // Longest-path relaxation; models are finalized (acyclic), so at most
  // |nodes| sweeps settle every chain.
  std::vector<std::uint32_t> depth(model.nodes.size(), 0);
  bool changed = true;
  std::size_t guard = 0;
  while (changed && guard++ <= model.nodes.size()) {
    changed = false;
    for (const core::DagNode& node : model.nodes) {
      for (const std::size_t succ : node.successor_indices) {
        if (depth[succ] < depth[node.index] + 1) {
          depth[succ] = depth[node.index] + 1;
          changed = true;
        }
      }
    }
  }
  return depths_.emplace(&model, std::move(depth)).first->second;
}

void ObservationBuilder::build(const core::ReadyList& ready,
                               const std::vector<core::ResourceHandler*>& handlers,
                               const core::SchedulerContext& ctx,
                               ObservationLevel level, Observation& out) {
  const std::size_t n = ready.size();
  const std::size_t h_count = handlers.size();

  // PE-type slots are stable for one engine's handler set; rebuild only if
  // the handler count changes (bare unit tests swapping platforms).
  if (handler_slot_.size() != h_count) {
    handler_slot_.clear();
    slot_of_type_.clear();
    type_slots_ = 0;
    for (const core::ResourceHandler* handler : handlers) {
      const auto [slot, inserted] =
          slot_of_type_.try_emplace(handler->pe().type.name, type_slots_);
      if (inserted) {
        ++type_slots_;
      }
      handler_slot_.push_back(slot->second);
    }
  }

  handlers_.clear();
  for (std::size_t h = 0; h < h_count; ++h) {
    const core::ResourceHandler& handler = *handlers[h];
    const platform::PE& pe = handler.pe();
    HandlerFeatures features;
    features.pe_id = static_cast<std::uint32_t>(pe.id);
    features.type_slot = handler_slot_[h];
    features.pe_type = pe.type.name;
    const std::size_t load = handler.load();
    features.queue_depth = static_cast<std::uint32_t>(load);
    if (handler.can_accept()) {
      const std::size_t depth = static_cast<std::size_t>(handler.queue_depth());
      features.free_slots =
          static_cast<std::uint32_t>(depth > load ? depth - load : 1);
    }
    features.speed_factor = pe.type.speed_factor;
    if (level == ObservationLevel::kFull && ctx.estimator != nullptr) {
      features.available_at =
          std::max(ctx.now, ctx.estimator->available_at(handler));
    }
    handlers_.push_back(features);
  }

  ++epoch_;
  tasks_.clear();
  estimates_.assign(n * h_count, SimTime{-1});
  for (std::size_t t = 0; t < n; ++t) {
    const core::TaskInstance& task = *ready[t];
    TaskFeatures features;
    features.archetype = task.lookup_id;
    features.node_index = static_cast<std::uint32_t>(task.node->index);
    features.depth = depths(task.app->model())[task.node->index];
    features.app = task.app->model().name;
    features.node = task.node->name;
    features.waiting_ns = ctx.now - task.ready_time;
    tasks_.push_back(features);

    if (level == ObservationLevel::kFull && ctx.estimator != nullptr) {
      // First instance of an archetype makes the real estimate calls; later
      // instances replay the memo and report the logical count, exactly the
      // MET/EFT accounting pattern.
      ArchMemo& memo = memo_[task.node];
      if (memo.epoch != epoch_) {
        memo.epoch = epoch_;
        memo.estimates.assign(h_count, SimTime{-1});
        memo.pairs = 0;
        for (std::size_t h = 0; h < h_count; ++h) {
          if (const core::PlatformOption* option =
                  ctx.option(task, *handlers[h])) {
            memo.estimates[h] =
                ctx.estimator->estimate(task, *option, *handlers[h]);
            ++memo.pairs;
          }
        }
      } else if (memo.pairs > 0) {
        ctx.estimator->note_logical_estimates(memo.pairs);
      }
      std::copy(memo.estimates.begin(), memo.estimates.end(),
                estimates_.begin() + static_cast<std::ptrdiff_t>(t * h_count));
    }
  }

  out.now = ctx.now;
  out.tasks = {tasks_.data(), n};
  out.handlers = {handlers_.data(), h_count};
  out.type_slots = type_slots_;
  out.estimates_ = {estimates_.data(), n * h_count};
}

PolicyScheduler::PolicyScheduler(std::unique_ptr<Policy> policy,
                                 std::string name, const std::string& fallback)
    : policy_(std::move(policy)), name_(std::move(name)) {
  DSSOC_REQUIRE(policy_ != nullptr, "PolicyScheduler requires a policy");
  if (!fallback.empty()) {
    fallback_ = core::SchedulerRegistry::instance().create(fallback);
  }
}

void PolicyScheduler::schedule(core::ReadyList& ready,
                               std::vector<core::ResourceHandler*>& handlers,
                               core::SchedulerContext& ctx) {
  const ObservationLevel level = policy_->observation_level();
  builder_.build(ready, handlers, ctx, level, observation_);
  action_.clear();
  const PolicyResult result = policy_->decide(observation_, action_);

  // Charge the reported work before any fallback runs: a dead agent's
  // timeout is scheduling cost of this invocation either way.
  if (ctx.estimator != nullptr) {
    if (result.logical_estimates > 0) {
      ctx.estimator->note_logical_estimates(result.logical_estimates);
    }
    if (result.external_latency_ns > 0) {
      ctx.estimator->note_external_latency_ns(result.external_latency_ns);
    }
  }

  if (!result.available) {
    if (fallback_ != nullptr) {
      fallback_->schedule(ready, handlers, ctx);
    }
    return;
  }

  const std::size_t n = ready.size();
  assigned_.assign(n, 0);
  bool any = false;
  for (const ActionItem& item : action_.items()) {
    if (item.task >= n || item.handler >= handlers.size()) {
      throw StateError(cat("policy \"", policy_->name(),
                           "\" action references task ", item.task,
                           " / handler ", item.handler, " out of range (",
                           n, " ready, ", handlers.size(), " handlers)"));
    }
    if (assigned_[item.task]) {
      throw StateError(cat("policy \"", policy_->name(),
                           "\" assigned ready task ", item.task, " twice"));
    }
    core::TaskInstance& task = *ready[item.task];
    core::ResourceHandler& handler = *handlers[item.handler];
    const core::PlatformOption* option = nullptr;
    if (item.option >= 0) {
      const auto& platforms = task.node->platforms;
      if (static_cast<std::size_t>(item.option) >= platforms.size()) {
        throw StateError(cat("policy \"", policy_->name(), "\" option index ",
                             item.option, " out of range for node \"",
                             task.node->name, "\""));
      }
      option = &platforms[static_cast<std::size_t>(item.option)];
      if (option->pe_type != handler.pe().type.name) {
        option = nullptr;  // stale/mismatched choice -> lenient skip
      }
    } else {
      option = ctx.option(task, handler);
    }
    // Lenient skips: an external agent deciding from a stale view may pick
    // a full PE or an unsupported pair; the task simply stays ready.
    if (option == nullptr || !handler.can_accept()) {
      continue;
    }
    handler.assign(&task, option, ctx.now);
    assigned_[item.task] = 1;
    any = true;
  }

  if (any) {
    std::size_t kept = 0;
    for (std::size_t t = 0; t < n; ++t) {
      if (!assigned_[t]) {
        ready[kept++] = ready[t];
      }
    }
    ready.resize(kept);
  }
}

void PolicyScheduler::save_state(StateWriter& out) const {
  policy_->save_state(out);
}

void PolicyScheduler::load_state(StateReader& in) { policy_->load_state(in); }

bool PolicyScheduler::time_invariant() const {
  return policy_->time_invariant();
}

}  // namespace dssoc::policy
