// Registry hookup for the policy bridge: one call makes every "policy:..."
// spec resolvable through core::SchedulerRegistry::create() — and therefore
// through EmulationOptions::scheduler, DSSOC_SCHED and the sweep layer.
//
// Spec grammar (",", "=" separate optional arguments):
//
//   policy:trace-record:<inner>:<path>    record scheduler <inner> to <path>
//   policy:trace-replay:<path>            replay a recorded trace
//   policy:table:<path>[,fallback=NAME]   TablePolicy from a JSON file
//   policy:socket:<path>[,fallback=NAME][,timeout_ms=N]
//                                         external agent on a Unix socket
//
// Static libraries drop self-registering translation units at link time, so
// registration is an explicit call; exp::run_sweep() and the framework's
// drivers make it, standalone embedders call it once before create().
#pragma once

namespace dssoc::policy {

/// Registers the "policy" spec prefix with the process-wide
/// SchedulerRegistry. Idempotent and cheap — call before any create() that
/// might name a policy spec.
void register_policies();

}  // namespace dssoc::policy
