// Processing-element descriptors.
//
// A DSSoC configuration under test is a set of PEs drawn from the underlying
// COTS platform's resource pool: general-purpose cores (executed/modelled
// directly) and accelerators (reached through a DMA-coupled device model).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dssoc::platform {

enum class PEKind { kCpu, kAccelerator };

/// A PE *type* ("cpu", "big", "little", "fft"). Application DAG nodes name
/// the types they support (the "platforms" list of Listing 1).
struct PEType {
  std::string name;
  PEKind kind = PEKind::kCpu;
  /// Execution-time multiplier relative to the reference CPU (the ZCU102
  /// Cortex-A53). 1.0 = reference speed; <1 faster; >1 slower. Only
  /// meaningful for kCpu types — accelerator timing comes from the device
  /// model. For CPU PEs this is a default; the instantiated PE inherits the
  /// speed of the host core it claims.
  double speed_factor = 1.0;
  /// For kCpu types: the host-core class this PE type executes on
  /// ("a53", "a15", "a7"). Empty for accelerators.
  std::string core_class;
};

/// One concrete PE in an emulated DSSoC configuration.
struct PE {
  int id = 0;               ///< dense index within the configuration
  PEType type;              ///< type descriptor (copied for self-containment)
  std::string label;        ///< e.g. "Core1", "FFT2" — used in reports
  int host_core = -1;       ///< index of the host core running its manager
};

/// Returns true when `a` and `b` denote the same PE type.
inline bool same_type(const PEType& a, const PEType& b) {
  return a.name == b.name;
}

}  // namespace dssoc::platform
