// Calibrated kernel cost model.
//
// The virtual-time engine charges each task a duration from this model. The
// calibration target is the paper's own evaluation hardware: costs are
// expressed on the reference CPU (ZCU102 Cortex-A53) and scaled by each PE
// type's speed factor; accelerators carry their own per-kernel compute costs
// plus DMA transfer time from the device model. Constants were fitted so
// that Table I of the paper (standalone application execution times on
// 3 cores + 2 FFTs under FRFS) is reproduced to the right order and ranking —
// see EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/clock.hpp"
#include "common/config_hash.hpp"
#include "platform/pe.hpp"

namespace dssoc::platform {

/// Linear cost: base_ns + per_unit_ns * units, where `units` is the kernel's
/// natural work measure (samples for vector ops, n*log2(n) for FFTs, payload
/// bits for Viterbi, ...). The *caller* supplies pre-scaled units so the
/// model stays a lookup table.
struct KernelCost {
  double base_ns = 0.0;
  double per_unit_ns = 0.0;

  SimTime eval(double units) const {
    return static_cast<SimTime>(base_ns + per_unit_ns * units);
  }
};

class CostModel {
 public:
  /// Registers/overwrites the reference-CPU cost of a kernel.
  void set_cpu_cost(const std::string& kernel, KernelCost cost);

  /// Registers/overwrites an accelerator-type's compute cost for a kernel.
  void set_accel_cost(const std::string& pe_type, const std::string& kernel,
                      KernelCost cost);

  /// True when a cost entry exists for the kernel on the reference CPU.
  bool has_cpu_cost(const std::string& kernel) const;

  /// Cost of `kernel` with `units` work on a CPU PE of the given speed
  /// factor. Unknown kernels fall back to a default per-task cost so
  /// user-integrated applications run without mandatory calibration.
  SimTime cpu_cost(const std::string& kernel, double units,
                   double speed_factor) const;

  /// The table entry behind cpu_cost() — the kernel's entry, or the default
  /// entry for unregistered kernels. The pointer stays valid as long as this
  /// CostModel is neither mutated nor destroyed; engines resolve it once at
  /// init (core::OptionLookup::intern) so per-event costing skips the
  /// string-keyed map.
  const KernelCost* cpu_cost_entry(const std::string& kernel) const;

  /// cpu_cost() on an already-resolved entry; the single source of the
  /// scaling arithmetic, so interned lookups are bit-identical to the
  /// string-keyed path.
  static SimTime scaled_cost(const KernelCost& cost, double units,
                             double speed_factor) {
    return static_cast<SimTime>(static_cast<double>(cost.eval(units)) *
                                speed_factor);
  }

  /// Compute-only cost on an accelerator type (DMA time is separate and comes
  /// from the DMA model). Returns nullopt when the accelerator type has no
  /// entry for this kernel (i.e. cannot execute it).
  std::optional<SimTime> accel_compute_cost(const std::string& pe_type,
                                            const std::string& kernel,
                                            double units) const;

  /// Default cost charged for kernels with no table entry.
  void set_default_cpu_cost(KernelCost cost) { default_cpu_ = cost; }
  KernelCost default_cpu_cost() const { return default_cpu_; }

  /// Feeds every table entry (sorted map order, so the hash is canonical)
  /// into a config hash — part of the sweep journal's per-point key
  /// (exp/journal.hpp): any cost-model change must invalidate journaled
  /// results.
  void hash_into(ConfigHasher& hasher) const;

 private:
  std::map<std::string, KernelCost> cpu_costs_;
  std::map<std::string, std::map<std::string, KernelCost>> accel_costs_;
  KernelCost default_cpu_{10'000.0, 0.0};  // 10 us per unknown task
};

/// Work-unit helpers used by the built-in applications.
double fft_units(std::size_t n);      // n * log2(n)
double dft_units(std::size_t n);      // n * n
double linear_units(std::size_t n);   // n

/// The calibrated model for the signal-processing domain (see file comment).
CostModel default_cost_model();

}  // namespace dssoc::platform
