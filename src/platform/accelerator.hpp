// FPGA accelerator device model: a local BRAM buffer fed by a DMA engine
// (the udmabuf + AXI DMA + AXI4-Stream path of Fig. 6 in the paper).
//
// Both engines use the same model. The virtual engine charges the modelled
// DMA and compute durations into virtual time; the real engine additionally
// performs the actual data movement and the actual FFT so that accelerated
// applications stay functionally correct.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "dsp/fft.hpp"
#include "dsp/vec.hpp"

namespace dssoc::platform {

/// DMA engine timing model.
struct DmaModel {
  /// Fixed per-transfer overhead: descriptor setup, doorbell, completion —
  /// the dominant term for the small 128-sample FFTs the paper discusses.
  SimTime setup_ns = 15'000;
  /// Sustained bandwidth in bytes per microsecond (1'000 = 1 GB/s).
  double bytes_per_us = 1'000.0;

  SimTime transfer_time(std::size_t bytes) const {
    return setup_ns +
           static_cast<SimTime>(static_cast<double>(bytes) / bytes_per_us *
                                1'000.0);
  }
};

/// How a resource-manager thread learns that the accelerator finished.
enum class CompletionMode { kPolling, kInterrupt };

/// Timing + capacity description of one FFT accelerator instance.
struct FftAcceleratorModel {
  std::string pe_type_name = "fft";
  std::size_t max_samples = 4096;  ///< BRAM capacity in complex samples
  DmaModel dma;
  /// Pipeline: start_ns + samples * ns_per_sample once data is resident.
  SimTime start_ns = 2'000;
  double ns_per_sample = 4.0;
  CompletionMode completion = CompletionMode::kPolling;
  /// Polling interval used by the manager thread while the device runs.
  SimTime poll_interval_ns = 2'000;

  SimTime compute_time(std::size_t samples) const {
    return start_ns +
           static_cast<SimTime>(ns_per_sample * static_cast<double>(samples));
  }

  /// End-to-end accelerator latency for one FFT: DMA in + compute + DMA out.
  SimTime round_trip_time(std::size_t samples) const {
    const std::size_t bytes = samples * sizeof(dsp::cfloat);
    return dma.transfer_time(bytes) + compute_time(samples) +
           dma.transfer_time(bytes);
  }
};

/// Functional FFT accelerator device used by the real-time engine. Thread
/// compatible: each device instance is owned by exactly one resource-manager
/// thread (as in the paper, where each PE has a dedicated manager).
class FftAcceleratorDevice {
 public:
  explicit FftAcceleratorDevice(FftAcceleratorModel model);

  const FftAcceleratorModel& model() const noexcept { return model_; }

  /// DDR -> BRAM. Throws ConfigError if data exceeds BRAM capacity.
  void dma_in(std::span<const dsp::cfloat> data);

  /// Runs the transform over the `count` samples currently in BRAM.
  /// inverse=true computes the IFFT. count must be a power of two.
  void start(std::size_t count, bool inverse);

  /// True once the started operation has finished (the model is synchronous,
  /// so this is true immediately after start(); the manager thread still
  /// sleeps for the modelled compute time to emulate device latency).
  bool done() const noexcept { return done_; }

  /// BRAM -> DDR.
  void dma_out(std::span<dsp::cfloat> out) const;

 private:
  FftAcceleratorModel model_;
  std::vector<dsp::cfloat> bram_;
  std::size_t valid_ = 0;
  bool done_ = true;
};

}  // namespace dssoc::platform
