#include "platform/cost_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dssoc::platform {

void CostModel::set_cpu_cost(const std::string& kernel, KernelCost cost) {
  cpu_costs_[kernel] = cost;
}

void CostModel::set_accel_cost(const std::string& pe_type,
                               const std::string& kernel, KernelCost cost) {
  accel_costs_[pe_type][kernel] = cost;
}

bool CostModel::has_cpu_cost(const std::string& kernel) const {
  return cpu_costs_.find(kernel) != cpu_costs_.end();
}

SimTime CostModel::cpu_cost(const std::string& kernel, double units,
                            double speed_factor) const {
  DSSOC_ASSERT(speed_factor > 0.0);
  return scaled_cost(*cpu_cost_entry(kernel), units, speed_factor);
}

const KernelCost* CostModel::cpu_cost_entry(const std::string& kernel) const {
  const auto it = cpu_costs_.find(kernel);
  return it == cpu_costs_.end() ? &default_cpu_ : &it->second;
}

std::optional<SimTime> CostModel::accel_compute_cost(
    const std::string& pe_type, const std::string& kernel,
    double units) const {
  const auto type_it = accel_costs_.find(pe_type);
  if (type_it == accel_costs_.end()) {
    return std::nullopt;
  }
  const auto kernel_it = type_it->second.find(kernel);
  if (kernel_it == type_it->second.end()) {
    return std::nullopt;
  }
  return kernel_it->second.eval(units);
}

void CostModel::hash_into(ConfigHasher& hasher) const {
  hasher.f64(default_cpu_.base_ns).f64(default_cpu_.per_unit_ns);
  hasher.u64(cpu_costs_.size());
  for (const auto& [kernel, cost] : cpu_costs_) {
    hasher.str(kernel).f64(cost.base_ns).f64(cost.per_unit_ns);
  }
  hasher.u64(accel_costs_.size());
  for (const auto& [pe_type, kernels] : accel_costs_) {
    hasher.str(pe_type).u64(kernels.size());
    for (const auto& [kernel, cost] : kernels) {
      hasher.str(kernel).f64(cost.base_ns).f64(cost.per_unit_ns);
    }
  }
}

double fft_units(std::size_t n) {
  if (n < 2) {
    return 1.0;
  }
  return static_cast<double>(n) * std::log2(static_cast<double>(n));
}

double dft_units(std::size_t n) {
  return static_cast<double>(n) * static_cast<double>(n);
}

double linear_units(std::size_t n) { return static_cast<double>(n); }

CostModel default_cost_model() {
  CostModel model;
  // Reference CPU = ZCU102 Cortex-A53 @ 1.2 GHz. Units per kernel:
  //   fft/ifft:            n * log2(n)
  //   dft/idft:            n^2
  //   vector kernels:      n (samples or bits)
  //   viterbi_decode:      payload bits
  //   matched_filter:      search_offsets * preamble_taps
  model.set_cpu_cost("lfm", {4'000.0, 55.0});
  model.set_cpu_cost("fft", {3'000.0, 17.0});
  model.set_cpu_cost("ifft", {3'000.0, 17.0});
  // Naive DFT/IDFT (case study 4's monolithic loops): sincos in the inner
  // loop, ~50 ns per (k, t) pair on the A53.
  model.set_cpu_cost("dft", {3'000.0, 50.0});
  model.set_cpu_cost("idft", {3'000.0, 50.0});
  // Trace-derived cost for compiler-outlined regions: emulated nanoseconds
  // per executed IR operation of compiled-equivalent code.
  model.set_cpu_cost("ir_ops", {2'000.0, 5.0});
  model.set_cpu_cost("conjugate", {1'000.0, 3.0});
  model.set_cpu_cost("vector_multiply", {1'500.0, 7.0});
  model.set_cpu_cost("max_index", {1'200.0, 5.0});
  model.set_cpu_cost("fft_shift", {800.0, 2.5});
  model.set_cpu_cost("realign", {6'000.0, 4.0});
  model.set_cpu_cost("scrambler", {3'500.0, 35.0});
  model.set_cpu_cost("descrambler", {3'500.0, 35.0});
  model.set_cpu_cost("conv_encoder", {4'000.0, 90.0});
  model.set_cpu_cost("viterbi_decode", {15'000.0, 26'000.0});
  model.set_cpu_cost("interleaver", {2'500.0, 22.0});
  model.set_cpu_cost("deinterleaver", {2'500.0, 22.0});
  model.set_cpu_cost("qpsk_mod", {2'000.0, 16.0});
  model.set_cpu_cost("qpsk_demod", {2'000.0, 14.0});
  model.set_cpu_cost("pilot_insert", {3'000.0, 10.0});
  model.set_cpu_cost("pilot_remove", {3'000.0, 10.0});
  model.set_cpu_cost("crc", {3'000.0, 30.0});
  model.set_cpu_cost("crc_check", {3'000.0, 30.0});
  model.set_cpu_cost("matched_filter", {8'000.0, 10.0});
  model.set_cpu_cost("payload_extract", {3'000.0, 3.0});
  model.set_cpu_cost("awgn", {2'000.0, 12.0});
  // FFT accelerator: streaming pipeline, one sample per cycle at 250 MHz
  // once loaded; unit here is n*log2(n) like the CPU entry, so express the
  // pipeline as a small per-unit figure plus a start cost. DMA is charged
  // separately by the device model.
  model.set_accel_cost("fft", "fft", {2'000.0, 0.6});
  model.set_accel_cost("fft", "ifft", {2'000.0, 0.6});
  model.set_accel_cost("fft", "dft", {2'000.0, 0.0});   // accel runs FFT
  model.set_accel_cost("fft", "idft", {2'000.0, 0.0});
  return model;
}

}  // namespace dssoc::platform
