// COTS platform descriptions and DSSoC configuration building.
//
// A Platform describes the real chip the emulator runs on: its host cores
// (with relative speeds) and the accelerator devices reachable from it. A
// SocConfig describes the *hypothetical DSSoC* under test: which PEs it has,
// drawn from the platform's resource pool. The mapping rules follow §II-D of
// the paper: one host core is reserved as the overlay (management) processor;
// CPU PEs claim dedicated host cores first; accelerator manager threads fill
// the remaining cores and then double up round-robin.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/config_hash.hpp"
#include "platform/accelerator.hpp"
#include "platform/cost_model.hpp"
#include "platform/pe.hpp"

namespace dssoc::platform {

/// One core of the underlying COTS chip.
struct HostCore {
  int id = 0;
  std::string label;           ///< "A53-0", "A15-2", "A7-1", ...
  std::string core_class;      ///< "a53", "a15", "a7"
  double speed_factor = 1.0;   ///< relative to the reference CPU (A53)
};

/// The real chip the emulation runs on.
struct Platform {
  std::string name;
  std::vector<HostCore> cores;
  /// Index into `cores` of the overlay (management) processor.
  int overlay_core = 0;
  /// PE types instantiable on this platform, keyed by type name.
  std::map<std::string, PEType> pe_types;
  /// Accelerator device models, keyed by PE type name.
  std::map<std::string, FftAcceleratorModel> accelerators;
  /// Context-switch penalty when two manager threads share a host core.
  SimTime context_switch_ns = 6'000;

  const PEType& pe_type(const std::string& type_name) const;
  bool has_pe_type(const std::string& type_name) const;

  /// Host cores available for PE managers (all but the overlay core).
  std::vector<int> resource_pool_cores() const;

  /// Feeds every timing-relevant platform field (cores, PE types,
  /// accelerator models) into a config hash — part of the sweep journal's
  /// per-point key (exp/journal.hpp).
  void hash_into(ConfigHasher& hasher) const;
};

/// One entry of a DSSoC configuration: `count` PEs of `type_name`.
struct PERequest {
  std::string type_name;
  int count = 0;
};

/// A hypothetical DSSoC configuration ("2C+1F", "3BIG+2LTL", ...).
struct SocConfig {
  std::string label;
  std::vector<PERequest> requests;

  int total_pes() const;

  /// Config-hash contribution (see Platform::hash_into).
  void hash_into(ConfigHasher& hasher) const;
};

/// Builds the concrete PE list for a configuration on a platform, assigning
/// manager host cores per the paper's §II-D placement rule. Throws
/// ConfigError for unknown PE types, zero PEs, or CPU PEs exceeding the
/// resource pool.
std::vector<PE> instantiate_config(const Platform& platform,
                                   const SocConfig& config);

/// Parses "2C+1F" style labels (C = "cpu", F = "fft", BIG/LTL for Odroid),
/// e.g. "2C+1F", "3BIG+2LTL", "1C", "0BIG+3LTL".
SocConfig parse_config_label(const std::string& label);

/// ZCU102: 4x Cortex-A53 (core 0 = overlay) + programmable fabric with two
/// instantiable FFT accelerators.
Platform zcu102();

/// Odroid XU3: 4x A15 (BIG) + 4x A7 (LITTLE); one LITTLE core is the
/// overlay, the pool is 4 BIG + 3 LITTLE.
Platform odroid_xu3();

}  // namespace dssoc::platform
