#include "platform/accelerator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dssoc::platform {

FftAcceleratorDevice::FftAcceleratorDevice(FftAcceleratorModel model)
    : model_(std::move(model)) {
  bram_.resize(model_.max_samples);
}

void FftAcceleratorDevice::dma_in(std::span<const dsp::cfloat> data) {
  if (data.size() > model_.max_samples) {
    throw ConfigError("FFT accelerator BRAM overflow: " +
                      std::to_string(data.size()) + " samples > capacity " +
                      std::to_string(model_.max_samples));
  }
  std::copy(data.begin(), data.end(), bram_.begin());
  valid_ = data.size();
  done_ = false;
}

void FftAcceleratorDevice::start(std::size_t count, bool inverse) {
  DSSOC_REQUIRE(count <= valid_, "accelerator started past the loaded data");
  DSSOC_REQUIRE(dsp::is_power_of_two(count),
                "FFT accelerator requires power-of-two sizes");
  std::span<dsp::cfloat> window(bram_.data(), count);
  if (inverse) {
    dsp::ifft(window);
  } else {
    dsp::fft(window);
  }
  done_ = true;
}

void FftAcceleratorDevice::dma_out(std::span<dsp::cfloat> out) const {
  DSSOC_REQUIRE(out.size() <= valid_, "DMA out larger than the loaded data");
  std::copy_n(bram_.begin(), out.size(), out.begin());
}

}  // namespace dssoc::platform
