#include "platform/platform.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::platform {

const PEType& Platform::pe_type(const std::string& type_name) const {
  const auto it = pe_types.find(type_name);
  if (it == pe_types.end()) {
    throw ConfigError(cat("platform \"", name, "\" has no PE type \"",
                          type_name, "\""));
  }
  return it->second;
}

bool Platform::has_pe_type(const std::string& type_name) const {
  return pe_types.find(type_name) != pe_types.end();
}

std::vector<int> Platform::resource_pool_cores() const {
  std::vector<int> pool;
  for (const HostCore& core : cores) {
    if (core.id != overlay_core) {
      pool.push_back(core.id);
    }
  }
  return pool;
}

int SocConfig::total_pes() const {
  int total = 0;
  for (const PERequest& request : requests) {
    total += request.count;
  }
  return total;
}

void Platform::hash_into(ConfigHasher& hasher) const {
  hasher.str(name)
      .i64(overlay_core)
      .i64(context_switch_ns)
      .u64(cores.size());
  for (const HostCore& core : cores) {
    hasher.i64(core.id)
        .str(core.label)
        .str(core.core_class)
        .f64(core.speed_factor);
  }
  hasher.u64(pe_types.size());
  for (const auto& [type_name, type] : pe_types) {
    hasher.str(type_name)
        .u8(static_cast<std::uint8_t>(type.kind))
        .f64(type.speed_factor)
        .str(type.core_class);
  }
  hasher.u64(accelerators.size());
  for (const auto& [type_name, model] : accelerators) {
    hasher.str(type_name)
        .str(model.pe_type_name)
        .u64(model.max_samples)
        .i64(model.dma.setup_ns)
        .f64(model.dma.bytes_per_us)
        .i64(model.start_ns)
        .f64(model.ns_per_sample)
        .u8(static_cast<std::uint8_t>(model.completion))
        .i64(model.poll_interval_ns);
  }
}

void SocConfig::hash_into(ConfigHasher& hasher) const {
  hasher.str(label).u64(requests.size());
  for (const PERequest& request : requests) {
    hasher.str(request.type_name).i64(request.count);
  }
}

std::vector<PE> instantiate_config(const Platform& platform,
                                   const SocConfig& config) {
  DSSOC_REQUIRE(config.total_pes() > 0,
                "DSSoC configuration needs at least one PE");

  const std::vector<int> pool = platform.resource_pool_cores();
  // Manager-thread occupancy per host core, and whether a CPU PE claimed it.
  std::map<int, int> managers_on_core;
  std::map<int, bool> cpu_pe_on_core;
  for (const int core : pool) {
    managers_on_core[core] = 0;
    cpu_pe_on_core[core] = false;
  }

  std::vector<PE> pes;
  std::map<std::string, int> type_counts;

  // Pass 1: CPU PEs claim dedicated host cores of their core class (§II-D).
  for (const PERequest& request : config.requests) {
    const PEType& type = platform.pe_type(request.type_name);
    DSSOC_REQUIRE(request.count >= 0, "negative PE count");
    if (type.kind != PEKind::kCpu) {
      continue;
    }
    for (int i = 0; i < request.count; ++i) {
      int claimed = -1;
      for (const int core : pool) {
        if (managers_on_core[core] == 0 &&
            platform.cores[static_cast<std::size_t>(core)].core_class ==
                type.core_class) {
          claimed = core;
          break;
        }
      }
      if (claimed < 0) {
        throw ConfigError(cat("configuration \"", config.label, "\" requests ",
                              request.count, " ", type.name,
                              " PEs but the ", platform.name,
                              " resource pool has no free ", type.core_class,
                              " core"));
      }
      managers_on_core[claimed] += 1;
      cpu_pe_on_core[claimed] = true;
      PE pe;
      pe.id = static_cast<int>(pes.size());
      pe.type = type;
      pe.type.speed_factor =
          platform.cores[static_cast<std::size_t>(claimed)].speed_factor;
      const int ordinal = ++type_counts[type.name];
      pe.label = cat(type.name == "cpu" ? "Core" : type.name, ordinal);
      pe.host_core = claimed;
      pes.push_back(std::move(pe));
    }
  }

  // Pass 2: accelerator manager threads fill the least-loaded cores,
  // preferring cores not already running a CPU PE (the paper's observed
  // behaviour: two FFT managers end up sharing the leftover core in 2C+2F).
  for (const PERequest& request : config.requests) {
    const PEType& type = platform.pe_type(request.type_name);
    if (type.kind != PEKind::kAccelerator) {
      continue;
    }
    DSSOC_REQUIRE(platform.accelerators.count(type.name) == 1,
                  cat("platform has no device model for accelerator type \"",
                      type.name, "\""));
    for (int i = 0; i < request.count; ++i) {
      int best = -1;
      for (const int core : pool) {
        if (best < 0) {
          best = core;
          continue;
        }
        const auto rank = [&](int c) {
          return std::make_tuple(managers_on_core[c], cpu_pe_on_core[c], c);
        };
        if (rank(core) < rank(best)) {
          best = core;
        }
      }
      DSSOC_REQUIRE(best >= 0, "platform has an empty resource pool");
      managers_on_core[best] += 1;
      PE pe;
      pe.id = static_cast<int>(pes.size());
      pe.type = type;
      const int ordinal = ++type_counts[type.name];
      pe.label = cat("FFT", ordinal);
      pe.host_core = best;
      pes.push_back(std::move(pe));
    }
  }

  return pes;
}

SocConfig parse_config_label(const std::string& label) {
  SocConfig config;
  config.label = label;
  for (const std::string& raw_part : split(label, '+')) {
    const std::string part{trim(raw_part)};
    DSSOC_REQUIRE(!part.empty(), cat("empty segment in config \"", label, "\""));
    std::size_t digits = 0;
    while (digits < part.size() &&
           std::isdigit(static_cast<unsigned char>(part[digits]))) {
      ++digits;
    }
    DSSOC_REQUIRE(digits > 0 && digits < part.size(),
                  cat("malformed config segment \"", part, "\""));
    const int count = std::stoi(part.substr(0, digits));
    std::string key = part.substr(digits);
    std::transform(key.begin(), key.end(), key.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    std::string type_name;
    if (key == "C" || key == "CPU") {
      type_name = "cpu";
    } else if (key == "F" || key == "FFT") {
      type_name = "fft";
    } else if (key == "BIG" || key == "B") {
      type_name = "big";
    } else if (key == "LTL" || key == "LITTLE" || key == "L") {
      type_name = "little";
    } else {
      throw ConfigError(cat("unknown PE type token \"", key, "\" in config \"",
                            label, "\""));
    }
    config.requests.push_back({type_name, count});
  }
  return config;
}

Platform zcu102() {
  Platform p;
  p.name = "ZCU102";
  for (int i = 0; i < 4; ++i) {
    p.cores.push_back({i, cat("A53-", i), "a53", 1.0});
  }
  p.overlay_core = 0;
  p.pe_types["cpu"] = PEType{"cpu", PEKind::kCpu, 1.0, "a53"};
  p.pe_types["fft"] = PEType{"fft", PEKind::kAccelerator, 1.0, ""};
  FftAcceleratorModel fft_model;
  fft_model.pe_type_name = "fft";
  fft_model.max_samples = 4096;
  fft_model.dma = DmaModel{18'000, 1'000.0};
  fft_model.start_ns = 2'000;
  fft_model.ns_per_sample = 4.0;
  fft_model.completion = CompletionMode::kPolling;
  fft_model.poll_interval_ns = 500;
  p.accelerators["fft"] = fft_model;
  p.context_switch_ns = 6'000;
  return p;
}

Platform odroid_xu3() {
  Platform p;
  p.name = "OdroidXU3";
  // Four performance-oriented A15 cores followed by four efficient A7 cores.
  for (int i = 0; i < 4; ++i) {
    p.cores.push_back({i, cat("A15-", i), "a15", 0.55});
  }
  for (int i = 0; i < 4; ++i) {
    p.cores.push_back({4 + i, cat("A7-", i), "a7", 2.4});
  }
  // One LITTLE core runs the workload manager and application handler.
  p.overlay_core = 4;
  p.pe_types["big"] = PEType{"big", PEKind::kCpu, 0.55, "a15"};
  p.pe_types["little"] = PEType{"little", PEKind::kCpu, 2.4, "a7"};
  p.context_switch_ns = 8'000;
  return p;
}

}  // namespace dssoc::platform
