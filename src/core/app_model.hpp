// Framework-compatible application representation (§II-B of the paper).
//
// An application is (a) a set of named variables with storage requirements
// and initial values, and (b) a DAG of kernel nodes. Each node lists the
// variables it takes as arguments, its predecessors/successors, and the
// "platforms" that can execute it — (PE type, runfunc symbol, optional
// dedicated shared object), exactly the schema of Listing 1.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dssoc::core {

/// Storage requirements and initial value of one application variable.
struct VarSpec {
  std::string name;
  std::size_t bytes = 0;            ///< size of the variable's own storage
  bool is_ptr = false;              ///< variable is a pointer to a heap block
  std::size_t ptr_alloc_bytes = 0;  ///< heap block size when is_ptr
  std::vector<std::uint8_t> init_bytes;  ///< little-endian initializer ("val")
  /// Initial contents of the heap block for pointer variables (extension of
  /// the Listing-1 schema: "heap_val"); the block is zero-filled beyond it.
  std::vector<std::uint8_t> heap_init_bytes;
};

/// One execution option for a DAG node.
struct PlatformOption {
  std::string pe_type;        ///< "cpu", "fft", "big", "little", ...
  std::string runfunc;        ///< symbol looked up in the shared object
  std::string shared_object;  ///< empty = the application's own object
};

/// Cost annotation consumed by the virtual-time engine. Hand-written JSON may
/// omit it; the engine then falls back to the cost model's default task cost.
struct CostAnnotation {
  std::string kernel;  ///< cost-model kernel key ("fft", "viterbi_decode"...)
  double units = 0.0;  ///< pre-scaled work units (see platform::CostModel)
  /// Data-set size in samples; sizes accelerator compute time and DMA
  /// transfers (bytes = samples * sizeof(complex<float>)). 0 = not
  /// accelerator-eligible / unknown.
  double samples = 0.0;
};

/// One node (task archetype) of the application DAG.
struct DagNode {
  std::string name;
  std::vector<std::string> arguments;     ///< variable names, by position
  std::vector<std::string> predecessors;  ///< node names
  std::vector<std::string> successors;    ///< node names
  std::vector<PlatformOption> platforms;
  CostAnnotation cost;
  std::size_t index = 0;  ///< dense index within AppModel::nodes

  // Dense indices resolved by AppModel::finalize() so the per-event paths
  // (successor release on completion, kernel argument binding) never repeat
  // a string-keyed map lookup at emulation time.
  std::vector<std::size_t> successor_indices;  ///< parallel to successors
  std::vector<std::size_t> argument_indices;   ///< parallel to arguments
};

/// Archetypal application: parsed once, instantiated many times.
class AppModel {
 public:
  std::string name;
  std::string shared_object;
  std::vector<VarSpec> variables;
  std::vector<DagNode> nodes;

  /// Rebuilds the name->index maps and checks structural invariants:
  /// unique names, known argument variables, known and symmetric
  /// predecessor/successor references, at least one platform per node, and
  /// acyclicity. Throws DssocError on violations.
  void finalize();

  const DagNode& node(const std::string& node_name) const;
  const VarSpec& variable(const std::string& var_name) const;
  bool has_node(const std::string& node_name) const;
  bool has_variable(const std::string& var_name) const;

  /// Indices of nodes with no predecessors (the DAG's entry tasks).
  std::vector<std::size_t> head_nodes() const;

  /// A topological order of node indices (valid after finalize()).
  std::vector<std::size_t> topological_order() const;

  std::size_t node_index(const std::string& node_name) const;
  std::size_t variable_index(const std::string& var_name) const;

 private:
  std::map<std::string, std::size_t> node_index_;
  std::map<std::string, std::size_t> var_index_;
};

/// Convenience builder for programmatic application construction (the
/// "link existing kernels together in a novel way" integration path).
class AppBuilder {
 public:
  explicit AppBuilder(std::string app_name, std::string shared_object = "");

  AppBuilder& scalar_u32(const std::string& name, std::uint32_t value);
  AppBuilder& scalar_f32(const std::string& name, float value);
  /// Pointer variable backed by a zero-initialized heap block.
  AppBuilder& buffer(const std::string& name, std::size_t alloc_bytes);

  /// Pointer variable whose heap block starts with `init` bytes (zero-filled
  /// beyond them). alloc_bytes must be >= init.size().
  AppBuilder& buffer_init(const std::string& name, std::size_t alloc_bytes,
                          std::vector<std::uint8_t> init);

  /// Adds a node; successors are derived from other nodes' predecessors at
  /// build() time, so only predecessors need listing.
  AppBuilder& node(const std::string& name,
                   std::vector<std::string> arguments,
                   std::vector<std::string> predecessors,
                   std::vector<PlatformOption> platforms,
                   CostAnnotation cost = {});

  /// Finalizes and returns the model. Throws on structural errors.
  AppModel build();

 private:
  AppModel model_;
};

}  // namespace dssoc::core
