#include "core/resource_handler.hpp"

#include "common/error.hpp"

namespace dssoc::core {

ResourceHandler::ResourceHandler(platform::PE pe, int queue_depth)
    : pe_(std::move(pe)), queue_depth_(queue_depth) {
  DSSOC_REQUIRE(queue_depth_ >= 1, "reservation queue depth must be >= 1");
}

PEStatus ResourceHandler::status() const {
  std::scoped_lock lock(mutex_);
  return status_;
}

bool ResourceHandler::can_accept() const {
  std::scoped_lock lock(mutex_);
  return queue_.size() < static_cast<std::size_t>(queue_depth_);
}

std::size_t ResourceHandler::load() const {
  std::scoped_lock lock(mutex_);
  return queue_.size();
}

void ResourceHandler::assign(TaskInstance* task,
                             const PlatformOption* platform,
                             SimTime dispatch_time) {
  DSSOC_ASSERT(task != nullptr && platform != nullptr);
  {
    std::scoped_lock lock(mutex_);
    DSSOC_ASSERT_MSG(queue_.size() < static_cast<std::size_t>(queue_depth_),
                     "PE assigned beyond its reservation queue depth");
    queue_.push_back({task, platform});
    if (status_ == PEStatus::kIdle) {
      status_ = PEStatus::kRun;
    }
    task->state = TaskState::kAssigned;
    task->dispatch_time = dispatch_time;
  }
  cv_.notify_all();
}

Assignment ResourceHandler::collect_completed() {
  std::scoped_lock lock(mutex_);
  if (status_ != PEStatus::kComplete) {
    return {};
  }
  DSSOC_ASSERT(!completed_.empty());
  const Assignment finished = completed_.front();
  completed_.erase(completed_.begin());
  if (!completed_.empty()) {
    // More finished work awaits collection on a deeper reservation queue.
    status_ = PEStatus::kComplete;
  } else {
    status_ = queue_.empty() ? PEStatus::kIdle : PEStatus::kRun;
  }
  return finished;
}

Assignment ResourceHandler::wait_for_assignment(
    const std::atomic<bool>& stop) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return stop.load() || !queue_.empty(); });
  if (queue_.empty()) {
    return {};
  }
  return queue_.front();
}

Assignment ResourceHandler::peek_assignment() const {
  std::scoped_lock lock(mutex_);
  return queue_.empty() ? Assignment{} : queue_.front();
}

void ResourceHandler::mark_complete() {
  {
    std::scoped_lock lock(mutex_);
    DSSOC_ASSERT_MSG(!queue_.empty(), "completion with no running task");
    completed_.push_back(queue_.front());
    queue_.erase(queue_.begin());
    status_ = PEStatus::kComplete;
  }
  cv_.notify_all();
}

void ResourceHandler::notify_all() { cv_.notify_all(); }

}  // namespace dssoc::core
