#include "core/resource_handler.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::core {

ResourceHandler::ResourceHandler(platform::PE pe, int queue_depth)
    : pe_(std::move(pe)), queue_depth_(queue_depth) {
  DSSOC_REQUIRE(queue_depth_ >= 1, "reservation queue depth must be >= 1");
}

PEStatus ResourceHandler::status() const {
  std::scoped_lock lock(mutex_);
  return status_;
}

bool ResourceHandler::can_accept() const {
  std::scoped_lock lock(mutex_);
  return queue_.size() < static_cast<std::size_t>(queue_depth_);
}

std::size_t ResourceHandler::load() const {
  std::scoped_lock lock(mutex_);
  return queue_.size();
}

void ResourceHandler::assign(TaskInstance* task,
                             const PlatformOption* platform,
                             SimTime dispatch_time) {
  DSSOC_ASSERT(task != nullptr && platform != nullptr);
  {
    std::scoped_lock lock(mutex_);
    DSSOC_ASSERT_MSG(queue_.size() < static_cast<std::size_t>(queue_depth_),
                     "PE assigned beyond its reservation queue depth");
    queue_.push_back({task, platform});
    if (status_ == PEStatus::kIdle) {
      status_ = PEStatus::kRun;
    }
    task->state = TaskState::kAssigned;
    task->dispatch_time = dispatch_time;
  }
  cv_.notify_all();
}

Assignment ResourceHandler::collect_completed() {
  std::scoped_lock lock(mutex_);
  if (status_ != PEStatus::kComplete) {
    return {};
  }
  DSSOC_ASSERT(!completed_.empty());
  const Assignment finished = completed_.front();
  completed_.erase(completed_.begin());
  if (!completed_.empty()) {
    // More finished work awaits collection on a deeper reservation queue.
    status_ = PEStatus::kComplete;
  } else {
    status_ = queue_.empty() ? PEStatus::kIdle : PEStatus::kRun;
  }
  return finished;
}

Assignment ResourceHandler::wait_for_assignment(
    const std::atomic<bool>& stop) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return stop.load() || !queue_.empty(); });
  if (queue_.empty()) {
    return {};
  }
  return queue_.front();
}

Assignment ResourceHandler::peek_assignment() const {
  std::scoped_lock lock(mutex_);
  return queue_.empty() ? Assignment{} : queue_.front();
}

void ResourceHandler::snapshot_queue(std::vector<Assignment>& out) const {
  std::scoped_lock lock(mutex_);
  for (const Assignment& assignment : queue_) {
    out.push_back(assignment);
  }
}

void ResourceHandler::mark_complete() {
  {
    std::scoped_lock lock(mutex_);
    DSSOC_ASSERT_MSG(!queue_.empty(), "completion with no running task");
    completed_.push_back(queue_.front());
    queue_.erase(queue_.begin());
    status_ = PEStatus::kComplete;
  }
  cv_.notify_all();
}

void ResourceHandler::notify_all() { cv_.notify_all(); }

void ResourceHandler::save(StateWriter& out, const TaskCodec& codec) const {
  std::scoped_lock lock(mutex_);
  out.u8(static_cast<std::uint8_t>(status_));
  out.u64(queue_.size());
  for (const Assignment& assignment : queue_) {
    save_assignment(out, assignment, codec);
  }
  out.u64(completed_.size());
  for (const Assignment& assignment : completed_) {
    save_assignment(out, assignment, codec);
  }
}

void ResourceHandler::load(StateReader& in, const TaskCodec& codec) {
  std::scoped_lock lock(mutex_);
  const std::uint8_t status = in.u8();
  if (status > static_cast<std::uint8_t>(PEStatus::kComplete)) {
    throw StateError(cat("snapshot PE status ", status, " out of range"));
  }
  status_ = static_cast<PEStatus>(status);
  queue_.clear();
  const std::uint64_t queued = in.u64();
  for (std::uint64_t i = 0; i < queued; ++i) {
    queue_.push_back(load_assignment(in, codec));
  }
  completed_.clear();
  const std::uint64_t done = in.u64();
  for (std::uint64_t i = 0; i < done; ++i) {
    completed_.push_back(load_assignment(in, codec));
  }
}

}  // namespace dssoc::core
