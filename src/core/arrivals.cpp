#include "core/arrivals.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/state_io.hpp"
#include "common/strings.hpp"

namespace dssoc::core {

namespace {

// --- spec parsing -----------------------------------------------------------

/// One ';'-separated app clause, parsed into key=value fields in spec order.
struct Clause {
  std::string raw;
  std::vector<std::pair<std::string, std::string>> fields;

  const std::string* find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

[[noreturn]] void spec_error(const std::string& spec,
                             const std::string& message) {
  throw ConfigError(cat("arrival spec \"", spec, "\": ", message));
}

/// Splits "<body>" into clauses. Empty clauses (trailing ';') are skipped;
/// an empty body yields no clauses (an empty workload — the legacy
/// make_performance_workload({}) behaviour).
std::vector<Clause> parse_clauses(const std::string& spec,
                                  const std::string& body,
                                  const std::vector<std::string>& known_keys) {
  std::vector<Clause> clauses;
  for (const std::string& part : split(body, ';')) {
    if (part.empty()) {
      continue;
    }
    Clause clause;
    clause.raw = part;
    for (const std::string& field : split(part, ',')) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos || eq == 0) {
        spec_error(spec, cat("field \"", field, "\" is not key=value"));
      }
      std::string key = field.substr(0, eq);
      if (std::find(known_keys.begin(), known_keys.end(), key) ==
          known_keys.end()) {
        std::string known;
        for (const std::string& k : known_keys) {
          known += known.empty() ? k : ", " + k;
        }
        spec_error(spec, cat("unknown key \"", key, "\" (known: ", known,
                             ")"));
      }
      if (clause.find(key) != nullptr) {
        spec_error(spec, cat("duplicate key \"", key, "\" in clause \"",
                             part, "\""));
      }
      clause.fields.emplace_back(std::move(key), field.substr(eq + 1));
    }
    if (clause.find("app") == nullptr) {
      spec_error(spec, cat("clause \"", part, "\" has no app=<name>"));
    }
    clauses.push_back(std::move(clause));
  }
  return clauses;
}

std::string require_app(const std::string& spec, const Clause& clause) {
  const std::string& app = *clause.find("app");
  if (app.empty()) {
    spec_error(spec, "empty application name");
  }
  return app;
}

std::int64_t parse_int(const std::string& spec, const std::string& key,
                       const std::string& value) {
  try {
    std::size_t consumed = 0;
    const long long parsed = std::stoll(value, &consumed);
    if (consumed != value.size()) {
      throw std::invalid_argument(value);
    }
    return parsed;
  } catch (const std::exception&) {
    spec_error(spec, cat(key, "=", value, " is not an integer"));
  }
}

double parse_real(const std::string& spec, const std::string& key,
                  const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) {
      throw std::invalid_argument(value);
    }
    return parsed;
  } catch (const std::exception&) {
    spec_error(spec, cat(key, "=", value, " is not a number"));
  }
}

SimTime parse_deadline(const std::string& spec, const Clause& clause) {
  const std::string* value = clause.find("deadline_ns");
  if (value == nullptr) {
    return 0;
  }
  const std::int64_t deadline = parse_int(spec, "deadline_ns", *value);
  if (deadline < 0) {
    spec_error(spec, cat("deadline_ns=", deadline, " is negative"));
  }
  return deadline;
}

/// Strips "arrivals:<name>:" and returns the body; create() has already
/// validated the prefix and name.
std::string spec_body(const std::string& spec) {
  const std::size_t first = spec.find(':');
  const std::size_t second = spec.find(':', first + 1);
  return second == std::string::npos ? std::string()
                                     : spec.substr(second + 1);
}

constexpr double kNsPerMs = 1e6;

// --- built-in processes -----------------------------------------------------

/// The legacy performance-mode generator behind "arrivals:periodic". The
/// attempt loop and its RNG consumption order are the pre-registry
/// make_performance_workload body verbatim — the bit-identity contract
/// pinned by tests/arrivals_test.cpp and the CI slo-smoke digest check.
class PeriodicProcess final : public ArrivalProcess {
 public:
  PeriodicProcess(std::string spec, std::vector<InjectionSpec> specs)
      : ArrivalProcess(std::move(spec)), specs_(std::move(specs)) {}

  Workload generate(SimTime time_frame, Rng& rng) const override {
    DSSOC_REQUIRE(time_frame > 0, "performance mode needs a time frame");
    std::vector<WorkloadEntry> entries;
    for (const InjectionSpec& spec : specs_) {
      for (SimTime t = 0; t < time_frame; t += spec.period) {
        if (spec.probability >= 1.0 || rng.bernoulli(spec.probability)) {
          entries.push_back({spec.app_name, t, spec.deadline});
        }
      }
    }
    return finish_trace(std::move(entries));
  }

 private:
  std::vector<InjectionSpec> specs_;
};

class ValidationProcess final : public ArrivalProcess {
 public:
  struct App {
    std::string name;
    std::size_t count = 0;
    SimTime deadline = 0;
  };

  ValidationProcess(std::string spec, std::vector<App> apps)
      : ArrivalProcess(std::move(spec)), apps_(std::move(apps)) {}

  Workload generate(SimTime time_frame, Rng& rng) const override {
    (void)time_frame;  // every arrival is at t = 0
    (void)rng;         // deterministic
    std::vector<WorkloadEntry> entries;
    for (const App& app : apps_) {
      for (std::size_t i = 0; i < app.count; ++i) {
        entries.push_back({app.name, 0, app.deadline});
      }
    }
    return finish_trace(std::move(entries));
  }

 private:
  std::vector<App> apps_;
};

class PoissonProcess final : public ArrivalProcess {
 public:
  struct App {
    std::string name;
    double rate_per_ns = 0.0;
    SimTime deadline = 0;
  };

  PoissonProcess(std::string spec, std::vector<App> apps)
      : ArrivalProcess(std::move(spec)), apps_(std::move(apps)) {}

  Workload generate(SimTime time_frame, Rng& rng) const override {
    DSSOC_REQUIRE(time_frame > 0, "poisson arrivals need a time frame");
    std::vector<WorkloadEntry> entries;
    const double frame = static_cast<double>(time_frame);
    for (const App& app : apps_) {
      double t = 0.0;
      for (;;) {
        t += rng.exponential(app.rate_per_ns);
        if (!(t < frame)) {
          break;
        }
        entries.push_back({app.name, static_cast<SimTime>(t), app.deadline});
      }
    }
    return finish_trace(std::move(entries));
  }

 private:
  std::vector<App> apps_;
};

class MmppProcess final : public ArrivalProcess {
 public:
  struct App {
    std::string name;
    std::vector<double> rates_per_ns;  ///< modulating states, cycled
    double mean_dwell_ns = 0.0;
    SimTime deadline = 0;
  };

  MmppProcess(std::string spec, std::vector<App> apps)
      : ArrivalProcess(std::move(spec)), apps_(std::move(apps)) {}

  Workload generate(SimTime time_frame, Rng& rng) const override {
    DSSOC_REQUIRE(time_frame > 0, "mmpp arrivals need a time frame");
    std::vector<WorkloadEntry> entries;
    const double frame = static_cast<double>(time_frame);
    for (const App& app : apps_) {
      // The modulating chain cycles its states round-robin with Exp(1/M)
      // dwell times; within a dwell the source is plain Poisson at that
      // state's rate (rate 0 = a silent off state).
      std::size_t state = 0;
      double t = 0.0;
      while (t < frame) {
        const double dwell = rng.exponential(1.0 / app.mean_dwell_ns);
        const double segment_end = std::min(t + dwell, frame);
        const double rate = app.rates_per_ns[state];
        if (rate > 0.0) {
          double a = t;
          for (;;) {
            a += rng.exponential(rate);
            if (!(a < segment_end)) {
              break;
            }
            entries.push_back(
                {app.name, static_cast<SimTime>(a), app.deadline});
          }
        }
        t += dwell;
        state = (state + 1) % app.rates_per_ns.size();
      }
    }
    return finish_trace(std::move(entries));
  }

 private:
  std::vector<App> apps_;
};

class RampProcess final : public ArrivalProcess {
 public:
  struct App {
    std::string name;
    double start_rate_per_ns = 0.0;
    double end_rate_per_ns = 0.0;
    SimTime deadline = 0;
  };

  RampProcess(std::string spec, std::vector<App> apps)
      : ArrivalProcess(std::move(spec)), apps_(std::move(apps)) {}

  Workload generate(SimTime time_frame, Rng& rng) const override {
    DSSOC_REQUIRE(time_frame > 0, "ramp arrivals need a time frame");
    std::vector<WorkloadEntry> entries;
    const double frame = static_cast<double>(time_frame);
    for (const App& app : apps_) {
      // Thinning (Lewis-Shedler): candidates at the peak rate, each kept
      // with probability rate(t)/peak. RNG order per candidate: one
      // exponential gap, then one bernoulli.
      const double peak =
          std::max(app.start_rate_per_ns, app.end_rate_per_ns);
      double t = 0.0;
      for (;;) {
        t += rng.exponential(peak);
        if (!(t < frame)) {
          break;
        }
        const double rate =
            app.start_rate_per_ns +
            (app.end_rate_per_ns - app.start_rate_per_ns) * (t / frame);
        if (rng.bernoulli(rate / peak)) {
          entries.push_back({app.name, static_cast<SimTime>(t), app.deadline});
        }
      }
    }
    return finish_trace(std::move(entries));
  }

 private:
  std::vector<App> apps_;
};

class TraceProcess final : public ArrivalProcess {
 public:
  /// Loads eagerly so a bad path or corrupt file fails at create() time
  /// (where the spec is being resolved), not mid-sweep.
  TraceProcess(std::string spec, std::string path)
      : ArrivalProcess(std::move(spec)), workload_(read_arrival_trace(path)) {
  }

  Workload generate(SimTime time_frame, Rng& rng) const override {
    (void)time_frame;  // the trace defines its own span
    (void)rng;         // replay is deterministic by construction
    Workload copy = workload_;
    copy.source_spec = spec();  // replayed trace, not the recorded origin
    return copy;
  }

 private:
  Workload workload_;
};

// --- factories --------------------------------------------------------------

std::unique_ptr<ArrivalProcess> make_periodic(const std::string& spec) {
  std::vector<InjectionSpec> specs;
  for (const Clause& clause : parse_clauses(
           spec, spec_body(spec),
           {"app", "period_ns", "prob", "deadline_ns"})) {
    InjectionSpec parsed;
    parsed.app_name = require_app(spec, clause);
    const std::string* period = clause.find("period_ns");
    if (period == nullptr) {
      spec_error(spec, cat("clause \"", clause.raw, "\" has no period_ns"));
    }
    parsed.period = parse_int(spec, "period_ns", *period);
    if (parsed.period <= 0) {
      spec_error(spec, cat("injection period must be positive for ",
                           parsed.app_name));
    }
    if (const std::string* prob = clause.find("prob")) {
      parsed.probability = parse_real(spec, "prob", *prob);
      if (parsed.probability < 0.0 || parsed.probability > 1.0) {
        spec_error(spec, "injection probability outside [0, 1]");
      }
    }
    parsed.deadline = parse_deadline(spec, clause);
    specs.push_back(std::move(parsed));
  }
  return std::make_unique<PeriodicProcess>(spec, std::move(specs));
}

std::unique_ptr<ArrivalProcess> make_validation(const std::string& spec) {
  std::vector<ValidationProcess::App> apps;
  for (const Clause& clause : parse_clauses(
           spec, spec_body(spec), {"app", "count", "deadline_ns"})) {
    ValidationProcess::App app;
    app.name = require_app(spec, clause);
    const std::string* count = clause.find("count");
    if (count == nullptr) {
      spec_error(spec, cat("clause \"", clause.raw, "\" has no count"));
    }
    const std::int64_t parsed = parse_int(spec, "count", *count);
    if (parsed < 0) {
      spec_error(spec, cat("negative instance count for ", app.name));
    }
    app.count = static_cast<std::size_t>(parsed);
    app.deadline = parse_deadline(spec, clause);
    apps.push_back(std::move(app));
  }
  return std::make_unique<ValidationProcess>(spec, std::move(apps));
}

std::unique_ptr<ArrivalProcess> make_poisson(const std::string& spec) {
  std::vector<PoissonProcess::App> apps;
  for (const Clause& clause : parse_clauses(
           spec, spec_body(spec), {"app", "rate_per_ms", "deadline_ns"})) {
    PoissonProcess::App app;
    app.name = require_app(spec, clause);
    const std::string* rate = clause.find("rate_per_ms");
    if (rate == nullptr) {
      spec_error(spec, cat("clause \"", clause.raw, "\" has no rate_per_ms"));
    }
    const double per_ms = parse_real(spec, "rate_per_ms", *rate);
    if (!(per_ms > 0.0)) {
      spec_error(spec, cat("rate_per_ms must be positive for ", app.name));
    }
    app.rate_per_ns = per_ms / kNsPerMs;
    app.deadline = parse_deadline(spec, clause);
    apps.push_back(std::move(app));
  }
  return std::make_unique<PoissonProcess>(spec, std::move(apps));
}

std::unique_ptr<ArrivalProcess> make_mmpp(const std::string& spec) {
  std::vector<MmppProcess::App> apps;
  for (const Clause& clause : parse_clauses(
           spec, spec_body(spec),
           {"app", "rates_per_ms", "mean_dwell_ms", "deadline_ns"})) {
    MmppProcess::App app;
    app.name = require_app(spec, clause);
    const std::string* rates = clause.find("rates_per_ms");
    if (rates == nullptr) {
      spec_error(spec,
                 cat("clause \"", clause.raw, "\" has no rates_per_ms"));
    }
    bool any_positive = false;
    for (const std::string& state : split(*rates, '/')) {
      const double per_ms = parse_real(spec, "rates_per_ms", state);
      if (per_ms < 0.0) {
        spec_error(spec, cat("negative rate state for ", app.name));
      }
      any_positive = any_positive || per_ms > 0.0;
      app.rates_per_ns.push_back(per_ms / kNsPerMs);
    }
    if (!any_positive) {
      spec_error(spec, cat("every rate state is zero for ", app.name));
    }
    const std::string* dwell = clause.find("mean_dwell_ms");
    if (dwell == nullptr) {
      spec_error(spec,
                 cat("clause \"", clause.raw, "\" has no mean_dwell_ms"));
    }
    const double dwell_ms = parse_real(spec, "mean_dwell_ms", *dwell);
    if (!(dwell_ms > 0.0)) {
      spec_error(spec, cat("mean_dwell_ms must be positive for ", app.name));
    }
    app.mean_dwell_ns = dwell_ms * kNsPerMs;
    app.deadline = parse_deadline(spec, clause);
    apps.push_back(std::move(app));
  }
  return std::make_unique<MmppProcess>(spec, std::move(apps));
}

std::unique_ptr<ArrivalProcess> make_ramp(const std::string& spec) {
  std::vector<RampProcess::App> apps;
  for (const Clause& clause : parse_clauses(
           spec, spec_body(spec),
           {"app", "start_rate_per_ms", "end_rate_per_ms", "deadline_ns"})) {
    RampProcess::App app;
    app.name = require_app(spec, clause);
    const std::string* start = clause.find("start_rate_per_ms");
    const std::string* end = clause.find("end_rate_per_ms");
    if (start == nullptr || end == nullptr) {
      spec_error(spec, cat("clause \"", clause.raw,
                           "\" needs start_rate_per_ms and end_rate_per_ms"));
    }
    const double start_ms = parse_real(spec, "start_rate_per_ms", *start);
    const double end_ms = parse_real(spec, "end_rate_per_ms", *end);
    if (start_ms < 0.0 || end_ms < 0.0) {
      spec_error(spec, cat("negative ramp rate for ", app.name));
    }
    if (!(std::max(start_ms, end_ms) > 0.0)) {
      spec_error(spec, cat("ramp rates are both zero for ", app.name));
    }
    app.start_rate_per_ns = start_ms / kNsPerMs;
    app.end_rate_per_ns = end_ms / kNsPerMs;
    app.deadline = parse_deadline(spec, clause);
    apps.push_back(std::move(app));
  }
  return std::make_unique<RampProcess>(spec, std::move(apps));
}

std::unique_ptr<ArrivalProcess> make_trace(const std::string& spec) {
  const std::string path = spec_body(spec);
  if (path.empty()) {
    throw ConfigError(
        cat("arrival spec \"", spec, "\": trace needs a file path "
            "(arrivals:trace:<path>)"));
  }
  return std::make_unique<TraceProcess>(spec, path);
}

/// Validates a name used inside a spec the wrappers assemble: the grammar's
/// delimiters must not appear, or the round trip through create() would
/// re-split differently.
void require_spec_safe_name(const std::string& app_name) {
  DSSOC_REQUIRE(!app_name.empty() &&
                    app_name.find_first_of(";,=:") == std::string::npos,
                cat("application name \"", app_name,
                    "\" cannot be used in an arrival spec (empty or "
                    "contains one of ';,=:')"));
}

// --- trace file layout ------------------------------------------------------

constexpr std::uint32_t kTraceKind = state_tag('D', 'S', 'A', 'T');
constexpr std::uint32_t kTraceSection = state_tag('A', 'T', 'R', 'C');

}  // namespace

Workload ArrivalProcess::finish_trace(
    std::vector<WorkloadEntry> entries) const {
  Workload workload;
  workload.entries = std::move(entries);
  std::stable_sort(workload.entries.begin(), workload.entries.end(),
                   [](const WorkloadEntry& a, const WorkloadEntry& b) {
                     return a.arrival < b.arrival;
                   });
  workload.source_spec = spec_;
  return workload;
}

ArrivalRegistry& ArrivalRegistry::instance() {
  static ArrivalRegistry registry = [] {
    ArrivalRegistry r;
    r.register_process("periodic", make_periodic);
    r.register_process("validation", make_validation);
    r.register_process("poisson", make_poisson);
    r.register_process("mmpp", make_mmpp);
    r.register_process("ramp", make_ramp);
    r.register_process("trace", make_trace);
    return r;
  }();
  return registry;
}

void ArrivalRegistry::register_process(const std::string& name,
                                       SpecFactory factory) {
  DSSOC_REQUIRE(factory != nullptr, "null arrival-process factory");
  DSSOC_REQUIRE(!name.empty() && name.find(':') == std::string::npos,
                cat("arrival process name \"", name,
                    "\" must be non-empty and contain no ':'"));
  factories_[name] = std::move(factory);
}

namespace {

constexpr std::string_view kArrivalsPrefix = "arrivals:";

/// The process name of a full spec, or "" when the spec has no
/// "arrivals:<name>" shape at all.
std::string process_name_of(const std::string& spec) {
  if (!starts_with(spec, kArrivalsPrefix)) {
    return std::string();
  }
  const std::size_t start = kArrivalsPrefix.size();
  const std::size_t colon = spec.find(':', start);
  return colon == std::string::npos ? spec.substr(start)
                                    : spec.substr(start, colon - start);
}

}  // namespace

bool ArrivalRegistry::has_process(const std::string& spec) const {
  const std::string name = process_name_of(spec);
  return !name.empty() && factories_.count(name) == 1;
}

std::unique_ptr<ArrivalProcess> ArrivalRegistry::create(
    const std::string& spec) const {
  const std::string name = process_name_of(spec);
  const auto it = factories_.find(name);
  if (!name.empty() && it != factories_.end()) {
    return it->second(spec);
  }
  std::string known;
  for (const auto& [known_name, factory] : factories_) {
    known += (known.empty() ? "" : ", ") + cat("arrivals:", known_name,
                                               ":<spec>");
  }
  throw ConfigError(cat("unknown arrival process \"", spec, "\" (known: ",
                        known, ")"));
}

std::vector<std::string> ArrivalRegistry::process_names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

std::string periodic_arrival_spec(const std::vector<InjectionSpec>& specs) {
  std::string spec = "arrivals:periodic:";
  for (const InjectionSpec& injection : specs) {
    require_spec_safe_name(injection.app_name);
    spec += cat("app=", injection.app_name, ",period_ns=", injection.period);
    // prob=1 is the parser default; anything else (including out-of-range
    // values, which the factory rejects) must travel in the spec.
    if (injection.probability != 1.0) {
      spec += cat(",prob=", format_double_roundtrip(injection.probability));
    }
    if (injection.deadline != 0) {
      spec += cat(",deadline_ns=", injection.deadline);
    }
    spec += ';';
  }
  return spec;
}

std::string validation_arrival_spec(
    const std::vector<std::pair<std::string, int>>& instances) {
  std::string spec = "arrivals:validation:";
  for (const auto& [app_name, count] : instances) {
    require_spec_safe_name(app_name);
    spec += cat("app=", app_name, ",count=", count, ";");
  }
  return spec;
}

void write_arrival_trace(const std::string& path, const Workload& workload) {
  StateWriter out(kTraceKind);
  out.begin_section(kTraceSection);
  out.str(workload.source_spec);
  out.u64(workload.entries.size());
  for (const WorkloadEntry& entry : workload.entries) {
    out.str(entry.app_name);
    out.i64(entry.arrival);
    out.i64(entry.deadline);
  }
  out.end_section();
  const std::vector<std::uint8_t> bytes = out.take();
  write_file_atomic(path, bytes.data(), bytes.size());
}

Workload read_arrival_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ConfigError(cat("cannot open arrival trace \"", path, "\""));
  }
  const std::vector<std::uint8_t> data(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  StateReader reader(data.data(), data.size(), kTraceKind);
  reader.begin_section(kTraceSection);
  Workload workload;
  workload.source_spec = reader.str();
  const std::uint64_t count = reader.u64();
  workload.entries.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    WorkloadEntry entry;
    entry.app_name = reader.str();
    entry.arrival = reader.i64();
    entry.deadline = reader.i64();
    workload.entries.push_back(std::move(entry));
  }
  reader.end_section();
  return workload;
}

}  // namespace dssoc::core
