// Real-time engine: the direct port of the paper's runtime.
//
// One POSIX thread per PE resource manager plus the caller's thread acting
// as the overlay processor (application handler + workload manager). The
// ResourceHandler idle/run/complete protocol, kernel execution, accelerator
// DMA staging and the workload-manager loop of Fig. 3 all run for real;
// timing comes from the wall clock. On hosts with fewer cores than the
// emulated platform the *absolute* numbers compress (threads time-share),
// which is why figure reproduction uses the virtual engine — this engine's
// job is functional verification under genuine concurrency.
//
// Like the virtual-time engine, the steady state avoids per-event heap
// traffic: schedulers resolve platform options through the same interned
// core::OptionLookup table (built once at init, read-only afterwards, so
// manager threads share it without locking), runfuncs are resolved at init
// instead of per task, and application instances recycle through an
// AppInstancePool.
#include <pthread.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"
#include "core/emulation.hpp"
#include "core/scheduler.hpp"

namespace dssoc::core {

namespace {

/// Accelerator access with real data movement plus modelled device latency
/// (the manager thread sleeps while the "fabric" computes, as in §II-D).
class RealAcceleratorPort final : public AcceleratorPort {
 public:
  RealAcceleratorPort(platform::FftAcceleratorDevice& device, bool sleep)
      : device_(device), sleep_(sleep) {}

  void fft(std::span<dsp::cfloat> data, bool inverse) override {
    const std::size_t bytes = data.size() * sizeof(dsp::cfloat);
    device_.dma_in(data);
    model_sleep(device_.model().dma.transfer_time(bytes));
    device_.start(data.size(), inverse);
    model_sleep(device_.model().compute_time(data.size()));
    device_.dma_out(data);
    model_sleep(device_.model().dma.transfer_time(bytes));
  }

 private:
  void model_sleep(SimTime ns) const {
    if (sleep_ && ns > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    }
  }

  platform::FftAcceleratorDevice& device_;
  bool sleep_;
};

/// Cost-model execution estimator for MET/EFT in the real-time engine.
class RtEstimator final : public ExecutionEstimator {
 public:
  RtEstimator(const EmulationSetup& setup,
              const std::map<std::string, const platform::FftAcceleratorModel*>&
                  accel_models)
      : setup_(setup), accel_models_(accel_models) {}

  SimTime estimate(const TaskInstance& task, const PlatformOption& option,
                   const ResourceHandler& handler) const override {
    (void)option;
    const platform::PE& pe = handler.pe();
    const CostAnnotation& cost = task.node->cost;
    if (pe.type.kind == platform::PEKind::kCpu) {
      return setup_.cost_model.cpu_cost(cost.kernel, cost.units,
                                        pe.type.speed_factor);
    }
    const auto it = accel_models_.find(pe.type.name);
    DSSOC_ASSERT(it != accel_models_.end());
    const auto samples = static_cast<std::size_t>(
        cost.samples > 0.0 ? cost.samples : cost.units);
    return it->second->round_trip_time(samples);
  }

  SimTime available_at(const ResourceHandler& handler) const override {
    // The real engine has no oracle; a busy PE is modelled as "free soon".
    return handler.status() == PEStatus::kIdle ? 0 : kSimTimeNever / 2;
  }

 private:
  const EmulationSetup& setup_;
  const std::map<std::string, const platform::FftAcceleratorModel*>&
      accel_models_;
};

void try_set_affinity(std::thread& thread, int host_core) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    return;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(host_core) % hw, &set);
  // Best effort: affinity is an optimization on multi-core hosts.
  (void)pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
}

struct RtPE {
  std::unique_ptr<ResourceHandler> handler;
  std::unique_ptr<platform::FftAcceleratorDevice> device;
  std::unique_ptr<RealAcceleratorPort> port;
  std::thread thread;
  std::atomic<SimTime> busy_accum{0};
  std::atomic<std::size_t> tasks_done{0};
};

EmulationStats run_realtime_impl(const EmulationSetup& setup,
                                 const Workload& workload,
                                 AppInstancePool* external_pool,
                                 const EngineSnapshot* resume_from) {
  DSSOC_REQUIRE(setup.platform != nullptr, "setup lacks a platform");
  DSSOC_REQUIRE(setup.apps != nullptr, "setup lacks an app library");
  DSSOC_REQUIRE(setup.registry != nullptr,
                "setup lacks a shared-object registry");

  auto scheduler = SchedulerRegistry::instance().create(
      setup.options.scheduler);
  Rng rng(setup.options.seed);

  std::unique_ptr<AppInstancePool> owned_pool;
  AppInstancePool* pool = external_pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<AppInstancePool>();
    pool = owned_pool.get();
  }

  const auto pes = platform::instantiate_config(*setup.platform, setup.soc);
  std::map<std::string, const platform::FftAcceleratorModel*> accel_models;
  for (const auto& [name, model] : setup.platform->accelerators) {
    accel_models.emplace(name, &model);
  }

  // Initialization phase: resolve applications, platform options, costs and
  // runfunc symbols up front (OptionLookup::intern is the parse-time symbol
  // lookup analogue). Instances themselves are acquired from the pool at
  // injection and recycled at completion. The lookup table is immutable
  // after this point, so resource-manager threads read it without locking.
  OptionLookup lookup;
  for (const platform::PE& pe : pes) {
    lookup.add_pe(pe);
  }
  std::vector<const AppModel*> entry_models;
  entry_models.reserve(workload.entries.size());
  std::size_t total_tasks = 0;
  for (const WorkloadEntry& entry : workload.entries) {
    const AppModel& model = setup.apps->get(entry.app_name);
    lookup.add_model(model);
    entry_models.push_back(&model);
    total_tasks += model.nodes.size();
  }
  lookup.intern(setup.cost_model, setup.registry);

  EmulationStats stats;
  stats.config_label = setup.soc.label;
  stats.scheduler_name = scheduler->name();
  if (workload.entries.empty()) {
    if (resume_from != nullptr) {
      throw StateError("resume requested but the workload is empty");
    }
    return stats;
  }
  stats.tasks.reserve(total_tasks);
  stats.apps.reserve(workload.entries.size());

  std::vector<std::unique_ptr<RtPE>> rt_pes;
  for (const platform::PE& pe : pes) {
    auto rt = std::make_unique<RtPE>();
    rt->handler = std::make_unique<ResourceHandler>(
        pe, setup.options.pe_queue_depth);
    if (pe.type.kind == platform::PEKind::kAccelerator) {
      const auto it = setup.platform->accelerators.find(pe.type.name);
      DSSOC_ASSERT(it != setup.platform->accelerators.end());
      rt->device = std::make_unique<platform::FftAcceleratorDevice>(it->second);
      rt->port = std::make_unique<RealAcceleratorPort>(*rt->device, true);
    }
    rt_pes.push_back(std::move(rt));
  }

  // Resume from a quiescent virtual-engine snapshot: adopt the statistics,
  // RNG stream, injection cursor and per-PE busy totals, and offset every
  // wall-clock read by the snapshot's virtual time so timestamps continue
  // on the same emulation timeline. A wall-clock engine cannot reconstruct
  // an in-flight task's timeline, so mid-flight snapshots are rejected.
  SimTime t0 = 0;
  std::size_t next_arrival = 0;
  std::size_t completed_apps = 0;
  if (resume_from != nullptr) {
    if (resume_from->empty()) {
      throw StateError("resume from an empty engine snapshot");
    }
    StateReader in(resume_from->data().data(), resume_from->data().size(),
                   kEngineSnapshotKind);
    in.begin_section(kMetaTag);
    SnapshotMeta meta;
    meta.load(in);
    in.end_section();
    validate_snapshot_meta(meta, setup.soc.label, scheduler->name(),
                           rt_pes.size(), setup.options.seed,
                           setup.options.pe_queue_depth, workload);
    if (!meta.quiescent) {
      throw StateError(
          "the real-time engine can only resume from a quiescent snapshot "
          "(capture via Emulation::run_until_idle()) — it cannot "
          "reconstruct in-flight task timelines against the wall clock");
    }
    t0 = meta.virtual_time;
    next_arrival = static_cast<std::size_t>(meta.consumed_entries);
    completed_apps = static_cast<std::size_t>(meta.completed_apps);

    in.begin_section(kRngTag);
    std::array<std::uint64_t, 4> rng_state;
    for (std::uint64_t& word : rng_state) {
      word = in.u64();
    }
    rng.set_state(rng_state);
    in.end_section();

    // A quiescent snapshot has no active instances, no ready tasks and no
    // queued assignments; the NullTaskCodec turns any violation into a
    // loud StateError instead of a dangling reference.
    const NullTaskCodec codec;
    in.begin_section(kInstancesTag);
    const std::uint64_t active_count = in.u64();
    if (active_count != 0) {
      throw StateError(cat("quiescent snapshot carries ", active_count,
                           " active instance(s)"));
    }
    pool->load(in);
    in.end_section();

    in.begin_section(kReadyTag);
    if (in.u64() != 0) {
      throw StateError("quiescent snapshot carries ready tasks");
    }
    in.end_section();

    in.begin_section(kHandlersTag);
    const std::uint64_t pe_count = in.u64();
    if (pe_count != rt_pes.size()) {
      throw StateError(cat("snapshot PE-handler section has ", pe_count,
                           " entries, engine has ", rt_pes.size()));
    }
    for (auto& rt : rt_pes) {
      rt->handler->load(in, codec);
      (void)load_assignment(in, codec);  // running (null when quiescent)
      (void)in.i64();                    // completion_at
      (void)in.i64();                    // busy_until
      rt->busy_accum = in.i64();
      rt->tasks_done = static_cast<std::size_t>(in.u64());
    }
    in.end_section();

    // Host-core occupancy is the virtual engine's contention model; the
    // real engine's contention is physical. Skipped, not silently decoded.
    in.begin_section(kCoresTag);
    in.skip_section();

    in.begin_section(kStatsTag);
    stats.load(in);
    in.end_section();

    in.begin_section(kSchedulerTag);
    const std::string scheduler_name = in.str();
    if (scheduler_name != scheduler->name()) {
      throw StateError(cat("snapshot scheduler section is \"",
                           scheduler_name, "\", engine runs \"",
                           scheduler->name(), "\""));
    }
    scheduler->load_state(in);
    in.end_section();
    if (!in.at_end()) {
      throw StateError(
          "trailing bytes after the engine snapshot's last section");
    }
  }

  std::atomic<bool> stop{false};

  // Reference start time (§II-C): all timestamps are relative to this.
  const Stopwatch emulation_clock;

  // Resource-manager threads (Fig. 4).
  for (auto& rt_ptr : rt_pes) {
    RtPE& rt = *rt_ptr;
    rt.thread = std::thread([&rt, &lookup, &stop, &emulation_clock, t0] {
      for (;;) {
        const Assignment assignment = rt.handler->wait_for_assignment(stop);
        if (assignment.task == nullptr) {
          return;  // shutdown
        }
        TaskInstance& task = *assignment.task;
        const PlatformOption& option = *assignment.platform;
        const KernelFn& fn = lookup.runfunc(task.lookup_id, option);

        // Note: task.state is owned by the workload-manager side (assign()
        // under the handler lock, complete_task() after collection); the
        // manager thread only writes the timing fields the WM reads after
        // collecting the completion (ordered by the handler mutex).
        task.pe_id = rt.handler->pe().id;
        task.chosen_platform = &option;
        task.start_time = t0 + emulation_clock.elapsed();

        KernelContext ctx(*task.app, *task.node, rt.port.get());
        fn(ctx);

        task.end_time = t0 + emulation_clock.elapsed();
        rt.busy_accum += task.end_time - task.start_time;
        rt.tasks_done += 1;
        rt.handler->mark_complete();
      }
    });
    try_set_affinity(rt.thread, rt.handler->pe().host_core);
  }

  // The caller's thread is the overlay processor running the workload
  // manager loop of Fig. 3.
  std::vector<ResourceHandler*> handler_ptrs;
  for (const auto& rt : rt_pes) {
    handler_ptrs.push_back(rt->handler.get());
  }
  RtEstimator estimator(setup, accel_models);
  ReadyList ready;
  TaskScratch scratch;
  std::vector<std::unique_ptr<AppInstance>> active;

  while (completed_apps < workload.entries.size()) {
    const SimTime now = t0 + emulation_clock.elapsed();
    const Stopwatch cycle_watch;
    std::size_t completions = 0;

    // Inject applications whose arrival time has passed.
    while (next_arrival < workload.entries.size() &&
           workload.entries[next_arrival].arrival <= now) {
      const int instance_id = static_cast<int>(next_arrival);
      const AppModel& model = *entry_models[next_arrival];
      std::unique_ptr<AppInstance> acquired = pool->acquire(
          model, instance_id,
          setup.options.seed + 0x517CC1B7UL +
              static_cast<std::uint64_t>(instance_id));
      AppInstance& app = *acquired;
      app.injection_time = workload.entries[next_arrival].arrival;
      const std::uint32_t base = lookup.node_base(model);
      for (std::size_t i = 0; i < app.tasks().size(); ++i) {
        app.tasks()[i].lookup_id = base + static_cast<std::uint32_t>(i);
      }
      active.push_back(std::move(acquired));
      scratch.clear();
      app.head_tasks(scratch);
      for (TaskInstance* head : scratch) {
        head->ready_time = now;
        ready.push_back(head);
      }
      ++next_arrival;
    }

    // Monitor completion status of the running tasks.
    for (ResourceHandler* handler : handler_ptrs) {
      const Assignment finished = handler->collect_completed();
      if (finished.task == nullptr) {
        continue;
      }
      ++completions;
      TaskInstance& task = *finished.task;
      TaskRecord record;
      record.app_name = task.app->model().name;
      record.app_instance = task.app->instance_id();
      record.node_name = task.node->name;
      record.pe_id = handler->pe().id;
      record.pe_label = handler->pe().label;
      record.pe_type = handler->pe().type.name;
      record.ready_time = task.ready_time;
      record.dispatch_time = task.dispatch_time;
      record.start_time = task.start_time;
      record.end_time = task.end_time;
      stats.tasks.push_back(std::move(record));

      scratch.clear();
      task.app->complete_task(task, scratch);
      for (TaskInstance* successor : scratch) {
        successor->ready_time = t0 + emulation_clock.elapsed();
        ready.push_back(successor);
      }
      if (task.app->is_complete()) {
        task.app->completion_time = task.end_time;
        AppRecord app_record;
        app_record.app_name = task.app->model().name;
        app_record.app_instance = task.app->instance_id();
        app_record.injection_time = task.app->injection_time;
        app_record.completion_time = task.app->completion_time;
        app_record.task_count = task.app->tasks().size();
        // instance_id == workload entry index, same as the virtual engine.
        app_record.deadline =
            workload
                .entries[static_cast<std::size_t>(task.app->instance_id())]
                .deadline;
        stats.apps.push_back(std::move(app_record));
        ++completed_apps;
        // All of the app's tasks completed and were collected, so no
        // manager thread or queue still references the instance.
        for (std::size_t i = 0; i < active.size(); ++i) {
          if (active[i].get() == task.app) {
            std::unique_ptr<AppInstance> owned = std::move(active[i]);
            active[i] = std::move(active.back());
            active.pop_back();
            pool->release(std::move(owned));
            break;
          }
        }
      }
    }

    // Apply the scheduling policy to the ready list.
    std::size_t launched = 0;
    if (!ready.empty()) {
      SchedulerContext ctx;
      ctx.now = now;
      ctx.estimator = &estimator;
      ctx.rng = &rng;
      ctx.options = &lookup;
      const std::size_t before = ready.size();
      // Dispatch stamp used by assign().
      ctx.now = t0 + emulation_clock.elapsed();
      scheduler->schedule(ready, handler_ptrs, ctx);
      launched = before - ready.size();
    }

    if (completions > 0 || launched > 0) {
      stats.scheduling_overhead_total += cycle_watch.elapsed();
      stats.scheduling_events += std::max<std::size_t>(completions, 1);
    } else {
      // Yield so manager threads can run on oversubscribed hosts.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  // Shutdown: wake and join every manager thread.
  stop = true;
  for (const auto& rt : rt_pes) {
    rt->handler->notify_all();
  }
  for (auto& rt : rt_pes) {
    rt->thread.join();
  }

  for (const auto& rt : rt_pes) {
    PERecord record;
    record.pe_id = rt->handler->pe().id;
    record.label = rt->handler->pe().label;
    record.type = rt->handler->pe().type.name;
    record.busy_time = rt->busy_accum.load();
    record.tasks_executed = rt->tasks_done.load();
    stats.pes.push_back(std::move(record));
  }
  SimTime makespan = 0;
  for (const TaskRecord& task : stats.tasks) {
    makespan = std::max(makespan, task.end_time);
  }
  stats.makespan = makespan;
  return stats;
}

}  // namespace

EmulationStats run_realtime(const EmulationSetup& setup,
                            const Workload& workload) {
  return run_realtime_impl(setup, workload, nullptr, nullptr);
}

EmulationStats run_realtime(const EmulationSetup& setup,
                            const Workload& workload, AppInstancePool* pool) {
  return run_realtime_impl(setup, workload, pool, nullptr);
}

EmulationStats run_realtime(const EmulationSetup& setup,
                            const Workload& workload, AppInstancePool* pool,
                            const EngineSnapshot& resume_from) {
  return run_realtime_impl(setup, workload, pool, &resume_from);
}

}  // namespace dssoc::core
