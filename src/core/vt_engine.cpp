// Virtual-time engine.
//
// A discrete-event emulation that keeps the paper's defining property —
// scheduling overhead is the *measured* cost of running the real scheduler
// code, not a statistical constant — while producing deterministic,
// host-independent workload timelines. See DESIGN.md ("Two engines, one
// protocol" and "Host-core contention model") for the modelling decisions.
//
// Approximation note: a PE's full execution timeline (dispatch, DMA, compute,
// polling, writeback) is booked onto its manager's host core at assignment
// time. Manager threads sharing a host core therefore serialize in
// assignment order rather than interleaving op-by-op; context-switch
// penalties are charged whenever consecutive bookings on a core come from
// different threads. This is coarser than the OS's round-robin but produces
// the same first-order effect the paper reports for 2C+2F: co-located
// accelerator managers thrash and the second accelerator stops paying off.
//
// Steady-state allocation model: after warm-up, processing a task event
// performs no heap allocation. Application instances are recycled through
// an AppInstancePool (arena construction is paid once per concurrent
// instance, not per injection), per-event task batches go through SmallVec
// scratch that keeps its capacity, cost-model and runfunc lookups are
// interned into id-indexed tables at init (OptionLookup::intern), and the
// stats vectors are reserved up front from the workload's known task count.
// tests/alloc_test.cpp pins the property with a global operator-new hook.
#include <algorithm>
#include <array>
#include <limits>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"
#include "core/emulation.hpp"
#include "core/scheduler.hpp"

namespace dssoc::core {

// Engine internals live in a *named* namespace: the Emulation facade's
// pimpl names detail::VirtualEngine, and a named class must not have
// internal-linkage member types (GCC -Wsubobject-linkage).
namespace detail {

constexpr int kNoThread = -1000;

/// Functional accelerator access for kernels executed by this engine. All
/// timing is charged by the DES; this port only moves/transforms data.
class VirtualAcceleratorPort final : public AcceleratorPort {
 public:
  explicit VirtualAcceleratorPort(platform::FftAcceleratorDevice& device)
      : device_(device) {}

  void fft(std::span<dsp::cfloat> data, bool inverse) override {
    device_.dma_in(data);
    device_.start(data.size(), inverse);
    device_.dma_out(data);
  }

 private:
  platform::FftAcceleratorDevice& device_;
};

struct PERuntime {
  std::unique_ptr<ResourceHandler> handler;
  const platform::FftAcceleratorModel* accel_model = nullptr;  // accel only
  std::unique_ptr<platform::FftAcceleratorDevice> device;      // accel only
  std::unique_ptr<VirtualAcceleratorPort> port;                // accel only

  /// Engine knowledge of the in-flight assignment (front of handler queue).
  Assignment running;
  SimTime completion_at = kSimTimeNever;
  SimTime busy_until = 0;   ///< for EFT availability estimates
  SimTime busy_accum = 0;   ///< execution time total (utilization)
  std::size_t tasks_done = 0;
};

/// TaskCodec over the engine's active-instance list: a task reference is
/// serialized as (index of its owning instance in the active list, node
/// index within the instance) — stable across processes, unlike pointers.
class ActiveTaskCodec final : public TaskCodec {
 public:
  explicit ActiveTaskCodec(
      const std::vector<std::unique_ptr<AppInstance>>& active)
      : active_(active) {}

  void encode(StateWriter& out, const TaskInstance* task) const override {
    if (task == nullptr) {
      out.i64(-1);
      out.u32(0);
      return;
    }
    for (std::size_t slot = 0; slot < active_.size(); ++slot) {
      if (active_[slot].get() == task->app) {
        out.i64(static_cast<std::int64_t>(slot));
        out.u32(
            static_cast<std::uint32_t>(task - task->app->tasks().data()));
        return;
      }
    }
    throw StateError("task reference to an instance outside the active list");
  }

  TaskInstance* decode(StateReader& in) const override {
    const std::int64_t slot = in.i64();
    const std::uint32_t node = in.u32();
    if (slot < 0) {
      return nullptr;
    }
    if (static_cast<std::size_t>(slot) >= active_.size()) {
      throw StateError(cat("snapshot task reference to active slot ", slot,
                           ", only ", active_.size(), " instance(s) active"));
    }
    AppInstance& app = *active_[static_cast<std::size_t>(slot)];
    if (node >= app.tasks().size()) {
      throw StateError(cat("snapshot task reference to node ", node,
                           " of \"", app.model().name, "\" (",
                           app.tasks().size(), " node(s))"));
    }
    return &app.tasks()[node];
  }

 private:
  const std::vector<std::unique_ptr<AppInstance>>& active_;
};

class VirtualEngine : public ExecutionEstimator {
 public:
  VirtualEngine(const EmulationSetup& setup, const Workload& workload,
                AppInstancePool* pool)
      : setup_(setup), workload_(workload), rng_(setup.options.seed) {
    DSSOC_REQUIRE(setup_.platform != nullptr, "setup lacks a platform");
    DSSOC_REQUIRE(setup_.apps != nullptr, "setup lacks an app library");
    DSSOC_REQUIRE(setup_.registry != nullptr,
                  "setup lacks a shared-object registry");
    scheduler_ = SchedulerRegistry::instance().create(setup.options.scheduler);
    if (pool != nullptr) {
      pool_ = pool;
    } else {
      owned_pool_ = std::make_unique<AppInstancePool>();
      pool_ = owned_pool_.get();
    }
    init();
  }

  SimTime now() const noexcept { return now_; }
  bool finished() const noexcept { return finished_; }
  /// No active instances, empty ready list, nothing running on any PE.
  bool quiescent() const noexcept {
    return active_.empty() && ready_.empty() && completion_heap_.empty();
  }

  /// Runs workload-manager cycles until now_ >= t (or completion). Stops
  /// ONLY at cycle boundaries — now_ may overshoot t by one cycle or one
  /// analytic fast-forward streak. Clamping to t would be wrong, not just
  /// imprecise: a fast-forward cut short at t changes where the next
  /// completion is monitored, so the continued timeline would diverge from
  /// an uninterrupted run. Natural boundaries are exactly the states a cold
  /// run also passes through, which makes same-workload restores
  /// bit-identical by construction.
  void run_until(SimTime t) {
    while (!finished_ && now_ < t) {
      step();
    }
  }

  /// Runs until the first quiescent cycle boundary at or after t (or until
  /// completion). Snapshots captured here are valid fork points: nothing is
  /// in flight, so state depends only on the consumed arrival prefix, and a
  /// cold run of any workload sharing that prefix (with later arrivals at
  /// or after the boundary) passes through the identical state.
  void run_until_idle(SimTime t) {
    while (!finished_ && !(now_ >= t && quiescent())) {
      step();
    }
  }

  EmulationStats finish();

  void save(StateWriter& out) const;
  void load(StateReader& in);

  // --- ExecutionEstimator ---------------------------------------------------
  // An estimate depends only on (DAG node, PE), both fixed for the whole
  // emulation, so results are memoized in a flat table indexed by the
  // interned node id and the PE id: cost-aware policies (EFT's full replan
  // makes O(n^2) estimate calls per invocation) pay neither a string-keyed
  // cost-model lookup nor a hash per call. estimator_calls_ still counts
  // every call — the kModeled overhead charge prices the work the scheduler
  // *requested*, which the cache does not change.
  SimTime estimate(const TaskInstance& task, const PlatformOption& /*option*/,
                   const ResourceHandler& handler) const override {
    ++estimator_calls_;
    const platform::PE& pe = handler.pe();
    SimTime& slot =
        estimate_cache_[task.lookup_id * runtimes_.size() +
                        static_cast<std::size_t>(pe.id)];
    if (slot >= 0) {
      return slot;
    }
    const CostAnnotation& cost = task.node->cost;
    if (pe.type.kind == platform::PEKind::kCpu) {
      slot = option_lookup_.cpu_cost(task.lookup_id, cost.units,
                                     pe.type.speed_factor);
      return slot;
    }
    const PERuntime& rt = *runtimes_[static_cast<std::size_t>(pe.id)];
    DSSOC_ASSERT(rt.accel_model != nullptr);
    const auto samples = static_cast<std::size_t>(
        cost.samples > 0.0 ? cost.samples : cost.units);
    slot = rt.accel_model->round_trip_time(samples);
    return slot;
  }

  SimTime available_at(const ResourceHandler& handler) const override {
    ++estimator_calls_;
    const PERuntime& rt =
        *runtimes_[static_cast<std::size_t>(handler.pe().id)];
    return rt.busy_until;
  }

  void note_logical_estimates(std::size_t count) const override {
    estimator_calls_ += count;
  }

  void note_external_latency_ns(std::uint64_t host_ns) const override {
    external_wait_ns_ += host_ns;
  }

 private:
  /// What one run_scheduler() invocation did — consumed by the busy-wait
  /// fast-forward to decide whether the cycle can be replayed analytically.
  struct ScheduleOutcome {
    std::size_t launched = 0;  ///< PEs whose timeline was simulated
    bool invoked = false;      ///< the scheduling policy actually ran
    bool inert = false;        ///< invoked, but observably changed nothing
    SimTime charged = 0;       ///< overhead charged for this invocation
  };

  void init();
  void step();
  void finalize();
  void inject_arrivals();
  std::size_t monitor_completions();
  ScheduleOutcome run_scheduler(bool detect_inert);
  void simulate_assignment(PERuntime& rt, SimTime assign_time);
  void finish_assignment(PERuntime& rt);
  void release_instance(AppInstance* app);
  SimTime occupy(int core, int thread, SimTime earliest, SimTime duration);
  void execute_functionally(PERuntime& rt, TaskInstance& task,
                            const PlatformOption& option);
  SimTime next_event_time() const;

  const EmulationSetup& setup_;
  const Workload& workload_;
  Rng rng_;
  std::unique_ptr<Scheduler> scheduler_;

  AppInstancePool* pool_ = nullptr;
  std::unique_ptr<AppInstancePool> owned_pool_;

  /// Arrival trace metadata (model per workload entry, resolved at init).
  std::vector<const AppModel*> entry_models_;
  /// Instances currently in flight, acquired at injection and released back
  /// to the pool at completion. Unordered (swap-remove); ownership only.
  std::vector<std::unique_ptr<AppInstance>> active_;
  std::size_t next_arrival_index_ = 0;
  std::size_t completed_apps_ = 0;

  std::vector<std::unique_ptr<PERuntime>> runtimes_;
  std::vector<ResourceHandler*> handler_ptrs_;
  ReadyList ready_;
  OptionLookup option_lookup_;

  /// Min-heap over the running front assignments, keyed by completion time.
  /// Every simulated assignment pushes exactly one entry; monitoring pops the
  /// due entries instead of scanning all PEs each workload-manager cycle.
  using Completion = std::pair<SimTime, int>;  // (completion_at, pe id)
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completion_heap_;
  std::vector<int> due_pes_;                      ///< scratch, monitor batch
  std::vector<TaskInstance*> spin_ready_before_;  ///< scratch, inert check
  TaskScratch task_scratch_;                      ///< scratch, ready batches

  // Host-core occupancy (indexed by host core id).
  std::vector<SimTime> core_free_;
  std::vector<int> core_last_thread_;

  /// Estimator invocations during the current scheduler call (kModeled).
  mutable std::size_t estimator_calls_ = 0;
  /// Host-side external wait (note_external_latency_ns) reported during the
  /// current scheduler call; charged like measured scheduler time.
  mutable std::uint64_t external_wait_ns_ = 0;
  /// Memoized estimate() results, indexed [node id * PE count + pe id];
  /// -1 = not computed.
  mutable std::vector<SimTime> estimate_cache_;

  // Constants derived from the configuration at init (the PE set and
  // overlay core are fixed for the whole emulation).
  double overlay_speed_ = 1.0;
  SimTime monitor_cost_ = 0;

  SimTime now_ = 0;
  bool finished_ = false;   ///< recomputed on load, never serialized
  bool finalized_ = false;  ///< stats_ moved out; snapshots now invalid
  EmulationStats stats_;
};

void VirtualEngine::init() {
  const auto pes = platform::instantiate_config(*setup_.platform, setup_.soc);
  for (const platform::PE& pe : pes) {
    auto rt = std::make_unique<PERuntime>();
    rt->handler = std::make_unique<ResourceHandler>(
        pe, setup_.options.pe_queue_depth);
    if (pe.type.kind == platform::PEKind::kAccelerator) {
      const auto it = setup_.platform->accelerators.find(pe.type.name);
      DSSOC_ASSERT(it != setup_.platform->accelerators.end());
      rt->accel_model = &it->second;
      rt->device = std::make_unique<platform::FftAcceleratorDevice>(it->second);
      rt->port = std::make_unique<VirtualAcceleratorPort>(*rt->device);
    }
    runtimes_.push_back(std::move(rt));
  }
  for (const auto& rt : runtimes_) {
    handler_ptrs_.push_back(rt->handler.get());
    option_lookup_.add_pe(rt->handler->pe());
  }

  core_free_.assign(setup_.platform->cores.size(), 0);
  core_last_thread_.assign(setup_.platform->cores.size(), kNoThread);

  // Initialization phase (§II-A): resolve every requested application, its
  // cost entries and its runfunc symbols up front, so failures surface
  // before emulation. Instance storage itself is acquired from the pool at
  // injection time and recycled at completion — physically lazy, but
  // observationally identical to the paper's instantiate-everything-first
  // phase (timelines are bit-identical either way).
  entry_models_.reserve(workload_.entries.size());
  std::size_t total_tasks = 0;
  for (const WorkloadEntry& entry : workload_.entries) {
    const AppModel& model = setup_.apps->get(entry.app_name);
    option_lookup_.add_model(model);
    entry_models_.push_back(&model);
    total_tasks += model.nodes.size();
  }
  option_lookup_.intern(setup_.cost_model, setup_.registry);

  // Known up front, so record growth never interrupts the steady state.
  stats_.tasks.reserve(total_tasks);
  stats_.apps.reserve(workload_.entries.size());
  estimate_cache_.assign(
      static_cast<std::size_t>(option_lookup_.node_count()) *
          runtimes_.size(),
      -1);

  stats_.config_label = setup_.soc.label;
  stats_.scheduler_name = scheduler_->name();

  // Overlay-processor speed scales every workload-manager operation: on the
  // Odroid the WM runs on a LITTLE core, which is how Fig. 11's
  // overhead-versus-PE-count effect arises.
  overlay_speed_ =
      setup_.platform
          ->cores[static_cast<std::size_t>(setup_.platform->overlay_core)]
          .speed_factor;
  // Monitoring cost: one status check per PE, on the overlay core.
  monitor_cost_ = static_cast<SimTime>(
      static_cast<double>(setup_.options.monitor_cost_ns) *
      static_cast<double>(runtimes_.size()) * overlay_speed_);

  finished_ = workload_.entries.empty();
}

SimTime VirtualEngine::occupy(int core, int thread, SimTime earliest,
                              SimTime duration) {
  DSSOC_ASSERT(core >= 0 &&
               static_cast<std::size_t>(core) < core_free_.size());
  SimTime start = std::max(earliest, core_free_[static_cast<std::size_t>(core)]);
  if (core_last_thread_[static_cast<std::size_t>(core)] != thread &&
      core_last_thread_[static_cast<std::size_t>(core)] != kNoThread) {
    start += setup_.platform->context_switch_ns;
  }
  core_free_[static_cast<std::size_t>(core)] = start + duration;
  core_last_thread_[static_cast<std::size_t>(core)] = thread;
  return start + duration;
}

void VirtualEngine::inject_arrivals() {
  while (next_arrival_index_ < workload_.entries.size() &&
         workload_.entries[next_arrival_index_].arrival <= now_) {
    const int instance_id = static_cast<int>(next_arrival_index_);
    const AppModel& model = *entry_models_[next_arrival_index_];
    std::unique_ptr<AppInstance> acquired = pool_->acquire(
        model, instance_id,
        setup_.options.seed + 0x9E37UL +
            static_cast<std::uint64_t>(instance_id));
    AppInstance& app = *acquired;
    app.injection_time = workload_.entries[next_arrival_index_].arrival;
    // Stamp the interned node ids so every downstream lookup is id-indexed.
    const std::uint32_t base = option_lookup_.node_base(model);
    for (std::size_t i = 0; i < app.tasks().size(); ++i) {
      app.tasks()[i].lookup_id = base + static_cast<std::uint32_t>(i);
    }
    active_.push_back(std::move(acquired));

    now_ += setup_.options.injection_cost_ns;  // dequeue + inject on overlay
    task_scratch_.clear();
    app.head_tasks(task_scratch_);
    for (TaskInstance* head : task_scratch_) {
      head->ready_time = now_;
      ready_.push_back(head);
    }
    ++next_arrival_index_;
  }
}

std::size_t VirtualEngine::monitor_completions() {
  // Pop the due batch first: completions chained onto a PE by
  // finish_assignment (reservation queues) are seen next cycle, exactly like
  // the legacy one-pass scan over the PE list.
  due_pes_.clear();
  while (!completion_heap_.empty() && completion_heap_.top().first <= now_) {
    due_pes_.push_back(completion_heap_.top().second);
    completion_heap_.pop();
  }
  if (due_pes_.empty()) {
    return 0;
  }
  // The legacy scan collected completions in PE-id order; record order (and
  // therefore successor ready order) is part of the deterministic contract.
  std::sort(due_pes_.begin(), due_pes_.end());
  for (const int pe : due_pes_) {
    PERuntime& rt = *runtimes_[static_cast<std::size_t>(pe)];
    DSSOC_ASSERT(rt.running.task != nullptr && rt.completion_at <= now_);
    finish_assignment(rt);
  }
  return due_pes_.size();
}

void VirtualEngine::release_instance(AppInstance* app) {
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_[i].get() == app) {
      std::unique_ptr<AppInstance> owned = std::move(active_[i]);
      active_[i] = std::move(active_.back());
      active_.pop_back();
      pool_->release(std::move(owned));
      return;
    }
  }
  DSSOC_ASSERT_MSG(false, "released an instance that was never active");
}

void VirtualEngine::finish_assignment(PERuntime& rt) {
  // The resource manager flags completion; the workload manager collects it,
  // appends newly-ready successors, and the PE returns to idle (§II-C).
  rt.handler->mark_complete();
  const Assignment finished = rt.handler->collect_completed();
  DSSOC_ASSERT(finished.task == rt.running.task);
  TaskInstance& task = *finished.task;

  TaskRecord record;
  record.app_name = task.app->model().name;
  record.app_instance = task.app->instance_id();
  record.node_name = task.node->name;
  record.pe_id = rt.handler->pe().id;
  record.pe_label = rt.handler->pe().label;
  record.pe_type = rt.handler->pe().type.name;
  record.ready_time = task.ready_time;
  record.dispatch_time = task.dispatch_time;
  record.start_time = task.start_time;
  record.end_time = task.end_time;
  stats_.tasks.push_back(std::move(record));

  rt.tasks_done += 1;
  rt.running = {};
  rt.completion_at = kSimTimeNever;

  // The instance may be released (and, with DSSOC_POOL_DISABLE=1,
  // destroyed) below; keep what the reservation-queue restart needs.
  const SimTime finished_end = task.end_time;

  task_scratch_.clear();
  task.app->complete_task(task, task_scratch_);
  for (TaskInstance* successor : task_scratch_) {
    successor->ready_time = now_;
    ready_.push_back(successor);
  }
  if (task.app->is_complete()) {
    task.app->completion_time = task.end_time;
    AppRecord app_record;
    app_record.app_name = task.app->model().name;
    app_record.app_instance = task.app->instance_id();
    app_record.injection_time = task.app->injection_time;
    app_record.completion_time = task.app->completion_time;
    app_record.task_count = task.app->tasks().size();
    // instance_id == workload entry index (inject_arrivals invariant), so
    // the entry's deadline rides along into the SLO report.
    app_record.deadline =
        workload_.entries[static_cast<std::size_t>(task.app->instance_id())]
            .deadline;
    stats_.apps.push_back(std::move(app_record));
    ++completed_apps_;
    // Every task of the app is complete, so no ready-list entry, handler
    // queue slot or PE runtime can still reference it: recycle it now.
    release_instance(task.app);
  }

  // Reservation queue (>1): the resource manager starts the next queued task
  // immediately, without waiting for another scheduler round trip. `task`
  // must not be touched here — its app may have been recycled above.
  if (rt.handler->peek_assignment().task != nullptr) {
    simulate_assignment(rt, finished_end);
  }
}

VirtualEngine::ScheduleOutcome VirtualEngine::run_scheduler(
    bool detect_inert) {
  ScheduleOutcome out;
  bool any_accepting = false;
  for (ResourceHandler* handler : handler_ptrs_) {
    if (handler->can_accept()) {
      any_accepting = true;
      break;
    }
  }
  if (ready_.empty() || !any_accepting) {
    return out;
  }
  out.invoked = true;

  // Snapshot the observable scheduler inputs that a later identical
  // invocation would see again. If the invocation assigns nothing, reorders
  // nothing and consumes no randomness, replaying it is a pure re-charge.
  std::array<std::uint64_t, 4> rng_before{};
  if (detect_inert) {
    spin_ready_before_.assign(ready_.begin(), ready_.end());
    rng_before = rng_.state();
  }

  SchedulerContext ctx;
  ctx.now = now_;
  ctx.estimator = this;
  ctx.rng = &rng_;
  ctx.options = &option_lookup_;

  // Run the real scheduling algorithm and charge its cost, scaled to the
  // overlay processor, into emulated time. This is how the framework exposes
  // scheduler complexity (Fig. 10b). kModeled prices the work the scheduler
  // actually performed (deterministic); kMeasured uses the wall clock.
  const std::size_t ready_before = ready_.size();
  estimator_calls_ = 0;
  external_wait_ns_ = 0;
  Stopwatch watch;
  scheduler_->schedule(ready_, handler_ptrs_, ctx);
  const SimTime measured = watch.elapsed();
  SimTime charged = 0;
  if (setup_.options.overhead_mode == OverheadMode::kMeasured) {
    // An external wait (policy bridge) is part of the measured wall time
    // already, so kMeasured charges nothing extra for it.
    charged = static_cast<SimTime>(static_cast<double>(measured) *
                                   setup_.options.overlay_calibration *
                                   overlay_speed_);
  } else {
    const double pairs = static_cast<double>(ready_before) *
                         static_cast<double>(handler_ptrs_.size());
    charged = static_cast<SimTime>(
        (static_cast<double>(setup_.options.modeled_base_ns) +
         setup_.options.modeled_pair_ns * pairs +
         setup_.options.modeled_estimate_ns *
             static_cast<double>(estimator_calls_)) *
        overlay_speed_);
    // Reported external latency (agent round trips, timeouts) is measured
    // host time; map it into emulated overlay time exactly like kMeasured
    // maps scheduler wall time.
    charged += static_cast<SimTime>(static_cast<double>(external_wait_ns_) *
                                    setup_.options.overlay_calibration *
                                    overlay_speed_);
  }
  now_ += charged;
  stats_.scheduling_overhead_total += charged;
  out.charged = charged;

  // Launch the timeline of every PE whose front assignment is not yet
  // simulated (dispatch happens after the scheduler communicated the task).
  for (auto& rt_ptr : runtimes_) {
    PERuntime& rt = *rt_ptr;
    if (rt.running.task == nullptr &&
        rt.handler->peek_assignment().task != nullptr) {
      simulate_assignment(rt, now_);
      ++out.launched;
    }
  }

  if (detect_inert && out.launched == 0) {
    // ready size unchanged rules out assignments (including reservation-queue
    // ones that launch nothing); order equality rules out policies that
    // rotate their backlog; the RNG snapshot rules out consumed randomness.
    out.inert = ready_.size() == spin_ready_before_.size() &&
                std::equal(spin_ready_before_.begin(),
                           spin_ready_before_.end(), ready_.begin()) &&
                rng_.state() == rng_before;
  }
  return out;
}

void VirtualEngine::simulate_assignment(PERuntime& rt, SimTime assign_time) {
  const Assignment assignment = rt.handler->peek_assignment();
  DSSOC_ASSERT(assignment.task != nullptr);
  TaskInstance& task = *assignment.task;
  const platform::PE& pe = rt.handler->pe();
  const CostAnnotation& cost = task.node->cost;
  const int thread = pe.id;
  const int core = pe.host_core;

  task.state = TaskState::kRunning;
  task.dispatch_time = assign_time;
  task.pe_id = pe.id;
  task.chosen_platform = assignment.platform;

  // Resource manager receives the task on its host core.
  const SimTime dispatched =
      occupy(core, thread, assign_time, setup_.options.dispatch_cost_ns);

  SimTime end = 0;
  if (pe.type.kind == platform::PEKind::kCpu) {
    const SimTime duration = option_lookup_.cpu_cost(
        task.lookup_id, cost.units, pe.type.speed_factor);
    end = occupy(core, thread, dispatched, duration);
    task.start_time = end - duration;
    rt.busy_accum += duration;
  } else {
    DSSOC_ASSERT(rt.accel_model != nullptr);
    const auto samples = static_cast<std::size_t>(
        cost.samples > 0.0 ? cost.samples : cost.units);
    const std::size_t bytes = samples * sizeof(dsp::cfloat);
    // DDR -> BRAM on the manager's host core.
    const SimTime in_end =
        occupy(core, thread, dispatched, rt.accel_model->dma.transfer_time(bytes));
    task.start_time = in_end - rt.accel_model->dma.transfer_time(bytes);
    // Device computes; the manager thread sleeps (core is free), but under
    // polling it periodically wakes to check status.
    const SimTime compute = rt.accel_model->compute_time(samples);
    const SimTime compute_end = in_end + compute;
    SimTime detect_end = 0;
    if (rt.accel_model->completion == platform::CompletionMode::kPolling) {
      const SimTime interval = std::max<SimTime>(
          rt.accel_model->poll_interval_ns, 1);
      const SimTime polls = compute / interval + 1;
      detect_end = occupy(core, thread, compute_end,
                          polls * setup_.options.poll_cost_ns);
    } else {
      detect_end = occupy(core, thread, compute_end,
                          setup_.options.interrupt_cost_ns);
    }
    // BRAM -> DDR.
    end = occupy(core, thread, detect_end,
                 rt.accel_model->dma.transfer_time(bytes));
    // PE utilization counts the device's own compute time; DMA and polling
    // occupy the manager's host core, not the accelerator (Fig. 9b counts
    // accelerator usage, which is why accel utilization is low for small
    // transfers).
    rt.busy_accum += compute;
  }

  task.end_time = end;
  rt.running = assignment;
  rt.completion_at = end;
  rt.busy_until = end;
  completion_heap_.emplace(end, pe.id);

  if (setup_.options.run_kernels) {
    execute_functionally(rt, task, *assignment.platform);
  }
}

void VirtualEngine::execute_functionally(PERuntime& rt, TaskInstance& task,
                                         const PlatformOption& option) {
  const KernelFn& fn = option_lookup_.runfunc(task.lookup_id, option);
  KernelContext ctx(*task.app, *task.node, rt.port.get());
  fn(ctx);
}

SimTime VirtualEngine::next_event_time() const {
  SimTime next = kSimTimeNever;
  if (next_arrival_index_ < workload_.entries.size()) {
    next = std::min(next, workload_.entries[next_arrival_index_].arrival);
  }
  if (!completion_heap_.empty()) {
    next = std::min(next, completion_heap_.top().first);
  }
  return next;
}

// One workload-manager cycle (Fig. 3): inject, monitor, schedule — the loop
// body of the paper's WM, unmodified. Every call leaves the engine at a
// cycle boundary; snapshots are taken and restored exactly there.
void VirtualEngine::step() {
  DSSOC_ASSERT(!finished_);
  inject_arrivals();
  // Overload cut: a ready backlog past the configured bound means the
  // offered rate exceeds what this configuration/scheduler can drain —
  // queueing is unstable and emulating further only grows the queue.
  // Terminate the point and report the measured saturation rate. The check
  // sits at the cycle boundary right after injection (the only place the
  // backlog grows without a matching drain opportunity), so a restored
  // snapshot reaches the identical cut deterministically.
  const std::size_t backlog_limit = setup_.options.saturation_backlog_limit;
  if (backlog_limit > 0 && ready_.size() > backlog_limit) {
    stats_.saturated = true;
    stats_.saturation_time = now_;
    stats_.saturation_arrivals = next_arrival_index_;
    finished_ = true;
    return;
  }
  now_ += monitor_cost_;

  const std::size_t completions = monitor_completions();
  const ScheduleOutcome sched = run_scheduler(completions == 0);

  if (completions > 0 || sched.launched > 0) {
    // The paper accumulates monitoring + ready-queue update + scheduling +
    // communication as "scheduling overhead" per completion event.
    stats_.scheduling_overhead_total += monitor_cost_;
    stats_.scheduling_events += std::max<std::size_t>(completions, 1);
    finished_ = completed_apps_ == workload_.entries.size();
    return;
  }

  const SimTime next = next_event_time();
  if (next == kSimTimeNever) {
    // No arrivals pending, nothing running, ready tasks unschedulable.
    DSSOC_REQUIRE(ready_.empty(),
                  cat("deadlock: ", ready_.size(), " ready task(s) have "
                      "no supporting PE in configuration \"",
                      setup_.soc.label, "\""));
    finished_ = true;
    return;
  }
  if (!ready_.empty()) {
    // The WM busy-waits (§II-C): with outstanding ready tasks it keeps
    // polling PE status and rescanning the ready queue, so a completion is
    // only noticed at the next cycle boundary. Cycle length grows with PE
    // count and the ready backlog — on a slow overlay core this is what
    // makes large configurations regress (Fig. 11, 4B+3L vs 4B+1L).
    const SimTime scan_cost = static_cast<SimTime>(
        setup_.options.modeled_pair_ns * static_cast<double>(ready_.size()) *
        static_cast<double>(runtimes_.size()) * overlay_speed_);
    now_ += scan_cost;  // monitor_cost_ is already charged above

    // Analytic busy-wait fast-forward: this cycle changed nothing (no
    // injection, no completion, scheduler inert or not invoked), so every
    // following cycle until the next arrival/completion is a verbatim
    // replay of this one with length
    //   delta = monitor_cost + charged + scan_cost.
    // Charge all of them in one step instead of spinning the host through
    // each. Cycle i (starting at now_ + (i-1)*delta) is still a pure spin
    // iff the next arrival lies beyond its start and the next completion
    // beyond its monitoring point, so the number of skippable cycles is
    // ceil(D / delta) with D the tighter of the two margins. The detecting
    // cycle itself then runs live through the loop above.
    if (setup_.options.spin_fast_forward && scheduler_->time_invariant() &&
        (!sched.invoked || sched.inert)) {
      const SimTime delta = monitor_cost_ + sched.charged + scan_cost;
      SimTime margin = kSimTimeNever;
      if (next_arrival_index_ < workload_.entries.size()) {
        margin = std::min(
            margin, workload_.entries[next_arrival_index_].arrival - now_);
      }
      if (!completion_heap_.empty()) {
        margin = std::min(
            margin, completion_heap_.top().first - monitor_cost_ - now_);
      }
      if (delta > 0 && margin > 0 && margin != kSimTimeNever) {
        const SimTime cycles = (margin + delta - 1) / delta;
        now_ += cycles * delta;
        stats_.scheduling_overhead_total += cycles * sched.charged;
      }
    }
    return;  // spin until the monitor sees the completion
  }
  // Ready queue empty: the WM's polling has nothing to scan; fast-forward
  // to the next arrival/completion (idle polling is not charged).
  now_ -= monitor_cost_;
  now_ = std::max(now_, next);
}

void VirtualEngine::finalize() {
  if (finalized_) {
    return;
  }
  finalized_ = true;
  if (workload_.entries.empty()) {
    return;  // legacy shape: no PE records for an empty workload
  }
  for (const auto& rt : runtimes_) {
    PERecord record;
    record.pe_id = rt->handler->pe().id;
    record.label = rt->handler->pe().label;
    record.type = rt->handler->pe().type.name;
    record.busy_time = rt->busy_accum;
    record.tasks_executed = rt->tasks_done;
    stats_.pes.push_back(std::move(record));
  }
  SimTime makespan = 0;
  for (const TaskRecord& task : stats_.tasks) {
    makespan = std::max(makespan, task.end_time);
  }
  stats_.makespan = makespan;
}

EmulationStats VirtualEngine::finish() {
  while (!finished_) {
    step();
  }
  finalize();
  return std::move(stats_);
}

void VirtualEngine::save(StateWriter& out) const {
  DSSOC_REQUIRE(!finalized_,
                "snapshot after finish(): statistics have been moved out");
  const ActiveTaskCodec codec(active_);

  out.begin_section(kMetaTag);
  SnapshotMeta meta;
  meta.virtual_time = now_;
  meta.quiescent = quiescent();
  meta.consumed_entries = next_arrival_index_;
  meta.completed_apps = completed_apps_;
  meta.total_entries = workload_.entries.size();
  meta.prefix_hash = workload_prefix_hash(workload_, next_arrival_index_);
  meta.full_hash =
      workload_prefix_hash(workload_, workload_.entries.size());
  meta.soc_label = setup_.soc.label;
  meta.scheduler = scheduler_->name();
  meta.pe_count = static_cast<std::uint32_t>(runtimes_.size());
  meta.seed = setup_.options.seed;
  meta.pe_queue_depth = setup_.options.pe_queue_depth;
  meta.save(out);
  out.end_section();

  out.begin_section(kRngTag);
  for (const std::uint64_t word : rng_.state()) {
    out.u64(word);
  }
  out.end_section();

  // Instances first: the ready-list/handler sections reference tasks by
  // active slot, so decoding them needs the instances resident already.
  out.begin_section(kInstancesTag);
  out.u64(active_.size());
  for (const auto& app : active_) {
    out.i64(app->instance_id());
    app->save(out);
  }
  pool_->save(out);
  out.end_section();

  out.begin_section(kReadyTag);
  out.u64(ready_.size());
  for (const TaskInstance* task : ready_) {
    codec.encode(out, task);
  }
  out.end_section();

  out.begin_section(kHandlersTag);
  out.u64(runtimes_.size());
  for (const auto& rt : runtimes_) {
    rt->handler->save(out, codec);
    save_assignment(out, rt->running, codec);
    out.i64(rt->completion_at);
    out.i64(rt->busy_until);
    out.i64(rt->busy_accum);
    out.u64(rt->tasks_done);
  }
  out.end_section();

  out.begin_section(kCoresTag);
  out.u64(core_free_.size());
  for (std::size_t i = 0; i < core_free_.size(); ++i) {
    out.i64(core_free_[i]);
    out.i32(core_last_thread_[i]);
  }
  out.end_section();

  out.begin_section(kStatsTag);
  stats_.save(out);
  out.end_section();

  out.begin_section(kSchedulerTag);
  out.str(scheduler_->name());
  scheduler_->save_state(out);
  out.end_section();
}

void VirtualEngine::load(StateReader& in) {
  in.begin_section(kMetaTag);
  SnapshotMeta meta;
  meta.load(in);
  in.end_section();
  // All compatibility rejections happen here, before any state mutation.
  validate_snapshot_meta(meta, setup_.soc.label, scheduler_->name(),
                         runtimes_.size(), setup_.options.seed,
                         setup_.options.pe_queue_depth, workload_);

  now_ = meta.virtual_time;
  next_arrival_index_ = static_cast<std::size_t>(meta.consumed_entries);
  completed_apps_ = static_cast<std::size_t>(meta.completed_apps);

  in.begin_section(kRngTag);
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) {
    word = in.u64();
  }
  rng_.set_state(rng_state);
  in.end_section();

  in.begin_section(kInstancesTag);
  while (!active_.empty()) {
    pool_->release(std::move(active_.back()));
    active_.pop_back();
  }
  const std::uint64_t active_count = in.u64();
  for (std::uint64_t i = 0; i < active_count; ++i) {
    const std::int64_t instance_id = in.i64();
    if (instance_id < 0 ||
        static_cast<std::uint64_t>(instance_id) >= meta.consumed_entries) {
      throw StateError(cat("snapshot active-instance id ", instance_id,
                           " outside the consumed arrival prefix"));
    }
    const auto entry_index = static_cast<std::size_t>(instance_id);
    // The instance id IS the workload entry index, so the model and the
    // per-instance seed re-derive exactly as at injection. The prefix-hash
    // check above guarantees the target entry names the same application.
    const AppModel& model = *entry_models_[entry_index];
    std::unique_ptr<AppInstance> app = pool_->acquire(
        model, static_cast<int>(instance_id),
        setup_.options.seed + 0x9E37UL +
            static_cast<std::uint64_t>(instance_id));
    app->load(in);
    const std::uint32_t base = option_lookup_.node_base(model);
    for (std::size_t t = 0; t < app->tasks().size(); ++t) {
      app->tasks()[t].lookup_id = base + static_cast<std::uint32_t>(t);
    }
    active_.push_back(std::move(app));
  }
  pool_->load(in);
  in.end_section();

  const ActiveTaskCodec codec(active_);

  in.begin_section(kReadyTag);
  ready_.clear();
  const std::uint64_t ready_count = in.u64();
  for (std::uint64_t i = 0; i < ready_count; ++i) {
    TaskInstance* task = codec.decode(in);
    if (task == nullptr) {
      throw StateError("null entry in the snapshot's ready list");
    }
    ready_.push_back(task);
  }
  in.end_section();

  in.begin_section(kHandlersTag);
  const std::uint64_t pe_count = in.u64();
  if (pe_count != runtimes_.size()) {
    throw StateError(cat("snapshot PE-handler section has ", pe_count,
                         " entries, engine has ", runtimes_.size()));
  }
  completion_heap_ = {};
  for (auto& rt : runtimes_) {
    rt->handler->load(in, codec);
    rt->running = load_assignment(in, codec);
    rt->completion_at = in.i64();
    rt->busy_until = in.i64();
    rt->busy_accum = in.i64();
    rt->tasks_done = static_cast<std::size_t>(in.u64());
    if (rt->running.task != nullptr) {
      // The completion heap is rebuilt, not serialized: at a cycle boundary
      // it holds exactly one entry per running PE, and heap pop order
      // equals sorted order, so a re-heapified set pops identically.
      completion_heap_.emplace(rt->completion_at, rt->handler->pe().id);
    }
  }
  in.end_section();

  in.begin_section(kCoresTag);
  const std::uint64_t core_count = in.u64();
  if (core_count != core_free_.size()) {
    throw StateError(cat("snapshot host-core section has ", core_count,
                         " entries, platform has ", core_free_.size()));
  }
  for (std::size_t i = 0; i < core_free_.size(); ++i) {
    core_free_[i] = in.i64();
    core_last_thread_[i] = in.i32();
  }
  in.end_section();

  in.begin_section(kStatsTag);
  // init() reserved record capacity for this engine's own workload;
  // EmulationStats::load never shrinks it, so the restored steady state
  // stays allocation-free.
  stats_.load(in);
  in.end_section();

  in.begin_section(kSchedulerTag);
  const std::string scheduler_name = in.str();
  if (scheduler_name != scheduler_->name()) {
    throw StateError(cat("snapshot scheduler section is \"", scheduler_name,
                         "\", engine runs \"", scheduler_->name(), "\""));
  }
  scheduler_->load_state(in);
  in.end_section();

  // Invalidate-on-restore: estimate_cache_ entries are pure functions of
  // (node, PE) — surviving values stay bit-identical — and estimator_calls_
  // is reset per scheduler invocation. Neither travels with the snapshot.

  // A snapshot taken at the saturation cut restores as terminal: the cut is
  // part of the recorded stats, not something to re-detect past.
  finished_ =
      stats_.saturated || completed_apps_ == workload_.entries.size();
  finalized_ = false;
}

}  // namespace detail

// --- Emulation facade -------------------------------------------------------

Emulation::Emulation(const EmulationSetup& setup, const Workload& workload,
                     AppInstancePool* pool)
    : engine_(std::make_unique<detail::VirtualEngine>(setup, workload, pool)) {
}

Emulation::~Emulation() = default;
Emulation::Emulation(Emulation&&) noexcept = default;
Emulation& Emulation::operator=(Emulation&&) noexcept = default;

SimTime Emulation::now() const { return engine_->now(); }
bool Emulation::done() const { return engine_->finished(); }
bool Emulation::quiescent() const { return engine_->quiescent(); }
void Emulation::run_until(SimTime t) { engine_->run_until(t); }
void Emulation::run_until_idle(SimTime t) { engine_->run_until_idle(t); }
EmulationStats Emulation::finish() { return engine_->finish(); }

void Emulation::save(StateWriter& out) const { engine_->save(out); }
void Emulation::load(StateReader& in) { engine_->load(in); }

EngineSnapshot Emulation::snapshot() const {
  StateWriter out(kEngineSnapshotKind);
  engine_->save(out);
  return EngineSnapshot(out.take());
}

EngineSnapshot Emulation::snapshot(SimTime t) {
  engine_->run_until(t);
  return snapshot();
}

void Emulation::restore(const EngineSnapshot& snapshot) {
  if (snapshot.empty()) {
    throw StateError("restore from an empty engine snapshot");
  }
  StateReader in(snapshot.data().data(), snapshot.data().size(),
                 kEngineSnapshotKind);
  engine_->load(in);
  if (!in.at_end()) {
    throw StateError(
        "trailing bytes after the engine snapshot's last section");
  }
}

EmulationStats run_virtual(const EmulationSetup& setup,
                           const Workload& workload) {
  Emulation emulation(setup, workload, nullptr);
  return emulation.finish();
}

EmulationStats run_virtual(const EmulationSetup& setup,
                           const Workload& workload, AppInstancePool* pool) {
  Emulation emulation(setup, workload, pool);
  return emulation.finish();
}

}  // namespace dssoc::core
