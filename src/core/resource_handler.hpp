// Resource handler: the communication/synchronization object between the
// workload manager and one resource-manager thread (§II-C of the paper).
//
// A PE's availability status is idle, run, or complete; any thread reading
// or writing the status takes the handler's lock, exactly as the paper
// prescribes. The same object serves both engines — the virtual-time engine
// is single-threaded so the lock is uncontended, and schedulers cannot tell
// which engine drives them.
//
// The optional reservation queue (depth > 1) implements the paper's §V
// future-work extension: the workload manager may hand a PE more than one
// task, so the resource manager can start the next task without waiting for
// a scheduler round trip.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/clock.hpp"
#include "common/small_vec.hpp"
#include "core/app_instance.hpp"
#include "platform/pe.hpp"

namespace dssoc::core {

enum class PEStatus { kIdle, kRun, kComplete };

/// One task handed to a PE with the chosen platform option.
struct Assignment {
  TaskInstance* task = nullptr;
  const PlatformOption* platform = nullptr;
};

class ResourceHandler {
 public:
  explicit ResourceHandler(platform::PE pe, int queue_depth = 1);

  ResourceHandler(const ResourceHandler&) = delete;
  ResourceHandler& operator=(const ResourceHandler&) = delete;

  const platform::PE& pe() const noexcept { return pe_; }
  int queue_depth() const noexcept { return queue_depth_; }

  // --- workload-manager side -----------------------------------------------

  PEStatus status() const;

  /// True when the scheduler may hand this PE another task (status idle, or
  /// reservation queue not yet full).
  bool can_accept() const;

  /// Number of assignments currently queued or running.
  std::size_t load() const;

  /// Transfers a task and commands execution (status -> run). The caller must
  /// have checked can_accept(); over-assignment is an invariant violation.
  /// `dispatch_time` stamps the task's hand-off moment under the lock.
  void assign(TaskInstance* task, const PlatformOption* platform,
              SimTime dispatch_time = 0);

  /// If the PE flagged completion, returns the finished assignment and moves
  /// the status back to idle (or run, when queued work remains). Returns an
  /// empty Assignment otherwise.
  Assignment collect_completed();

  // --- resource-manager side -----------------------------------------------

  /// Blocks until a task is assigned or `stop` turns true; returns the front
  /// assignment (real-time engine). Returns empty on stop.
  Assignment wait_for_assignment(const std::atomic<bool>& stop);

  /// Non-blocking front-of-queue peek (virtual-time engine).
  Assignment peek_assignment() const;

  /// Appends every queued assignment (front to back, running task first)
  /// to `out` under the lock. Observation/recording hook — the engines'
  /// hot paths use peek_assignment(); `out` is not cleared.
  void snapshot_queue(std::vector<Assignment>& out) const;

  /// Resource manager reports the running task finished.
  void mark_complete();

  /// Wakes a blocked resource-manager thread (shutdown path).
  void notify_all();

  // --- checkpoint ----------------------------------------------------------

  /// Serializes status + reservation/completed queues under the lock. Task
  /// references are delegated to `codec` (pointer-free encoding).
  void save(StateWriter& out, const TaskCodec& codec) const;
  /// Replaces status and queue contents with the snapshot's. The handler
  /// must not have a resource-manager thread attached while loading.
  void load(StateReader& in, const TaskCodec& codec);

 private:
  platform::PE pe_;
  int queue_depth_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  PEStatus status_ = PEStatus::kIdle;
  // FIFOs over inline storage: reservation queues are a handful of entries
  // deep (pe_queue_depth), and a std::deque allocates/frees a block on
  // every empty<->nonempty transition — i.e. per task event. pop_front is
  // an O(depth) erase at these sizes.
  SmallVec<Assignment, 4> queue_;      ///< front = running/next assignment
  SmallVec<Assignment, 4> completed_;  ///< finished, not yet collected
};

}  // namespace dssoc::core
