#include "core/app_model.hpp"

#include <algorithm>
#include <cstring>
#include <deque>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::core {

void AppModel::finalize() {
  DSSOC_REQUIRE(!name.empty(), "application must have a name");
  node_index_.clear();
  var_index_.clear();

  for (std::size_t i = 0; i < variables.size(); ++i) {
    const VarSpec& var = variables[i];
    DSSOC_REQUIRE(!var.name.empty(), "variable with empty name");
    DSSOC_REQUIRE(var.bytes > 0,
                  cat("variable \"", var.name, "\" has zero size"));
    DSSOC_REQUIRE(!var.is_ptr || var.ptr_alloc_bytes > 0,
                  cat("pointer variable \"", var.name,
                      "\" has zero allocation"));
    DSSOC_REQUIRE(var.init_bytes.size() <= var.bytes,
                  cat("variable \"", var.name,
                      "\" initializer larger than its storage"));
    DSSOC_REQUIRE(var.heap_init_bytes.size() <= var.ptr_alloc_bytes,
                  cat("variable \"", var.name,
                      "\" heap initializer larger than its allocation"));
    const bool inserted = var_index_.emplace(var.name, i).second;
    DSSOC_REQUIRE(inserted, cat("duplicate variable \"", var.name, "\""));
  }

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    DagNode& n = nodes[i];
    n.index = i;
    DSSOC_REQUIRE(!n.name.empty(), "DAG node with empty name");
    DSSOC_REQUIRE(!n.platforms.empty(),
                  cat("node \"", n.name, "\" supports no platforms"));
    const bool inserted = node_index_.emplace(n.name, i).second;
    DSSOC_REQUIRE(inserted, cat("duplicate DAG node \"", n.name, "\""));
  }

  for (DagNode& n : nodes) {
    for (const std::string& arg : n.arguments) {
      DSSOC_REQUIRE(var_index_.count(arg) == 1,
                    cat("node \"", n.name, "\" references unknown variable \"",
                        arg, "\""));
    }
    for (const std::string& pred : n.predecessors) {
      DSSOC_REQUIRE(node_index_.count(pred) == 1,
                    cat("node \"", n.name, "\" has unknown predecessor \"",
                        pred, "\""));
    }
    for (const std::string& succ : n.successors) {
      DSSOC_REQUIRE(node_index_.count(succ) == 1,
                    cat("node \"", n.name, "\" has unknown successor \"", succ,
                        "\""));
    }
  }

  // Make predecessor/successor lists symmetric: a reference in either
  // direction implies the edge (hand-written JSON often fills only one side).
  for (DagNode& n : nodes) {
    for (const std::string& succ : n.successors) {
      DagNode& other = nodes[node_index_[succ]];
      if (std::find(other.predecessors.begin(), other.predecessors.end(),
                    n.name) == other.predecessors.end()) {
        other.predecessors.push_back(n.name);
      }
    }
    for (const std::string& pred : n.predecessors) {
      DagNode& other = nodes[node_index_[pred]];
      if (std::find(other.successors.begin(), other.successors.end(),
                    n.name) == other.successors.end()) {
        other.successors.push_back(n.name);
      }
    }
  }

  // Resolve the string-keyed references to dense indices once, so emulation
  // never repeats the map lookups per task event (successors are final only
  // after the symmetrization above).
  for (DagNode& n : nodes) {
    n.successor_indices.clear();
    n.successor_indices.reserve(n.successors.size());
    for (const std::string& succ : n.successors) {
      n.successor_indices.push_back(node_index_.at(succ));
    }
    n.argument_indices.clear();
    n.argument_indices.reserve(n.arguments.size());
    for (const std::string& arg : n.arguments) {
      n.argument_indices.push_back(var_index_.at(arg));
    }
  }

  // Acyclicity: Kahn's algorithm must consume every node.
  DSSOC_REQUIRE(topological_order().size() == nodes.size(),
                cat("application \"", name, "\" DAG contains a cycle"));
}

std::vector<std::size_t> AppModel::topological_order() const {
  std::vector<std::size_t> in_degree(nodes.size(), 0);
  for (const DagNode& n : nodes) {
    in_degree[n.index] = n.predecessors.size();
  }
  std::deque<std::size_t> frontier;
  for (const DagNode& n : nodes) {
    if (n.predecessors.empty()) {
      frontier.push_back(n.index);
    }
  }
  std::vector<std::size_t> order;
  order.reserve(nodes.size());
  while (!frontier.empty()) {
    const std::size_t current = frontier.front();
    frontier.pop_front();
    order.push_back(current);
    for (const std::string& succ : nodes[current].successors) {
      const std::size_t succ_index = node_index_.at(succ);
      if (--in_degree[succ_index] == 0) {
        frontier.push_back(succ_index);
      }
    }
  }
  return order;
}

const DagNode& AppModel::node(const std::string& node_name) const {
  return nodes[node_index(node_name)];
}

const VarSpec& AppModel::variable(const std::string& var_name) const {
  return variables[variable_index(var_name)];
}

bool AppModel::has_node(const std::string& node_name) const {
  return node_index_.count(node_name) == 1;
}

bool AppModel::has_variable(const std::string& var_name) const {
  return var_index_.count(var_name) == 1;
}

std::size_t AppModel::node_index(const std::string& node_name) const {
  const auto it = node_index_.find(node_name);
  DSSOC_REQUIRE(it != node_index_.end(),
                cat("application \"", name, "\" has no node \"", node_name,
                    "\""));
  return it->second;
}

std::size_t AppModel::variable_index(const std::string& var_name) const {
  const auto it = var_index_.find(var_name);
  DSSOC_REQUIRE(it != var_index_.end(),
                cat("application \"", name, "\" has no variable \"", var_name,
                    "\""));
  return it->second;
}

std::vector<std::size_t> AppModel::head_nodes() const {
  std::vector<std::size_t> heads;
  for (const DagNode& n : nodes) {
    if (n.predecessors.empty()) {
      heads.push_back(n.index);
    }
  }
  return heads;
}

// ---------------------------------------------------------------------------
// AppBuilder

AppBuilder::AppBuilder(std::string app_name, std::string shared_object) {
  model_.name = std::move(app_name);
  model_.shared_object = std::move(shared_object);
  if (model_.shared_object.empty()) {
    model_.shared_object = model_.name + ".so";
  }
}

AppBuilder& AppBuilder::scalar_u32(const std::string& name,
                                   std::uint32_t value) {
  VarSpec var;
  var.name = name;
  var.bytes = sizeof(std::uint32_t);
  var.init_bytes.resize(sizeof(std::uint32_t));
  std::memcpy(var.init_bytes.data(), &value, sizeof(value));
  model_.variables.push_back(std::move(var));
  return *this;
}

AppBuilder& AppBuilder::scalar_f32(const std::string& name, float value) {
  VarSpec var;
  var.name = name;
  var.bytes = sizeof(float);
  var.init_bytes.resize(sizeof(float));
  std::memcpy(var.init_bytes.data(), &value, sizeof(value));
  model_.variables.push_back(std::move(var));
  return *this;
}

AppBuilder& AppBuilder::buffer(const std::string& name,
                               std::size_t alloc_bytes) {
  VarSpec var;
  var.name = name;
  var.bytes = sizeof(void*);
  var.is_ptr = true;
  var.ptr_alloc_bytes = alloc_bytes;
  model_.variables.push_back(std::move(var));
  return *this;
}

AppBuilder& AppBuilder::buffer_init(const std::string& name,
                                    std::size_t alloc_bytes,
                                    std::vector<std::uint8_t> init) {
  VarSpec var;
  var.name = name;
  var.bytes = sizeof(void*);
  var.is_ptr = true;
  var.ptr_alloc_bytes = alloc_bytes;
  var.heap_init_bytes = std::move(init);
  model_.variables.push_back(std::move(var));
  return *this;
}

AppBuilder& AppBuilder::node(const std::string& name,
                             std::vector<std::string> arguments,
                             std::vector<std::string> predecessors,
                             std::vector<PlatformOption> platforms,
                             CostAnnotation cost) {
  DagNode n;
  n.name = name;
  n.arguments = std::move(arguments);
  n.predecessors = std::move(predecessors);
  n.platforms = std::move(platforms);
  n.cost = std::move(cost);
  model_.nodes.push_back(std::move(n));
  return *this;
}

AppModel AppBuilder::build() {
  AppModel model = std::move(model_);
  model.finalize();
  return model;
}

}  // namespace dssoc::core
