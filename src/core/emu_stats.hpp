// Emulation statistics: the per-task, per-application and per-PE records the
// framework collects before termination (§II-A), from which every table and
// figure of the paper's evaluation is derived.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/state_io.hpp"
#include "json/json.hpp"

namespace dssoc::core {

struct TaskRecord {
  std::string app_name;
  int app_instance = 0;
  std::string node_name;
  int pe_id = -1;
  std::string pe_label;
  std::string pe_type;
  SimTime ready_time = 0;     ///< entered the ready list
  SimTime dispatch_time = 0;  ///< handed to the resource manager
  SimTime start_time = 0;     ///< began executing on the PE
  SimTime end_time = 0;       ///< finished executing
};

struct AppRecord {
  std::string app_name;
  int app_instance = 0;
  SimTime injection_time = 0;
  SimTime completion_time = 0;
  std::size_t task_count = 0;
  /// Relative completion deadline copied from the WorkloadEntry (0 = none).
  SimTime deadline = 0;

  SimTime latency() const { return completion_time - injection_time; }
  bool has_deadline() const { return deadline > 0; }
  bool missed_deadline() const {
    return has_deadline() && latency() > deadline;
  }
};

struct PERecord {
  int pe_id = -1;
  std::string label;
  std::string type;
  SimTime busy_time = 0;  ///< total time executing tasks (accel: DMA+compute)
  std::size_t tasks_executed = 0;
};

/// SLO summary over a set of completed applications: latency percentiles
/// (nearest-rank over the sorted latencies), jitter (population standard
/// deviation of latency) and the deadline-miss rate over the members that
/// carried a deadline. The VoIP-style quality-vs-load report.
struct LatencyStats {
  std::size_t count = 0;  ///< completed apps summarized
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double jitter_ms = 0.0;            ///< population stddev of latency
  std::size_t deadline_count = 0;    ///< apps that carried a deadline
  std::size_t deadline_misses = 0;   ///< of those, how many missed it

  /// Misses / deadline-carrying apps (0 when none carried a deadline).
  double deadline_miss_rate() const {
    return deadline_count == 0 ? 0.0
                               : static_cast<double>(deadline_misses) /
                                     static_cast<double>(deadline_count);
  }
};

/// SLO summary over an arbitrary set of completed-application records — the
/// pooling primitive behind EmulationStats::latency_stats() and the
/// sweep-level group reductions (exp/aggregate.hpp), which pool records
/// across many emulations. Empty input yields empty (all-zero) stats.
LatencyStats latency_stats_over(const std::vector<const AppRecord*>& apps);

struct EmulationStats {
  std::string config_label;
  std::string scheduler_name;
  SimTime makespan = 0;  ///< workload execution time (last completion)

  /// Overload cut (EmulationOptions::saturation_backlog_limit): the engine
  /// detected queueing instability and terminated the point early instead
  /// of emulating an unstable queue forever. Records below cover only what
  /// completed before the cut; saturation_rate_jobs_per_ms() is the
  /// measured offered rate the configuration could not absorb.
  bool saturated = false;
  SimTime saturation_time = 0;           ///< virtual time of the cut
  std::size_t saturation_arrivals = 0;   ///< jobs injected before the cut

  std::vector<TaskRecord> tasks;
  std::vector<AppRecord> apps;
  std::vector<PERecord> pes;

  /// Accumulated scheduling overhead: monitoring, ready-queue update,
  /// scheduling algorithm, and communication to resource managers.
  SimTime scheduling_overhead_total = 0;
  std::size_t scheduling_events = 0;

  /// Mean scheduling overhead per event, in microseconds (Fig. 10b).
  double avg_scheduling_overhead_us() const;

  /// Busy / makespan for one PE, in percent (Fig. 9b).
  double pe_utilization_percent(int pe_id) const;

  /// Mean application latency (injection to completion) in ms per app name.
  std::map<std::string, double> mean_app_latency_ms() const;

  /// SLO summary over every completed application (empty stats when none
  /// completed).
  LatencyStats latency_stats() const;
  /// Per-application SLO summaries.
  std::map<std::string, LatencyStats> latency_stats_by_app() const;

  /// Measured saturation rate: jobs injected per millisecond up to the
  /// overload cut. 0 when the run did not saturate.
  double saturation_rate_jobs_per_ms() const;

  /// Workload execution time in the unit used by the figures.
  double makespan_ms() const { return sim_to_ms(makespan); }
  double makespan_sec() const { return sim_to_sec(makespan); }

  /// Structured export for downstream analysis.
  json::Value to_json() const;
  /// CSV export of the task table (one row per executed task).
  std::string tasks_to_csv() const;

  /// Checkpoint of every record collected so far (full deep copy — the
  /// record vectors ARE the semantic state; a restored run appends to them
  /// exactly where the source left off).
  void save(StateWriter& out) const;
  void load(StateReader& in);

  /// Order-sensitive digest over the emulated results (makespan, overhead,
  /// every task/app/PE record — labels included, host wall time excluded).
  /// Two runs of the same point are bit-identical iff their digests match;
  /// the sweep fabric uses it to prove in-process, forked and
  /// worker-process executions interchangeable.
  std::uint64_t digest() const;
};

}  // namespace dssoc::core
