#include "core/emu_stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::core {

namespace {

/// Nearest-rank percentile over an ascending sample vector.
double percentile(const std::vector<double>& sorted, double q) {
  DSSOC_ASSERT(!sorted.empty() && q > 0.0 && q <= 1.0);
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t index =
      std::min(sorted.size() - 1, static_cast<std::size_t>(rank) - 1);
  return sorted[index];
}

}  // namespace

LatencyStats latency_stats_over(const std::vector<const AppRecord*>& apps) {
  LatencyStats stats;
  if (apps.empty()) {
    return stats;
  }
  std::vector<double> latencies;
  latencies.reserve(apps.size());
  double sum = 0.0;
  for (const AppRecord* app : apps) {
    const double latency_ms = sim_to_ms(app->latency());
    latencies.push_back(latency_ms);
    sum += latency_ms;
    if (app->has_deadline()) {
      ++stats.deadline_count;
      stats.deadline_misses += app->missed_deadline() ? 1u : 0u;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  stats.count = latencies.size();
  stats.mean_ms = sum / static_cast<double>(latencies.size());
  stats.p50_ms = percentile(latencies, 0.50);
  stats.p95_ms = percentile(latencies, 0.95);
  stats.p99_ms = percentile(latencies, 0.99);
  stats.max_ms = latencies.back();
  double variance = 0.0;
  for (const double latency_ms : latencies) {
    const double delta = latency_ms - stats.mean_ms;
    variance += delta * delta;
  }
  stats.jitter_ms = std::sqrt(variance / static_cast<double>(latencies.size()));
  return stats;
}

double EmulationStats::avg_scheduling_overhead_us() const {
  if (scheduling_events == 0) {
    return 0.0;
  }
  return sim_to_us(scheduling_overhead_total) /
         static_cast<double>(scheduling_events);
}

double EmulationStats::pe_utilization_percent(int pe_id) const {
  if (makespan <= 0) {
    return 0.0;
  }
  for (const PERecord& pe : pes) {
    if (pe.pe_id == pe_id) {
      return 100.0 * static_cast<double>(pe.busy_time) /
             static_cast<double>(makespan);
    }
  }
  throw DssocError(cat("no PE record with id ", pe_id));
}

std::map<std::string, double> EmulationStats::mean_app_latency_ms() const {
  std::map<std::string, double> sums;
  std::map<std::string, std::size_t> counts;
  for (const AppRecord& app : apps) {
    sums[app.app_name] += sim_to_ms(app.latency());
    counts[app.app_name] += 1;
  }
  std::map<std::string, double> means;
  for (const auto& [name, sum] : sums) {
    means[name] = sum / static_cast<double>(counts[name]);
  }
  return means;
}

LatencyStats EmulationStats::latency_stats() const {
  std::vector<const AppRecord*> pointers;
  pointers.reserve(apps.size());
  for (const AppRecord& app : apps) {
    pointers.push_back(&app);
  }
  return latency_stats_over(pointers);
}

std::map<std::string, LatencyStats> EmulationStats::latency_stats_by_app()
    const {
  std::map<std::string, std::vector<const AppRecord*>> buckets;
  for (const AppRecord& app : apps) {
    buckets[app.app_name].push_back(&app);
  }
  std::map<std::string, LatencyStats> out;
  for (const auto& [name, pointers] : buckets) {
    out[name] = latency_stats_over(pointers);
  }
  return out;
}

double EmulationStats::saturation_rate_jobs_per_ms() const {
  if (!saturated || saturation_time <= 0) {
    return 0.0;
  }
  return static_cast<double>(saturation_arrivals) /
         sim_to_ms(saturation_time);
}

json::Value EmulationStats::to_json() const {
  json::Object root;
  root.set("config", config_label);
  root.set("scheduler", scheduler_name);
  root.set("makespan_ms", makespan_ms());
  root.set("scheduling_overhead_us_total",
           sim_to_us(scheduling_overhead_total));
  root.set("scheduling_events", scheduling_events);
  root.set("avg_scheduling_overhead_us", avg_scheduling_overhead_us());
  root.set("saturated", saturated);
  if (saturated) {
    root.set("saturation_ms", sim_to_ms(saturation_time));
    root.set("saturation_arrivals", saturation_arrivals);
    root.set("saturation_rate_jobs_per_ms", saturation_rate_jobs_per_ms());
  }
  {
    const LatencyStats slo = latency_stats();
    json::Object latency;
    latency.set("count", slo.count);
    latency.set("mean_ms", slo.mean_ms);
    latency.set("p50_ms", slo.p50_ms);
    latency.set("p95_ms", slo.p95_ms);
    latency.set("p99_ms", slo.p99_ms);
    latency.set("max_ms", slo.max_ms);
    latency.set("jitter_ms", slo.jitter_ms);
    latency.set("deadline_count", slo.deadline_count);
    latency.set("deadline_misses", slo.deadline_misses);
    latency.set("deadline_miss_rate", slo.deadline_miss_rate());
    root.set("latency", json::Value(std::move(latency)));
  }

  json::Array pe_array;
  for (const PERecord& pe : pes) {
    json::Object entry;
    entry.set("id", pe.pe_id);
    entry.set("label", pe.label);
    entry.set("type", pe.type);
    entry.set("busy_ms", sim_to_ms(pe.busy_time));
    entry.set("tasks", pe.tasks_executed);
    entry.set("utilization_percent", pe_utilization_percent(pe.pe_id));
    pe_array.push_back(json::Value(std::move(entry)));
  }
  root.set("pes", std::move(pe_array));

  json::Array app_array;
  for (const AppRecord& app : apps) {
    json::Object entry;
    entry.set("app", app.app_name);
    entry.set("instance", app.app_instance);
    entry.set("injection_ms", sim_to_ms(app.injection_time));
    entry.set("completion_ms", sim_to_ms(app.completion_time));
    entry.set("latency_ms", sim_to_ms(app.latency()));
    entry.set("tasks", app.task_count);
    if (app.has_deadline()) {
      entry.set("deadline_ms", sim_to_ms(app.deadline));
      entry.set("deadline_missed", app.missed_deadline());
    }
    app_array.push_back(json::Value(std::move(entry)));
  }
  root.set("apps", std::move(app_array));
  root.set("task_count", tasks.size());
  return json::Value(std::move(root));
}

void EmulationStats::save(StateWriter& out) const {
  out.str(config_label);
  out.str(scheduler_name);
  out.i64(makespan);
  out.i64(scheduling_overhead_total);
  out.u64(scheduling_events);
  out.u8(saturated ? 1 : 0);
  out.i64(saturation_time);
  out.u64(saturation_arrivals);
  out.u64(tasks.size());
  for (const TaskRecord& task : tasks) {
    out.str(task.app_name);
    out.i32(task.app_instance);
    out.str(task.node_name);
    out.i32(task.pe_id);
    out.str(task.pe_label);
    out.str(task.pe_type);
    out.i64(task.ready_time);
    out.i64(task.dispatch_time);
    out.i64(task.start_time);
    out.i64(task.end_time);
  }
  out.u64(apps.size());
  for (const AppRecord& app : apps) {
    out.str(app.app_name);
    out.i32(app.app_instance);
    out.i64(app.injection_time);
    out.i64(app.completion_time);
    out.u64(app.task_count);
    out.i64(app.deadline);
  }
  out.u64(pes.size());
  for (const PERecord& pe : pes) {
    out.i32(pe.pe_id);
    out.str(pe.label);
    out.str(pe.type);
    out.i64(pe.busy_time);
    out.u64(pe.tasks_executed);
  }
}

std::uint64_t EmulationStats::digest() const {
  // The checkpoint encoding is already a canonical, pointer-free byte image
  // of exactly the semantic fields; hash that instead of maintaining a
  // parallel field walk that could drift from save().
  StateWriter out(state_tag('S', 'D', 'I', 'G'));
  save(out);
  const std::vector<std::uint8_t> bytes = out.take();
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  for (const std::uint8_t byte : bytes) {
    h ^= byte;
    h *= 1099511628211ULL;
  }
  return h;
}

void EmulationStats::load(StateReader& in) {
  config_label = in.str();
  scheduler_name = in.str();
  makespan = in.i64();
  scheduling_overhead_total = in.i64();
  scheduling_events = static_cast<std::size_t>(in.u64());
  saturated = in.u8() != 0;
  saturation_time = in.i64();
  saturation_arrivals = static_cast<std::size_t>(in.u64());
  tasks.clear();
  const std::uint64_t task_count = in.u64();
  tasks.reserve(static_cast<std::size_t>(task_count));
  for (std::uint64_t i = 0; i < task_count; ++i) {
    TaskRecord task;
    task.app_name = in.str();
    task.app_instance = in.i32();
    task.node_name = in.str();
    task.pe_id = in.i32();
    task.pe_label = in.str();
    task.pe_type = in.str();
    task.ready_time = in.i64();
    task.dispatch_time = in.i64();
    task.start_time = in.i64();
    task.end_time = in.i64();
    tasks.push_back(std::move(task));
  }
  apps.clear();
  const std::uint64_t app_count = in.u64();
  apps.reserve(static_cast<std::size_t>(app_count));
  for (std::uint64_t i = 0; i < app_count; ++i) {
    AppRecord app;
    app.app_name = in.str();
    app.app_instance = in.i32();
    app.injection_time = in.i64();
    app.completion_time = in.i64();
    app.task_count = static_cast<std::size_t>(in.u64());
    app.deadline = in.i64();
    apps.push_back(std::move(app));
  }
  pes.clear();
  const std::uint64_t pe_count = in.u64();
  pes.reserve(static_cast<std::size_t>(pe_count));
  for (std::uint64_t i = 0; i < pe_count; ++i) {
    PERecord pe;
    pe.pe_id = in.i32();
    pe.label = in.str();
    pe.type = in.str();
    pe.busy_time = in.i64();
    pe.tasks_executed = static_cast<std::size_t>(in.u64());
    pes.push_back(std::move(pe));
  }
}

std::string EmulationStats::tasks_to_csv() const {
  std::ostringstream out;
  out << "app,instance,node,pe_id,pe_label,pe_type,ready_us,dispatch_us,"
         "start_us,end_us\n";
  for (const TaskRecord& task : tasks) {
    out << task.app_name << ',' << task.app_instance << ',' << task.node_name
        << ',' << task.pe_id << ',' << task.pe_label << ',' << task.pe_type
        << ',' << sim_to_us(task.ready_time) << ','
        << sim_to_us(task.dispatch_time) << ',' << sim_to_us(task.start_time)
        << ',' << sim_to_us(task.end_time) << '\n';
  }
  return out.str();
}

}  // namespace dssoc::core
