#include "core/emu_stats.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::core {

double EmulationStats::avg_scheduling_overhead_us() const {
  if (scheduling_events == 0) {
    return 0.0;
  }
  return sim_to_us(scheduling_overhead_total) /
         static_cast<double>(scheduling_events);
}

double EmulationStats::pe_utilization_percent(int pe_id) const {
  if (makespan <= 0) {
    return 0.0;
  }
  for (const PERecord& pe : pes) {
    if (pe.pe_id == pe_id) {
      return 100.0 * static_cast<double>(pe.busy_time) /
             static_cast<double>(makespan);
    }
  }
  throw DssocError(cat("no PE record with id ", pe_id));
}

std::map<std::string, double> EmulationStats::mean_app_latency_ms() const {
  std::map<std::string, double> sums;
  std::map<std::string, std::size_t> counts;
  for (const AppRecord& app : apps) {
    sums[app.app_name] += sim_to_ms(app.latency());
    counts[app.app_name] += 1;
  }
  std::map<std::string, double> means;
  for (const auto& [name, sum] : sums) {
    means[name] = sum / static_cast<double>(counts[name]);
  }
  return means;
}

json::Value EmulationStats::to_json() const {
  json::Object root;
  root.set("config", config_label);
  root.set("scheduler", scheduler_name);
  root.set("makespan_ms", makespan_ms());
  root.set("scheduling_overhead_us_total",
           sim_to_us(scheduling_overhead_total));
  root.set("scheduling_events", scheduling_events);
  root.set("avg_scheduling_overhead_us", avg_scheduling_overhead_us());

  json::Array pe_array;
  for (const PERecord& pe : pes) {
    json::Object entry;
    entry.set("id", pe.pe_id);
    entry.set("label", pe.label);
    entry.set("type", pe.type);
    entry.set("busy_ms", sim_to_ms(pe.busy_time));
    entry.set("tasks", pe.tasks_executed);
    entry.set("utilization_percent", pe_utilization_percent(pe.pe_id));
    pe_array.push_back(json::Value(std::move(entry)));
  }
  root.set("pes", std::move(pe_array));

  json::Array app_array;
  for (const AppRecord& app : apps) {
    json::Object entry;
    entry.set("app", app.app_name);
    entry.set("instance", app.app_instance);
    entry.set("injection_ms", sim_to_ms(app.injection_time));
    entry.set("completion_ms", sim_to_ms(app.completion_time));
    entry.set("latency_ms", sim_to_ms(app.latency()));
    entry.set("tasks", app.task_count);
    app_array.push_back(json::Value(std::move(entry)));
  }
  root.set("apps", std::move(app_array));
  root.set("task_count", tasks.size());
  return json::Value(std::move(root));
}

void EmulationStats::save(StateWriter& out) const {
  out.str(config_label);
  out.str(scheduler_name);
  out.i64(makespan);
  out.i64(scheduling_overhead_total);
  out.u64(scheduling_events);
  out.u64(tasks.size());
  for (const TaskRecord& task : tasks) {
    out.str(task.app_name);
    out.i32(task.app_instance);
    out.str(task.node_name);
    out.i32(task.pe_id);
    out.str(task.pe_label);
    out.str(task.pe_type);
    out.i64(task.ready_time);
    out.i64(task.dispatch_time);
    out.i64(task.start_time);
    out.i64(task.end_time);
  }
  out.u64(apps.size());
  for (const AppRecord& app : apps) {
    out.str(app.app_name);
    out.i32(app.app_instance);
    out.i64(app.injection_time);
    out.i64(app.completion_time);
    out.u64(app.task_count);
  }
  out.u64(pes.size());
  for (const PERecord& pe : pes) {
    out.i32(pe.pe_id);
    out.str(pe.label);
    out.str(pe.type);
    out.i64(pe.busy_time);
    out.u64(pe.tasks_executed);
  }
}

std::uint64_t EmulationStats::digest() const {
  // The checkpoint encoding is already a canonical, pointer-free byte image
  // of exactly the semantic fields; hash that instead of maintaining a
  // parallel field walk that could drift from save().
  StateWriter out(state_tag('S', 'D', 'I', 'G'));
  save(out);
  const std::vector<std::uint8_t> bytes = out.take();
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  for (const std::uint8_t byte : bytes) {
    h ^= byte;
    h *= 1099511628211ULL;
  }
  return h;
}

void EmulationStats::load(StateReader& in) {
  config_label = in.str();
  scheduler_name = in.str();
  makespan = in.i64();
  scheduling_overhead_total = in.i64();
  scheduling_events = static_cast<std::size_t>(in.u64());
  tasks.clear();
  const std::uint64_t task_count = in.u64();
  tasks.reserve(static_cast<std::size_t>(task_count));
  for (std::uint64_t i = 0; i < task_count; ++i) {
    TaskRecord task;
    task.app_name = in.str();
    task.app_instance = in.i32();
    task.node_name = in.str();
    task.pe_id = in.i32();
    task.pe_label = in.str();
    task.pe_type = in.str();
    task.ready_time = in.i64();
    task.dispatch_time = in.i64();
    task.start_time = in.i64();
    task.end_time = in.i64();
    tasks.push_back(std::move(task));
  }
  apps.clear();
  const std::uint64_t app_count = in.u64();
  apps.reserve(static_cast<std::size_t>(app_count));
  for (std::uint64_t i = 0; i < app_count; ++i) {
    AppRecord app;
    app.app_name = in.str();
    app.app_instance = in.i32();
    app.injection_time = in.i64();
    app.completion_time = in.i64();
    app.task_count = static_cast<std::size_t>(in.u64());
    apps.push_back(std::move(app));
  }
  pes.clear();
  const std::uint64_t pe_count = in.u64();
  pes.reserve(static_cast<std::size_t>(pe_count));
  for (std::uint64_t i = 0; i < pe_count; ++i) {
    PERecord pe;
    pe.pe_id = in.i32();
    pe.label = in.str();
    pe.type = in.str();
    pe.busy_time = in.i64();
    pe.tasks_executed = static_cast<std::size_t>(in.u64());
    pes.push_back(std::move(pe));
  }
}

std::string EmulationStats::tasks_to_csv() const {
  std::ostringstream out;
  out << "app,instance,node,pe_id,pe_label,pe_type,ready_us,dispatch_us,"
         "start_us,end_us\n";
  for (const TaskRecord& task : tasks) {
    out << task.app_name << ',' << task.app_instance << ',' << task.node_name
        << ',' << task.pe_id << ',' << task.pe_label << ',' << task.pe_type
        << ',' << sim_to_us(task.ready_time) << ','
        << sim_to_us(task.dispatch_time) << ',' << sim_to_us(task.start_time)
        << ',' << sim_to_us(task.end_time) << '\n';
  }
  return out.str();
}

}  // namespace dssoc::core
