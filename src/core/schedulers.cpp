// The default scheduling library: FRFS, MET, EFT, RANDOM.
#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "core/scheduler.hpp"

namespace dssoc::core {

const PlatformOption* supported_option(const TaskInstance& task,
                                       const ResourceHandler& handler) {
  for (const PlatformOption& option : task.node->platforms) {
    if (option.pe_type == handler.pe().type.name) {
      return &option;
    }
  }
  return nullptr;
}

void OptionLookup::add_pe(const platform::PE& pe) {
  const auto [it, inserted] =
      type_slot_.try_emplace(pe.type.name, type_slot_.size());
  const auto id = static_cast<std::size_t>(pe.id);
  if (pe_slot_.size() <= id) {
    pe_slot_.resize(id + 1, kUnregisteredPe);  // gaps fall back to the scan
  }
  pe_slot_[id] = it->second;
  if (inserted) {
    // A new type widens every already-registered node's table.
    for (auto& [node, options] : node_options_) {
      options.resize(type_slot_.size(), nullptr);
      for (const PlatformOption& option : node->platforms) {
        if (option.pe_type == pe.type.name &&
            options[it->second] == nullptr) {
          options[it->second] = &option;
        }
      }
    }
  }
}

void OptionLookup::add_model(const AppModel& model) {
  for (const DagNode& node : model.nodes) {
    auto [it, inserted] = node_options_.try_emplace(&node);
    if (!inserted) {
      continue;
    }
    it->second.assign(type_slot_.size(), nullptr);
    for (const PlatformOption& option : node.platforms) {
      const auto slot = type_slot_.find(option.pe_type);
      // Keep the *first* matching option per type, like the linear scan.
      if (slot != type_slot_.end() && it->second[slot->second] == nullptr) {
        it->second[slot->second] = &option;
      }
    }
  }
}

const PlatformOption* OptionLookup::find(const TaskInstance& task,
                                         const ResourceHandler& handler) const {
  const auto id = static_cast<std::size_t>(handler.pe().id);
  if (id >= pe_slot_.size() || pe_slot_[id] == kUnregisteredPe) {
    return supported_option(task, handler);
  }
  const auto it = node_options_.find(task.node);
  if (it == node_options_.end()) {
    return supported_option(task, handler);
  }
  return it->second[pe_slot_[id]];
}

const PlatformOption* SchedulerContext::option(
    const TaskInstance& task, const ResourceHandler& handler) const {
  return options != nullptr ? options->find(task, handler)
                            : supported_option(task, handler);
}

namespace {

/// First ready-first start: walk the ready list in arrival order and hand
/// each task to the first accepting PE that supports it. Complexity per
/// assignment is O(P) — the paper's "complexity equal to the number of PEs".
class FrfsScheduler final : public Scheduler {
 public:
  const std::string& name() const override {
    static const std::string n = "FRFS";
    return n;
  }

  void schedule(ReadyList& ready, std::vector<ResourceHandler*>& handlers,
                SchedulerContext& ctx) override {
    for (auto it = ready.begin(); it != ready.end();) {
      TaskInstance* task = *it;
      const PlatformOption* chosen = nullptr;
      ResourceHandler* target = nullptr;
      for (ResourceHandler* handler : handlers) {
        if (!handler->can_accept()) {
          continue;
        }
        if (const PlatformOption* option = ctx.option(*task, *handler)) {
          chosen = option;
          target = handler;
          break;
        }
      }
      if (target != nullptr) {
        target->assign(task, chosen, ctx.now);
        it = ready.erase(it);
      } else {
        ++it;
      }
    }
  }
};

/// Minimum execution time (classic MET): each task is bound to the PE with
/// the smallest predicted execution time, *regardless of availability* —
/// if that PE is busy the task waits in the ready list rather than running
/// somewhere slower. O(n * P) estimator evaluations per invocation.
class MetScheduler final : public Scheduler {
 public:
  const std::string& name() const override {
    static const std::string n = "MET";
    return n;
  }

  void schedule(ReadyList& ready, std::vector<ResourceHandler*>& handlers,
                SchedulerContext& ctx) override {
    DSSOC_REQUIRE(ctx.estimator != nullptr,
                  "MET requires an execution estimator");
    for (auto it = ready.begin(); it != ready.end();) {
      TaskInstance* task = *it;
      ResourceHandler* best = nullptr;
      const PlatformOption* best_option = nullptr;
      SimTime best_estimate = kSimTimeNever;
      for (ResourceHandler* handler : handlers) {
        const PlatformOption* option = ctx.option(*task, *handler);
        if (option == nullptr) {
          continue;
        }
        const SimTime estimate = ctx.estimator->estimate(*task, *option,
                                                         *handler);
        // Strictly faster wins; among PEs tied for the minimum execution
        // time, prefer one that can accept work now (equal cores share the
        // load instead of all tasks queueing on the first core).
        const bool better =
            estimate < best_estimate ||
            (estimate == best_estimate && best != nullptr &&
             !best->can_accept() && handler->can_accept());
        if (better) {
          best_estimate = estimate;
          best = handler;
          best_option = option;
        }
      }
      if (best != nullptr && best->can_accept()) {
        best->assign(task, best_option, ctx.now);
        it = ready.erase(it);
      } else {
        ++it;
      }
    }
  }
};

/// Earliest finish time. Every invocation replans the *entire* ready list:
/// it repeatedly commits the (task, PE) pair with the globally minimal
/// predicted finish time, updating that PE's virtual availability, until
/// every ready task has a planned slot — n planning rounds, each sweeping
/// all remaining (task, PE) pairs. That full replan is the O(n^2) cost the
/// paper attributes to its EFT implementation; only the plan's head (tasks
/// landing on PEs that can accept work now) is actually dispatched.
class EftScheduler final : public Scheduler {
 public:
  const std::string& name() const override {
    static const std::string n = "EFT";
    return n;
  }

  void schedule(ReadyList& ready, std::vector<ResourceHandler*>& handlers,
                SchedulerContext& ctx) override {
    DSSOC_REQUIRE(ctx.estimator != nullptr,
                  "EFT requires an execution estimator");
    const std::size_t n = ready.size();
    std::vector<SimTime> available(handlers.size());
    std::vector<int> slots(handlers.size());
    for (std::size_t h = 0; h < handlers.size(); ++h) {
      available[h] =
          std::max(ctx.now, ctx.estimator->available_at(*handlers[h]));
      slots[h] = handlers[h]->can_accept() ? 1 : 0;
    }

    // First planning round: resolve every (task, handler) option once and
    // make one real estimate call per supported pair, in the same task-major
    // order the re-estimating sweep used. Later rounds reuse the memo and
    // report the sweep's logical estimate count instead, so engines that
    // price scheduler work per estimator call still charge the algorithm's
    // O(n^2) replan complexity — only the host cost drops.
    struct SupportedPair {
      std::size_t handler;
      const PlatformOption* option;
      SimTime estimate;
    };
    std::vector<std::vector<SupportedPair>> pairs(n);
    std::size_t unplanned_pairs = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const TaskInstance& task = *ready[t];
      for (std::size_t h = 0; h < handlers.size(); ++h) {
        if (const PlatformOption* option = ctx.option(task, *handlers[h])) {
          pairs[t].push_back(
              {h, option,
               ctx.estimator->estimate(task, *option, *handlers[h])});
        }
      }
      unplanned_pairs += pairs[t].size();
    }

    std::vector<bool> planned(n, false);
    std::vector<bool> dispatched(n, false);
    for (std::size_t round = 0; round < n; ++round) {
      if (round > 0) {
        ctx.estimator->note_logical_estimates(unplanned_pairs);
      }
      SimTime best_finish = kSimTimeNever;
      std::size_t best_task = 0;
      std::size_t best_handler = 0;
      const PlatformOption* best_option = nullptr;
      for (std::size_t t = 0; t < n; ++t) {
        if (planned[t]) {
          continue;
        }
        for (const SupportedPair& pair : pairs[t]) {
          const SimTime start = std::max(ctx.now, available[pair.handler]);
          const SimTime finish = start + pair.estimate;
          if (finish < best_finish) {
            best_finish = finish;
            best_task = t;
            best_handler = pair.handler;
            best_option = pair.option;
          }
        }
      }
      if (best_option == nullptr) {
        break;  // remaining tasks have no supporting PE
      }
      planned[best_task] = true;
      unplanned_pairs -= pairs[best_task].size();
      available[best_handler] = best_finish;
      if (slots[best_handler] > 0) {
        // Head of this PE's plan: dispatch it now.
        handlers[best_handler]->assign(ready[best_task], best_option,
                                       ctx.now);
        slots[best_handler] -= 1;
        dispatched[best_task] = true;
      }
    }

    ReadyList remaining;
    for (std::size_t t = 0; t < n; ++t) {
      if (!dispatched[t]) {
        remaining.push_back(ready[t]);
      }
    }
    ready = std::move(remaining);
  }
};

/// Uniform-random assignment among the accepting, supporting PEs.
class RandomScheduler final : public Scheduler {
 public:
  const std::string& name() const override {
    static const std::string n = "RANDOM";
    return n;
  }

  void schedule(ReadyList& ready, std::vector<ResourceHandler*>& handlers,
                SchedulerContext& ctx) override {
    DSSOC_REQUIRE(ctx.rng != nullptr, "RANDOM requires an RNG");
    for (auto it = ready.begin(); it != ready.end();) {
      TaskInstance* task = *it;
      std::vector<std::pair<ResourceHandler*, const PlatformOption*>>
          candidates;
      for (ResourceHandler* handler : handlers) {
        if (!handler->can_accept()) {
          continue;
        }
        if (const PlatformOption* option = ctx.option(*task, *handler)) {
          candidates.emplace_back(handler, option);
        }
      }
      if (!candidates.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            ctx.rng->next_below(candidates.size()));
        candidates[pick].first->assign(task, candidates[pick].second, ctx.now);
        it = ready.erase(it);
      } else {
        ++it;
      }
    }
  }
};

}  // namespace

std::unique_ptr<Scheduler> make_frfs_scheduler() {
  return std::make_unique<FrfsScheduler>();
}
std::unique_ptr<Scheduler> make_met_scheduler() {
  return std::make_unique<MetScheduler>();
}
std::unique_ptr<Scheduler> make_eft_scheduler() {
  return std::make_unique<EftScheduler>();
}
std::unique_ptr<Scheduler> make_random_scheduler() {
  return std::make_unique<RandomScheduler>();
}

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry registry = [] {
    SchedulerRegistry r;
    r.register_policy("FRFS", make_frfs_scheduler);
    r.register_policy("MET", make_met_scheduler);
    r.register_policy("EFT", make_eft_scheduler);
    r.register_policy("RANDOM", make_random_scheduler);
    return r;
  }();
  return registry;
}

void SchedulerRegistry::register_policy(const std::string& name,
                                        Factory factory) {
  DSSOC_REQUIRE(factory != nullptr, "null scheduler factory");
  factories_[name] = std::move(factory);
}

bool SchedulerRegistry::has_policy(const std::string& name) const {
  return factories_.count(name) == 1;
}

std::unique_ptr<Scheduler> SchedulerRegistry::create(
    const std::string& name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw ConfigError("unknown scheduling policy \"" + name + "\"");
  }
  return it->second();
}

std::vector<std::string> SchedulerRegistry::policy_names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace dssoc::core
