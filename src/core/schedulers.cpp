// The default scheduling library: FRFS, MET, EFT, RANDOM.
//
// Scheduler objects are per-engine (created via the registry at emulation
// init) and invoked from one thread, so each policy keeps its working
// buffers as members: after a warm-up invocation the steady state performs
// no heap allocation, which the engine's zero-allocation-per-event property
// (tests/alloc_test.cpp) depends on.
#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/scheduler.hpp"

namespace dssoc::core {

const PlatformOption* supported_option(const TaskInstance& task,
                                       const ResourceHandler& handler) {
  for (const PlatformOption& option : task.node->platforms) {
    if (option.pe_type == handler.pe().type.name) {
      return &option;
    }
  }
  return nullptr;
}

void OptionLookup::add_pe(const platform::PE& pe) {
  const auto [it, inserted] =
      type_slot_.try_emplace(pe.type.name, type_slot_.size());
  const auto id = static_cast<std::size_t>(pe.id);
  if (pe_slot_.size() <= id) {
    pe_slot_.resize(id + 1, kUnregisteredPe);  // gaps fall back to the scan
  }
  pe_slot_[id] = it->second;
  if (inserted) {
    // A new type widens every already-registered node's table.
    for (NodeInfo& info : node_infos_) {
      info.options.resize(type_slot_.size(), nullptr);
      for (const PlatformOption& option : info.node->platforms) {
        if (option.pe_type == pe.type.name &&
            info.options[it->second] == nullptr) {
          info.options[it->second] = &option;
        }
      }
    }
  }
}

void OptionLookup::add_model(const AppModel& model) {
  for (const auto& [registered, base] : model_base_) {
    if (registered == &model) {
      return;  // idempotent per model
    }
  }
  const auto base = static_cast<std::uint32_t>(node_infos_.size());
  model_base_.emplace_back(&model, base);
  for (const DagNode& node : model.nodes) {
    node_id_.emplace(&node, static_cast<std::uint32_t>(node_infos_.size()));
    NodeInfo info;
    info.node = &node;
    info.model = &model;
    info.options.assign(type_slot_.size(), nullptr);
    for (const PlatformOption& option : node.platforms) {
      const auto slot = type_slot_.find(option.pe_type);
      // Keep the *first* matching option per type, like the linear scan.
      if (slot != type_slot_.end() && info.options[slot->second] == nullptr) {
        info.options[slot->second] = &option;
      }
    }
    node_infos_.push_back(std::move(info));
  }
}

void OptionLookup::intern(const platform::CostModel& cost_model,
                          const SharedObjectRegistry* registry) {
  option_fns_.clear();
  for (NodeInfo& info : node_infos_) {
    info.cpu_cost = cost_model.cpu_cost_entry(info.node->cost.kernel);
    info.fn_offset = option_fns_.size();
    for (const PlatformOption& option : info.node->platforms) {
      if (registry == nullptr) {
        option_fns_.push_back(nullptr);
        continue;
      }
      // The paper resolves every runfunc at parse time; keeping that
      // contract here surfaces symbol errors at emulation init, before any
      // task runs.
      const std::string& object = option.shared_object.empty()
                                      ? info.model->shared_object
                                      : option.shared_object;
      option_fns_.push_back(&registry->resolve(object, option.runfunc));
    }
  }
}

std::uint32_t OptionLookup::node_base(const AppModel& model) const {
  for (const auto& [registered, base] : model_base_) {
    if (registered == &model) {
      return base;
    }
  }
  return node_count();
}

const PlatformOption* OptionLookup::find(const TaskInstance& task,
                                         const ResourceHandler& handler) const {
  const auto id = static_cast<std::size_t>(handler.pe().id);
  if (id >= pe_slot_.size() || pe_slot_[id] == kUnregisteredPe) {
    return supported_option(task, handler);
  }
  // Fast path: the engine stamped the dense node id into the task. The
  // identity check makes a stale/unset lookup_id fall back instead of
  // silently aliasing another node.
  if (task.lookup_id < node_infos_.size() &&
      node_infos_[task.lookup_id].node == task.node) {
    return node_infos_[task.lookup_id].options[pe_slot_[id]];
  }
  const auto it = node_id_.find(task.node);
  if (it == node_id_.end()) {
    return supported_option(task, handler);
  }
  return node_infos_[it->second].options[pe_slot_[id]];
}

const PlatformOption* SchedulerContext::option(
    const TaskInstance& task, const ResourceHandler& handler) const {
  return options != nullptr ? options->find(task, handler)
                            : supported_option(task, handler);
}

namespace {

/// First ready-first start: walk the ready list in arrival order and hand
/// each task to the first accepting PE that supports it. Complexity per
/// assignment is O(P) — the paper's "complexity equal to the number of PEs".
class FrfsScheduler final : public Scheduler {
 public:
  const std::string& name() const override {
    static const std::string n = "FRFS";
    return n;
  }

  void schedule(ReadyList& ready, std::vector<ResourceHandler*>& handlers,
                SchedulerContext& ctx) override {
    // One can_accept() per handler (a mutex acquisition) replaces one per
    // (task, handler) pair. In the single-threaded virtual-time engine the
    // cached flags always equal the live values (acceptance only changes
    // through this invocation's own assignments). In the real-time engine a
    // manager thread may free a slot mid-invocation; the stale flag is
    // conservative — the slot is picked up on the next workload-manager
    // cycle, the same granularity at which the WM observes completions.
    accept_.assign(handlers.size(), 0);
    std::size_t accepting = 0;
    for (std::size_t h = 0; h < handlers.size(); ++h) {
      accept_[h] = handlers[h]->can_accept() ? 1 : 0;
      accepting += accept_[h];
    }
    for (auto it = ready.begin(); it != ready.end() && accepting > 0;) {
      TaskInstance* task = *it;
      const PlatformOption* chosen = nullptr;
      std::size_t target = handlers.size();
      for (std::size_t h = 0; h < handlers.size(); ++h) {
        if (!accept_[h]) {
          continue;
        }
        if (const PlatformOption* option = ctx.option(*task, *handlers[h])) {
          chosen = option;
          target = h;
          break;
        }
      }
      if (target != handlers.size()) {
        handlers[target]->assign(task, chosen, ctx.now);
        if (!handlers[target]->can_accept()) {
          accept_[target] = 0;
          --accepting;
        }
        it = ready.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  std::vector<char> accept_;
};

/// Minimum execution time (classic MET): each task is bound to the PE with
/// the smallest predicted execution time, *regardless of availability* —
/// if that PE is busy the task waits in the ready list rather than running
/// somewhere slower. O(n * P) estimator evaluations per invocation.
///
/// Implementation note: estimates are a function of (DAG node, PE) — the
/// ExecutionEstimator contract — so within one invocation the per-task loop
/// makes one real estimator call per distinct (node, handler) pair and
/// replays the memo for the node's other ready instances, reporting the
/// replayed count via note_logical_estimates. Engines that price scheduler
/// work per estimator call therefore still charge the algorithm's O(n * P)
/// complexity; only the host cost drops (cf. EFT's memoized replan).
class MetScheduler final : public Scheduler {
 public:
  const std::string& name() const override {
    static const std::string n = "MET";
    return n;
  }

  void schedule(ReadyList& ready, std::vector<ResourceHandler*>& handlers,
                SchedulerContext& ctx) override {
    DSSOC_REQUIRE(ctx.estimator != nullptr,
                  "MET requires an execution estimator");
    ++epoch_;
    // Cached acceptance flags; exact in the virtual-time engine,
    // conservative under real-time concurrency (see FrfsScheduler).
    accept_.assign(handlers.size(), 0);
    for (std::size_t h = 0; h < handlers.size(); ++h) {
      accept_[h] = handlers[h]->can_accept() ? 1 : 0;
    }
    for (auto it = ready.begin(); it != ready.end();) {
      TaskInstance* task = *it;
      NodeMemo& memo = memo_[task->node];
      if (memo.epoch != epoch_) {
        // First ready instance of this node: resolve its options and make
        // the real estimator calls, one per supported handler.
        memo.epoch = epoch_;
        memo.options.assign(handlers.size(), nullptr);
        memo.estimates.assign(handlers.size(), -1);
        for (std::size_t h = 0; h < handlers.size(); ++h) {
          if (const PlatformOption* option = ctx.option(*task, *handlers[h])) {
            memo.options[h] = option;
            memo.estimates[h] =
                ctx.estimator->estimate(*task, *option, *handlers[h]);
          }
        }
      } else {
        // Replayed instances account the same estimates in one batch: the
        // total reported to the estimator equals the per-pair calls the
        // unmemoized loop made, so the modeled charge is unchanged.
        std::size_t replayed = 0;
        for (std::size_t h = 0; h < handlers.size(); ++h) {
          replayed += memo.options[h] != nullptr ? 1 : 0;
        }
        if (replayed > 0) {
          ctx.estimator->note_logical_estimates(replayed);
        }
      }
      std::size_t best = handlers.size();
      const PlatformOption* best_option = nullptr;
      SimTime best_estimate = kSimTimeNever;
      for (std::size_t h = 0; h < handlers.size(); ++h) {
        const PlatformOption* option = memo.options[h];
        if (option == nullptr) {
          continue;
        }
        const SimTime estimate = memo.estimates[h];
        // Strictly faster wins; among PEs tied for the minimum execution
        // time, prefer one that can accept work now (equal cores share the
        // load instead of all tasks queueing on the first core).
        const bool better =
            estimate < best_estimate ||
            (estimate == best_estimate && best != handlers.size() &&
             !accept_[best] && accept_[h]);
        if (better) {
          best_estimate = estimate;
          best = h;
          best_option = option;
        }
      }
      if (best != handlers.size() && accept_[best]) {
        handlers[best]->assign(task, best_option, ctx.now);
        accept_[best] = handlers[best]->can_accept() ? 1 : 0;
        it = ready.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  struct NodeMemo {
    std::uint64_t epoch = 0;
    std::vector<const PlatformOption*> options;  ///< per handler index
    std::vector<SimTime> estimates;  ///< per handler index; -1 = no option
  };
  std::vector<char> accept_;
  /// Keyed by node (archetype count, not backlog size); entries persist
  /// across invocations and are invalidated wholesale by the epoch bump, so
  /// the steady state neither rehashes new nodes nor reallocates.
  std::unordered_map<const DagNode*, NodeMemo> memo_;
  std::uint64_t epoch_ = 0;
};

/// Earliest finish time. Every invocation replans the *entire* ready list:
/// it repeatedly commits the (task, PE) pair with the globally minimal
/// predicted finish time, updating that PE's virtual availability, until
/// every ready task has a planned slot — n planning rounds, each sweeping
/// all remaining (task, PE) pairs. That full replan is the O(n^2) cost the
/// paper attributes to its EFT implementation; only the plan's head (tasks
/// landing on PEs that can accept work now) is actually dispatched.
///
/// Implementation note: the replan is executed per *archetype*, not per
/// task. Estimates are a function of (DAG node, PE) — the
/// ExecutionEstimator contract — so every ready instance of the same DAG
/// node has an identical (handler, estimate) pair set, and the
/// strictly-less selection rule means only the lowest-indexed unplanned
/// instance of each archetype can ever win a round (ties resolve to the
/// earliest task). Each round therefore scans one candidate per archetype
/// and recomputes an archetype's best pair only when the previous commit
/// moved the availability of the handler that best pair used; the committed
/// (task, PE) sequence — and thus the emulated timeline — is bit-identical
/// to the task-major sweep. Estimator accounting is also unchanged: one
/// real estimate per archetype pair, note_logical_estimates for the
/// remaining instances' pairs and for every skipped replan sweep, so the
/// kModeled charge still prices the O(n^2) algorithm.
class EftScheduler final : public Scheduler {
 public:
  const std::string& name() const override {
    static const std::string n = "EFT";
    return n;
  }

  void schedule(ReadyList& ready, std::vector<ResourceHandler*>& handlers,
                SchedulerContext& ctx) override {
    DSSOC_REQUIRE(ctx.estimator != nullptr,
                  "EFT requires an execution estimator");
    const std::size_t n = ready.size();
    available_.assign(handlers.size(), 0);
    slots_.assign(handlers.size(), 0);
    for (std::size_t h = 0; h < handlers.size(); ++h) {
      available_[h] =
          std::max(ctx.now, ctx.estimator->available_at(*handlers[h]));
      slots_[h] = handlers[h]->can_accept() ? 1 : 0;
    }

    // Pass 1: group the ready tasks by archetype. The first instance of an
    // archetype resolves its options and makes one real estimate call per
    // supported pair; later instances account the same pair count through
    // note_logical_estimates (the task-major sweep estimated every instance
    // individually, and the charge must not depend on the memoization).
    ++epoch_;
    archs_.clear();
    pairs_.clear();
    task_arch_.assign(n, 0);
    for (std::size_t t = 0; t < n; ++t) {
      const TaskInstance& task = *ready[t];
      ArchSlot& slot = arch_index_[task.node];
      if (slot.epoch != epoch_) {
        slot.epoch = epoch_;
        slot.index = archs_.size();
        Archetype arch;
        arch.pair_begin = pairs_.size();
        for (std::size_t h = 0; h < handlers.size(); ++h) {
          if (const PlatformOption* option = ctx.option(task, *handlers[h])) {
            pairs_.push_back(
                {h, option,
                 ctx.estimator->estimate(task, *option, *handlers[h])});
          }
        }
        arch.pair_end = pairs_.size();
        archs_.push_back(arch);
      } else {
        const Archetype& arch = archs_[slot.index];
        ctx.estimator->note_logical_estimates(arch.pair_end -
                                              arch.pair_begin);
      }
      task_arch_[t] = slot.index;
      ++archs_[slot.index].task_count;
    }

    // Per-archetype task queues (ascending task index) in one flat buffer.
    std::size_t offset = 0;
    for (Archetype& arch : archs_) {
      arch.queue_begin = offset;
      arch.queue_head = offset;
      offset += arch.task_count;
      arch.queue_end = arch.queue_begin;  // fill cursor, reused below
    }
    task_queue_.assign(n, 0);
    for (std::size_t t = 0; t < n; ++t) {
      Archetype& arch = archs_[task_arch_[t]];
      task_queue_[arch.queue_end++] = t;
    }

    std::size_t unplanned_pairs = 0;
    for (const Archetype& arch : archs_) {
      unplanned_pairs += arch.task_count * (arch.pair_end - arch.pair_begin);
    }

    // One candidate per schedulable archetype; each round scans the active
    // set, reusing an archetype's cached best pair unless the handler that
    // best ran through has moved since (version stamp — availability only
    // ever moves forward, so a move through any *other* handler cannot
    // improve on a cached best). Exhausted archetypes are swap-removed, so
    // late rounds scan progressively fewer candidates. Selection order is
    // exactly the task-major sweep's: minimal finish, ties to the earliest
    // task index (each archetype's candidate is its lowest-indexed
    // unplanned instance), and within a task the first pair in handler
    // order (recompute_best's strictly-less update).
    avail_version_.assign(handlers.size(), 0);
    active_archs_.clear();
    for (std::size_t a = 0; a < archs_.size(); ++a) {
      Archetype& arch = archs_[a];
      if (arch.pair_begin == arch.pair_end ||
          arch.queue_head == arch.queue_end) {
        continue;  // no supporting PE, or no instance
      }
      recompute_best(arch, ctx.now);
      active_archs_.push_back(a);
    }

    dispatched_.assign(n, false);
    for (std::size_t round = 0; round < n; ++round) {
      if (round > 0) {
        ctx.estimator->note_logical_estimates(unplanned_pairs);
      }
      SimTime best_finish = kSimTimeNever;
      std::size_t best_task = n;
      Archetype* best_arch = nullptr;
      for (const std::size_t a : active_archs_) {
        Archetype& arch = archs_[a];
        if (avail_version_[arch.best_handler] != arch.best_version) {
          recompute_best(arch, ctx.now);
        }
        const std::size_t candidate = task_queue_[arch.queue_head];
        if (arch.best_finish < best_finish ||
            (arch.best_finish == best_finish && candidate < best_task)) {
          best_finish = arch.best_finish;
          best_task = candidate;
          best_arch = &arch;
        }
      }
      if (best_arch == nullptr) {
        break;  // remaining tasks have no supporting PE
      }
      const std::size_t best_handler = best_arch->best_handler;
      const PlatformOption* best_option = best_arch->best_option;
      ++best_arch->queue_head;
      unplanned_pairs -= best_arch->pair_end - best_arch->pair_begin;
      available_[best_handler] = best_finish;
      ++avail_version_[best_handler];
      if (best_arch->queue_head == best_arch->queue_end) {
        for (std::size_t i = 0; i < active_archs_.size(); ++i) {
          if (&archs_[active_archs_[i]] == best_arch) {
            active_archs_[i] = active_archs_.back();
            active_archs_.pop_back();
            break;
          }
        }
      }
      if (slots_[best_handler] > 0) {
        // Head of this PE's plan: dispatch it now.
        handlers[best_handler]->assign(ready[best_task], best_option,
                                       ctx.now);
        slots_[best_handler] -= 1;
        dispatched_[best_task] = true;
      }
    }

    // Keep the undispatched tasks, in order, compacting in place.
    std::size_t kept = 0;
    for (std::size_t t = 0; t < n; ++t) {
      if (!dispatched_[t]) {
        ready[kept++] = ready[t];
      }
    }
    while (ready.size() > kept) {
      ready.pop_back();
    }
  }

 private:
  struct SupportedPair {
    std::size_t handler;
    const PlatformOption* option;
    SimTime estimate;
  };
  struct Archetype {
    std::size_t pair_begin = 0;   ///< into pairs_
    std::size_t pair_end = 0;
    std::size_t task_count = 0;
    std::size_t queue_begin = 0;  ///< into task_queue_ (ascending indices)
    std::size_t queue_end = 0;
    std::size_t queue_head = 0;   ///< next unplanned instance
    SimTime best_finish = 0;
    std::size_t best_handler = 0;
    const PlatformOption* best_option = nullptr;
    /// avail_version_[best_handler] at recompute time; a mismatch means the
    /// cached best may be optimistic and must be recomputed before use.
    std::uint64_t best_version = 0;
  };
  struct ArchSlot {
    std::uint64_t epoch = 0;
    std::size_t index = 0;
  };

  /// Earliest-finishing pair of the archetype under the current
  /// availability vector; ties resolve to the first pair in handler order,
  /// exactly like the task-major sweep's strictly-less update.
  void recompute_best(Archetype& arch, SimTime now) {
    arch.best_finish = kSimTimeNever;
    arch.best_option = nullptr;
    for (std::size_t p = arch.pair_begin; p < arch.pair_end; ++p) {
      const SupportedPair& pair = pairs_[p];
      const SimTime start = std::max(now, available_[pair.handler]);
      const SimTime finish = start + pair.estimate;
      if (finish < arch.best_finish) {
        arch.best_finish = finish;
        arch.best_handler = pair.handler;
        arch.best_option = pair.option;
      }
    }
    arch.best_version = avail_version_[arch.best_handler];
  }

  std::vector<SimTime> available_;
  std::vector<std::uint64_t> avail_version_;  ///< bumped per commit
  std::vector<int> slots_;
  std::vector<bool> dispatched_;
  std::vector<SupportedPair> pairs_;       ///< flat (archetype-major)
  std::vector<Archetype> archs_;
  std::vector<std::size_t> task_arch_;     ///< task index -> archetype index
  std::vector<std::size_t> task_queue_;    ///< flat per-archetype queues
  std::vector<std::size_t> active_archs_;  ///< archetypes still plannable
  /// Archetype directory keyed by node; entries persist across invocations
  /// (epoch-invalidated) so the steady state does not rehash or reallocate.
  std::unordered_map<const DagNode*, ArchSlot> arch_index_;
  std::uint64_t epoch_ = 0;
};

/// Uniform-random assignment among the accepting, supporting PEs.
class RandomScheduler final : public Scheduler {
 public:
  const std::string& name() const override {
    static const std::string n = "RANDOM";
    return n;
  }

  void schedule(ReadyList& ready, std::vector<ResourceHandler*>& handlers,
                SchedulerContext& ctx) override {
    DSSOC_REQUIRE(ctx.rng != nullptr, "RANDOM requires an RNG");
    // Cached acceptance flags; exact in the virtual-time engine,
    // conservative under real-time concurrency (see FrfsScheduler).
    accept_.assign(handlers.size(), 0);
    for (std::size_t h = 0; h < handlers.size(); ++h) {
      accept_[h] = handlers[h]->can_accept() ? 1 : 0;
    }
    for (auto it = ready.begin(); it != ready.end();) {
      TaskInstance* task = *it;
      candidates_.clear();
      for (std::size_t h = 0; h < handlers.size(); ++h) {
        if (!accept_[h]) {
          continue;
        }
        if (const PlatformOption* option = ctx.option(*task, *handlers[h])) {
          candidates_.emplace_back(h, option);
        }
      }
      if (!candidates_.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            ctx.rng->next_below(candidates_.size()));
        const std::size_t h = candidates_[pick].first;
        handlers[h]->assign(task, candidates_[pick].second, ctx.now);
        accept_[h] = handlers[h]->can_accept() ? 1 : 0;
        it = ready.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  std::vector<std::pair<std::size_t, const PlatformOption*>> candidates_;
  std::vector<char> accept_;
};

}  // namespace

// The convenience factories resolve through the registry like every other
// construction path, so user re-registrations of the built-in names are
// honored uniformly.
std::unique_ptr<Scheduler> make_frfs_scheduler() {
  return SchedulerRegistry::instance().create("FRFS");
}
std::unique_ptr<Scheduler> make_met_scheduler() {
  return SchedulerRegistry::instance().create("MET");
}
std::unique_ptr<Scheduler> make_eft_scheduler() {
  return SchedulerRegistry::instance().create("EFT");
}
std::unique_ptr<Scheduler> make_random_scheduler() {
  return SchedulerRegistry::instance().create("RANDOM");
}

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry registry = [] {
    SchedulerRegistry r;
    r.register_policy("FRFS", [] { return std::make_unique<FrfsScheduler>(); });
    r.register_policy("MET", [] { return std::make_unique<MetScheduler>(); });
    r.register_policy("EFT", [] { return std::make_unique<EftScheduler>(); });
    r.register_policy("RANDOM",
                      [] { return std::make_unique<RandomScheduler>(); });
    return r;
  }();
  return registry;
}

void SchedulerRegistry::register_policy(const std::string& name,
                                        Factory factory) {
  DSSOC_REQUIRE(factory != nullptr, "null scheduler factory");
  factories_[name] = std::move(factory);
}

void SchedulerRegistry::register_prefix(const std::string& prefix,
                                        SpecFactory factory) {
  DSSOC_REQUIRE(factory != nullptr, "null scheduler spec factory");
  DSSOC_REQUIRE(!prefix.empty() && prefix.find(':') == std::string::npos,
                cat("scheduler spec prefix \"", prefix,
                    "\" must be non-empty and contain no ':'"));
  prefix_factories_[prefix] = std::move(factory);
}

bool SchedulerRegistry::has_policy(const std::string& name) const {
  if (factories_.count(name) == 1) {
    return true;
  }
  const auto colon = name.find(':');
  return colon != std::string::npos &&
         prefix_factories_.count(name.substr(0, colon)) == 1;
}

std::unique_ptr<Scheduler> SchedulerRegistry::create(
    const std::string& name) const {
  const auto it = factories_.find(name);
  if (it != factories_.end()) {
    return it->second();
  }
  const auto colon = name.find(':');
  if (colon != std::string::npos) {
    const auto prefix = prefix_factories_.find(name.substr(0, colon));
    if (prefix != prefix_factories_.end()) {
      return prefix->second(name);
    }
  }
  std::string known;
  for (const auto& [known_name, factory] : factories_) {
    known += known.empty() ? known_name : ", " + known_name;
  }
  for (const auto& [prefix, factory] : prefix_factories_) {
    known += (known.empty() ? "" : ", ") + prefix + ":<spec>";
  }
  throw ConfigError(cat("unknown scheduling policy \"", name, "\" (known: ",
                        known, ")"));
}

std::vector<std::string> SchedulerRegistry::policy_names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> SchedulerRegistry::prefix_names() const {
  std::vector<std::string> names;
  names.reserve(prefix_factories_.size());
  for (const auto& [prefix, factory] : prefix_factories_) {
    names.push_back(prefix);
  }
  return names;
}

}  // namespace dssoc::core
