#include "core/workload.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/arrivals.hpp"

namespace dssoc::core {

std::map<std::string, std::size_t> Workload::instance_counts() const {
  std::map<std::string, std::size_t> counts;
  for (const WorkloadEntry& entry : entries) {
    ++counts[entry.app_name];
  }
  return counts;
}

double Workload::offered_rate_per_ms(SimTime window) const {
  if (entries.empty() || window <= 0) {
    return 0.0;
  }
  return static_cast<double>(entries.size()) / sim_to_ms(window);
}

double Workload::effective_rate_per_ms() const {
  if (entries.empty()) {
    return 0.0;
  }
  SimTime span = 0;
  for (const WorkloadEntry& entry : entries) {
    span = std::max(span, entry.arrival);
  }
  if (span <= 0) {
    return 0.0;  // all arrivals at t = 0: no realized span to divide over
  }
  return static_cast<double>(entries.size()) / sim_to_ms(span);
}

Workload make_validation_workload(
    const std::vector<std::pair<std::string, int>>& instances) {
  // Route through the registry so every construction path shares one
  // parser, one validation story and one source_spec convention. The frame
  // and RNG are irrelevant to validation mode (all arrivals at t = 0, no
  // randomness); kSimTimeNever keeps generate()'s frame check satisfied.
  Rng rng(0);
  return ArrivalRegistry::instance()
      .create(validation_arrival_spec(instances))
      ->generate(kSimTimeNever, rng);
}

SimTime period_for_count(SimTime time_frame, std::size_t count) {
  DSSOC_REQUIRE(time_frame > 0 && count > 0,
                "period_for_count needs a positive frame and count");
  // Smallest period with ceil(time_frame / period) == count:
  // ceiling division, then bump until the attempt count fits.
  SimTime period = (time_frame + static_cast<SimTime>(count) - 1) /
                   static_cast<SimTime>(count);
  while (period * static_cast<SimTime>(count) < time_frame) {
    ++period;
  }
  return period;
}

Workload make_performance_workload(const std::vector<InjectionSpec>& specs,
                                   SimTime time_frame, Rng& rng) {
  DSSOC_REQUIRE(time_frame > 0, "performance mode needs a time frame");
  return ArrivalRegistry::instance()
      .create(periodic_arrival_spec(specs))
      ->generate(time_frame, rng);
}

}  // namespace dssoc::core
