#include "core/workload.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dssoc::core {

std::map<std::string, std::size_t> Workload::instance_counts() const {
  std::map<std::string, std::size_t> counts;
  for (const WorkloadEntry& entry : entries) {
    ++counts[entry.app_name];
  }
  return counts;
}

double Workload::injection_rate_per_ms(SimTime window) const {
  if (entries.empty()) {
    return 0.0;
  }
  SimTime span = window;
  for (const WorkloadEntry& entry : entries) {
    span = std::max(span, entry.arrival);
  }
  if (span <= 0) {
    return 0.0;
  }
  return static_cast<double>(entries.size()) / sim_to_ms(span);
}

Workload make_validation_workload(
    const std::vector<std::pair<std::string, int>>& instances) {
  Workload workload;
  for (const auto& [app_name, count] : instances) {
    DSSOC_REQUIRE(count >= 0, "negative instance count");
    for (int i = 0; i < count; ++i) {
      workload.entries.push_back({app_name, 0});
    }
  }
  return workload;
}

SimTime period_for_count(SimTime time_frame, std::size_t count) {
  DSSOC_REQUIRE(time_frame > 0 && count > 0,
                "period_for_count needs a positive frame and count");
  // Smallest period with ceil(time_frame / period) == count:
  // ceiling division, then bump until the attempt count fits.
  SimTime period = (time_frame + static_cast<SimTime>(count) - 1) /
                   static_cast<SimTime>(count);
  while (period * static_cast<SimTime>(count) < time_frame) {
    ++period;
  }
  return period;
}

Workload make_performance_workload(const std::vector<InjectionSpec>& specs,
                                   SimTime time_frame, Rng& rng) {
  DSSOC_REQUIRE(time_frame > 0, "performance mode needs a time frame");
  Workload workload;
  for (const InjectionSpec& spec : specs) {
    DSSOC_REQUIRE(spec.period > 0,
                  "injection period must be positive for " + spec.app_name);
    DSSOC_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
                  "injection probability outside [0, 1]");
    for (SimTime t = 0; t < time_frame; t += spec.period) {
      if (spec.probability >= 1.0 || rng.bernoulli(spec.probability)) {
        workload.entries.push_back({spec.app_name, t});
      }
    }
  }
  std::stable_sort(workload.entries.begin(), workload.entries.end(),
                   [](const WorkloadEntry& a, const WorkloadEntry& b) {
                     return a.arrival < b.arrival;
                   });
  return workload;
}

}  // namespace dssoc::core
