// Kernel resolution: the framework's substitute for dlopen()/dlsym().
//
// The paper ships each application as a .so whose symbols are looked up by
// the runfunc names in the JSON DAG. This reproduction keeps the exact
// lookup contract — (shared_object, runfunc) -> callable, with the same
// failure modes — but resolves against in-process registries instead of the
// filesystem (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "common/rng.hpp"
#include "dsp/vec.hpp"

namespace dssoc::core {

class AppInstance;
struct DagNode;

/// Engine-provided access to the accelerator device backing an accelerator
/// PE. Kernels scheduled on accelerator platforms use this port; the engine
/// performs/charges the DMA and compute latency.
class AcceleratorPort {
 public:
  virtual ~AcceleratorPort() = default;
  /// Full round trip: DDR -> BRAM, transform in place, BRAM -> DDR.
  virtual void fft(std::span<dsp::cfloat> data, bool inverse) = 0;
};

/// Execution context handed to a kernel: positional access to the variables
/// named in the DAG node's "arguments" list, backed by the app instance's
/// variable arena.
class KernelContext {
 public:
  KernelContext(AppInstance& app, const DagNode& node, AcceleratorPort* accel);

  std::size_t arg_count() const;

  /// Typed reference to a scalar (non-pointer) argument's storage.
  template <typename T>
  T& scalar(std::size_t index) {
    return *static_cast<T*>(scalar_storage(index, sizeof(T)));
  }

  /// Typed view of a pointer argument's heap block. The span covers the
  /// whole allocation (ptr_alloc_bytes / sizeof(T) elements).
  template <typename T>
  std::span<T> buffer(std::size_t index) {
    std::size_t bytes = 0;
    void* data = buffer_storage(index, bytes);
    return {static_cast<T*>(data), bytes / sizeof(T)};
  }

  /// Non-null only when the node runs on an accelerator platform.
  AcceleratorPort* accelerator() const noexcept { return accel_; }

  /// Deterministic per-instance RNG (channel noise and similar).
  Rng& rng();

  const DagNode& node() const noexcept { return node_; }
  AppInstance& app() noexcept { return app_; }

 private:
  void* scalar_storage(std::size_t index, std::size_t expected_bytes);
  void* buffer_storage(std::size_t index, std::size_t& bytes_out);

  AppInstance& app_;
  const DagNode& node_;
  AcceleratorPort* accel_;
};

using KernelFn = std::function<void(KernelContext&)>;

/// One "shared object": a symbol table of kernel functions.
class SharedObject {
 public:
  explicit SharedObject(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  void add_symbol(const std::string& symbol, KernelFn fn);
  bool has_symbol(const std::string& symbol) const;
  /// Throws SymbolError when the symbol is missing (dlsym failure analogue).
  const KernelFn& resolve(const std::string& symbol) const;

  std::size_t symbol_count() const noexcept { return symbols_.size(); }

 private:
  std::string name_;
  std::map<std::string, KernelFn> symbols_;
};

/// The set of loadable shared objects visible to the application handler.
class SharedObjectRegistry {
 public:
  SharedObject& create_object(const std::string& name);
  void register_object(SharedObject object);

  bool has_object(const std::string& name) const;
  /// Throws SymbolError when the object is missing (dlopen failure analogue).
  const SharedObject& object(const std::string& name) const;
  /// Mutable access for incremental symbol registration (several application
  /// modules contribute to the shared fft_accel.so).
  SharedObject& mutable_object(const std::string& name);

  /// Resolves (object, symbol); both must exist.
  const KernelFn& resolve(const std::string& object_name,
                          const std::string& symbol) const;

 private:
  std::map<std::string, SharedObject> objects_;
};

}  // namespace dssoc::core
