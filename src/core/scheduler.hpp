// Pluggable task-scheduling heuristics (§II-C).
//
// The workload manager calls the selected policy with the ready task list
// and the resource handlers; the policy assigns tasks via
// ResourceHandler::assign() and removes them from the ready list. The
// default library matches the paper: FRFS, MET, EFT and RANDOM. New
// policies register with the SchedulerRegistry (the plug-and-play
// integration point that the paper implements via scheduler.cpp's
// performScheduling dispatch).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/small_vec.hpp"
#include "core/kernel_registry.hpp"
#include "core/resource_handler.hpp"
#include "platform/cost_model.hpp"

namespace dssoc::core {

/// Execution-time predictions the engine supplies to cost-aware policies.
///
/// Contract: the estimate is a function of (task archetype, option, PE) —
/// it must not vary across instances of the same DAG node. Both engines'
/// estimators already satisfy this (the virtual-time engine memoizes per
/// (node, PE)), and MET's memoized replan relies on it.
class ExecutionEstimator {
 public:
  virtual ~ExecutionEstimator() = default;

  /// Estimated execution time of `task` via `option` on `handler`'s PE,
  /// including accelerator DMA round trips.
  virtual SimTime estimate(const TaskInstance& task,
                           const PlatformOption& option,
                           const ResourceHandler& handler) const = 0;

  /// Emulation time at which the PE will next be free.
  virtual SimTime available_at(const ResourceHandler& handler) const = 0;

  /// Bulk-accounting hook: a policy that memoizes estimate() results within
  /// one invocation reports how many estimates its algorithm *logically*
  /// performed (beyond the real calls it made), so engines that price
  /// scheduler work per estimator call charge the algorithm's complexity,
  /// not the memoized implementation's. Default: ignore.
  virtual void note_logical_estimates(std::size_t count) const {
    (void)count;
  }

  /// External-latency hook: a policy that waited on something outside the
  /// emulation (an agent process over a socket, a model inference) reports
  /// the measured host-side wait so it is charged into emulated time through
  /// the same path as the scheduler's own cost. The virtual-time engine
  /// applies it in kModeled mode (scaled by overlay_calibration, like
  /// measured scheduler time); in kMeasured mode — and in the real-time
  /// engine — the wait is already inside the wall-clock charge, so the
  /// default is to ignore it.
  virtual void note_external_latency_ns(std::uint64_t host_ns) const {
    (void)host_ns;
  }
};

/// Per-emulation interning table built once by the engine at init. Three
/// hot-path lookups that used to be string-keyed resolve through it in O(1):
///
///  - (DagNode, PE type) -> PlatformOption* (replaces supported_option()'s
///    linear scan with string compares per ready x handler pair),
///  - DagNode -> reference-CPU KernelCost* (replaces the cost-model map
///    lookup per CPU task event),
///  - (DagNode, PlatformOption) -> KernelFn* (replaces the two-level
///    shared-object/symbol map resolution per functional kernel execution).
///
/// Every registered node receives a dense per-emulation id (registration
/// order); engines stamp it into TaskInstance::lookup_id at injection so
/// per-event paths index flat tables instead of hashing. PEs must be
/// registered before models so each node's option table can be sized to the
/// PE-type universe of the configuration.
class OptionLookup {
 public:
  /// Registers one PE of the configuration (dense pe.id assumed).
  void add_pe(const platform::PE& pe);
  /// Registers every node of a model. Idempotent per model.
  void add_model(const AppModel& model);

  /// Resolves each registered node's cost-model entry and (when `registry`
  /// is non-null) every platform option's runfunc. Call once after all
  /// add_pe()/add_model() registrations; resolution failures surface here,
  /// at emulation init, exactly as the paper's parse-time symbol lookup
  /// does. `cost_model` and `registry` must outlive this table.
  void intern(const platform::CostModel& cost_model,
              const SharedObjectRegistry* registry);

  /// The first platform option of `task` runnable on `handler`'s PE type, or
  /// nullptr — identical semantics to supported_option(). Unregistered nodes
  /// or PEs fall back to the linear scan.
  const PlatformOption* find(const TaskInstance& task,
                             const ResourceHandler& handler) const;

  /// Dense ids: nodes are numbered in registration order across models.
  std::uint32_t node_count() const noexcept {
    return static_cast<std::uint32_t>(node_infos_.size());
  }
  /// First id of `model`'s nodes (node ids are base + DagNode::index).
  /// Returns node_count() when the model was never registered.
  std::uint32_t node_base(const AppModel& model) const;

  /// Reference-CPU cost of the node's kernel, scaled by `speed_factor` —
  /// bit-identical to CostModel::cpu_cost(). Valid after intern().
  SimTime cpu_cost(std::uint32_t node_id, double units,
                   double speed_factor) const {
    return platform::CostModel::scaled_cost(*node_infos_[node_id].cpu_cost,
                                            units, speed_factor);
  }

  /// The interned kernel function of (node, option). Valid after intern()
  /// with a registry; `option` must belong to the node's platform list.
  const KernelFn& runfunc(std::uint32_t node_id,
                          const PlatformOption& option) const {
    const NodeInfo& info = node_infos_[node_id];
    const std::size_t opt = static_cast<std::size_t>(
        &option - info.node->platforms.data());
    return *option_fns_[info.fn_offset + opt];
  }

 private:
  static constexpr std::size_t kUnregisteredPe =
      static_cast<std::size_t>(-1);

  struct NodeInfo {
    const DagNode* node = nullptr;
    const AppModel* model = nullptr;
    /// Cost entry (or the model's default) resolved by intern().
    const platform::KernelCost* cpu_cost = nullptr;
    /// Start of this node's options in option_fns_.
    std::size_t fn_offset = 0;
    /// PE-type-slot -> first supported option (resized as types register).
    std::vector<const PlatformOption*> options;
  };

  std::map<std::string, std::size_t> type_slot_;  ///< PE type name -> slot
  std::vector<std::size_t> pe_slot_;              ///< pe.id -> type slot
  std::vector<NodeInfo> node_infos_;              ///< indexed by node id
  std::unordered_map<const DagNode*, std::uint32_t> node_id_;
  std::vector<std::pair<const AppModel*, std::uint32_t>> model_base_;
  std::vector<const KernelFn*> option_fns_;  ///< flat, NodeInfo::fn_offset
};

struct SchedulerContext {
  SimTime now = 0;
  const ExecutionEstimator* estimator = nullptr;
  Rng* rng = nullptr;
  /// Memoized option table (set by both engines at init; null in bare unit
  /// tests, which then pay the linear scan).
  const OptionLookup* options = nullptr;

  /// Schedulers resolve options through this helper: O(1) when the engine
  /// supplied a lookup table, linear scan otherwise.
  const PlatformOption* option(const TaskInstance& task,
                               const ResourceHandler& handler) const;
};

/// The ready task list handed to schedulers. Inline capacity covers the
/// steady-state backlog of the paper's workloads; deeper backlogs (EFT at
/// high rates) spill to the heap once and the buffer then stays warm — the
/// engines reuse one ReadyList for the whole emulation, so steady-state
/// push/erase traffic performs no allocation.
using ReadyList = SmallVec<TaskInstance*, 64>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual const std::string& name() const = 0;

  /// Assigns ready tasks to handlers; assigned tasks must be removed from
  /// `ready`. Tasks that cannot run now stay in the list.
  virtual void schedule(ReadyList& ready,
                        std::vector<ResourceHandler*>& handlers,
                        SchedulerContext& ctx) = 0;

  /// Checkpoint hooks. The built-in library keeps only derivable state —
  /// per-invocation memos keyed by an epoch counter, recomputed from the
  /// ready list and estimator on the next schedule() call — so the default
  /// is to serialize nothing; load_state()'s contract is then
  /// invalidate-on-restore: any cached value must either be keyed so a
  /// restored engine never reads a stale entry, or be re-derivable
  /// bit-identically from the restored inputs. A policy carrying real
  /// history (e.g. learned weights) overrides both and round-trips it here
  /// (the engine frames the bytes in a dedicated snapshot section).
  virtual void save_state(StateWriter& out) const { (void)out; }
  virtual void load_state(StateReader& in) { (void)in; }

  /// True when repeating an invocation with identical observable inputs
  /// (ready list, handler states, RNG) yields the identical decision — the
  /// precondition for the virtual engine's analytic busy-wait fast-forward.
  /// The built-in library is time-invariant; a policy consulting wall
  /// clocks, external agents or invocation counters must return false, which
  /// disables fast-forward for its emulations (correct, just slower).
  virtual bool time_invariant() const { return true; }
};

/// The platform option of `task` runnable on `handler`'s PE type, or nullptr.
const PlatformOption* supported_option(const TaskInstance& task,
                                       const ResourceHandler& handler);

/// Factory registry keyed by policy name ("FRFS", "MET", "EFT", "RANDOM",
/// plus any user-registered policies). Every scheduler construction in the
/// framework — both engines, the sweep layer, the make_*_scheduler()
/// convenience factories — resolves through create().
///
/// Two registration forms exist:
///  * exact names ("EFT", "MY-POLICY"): a nullary factory;
///  * spec prefixes ("policy"): a factory receiving the full spec string,
///    matched when the requested name is "<prefix>:<rest>" and no exact
///    name matches first. This is how parameterized policies (the policy
///    bridge's "policy:table:<path>" and friends) plug in without
///    registering every possible argument combination.
class SchedulerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Scheduler>()>;
  /// Receives the complete spec (prefix included), e.g.
  /// "policy:table:weights.json".
  using SpecFactory =
      std::function<std::unique_ptr<Scheduler>(const std::string& spec)>;

  /// The process-wide registry, pre-populated with the default library.
  static SchedulerRegistry& instance();

  void register_policy(const std::string& name, Factory factory);
  /// Registers a spec-prefix factory. `prefix` must not contain ':'.
  void register_prefix(const std::string& prefix, SpecFactory factory);
  bool has_policy(const std::string& name) const;
  /// Resolves `name` — exact match first, then "<prefix>:<rest>" against
  /// the registered prefixes. Throws ConfigError listing every known policy
  /// name and spec prefix when nothing matches.
  std::unique_ptr<Scheduler> create(const std::string& name) const;
  std::vector<std::string> policy_names() const;
  /// Registered spec prefixes (without the trailing ':').
  std::vector<std::string> prefix_names() const;

 private:
  std::map<std::string, Factory> factories_;
  std::map<std::string, SpecFactory> prefix_factories_;
};

/// Convenience factories for the built-in library; thin wrappers over
/// SchedulerRegistry::instance().create().
std::unique_ptr<Scheduler> make_frfs_scheduler();
std::unique_ptr<Scheduler> make_met_scheduler();
std::unique_ptr<Scheduler> make_eft_scheduler();
std::unique_ptr<Scheduler> make_random_scheduler();

}  // namespace dssoc::core
