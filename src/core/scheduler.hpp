// Pluggable task-scheduling heuristics (§II-C).
//
// The workload manager calls the selected policy with the ready task list
// and the resource handlers; the policy assigns tasks via
// ResourceHandler::assign() and removes them from the ready list. The
// default library matches the paper: FRFS, MET, EFT and RANDOM. New
// policies register with the SchedulerRegistry (the plug-and-play
// integration point that the paper implements via scheduler.cpp's
// performScheduling dispatch).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/resource_handler.hpp"

namespace dssoc::core {

/// Execution-time predictions the engine supplies to cost-aware policies.
class ExecutionEstimator {
 public:
  virtual ~ExecutionEstimator() = default;

  /// Estimated execution time of `task` via `option` on `handler`'s PE,
  /// including accelerator DMA round trips.
  virtual SimTime estimate(const TaskInstance& task,
                           const PlatformOption& option,
                           const ResourceHandler& handler) const = 0;

  /// Emulation time at which the PE will next be free.
  virtual SimTime available_at(const ResourceHandler& handler) const = 0;

  /// Bulk-accounting hook: a policy that memoizes estimate() results within
  /// one invocation reports how many estimates its algorithm *logically*
  /// performed (beyond the real calls it made), so engines that price
  /// scheduler work per estimator call charge the algorithm's complexity,
  /// not the memoized implementation's. Default: ignore.
  virtual void note_logical_estimates(std::size_t count) const {
    (void)count;
  }
};

/// Memoized (DagNode, PE type) -> PlatformOption* resolution. Built once per
/// emulation by the engine; replaces the per-scheduler-call linear scan over
/// a node's platform list (string comparisons on every ready x handler pair)
/// with two O(1) lookups. PEs must be registered before models so each node's
/// table can be sized to the PE-type universe of the configuration.
class OptionLookup {
 public:
  /// Registers one PE of the configuration (dense pe.id assumed).
  void add_pe(const platform::PE& pe);
  /// Registers every node of a model. Idempotent per model.
  void add_model(const AppModel& model);

  /// The first platform option of `task` runnable on `handler`'s PE type, or
  /// nullptr — identical semantics to supported_option(). Unregistered nodes
  /// or PEs fall back to the linear scan.
  const PlatformOption* find(const TaskInstance& task,
                             const ResourceHandler& handler) const;

 private:
  static constexpr std::size_t kUnregisteredPe =
      static_cast<std::size_t>(-1);
  std::map<std::string, std::size_t> type_slot_;  ///< PE type name -> slot
  std::vector<std::size_t> pe_slot_;              ///< pe.id -> type slot
  std::unordered_map<const DagNode*, std::vector<const PlatformOption*>>
      node_options_;
};

struct SchedulerContext {
  SimTime now = 0;
  const ExecutionEstimator* estimator = nullptr;
  Rng* rng = nullptr;
  /// Optional memoized option table (set by the virtual-time engine; the
  /// real-time engine still uses the linear scan — see ROADMAP).
  const OptionLookup* options = nullptr;

  /// Schedulers resolve options through this helper: O(1) when the engine
  /// supplied a lookup table, linear scan otherwise.
  const PlatformOption* option(const TaskInstance& task,
                               const ResourceHandler& handler) const;
};

using ReadyList = std::deque<TaskInstance*>;

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual const std::string& name() const = 0;

  /// Assigns ready tasks to handlers; assigned tasks must be removed from
  /// `ready`. Tasks that cannot run now stay in the list.
  virtual void schedule(ReadyList& ready,
                        std::vector<ResourceHandler*>& handlers,
                        SchedulerContext& ctx) = 0;
};

/// The platform option of `task` runnable on `handler`'s PE type, or nullptr.
const PlatformOption* supported_option(const TaskInstance& task,
                                       const ResourceHandler& handler);

/// Factory registry keyed by policy name ("FRFS", "MET", "EFT", "RANDOM",
/// plus any user-registered policies).
class SchedulerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Scheduler>()>;

  /// The process-wide registry, pre-populated with the default library.
  static SchedulerRegistry& instance();

  void register_policy(const std::string& name, Factory factory);
  bool has_policy(const std::string& name) const;
  /// Throws ConfigError for unknown policies.
  std::unique_ptr<Scheduler> create(const std::string& name) const;
  std::vector<std::string> policy_names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Direct factories for the built-in library.
std::unique_ptr<Scheduler> make_frfs_scheduler();
std::unique_ptr<Scheduler> make_met_scheduler();
std::unique_ptr<Scheduler> make_eft_scheduler();
std::unique_ptr<Scheduler> make_random_scheduler();

}  // namespace dssoc::core
