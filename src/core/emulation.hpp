// Emulation facade: the configuration a user hands to either engine, plus
// the application library the application handler builds during the
// initialization phase (§II-A).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/app_instance.hpp"
#include "core/app_model.hpp"
#include "core/checkpoint.hpp"
#include "core/emu_stats.hpp"
#include "core/kernel_registry.hpp"
#include "core/workload.hpp"
#include "platform/platform.hpp"

namespace dssoc::core {

/// Parsed application archetypes, keyed by AppName. Requesting an
/// application that was never parsed is the paper's "output an error if it
/// has not detected <app> as referenced by its AppName" path.
class ApplicationLibrary {
 public:
  void add(AppModel model);

  bool has(const std::string& name) const;
  /// Throws DssocError when the application is unknown.
  const AppModel& get(const std::string& name) const;

  std::size_t size() const noexcept { return models_.size(); }

 private:
  std::map<std::string, AppModel> models_;
};

/// How the virtual engine prices a scheduler invocation.
enum class OverheadMode {
  /// Deterministic: charge is derived from the *work the real scheduler
  /// actually performed* this invocation (ready-list/handler scan pairs and
  /// execution-time estimator calls), so FRFS stays flat while MET/EFT grow
  /// with backlog exactly as their algorithmic complexity dictates — and
  /// runs are bit-identical. This is the default.
  kModeled,
  /// Paper-faithful: charge the measured wall-clock time of the scheduler
  /// code, scaled by `overlay_calibration`. Captures real implementation
  /// constants but is host-dependent and non-deterministic.
  kMeasured,
};

/// Tunables of both engines. Fixed per-operation costs are charged by the
/// virtual-time engine; the calibration factor maps host-CPU nanoseconds of
/// *measured* scheduler execution onto emulated overlay-processor
/// nanoseconds (see DESIGN.md, "Measured scheduling overhead").
struct EmulationOptions {
  /// Scheduling policy name resolved via SchedulerRegistry.
  std::string scheduler = "FRFS";
  OverheadMode overhead_mode = OverheadMode::kModeled;
  /// kModeled constants: per-invocation base, per (ready task x handler)
  /// scan pair, and per estimator call, in overlay-reference nanoseconds.
  SimTime modeled_base_ns = 500;
  double modeled_pair_ns = 8.0;
  double modeled_estimate_ns = 60.0;
  /// Execute kernel functions for functional correctness (virtual engine;
  /// the real-time engine always executes them).
  bool run_kernels = true;
  /// Host-ns -> emulated-overlay-ns multiplier for measured scheduler time
  /// (and for external policy-bridge latency reported through
  /// `note_external_latency_ns`). Re-fit with `bench_calibrate` whenever the
  /// host-side scheduler hot path changes speed: the current value makes
  /// kMeasured FRFS match the kModeled reference magnitudes on the dev
  /// container (the PR 2/3 optimizations made host invocations ~6x cheaper
  /// than when the previous 2.5 was fit).
  double overlay_calibration = 16.0;
  /// Per-PE completion check performed by the workload manager each cycle.
  SimTime monitor_cost_ns = 600;
  /// Cost of dequeuing + injecting one application instance.
  SimTime injection_cost_ns = 2'000;
  /// Resource manager's dispatch cost per task (receive + launch).
  SimTime dispatch_cost_ns = 1'500;
  /// Cost of one accelerator status poll / one interrupt service.
  SimTime poll_cost_ns = 500;
  SimTime interrupt_cost_ns = 1'000;
  /// Reservation-queue depth per PE (1 = paper baseline; >1 = §V ablation).
  int pe_queue_depth = 1;
  /// Analytic busy-wait fast-forward: when a workload-manager cycle provably
  /// changes nothing (no arrival, no completion, scheduler invocation inert),
  /// the engine charges all remaining identical cycles until the next event
  /// in one step instead of spinning through them. Produces bit-identical
  /// timelines for schedulers whose decisions are pure functions of
  /// (ready list, handler states, rng) — true for the built-in library.
  /// Schedulers whose decisions depend on anything else (wall clock,
  /// external agents — e.g. the policy bridge's SocketPolicy) opt out per
  /// instance by overriding Scheduler::time_invariant() to false, which
  /// disables the fast-forward without touching this flag; set it to false
  /// only to force cycle-by-cycle spinning for time-invariant schedulers.
  bool spin_fast_forward = true;
  /// Overload cut (virtual engine): when > 0 and the ready list exceeds
  /// this many tasks after an injection burst, the emulation terminates
  /// with EmulationStats::saturated set instead of grinding through an
  /// unstable queue forever — the point reports the measured saturation
  /// rate. 0 (default) disables the check. Checked at workload-manager
  /// cycle boundaries only, so detection is deterministic and
  /// checkpoint/restore-stable.
  std::size_t saturation_backlog_limit = 0;
  /// Seed for workload jitter, RANDOM scheduling and kernel noise.
  std::uint64_t seed = 1;
};

/// Everything an engine needs to run one emulation.
struct EmulationSetup {
  const platform::Platform* platform = nullptr;
  platform::SocConfig soc;
  const ApplicationLibrary* apps = nullptr;
  const SharedObjectRegistry* registry = nullptr;
  platform::CostModel cost_model;
  EmulationOptions options;
};

/// Runs the deterministic virtual-time engine (discrete event + measured
/// scheduler cost). This is the engine behind every figure reproduction.
EmulationStats run_virtual(const EmulationSetup& setup,
                           const Workload& workload);

/// Same, but recycling application instances through a caller-owned pool —
/// sweep drivers keep one pool per worker thread so consecutive points of a
/// sweep reuse each other's arenas. Timelines are bit-identical to the
/// pool-less overload (and to DSSOC_POOL_DISABLE=1). The pool must not be
/// shared across threads, and must not outlive the application library its
/// models come from.
EmulationStats run_virtual(const EmulationSetup& setup,
                           const Workload& workload, AppInstancePool* pool);

namespace detail {
class VirtualEngine;
}  // namespace detail

/// An incrementally-drivable virtual-time emulation with snapshot/restore.
/// run_virtual() is `Emulation(...).finish()`; this class additionally lets
/// a driver stop at workload-manager cycle boundaries, capture the complete
/// engine state as a host-independent byte snapshot, and restore it — into
/// this or any other compatibly-configured Emulation (same SoC config,
/// scheduler, seed, queue depth).
///
/// Restore rules (enforced loudly by the loader, see core/checkpoint.hpp):
///  * Same workload: any snapshot resumes bit-identically — the continued
///    run's statistics are byte-equal to an uninterrupted run's.
///  * Different (extended) workload — the fork path behind
///    exp::SweepRunner::run_forked(): the snapshot must be quiescent
///    (capture via run_until_idle()), the target's first consumed_entries
///    arrivals must match the snapshot's verbatim, and every later arrival
///    must lie at or after the snapshot's virtual time.
///
/// `setup` and `workload` are held by reference and must outlive the
/// Emulation. Snapshots taken after finish() are invalid (the statistics
/// have been moved out).
class Emulation : public Checkpointable {
 public:
  Emulation(const EmulationSetup& setup, const Workload& workload,
            AppInstancePool* pool = nullptr);
  ~Emulation() override;
  Emulation(Emulation&&) noexcept;
  Emulation& operator=(Emulation&&) noexcept;

  /// Current virtual time (ns since emulation start).
  SimTime now() const;
  /// True once every workload entry completed (or the engine deadlocked on
  /// an unschedulable ready set — which throws first).
  bool done() const;
  /// No active instances, empty ready list, nothing running on any PE.
  bool quiescent() const;

  /// Runs workload-manager cycles until now() >= t or done(). The engine
  /// only stops at cycle boundaries, so now() may overshoot t by one cycle
  /// (or one analytic fast-forward streak) — every stop point is exactly a
  /// state an uninterrupted run also passes through, which is what makes
  /// same-workload restores bit-identical.
  void run_until(SimTime t);
  /// Runs until the first quiescent cycle boundary at or after t (or until
  /// done()). Snapshots captured here are valid fork points.
  void run_until_idle(SimTime t);
  /// Runs to completion and returns the final statistics.
  EmulationStats finish();

  /// Serializes the complete engine state at the current cycle boundary.
  EngineSnapshot snapshot() const;
  /// Convenience: run_until(t), then snapshot().
  EngineSnapshot snapshot(SimTime t);
  /// Replaces the engine state with the snapshot's (see restore rules
  /// above). Throws StateError on any incompatibility; the engine is left
  /// untouched when validation fails.
  void restore(const EngineSnapshot& snapshot);

  // Checkpointable (the raw-stream form behind snapshot()/restore()).
  void save(StateWriter& out) const override;
  void load(StateReader& in) override;

 private:
  std::unique_ptr<detail::VirtualEngine> engine_;
};

/// Runs the threaded real-time engine: one POSIX thread per PE manager plus
/// the overlay workload-manager thread, wall-clock timing. Functional
/// behaviour is identical; timing reflects the host machine.
EmulationStats run_realtime(const EmulationSetup& setup,
                            const Workload& workload);

/// Real-time engine with a caller-owned instance pool (see run_virtual).
EmulationStats run_realtime(const EmulationSetup& setup,
                            const Workload& workload, AppInstancePool* pool);

/// Real-time engine resuming from a *quiescent* snapshot (captured by the
/// virtual engine's Emulation::run_until_idle()): completed-app records,
/// per-PE busy totals and the RNG stream are adopted, the wall clock is
/// offset so timestamps continue from the snapshot's virtual time, and only
/// the remaining workload entries are injected. Mid-flight snapshots are
/// rejected (StateError) — a wall-clock engine cannot reconstruct in-flight
/// task timelines.
EmulationStats run_realtime(const EmulationSetup& setup,
                            const Workload& workload, AppInstancePool* pool,
                            const EngineSnapshot& resume_from);

}  // namespace dssoc::core
