// Emulation facade: the configuration a user hands to either engine, plus
// the application library the application handler builds during the
// initialization phase (§II-A).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/app_instance.hpp"
#include "core/app_model.hpp"
#include "core/emu_stats.hpp"
#include "core/kernel_registry.hpp"
#include "core/workload.hpp"
#include "platform/platform.hpp"

namespace dssoc::core {

/// Parsed application archetypes, keyed by AppName. Requesting an
/// application that was never parsed is the paper's "output an error if it
/// has not detected <app> as referenced by its AppName" path.
class ApplicationLibrary {
 public:
  void add(AppModel model);

  bool has(const std::string& name) const;
  /// Throws DssocError when the application is unknown.
  const AppModel& get(const std::string& name) const;

  std::size_t size() const noexcept { return models_.size(); }

 private:
  std::map<std::string, AppModel> models_;
};

/// How the virtual engine prices a scheduler invocation.
enum class OverheadMode {
  /// Deterministic: charge is derived from the *work the real scheduler
  /// actually performed* this invocation (ready-list/handler scan pairs and
  /// execution-time estimator calls), so FRFS stays flat while MET/EFT grow
  /// with backlog exactly as their algorithmic complexity dictates — and
  /// runs are bit-identical. This is the default.
  kModeled,
  /// Paper-faithful: charge the measured wall-clock time of the scheduler
  /// code, scaled by `overlay_calibration`. Captures real implementation
  /// constants but is host-dependent and non-deterministic.
  kMeasured,
};

/// Tunables of both engines. Fixed per-operation costs are charged by the
/// virtual-time engine; the calibration factor maps host-CPU nanoseconds of
/// *measured* scheduler execution onto emulated overlay-processor
/// nanoseconds (see DESIGN.md, "Measured scheduling overhead").
struct EmulationOptions {
  /// Scheduling policy name resolved via SchedulerRegistry.
  std::string scheduler = "FRFS";
  OverheadMode overhead_mode = OverheadMode::kModeled;
  /// kModeled constants: per-invocation base, per (ready task x handler)
  /// scan pair, and per estimator call, in overlay-reference nanoseconds.
  SimTime modeled_base_ns = 500;
  double modeled_pair_ns = 8.0;
  double modeled_estimate_ns = 60.0;
  /// Execute kernel functions for functional correctness (virtual engine;
  /// the real-time engine always executes them).
  bool run_kernels = true;
  /// Host-ns -> emulated-overlay-ns multiplier for measured scheduler time.
  double overlay_calibration = 2.5;
  /// Per-PE completion check performed by the workload manager each cycle.
  SimTime monitor_cost_ns = 600;
  /// Cost of dequeuing + injecting one application instance.
  SimTime injection_cost_ns = 2'000;
  /// Resource manager's dispatch cost per task (receive + launch).
  SimTime dispatch_cost_ns = 1'500;
  /// Cost of one accelerator status poll / one interrupt service.
  SimTime poll_cost_ns = 500;
  SimTime interrupt_cost_ns = 1'000;
  /// Reservation-queue depth per PE (1 = paper baseline; >1 = §V ablation).
  int pe_queue_depth = 1;
  /// Analytic busy-wait fast-forward: when a workload-manager cycle provably
  /// changes nothing (no arrival, no completion, scheduler invocation inert),
  /// the engine charges all remaining identical cycles until the next event
  /// in one step instead of spinning through them. Produces bit-identical
  /// timelines for schedulers whose decisions are pure functions of
  /// (ready list, handler states, rng) — true for the built-in library.
  /// Disable for custom schedulers with time-dependent heuristics.
  bool spin_fast_forward = true;
  /// Seed for workload jitter, RANDOM scheduling and kernel noise.
  std::uint64_t seed = 1;
};

/// Everything an engine needs to run one emulation.
struct EmulationSetup {
  const platform::Platform* platform = nullptr;
  platform::SocConfig soc;
  const ApplicationLibrary* apps = nullptr;
  const SharedObjectRegistry* registry = nullptr;
  platform::CostModel cost_model;
  EmulationOptions options;
};

/// Runs the deterministic virtual-time engine (discrete event + measured
/// scheduler cost). This is the engine behind every figure reproduction.
EmulationStats run_virtual(const EmulationSetup& setup,
                           const Workload& workload);

/// Same, but recycling application instances through a caller-owned pool —
/// sweep drivers keep one pool per worker thread so consecutive points of a
/// sweep reuse each other's arenas. Timelines are bit-identical to the
/// pool-less overload (and to DSSOC_POOL_DISABLE=1). The pool must not be
/// shared across threads, and must not outlive the application library its
/// models come from.
EmulationStats run_virtual(const EmulationSetup& setup,
                           const Workload& workload, AppInstancePool* pool);

/// Runs the threaded real-time engine: one POSIX thread per PE manager plus
/// the overlay workload-manager thread, wall-clock timing. Functional
/// behaviour is identical; timing reflects the host machine.
EmulationStats run_realtime(const EmulationSetup& setup,
                            const Workload& workload);

/// Real-time engine with a caller-owned instance pool (see run_virtual).
EmulationStats run_realtime(const EmulationSetup& setup,
                            const Workload& workload, AppInstancePool* pool);

}  // namespace dssoc::core
