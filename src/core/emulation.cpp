#include "core/emulation.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::core {

void ApplicationLibrary::add(AppModel model) {
  const std::string name = model.name;
  const bool inserted = models_.emplace(name, std::move(model)).second;
  DSSOC_REQUIRE(inserted, cat("application \"", name, "\" parsed twice"));
}

bool ApplicationLibrary::has(const std::string& name) const {
  return models_.count(name) == 1;
}

const AppModel& ApplicationLibrary::get(const std::string& name) const {
  const auto it = models_.find(name);
  if (it == models_.end()) {
    throw DssocError(cat("no parsed application with AppName \"", name,
                         "\""));
  }
  return it->second;
}

}  // namespace dssoc::core
