#include "core/checkpoint.hpp"

#include "common/strings.hpp"
#include "core/resource_handler.hpp"

namespace dssoc::core {

namespace {

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

std::uint64_t workload_prefix_hash(const Workload& workload,
                                   std::size_t count) {
  DSSOC_ASSERT(count <= workload.entries.size());
  std::uint64_t hash = 1469598103934665603ULL;
  for (std::size_t i = 0; i < count; ++i) {
    const WorkloadEntry& entry = workload.entries[i];
    hash = fnv1a(hash, entry.app_name.data(), entry.app_name.size());
    const auto arrival = static_cast<std::uint64_t>(entry.arrival);
    hash = fnv1a(hash, &arrival, sizeof(arrival));
    const auto deadline = static_cast<std::uint64_t>(entry.deadline);
    hash = fnv1a(hash, &deadline, sizeof(deadline));
  }
  return hash;
}

void SnapshotMeta::save(StateWriter& out) const {
  out.i64(virtual_time);
  out.u8(quiescent ? 1 : 0);
  out.u64(consumed_entries);
  out.u64(completed_apps);
  out.u64(total_entries);
  out.u64(prefix_hash);
  out.u64(full_hash);
  out.str(soc_label);
  out.str(scheduler);
  out.u32(pe_count);
  out.u64(seed);
  out.i32(pe_queue_depth);
}

void SnapshotMeta::load(StateReader& in) {
  virtual_time = in.i64();
  quiescent = in.u8() != 0;
  consumed_entries = in.u64();
  completed_apps = in.u64();
  total_entries = in.u64();
  prefix_hash = in.u64();
  full_hash = in.u64();
  soc_label = in.str();
  scheduler = in.str();
  pe_count = in.u32();
  seed = in.u64();
  pe_queue_depth = in.i32();
}

void validate_snapshot_meta(const SnapshotMeta& meta,
                            const std::string& soc_label,
                            const std::string& scheduler_name,
                            std::size_t pe_count, std::uint64_t seed,
                            int pe_queue_depth, const Workload& workload) {
  if (meta.soc_label != soc_label) {
    throw StateError(cat("snapshot was captured on configuration \"",
                         meta.soc_label, "\", restore target is \"",
                         soc_label, "\""));
  }
  if (meta.scheduler != scheduler_name) {
    throw StateError(cat("snapshot was captured under scheduler \"",
                         meta.scheduler, "\", restore target runs \"",
                         scheduler_name, "\""));
  }
  if (meta.pe_count != pe_count) {
    throw StateError(cat("snapshot has ", meta.pe_count,
                         " PE(s), restore target has ", pe_count));
  }
  if (meta.seed != seed) {
    throw StateError(cat("snapshot was captured with seed ", meta.seed,
                         ", restore target uses seed ", seed,
                         " — RNG streams would diverge"));
  }
  if (meta.pe_queue_depth != pe_queue_depth) {
    throw StateError(cat("snapshot uses PE queue depth ",
                         meta.pe_queue_depth, ", restore target uses ",
                         pe_queue_depth));
  }

  const bool same_workload =
      meta.total_entries == workload.entries.size() &&
      meta.full_hash == workload_prefix_hash(workload,
                                             workload.entries.size());
  if (same_workload) {
    return;  // identical trace: any captured boundary resumes bit-identically
  }

  // Fork path: a different (typically extended) workload. The consumed
  // prefix must match and the snapshot must be quiescent, otherwise
  // in-flight state (or fast-forward margins clamped by the source's own
  // future arrivals) would diverge from what a cold run of the target
  // workload produces.
  if (!meta.quiescent) {
    throw StateError(
        "snapshot was captured mid-flight; forking into a different "
        "workload requires a quiescent snapshot (no active instances, "
        "empty ready list, nothing running) — capture via "
        "Emulation::run_until_idle()");
  }
  if (meta.consumed_entries > workload.entries.size()) {
    throw StateError(cat("snapshot consumed ", meta.consumed_entries,
                         " arrival(s) but the restore workload has only ",
                         workload.entries.size()));
  }
  const std::uint64_t target_prefix = workload_prefix_hash(
      workload, static_cast<std::size_t>(meta.consumed_entries));
  if (target_prefix != meta.prefix_hash) {
    throw StateError(cat("restore workload's first ", meta.consumed_entries,
                         " arrival(s) differ from the snapshot's consumed "
                         "prefix — fork points must share the warm-up "
                         "trace verbatim"));
  }
  for (std::size_t i = static_cast<std::size_t>(meta.consumed_entries);
       i < workload.entries.size(); ++i) {
    if (workload.entries[i].arrival < meta.virtual_time) {
      throw StateError(cat("restore workload arrival #", i, " (\"",
                           workload.entries[i].app_name, "\" at ",
                           workload.entries[i].arrival,
                           " ns) predates the snapshot's virtual time ",
                           meta.virtual_time,
                           " ns — shift fork-point arrivals to or past the "
                           "snapshot boundary"));
    }
  }
}

SnapshotMeta EngineSnapshot::meta() const {
  if (bytes_.empty()) {
    throw StateError("empty engine snapshot");
  }
  StateReader in(bytes_.data(), bytes_.size(), kEngineSnapshotKind);
  in.begin_section(kMetaTag);
  SnapshotMeta meta;
  meta.load(in);
  in.end_section();
  return meta;
}

void NullTaskCodec::encode(StateWriter& out, const TaskInstance* task) const {
  if (task != nullptr) {
    throw StateError("live task reference in a context that requires a "
                     "quiescent snapshot");
  }
  out.i64(-1);
  out.u32(0);
}

TaskInstance* NullTaskCodec::decode(StateReader& in) const {
  const std::int64_t slot = in.i64();
  (void)in.u32();
  if (slot >= 0) {
    throw StateError("snapshot contains a live task reference but the "
                     "restore target requires a quiescent snapshot");
  }
  return nullptr;
}

void save_assignment(StateWriter& out, const Assignment& assignment,
                     const TaskCodec& codec) {
  codec.encode(out, assignment.task);
  if (assignment.task == nullptr) {
    return;
  }
  const DagNode* node = assignment.task->node;
  DSSOC_ASSERT(assignment.platform != nullptr);
  const auto index =
      static_cast<std::int32_t>(assignment.platform - node->platforms.data());
  DSSOC_ASSERT(index >= 0 &&
               static_cast<std::size_t>(index) < node->platforms.size());
  out.i32(index);
}

Assignment load_assignment(StateReader& in, const TaskCodec& codec) {
  Assignment assignment;
  assignment.task = codec.decode(in);
  if (assignment.task == nullptr) {
    return assignment;
  }
  const std::int32_t index = in.i32();
  const DagNode* node = assignment.task->node;
  if (index < 0 ||
      static_cast<std::size_t>(index) >= node->platforms.size()) {
    throw StateError(cat("assignment platform-option index ", index,
                         " out of range for node \"", node->name, "\""));
  }
  assignment.platform = &node->platforms[static_cast<std::size_t>(index)];
  return assignment;
}

}  // namespace dssoc::core
