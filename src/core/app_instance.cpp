#include "core/app_instance.hpp"

#include <array>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::core {

VariableArena::VariableArena(const AppModel& model) {
  slots_.resize(model.variables.size());
  reinitialize(model);
}

void VariableArena::reinitialize(const AppModel& model) {
  DSSOC_ASSERT(slots_.size() == model.variables.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const VarSpec& var = model.variables[i];
    Slot& slot = slots_[i];
    slot.storage.assign(var.bytes, 0);
    if (!var.init_bytes.empty()) {  // empty vector data() may be null
      std::memcpy(slot.storage.data(), var.init_bytes.data(),
                  var.init_bytes.size());
    }
    if (var.is_ptr) {
      slot.heap.assign(var.ptr_alloc_bytes, 0);
      if (!var.heap_init_bytes.empty()) {
        std::memcpy(slot.heap.data(), var.heap_init_bytes.data(),
                    var.heap_init_bytes.size());
      }
      // The variable's own storage holds the heap block's address, exactly
      // as an 8-byte pointer would in the paper's framework.
      DSSOC_REQUIRE(var.bytes >= sizeof(void*),
                    cat("pointer variable \"", var.name,
                        "\" storage smaller than a pointer"));
      void* address = slot.heap.data();
      std::memcpy(slot.storage.data(), &address, sizeof(address));
    } else {
      slot.heap.clear();
    }
  }
}

void VariableArena::save(StateWriter& out) const {
  out.u64(slots_.size());
  for (const Slot& slot : slots_) {
    out.u64(slot.storage.size());
    if (!slot.heap.empty() && slot.storage.size() >= sizeof(void*)) {
      // A pointer variable's storage leads with its heap-block address —
      // process-local noise that load() rewrites with the restoring arena's
      // own block anyway. Serialize it zeroed so identical emulation states
      // produce byte-identical snapshots.
      std::array<std::uint8_t, sizeof(void*)> zeros{};
      out.bytes(zeros.data(), zeros.size());
      out.bytes(slot.storage.data() + sizeof(void*),
                slot.storage.size() - sizeof(void*));
    } else {
      out.bytes(slot.storage.data(), slot.storage.size());
    }
    out.u64(slot.heap.size());
    out.bytes(slot.heap.data(), slot.heap.size());
  }
}

void VariableArena::load(StateReader& in, const AppModel& model) {
  const std::uint64_t count = in.u64();
  if (count != slots_.size() || slots_.size() != model.variables.size()) {
    throw StateError(cat("snapshot arena has ", count,
                         " variable slot(s), model \"", model.name,
                         "\" has ", model.variables.size()));
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const VarSpec& var = model.variables[i];
    Slot& slot = slots_[i];
    const std::uint64_t storage_bytes = in.u64();
    if (storage_bytes != var.bytes) {
      throw StateError(cat("snapshot stores ", storage_bytes,
                           " byte(s) for variable \"", var.name,
                           "\", model declares ", var.bytes));
    }
    slot.storage.resize(static_cast<std::size_t>(storage_bytes));
    in.bytes(slot.storage.data(), slot.storage.size());
    const std::uint64_t heap_bytes = in.u64();
    const std::size_t expected_heap = var.is_ptr ? var.ptr_alloc_bytes : 0;
    if (heap_bytes != expected_heap) {
      throw StateError(cat("snapshot stores a ", heap_bytes,
                           "-byte heap block for variable \"", var.name,
                           "\", model declares ", expected_heap));
    }
    slot.heap.resize(static_cast<std::size_t>(heap_bytes));
    in.bytes(slot.heap.data(), slot.heap.size());
    if (var.is_ptr) {
      // The serialized storage carries the *source* arena's heap address —
      // a dangling (or worse, since-recycled) pointer here. Point the
      // variable at this arena's own block instead.
      void* address = slot.heap.data();
      std::memcpy(slot.storage.data(), &address, sizeof(address));
    }
  }
}

void* VariableArena::storage(std::size_t var_index) {
  DSSOC_ASSERT(var_index < slots_.size());
  return slots_[var_index].storage.data();
}

const void* VariableArena::storage(std::size_t var_index) const {
  DSSOC_ASSERT(var_index < slots_.size());
  return slots_[var_index].storage.data();
}

void* VariableArena::heap_block(std::size_t var_index) {
  DSSOC_ASSERT(var_index < slots_.size());
  return slots_[var_index].heap.empty() ? nullptr
                                        : slots_[var_index].heap.data();
}

std::size_t VariableArena::heap_block_bytes(std::size_t var_index) const {
  DSSOC_ASSERT(var_index < slots_.size());
  return slots_[var_index].heap.size();
}

AppInstance::AppInstance(const AppModel& model, int instance_id,
                         std::uint64_t seed)
    : model_(&model),
      instance_id_(instance_id),
      arena_(model),
      rng_(seed) {
  tasks_.resize(model.nodes.size());
  for (std::size_t i = 0; i < model.nodes.size(); ++i) {
    tasks_[i].node = &model.nodes[i];
    tasks_[i].app = this;
  }
  reset_tasks();
}

void AppInstance::reset_tasks() {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    TaskInstance& task = tasks_[i];
    task.remaining_predecessors = model_->nodes[i].predecessors.size();
    task.state = task.remaining_predecessors == 0 ? TaskState::kReady
                                                  : TaskState::kWaiting;
    task.ready_time = 0;
    task.dispatch_time = 0;
    task.start_time = 0;
    task.end_time = 0;
    task.pe_id = -1;
    task.chosen_platform = nullptr;
  }
  completed_count_ = 0;
  injection_time = 0;
  completion_time = 0;
}

void AppInstance::reset(int instance_id, std::uint64_t seed) {
  instance_id_ = instance_id;
  arena_.reinitialize(*model_);
  rng_.reseed(seed);
  reset_tasks();
}

void AppInstance::save(StateWriter& out) const {
  out.i64(injection_time);
  out.i64(completion_time);
  out.u64(completed_count_);
  const auto rng_state = rng_.state();
  for (const std::uint64_t word : rng_state) {
    out.u64(word);
  }
  out.u64(tasks_.size());
  for (const TaskInstance& task : tasks_) {
    out.u8(static_cast<std::uint8_t>(task.state));
    out.u64(task.remaining_predecessors);
    out.i64(task.ready_time);
    out.i64(task.dispatch_time);
    out.i64(task.start_time);
    out.i64(task.end_time);
    out.i32(task.pe_id);
    std::int32_t option_index = -1;
    if (task.chosen_platform != nullptr) {
      option_index = static_cast<std::int32_t>(task.chosen_platform -
                                               task.node->platforms.data());
      DSSOC_ASSERT(option_index >= 0 &&
                   static_cast<std::size_t>(option_index) <
                       task.node->platforms.size());
    }
    out.i32(option_index);
  }
  arena_.save(out);
}

void AppInstance::load(StateReader& in) {
  injection_time = in.i64();
  completion_time = in.i64();
  completed_count_ = static_cast<std::size_t>(in.u64());
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) {
    word = in.u64();
  }
  rng_.set_state(rng_state);
  const std::uint64_t task_count = in.u64();
  if (task_count != tasks_.size()) {
    throw StateError(cat("snapshot instance has ", task_count,
                         " task(s), model \"", model_->name, "\" has ",
                         tasks_.size()));
  }
  for (TaskInstance& task : tasks_) {
    const std::uint8_t state = in.u8();
    if (state > static_cast<std::uint8_t>(TaskState::kComplete)) {
      throw StateError(cat("snapshot task state ", state, " out of range"));
    }
    task.state = static_cast<TaskState>(state);
    task.remaining_predecessors = static_cast<std::size_t>(in.u64());
    task.ready_time = in.i64();
    task.dispatch_time = in.i64();
    task.start_time = in.i64();
    task.end_time = in.i64();
    task.pe_id = in.i32();
    const std::int32_t option_index = in.i32();
    if (option_index < 0) {
      task.chosen_platform = nullptr;
    } else if (static_cast<std::size_t>(option_index) <
               task.node->platforms.size()) {
      task.chosen_platform =
          &task.node->platforms[static_cast<std::size_t>(option_index)];
    } else {
      throw StateError(cat("snapshot platform-option index ", option_index,
                           " out of range for node \"", task.node->name,
                           "\""));
    }
  }
  arena_.load(in, *model_);
}

TaskInstance& AppInstance::task(std::size_t node_index) {
  DSSOC_ASSERT(node_index < tasks_.size());
  return tasks_[node_index];
}

void AppInstance::head_tasks(TaskScratch& out) {
  for (TaskInstance& task : tasks_) {
    if (task.node->predecessors.empty()) {
      out.push_back(&task);
    }
  }
}

void AppInstance::complete_task(TaskInstance& task, TaskScratch& out) {
  DSSOC_ASSERT(task.app == this);
  DSSOC_ASSERT_MSG(task.state != TaskState::kComplete,
                   "task completed twice");
  task.state = TaskState::kComplete;
  ++completed_count_;
  for (const std::size_t succ_index : task.node->successor_indices) {
    TaskInstance& succ_task = tasks_[succ_index];
    DSSOC_ASSERT(succ_task.remaining_predecessors > 0);
    if (--succ_task.remaining_predecessors == 0) {
      succ_task.state = TaskState::kReady;
      out.push_back(&succ_task);
    }
  }
}

std::vector<TaskInstance*> AppInstance::head_tasks() {
  TaskScratch scratch;
  head_tasks(scratch);
  return {scratch.begin(), scratch.end()};
}

std::vector<TaskInstance*> AppInstance::complete_task(TaskInstance& task) {
  TaskScratch scratch;
  complete_task(task, scratch);
  return {scratch.begin(), scratch.end()};
}

// ---------------------------------------------------------------------------
// AppInstancePool

AppInstancePool::AppInstancePool() {
  const char* env = std::getenv("DSSOC_POOL_DISABLE");
  disabled_ = env != nullptr && std::strcmp(env, "1") == 0;
}

AppInstancePool::ModelPool& AppInstancePool::pool_for(const AppModel& model) {
  for (ModelPool& pool : pools_) {
    if (pool.model == &model) {
      return pool;
    }
  }
  pools_.emplace_back();
  pools_.back().model = &model;
  return pools_.back();
}

std::unique_ptr<AppInstance> AppInstancePool::acquire(const AppModel& model,
                                                      int instance_id,
                                                      std::uint64_t seed) {
  if (!disabled_) {
    std::unique_ptr<AppInstance> recycled = pool_for(model).free.acquire();
    if (recycled != nullptr) {
      recycled->reset(instance_id, seed);
      ++recycled_;
      return recycled;
    }
  }
  ++constructed_;
  return std::make_unique<AppInstance>(model, instance_id, seed);
}

void AppInstancePool::save(StateWriter& out) const {
  out.u8(disabled_ ? 1 : 0);
  out.u64(constructed_);
  out.u64(recycled_);
}

void AppInstancePool::load(StateReader& in) {
  // The disabled flag is environment-derived per process; a mismatch does
  // not affect timelines (pooling is bit-identical either way), so it is
  // recorded for inspection but never enforced or overwritten.
  (void)in.u8();
  constructed_ = static_cast<std::size_t>(in.u64());
  recycled_ = static_cast<std::size_t>(in.u64());
}

void AppInstancePool::release(std::unique_ptr<AppInstance> instance) {
  if (disabled_ || instance == nullptr) {
    return;
  }
  const AppModel& model = instance->model();
  pool_for(model).free.release(std::move(instance));
}

}  // namespace dssoc::core
