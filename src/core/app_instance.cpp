#include "core/app_instance.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::core {

VariableArena::VariableArena(const AppModel& model) {
  slots_.resize(model.variables.size());
  reinitialize(model);
}

void VariableArena::reinitialize(const AppModel& model) {
  DSSOC_ASSERT(slots_.size() == model.variables.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const VarSpec& var = model.variables[i];
    Slot& slot = slots_[i];
    slot.storage.assign(var.bytes, 0);
    std::memcpy(slot.storage.data(), var.init_bytes.data(),
                var.init_bytes.size());
    if (var.is_ptr) {
      slot.heap.assign(var.ptr_alloc_bytes, 0);
      std::memcpy(slot.heap.data(), var.heap_init_bytes.data(),
                  var.heap_init_bytes.size());
      // The variable's own storage holds the heap block's address, exactly
      // as an 8-byte pointer would in the paper's framework.
      DSSOC_REQUIRE(var.bytes >= sizeof(void*),
                    cat("pointer variable \"", var.name,
                        "\" storage smaller than a pointer"));
      void* address = slot.heap.data();
      std::memcpy(slot.storage.data(), &address, sizeof(address));
    } else {
      slot.heap.clear();
    }
  }
}

void* VariableArena::storage(std::size_t var_index) {
  DSSOC_ASSERT(var_index < slots_.size());
  return slots_[var_index].storage.data();
}

const void* VariableArena::storage(std::size_t var_index) const {
  DSSOC_ASSERT(var_index < slots_.size());
  return slots_[var_index].storage.data();
}

void* VariableArena::heap_block(std::size_t var_index) {
  DSSOC_ASSERT(var_index < slots_.size());
  return slots_[var_index].heap.empty() ? nullptr
                                        : slots_[var_index].heap.data();
}

std::size_t VariableArena::heap_block_bytes(std::size_t var_index) const {
  DSSOC_ASSERT(var_index < slots_.size());
  return slots_[var_index].heap.size();
}

AppInstance::AppInstance(const AppModel& model, int instance_id,
                         std::uint64_t seed)
    : model_(&model),
      instance_id_(instance_id),
      arena_(model),
      rng_(seed) {
  tasks_.resize(model.nodes.size());
  for (std::size_t i = 0; i < model.nodes.size(); ++i) {
    TaskInstance& task = tasks_[i];
    task.node = &model.nodes[i];
    task.app = this;
    task.remaining_predecessors = model.nodes[i].predecessors.size();
    task.state = task.remaining_predecessors == 0 ? TaskState::kReady
                                                  : TaskState::kWaiting;
  }
}

TaskInstance& AppInstance::task(std::size_t node_index) {
  DSSOC_ASSERT(node_index < tasks_.size());
  return tasks_[node_index];
}

std::vector<TaskInstance*> AppInstance::head_tasks() {
  std::vector<TaskInstance*> heads;
  for (TaskInstance& task : tasks_) {
    if (task.node->predecessors.empty()) {
      heads.push_back(&task);
    }
  }
  return heads;
}

std::vector<TaskInstance*> AppInstance::complete_task(TaskInstance& task) {
  DSSOC_ASSERT(task.app == this);
  DSSOC_ASSERT_MSG(task.state != TaskState::kComplete,
                   "task completed twice");
  task.state = TaskState::kComplete;
  ++completed_count_;
  std::vector<TaskInstance*> newly_ready;
  for (const std::string& succ : task.node->successors) {
    TaskInstance& succ_task = tasks_[model_->node_index(succ)];
    DSSOC_ASSERT(succ_task.remaining_predecessors > 0);
    if (--succ_task.remaining_predecessors == 0) {
      succ_task.state = TaskState::kReady;
      newly_ready.push_back(&succ_task);
    }
  }
  return newly_ready;
}

}  // namespace dssoc::core
