#include "core/app_instance.hpp"

#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::core {

VariableArena::VariableArena(const AppModel& model) {
  slots_.resize(model.variables.size());
  reinitialize(model);
}

void VariableArena::reinitialize(const AppModel& model) {
  DSSOC_ASSERT(slots_.size() == model.variables.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const VarSpec& var = model.variables[i];
    Slot& slot = slots_[i];
    slot.storage.assign(var.bytes, 0);
    std::memcpy(slot.storage.data(), var.init_bytes.data(),
                var.init_bytes.size());
    if (var.is_ptr) {
      slot.heap.assign(var.ptr_alloc_bytes, 0);
      std::memcpy(slot.heap.data(), var.heap_init_bytes.data(),
                  var.heap_init_bytes.size());
      // The variable's own storage holds the heap block's address, exactly
      // as an 8-byte pointer would in the paper's framework.
      DSSOC_REQUIRE(var.bytes >= sizeof(void*),
                    cat("pointer variable \"", var.name,
                        "\" storage smaller than a pointer"));
      void* address = slot.heap.data();
      std::memcpy(slot.storage.data(), &address, sizeof(address));
    } else {
      slot.heap.clear();
    }
  }
}

void* VariableArena::storage(std::size_t var_index) {
  DSSOC_ASSERT(var_index < slots_.size());
  return slots_[var_index].storage.data();
}

const void* VariableArena::storage(std::size_t var_index) const {
  DSSOC_ASSERT(var_index < slots_.size());
  return slots_[var_index].storage.data();
}

void* VariableArena::heap_block(std::size_t var_index) {
  DSSOC_ASSERT(var_index < slots_.size());
  return slots_[var_index].heap.empty() ? nullptr
                                        : slots_[var_index].heap.data();
}

std::size_t VariableArena::heap_block_bytes(std::size_t var_index) const {
  DSSOC_ASSERT(var_index < slots_.size());
  return slots_[var_index].heap.size();
}

AppInstance::AppInstance(const AppModel& model, int instance_id,
                         std::uint64_t seed)
    : model_(&model),
      instance_id_(instance_id),
      arena_(model),
      rng_(seed) {
  tasks_.resize(model.nodes.size());
  for (std::size_t i = 0; i < model.nodes.size(); ++i) {
    tasks_[i].node = &model.nodes[i];
    tasks_[i].app = this;
  }
  reset_tasks();
}

void AppInstance::reset_tasks() {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    TaskInstance& task = tasks_[i];
    task.remaining_predecessors = model_->nodes[i].predecessors.size();
    task.state = task.remaining_predecessors == 0 ? TaskState::kReady
                                                  : TaskState::kWaiting;
    task.ready_time = 0;
    task.dispatch_time = 0;
    task.start_time = 0;
    task.end_time = 0;
    task.pe_id = -1;
    task.chosen_platform = nullptr;
  }
  completed_count_ = 0;
  injection_time = 0;
  completion_time = 0;
}

void AppInstance::reset(int instance_id, std::uint64_t seed) {
  instance_id_ = instance_id;
  arena_.reinitialize(*model_);
  rng_.reseed(seed);
  reset_tasks();
}

TaskInstance& AppInstance::task(std::size_t node_index) {
  DSSOC_ASSERT(node_index < tasks_.size());
  return tasks_[node_index];
}

void AppInstance::head_tasks(TaskScratch& out) {
  for (TaskInstance& task : tasks_) {
    if (task.node->predecessors.empty()) {
      out.push_back(&task);
    }
  }
}

void AppInstance::complete_task(TaskInstance& task, TaskScratch& out) {
  DSSOC_ASSERT(task.app == this);
  DSSOC_ASSERT_MSG(task.state != TaskState::kComplete,
                   "task completed twice");
  task.state = TaskState::kComplete;
  ++completed_count_;
  for (const std::size_t succ_index : task.node->successor_indices) {
    TaskInstance& succ_task = tasks_[succ_index];
    DSSOC_ASSERT(succ_task.remaining_predecessors > 0);
    if (--succ_task.remaining_predecessors == 0) {
      succ_task.state = TaskState::kReady;
      out.push_back(&succ_task);
    }
  }
}

std::vector<TaskInstance*> AppInstance::head_tasks() {
  TaskScratch scratch;
  head_tasks(scratch);
  return {scratch.begin(), scratch.end()};
}

std::vector<TaskInstance*> AppInstance::complete_task(TaskInstance& task) {
  TaskScratch scratch;
  complete_task(task, scratch);
  return {scratch.begin(), scratch.end()};
}

// ---------------------------------------------------------------------------
// AppInstancePool

AppInstancePool::AppInstancePool() {
  const char* env = std::getenv("DSSOC_POOL_DISABLE");
  disabled_ = env != nullptr && std::strcmp(env, "1") == 0;
}

AppInstancePool::ModelPool& AppInstancePool::pool_for(const AppModel& model) {
  for (ModelPool& pool : pools_) {
    if (pool.model == &model) {
      return pool;
    }
  }
  pools_.emplace_back();
  pools_.back().model = &model;
  return pools_.back();
}

std::unique_ptr<AppInstance> AppInstancePool::acquire(const AppModel& model,
                                                      int instance_id,
                                                      std::uint64_t seed) {
  if (!disabled_) {
    std::unique_ptr<AppInstance> recycled = pool_for(model).free.acquire();
    if (recycled != nullptr) {
      recycled->reset(instance_id, seed);
      ++recycled_;
      return recycled;
    }
  }
  ++constructed_;
  return std::make_unique<AppInstance>(model, instance_id, seed);
}

void AppInstancePool::release(std::unique_ptr<AppInstance> instance) {
  if (disabled_ || instance == nullptr) {
    return;
  }
  const AppModel& model = instance->model();
  pool_for(model).free.release(std::move(instance));
}

}  // namespace dssoc::core
