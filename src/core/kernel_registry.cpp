#include "core/kernel_registry.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "core/app_instance.hpp"

namespace dssoc::core {

KernelContext::KernelContext(AppInstance& app, const DagNode& node,
                             AcceleratorPort* accel)
    : app_(app), node_(node), accel_(accel) {}

std::size_t KernelContext::arg_count() const { return node_.arguments.size(); }

Rng& KernelContext::rng() { return app_.rng(); }

void* KernelContext::scalar_storage(std::size_t index,
                                    std::size_t expected_bytes) {
  DSSOC_REQUIRE(index < node_.arguments.size(),
                cat("kernel \"", node_.name, "\" argument index ", index,
                    " out of range"));
  const std::string& var_name = node_.arguments[index];
  // argument_indices is resolved by AppModel::finalize(); falling back keeps
  // hand-assembled nodes in unit tests working.
  const std::size_t var_index = index < node_.argument_indices.size()
                                    ? node_.argument_indices[index]
                                    : app_.model().variable_index(var_name);
  const VarSpec& var = app_.model().variables[var_index];
  DSSOC_REQUIRE(!var.is_ptr, cat("argument \"", var_name,
                                 "\" is a pointer; use buffer()"));
  DSSOC_REQUIRE(var.bytes >= expected_bytes,
                cat("argument \"", var_name, "\" smaller than requested type"));
  return app_.arena().storage(var_index);
}

void* KernelContext::buffer_storage(std::size_t index,
                                    std::size_t& bytes_out) {
  DSSOC_REQUIRE(index < node_.arguments.size(),
                cat("kernel \"", node_.name, "\" argument index ", index,
                    " out of range"));
  const std::string& var_name = node_.arguments[index];
  const std::size_t var_index = index < node_.argument_indices.size()
                                    ? node_.argument_indices[index]
                                    : app_.model().variable_index(var_name);
  const VarSpec& var = app_.model().variables[var_index];
  DSSOC_REQUIRE(var.is_ptr, cat("argument \"", var_name,
                                "\" is a scalar; use scalar()"));
  bytes_out = app_.arena().heap_block_bytes(var_index);
  return app_.arena().heap_block(var_index);
}

void SharedObject::add_symbol(const std::string& symbol, KernelFn fn) {
  DSSOC_REQUIRE(fn != nullptr, cat("null kernel for symbol \"", symbol, "\""));
  const bool inserted = symbols_.emplace(symbol, std::move(fn)).second;
  DSSOC_REQUIRE(inserted, cat("duplicate symbol \"", symbol,
                              "\" in shared object \"", name_, "\""));
}

bool SharedObject::has_symbol(const std::string& symbol) const {
  return symbols_.count(symbol) == 1;
}

const KernelFn& SharedObject::resolve(const std::string& symbol) const {
  const auto it = symbols_.find(symbol);
  if (it == symbols_.end()) {
    throw SymbolError(cat("undefined symbol \"", symbol,
                          "\" in shared object \"", name_, "\""));
  }
  return it->second;
}

SharedObject& SharedObjectRegistry::create_object(const std::string& name) {
  const auto [it, inserted] = objects_.emplace(name, SharedObject(name));
  DSSOC_REQUIRE(inserted, cat("shared object \"", name,
                              "\" registered twice"));
  return it->second;
}

void SharedObjectRegistry::register_object(SharedObject object) {
  const std::string name = object.name();
  const bool inserted = objects_.emplace(name, std::move(object)).second;
  DSSOC_REQUIRE(inserted, cat("shared object \"", name,
                              "\" registered twice"));
}

bool SharedObjectRegistry::has_object(const std::string& name) const {
  return objects_.count(name) == 1;
}

const SharedObject& SharedObjectRegistry::object(const std::string& name) const {
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw SymbolError(cat("cannot open shared object \"", name, "\""));
  }
  return it->second;
}

SharedObject& SharedObjectRegistry::mutable_object(const std::string& name) {
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw SymbolError(cat("cannot open shared object \"", name, "\""));
  }
  return it->second;
}

const KernelFn& SharedObjectRegistry::resolve(const std::string& object_name,
                                              const std::string& symbol) const {
  return object(object_name).resolve(symbol);
}

}  // namespace dssoc::core
