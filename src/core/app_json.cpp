#include "core/app_json.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dssoc::core {

namespace {

VarSpec parse_variable(const std::string& name, const json::Value& spec) {
  DSSOC_REQUIRE(spec.is_object(),
                cat("variable \"", name, "\" must be a JSON object"));
  VarSpec var;
  var.name = name;
  var.bytes = static_cast<std::size_t>(spec.at("bytes").as_int());
  var.is_ptr = spec.at("is_ptr").as_bool();
  var.ptr_alloc_bytes =
      static_cast<std::size_t>(spec.at("ptr_alloc_bytes").as_int());
  for (const json::Value& byte : spec.at("val").as_array()) {
    const std::int64_t value = byte.as_int();
    DSSOC_REQUIRE(value >= 0 && value <= 255,
                  cat("variable \"", name, "\" has byte value ", value,
                      " outside [0, 255]"));
    var.init_bytes.push_back(static_cast<std::uint8_t>(value));
  }
  if (const json::Value* heap_val = spec.as_object().find("heap_val")) {
    for (const json::Value& byte : heap_val->as_array()) {
      const std::int64_t value = byte.as_int();
      DSSOC_REQUIRE(value >= 0 && value <= 255,
                    cat("variable \"", name, "\" has heap byte ", value,
                        " outside [0, 255]"));
      var.heap_init_bytes.push_back(static_cast<std::uint8_t>(value));
    }
  }
  return var;
}

std::vector<std::string> parse_string_array(const json::Value& value,
                                            const std::string& context) {
  std::vector<std::string> out;
  DSSOC_REQUIRE(value.is_array(), cat(context, " must be a JSON array"));
  for (const json::Value& element : value.as_array()) {
    out.push_back(element.as_string());
  }
  return out;
}

DagNode parse_node(const std::string& name, const json::Value& spec) {
  DSSOC_REQUIRE(spec.is_object(),
                cat("DAG node \"", name, "\" must be a JSON object"));
  DagNode node;
  node.name = name;
  node.arguments = parse_string_array(spec.at("arguments"),
                                      cat("node \"", name, "\" arguments"));
  node.predecessors = parse_string_array(
      spec.at("predecessors"), cat("node \"", name, "\" predecessors"));
  node.successors = parse_string_array(spec.at("successors"),
                                       cat("node \"", name, "\" successors"));
  const json::Value& platforms = spec.at("platforms");
  DSSOC_REQUIRE(platforms.is_array(),
                cat("node \"", name, "\" platforms must be an array"));
  for (const json::Value& entry : platforms.as_array()) {
    PlatformOption option;
    option.pe_type = entry.at("name").as_string();
    option.runfunc = entry.at("runfunc").as_string();
    option.shared_object = entry.get_or("shared_object", std::string{});
    node.platforms.push_back(std::move(option));
  }
  if (const json::Value* cost = spec.as_object().find("cost")) {
    node.cost.kernel = cost->at("kernel").as_string();
    node.cost.units = cost->at("units").as_double();
    node.cost.samples = cost->get_or("samples", 0.0);
  }
  return node;
}

}  // namespace

AppModel app_from_json(const json::Value& document) {
  DSSOC_REQUIRE(document.is_object(),
                "application description must be a JSON object");
  AppModel model;
  model.name = document.at("AppName").as_string();
  model.shared_object = document.at("SharedObject").as_string();
  const json::Value& variables = document.at("Variables");
  DSSOC_REQUIRE(variables.is_object(), "\"Variables\" must be a JSON object");
  for (const auto& [name, spec] : variables.as_object()) {
    model.variables.push_back(parse_variable(name, spec));
  }
  const json::Value& dag = document.at("DAG");
  DSSOC_REQUIRE(dag.is_object(), "\"DAG\" must be a JSON object");
  for (const auto& [name, spec] : dag.as_object()) {
    model.nodes.push_back(parse_node(name, spec));
  }
  model.finalize();
  return model;
}

AppModel app_from_json_text(const std::string& text) {
  return app_from_json(json::parse(text));
}

json::Value app_to_json(const AppModel& model) {
  json::Object document;
  document.set("AppName", model.name);
  document.set("SharedObject", model.shared_object);

  json::Object variables;
  for (const VarSpec& var : model.variables) {
    json::Object spec;
    spec.set("bytes", var.bytes);
    spec.set("is_ptr", var.is_ptr);
    spec.set("ptr_alloc_bytes", var.ptr_alloc_bytes);
    json::Array val;
    for (const std::uint8_t byte : var.init_bytes) {
      val.emplace_back(static_cast<std::int64_t>(byte));
    }
    spec.set("val", std::move(val));
    if (!var.heap_init_bytes.empty()) {
      json::Array heap_val;
      for (const std::uint8_t byte : var.heap_init_bytes) {
        heap_val.emplace_back(static_cast<std::int64_t>(byte));
      }
      spec.set("heap_val", std::move(heap_val));
    }
    variables.set(var.name, std::move(spec));
  }
  document.set("Variables", std::move(variables));

  json::Object dag;
  for (const DagNode& node : model.nodes) {
    json::Object spec;
    auto string_array = [](const std::vector<std::string>& values) {
      json::Array out;
      for (const std::string& value : values) {
        out.emplace_back(value);
      }
      return out;
    };
    spec.set("arguments", string_array(node.arguments));
    spec.set("predecessors", string_array(node.predecessors));
    spec.set("successors", string_array(node.successors));
    json::Array platforms;
    for (const PlatformOption& option : node.platforms) {
      json::Object entry;
      entry.set("name", option.pe_type);
      entry.set("runfunc", option.runfunc);
      if (!option.shared_object.empty()) {
        entry.set("shared_object", option.shared_object);
      }
      platforms.push_back(json::Value(std::move(entry)));
    }
    spec.set("platforms", std::move(platforms));
    if (!node.cost.kernel.empty()) {
      json::Object cost;
      cost.set("kernel", node.cost.kernel);
      cost.set("units", node.cost.units);
      if (node.cost.samples > 0.0) {
        cost.set("samples", node.cost.samples);
      }
      spec.set("cost", std::move(cost));
    }
    dag.set(node.name, std::move(spec));
  }
  document.set("DAG", std::move(dag));
  return json::Value(std::move(document));
}

}  // namespace dssoc::core
