// Workload creation (the application handler's second half, §II-B).
//
// Validation mode injects every requested instance at t = 0 and the
// emulation ends when all of them complete. Performance mode builds a
// probabilistic trace: each application has an injection period and a
// per-slot injection probability within a bounded time frame.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace dssoc::core {

/// One scheduled application arrival.
struct WorkloadEntry {
  std::string app_name;
  SimTime arrival = 0;
};

/// Arrival trace sorted by arrival time (ties keep generation order).
struct Workload {
  std::vector<WorkloadEntry> entries;

  std::size_t size() const noexcept { return entries.size(); }
  bool empty() const noexcept { return entries.empty(); }

  /// Instance count per application name.
  std::map<std::string, std::size_t> instance_counts() const;

  /// Average injection rate in jobs per millisecond over the span
  /// [0, max(window, last arrival)].
  double injection_rate_per_ms(SimTime window) const;
};

/// Validation mode: `count` copies of each listed application at t = 0.
Workload make_validation_workload(
    const std::vector<std::pair<std::string, int>>& instances);

/// Per-application injection parameters for performance mode.
struct InjectionSpec {
  std::string app_name;
  SimTime period = 0;        ///< injection attempt every `period` ns
  double probability = 1.0;  ///< chance each attempt actually injects
};

/// Performance mode: periodic probabilistic arrivals in [0, time_frame).
/// Attempts happen at t = 0, period, 2*period, ... < time_frame; entries are
/// sorted by arrival time. With probability 1 the trace is deterministic:
/// ceil(time_frame / period) arrivals per application.
Workload make_performance_workload(const std::vector<InjectionSpec>& specs,
                                   SimTime time_frame, Rng& rng);

/// Injection period that yields exactly `count` attempts in [0, time_frame)
/// — how the Table II workload traces are constructed.
SimTime period_for_count(SimTime time_frame, std::size_t count);

}  // namespace dssoc::core
