// Workload creation (the application handler's second half, §II-B).
//
// Validation mode injects every requested instance at t = 0 and the
// emulation ends when all of them complete. Performance mode builds a
// probabilistic trace. Both are thin wrappers over the arrival-process
// registry (core/arrivals.hpp), which also provides Poisson, Markov-
// modulated, ramped and trace-replay traffic models behind the same
// Workload representation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace dssoc::core {

/// One scheduled application arrival.
struct WorkloadEntry {
  std::string app_name;
  SimTime arrival = 0;
  /// Relative completion deadline (completion - injection must stay <=
  /// deadline). 0 = no deadline; engines stamp it into the AppRecord so
  /// EmulationStats reports per-app deadline-miss rates.
  SimTime deadline = 0;
};

/// Arrival trace sorted by arrival time (ties keep generation order).
struct Workload {
  std::vector<WorkloadEntry> entries;
  /// The "arrivals:..." spec that generated this trace ("" for hand-built
  /// workloads). Covered by the sweep journal's config hash, so changing
  /// the traffic model invalidates journaled results exactly like changing
  /// any other point parameter.
  std::string source_spec;

  std::size_t size() const noexcept { return entries.size(); }
  bool empty() const noexcept { return entries.empty(); }

  /// Instance count per application name.
  std::map<std::string, std::size_t> instance_counts() const;

  /// Offered load: jobs per millisecond over the declared injection window
  /// [0, window) — what the traffic model *demands*, the x-axis of a
  /// quality-vs-load curve. Entries past the window still count against it,
  /// so an overrun trace reads as > the nominal rate rather than silently
  /// stretching the denominator.
  double offered_rate_per_ms(SimTime window) const;

  /// Effective (realized) rate: jobs per millisecond over the span the
  /// trace actually covers, [0, last arrival]. For bursty processes this
  /// differs from the offered rate — a burst at the frame's start offers
  /// the full-frame rate but realizes a much higher one. (The legacy
  /// injection_rate_per_ms divided by max(window, last arrival), which
  /// misreported exactly that case.)
  double effective_rate_per_ms() const;
};

/// Validation mode: `count` copies of each listed application at t = 0.
/// Thin wrapper over "arrivals:validation:..." (core/arrivals.hpp).
Workload make_validation_workload(
    const std::vector<std::pair<std::string, int>>& instances);

/// Per-application injection parameters for the periodic (legacy
/// performance-mode) arrival process — its parsed spec form.
struct InjectionSpec {
  std::string app_name;
  SimTime period = 0;        ///< injection attempt every `period` ns
  double probability = 1.0;  ///< chance each attempt actually injects
  SimTime deadline = 0;      ///< relative completion deadline (0 = none)
};

/// Performance mode: periodic probabilistic arrivals in [0, time_frame).
/// Attempts happen at t = 0, period, 2*period, ... < time_frame; entries are
/// sorted by arrival time. With probability 1 the trace is deterministic:
/// ceil(time_frame / period) arrivals per application. Thin wrapper over
/// "arrivals:periodic:..." — bit-identical to the pre-registry generator.
Workload make_performance_workload(const std::vector<InjectionSpec>& specs,
                                   SimTime time_frame, Rng& rng);

/// Injection period that yields exactly `count` attempts in [0, time_frame)
/// — how the Table II workload traces are constructed.
SimTime period_for_count(SimTime time_frame, std::size_t count);

}  // namespace dssoc::core
