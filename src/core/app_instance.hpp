// Application instantiation: variable arena + per-task runtime state.
//
// Instantiation mirrors §II-B: every variable gets storage of `bytes` bytes
// initialized from its "val" byte list; pointer variables additionally get a
// heap block of ptr_alloc_bytes, and their storage holds that block's
// address — exactly the layout a 64-bit process would see.
//
// Instances are recyclable: reset() restores a used instance to the state a
// freshly constructed one would have (arena reinitialized, task states and
// RNG reseeded), so sustained-rate emulations acquire instances from an
// AppInstancePool instead of paying arena construction per injection.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "common/small_vec.hpp"
#include "core/app_model.hpp"
#include "core/checkpoint.hpp"

namespace dssoc::core {

/// Owns the memory of one application instance's variables.
class VariableArena {
 public:
  explicit VariableArena(const AppModel& model);

  /// Raw storage of variable i (its `bytes` bytes).
  void* storage(std::size_t var_index);
  const void* storage(std::size_t var_index) const;

  /// Heap block of a pointer variable (nullptr for non-pointer variables).
  void* heap_block(std::size_t var_index);
  std::size_t heap_block_bytes(std::size_t var_index) const;

  /// Re-applies the JSON initial values (fresh run of the same instance).
  /// Storage capacity is retained, so a warmed arena reinitializes without
  /// heap allocation.
  void reinitialize(const AppModel& model);

  /// Serializes every slot's storage and heap-block bytes (checkpoint).
  void save(StateWriter& out) const;
  /// Restores slot contents. Slot and size layout must match `model`
  /// (StateError otherwise). The serialized storage of a pointer variable
  /// holds the *source* arena's heap address; load() rewrites it to this
  /// arena's own block, so a restored instance can never alias the arena of
  /// the instance the snapshot was taken from (or of whatever instance has
  /// since recycled that storage).
  void load(StateReader& in, const AppModel& model);

 private:
  struct Slot {
    std::vector<std::uint8_t> storage;
    std::vector<std::uint8_t> heap;
  };
  std::vector<Slot> slots_;
};

enum class TaskState { kWaiting, kReady, kAssigned, kRunning, kComplete };

/// Runtime state of one DAG node within one application instance. This is
/// the unit the workload manager schedules and the resource manager runs.
struct TaskInstance {
  const DagNode* node = nullptr;
  class AppInstance* app = nullptr;
  TaskState state = TaskState::kWaiting;
  std::size_t remaining_predecessors = 0;

  /// Dense per-emulation node id assigned by the engine (OptionLookup
  /// registration order); indexes the engine's interned cost/runfunc tables.
  std::uint32_t lookup_id = 0;

  // Scheduling/dispatch record (SimTime, relative to emulation start).
  SimTime ready_time = 0;
  SimTime dispatch_time = 0;
  SimTime start_time = 0;
  SimTime end_time = 0;
  int pe_id = -1;
  const PlatformOption* chosen_platform = nullptr;
};

/// Caller-owned scratch the per-event AppInstance queries append into. Sized
/// for the widest fan-out of the built-in applications; wider DAGs spill to
/// the heap once and then stay warm.
using TaskScratch = SmallVec<TaskInstance*, 16>;

/// One injected copy of an application.
class AppInstance {
 public:
  AppInstance(const AppModel& model, int instance_id, std::uint64_t seed);

  const AppModel& model() const noexcept { return *model_; }
  int instance_id() const noexcept { return instance_id_; }

  VariableArena& arena() noexcept { return arena_; }
  Rng& rng() noexcept { return rng_; }

  std::vector<TaskInstance>& tasks() noexcept { return tasks_; }
  const std::vector<TaskInstance>& tasks() const noexcept { return tasks_; }
  TaskInstance& task(std::size_t node_index);

  /// Restores the freshly-constructed state under a new identity: arena
  /// values, task states and the RNG are indistinguishable from
  /// AppInstance(model(), instance_id, seed). Used by AppInstancePool.
  void reset(int instance_id, std::uint64_t seed);

  /// Checkpoint of everything but identity: timing, RNG stream, per-task
  /// runtime state (platform choice encoded as an option index) and the
  /// arena. The engine frames the instance id and model outside.
  void save(StateWriter& out) const;
  /// Restores into an instance of the same model (task count and arena
  /// layout must match; StateError otherwise). lookup_id is NOT restored —
  /// the restoring engine stamps its own interned ids, exactly as at
  /// injection.
  void load(StateReader& in);

  /// Appends the tasks with no predecessors (enqueued at injection) to `out`.
  void head_tasks(TaskScratch& out);

  /// Marks `task` complete and appends the successors that became ready to
  /// `out` (which is NOT cleared — callers batch across completions).
  void complete_task(TaskInstance& task, TaskScratch& out);

  /// Convenience for tests and non-hot callers; the engines use the
  /// scratch-based overloads above.
  std::vector<TaskInstance*> head_tasks();
  std::vector<TaskInstance*> complete_task(TaskInstance& task);

  bool is_complete() const noexcept {
    return completed_count_ == tasks_.size();
  }
  std::size_t completed_count() const noexcept { return completed_count_; }

  SimTime injection_time = 0;
  SimTime completion_time = 0;

 private:
  void reset_tasks();

  const AppModel* model_;
  int instance_id_;
  VariableArena arena_;
  Rng rng_;
  std::vector<TaskInstance> tasks_;
  std::size_t completed_count_ = 0;
};

/// Recycles AppInstance objects per AppModel across injections: a released
/// instance is reset() and handed back by the next acquire of the same
/// model, so sustained-rate runs stop paying arena construction (variable
/// storage + heap blocks) per injection. Not thread-safe — one pool per
/// engine or per sweep worker thread. Setting DSSOC_POOL_DISABLE=1 in the
/// environment turns the pool into a plain factory (every acquire
/// constructs, every release destroys) for allocator-level debugging;
/// timelines are bit-identical either way.
class AppInstancePool : public Checkpointable {
 public:
  AppInstancePool();

  /// A reset instance of `model` with the given identity. Recycles when the
  /// model's free list is non-empty, constructs otherwise.
  std::unique_ptr<AppInstance> acquire(const AppModel& model, int instance_id,
                                       std::uint64_t seed);

  /// Returns an instance for future reuse (dropped when disabled).
  void release(std::unique_ptr<AppInstance> instance);

  bool disabled() const noexcept { return disabled_; }
  /// Instances constructed (not recycled) since pool creation.
  std::size_t constructed() const noexcept { return constructed_; }
  /// Instances handed out from the free lists since pool creation.
  std::size_t recycled() const noexcept { return recycled_; }

  /// Checkpoint of the pool's occupancy counters. Pool *contents* are
  /// storage, not semantic state — every acquire() resets an instance to
  /// the freshly-constructed state, so timelines are bit-identical whatever
  /// the free lists hold. save/load therefore carry only the counters (and
  /// the disabled flag, for cross-checking); load() leaves warm free lists
  /// intact.
  void save(StateWriter& out) const override;
  void load(StateReader& in) override;

 private:
  struct ModelPool {
    const AppModel* model = nullptr;
    Pool<AppInstance> free;
  };
  ModelPool& pool_for(const AppModel& model);

  // Linear map keyed by AppModel address: the model universe of a sweep is a
  // handful of archetypes, and lookups happen once per injection, so a scan
  // beats hashing and keeps release() allocation-free after warm-up.
  std::vector<ModelPool> pools_;
  bool disabled_ = false;
  std::size_t constructed_ = 0;
  std::size_t recycled_ = 0;
};

}  // namespace dssoc::core
