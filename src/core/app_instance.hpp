// Application instantiation: variable arena + per-task runtime state.
//
// Instantiation mirrors §II-B: every variable gets storage of `bytes` bytes
// initialized from its "val" byte list; pointer variables additionally get a
// heap block of ptr_alloc_bytes, and their storage holds that block's
// address — exactly the layout a 64-bit process would see.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/app_model.hpp"

namespace dssoc::core {

/// Owns the memory of one application instance's variables.
class VariableArena {
 public:
  explicit VariableArena(const AppModel& model);

  /// Raw storage of variable i (its `bytes` bytes).
  void* storage(std::size_t var_index);
  const void* storage(std::size_t var_index) const;

  /// Heap block of a pointer variable (nullptr for non-pointer variables).
  void* heap_block(std::size_t var_index);
  std::size_t heap_block_bytes(std::size_t var_index) const;

  /// Re-applies the JSON initial values (fresh run of the same instance).
  void reinitialize(const AppModel& model);

 private:
  struct Slot {
    std::vector<std::uint8_t> storage;
    std::vector<std::uint8_t> heap;
  };
  std::vector<Slot> slots_;
};

enum class TaskState { kWaiting, kReady, kAssigned, kRunning, kComplete };

/// Runtime state of one DAG node within one application instance. This is
/// the unit the workload manager schedules and the resource manager runs.
struct TaskInstance {
  const DagNode* node = nullptr;
  class AppInstance* app = nullptr;
  TaskState state = TaskState::kWaiting;
  std::size_t remaining_predecessors = 0;

  // Scheduling/dispatch record (SimTime, relative to emulation start).
  SimTime ready_time = 0;
  SimTime dispatch_time = 0;
  SimTime start_time = 0;
  SimTime end_time = 0;
  int pe_id = -1;
  const PlatformOption* chosen_platform = nullptr;
};

/// One injected copy of an application.
class AppInstance {
 public:
  AppInstance(const AppModel& model, int instance_id, std::uint64_t seed);

  const AppModel& model() const noexcept { return *model_; }
  int instance_id() const noexcept { return instance_id_; }

  VariableArena& arena() noexcept { return arena_; }
  Rng& rng() noexcept { return rng_; }

  std::vector<TaskInstance>& tasks() noexcept { return tasks_; }
  const std::vector<TaskInstance>& tasks() const noexcept { return tasks_; }
  TaskInstance& task(std::size_t node_index);

  /// Tasks with no predecessors, to be enqueued at injection.
  std::vector<TaskInstance*> head_tasks();

  /// Marks `task` complete and returns the successors that became ready.
  std::vector<TaskInstance*> complete_task(TaskInstance& task);

  bool is_complete() const noexcept {
    return completed_count_ == tasks_.size();
  }
  std::size_t completed_count() const noexcept { return completed_count_; }

  SimTime injection_time = 0;
  SimTime completion_time = 0;

 private:
  const AppModel* model_;
  int instance_id_;
  VariableArena arena_;
  Rng rng_;
  std::vector<TaskInstance> tasks_;
  std::size_t completed_count_ = 0;
};

}  // namespace dssoc::core
