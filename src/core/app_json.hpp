// JSON (de)serialization of application descriptions — the exact schema of
// Listing 1 in the paper:
//
//   "AppName":      string
//   "SharedObject": string
//   "Variables":    { name: {bytes, is_ptr, ptr_alloc_bytes, val[]} }
//   "DAG":          { node: {arguments[], predecessors[], successors[],
//                            platforms[{name, runfunc, shared_object?}],
//                            cost?{kernel, units}} }
//
// The optional "cost" member is this reproduction's extension consumed by
// the virtual-time engine; documents without it still parse and run.
#pragma once

#include <string>

#include "core/app_model.hpp"
#include "json/json.hpp"

namespace dssoc::core {

/// Parses and finalizes an application model. Throws ParseError/DssocError
/// with descriptive messages on schema violations.
AppModel app_from_json(const json::Value& document);

/// Parses from JSON text.
AppModel app_from_json_text(const std::string& text);

/// Serializes a model back to the Listing-1 schema (round-trip stable).
json::Value app_to_json(const AppModel& model);

}  // namespace dssoc::core
