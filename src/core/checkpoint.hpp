// Checkpointable engine state: the snapshot/restore contract.
//
// Engine-visible mutable state is serialized through the versioned,
// length-prefixed binary format of common/state_io.hpp. Stateful,
// engine-owned objects (Emulation, AppInstancePool) implement the
// Checkpointable interface below; value-like state holders (AppInstance,
// VariableArena, ResourceHandler, EmulationStats) follow the same
// save(StateWriter&) / load(StateReader&) signature convention as plain
// member functions, taking whatever context (model, task codec) their
// pointer-free encoding needs.
//
// Serialization contract:
//  * Pointer-free: a TaskInstance* is encoded as (active-instance slot,
//    node index) through a TaskCodec; a PlatformOption* as an index into
//    its task's node->platforms; an AppModel is derivable from the
//    instance id (== workload entry index). Pointer-variable arena slots
//    re-derive their own heap-block address on load, so a snapshot can
//    never alias another instance's storage.
//  * Derivable caches are NOT serialized — they carry an
//    invalidate-on-restore contract instead (see Scheduler::load_state and
//    the engine's estimate-cache comment): a value that is a pure function
//    of immutable inputs may survive or be recomputed, bit-identically.
//  * Restoring a snapshot into an engine with the *same* workload is valid
//    at any workload-manager cycle boundary and resumes bit-identically.
//    Restoring into a *different* (extended) workload — the fork-sweep
//    path — additionally requires the snapshot to be quiescent, the
//    consumed arrival prefix to match, and every post-prefix arrival to
//    lie at or after the snapshot's virtual time. validate_snapshot_meta()
//    enforces all of it loudly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/state_io.hpp"
#include "core/workload.hpp"

namespace dssoc::core {

struct TaskInstance;
struct Assignment;

/// Uniform snapshot/restore interface for stateful engine objects.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual void save(StateWriter& out) const = 0;
  virtual void load(StateReader& in) = 0;
};

/// Payload kind of an engine snapshot stream (StateWriter/StateReader
/// header field). Both engines consume this kind; only the virtual-time
/// engine produces it.
inline constexpr std::uint32_t kEngineSnapshotKind =
    state_tag('V', 'E', 'N', 'G');

// Section tags of an engine snapshot, in stream order.
inline constexpr std::uint32_t kMetaTag = state_tag('M', 'E', 'T', 'A');
inline constexpr std::uint32_t kRngTag = state_tag('R', 'N', 'G', 'S');
inline constexpr std::uint32_t kInstancesTag = state_tag('I', 'N', 'S', 'T');
inline constexpr std::uint32_t kReadyTag = state_tag('R', 'E', 'D', 'Y');
inline constexpr std::uint32_t kHandlersTag = state_tag('P', 'E', 'H', 'S');
inline constexpr std::uint32_t kCoresTag = state_tag('C', 'O', 'R', 'E');
inline constexpr std::uint32_t kStatsTag = state_tag('S', 'T', 'A', 'T');
inline constexpr std::uint32_t kSchedulerTag = state_tag('S', 'C', 'H', 'D');

/// FNV-1a over the first `count` workload entries (app name + arrival).
/// Snapshot validation compares consumed prefixes across workloads with it.
std::uint64_t workload_prefix_hash(const Workload& workload,
                                   std::size_t count);

/// The snapshot's self-description: where the source emulation stood and
/// which configuration produced it. First section of every snapshot, so it
/// can be peeked without deserializing engine state.
struct SnapshotMeta {
  SimTime virtual_time = 0;          ///< clock at the captured boundary
  bool quiescent = false;            ///< no active instances/ready/running
  std::uint64_t consumed_entries = 0;  ///< workload injection cursor
  std::uint64_t completed_apps = 0;
  std::uint64_t total_entries = 0;   ///< source workload size
  std::uint64_t prefix_hash = 0;     ///< hash of the consumed prefix
  std::uint64_t full_hash = 0;       ///< hash of the whole source workload
  std::string soc_label;
  std::string scheduler;
  std::uint32_t pe_count = 0;
  std::uint64_t seed = 0;
  std::int32_t pe_queue_depth = 1;

  void save(StateWriter& out) const;
  void load(StateReader& in);
};

/// Rejects (with a StateError explaining the exact mismatch) restoring a
/// snapshot into an incompatible target: different SoC config, scheduler,
/// PE count, seed or queue depth — or a workload that neither matches the
/// source bit-for-bit nor satisfies the quiescent-fork conditions
/// (matching consumed prefix, tail arrivals at or after the snapshot's
/// virtual time).
void validate_snapshot_meta(const SnapshotMeta& meta,
                            const std::string& soc_label,
                            const std::string& scheduler_name,
                            std::size_t pe_count, std::uint64_t seed,
                            int pe_queue_depth, const Workload& workload);

/// A serialized engine state plus cheap header/META peeking. The bytes are
/// self-contained and host-independent; persist or ship them as-is.
class EngineSnapshot {
 public:
  EngineSnapshot() = default;
  explicit EngineSnapshot(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  bool empty() const noexcept { return bytes_.empty(); }
  const std::vector<std::uint8_t>& data() const noexcept { return bytes_; }

  /// Parses the header and META section (throws StateError when the bytes
  /// are not a valid engine snapshot).
  SnapshotMeta meta() const;
  SimTime virtual_time() const { return meta().virtual_time; }
  bool quiescent() const { return meta().quiescent; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Encodes TaskInstance pointers as stable (active-instance slot, node
/// index) pairs. The engine implements it over its active-instance list;
/// ResourceHandler serialization delegates task references to it.
class TaskCodec {
 public:
  virtual ~TaskCodec() = default;
  virtual void encode(StateWriter& out, const TaskInstance* task) const = 0;
  virtual TaskInstance* decode(StateReader& in) const = 0;
};

/// Codec for contexts that must not contain live task references (e.g. the
/// real-time engine resuming a quiescent snapshot): encoding or decoding a
/// non-null task throws StateError.
class NullTaskCodec final : public TaskCodec {
 public:
  void encode(StateWriter& out, const TaskInstance* task) const override;
  TaskInstance* decode(StateReader& in) const override;
};

/// (task ref via codec) + platform-option index; an empty Assignment
/// round-trips as a null task reference.
void save_assignment(StateWriter& out, const Assignment& assignment,
                     const TaskCodec& codec);
Assignment load_assignment(StateReader& in, const TaskCodec& codec);

}  // namespace dssoc::core
