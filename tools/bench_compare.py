#!/usr/bin/env python3
"""Compare a BENCH_sweep.json artifact against a checked-in baseline.

Used by the CI perf-smoke job to fail on wall-clock regressions:

    tools/bench_compare.py BENCH_sweep.json bench/baselines/fig10.json

Absolute wall times differ across machines, so the comparison is
normalized by an estimated machine-speed factor: the *minimum*
fresh/baseline wall ratio across qualifying points (baseline wall >=
--min-point-ms). Machine drift scales every point, so the least-regressed
point tracks it; a real regression hits a subset of points, which then
stand out against that factor. The checks:

  * any qualifying point's wall > its baseline * speed * (1 + --point-threshold)
  * total wall              > baseline total * speed * (1 + --threshold)
  * absolute backstop: total > baseline total * --backstop (catches a
    uniform regression that the normalization would otherwise absorb —
    indistinguishable from a slow machine below this factor)

Exit status 1 on any violation. Refresh the baseline after intentional
performance changes with:

    tools/bench_compare.py BENCH_sweep.json bench/baselines/fig10.json --update

The gate's job is to catch order-of-magnitude regressions (a return to
per-cycle spinning or per-event allocation), not single-digit percent
drift. See EXPERIMENTS.md, "Performance baselines".

Schema tolerance: both documents may carry keys this script does not
know about (schema 2 added sweep_mode, warmup_wall_ms, pool_enabled,
spin_fast_forward; schema 3 added fabric, worker_respawns and per-point
status/retries/error; schema 4 added resumed, journal_points_reused,
interrupted and per-point source/digest/config_hash; schema 5 added
saturated_count, the "saturated" status, per-point latency percentiles
and saturation keys); unknown keys are ignored, so schema-1 baselines
compare cleanly against schema-5 artifacts. Semantic guards:

  * sweep_mode: wall times from a fork-mode sweep are not comparable to
    a cold baseline (fork skips per-point warm-up), so a mode mismatch
    fails fast instead of producing a meaningless speed factor.
  * non-ok points (schema 3+, status != "ok"): a failed point has no
    wall time, a saturated point (schema 5) measured a truncated
    emulation, and a run whose non-ok point set differs from its
    baseline's measured a different workload. Identical non-ok sets
    compare over the surviving points; differing sets refuse to
    compare, naming the differing labels. Saturated points are treated
    exactly like failed ones here — their wall time covers an
    early-terminated run, not the sweep the baseline measured.
  * resumed runs (schema 4): a point replayed from the sweep journal
    carries the *original* run's wall time, not this machine's, so a
    resumed artifact (resumed true, journal_points_reused > 0, or any
    point with source "journal") can neither become a baseline via
    --update nor be compared against one. Interrupted runs (interrupted
    != 0) measured a truncated sweep and are refused the same way.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def failed_labels(doc):
    """Labels of points that did not complete — failed or saturated
    (schema 3/5; older schemas have no status key and every point
    counts as ok)."""
    return {p["label"] for p in doc.get("points", [])
            if p.get("status", "ok") != "ok"}


def not_fresh_reason(doc):
    """Why this artifact's wall times do not describe one uninterrupted
    run on one machine — or None if they do (schema 4; older schemas
    could only be produced by fresh runs)."""
    if doc.get("resumed", False) or doc.get("journal_points_reused", 0) > 0:
        return "run was resumed from a sweep journal"
    journal = sorted(p["label"] for p in doc.get("points", [])
                     if p.get("source", "run") == "journal")
    if journal:
        return (f"{len(journal)} point(s) replayed from a journal: "
                f"{', '.join(journal)}")
    if doc.get("interrupted", 0) != 0:
        return f"run was interrupted by signal {doc['interrupted']}"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="BENCH_sweep.json from the current run")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed normalized total-wall regression")
    parser.add_argument("--point-threshold", type=float, default=0.50,
                        help="allowed normalized per-point regression")
    parser.add_argument("--min-point-ms", type=float, default=50.0,
                        help="points below this baseline wall are noise")
    parser.add_argument("--min-total-ms", type=float, default=200.0,
                        help="skip every check below this baseline total")
    parser.add_argument("--backstop", type=float, default=5.0,
                        help="absolute total-wall ratio that always fails")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the fresh run")
    args = parser.parse_args()

    fresh = load(args.fresh)
    stale = not_fresh_reason(fresh)
    if stale:
        print(f"refusing: {stale}; journal-replayed wall times belong to "
              f"the original run, not this one — rerun without "
              f"DSSOC_SWEEP_RESUME for a measurable artifact",
              file=sys.stderr)
        return 1
    if args.update:
        failed = failed_labels(fresh)
        if failed:
            print(f"refusing to record a baseline with failed points: "
                  f"{', '.join(sorted(failed))}; rerun cleanly first",
                  file=sys.stderr)
            return 1
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline updated from {args.fresh}: "
              f"total {fresh['total_wall_ms']:.1f} ms, "
              f"{fresh['point_count']} points")
        return 0

    baseline = load(args.baseline)
    # Schema-1 documents predate sweep_mode; treat them as cold sweeps.
    fresh_mode = fresh.get("sweep_mode", "cold")
    base_mode = baseline.get("sweep_mode", "cold")
    if fresh_mode != base_mode:
        print(f"sweep_mode mismatch: fresh is \"{fresh_mode}\", baseline is "
              f"\"{base_mode}\"; wall times are not comparable across sweep "
              f"modes (re-record the baseline or rerun with the matching "
              f"DSSOC_SWEEP_MODE)", file=sys.stderr)
        return 1
    fresh_failed = failed_labels(fresh)
    base_failed = failed_labels(baseline)
    if fresh_failed != base_failed:
        only_fresh = sorted(fresh_failed - base_failed)
        only_base = sorted(base_failed - fresh_failed)
        print("failed-point sets differ; wall times cover different work "
              "and are not comparable:", file=sys.stderr)
        if only_fresh:
            print(f"  failed only in fresh run:  {', '.join(only_fresh)}",
                  file=sys.stderr)
        if only_base:
            print(f"  failed only in baseline:   {', '.join(only_base)}",
                  file=sys.stderr)
        print("  (rerun without faults, or re-record the baseline)",
              file=sys.stderr)
        return 1
    if fresh_failed:
        print(f"note: {len(fresh_failed)} point(s) failed in both runs and "
              f"are excluded: {', '.join(sorted(fresh_failed))}")

    base_total = baseline["total_wall_ms"]
    fresh_total = fresh["total_wall_ms"]
    if base_total < args.min_total_ms:
        print(f"baseline total {base_total:.1f} ms below "
              f"{args.min_total_ms:.0f} ms floor; nothing to compare")
        return 0

    base_points = {p["label"]: p for p in baseline.get("points", [])}
    pairs = []  # (label, baseline wall, fresh wall)
    for point in fresh.get("points", []):
        if point["label"] in fresh_failed:
            continue  # no wall time on either side
        base = base_points.get(point["label"])
        if base is not None and base["wall_ms"] >= args.min_point_ms:
            pairs.append((point["label"], base["wall_ms"], point["wall_ms"]))

    # Machine-speed estimate: the least-regressed qualifying point.
    speed = 1.0
    if len(pairs) >= 2:
        speed = min(fresh_wall / base_wall for _, base_wall, fresh_wall in pairs)
    print(f"total wall: baseline {base_total:.1f} ms, fresh "
          f"{fresh_total:.1f} ms; machine-speed factor {speed:.2f} "
          f"(min ratio over {len(pairs)} points)")

    failures = []
    for label, base_wall, fresh_wall in pairs:
        allowed = base_wall * speed * (1.0 + args.point_threshold)
        marker = " REGRESSION" if fresh_wall > allowed else ""
        print(f"  {label}: baseline {base_wall:.1f} ms, fresh "
              f"{fresh_wall:.1f} ms (allowed {allowed:.1f}){marker}")
        if fresh_wall > allowed:
            failures.append(
                f"point {label} wall {fresh_wall:.1f} ms exceeds normalized "
                f"baseline {base_wall * speed:.1f} ms by more than "
                f"{args.point_threshold:.0%}")
    if fresh_total > base_total * speed * (1.0 + args.threshold):
        failures.append(
            f"total wall {fresh_total:.1f} ms exceeds normalized baseline "
            f"{base_total * speed:.1f} ms by more than {args.threshold:.0%}")
    if fresh_total > base_total * args.backstop:
        failures.append(
            f"total wall {fresh_total:.1f} ms exceeds the absolute backstop "
            f"({args.backstop:.1f}x baseline {base_total:.1f} ms)")

    if failures:
        print("\nPERF REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf within baseline thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
