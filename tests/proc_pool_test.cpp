// Tests for the fault-isolated process-pool sweep fabric (exp/proc_pool.hpp)
// and its wire protocol (exp/wire.hpp): clean-run bit-identity against the
// in-process SweepRunner, containment of injected crashes / hangs / garbled
// frames, retry-then-fail accounting, worker-reported engine errors, fabric
// selection, and supervisor hygiene (no zombie children, no leaked fds).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/emulation.hpp"
#include "exp/proc_pool.hpp"
#include "exp/sweep.hpp"
#include "exp/wire.hpp"
#include "platform/platform.hpp"

namespace dssoc::exp {
namespace {

/// Sets an environment variable for the test's scope, restoring (unsetting)
/// on destruction so fault specs never leak across tests.
class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    EXPECT_EQ(setenv(name, value.c_str(), 1), 0);
  }
  ~EnvGuard() { unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
};

struct Fixture {
  Fixture() {
    platform = platform::zcu102();
    apps::register_all_kernels(registry);
    library = apps::default_application_library();
  }

  SweepPoint point(const std::string& config, const std::string& scheduler,
                   const core::Workload& workload) const {
    SweepPoint p;
    p.label = config + "/" + scheduler;
    p.setup.platform = &platform;
    p.setup.soc = platform::parse_config_label(config);
    p.setup.apps = &library;
    p.setup.registry = &registry;
    p.setup.cost_model = platform::default_cost_model();
    p.setup.options.scheduler = scheduler;
    p.workload = workload;
    return p;
  }

  std::vector<SweepPoint> small_sweep(int count) const {
    const core::Workload workload = core::make_validation_workload(
        {{"wifi_tx", 1}, {"range_detection", 1}});
    const char* schedulers[] = {"FRFS", "MET", "EFT"};
    std::vector<SweepPoint> points;
    for (int i = 0; i < count; ++i) {
      SweepPoint p = point("2C+1F", schedulers[i % 3], workload);
      p.label += "/pt" + std::to_string(i);
      points.push_back(std::move(p));
    }
    return points;
  }

  platform::Platform platform;
  core::SharedObjectRegistry registry;
  core::ApplicationLibrary library;
};

ProcessPoolOptions fast_options(int workers, int retries) {
  ProcessPoolOptions options;
  options.workers = workers;
  options.max_retries = retries;
  options.backoff_ms = 1.0;  // keep retry tests fast
  return options;
}

std::size_t open_fd_count() {
  std::size_t count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++count;
  }
  return count;
}

// --- FaultPlan --------------------------------------------------------------

TEST(FaultPlan, ParsesKindsIndicesAndAttemptCounts) {
  EXPECT_EQ(FaultPlan::parse("").kind, FaultPlan::Kind::kNone);

  const FaultPlan crash = FaultPlan::parse("crash@7");
  EXPECT_EQ(crash.kind, FaultPlan::Kind::kCrash);
  EXPECT_EQ(crash.point, 7u);
  EXPECT_EQ(crash.attempts, -1);
  EXPECT_TRUE(crash.fires(7, 1));
  EXPECT_TRUE(crash.fires(7, 99));  // every attempt without :N
  EXPECT_FALSE(crash.fires(6, 1));

  const FaultPlan once = FaultPlan::parse("hang@3:1");
  EXPECT_EQ(once.kind, FaultPlan::Kind::kHang);
  EXPECT_EQ(once.attempts, 1);
  EXPECT_TRUE(once.fires(3, 1));
  EXPECT_FALSE(once.fires(3, 2));  // retry succeeds

  EXPECT_EQ(FaultPlan::parse("garble@0").kind, FaultPlan::Kind::kGarble);

  // killsup@K is supervisor-side: K is a collected-result count (>= 1),
  // never an attempt-limited per-point worker fault.
  const FaultPlan killsup = FaultPlan::parse("killsup@7");
  EXPECT_EQ(killsup.kind, FaultPlan::Kind::kKillSup);
  EXPECT_EQ(killsup.point, 7u);
  EXPECT_FALSE(killsup.fires(7, 1));
  EXPECT_FALSE(killsup.fires(0, 1));

  for (const char* bad : {"crash", "crash@", "@3", "fizzle@3", "crash@x",
                          "crash@3:", "crash@3:0", "crash@3:x", "killsup@0",
                          "killsup@3:1", "killsup@"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW(FaultPlan::parse(bad), DssocError);
  }
}

// --- wire protocol ----------------------------------------------------------

TEST(Wire, JobAndResultRoundTrip) {
  const WireJob job{42, 3};
  const WireJob back = decode_job(encode_job(job));
  EXPECT_EQ(back.point_index, 42u);
  EXPECT_EQ(back.attempt, 3u);

  WireResult result;
  result.point_index = 7;
  result.attempt = 2;
  result.ok = false;
  result.error = "engine said no";
  result.wall_ms = 1.5;
  const WireResult echoed = decode_result(encode_result(result));
  EXPECT_EQ(echoed.point_index, 7u);
  EXPECT_EQ(echoed.attempt, 2u);
  EXPECT_FALSE(echoed.ok);
  EXPECT_EQ(echoed.error, "engine said no");
  EXPECT_EQ(echoed.wall_ms, 1.5);
}

TEST(Wire, GarbledPayloadIsRejectedByCrc) {
  std::vector<std::uint8_t> payload = encode_job(WireJob{1, 1});
  payload[payload.size() / 2] ^= 0xFF;
  EXPECT_THROW(decode_job(payload), StateError);
}

TEST(Wire, FrameBufferReassemblesSplitFrames) {
  const std::vector<std::uint8_t> payload = encode_job(WireJob{9, 1});
  std::vector<std::uint8_t> stream;
  stream.push_back('D');
  stream.push_back('S');
  stream.push_back('S');
  stream.push_back('F');
  for (int i = 0; i < 8; ++i) {
    stream.push_back(
        static_cast<std::uint8_t>((payload.size() >> (8 * i)) & 0xFF));
  }
  stream.insert(stream.end(), payload.begin(), payload.end());

  FrameBuffer buffer;
  std::vector<std::uint8_t> out;
  // Feed byte by byte: no frame until the very last byte arrives.
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    buffer.feed(&stream[i], 1);
    EXPECT_FALSE(buffer.take_frame(out));
  }
  EXPECT_TRUE(buffer.mid_frame());
  buffer.feed(&stream.back(), 1);
  ASSERT_TRUE(buffer.take_frame(out));
  EXPECT_EQ(out, payload);
  EXPECT_FALSE(buffer.mid_frame());

  // Two frames in one feed drain in order.
  buffer.feed(stream.data(), stream.size());
  buffer.feed(stream.data(), stream.size());
  EXPECT_TRUE(buffer.take_frame(out));
  EXPECT_TRUE(buffer.take_frame(out));
  EXPECT_FALSE(buffer.take_frame(out));
}

TEST(Wire, FrameBufferRejectsBadMagic) {
  FrameBuffer buffer;
  const std::uint8_t junk[16] = {'n', 'o', 'p', 'e', 0, 0, 0, 0,
                                 0,   0,   0,   0,   0, 0, 0, 0};
  buffer.feed(junk, sizeof(junk));
  std::vector<std::uint8_t> out;
  EXPECT_THROW(buffer.take_frame(out), WireError);
}

// --- clean runs -------------------------------------------------------------

TEST(ProcessPool, CleanRunIsBitIdenticalToInProcessRunner) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(6);
  const std::vector<SweepResult> inproc = SweepRunner(2).run(points);

  ProcessPool pool(fast_options(3, 2));
  const std::vector<SweepResult> proc = pool.run(points);

  ASSERT_EQ(proc.size(), points.size());
  EXPECT_EQ(pool.accounting().worker_respawns, 0u);
  EXPECT_EQ(pool.accounting().points_failed, 0u);
  EXPECT_EQ(pool.accounting().points_retried, 0u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(points[i].label);
    EXPECT_EQ(proc[i].label, points[i].label);
    EXPECT_EQ(proc[i].status, PointStatus::kOk);
    EXPECT_EQ(proc[i].retries, 0);
    // Full checkpoint-encoding digest: the fabrics are interchangeable.
    EXPECT_EQ(proc[i].stats.digest(), inproc[i].stats.digest());
  }
}

TEST(ProcessPool, EmptySweepCompletes) {
  ProcessPool pool(fast_options(2, 0));
  EXPECT_TRUE(pool.run({}).empty());
}

// --- containment ------------------------------------------------------------

TEST(ProcessPool, CrashedPointIsContainedAndOthersComplete) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(6);
  const std::vector<SweepResult> clean = SweepRunner(2).run(points);

  const EnvGuard fault("DSSOC_FAULT_INJECT", "crash@2");
  ProcessPool pool(fast_options(2, 2));
  const std::vector<SweepResult> results = pool.run(points);

  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(points[i].label);
    if (i == 2) {
      EXPECT_EQ(results[i].status, PointStatus::kFailed);
      EXPECT_EQ(results[i].retries, 2);  // exhausted max_retries
      EXPECT_NE(results[i].error.find("sweep point 2"), std::string::npos)
          << results[i].error;
      EXPECT_NE(results[i].error.find(points[2].label), std::string::npos)
          << results[i].error;
      EXPECT_NE(results[i].error.find("exit code 42"), std::string::npos)
          << results[i].error;
    } else {
      EXPECT_EQ(results[i].status, PointStatus::kOk);
      EXPECT_EQ(results[i].stats.digest(), clean[i].stats.digest());
    }
  }
  EXPECT_EQ(pool.accounting().points_failed, 1u);
  EXPECT_EQ(pool.accounting().points_retried, 2u);
  EXPECT_EQ(pool.accounting().worker_respawns, 3u);  // one per attempt
}

TEST(ProcessPool, CrashOnFirstAttemptOnlyRetriesThenSucceeds) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(4);
  const std::vector<SweepResult> clean = SweepRunner(2).run(points);

  const EnvGuard fault("DSSOC_FAULT_INJECT", "crash@1:1");
  ProcessPool pool(fast_options(2, 2));
  const std::vector<SweepResult> results = pool.run(points);

  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(points[i].label);
    EXPECT_EQ(results[i].status, PointStatus::kOk);
    EXPECT_EQ(results[i].stats.digest(), clean[i].stats.digest());
  }
  EXPECT_EQ(results[1].retries, 1);  // one crash, one successful retry
  EXPECT_EQ(pool.accounting().points_failed, 0u);
  EXPECT_EQ(pool.accounting().points_retried, 1u);
  EXPECT_EQ(pool.accounting().worker_respawns, 1u);
}

TEST(ProcessPool, GarbledResultFrameIsTreatedAsCrash) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(4);
  const std::vector<SweepResult> clean = SweepRunner(2).run(points);

  const EnvGuard fault("DSSOC_FAULT_INJECT", "garble@0");
  ProcessPool pool(fast_options(2, 1));
  const std::vector<SweepResult> results = pool.run(points);

  ASSERT_EQ(results.size(), points.size());
  EXPECT_EQ(results[0].status, PointStatus::kFailed);
  EXPECT_EQ(results[0].retries, 1);
  EXPECT_NE(results[0].error.find("malformed result frame"),
            std::string::npos)
      << results[0].error;
  for (std::size_t i = 1; i < results.size(); ++i) {
    SCOPED_TRACE(points[i].label);
    EXPECT_EQ(results[i].status, PointStatus::kOk);
    EXPECT_EQ(results[i].stats.digest(), clean[i].stats.digest());
  }
  EXPECT_GE(pool.accounting().worker_respawns, 2u);
}

TEST(ProcessPool, HungWorkerIsKilledByTheWatchdog) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(4);
  const std::vector<SweepResult> clean = SweepRunner(2).run(points);

  const EnvGuard fault("DSSOC_FAULT_INJECT", "hang@1");
  ProcessPoolOptions options = fast_options(2, 1);
  options.timeout_ms = 300.0;
  ProcessPool pool(options);
  const std::vector<SweepResult> results = pool.run(points);

  ASSERT_EQ(results.size(), points.size());
  EXPECT_EQ(results[1].status, PointStatus::kFailed);
  EXPECT_NE(results[1].error.find("timed out"), std::string::npos)
      << results[1].error;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == 1) {
      continue;
    }
    SCOPED_TRACE(points[i].label);
    EXPECT_EQ(results[i].status, PointStatus::kOk);
    EXPECT_EQ(results[i].stats.digest(), clean[i].stats.digest());
  }
}

TEST(ProcessPool, WorkerReportedEngineErrorIsContainedWithContext) {
  Fixture fx;
  std::vector<SweepPoint> points = fx.small_sweep(4);
  points[2].setup.options.scheduler = "BOGUS";  // deterministic ConfigError

  ProcessPool pool(fast_options(2, 1));
  const std::vector<SweepResult> results = pool.run(points);

  ASSERT_EQ(results.size(), points.size());
  EXPECT_EQ(results[2].status, PointStatus::kFailed);
  EXPECT_EQ(results[2].retries, 1);  // deterministic errors retry too
  EXPECT_NE(results[2].error.find("sweep point 2"), std::string::npos)
      << results[2].error;
  EXPECT_NE(results[2].error.find(points[2].label), std::string::npos)
      << results[2].error;
  EXPECT_NE(results[2].error.find("BOGUS"), std::string::npos)
      << results[2].error;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i != 2) {
      EXPECT_EQ(results[i].status, PointStatus::kOk);
    }
  }
  // A caught exception is answered over the pipe; the worker never dies.
  EXPECT_EQ(pool.accounting().worker_respawns, 0u);
}

// --- graceful shutdown ------------------------------------------------------

TEST(ProcessPool, SigtermStopsDispatchReapsWorkersAndMarksUnresolved) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(8);
  ProcessPool pool(fast_options(2, 0));
  // Raise SIGTERM from the supervisor's own result callback: the self-pipe
  // wakes the poll loop deterministically after the first collected result.
  std::size_t collected = 0;
  const std::vector<SweepResult> results =
      pool.run(points, [&](std::size_t, const SweepResult&) {
        if (++collected == 1) {
          raise(SIGTERM);
        }
      });

  EXPECT_EQ(pool.accounting().interrupted_signal, SIGTERM);
  ASSERT_EQ(results.size(), points.size());
  std::size_t ok = 0;
  std::size_t interrupted = 0;
  for (const SweepResult& result : results) {
    if (result.status == PointStatus::kOk) {
      ++ok;
    } else {
      EXPECT_NE(result.error.find("interrupted by signal"),
                std::string::npos)
          << result.error;
      ++interrupted;
    }
  }
  EXPECT_GE(ok, 1u);          // the result that triggered the signal landed
  EXPECT_GE(interrupted, 1u); // undispatched points were voided, not run
  EXPECT_EQ(ok + interrupted, points.size());
  // Graceful: every worker reaped, none left running or zombied.
  int status = 0;
  EXPECT_EQ(waitpid(-1, &status, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

// --- supervisor hygiene -----------------------------------------------------

TEST(ProcessPool, LeavesNoZombiesOrLeakedFds) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(5);
  const std::size_t fds_before = open_fd_count();
  {
    // A run with crashes exercises the respawn path's fd hygiene too.
    const EnvGuard fault("DSSOC_FAULT_INJECT", "crash@1:1");
    ProcessPool pool(fast_options(3, 2));
    const std::vector<SweepResult> results = pool.run(points);
    ASSERT_EQ(results.size(), points.size());
  }
  EXPECT_EQ(open_fd_count(), fds_before);
  // Every worker was reaped: no children remain, zombie or live.
  int status = 0;
  EXPECT_EQ(waitpid(-1, &status, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

// --- fabric selection -------------------------------------------------------

TEST(RunSweep, FabricEnvSelectsProcAndStaysBitIdentical) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(4);

  const SweepExecution inproc = run_sweep(points, 2);
  EXPECT_EQ(inproc.fabric, "inproc");
  EXPECT_EQ(inproc.width, 2);

  const EnvGuard fabric("DSSOC_SWEEP_FABRIC", "proc");
  const SweepExecution proc = run_sweep(points, 2);
  EXPECT_EQ(proc.fabric, "proc");
  EXPECT_EQ(proc.width, 2);
  EXPECT_EQ(proc.worker_respawns, 0u);
  EXPECT_EQ(proc.points_failed, 0u);
  EXPECT_TRUE(proc.failed().empty());
  ASSERT_EQ(proc.results.size(), inproc.results.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(points[i].label);
    EXPECT_EQ(proc.results[i].stats.digest(),
              inproc.results[i].stats.digest());
  }
}

TEST(RunSweep, FabricOffMeansInProcess) {
  const EnvGuard fabric("DSSOC_SWEEP_FABRIC", "off");
  EXPECT_EQ(sweep_fabric_from_env(), "inproc");
}

TEST(RunSweep, UnknownFabricValueThrows) {
  const EnvGuard fabric("DSSOC_SWEEP_FABRIC", "cluster");
  EXPECT_THROW(sweep_fabric_from_env(), DssocError);
}

TEST(RunSweep, FailureSummaryNamesTheCasualties) {
  std::vector<SweepResult> results(3);
  results[0].label = "a";
  results[2].label = "c";
  results[2].status = PointStatus::kFailed;
  results[2].error = "sweep point 2 (c): worker crashed (exit code 42)";
  const std::string summary = failure_summary(results);
  EXPECT_NE(summary.find("1 of 3"), std::string::npos) << summary;
  EXPECT_NE(summary.find("sweep point 2 (c)"), std::string::npos) << summary;
  EXPECT_TRUE(failure_summary({}).empty());
  results[2].status = PointStatus::kOk;
  EXPECT_TRUE(failure_summary(results).empty());
}

}  // namespace
}  // namespace dssoc::exp
