// Integration tests for the virtual-time engine: end-to-end functional
// verification of all four applications (the paper's validation-mode use
// case), determinism, statistics consistency, scheduler behaviour under
// load, host-core contention effects and the reservation-queue extension.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "apps/registry.hpp"
#include "core/emulation.hpp"
#include "platform/platform.hpp"

namespace dssoc::core {
namespace {

struct Fixture {
  Fixture() {
    platform = platform::zcu102();
    apps::register_all_kernels(registry);
    library = apps::default_application_library();
  }

  EmulationSetup setup(const std::string& config,
                       const std::string& scheduler = "FRFS") {
    EmulationSetup s;
    s.platform = &platform;
    s.soc = platform::parse_config_label(config);
    s.apps = &library;
    s.registry = &registry;
    s.cost_model = platform::default_cost_model();
    s.options.scheduler = scheduler;
    return s;
  }

  platform::Platform platform;
  SharedObjectRegistry registry;
  ApplicationLibrary library;
};

/// Reads a scalar variable out of the stats-free app instance path: we
/// re-run a single instance and inspect its arena afterwards via the
/// instance the engine owns — instead, the tests below verify outputs via
/// dedicated single-app emulations using a caller-held instance. To keep
/// the engine API minimal, functional outputs are asserted through a probe
/// kernel appended by the test where needed; for the built-in apps the
/// CRC/velocity/range outputs are checked with direct kernel runs in
/// apps_test.cpp and via the wifi_loopback example. Here we assert on the
/// engine-level contract: completion, record consistency, timing sanity.
TEST(VirtualEngine, ValidationModeCompletesAllApplications) {
  Fixture fx;
  const Workload workload = make_validation_workload(
      {{"wifi_tx", 1}, {"wifi_rx", 1}, {"range_detection", 1}});
  const EmulationStats stats = run_virtual(fx.setup("3C+2F"), workload);

  EXPECT_EQ(stats.apps.size(), 3u);
  EXPECT_EQ(stats.tasks.size(), 7u + 9u + 6u);
  EXPECT_GT(stats.makespan, 0);
  for (const AppRecord& app : stats.apps) {
    EXPECT_GE(app.completion_time, app.injection_time);
  }
}

TEST(VirtualEngine, TaskRecordsAreInternallyConsistent) {
  Fixture fx;
  const Workload workload =
      make_validation_workload({{"range_detection", 2}});
  const EmulationStats stats = run_virtual(fx.setup("2C+1F"), workload);
  ASSERT_EQ(stats.tasks.size(), 12u);
  for (const TaskRecord& task : stats.tasks) {
    EXPECT_LE(task.ready_time, task.dispatch_time) << task.node_name;
    EXPECT_LE(task.dispatch_time, task.start_time) << task.node_name;
    EXPECT_LT(task.start_time, task.end_time) << task.node_name;
    EXPECT_GE(task.pe_id, 0);
  }
  // Tasks of one instance respect DAG order: MAX ends last.
  SimTime max_end = 0;
  SimTime lfm_end = 0;
  for (const TaskRecord& task : stats.tasks) {
    if (task.app_instance == 0 && task.node_name == "MAX") {
      max_end = task.end_time;
    }
    if (task.app_instance == 0 && task.node_name == "LFM") {
      lfm_end = task.end_time;
    }
  }
  EXPECT_GT(max_end, lfm_end);
}

TEST(VirtualEngine, DeterministicAcrossRuns) {
  Fixture fx;
  const Workload workload = make_validation_workload(
      {{"wifi_rx", 2}, {"range_detection", 3}});
  const EmulationStats a = run_virtual(fx.setup("2C+1F"), workload);
  const EmulationStats b = run_virtual(fx.setup("2C+1F"), workload);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.scheduling_events, b.scheduling_events);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].end_time, b.tasks[i].end_time);
    EXPECT_EQ(a.tasks[i].pe_id, b.tasks[i].pe_id);
  }
}

TEST(VirtualEngine, MoreCoresReduceMakespanForParallelWork) {
  Fixture fx;
  const Workload workload = make_validation_workload({{"pulse_doppler", 1}});
  const EmulationStats one = run_virtual(fx.setup("1C+0F"), workload);
  const EmulationStats three = run_virtual(fx.setup("3C+0F"), workload);
  EXPECT_LT(three.makespan, one.makespan);
  // Pulse Doppler has ~128-wide parallel phases; 3 cores should be at
  // least 1.7x faster than 1 core.
  EXPECT_LT(static_cast<double>(three.makespan),
            0.6 * static_cast<double>(one.makespan));
}

TEST(VirtualEngine, SingleCoreUtilizationIsHigh) {
  Fixture fx;
  const Workload workload = make_validation_workload({{"pulse_doppler", 1}});
  const EmulationStats stats = run_virtual(fx.setup("1C+0F"), workload);
  ASSERT_EQ(stats.pes.size(), 1u);
  const double util = stats.pe_utilization_percent(0);
  EXPECT_GT(util, 50.0);
  EXPECT_LE(util, 100.0);
}

TEST(VirtualEngine, AccelUtilizationLowerThanCpuOnSmallFfts) {
  // Fig. 9b: CPU utilization far exceeds FFT-accelerator utilization
  // because small FFTs pay the DMA overhead.
  Fixture fx;
  const Workload workload = make_validation_workload(
      {{"pulse_doppler", 1}, {"range_detection", 1}});
  const EmulationStats stats = run_virtual(fx.setup("2C+1F"), workload);
  double cpu_util = 0.0;
  double accel_util = 0.0;
  for (const PERecord& pe : stats.pes) {
    if (pe.type == "cpu") {
      cpu_util = std::max(cpu_util, stats.pe_utilization_percent(pe.pe_id));
    } else {
      accel_util = stats.pe_utilization_percent(pe.pe_id);
    }
  }
  EXPECT_GT(cpu_util, accel_util);
}

TEST(VirtualEngine, PerformanceModeRespectsArrivals) {
  Fixture fx;
  Rng rng(9);
  const Workload workload = make_performance_workload(
      {{"range_detection", sim_from_ms(1.0), 1.0},
       {"wifi_tx", sim_from_ms(2.0), 1.0}},
      sim_from_ms(10.0), rng);
  const EmulationStats stats = run_virtual(fx.setup("2C+0F"), workload);
  EXPECT_EQ(stats.apps.size(), workload.size());
  // No task may start before its application's injection time.
  std::map<int, SimTime> injection;
  for (const AppRecord& app : stats.apps) {
    injection[app.app_instance] = app.injection_time;
  }
  for (const TaskRecord& task : stats.tasks) {
    EXPECT_GE(task.start_time, injection.at(task.app_instance));
  }
}

TEST(VirtualEngine, SchedulingOverheadAccumulates) {
  Fixture fx;
  const Workload workload = make_validation_workload({{"wifi_rx", 3}});
  const EmulationStats stats = run_virtual(fx.setup("2C+0F"), workload);
  EXPECT_GT(stats.scheduling_events, 0u);
  EXPECT_GT(stats.scheduling_overhead_total, 0);
  EXPECT_GT(stats.avg_scheduling_overhead_us(), 0.0);
  // FRFS overhead should be in the paper's order of magnitude (single-digit
  // microseconds per event, not hundreds).
  EXPECT_LT(stats.avg_scheduling_overhead_us(), 100.0);
}

TEST(VirtualEngine, AllSchedulersCompleteTheSameWorkload) {
  Fixture fx;
  const Workload workload = make_validation_workload(
      {{"range_detection", 4}, {"wifi_tx", 2}});
  for (const char* policy : {"FRFS", "MET", "EFT", "RANDOM"}) {
    const EmulationStats stats =
        run_virtual(fx.setup("2C+1F", policy), workload);
    EXPECT_EQ(stats.apps.size(), 6u) << policy;
    EXPECT_EQ(stats.scheduler_name, policy);
    EXPECT_EQ(stats.tasks.size(), 4u * 6u + 2u * 7u) << policy;
  }
}

TEST(VirtualEngine, MetAvoidsAccelForSmallFfts) {
  // MET knows the 256-point FFT is faster on a core than through DMA, so
  // with a free core it never chooses the accelerator.
  Fixture fx;
  const Workload workload = make_validation_workload(
      {{"range_detection", 3}});
  const EmulationStats stats = run_virtual(fx.setup("1C+1F", "MET"), workload);
  for (const PERecord& pe : stats.pes) {
    if (pe.type == "fft") {
      EXPECT_EQ(pe.tasks_executed, 0u);
    }
  }
}

TEST(VirtualEngine, FrfsDoesUseAccelWhenListedFirstComeFirstServe) {
  // FRFS ignores costs; with enough FFT-capable tasks and busy cores the
  // accelerator receives work.
  Fixture fx;
  const Workload workload = make_validation_workload({{"pulse_doppler", 1}});
  const EmulationStats stats =
      run_virtual(fx.setup("1C+2F", "FRFS"), workload);
  std::size_t accel_tasks = 0;
  for (const PERecord& pe : stats.pes) {
    if (pe.type == "fft") {
      accel_tasks += pe.tasks_executed;
    }
  }
  EXPECT_GT(accel_tasks, 0u);
}

TEST(VirtualEngine, DeadlockedWorkloadReportsConfigError) {
  // wifi_tx contains cpu-only tasks; an accelerator-only "config" cannot
  // exist (no CPU PEs requested -> tasks unschedulable).
  Fixture fx;
  EmulationSetup s = fx.setup("0C+1F");
  const Workload workload = make_validation_workload({{"wifi_tx", 1}});
  EXPECT_THROW(run_virtual(s, workload), DssocError);
}

TEST(VirtualEngine, EmptyWorkloadYieldsEmptyStats) {
  Fixture fx;
  const EmulationStats stats = run_virtual(fx.setup("1C+0F"), Workload{});
  EXPECT_EQ(stats.makespan, 0);
  EXPECT_TRUE(stats.tasks.empty());
  EXPECT_TRUE(stats.apps.empty());
}

TEST(VirtualEngine, UnknownAppAndSchedulerFailFast) {
  Fixture fx;
  EXPECT_THROW(
      run_virtual(fx.setup("1C+0F"),
                  make_validation_workload({{"not_an_app", 1}})),
      DssocError);
  EXPECT_THROW(run_virtual(fx.setup("1C+0F", "BOGUS"),
                           make_validation_workload({{"wifi_tx", 1}})),
               ConfigError);
}

TEST(VirtualEngine, ReservationQueuesReduceMakespan) {
  // §V future work, implemented as an ablation: queue depth 2 lets a PE
  // start its next task without waiting for a workload-manager round trip.
  Fixture fx;
  const Workload workload = make_validation_workload({{"pulse_doppler", 1}});
  EmulationSetup baseline = fx.setup("2C+0F");
  EmulationSetup queued = fx.setup("2C+0F");
  queued.options.pe_queue_depth = 2;
  const EmulationStats base_stats = run_virtual(baseline, workload);
  const EmulationStats queue_stats = run_virtual(queued, workload);
  EXPECT_EQ(base_stats.tasks.size(), queue_stats.tasks.size());
  EXPECT_LE(queue_stats.makespan, base_stats.makespan);
}

TEST(VirtualEngine, SecondAccelDoesNotHelpWhenManagersShareACore) {
  // The Fig. 9 plateau: in 2C+2F both accelerator managers share the
  // leftover A53 and thrash; the second FFT adds (almost) nothing compared
  // with 2C+1F, while going 2C -> 3C clearly helps.
  Fixture fx;
  const Workload workload = make_validation_workload(
      {{"pulse_doppler", 1}, {"range_detection", 1}, {"wifi_tx", 1},
       {"wifi_rx", 1}});
  const SimTime t_2c1f = run_virtual(fx.setup("2C+1F"), workload).makespan;
  const SimTime t_2c2f = run_virtual(fx.setup("2C+2F"), workload).makespan;
  const SimTime t_3c = run_virtual(fx.setup("3C+0F"), workload).makespan;
  // Second FFT: less than 5% improvement (could even be negative).
  EXPECT_GT(static_cast<double>(t_2c2f),
            0.95 * static_cast<double>(t_2c1f));
  // Third core: clear improvement over two cores + one FFT.
  EXPECT_LT(static_cast<double>(t_3c), 0.97 * static_cast<double>(t_2c1f));
}

TEST(VirtualEngine, OdroidConfigurationsRun) {
  platform::Platform odroid = platform::odroid_xu3();
  SharedObjectRegistry registry;
  apps::register_all_kernels(registry);
  ApplicationLibrary library = apps::default_application_library();

  EmulationSetup s;
  s.platform = &odroid;
  s.soc = platform::parse_config_label("2BIG+1LTL");
  s.apps = &library;
  s.registry = &registry;
  s.cost_model = platform::default_cost_model();

  const Workload workload = make_validation_workload(
      {{"wifi_rx", 1}, {"range_detection", 2}});
  const EmulationStats stats = run_virtual(s, workload);
  EXPECT_EQ(stats.apps.size(), 3u);
  // BIG cores execute faster than LITTLE: find per-type busy per task.
  std::set<std::string> types;
  for (const PERecord& pe : stats.pes) {
    types.insert(pe.type);
  }
  EXPECT_TRUE(types.count("big"));
  EXPECT_TRUE(types.count("little"));
}

TEST(VirtualEngine, BigCoresFasterThanLittle) {
  platform::Platform odroid = platform::odroid_xu3();
  SharedObjectRegistry registry;
  apps::register_all_kernels(registry);
  ApplicationLibrary library = apps::default_application_library();
  const Workload workload = make_validation_workload({{"wifi_rx", 2}});

  auto run_config = [&](const std::string& label) {
    EmulationSetup s;
    s.platform = &odroid;
    s.soc = platform::parse_config_label(label);
    s.apps = &library;
    s.registry = &registry;
    s.cost_model = platform::default_cost_model();
    return run_virtual(s, workload).makespan;
  };
  EXPECT_LT(run_config("1BIG+0LTL"), run_config("0BIG+1LTL"));
}

TEST(VirtualEngine, StatsExportsAreWellFormed) {
  Fixture fx;
  const Workload workload = make_validation_workload({{"wifi_tx", 1}});
  const EmulationStats stats = run_virtual(fx.setup("1C+0F"), workload);
  const json::Value doc = stats.to_json();
  EXPECT_EQ(doc.at("scheduler").as_string(), "FRFS");
  EXPECT_EQ(doc.at("task_count").as_int(), 7);
  EXPECT_GT(doc.at("makespan_ms").as_double(), 0.0);
  const std::string csv = stats.tasks_to_csv();
  EXPECT_NE(csv.find("app,instance,node"), std::string::npos);
  // Header + 7 task rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 8);
}

}  // namespace
}  // namespace dssoc::core
