// Tests for the platform substrate: cost model lookup/scaling, DMA and
// accelerator timing models, functional accelerator device, platform
// presets, config-label parsing and the §II-D manager placement rules.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "platform/accelerator.hpp"
#include "platform/cost_model.hpp"
#include "platform/platform.hpp"

namespace dssoc::platform {
namespace {

// --- cost model ---------------------------------------------------------------

TEST(CostModel, LinearEvaluation) {
  const KernelCost cost{1'000.0, 10.0};
  EXPECT_EQ(cost.eval(0.0), 1'000);
  EXPECT_EQ(cost.eval(100.0), 2'000);
}

TEST(CostModel, SpeedFactorScalesCpuCost) {
  CostModel model;
  model.set_cpu_cost("k", {1'000.0, 10.0});
  EXPECT_EQ(model.cpu_cost("k", 100.0, 1.0), 2'000);
  EXPECT_EQ(model.cpu_cost("k", 100.0, 0.5), 1'000);   // twice as fast
  EXPECT_EQ(model.cpu_cost("k", 100.0, 2.0), 4'000);   // twice as slow
}

TEST(CostModel, UnknownKernelUsesDefault) {
  CostModel model;
  model.set_default_cpu_cost({7'000.0, 0.0});
  EXPECT_EQ(model.cpu_cost("mystery", 123.0, 1.0), 7'000);
  EXPECT_FALSE(model.has_cpu_cost("mystery"));
}

TEST(CostModel, AccelCostOnlyForRegisteredPairs) {
  CostModel model;
  model.set_accel_cost("fft", "fft", {2'000.0, 1.0});
  EXPECT_TRUE(model.accel_compute_cost("fft", "fft", 100.0).has_value());
  EXPECT_EQ(*model.accel_compute_cost("fft", "fft", 100.0), 2'100);
  EXPECT_FALSE(model.accel_compute_cost("fft", "viterbi", 1.0).has_value());
  EXPECT_FALSE(model.accel_compute_cost("gpu", "fft", 1.0).has_value());
}

TEST(CostModel, DefaultModelCoversDomainKernels) {
  const CostModel model = default_cost_model();
  for (const char* kernel :
       {"lfm", "fft", "ifft", "dft", "vector_multiply", "max_index",
        "viterbi_decode", "scrambler", "conv_encoder", "interleaver",
        "qpsk_mod", "qpsk_demod", "crc", "matched_filter", "realign",
        "fft_shift"}) {
    EXPECT_TRUE(model.has_cpu_cost(kernel)) << kernel;
    EXPECT_GT(model.cpu_cost(kernel, 100.0, 1.0), 0) << kernel;
  }
}

TEST(CostModel, UnitHelpers) {
  EXPECT_DOUBLE_EQ(fft_units(256), 256.0 * 8.0);
  EXPECT_DOUBLE_EQ(fft_units(1), 1.0);
  EXPECT_DOUBLE_EQ(dft_units(16), 256.0);
  EXPECT_DOUBLE_EQ(linear_units(42), 42.0);
}

TEST(CostModel, ViterbiDominatesWifiRxBudget) {
  // The calibration must keep the paper's ordering: RX >> TX.
  const CostModel model = default_cost_model();
  const SimTime viterbi = model.cpu_cost("viterbi_decode", 64.0, 1.0);
  const SimTime scrambler = model.cpu_cost("scrambler", 64.0, 1.0);
  EXPECT_GT(viterbi, 100 * scrambler);
}

// --- DMA / accelerator timing ---------------------------------------------------

TEST(DmaModel, SetupDominatesSmallTransfers) {
  const DmaModel dma{15'000, 1'000.0};
  const SimTime small = dma.transfer_time(128 * sizeof(dsp::cfloat));  // 1 KiB
  EXPECT_NEAR(static_cast<double>(small), 15'000.0 + 1'024.0, 1.0);
  // Quadrupling the payload far less than quadruples the latency.
  const SimTime big = dma.transfer_time(4 * 128 * sizeof(dsp::cfloat));
  EXPECT_LT(big, 2 * small);
}

TEST(FftAccelModel, CpuBeatsAccelAt128ButNotAt4096) {
  // The Fig. 9 discussion: a 128-point FFT turns around faster on an A53
  // core than on the fabric because of DMA overhead; large FFTs flip this.
  const Platform zcu = zcu102();
  const FftAcceleratorModel& accel = zcu.accelerators.at("fft");
  const CostModel model = default_cost_model();
  const SimTime cpu_128 = model.cpu_cost("fft", fft_units(128), 1.0);
  const SimTime accel_128 = accel.round_trip_time(128);
  EXPECT_LT(cpu_128, accel_128);

  const SimTime cpu_4096 = model.cpu_cost("fft", fft_units(4096), 1.0);
  const SimTime accel_4096 = accel.round_trip_time(4096);
  EXPECT_GT(cpu_4096, accel_4096);
}

TEST(FftAccelModel, RoundTripDecomposition) {
  FftAcceleratorModel model;
  model.dma = DmaModel{10'000, 1'000.0};
  model.start_ns = 2'000;
  model.ns_per_sample = 4.0;
  const std::size_t n = 256;
  const SimTime expected = 2 * model.dma.transfer_time(n * sizeof(dsp::cfloat)) +
                           model.compute_time(n);
  EXPECT_EQ(model.round_trip_time(n), expected);
}

// --- functional accelerator device ----------------------------------------------

TEST(FftAccelDevice, ComputesForwardFft) {
  FftAcceleratorDevice device(FftAcceleratorModel{});
  Rng rng(3);
  std::vector<dsp::cfloat> data(64);
  for (auto& x : data) {
    x = dsp::cfloat(static_cast<float>(rng.uniform(-1, 1)),
                    static_cast<float>(rng.uniform(-1, 1)));
  }
  auto expected = data;
  dsp::fft(expected);

  device.dma_in(data);
  EXPECT_FALSE(device.done());
  device.start(data.size(), false);
  EXPECT_TRUE(device.done());
  std::vector<dsp::cfloat> out(64);
  device.dma_out(out);
  EXPECT_LT(dsp::rms_error(out, expected), 1e-5);
}

TEST(FftAccelDevice, InverseUndoesForward) {
  FftAcceleratorDevice device(FftAcceleratorModel{});
  std::vector<dsp::cfloat> data(128, dsp::cfloat(1.0F, -0.5F));
  const auto original = data;
  device.dma_in(data);
  device.start(data.size(), false);
  device.dma_out(data);
  device.dma_in(data);
  device.start(data.size(), true);
  device.dma_out(data);
  EXPECT_LT(dsp::rms_error(data, original), 1e-4);
}

TEST(FftAccelDevice, EnforcesBramCapacityAndSizes) {
  FftAcceleratorModel model;
  model.max_samples = 64;
  FftAcceleratorDevice device(model);
  EXPECT_THROW(device.dma_in(std::vector<dsp::cfloat>(65)), ConfigError);
  std::vector<dsp::cfloat> data(48);
  device.dma_in(data);
  EXPECT_THROW(device.start(48, false), DssocError);  // not a power of two
  EXPECT_THROW(device.start(64, false), DssocError);  // beyond loaded data
  device.start(32, false);
  std::vector<dsp::cfloat> out(64);
  EXPECT_THROW(device.dma_out(out), DssocError);  // larger than loaded
}

// --- platform presets -------------------------------------------------------------

TEST(Platform, Zcu102Shape) {
  const Platform p = zcu102();
  EXPECT_EQ(p.cores.size(), 4u);
  EXPECT_EQ(p.overlay_core, 0);
  EXPECT_EQ(p.resource_pool_cores().size(), 3u);
  EXPECT_TRUE(p.has_pe_type("cpu"));
  EXPECT_TRUE(p.has_pe_type("fft"));
  EXPECT_EQ(p.pe_type("fft").kind, PEKind::kAccelerator);
  EXPECT_EQ(p.accelerators.count("fft"), 1u);
  EXPECT_THROW(p.pe_type("gpu"), ConfigError);
}

TEST(Platform, OdroidShape) {
  const Platform p = odroid_xu3();
  EXPECT_EQ(p.cores.size(), 8u);
  // Overlay is a LITTLE core; pool = 4 BIG + 3 LITTLE.
  EXPECT_EQ(p.cores[static_cast<std::size_t>(p.overlay_core)].core_class,
            "a7");
  EXPECT_EQ(p.resource_pool_cores().size(), 7u);
  EXPECT_LT(p.pe_type("big").speed_factor, 1.0);
  EXPECT_GT(p.pe_type("little").speed_factor, 1.0);
}

// --- config parsing ------------------------------------------------------------------

TEST(ConfigParse, Zcu102Labels) {
  const SocConfig c = parse_config_label("2C+1F");
  ASSERT_EQ(c.requests.size(), 2u);
  EXPECT_EQ(c.requests[0].type_name, "cpu");
  EXPECT_EQ(c.requests[0].count, 2);
  EXPECT_EQ(c.requests[1].type_name, "fft");
  EXPECT_EQ(c.requests[1].count, 1);
  EXPECT_EQ(c.total_pes(), 3);
}

TEST(ConfigParse, OdroidLabelsAndCase) {
  const SocConfig c = parse_config_label("3big+2ltl");
  EXPECT_EQ(c.requests[0].type_name, "big");
  EXPECT_EQ(c.requests[1].type_name, "little");
  EXPECT_EQ(c.total_pes(), 5);
}

TEST(ConfigParse, ZeroCountSegmentsAllowed) {
  const SocConfig c = parse_config_label("0BIG+3LTL");
  EXPECT_EQ(c.total_pes(), 3);
}

TEST(ConfigParse, RejectsMalformedLabels) {
  EXPECT_THROW(parse_config_label("C2"), DssocError);
  EXPECT_THROW(parse_config_label("2X"), ConfigError);
  EXPECT_THROW(parse_config_label("2"), DssocError);
  EXPECT_THROW(parse_config_label("+"), DssocError);
  EXPECT_THROW(parse_config_label(""), DssocError);
}

// --- PE instantiation / placement (§II-D) ---------------------------------------------

TEST(Placement, CpuPesGetDedicatedCores) {
  const Platform p = zcu102();
  const auto pes = instantiate_config(p, parse_config_label("3C+0F"));
  ASSERT_EQ(pes.size(), 3u);
  std::set<int> cores;
  for (const PE& pe : pes) {
    EXPECT_EQ(pe.type.kind, PEKind::kCpu);
    EXPECT_NE(pe.host_core, p.overlay_core);
    cores.insert(pe.host_core);
  }
  EXPECT_EQ(cores.size(), 3u);  // all distinct
}

TEST(Placement, AccelManagersShareLeftoverCoreIn2C2F) {
  // The paper's 2C+2F observation: both FFT manager threads land on the one
  // remaining core and preempt each other.
  const Platform p = zcu102();
  const auto pes = instantiate_config(p, parse_config_label("2C+2F"));
  ASSERT_EQ(pes.size(), 4u);
  std::vector<int> accel_cores;
  std::set<int> cpu_cores;
  for (const PE& pe : pes) {
    if (pe.type.kind == PEKind::kAccelerator) {
      accel_cores.push_back(pe.host_core);
    } else {
      cpu_cores.insert(pe.host_core);
    }
  }
  ASSERT_EQ(accel_cores.size(), 2u);
  EXPECT_EQ(accel_cores[0], accel_cores[1]);
  EXPECT_EQ(cpu_cores.count(accel_cores[0]), 0u);
}

TEST(Placement, AccelManagersGetOwnCoresIn1C2F) {
  const Platform p = zcu102();
  const auto pes = instantiate_config(p, parse_config_label("1C+2F"));
  std::set<int> used;
  for (const PE& pe : pes) {
    used.insert(pe.host_core);
  }
  EXPECT_EQ(used.size(), 3u);  // nobody shares
}

TEST(Placement, RejectsOversizedCpuRequests) {
  const Platform p = zcu102();
  EXPECT_THROW(instantiate_config(p, parse_config_label("4C+0F")),
               ConfigError);
  EXPECT_THROW(instantiate_config(p, SocConfig{"empty", {}}), DssocError);
}

TEST(Placement, OdroidMixedConfigMapsClasses) {
  const Platform p = odroid_xu3();
  const auto pes = instantiate_config(p, parse_config_label("4BIG+3LTL"));
  ASSERT_EQ(pes.size(), 7u);
  for (const PE& pe : pes) {
    const HostCore& core = p.cores[static_cast<std::size_t>(pe.host_core)];
    if (pe.type.name == "big") {
      EXPECT_EQ(core.core_class, "a15");
      EXPECT_DOUBLE_EQ(pe.type.speed_factor, 0.55);
    } else {
      EXPECT_EQ(core.core_class, "a7");
      EXPECT_DOUBLE_EQ(pe.type.speed_factor, 2.4);
    }
    EXPECT_NE(pe.host_core, p.overlay_core);
  }
}

TEST(Placement, OdroidRejectsFourthLittle) {
  const Platform p = odroid_xu3();
  // Only 3 LITTLE cores remain after the overlay claims one.
  EXPECT_THROW(instantiate_config(p, parse_config_label("0BIG+4LTL")),
               ConfigError);
}

TEST(Placement, LabelsAreStableAndOrdered) {
  const Platform p = zcu102();
  const auto pes = instantiate_config(p, parse_config_label("2C+2F"));
  EXPECT_EQ(pes[0].label, "Core1");
  EXPECT_EQ(pes[1].label, "Core2");
  EXPECT_EQ(pes[2].label, "FFT1");
  EXPECT_EQ(pes[3].label, "FFT2");
  for (std::size_t i = 0; i < pes.size(); ++i) {
    EXPECT_EQ(pes[i].id, static_cast<int>(i));
  }
}

class AllZcuConfigs : public ::testing::TestWithParam<const char*> {};

TEST_P(AllZcuConfigs, InstantiateSucceedsForFig9Set) {
  const Platform p = zcu102();
  const auto pes = instantiate_config(p, parse_config_label(GetParam()));
  EXPECT_FALSE(pes.empty());
  for (const PE& pe : pes) {
    EXPECT_GE(pe.host_core, 1);
    EXPECT_LE(pe.host_core, 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Fig9, AllZcuConfigs,
                         ::testing::Values("1C+0F", "1C+1F", "1C+2F", "2C+0F",
                                           "2C+1F", "2C+2F", "3C+0F",
                                           "3C+2F"));

}  // namespace
}  // namespace dssoc::platform
