// Tests for the JSON substrate: parsing, error reporting, serialization
// round trips, ordered objects and the numeric type model.
#include <gtest/gtest.h>

#include "json/json.hpp"

namespace dssoc::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-1.25e-2").as_double(), -0.0125);
  EXPECT_EQ(parse("\"hello\"").as_string(), "hello");
}

TEST(JsonParse, IntegersStayExact) {
  const Value v = parse("9007199254740993");  // 2^53 + 1, not double-exact
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 9007199254740993LL);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xC3\xA9");
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  EXPECT_EQ(v.at("a").at(std::size_t{0}).as_int(), 1);
  EXPECT_TRUE(v.at("a").at(std::size_t{2}).at("b").as_bool());
  EXPECT_TRUE(v.at("c").at("d").is_null());
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("[]").as_array().empty());
  EXPECT_TRUE(parse("{}").as_object().empty());
  EXPECT_TRUE(parse(" [ ] ").as_array().empty());
}

TEST(JsonParse, WhitespaceTolerant) {
  const Value v = parse("\n\t { \"k\" :\r [ 1 ,\n 2 ] } ");
  EXPECT_EQ(v.at("k").as_array().size(), 2u);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\":}"), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
  EXPECT_THROW(parse("01"), ParseError);  // leading zero then trailing junk
  EXPECT_THROW(parse("1 2"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("{\"a\":1 \"b\":2}"), ParseError);
  EXPECT_THROW(parse("[1 2]"), ParseError);
  EXPECT_THROW(parse("\"bad\\q\""), ParseError);
  EXPECT_THROW(parse("{'a':1}"), ParseError);
}

TEST(JsonParse, RejectsDuplicateKeys) {
  EXPECT_THROW(parse(R"({"a":1,"a":2})"), ParseError);
}

TEST(JsonParse, RejectsLoneSurrogate) {
  EXPECT_THROW(parse(R"("\ud83d")"), ParseError);
  EXPECT_THROW(parse(R"("\ude00")"), ParseError);
}

TEST(JsonParse, ErrorsCarryLineAndColumn) {
  try {
    parse("{\n  \"a\": bad\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), 2u);
    EXPECT_GT(error.column(), 1u);
  }
}

TEST(JsonObject, PreservesInsertionOrder) {
  const Value v = parse(R"({"z":1,"a":2,"m":3})");
  std::vector<std::string> keys;
  for (const auto& [key, value] : v.as_object()) {
    keys.push_back(key);
  }
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "z");
  EXPECT_EQ(keys[1], "a");
  EXPECT_EQ(keys[2], "m");
}

TEST(JsonObject, SetOverwritesAndFinds) {
  Object obj;
  obj.set("k", 1);
  obj.set("k", 2);
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.at("k").as_int(), 2);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW(obj.at("missing"), DssocError);
}

TEST(JsonObject, CopyKeepsIndexConsistent) {
  Object obj;
  obj.set("a", 1);
  obj.set("b", 2);
  Object copy = obj;
  copy.set("c", 3);
  EXPECT_EQ(copy.at("a").as_int(), 1);
  EXPECT_EQ(copy.at("c").as_int(), 3);
  EXPECT_FALSE(obj.contains("c"));
}

TEST(JsonValue, TypeMismatchThrows) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), DssocError);
  EXPECT_THROW(v.as_string(), DssocError);
  EXPECT_THROW(v.at("k"), DssocError);
  EXPECT_THROW(parse("\"s\"").as_int(), DssocError);
  EXPECT_THROW(v.at(std::size_t{5}), DssocError);
}

TEST(JsonValue, NumericCrossAccess) {
  EXPECT_DOUBLE_EQ(parse("3").as_double(), 3.0);
  EXPECT_EQ(parse("4.0").as_int(), 4);      // integral double accepted
  EXPECT_THROW(parse("4.5").as_int(), DssocError);
}

TEST(JsonValue, GetOrDefaults) {
  const Value v = parse(R"({"present": 5, "flag": true, "name": "x"})");
  EXPECT_EQ(v.get_or("present", std::int64_t{0}), 5);
  EXPECT_EQ(v.get_or("absent", std::int64_t{7}), 7);
  EXPECT_TRUE(v.get_or("flag", false));
  EXPECT_EQ(v.get_or("name", std::string("y")), "x");
  EXPECT_EQ(v.get_or("missing", std::string("y")), "y");
  EXPECT_DOUBLE_EQ(v.get_or("absent", 1.5), 1.5);
}

TEST(JsonDump, CompactRoundTrip) {
  const std::string doc =
      R"({"a":[1,2.5,"s",null,true],"b":{"c":[{"d":-3}]}})";
  const Value v = parse(doc);
  EXPECT_EQ(parse(v.dump()), v);
  EXPECT_EQ(v.dump(), doc);
}

TEST(JsonDump, PrettyRoundTrip) {
  const Value v = parse(R"({"k":[1,{"n":"v"}],"e":[],"o":{}})");
  const std::string pretty = v.dump_pretty();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty), v);
}

TEST(JsonDump, EscapesControlCharacters) {
  const Value v(std::string("a\x01z"));
  EXPECT_EQ(v.dump(), "\"a\\u0001z\"");
  EXPECT_EQ(parse(v.dump()), v);
}

TEST(JsonEquality, NumericEqualityAcrossTypes) {
  EXPECT_EQ(parse("2"), parse("2.0"));
  EXPECT_FALSE(parse("2") == parse("3"));
  EXPECT_FALSE(parse("[1]") == parse("[1,2]"));
  EXPECT_FALSE(parse(R"({"a":1})") == parse(R"({"b":1})"));
  EXPECT_EQ(parse(R"({"a":1,"b":2})"), parse(R"({"b":2,"a":1})"));
}

class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseDumpParseIsIdentity) {
  const Value v = parse(GetParam());
  EXPECT_EQ(parse(v.dump()), v);
  EXPECT_EQ(parse(v.dump_pretty(4)), v);
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTrip,
    ::testing::Values("0", "-0.5", "[[[[1]]]]", R"("ÿ")",
                      R"({"deep":{"deeper":{"deepest":[null,false]}}})",
                      R"([1e-300,1e300,123456789012345678])",
                      R"({"empty_arr":[],"empty_obj":{},"s":""})"));

}  // namespace
}  // namespace dssoc::json
