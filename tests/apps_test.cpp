// Tests for the built-in SDR applications: task counts that match the
// paper's Table I, DAG shapes, JSON round trips of the full applications,
// kernel-level functional behaviour, and the WiFi TX-chain helpers.
#include <gtest/gtest.h>

#include <set>

#include "apps/registry.hpp"
#include "core/app_json.hpp"
#include "dsp/channel.hpp"
#include "dsp/fft.hpp"

namespace dssoc::apps {
namespace {

// --- Table I task counts --------------------------------------------------------

TEST(AppShapes, TaskCountsMatchTableOne) {
  EXPECT_EQ(make_range_detection().nodes.size(), 6u);
  EXPECT_EQ(make_pulse_doppler().nodes.size(), 770u);
  EXPECT_EQ(make_wifi_tx().nodes.size(), 7u);
  EXPECT_EQ(make_wifi_rx().nodes.size(), 9u);
}

TEST(AppShapes, PulseDopplerGeometryFormula) {
  PulseDopplerParams params;
  EXPECT_EQ(params.task_count(), 770u);
  params.pulses = 16;
  params.range_gates = 10;
  EXPECT_EQ(params.task_count(), 4u + 48u + 20u);
  const auto model = make_pulse_doppler(params);
  EXPECT_EQ(model.nodes.size(), params.task_count());
}

TEST(AppShapes, RangeDetectionDagStructure) {
  const auto model = make_range_detection();
  EXPECT_EQ(model.head_nodes().size(), 1u);  // LFM
  const auto& mul = model.node("MUL");
  EXPECT_EQ(mul.predecessors.size(), 2u);  // FFT_0 and FFT_1
  const auto& max = model.node("MAX");
  EXPECT_TRUE(max.successors.empty());
  // FFT nodes expose both CPU and accelerator platforms.
  const auto& fft0 = model.node("FFT_0");
  std::set<std::string> types;
  for (const auto& option : fft0.platforms) {
    types.insert(option.pe_type);
  }
  EXPECT_TRUE(types.count("cpu"));
  EXPECT_TRUE(types.count("fft"));
  // The accelerator variant references the dedicated shared object.
  bool found_accel_so = false;
  for (const auto& option : fft0.platforms) {
    if (option.pe_type == "fft") {
      EXPECT_EQ(option.shared_object, "fft_accel.so");
      found_accel_so = true;
    }
  }
  EXPECT_TRUE(found_accel_so);
}

TEST(AppShapes, WifiPipelinesAreChains) {
  for (const auto& model : {make_wifi_tx(), make_wifi_rx()}) {
    EXPECT_EQ(model.head_nodes().size(), 1u);
    std::size_t sinks = 0;
    for (const auto& node : model.nodes) {
      EXPECT_LE(node.successors.size(), 1u);
      if (node.successors.empty()) {
        ++sinks;
      }
    }
    EXPECT_EQ(sinks, 1u);
  }
}

TEST(AppShapes, PulseDopplerParallelWidth) {
  const auto model = make_pulse_doppler();
  // 128 row FFTs become ready together once REF_FFT completes.
  const auto& ref = model.node("REF_FFT");
  EXPECT_GE(ref.successors.size(), 128u);
  // REALIGN joins all 128 row IFFTs.
  EXPECT_EQ(model.node("REALIGN").predecessors.size(), 128u);
  // MAX joins all 191 shifts.
  EXPECT_EQ(model.node("MAX").predecessors.size(), 191u);
}

TEST(AppShapes, EveryNodeHasCostAnnotation) {
  for (const auto& model :
       {make_wifi_tx(), make_wifi_rx(), make_range_detection(),
        make_pulse_doppler()}) {
    for (const auto& node : model.nodes) {
      EXPECT_FALSE(node.cost.kernel.empty())
          << model.name << "/" << node.name;
    }
  }
}

// --- JSON round trips of the real applications ------------------------------------

class AppJsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(AppJsonRoundTrip, FullApplicationSurvivesJson) {
  const core::ApplicationLibrary library = default_application_library();
  const core::AppModel& model = library.get(GetParam());
  const json::Value doc = core::app_to_json(model);
  const core::AppModel back = core::app_from_json(doc);
  EXPECT_EQ(back.name, model.name);
  EXPECT_EQ(back.nodes.size(), model.nodes.size());
  EXPECT_EQ(back.variables.size(), model.variables.size());
  EXPECT_EQ(core::app_to_json(back), doc);
}

INSTANTIATE_TEST_SUITE_P(Apps, AppJsonRoundTrip,
                         ::testing::Values("wifi_tx", "wifi_rx",
                                           "range_detection",
                                           "pulse_doppler"));

// --- registry completeness ------------------------------------------------------------

TEST(KernelRegistry, EveryRunfuncResolves) {
  core::SharedObjectRegistry registry;
  register_all_kernels(registry);
  const core::ApplicationLibrary library = default_application_library();
  for (const char* app :
       {"wifi_tx", "wifi_rx", "range_detection", "pulse_doppler"}) {
    const core::AppModel& model = library.get(app);
    for (const auto& node : model.nodes) {
      for (const auto& option : node.platforms) {
        const std::string& object = option.shared_object.empty()
                                        ? model.shared_object
                                        : option.shared_object;
        EXPECT_NO_THROW(registry.resolve(object, option.runfunc))
            << app << "/" << node.name << "/" << option.runfunc;
      }
    }
  }
}

// --- WiFi chain helpers -----------------------------------------------------------------

TEST(WifiChain, FrameGeometry) {
  const WifiParams params = default_wifi_params();
  EXPECT_EQ(params.coded_bits(), 140u);
  EXPECT_EQ(params.qpsk_symbols(), 70u);
  EXPECT_EQ(params.ofdm_symbols(), 2u);
  EXPECT_EQ(params.payload_samples(), 128u);
  EXPECT_EQ(params.interleaver_rows * params.interleaver_cols,
            params.coded_bits());
}

TEST(WifiChain, ReferencePayloadIsDeterministicAndBalanced) {
  const auto a = reference_payload_bits(64);
  const auto b = reference_payload_bits(64);
  EXPECT_EQ(a, b);
  int ones = 0;
  for (const auto bit : a) {
    EXPECT_LE(bit, 1);
    ones += bit;
  }
  EXPECT_GT(ones, 16);
  EXPECT_LT(ones, 48);
}

TEST(WifiChain, ModulateProducesTimeSamples) {
  const WifiParams params = default_wifi_params();
  const auto samples = wifi_modulate(params, reference_payload_bits(64));
  EXPECT_EQ(samples.size(), params.payload_samples());
  EXPECT_GT(dsp::energy(samples), 0.0);
}

TEST(WifiChain, ModulateRejectsWrongPayloadSize) {
  EXPECT_THROW(wifi_modulate(default_wifi_params(),
                             reference_payload_bits(32)),
               DssocError);
}

}  // namespace
}  // namespace dssoc::apps
