// Policy-bridge tests: the observation/action API end to end.
//
//  * Trace fidelity — recording EFT through TraceRecordScheduler leaves the
//    recorded run digest-identical to a plain live run, and replaying the
//    trace through PolicyScheduler reproduces the live digest exactly
//    (identical timeline AND identical modeled overhead charge). Replay
//    against a different workload throws a divergence error.
//  * TablePolicy — JSON loading, scheduling, and save_state/load_state
//    through a mid-run engine snapshot.
//  * SocketPolicy — a dead agent falls back to the baseline policy with the
//    connect/read timeout charged as scheduling overhead; a live in-process
//    agent drives the emulation over the wire protocol.
//  * User-registered policies — a custom Policy registered under its own
//    name runs through both engines, snapshot/restores, and lands in
//    BENCH_sweep.json under its registered name.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <thread>

#include "apps/registry.hpp"
#include "common/strings.hpp"
#include "core/emulation.hpp"
#include "exp/bench_json.hpp"
#include "exp/sweep_env.hpp"
#include "json/json.hpp"
#include "platform/platform.hpp"
#include "policy/policy_scheduler.hpp"
#include "policy/register.hpp"
#include "policy/socket_policy.hpp"
#include "policy/table_policy.hpp"
#include "policy/trace_policy.hpp"

namespace dssoc::policy {
namespace {

struct Fixture {
  Fixture() {
    policy::register_policies();
    platform = platform::zcu102();
    apps::register_all_kernels(registry);
    library = apps::default_application_library();
  }

  core::EmulationSetup setup(const std::string& scheduler,
                             const std::string& config = "3C+2F") const {
    core::EmulationSetup s;
    s.platform = &platform;
    s.soc = platform::parse_config_label(config);
    s.apps = &library;
    s.registry = &registry;
    s.cost_model = platform::default_cost_model();
    s.options.scheduler = scheduler;
    s.options.run_kernels = false;
    s.options.seed = 7;
    return s;
  }

  platform::Platform platform;
  core::SharedObjectRegistry registry;
  core::ApplicationLibrary library;
};

core::Workload small_workload(std::uint64_t seed = 42) {
  Rng rng(seed);
  return core::make_performance_workload(
      {{"pulse_doppler", sim_from_ms(0.5), 0.9},
       {"range_detection", sim_from_ms(0.05), 0.9},
       {"wifi_tx", sim_from_ms(0.25), 0.9},
       {"wifi_rx", sim_from_ms(0.25), 0.9}},
      sim_from_ms(1.0), rng);
}

/// Unique-per-test scratch path (ctest runs suites concurrently in one
/// working directory).
std::string scratch_path(const std::string& stem) {
  return cat("policy_test_", stem, "_", ::getpid(), ".tmp");
}

struct ScopedFile {
  explicit ScopedFile(std::string p) : path(std::move(p)) {}
  ~ScopedFile() { std::remove(path.c_str()); }
  std::string path;
};

// --- trace record / replay ---------------------------------------------------

TEST(TracePolicy, RecordingIsTransparentAndReplayIsBitIdentical) {
  Fixture fx;
  const core::Workload workload = small_workload();
  ScopedFile trace(scratch_path("eft_trace"));

  const core::EmulationStats live =
      core::run_virtual(fx.setup("EFT"), workload);
  const core::EmulationStats recorded = core::run_virtual(
      fx.setup(cat("policy:trace-record:EFT:", trace.path)), workload);
  // Recording must not perturb the run: same name, timeline and charge.
  EXPECT_EQ(recorded.scheduler_name, "EFT");
  EXPECT_EQ(recorded.digest(), live.digest());

  const core::EmulationStats replayed = core::run_virtual(
      fx.setup(cat("policy:trace-replay:", trace.path)), workload);
  // The replay reports the recorded scheduler's name and reproduces the
  // timeline and the modeled overhead charge exactly.
  EXPECT_EQ(replayed.scheduler_name, "EFT");
  EXPECT_EQ(replayed.makespan, live.makespan);
  EXPECT_EQ(replayed.scheduling_overhead_total,
            live.scheduling_overhead_total);
  EXPECT_EQ(replayed.digest(), live.digest());
}

TEST(TracePolicy, ReplayAgainstDifferentWorkloadThrowsDivergence) {
  Fixture fx;
  ScopedFile trace(scratch_path("diverge_trace"));
  core::run_virtual(fx.setup(cat("policy:trace-record:FRFS:", trace.path)),
                    small_workload(42));
  EXPECT_THROW(
      core::run_virtual(fx.setup(cat("policy:trace-replay:", trace.path)),
                        small_workload(43)),
      StateError);
}

TEST(TracePolicy, MidReplaySnapshotRestoresToTheExactFrame) {
  Fixture fx;
  const core::Workload workload = small_workload();
  ScopedFile trace(scratch_path("snap_trace"));
  core::run_virtual(fx.setup(cat("policy:trace-record:EFT:", trace.path)),
                    workload);

  const core::EmulationSetup replay_setup =
      fx.setup(cat("policy:trace-replay:", trace.path));
  core::Emulation first(replay_setup, workload);
  const core::EngineSnapshot snap = first.snapshot(sim_from_ms(0.5));
  const std::uint64_t finished = first.finish().digest();

  core::Emulation second(replay_setup, workload);
  second.restore(snap);
  EXPECT_EQ(second.finish().digest(), finished);
}

TEST(TracePolicy, LoadRejectsCorruptFiles) {
  ScopedFile bogus(scratch_path("bogus_trace"));
  std::FILE* f = std::fopen(bogus.path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  EXPECT_THROW(Trace::load(bogus.path), StateError);
  EXPECT_THROW(Trace::load(scratch_path("missing_trace")), StateError);
}

// --- table policy ------------------------------------------------------------

/// Fits a one-type-per-node table from an executed run, like the
/// bench_policy driver does.
json::Value fit_table(const core::EmulationStats& stats) {
  std::map<std::string, std::map<std::string, std::size_t>> votes;
  for (const core::TaskRecord& task : stats.tasks) {
    ++votes[cat(task.app_name, ":", task.node_name)][task.pe_type];
  }
  json::Object rules;
  for (const auto& [key, counts] : votes) {
    const std::string* best = nullptr;
    std::size_t best_count = 0;
    for (const auto& [type, count] : counts) {
      if (count > best_count) {
        best = &type;
        best_count = count;
      }
    }
    rules.set(key, *best);
  }
  json::Object table;
  table.set("version", 1);
  table.set("rules", std::move(rules));
  return json::Value(std::move(table));
}

TEST(TablePolicy, SchedulesFromAFittedTableAndSnapshotRoundTrips) {
  Fixture fx;
  const core::Workload workload = small_workload();
  const core::EmulationStats teacher =
      core::run_virtual(fx.setup("EFT"), workload);

  ScopedFile table_file(scratch_path("table"));
  exp::write_json_file(table_file.path, fit_table(teacher));
  const core::EmulationSetup setup =
      fx.setup(cat("policy:table:", table_file.path));

  const core::EmulationStats straight = core::run_virtual(setup, workload);
  EXPECT_EQ(straight.tasks.size(), teacher.tasks.size());
  EXPECT_GT(straight.scheduling_events, 0u);

  // Mid-run snapshot/restore continues bit-identically (the policy's
  // save_state/load_state carries the table and counters).
  core::Emulation first(setup, workload);
  const core::EngineSnapshot snap = first.snapshot(sim_from_ms(0.5));
  EXPECT_EQ(first.finish().digest(), straight.digest());

  core::Emulation second(setup, workload);
  second.restore(snap);
  EXPECT_EQ(second.finish().digest(), straight.digest());
}

TEST(TablePolicy, RejectsMalformedTables) {
  EXPECT_THROW(TablePolicy(json::parse("[]")), ConfigError);
  EXPECT_THROW(TablePolicy(json::parse(R"({"version": 9, "rules": {}})")),
               ConfigError);
  EXPECT_THROW(
      TablePolicy(json::parse(
          R"({"rules": {}, "backlog_buckets": [4, 2]})")),
      ConfigError);
  EXPECT_THROW(
      TablePolicy(json::parse(
          R"({"backlog_buckets": [0, 4], "rules": {"n": ["cpu"]}})")),
      ConfigError);
  // A valid table with bucketed rules constructs fine.
  TablePolicy ok(json::parse(
      R"({"backlog_buckets": [0, 4], "rules": {"n": ["fft", "cpu"]}})"));
  EXPECT_EQ(ok.rule_hits(), 0u);
}

// --- socket policy -----------------------------------------------------------

TEST(SocketPolicy, DeadAgentFallsBackWithTimeoutCharged) {
  Fixture fx;
  ScopedFile socket_file(scratch_path("dead_sock"));
  std::remove(socket_file.path.c_str());

  // A listener that never accepts: connect succeeds (backlog), the
  // observation round trip then times out once, and the policy is dead.
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_file.path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);

  const core::Workload workload = small_workload();
  const core::EmulationStats frfs =
      core::run_virtual(fx.setup("FRFS"), workload);
  const core::EmulationStats stats = core::run_virtual(
      fx.setup(cat("policy:socket:", socket_file.path,
                   ",fallback=FRFS,timeout_ms=40")),
      workload);
  ::close(listener);

  // The sweep completed on the fallback: same tasks executed, and the one
  // 40 ms timeout was charged into emulated scheduling overhead (kModeled
  // scales the measured wait by overlay_calibration >= 1).
  EXPECT_EQ(stats.tasks.size(), frfs.tasks.size());
  EXPECT_GE(stats.scheduling_overhead_total,
            frfs.scheduling_overhead_total + sim_from_ms(40.0));
}

/// Minimal in-process agent: EFT-free first-fit — assign every task to the
/// first supporting handler with a free slot, tracked across the decision.
void serve_first_fit(int listener) {
  const int conn = ::accept(listener, nullptr, nullptr);
  if (conn < 0) {
    return;
  }
  std::vector<std::uint8_t> payload;
  while (read_socket_frame(conn, payload)) {
    const WireObservation observation = decode_observation(payload);
    std::vector<ActionItem> items;
    std::vector<std::uint32_t> slots;
    for (const WireHandler& handler : observation.handlers) {
      slots.push_back(handler.free_slots);
    }
    const std::size_t h_count = observation.handlers.size();
    for (std::size_t t = 0; t < observation.tasks.size(); ++t) {
      for (std::size_t h = 0; h < h_count; ++h) {
        if (slots[h] > 0 &&
            observation.estimates[t * h_count + h] >= 0) {
          items.push_back({static_cast<std::uint32_t>(t),
                           static_cast<std::uint32_t>(h), -1});
          --slots[h];
          break;
        }
      }
    }
    if (!write_socket_frame(conn, encode_action(items))) {
      break;
    }
  }
  ::close(conn);
}

TEST(SocketPolicy, LiveAgentDrivesTheEmulation) {
  Fixture fx;
  ScopedFile socket_file(scratch_path("live_sock"));
  std::remove(socket_file.path.c_str());

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_file.path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  std::thread agent(serve_first_fit, listener);

  const core::Workload workload = small_workload();
  const core::EmulationStats frfs =
      core::run_virtual(fx.setup("FRFS"), workload);
  const core::EmulationStats stats = core::run_virtual(
      fx.setup(cat("policy:socket:", socket_file.path,
                   ",fallback=FRFS,timeout_ms=2000")),
      workload);
  ::close(listener);
  agent.join();

  // The agent scheduled the whole workload over the wire.
  EXPECT_EQ(stats.tasks.size(), frfs.tasks.size());
  EXPECT_GT(stats.scheduling_events, 0u);
  EXPECT_GT(stats.makespan, 0);
}

// --- user-registered policies ------------------------------------------------

/// A user policy exercising the documented extension path: first-fit over
/// the observation, registered under its own name.
class FirstFitPolicy final : public Policy {
 public:
  const std::string& name() const override {
    static const std::string n = "FIRST-FIT";
    return n;
  }

  PolicyResult decide(const Observation& observation,
                      Action& action) override {
    slots_.clear();
    for (const HandlerFeatures& handler : observation.handlers) {
      slots_.push_back(handler.free_slots);
    }
    for (std::size_t t = 0; t < observation.tasks.size(); ++t) {
      for (std::size_t h = 0; h < observation.handlers.size(); ++h) {
        if (slots_[h] > 0 && observation.supported(t, h)) {
          action.assign(static_cast<std::uint32_t>(t),
                        static_cast<std::uint32_t>(h));
          --slots_[h];
          break;
        }
      }
    }
    return {};
  }

 private:
  std::vector<std::uint32_t> slots_;
};

void register_first_fit() {
  core::SchedulerRegistry::instance().register_policy("FIRST-FIT", [] {
    return std::make_unique<PolicyScheduler>(
        std::make_unique<FirstFitPolicy>(), "FIRST-FIT");
  });
}

TEST(UserPolicy, RunsOnBothEnginesAndSnapshotRestores) {
  Fixture fx;
  register_first_fit();
  const core::Workload workload = small_workload();
  const core::EmulationSetup setup = fx.setup("FIRST-FIT");

  const core::EmulationStats virtual_stats =
      core::run_virtual(setup, workload);
  EXPECT_EQ(virtual_stats.scheduler_name, "FIRST-FIT");
  EXPECT_GT(virtual_stats.tasks.size(), 0u);

  // Deterministic: a second run is bit-identical.
  EXPECT_EQ(core::run_virtual(setup, workload).digest(),
            virtual_stats.digest());

  // Snapshot/restore round trip.
  core::Emulation first(setup, workload);
  const core::EngineSnapshot snap = first.snapshot(sim_from_ms(0.3));
  EXPECT_EQ(first.finish().digest(), virtual_stats.digest());
  core::Emulation second(setup, workload);
  second.restore(snap);
  EXPECT_EQ(second.finish().digest(), virtual_stats.digest());

  // The real-time engine drives the same adapter (wall-clock overheads, so
  // only functional equivalence is checked).
  Rng rng(3);
  const core::Workload tiny = core::make_validation_workload(
      {{"wifi_tx", 1}, {"range_detection", 1}});
  const core::EmulationStats realtime_stats =
      core::run_realtime(fx.setup("FIRST-FIT", "2C+1F"), tiny);
  EXPECT_EQ(realtime_stats.scheduler_name, "FIRST-FIT");
  EXPECT_EQ(realtime_stats.apps.size(), 2u);
}

TEST(UserPolicy, SweepArtifactCarriesTheRegisteredName) {
  Fixture fx;
  register_first_fit();
  std::vector<exp::SweepPoint> points;
  for (int i = 0; i < 2; ++i) {
    exp::SweepPoint point;
    point.label = cat("pt", i);
    point.setup = fx.setup("FIRST-FIT");
    point.workload = small_workload(static_cast<std::uint64_t>(i + 1));
    points.push_back(std::move(point));
  }
  exp::SweepRun run = exp::run_sweep(points, exp::SweepEnv{});
  ASSERT_EQ(run.execution.results.size(), 2u);

  const json::Value doc = exp::sweep_to_json(
      "policy_test", run.execution.width, run.total_wall_ms,
      run.execution.results, run.meta);
  for (const json::Value& point : doc.at("points").as_array()) {
    EXPECT_EQ(point.at("scheduler").as_string(), "FIRST-FIT");
    EXPECT_EQ(point.at("status").as_string(), "ok");
  }
}

TEST(Registry, UnknownPolicyErrorListsNamesAndPrefixes) {
  policy::register_policies();
  try {
    core::SchedulerRegistry::instance().create("NO-SUCH-POLICY");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("EFT"), std::string::npos) << message;
    EXPECT_NE(message.find("FRFS"), std::string::npos) << message;
    EXPECT_NE(message.find("policy:"), std::string::npos) << message;
  }
  EXPECT_THROW(core::SchedulerRegistry::instance().create("policy:bogus:x"),
               ConfigError);
}

TEST(Registry, MakeFactoriesResolveThroughTheRegistry) {
  EXPECT_EQ(core::make_frfs_scheduler()->name(), "FRFS");
  EXPECT_EQ(core::make_met_scheduler()->name(), "MET");
  EXPECT_EQ(core::make_eft_scheduler()->name(), "EFT");
  EXPECT_EQ(core::make_random_scheduler()->name(), "RANDOM");
}

}  // namespace
}  // namespace dssoc::policy
