// Tests for the SLO-grade traffic layer: the arrival-process registry and
// its built-in processes (core/arrivals.hpp), trace record/replay, the
// latency/deadline/saturation statistics (emu_stats.hpp), the engine's
// saturation detector, and the DSSOC_ARRIVALS whole-sweep override.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "core/arrivals.hpp"
#include "core/emulation.hpp"
#include "exp/journal.hpp"
#include "exp/sweep_env.hpp"
#include "platform/platform.hpp"

namespace dssoc::core {
namespace {

// --- registry -------------------------------------------------------------

TEST(ArrivalRegistry, ListsBuiltInProcesses) {
  const std::vector<std::string> names =
      ArrivalRegistry::instance().process_names();
  for (const char* expected :
       {"mmpp", "periodic", "poisson", "ramp", "trace", "validation"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_TRUE(ArrivalRegistry::instance().has_process(
      "arrivals:poisson:app=a,rate_per_ms=1"));
  EXPECT_FALSE(ArrivalRegistry::instance().has_process("arrivals:nope:x"));
  EXPECT_FALSE(ArrivalRegistry::instance().has_process("poisson"));
}

TEST(ArrivalRegistry, UnknownSpecListsKnownNames) {
  try {
    ArrivalRegistry::instance().create("arrivals:nope:x");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown arrival process"), std::string::npos);
    EXPECT_NE(message.find("periodic"), std::string::npos);
    EXPECT_NE(message.find("poisson"), std::string::npos);
  }
  EXPECT_THROW(ArrivalRegistry::instance().create("garbage"), ConfigError);
}

// --- periodic: bit-identity with the legacy generator ---------------------

/// Verbatim copy of the pre-registry make_performance_workload loop.
Workload legacy_generate(const std::vector<InjectionSpec>& specs,
                         SimTime time_frame, Rng& rng) {
  Workload workload;
  for (const InjectionSpec& spec : specs) {
    for (SimTime t = 0; t < time_frame; t += spec.period) {
      if (spec.probability >= 1.0 || rng.bernoulli(spec.probability)) {
        workload.entries.push_back({spec.app_name, t});
      }
    }
  }
  std::stable_sort(workload.entries.begin(), workload.entries.end(),
                   [](const WorkloadEntry& a, const WorkloadEntry& b) {
                     return a.arrival < b.arrival;
                   });
  return workload;
}

void expect_same_trace(const Workload& a, const Workload& b) {
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].app_name, b.entries[i].app_name) << i;
    EXPECT_EQ(a.entries[i].arrival, b.entries[i].arrival) << i;
    EXPECT_EQ(a.entries[i].deadline, b.entries[i].deadline) << i;
  }
}

TEST(PeriodicProcess, BitIdenticalToLegacyGenerator) {
  // Non-trivial probabilities (1/3 has no short decimal form) prove the
  // spec string round-trips probabilities bit-exactly: one lost ulp would
  // desynchronize the bernoulli stream and shift every later arrival.
  const std::vector<InjectionSpec> specs = {
      {"pd", sim_from_ms(0.7), 1.0},
      {"rd", sim_from_ms(0.11), 1.0 / 3.0},
      {"tx", sim_from_ms(0.31), 0.85}};
  const SimTime frame = sim_from_ms(25.0);

  Rng legacy_rng(42);
  const Workload legacy = legacy_generate(specs, frame, legacy_rng);

  Rng wrapper_rng(42);
  const Workload wrapper = make_performance_workload(specs, frame,
                                                     wrapper_rng);
  expect_same_trace(legacy, wrapper);
  EXPECT_EQ(wrapper.source_spec, periodic_arrival_spec(specs));

  Rng registry_rng(42);
  const Workload regenerated =
      ArrivalRegistry::instance()
          .create(periodic_arrival_spec(specs))
          ->generate(frame, registry_rng);
  expect_same_trace(legacy, regenerated);
}

TEST(ValidationProcess, MatchesLegacyWrapper) {
  const Workload wrapper =
      make_validation_workload({{"wifi_tx", 2}, {"wifi_rx", 1}});
  ASSERT_EQ(wrapper.size(), 3u);
  for (const WorkloadEntry& entry : wrapper.entries) {
    EXPECT_EQ(entry.arrival, 0);
    EXPECT_EQ(entry.deadline, 0);
  }
  EXPECT_EQ(wrapper.instance_counts().at("wifi_tx"), 2u);
  EXPECT_EQ(wrapper.source_spec,
            validation_arrival_spec({{"wifi_tx", 2}, {"wifi_rx", 1}}));
}

// --- stochastic processes: determinism and shape --------------------------

TEST(PoissonProcess, DeterministicPerSeedAndNearNominalRate) {
  const auto process = ArrivalRegistry::instance().create(
      "arrivals:poisson:app=a,rate_per_ms=5");
  const SimTime frame = sim_from_ms(20.0);
  Rng rng_a(3), rng_b(3), rng_c(4);
  const Workload first = process->generate(frame, rng_a);
  const Workload second = process->generate(frame, rng_b);
  const Workload third = process->generate(frame, rng_c);
  expect_same_trace(first, second);
  EXPECT_NE(first.entries.size(), 0u);
  // ~100 expected; a 5-sigma band is [50, 150].
  EXPECT_GT(first.size(), 50u);
  EXPECT_LT(first.size(), 150u);
  EXPECT_NE(third.size(), first.size());
  for (std::size_t i = 1; i < first.entries.size(); ++i) {
    EXPECT_LE(first.entries[i - 1].arrival, first.entries[i].arrival);
  }
  for (const WorkloadEntry& entry : first.entries) {
    EXPECT_GE(entry.arrival, 0);
    EXPECT_LT(entry.arrival, frame);
  }
}

TEST(MmppProcess, SilentStateHalvesTheRate) {
  // 0/10 jobs/ms alternating with 1 ms mean dwell: long-run rate 5/ms.
  const auto process = ArrivalRegistry::instance().create(
      "arrivals:mmpp:app=a,rates_per_ms=0/10,mean_dwell_ms=1");
  Rng rng(9);
  const Workload workload = process->generate(sim_from_ms(40.0), rng);
  EXPECT_GT(workload.size(), 80u);   // ~200 expected
  EXPECT_LT(workload.size(), 340u);
}

TEST(RampProcess, LoadGrowsAcrossTheFrame) {
  const auto process = ArrivalRegistry::instance().create(
      "arrivals:ramp:app=a,start_rate_per_ms=0,end_rate_per_ms=10");
  const SimTime frame = sim_from_ms(20.0);
  Rng rng(5);
  const Workload workload = process->generate(frame, rng);
  EXPECT_GT(workload.size(), 40u);  // ~100 expected
  std::size_t early = 0, late = 0;
  for (const WorkloadEntry& entry : workload.entries) {
    (entry.arrival < frame / 2 ? early : late) += 1;
  }
  EXPECT_GT(late, early);
}

TEST(ArrivalSpecs, StampDeadlines) {
  const auto process = ArrivalRegistry::instance().create(
      "arrivals:poisson:app=a,rate_per_ms=2,deadline_ns=750");
  Rng rng(1);
  const Workload workload = process->generate(sim_from_ms(10.0), rng);
  ASSERT_GT(workload.size(), 0u);
  for (const WorkloadEntry& entry : workload.entries) {
    EXPECT_EQ(entry.deadline, 750);
  }
}

// --- spec validation ------------------------------------------------------

TEST(ArrivalSpecs, RejectInvalidParameters) {
  ArrivalRegistry& registry = ArrivalRegistry::instance();
  // periodic
  EXPECT_THROW(registry.create("arrivals:periodic:app=a,period_ns=0"),
               ConfigError);
  EXPECT_THROW(
      registry.create("arrivals:periodic:app=a,period_ns=10,prob=1.5"),
      ConfigError);
  // poisson
  EXPECT_THROW(registry.create("arrivals:poisson:app=a,rate_per_ms=0"),
               ConfigError);
  EXPECT_THROW(registry.create("arrivals:poisson:rate_per_ms=1"),
               ConfigError);  // app missing
  // mmpp
  EXPECT_THROW(
      registry.create(
          "arrivals:mmpp:app=a,rates_per_ms=0/0,mean_dwell_ms=1"),
      ConfigError);
  EXPECT_THROW(
      registry.create(
          "arrivals:mmpp:app=a,rates_per_ms=1/2,mean_dwell_ms=0"),
      ConfigError);
  // ramp
  EXPECT_THROW(
      registry.create(
          "arrivals:ramp:app=a,start_rate_per_ms=0,end_rate_per_ms=0"),
      ConfigError);
  // validation
  EXPECT_THROW(registry.create("arrivals:validation:app=a,count=-1"),
               ConfigError);
  // field grammar
  EXPECT_THROW(registry.create("arrivals:poisson:app=a,rate_per_ms=1,bogus=2"),
               ConfigError);
  EXPECT_THROW(
      registry.create("arrivals:poisson:app=a,rate_per_ms=1,rate_per_ms=2"),
      ConfigError);
  EXPECT_THROW(
      registry.create("arrivals:poisson:app=a,rate_per_ms=banana"),
      ConfigError);
  EXPECT_THROW(registry.create(
                   "arrivals:poisson:app=a,rate_per_ms=1,deadline_ns=-5"),
               ConfigError);
}

TEST(WorkloadWrappers, LegacyValidationStillFires) {
  Rng rng(1);
  EXPECT_THROW(make_performance_workload({{"a", 0, 1.0}}, 100, rng),
               DssocError);
  EXPECT_THROW(make_performance_workload({{"a", 10, 1.5}}, 100, rng),
               DssocError);
  EXPECT_THROW(make_performance_workload({}, 0, rng), DssocError);
  EXPECT_THROW(make_validation_workload({{"a", -1}}), DssocError);
}

// --- trace record/replay --------------------------------------------------

struct TempFile {
  explicit TempFile(std::string name) : path(std::move(name)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(ArrivalTrace, RoundTripsThroughAFile) {
  TempFile file("arrivals_test_trace.bin");
  const auto process = ArrivalRegistry::instance().create(
      "arrivals:poisson:app=a,rate_per_ms=3,deadline_ns=900");
  Rng rng(17);
  const Workload original = process->generate(sim_from_ms(10.0), rng);
  ASSERT_GT(original.size(), 0u);
  write_arrival_trace(file.path, original);

  const Workload read_back = read_arrival_trace(file.path);
  expect_same_trace(original, read_back);
  EXPECT_EQ(read_back.source_spec, original.source_spec);

  // Replay through the registry: the entries are the recorded ones, the
  // source_spec becomes the trace spec (that is what a re-run would hash).
  const std::string trace_spec = "arrivals:trace:" + file.path;
  Rng unused(0);
  const Workload replayed = ArrivalRegistry::instance()
                                .create(trace_spec)
                                ->generate(sim_from_ms(999.0), unused);
  expect_same_trace(original, replayed);
  EXPECT_EQ(replayed.source_spec, trace_spec);
}

TEST(ArrivalTrace, RejectsCorruptAndMissingFiles) {
  EXPECT_THROW(read_arrival_trace("no_such_arrival_trace.bin"), ConfigError);
  EXPECT_THROW(
      ArrivalRegistry::instance().create("arrivals:trace:no_such_trace.bin"),
      ConfigError);

  TempFile file("arrivals_test_corrupt.bin");
  const Workload workload = make_validation_workload({{"a", 3}});
  write_arrival_trace(file.path, workload);
  // Flip one byte in the middle: the CRC trailer must catch it.
  std::fstream stream(file.path,
                      std::ios::in | std::ios::out | std::ios::binary);
  stream.seekg(0, std::ios::end);
  const std::streamoff size = stream.tellg();
  stream.seekp(size / 2);
  char byte = 0;
  stream.seekg(size / 2);
  stream.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  stream.seekp(size / 2);
  stream.write(&byte, 1);
  stream.close();
  EXPECT_THROW(read_arrival_trace(file.path), StateError);
}

// --- latency / deadline / jitter statistics -------------------------------

AppRecord app_record(double latency_ms, SimTime deadline = 0) {
  AppRecord record;
  record.app_name = "a";
  record.injection_time = 0;
  record.completion_time = sim_from_ms(latency_ms);
  record.deadline = deadline;
  return record;
}

TEST(LatencyStatsTest, MatchesHandComputedFixture) {
  EmulationStats stats;
  for (int i = 1; i <= 10; ++i) {
    stats.apps.push_back(app_record(static_cast<double>(i)));
  }
  const LatencyStats slo = stats.latency_stats();
  EXPECT_EQ(slo.count, 10u);
  EXPECT_DOUBLE_EQ(slo.mean_ms, 5.5);
  // Nearest-rank: p50 -> 5th sample, p95 -> ceil(9.5) = 10th, p99 -> 10th.
  EXPECT_DOUBLE_EQ(slo.p50_ms, 5.0);
  EXPECT_DOUBLE_EQ(slo.p95_ms, 10.0);
  EXPECT_DOUBLE_EQ(slo.p99_ms, 10.0);
  EXPECT_DOUBLE_EQ(slo.max_ms, 10.0);
  // Population stddev of 1..10 = sqrt(8.25).
  EXPECT_NEAR(slo.jitter_ms, 2.8722813232690143, 1e-12);
  EXPECT_EQ(slo.deadline_count, 0u);
  EXPECT_DOUBLE_EQ(slo.deadline_miss_rate(), 0.0);
}

TEST(LatencyStatsTest, CountsDeadlineMisses) {
  EmulationStats stats;
  stats.apps.push_back(app_record(1.0, sim_from_ms(2.0)));  // met
  stats.apps.push_back(app_record(3.0, sim_from_ms(2.0)));  // missed
  stats.apps.push_back(app_record(9.0));                    // no deadline
  const LatencyStats slo = stats.latency_stats();
  EXPECT_EQ(slo.count, 3u);
  EXPECT_EQ(slo.deadline_count, 2u);
  EXPECT_EQ(slo.deadline_misses, 1u);
  EXPECT_DOUBLE_EQ(slo.deadline_miss_rate(), 0.5);
}

TEST(LatencyStatsTest, EmptyStatsAreAllZero) {
  const LatencyStats slo = EmulationStats{}.latency_stats();
  EXPECT_EQ(slo.count, 0u);
  EXPECT_DOUBLE_EQ(slo.p99_ms, 0.0);
  EXPECT_DOUBLE_EQ(slo.jitter_ms, 0.0);
}

TEST(EmulationStatsTest, SaturationFieldsSurviveCheckpoint) {
  EmulationStats stats;
  stats.config_label = "cfg";
  stats.saturated = true;
  stats.saturation_time = sim_from_ms(4.0);
  stats.saturation_arrivals = 37;
  stats.apps.push_back(app_record(2.0, sim_from_ms(1.0)));

  StateWriter out(state_tag('T', 'E', 'S', 'T'));
  stats.save(out);
  const std::vector<std::uint8_t> bytes = out.take();
  StateReader in(bytes.data(), bytes.size(), state_tag('T', 'E', 'S', 'T'));
  EmulationStats restored;
  restored.load(in);
  EXPECT_TRUE(restored.saturated);
  EXPECT_EQ(restored.saturation_time, sim_from_ms(4.0));
  EXPECT_EQ(restored.saturation_arrivals, 37u);
  ASSERT_EQ(restored.apps.size(), 1u);
  EXPECT_EQ(restored.apps[0].deadline, sim_from_ms(1.0));
  EXPECT_EQ(restored.digest(), stats.digest());
  EXPECT_NEAR(restored.saturation_rate_jobs_per_ms(), 37.0 / 4.0, 1e-12);
}

}  // namespace
}  // namespace dssoc::core

namespace dssoc::exp {
namespace {

struct EngineFixture {
  EngineFixture() {
    platform = platform::zcu102();
    apps::register_all_kernels(registry);
    library = apps::default_application_library();
  }

  core::EmulationSetup setup(const std::string& config,
                             const std::string& scheduler) const {
    core::EmulationSetup s;
    s.platform = &platform;
    s.soc = platform::parse_config_label(config);
    s.apps = &library;
    s.registry = &registry;
    s.cost_model = platform::default_cost_model();
    s.options.scheduler = scheduler;
    s.options.run_kernels = false;
    return s;
  }

  platform::Platform platform;
  core::SharedObjectRegistry registry;
  core::ApplicationLibrary library;
};

/// A 1C+0F engine fed two jobs per microsecond cannot keep up: the backlog
/// crosses any small bound almost immediately.
core::Workload overdriven_workload() {
  Rng rng(7);
  return core::ArrivalRegistry::instance()
      .create("arrivals:periodic:app=range_detection,period_ns=500,"
              "deadline_ns=1000000")
      ->generate(sim_from_ms(5.0), rng);
}

TEST(Saturation, OverdrivenPointTerminatesWithMeasuredRate) {
  EngineFixture fx;
  core::EmulationSetup setup = fx.setup("1C+0F", "FRFS");
  setup.options.saturation_backlog_limit = 32;
  const core::EmulationStats stats =
      core::run_virtual(setup, overdriven_workload());
  EXPECT_TRUE(stats.saturated);
  EXPECT_GT(stats.saturation_time, 0);
  EXPECT_GT(stats.saturation_arrivals, 0u);
  EXPECT_GT(stats.saturation_rate_jobs_per_ms(), 0.0);
  EXPECT_EQ(status_from_stats(stats), PointStatus::kSaturated);
  // The detector cut the run long before the full trace drained.
  EXPECT_LT(stats.apps.size(), overdriven_workload().size());
}

TEST(Saturation, DisabledLimitRunsToCompletion) {
  EngineFixture fx;
  const core::EmulationStats stats =
      core::run_virtual(fx.setup("1C+0F", "FRFS"), overdriven_workload());
  EXPECT_FALSE(stats.saturated);
  EXPECT_EQ(status_from_stats(stats), PointStatus::kOk);
  EXPECT_EQ(stats.apps.size(), overdriven_workload().size());
}

TEST(Saturation, CheckpointRestoreReproducesTheCut) {
  EngineFixture fx;
  core::EmulationSetup setup = fx.setup("1C+0F", "FRFS");
  setup.options.saturation_backlog_limit = 32;
  const core::Workload workload = overdriven_workload();

  core::Emulation reference(setup, workload);
  const core::EmulationStats direct = reference.finish();
  ASSERT_TRUE(direct.saturated);

  core::Emulation source(setup, workload);
  source.run_until_idle(sim_from_us(3.0));
  const core::EngineSnapshot snapshot = source.snapshot();
  core::Emulation resumed(setup, workload);
  resumed.restore(snapshot);
  const core::EmulationStats after = resumed.finish();
  EXPECT_TRUE(after.saturated);
  EXPECT_EQ(after.digest(), direct.digest());
}

// --- config-hash sensitivity ----------------------------------------------

TEST(PointConfigHash, SensitiveToSloInputs) {
  SweepPoint point;
  point.label = "p";
  point.workload.source_spec = "arrivals:poisson:app=a,rate_per_ms=1";
  point.workload.entries.push_back({"a", 10, 100});
  const std::uint64_t base = point_config_hash(point);

  SweepPoint other = point;
  other.workload.source_spec = "arrivals:poisson:app=a,rate_per_ms=2";
  EXPECT_NE(point_config_hash(other), base);

  other = point;
  other.workload.entries[0].deadline = 200;
  EXPECT_NE(point_config_hash(other), base);

  other = point;
  other.setup.options.saturation_backlog_limit = 64;
  EXPECT_NE(point_config_hash(other), base);

  EXPECT_EQ(point_config_hash(point), base);
}

// --- DSSOC_ARRIVALS whole-sweep override ----------------------------------

struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {}
  ~EnvGuard() { ::unsetenv(name_); }
  const char* name_;
};

TEST(SweepEnvArrivals, OverrideRegeneratesEveryPoint) {
  EngineFixture fx;
  const EnvGuard guard("DSSOC_ARRIVALS");
  const std::string spec =
      "arrivals:poisson:app=wifi_tx,rate_per_ms=2,deadline_ns=5000000";
  ::setenv("DSSOC_ARRIVALS", spec.c_str(), 1);
  const SweepEnv env = SweepEnv::from_env();
  EXPECT_EQ(env.arrivals_override, spec);

  std::vector<SweepPoint> points;
  for (const std::uint64_t seed : {1u, 2u}) {
    SweepPoint point;
    point.label = cat("1C+0F/FRFS/", seed);
    point.setup = fx.setup("1C+0F", "FRFS");
    point.setup.options.seed = seed;
    point.workload = core::make_validation_workload({{"wifi_tx", 1}});
    point.time_frame = sim_from_ms(4.0);
    points.push_back(std::move(point));
  }
  const SweepRun run = run_sweep(points, env);
  ASSERT_EQ(run.execution.results.size(), 2u);
  for (const SweepPoint& point : points) {
    EXPECT_EQ(point.workload.source_spec, spec);
    EXPECT_GT(point.workload.size(), 0u);
  }
  // Distinct seeds must draw distinct Poisson streams.
  EXPECT_NE(points[0].workload.entries.back().arrival,
            points[1].workload.entries.back().arrival);
  for (const SweepResult& result : run.execution.results) {
    EXPECT_EQ(result.status, PointStatus::kOk);
  }
}

TEST(SweepEnvArrivals, RejectsPointsWithoutAnInjectionWindow) {
  EngineFixture fx;
  const EnvGuard guard("DSSOC_ARRIVALS");
  ::setenv("DSSOC_ARRIVALS", "arrivals:poisson:app=wifi_tx,rate_per_ms=1", 1);
  const SweepEnv env = SweepEnv::from_env();
  std::vector<SweepPoint> points;
  SweepPoint point;
  point.label = "windowless";
  point.setup = fx.setup("1C+0F", "FRFS");
  point.workload = core::make_validation_workload({{"wifi_tx", 1}});
  points.push_back(std::move(point));
  EXPECT_THROW(run_sweep(points, env), ConfigError);
}

TEST(SweepEnvArrivals, InvalidOverrideFailsBeforeAnyPointRuns) {
  EngineFixture fx;
  const EnvGuard guard("DSSOC_ARRIVALS");
  ::setenv("DSSOC_ARRIVALS", "arrivals:nope:x", 1);
  const SweepEnv env = SweepEnv::from_env();
  std::vector<SweepPoint> points;
  SweepPoint point;
  point.label = "p";
  point.setup = fx.setup("1C+0F", "FRFS");
  point.workload = core::make_validation_workload({{"wifi_tx", 1}});
  point.time_frame = sim_from_ms(1.0);
  points.push_back(std::move(point));
  EXPECT_THROW(run_sweep(points, env), ConfigError);
}

}  // namespace
}  // namespace dssoc::exp
