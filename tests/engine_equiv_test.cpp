// Engine-equivalence regression test.
//
// The virtual-time engine was rewritten for speed (analytic busy-wait
// fast-forward, min-heap completion queue, memoized option/estimate
// lookups, EFT's memoized replan) under a hard contract: the emulated
// timeline is bit-identical to the original spin-per-cycle implementation.
// The golden values below were captured from the pre-optimization engine
// (commit fcbeb28's core) for every scheduler x {1C+1F, 3C+2F} on a fixed
// seed-42 performance workload that exercises arrivals, backlog busy-waits
// and accelerator completions. If an engine change breaks any of them, it
// changed emulation semantics — either revert it or consciously re-capture
// the goldens and say so in the PR.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "apps/registry.hpp"
#include "core/emulation.hpp"
#include "platform/platform.hpp"

namespace dssoc::core {
namespace {

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t fnv1a_str(std::uint64_t hash, const std::string& s) {
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Order-sensitive digest over every task and application record: any
/// change to assignment targets, timing, record order or completion order
/// changes the digest.
std::uint64_t digest(const EmulationStats& stats) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const TaskRecord& t : stats.tasks) {
    h = fnv1a_str(h, t.app_name);
    h = fnv1a(h, static_cast<std::uint64_t>(t.app_instance));
    h = fnv1a_str(h, t.node_name);
    h = fnv1a(h, static_cast<std::uint64_t>(t.pe_id));
    h = fnv1a(h, static_cast<std::uint64_t>(t.ready_time));
    h = fnv1a(h, static_cast<std::uint64_t>(t.dispatch_time));
    h = fnv1a(h, static_cast<std::uint64_t>(t.start_time));
    h = fnv1a(h, static_cast<std::uint64_t>(t.end_time));
  }
  for (const AppRecord& a : stats.apps) {
    h = fnv1a_str(h, a.app_name);
    h = fnv1a(h, static_cast<std::uint64_t>(a.app_instance));
    h = fnv1a(h, static_cast<std::uint64_t>(a.injection_time));
    h = fnv1a(h, static_cast<std::uint64_t>(a.completion_time));
  }
  return h;
}

/// The fixed workload the goldens were captured with: moderate-rate
/// performance mode, injection probability below 1 (exercises the workload
/// RNG), 2 ms frame — 56 application arrivals, 2660 tasks.
Workload golden_workload() {
  Rng rng(42);
  return make_performance_workload(
      {{"pulse_doppler", sim_from_ms(0.5), 0.9},
       {"range_detection", sim_from_ms(0.05), 0.9},
       {"wifi_tx", sim_from_ms(0.25), 0.9},
       {"wifi_rx", sim_from_ms(0.25), 0.9}},
      sim_from_ms(2.0), rng);
}

struct Fixture {
  Fixture() {
    platform = platform::zcu102();
    apps::register_all_kernels(registry);
    library = apps::default_application_library();
  }

  EmulationSetup setup(const std::string& config,
                       const std::string& scheduler) const {
    EmulationSetup s;
    s.platform = &platform;
    s.soc = platform::parse_config_label(config);
    s.apps = &library;
    s.registry = &registry;
    s.cost_model = platform::default_cost_model();
    s.options.scheduler = scheduler;
    s.options.run_kernels = false;
    s.options.seed = 7;
    return s;
  }

  platform::Platform platform;
  SharedObjectRegistry registry;
  ApplicationLibrary library;
};

struct Golden {
  const char* config;
  const char* scheduler;
  SimTime makespan;
  SimTime overhead_total;
  std::size_t events;
  std::size_t tasks;
  std::uint64_t digest;
};

// Captured from the pre-optimization engine (see file comment).
constexpr Golden kGoldens[] = {
    {"1C+1F", "FRFS", 61156848, 24690700, 2661u, 2660u,
     4984875638316850430ULL},
    {"1C+1F", "MET", 246101564, 221965384, 2661u, 2660u,
     6519685711079893361ULL},
    {"1C+1F", "EFT", 8010507776, 8001684816, 2661u, 2660u,
     12690752016387392297ULL},
    {"1C+1F", "RANDOM", 61073220, 24610432, 2661u, 2660u,
     9432197966408071498ULL},
    {"3C+2F", "FRFS", 36845016, 28121840, 2661u, 2660u,
     7008576007244745448ULL},
    {"3C+2F", "MET", 171997480, 166432560, 2661u, 2660u,
     15477359736677088135ULL},
    {"3C+2F", "EFT", 13461857120, 13457989660, 2661u, 2660u,
     9178774478019681837ULL},
    {"3C+2F", "RANDOM", 36800700, 27572880, 2661u, 2660u,
     2556196651147357572ULL},
};

TEST(EngineEquivalence, MatchesPreOptimizationGoldens) {
  Fixture fx;
  const Workload workload = golden_workload();
  ASSERT_EQ(workload.size(), 56u);
  for (const Golden& golden : kGoldens) {
    const EmulationStats stats =
        run_virtual(fx.setup(golden.config, golden.scheduler), workload);
    SCOPED_TRACE(std::string(golden.config) + "/" + golden.scheduler);
    EXPECT_EQ(stats.makespan, golden.makespan);
    EXPECT_EQ(stats.scheduling_overhead_total, golden.overhead_total);
    EXPECT_EQ(stats.scheduling_events, golden.events);
    EXPECT_EQ(stats.tasks.size(), golden.tasks);
    EXPECT_EQ(digest(stats), golden.digest);
  }
}

TEST(EngineEquivalence, SnapshotRestoreStillMatchesGoldens) {
  // The checkpoint tentpole's hardest promise: interrupting a run at an
  // arbitrary mid-run boundary, serializing the complete engine state,
  // restoring it into a brand-new engine and finishing produces the SAME
  // pre-optimization golden timeline — snapshot/restore is invisible to
  // emulation semantics for every scheduler.
  Fixture fx;
  const Workload workload = golden_workload();
  for (const Golden& golden : kGoldens) {
    SCOPED_TRACE(std::string(golden.config) + "/" + golden.scheduler);
    const EmulationSetup setup = fx.setup(golden.config, golden.scheduler);
    Emulation source(setup, workload);
    const EngineSnapshot snap = source.snapshot(golden.makespan / 2);
    Emulation resumed(setup, workload);
    resumed.restore(snap);
    const EmulationStats stats = resumed.finish();
    EXPECT_EQ(stats.makespan, golden.makespan);
    EXPECT_EQ(stats.scheduling_overhead_total, golden.overhead_total);
    EXPECT_EQ(stats.scheduling_events, golden.events);
    EXPECT_EQ(stats.tasks.size(), golden.tasks);
    EXPECT_EQ(digest(stats), golden.digest);
  }
}

TEST(EngineEquivalence, RepeatedRunsAreBitIdentical) {
  Fixture fx;
  const Workload workload = golden_workload();
  for (const char* scheduler : {"FRFS", "EFT"}) {
    const EmulationStats a =
        run_virtual(fx.setup("3C+2F", scheduler), workload);
    const EmulationStats b =
        run_virtual(fx.setup("3C+2F", scheduler), workload);
    SCOPED_TRACE(scheduler);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.scheduling_overhead_total, b.scheduling_overhead_total);
    EXPECT_EQ(digest(a), digest(b));
  }
}

TEST(EngineEquivalence, FastForwardOffProducesTheSameTimeline) {
  // spin_fast_forward=false literally spins through every workload-manager
  // cycle (the legacy behaviour); the analytic skip must be a pure
  // acceleration. Cheap points only — spinning is the slow path by design.
  Fixture fx;
  const Workload workload = golden_workload();
  for (const char* scheduler : {"FRFS", "MET", "RANDOM"}) {
    EmulationSetup fast = fx.setup("1C+1F", scheduler);
    EmulationSetup slow = fx.setup("1C+1F", scheduler);
    slow.options.spin_fast_forward = false;
    const EmulationStats a = run_virtual(fast, workload);
    const EmulationStats b = run_virtual(slow, workload);
    SCOPED_TRACE(scheduler);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.scheduling_overhead_total, b.scheduling_overhead_total);
    EXPECT_EQ(a.scheduling_events, b.scheduling_events);
    EXPECT_EQ(digest(a), digest(b));
  }
}

TEST(EngineEquivalence, QueueDepthTwoStaysDeterministic) {
  // The reservation-queue ablation exercises chained completions, the one
  // heap path the goldens above do not cover (queue depth 1 never chains).
  Fixture fx;
  const Workload workload = golden_workload();
  EmulationSetup setup = fx.setup("3C+2F", "FRFS");
  setup.options.pe_queue_depth = 2;
  const EmulationStats a = run_virtual(setup, workload);
  const EmulationStats b = run_virtual(setup, workload);
  EXPECT_EQ(a.tasks.size(), 2660u);
  EXPECT_EQ(digest(a), digest(b));
  // And the fast-forward stays an acceleration, not a semantic change.
  EmulationSetup slow = setup;
  slow.options.spin_fast_forward = false;
  const EmulationStats c = run_virtual(slow, workload);
  EXPECT_EQ(digest(a), digest(c));
}

}  // namespace
}  // namespace dssoc::core
