// Tests for the reporting module: table rendering, box-plot cells, file
// export and utilization summaries.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "trace/report.hpp"

namespace dssoc::trace {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"Name", "Value"});
  table.add_row({"a", "1"});
  table.add_row({"long_name", "22"});
  const std::string out = table.render();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("long_name"), std::string::npos);
  // Every line has the same visual width for the first column.
  const std::size_t header_pos = out.find("Value");
  const std::size_t row_pos = out.find("22");
  EXPECT_EQ(out.rfind('\n', header_pos) + 1,
            header_pos - out.rfind('\n', header_pos) - 1
                ? out.rfind('\n', header_pos) + 1
                : out.rfind('\n', header_pos) + 1);
  EXPECT_NE(row_pos, std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  Table table({"A", "B"});
  EXPECT_THROW(table.add_row({"only one"}), DssocError);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), DssocError);
}

TEST(Table, EmptyTableRendersHeaderAndRule) {
  Table table({"X"});
  const std::string out = table.render();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(BoxplotCell, FormatsFiveNumbers) {
  FiveNumberSummary s{1.0, 2.25, 3.5, 4.75, 6.0};
  EXPECT_EQ(boxplot_cell(s, 1), "1.0/2.2/3.5/4.8/6.0");
  EXPECT_EQ(boxplot_cell(s, 0), "1/2/4/5/6");
}

TEST(WriteFile, RoundTripsContentAndCreatesDirectories) {
  const std::string dir = "test_trace_out";
  const std::string path = dir + "/nested/report.txt";
  write_file(path, "hello\nworld\n");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\nworld\n");
  std::filesystem::remove_all(dir);
}

TEST(UtilizationSummary, ListsEveryPe) {
  core::EmulationStats stats;
  stats.makespan = 1'000'000;
  stats.pes.push_back({0, "Core1", "cpu", 800'000, 10});
  stats.pes.push_back({1, "FFT1", "fft", 50'000, 2});
  const std::string summary = utilization_summary(stats);
  EXPECT_NE(summary.find("Core1=80.0%"), std::string::npos);
  EXPECT_NE(summary.find("FFT1=5.0%"), std::string::npos);
}

TEST(UtilizationSummary, UnknownPeThrows) {
  core::EmulationStats stats;
  stats.makespan = 100;
  EXPECT_THROW(stats.pe_utilization_percent(7), DssocError);
}

}  // namespace
}  // namespace dssoc::trace
