// Tests for the DSP kernel library: transform correctness and inverses,
// DFT/FFT agreement, radar correlation recovery, and every WiFi block's
// forward/backward consistency, plus parameterized property sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/channel.hpp"
#include "dsp/convcode.hpp"
#include "dsp/crc.hpp"
#include "dsp/fft.hpp"
#include "dsp/interleaver.hpp"
#include "dsp/matrix.hpp"
#include "dsp/pilots.hpp"
#include "dsp/qpsk.hpp"
#include "dsp/radar.hpp"
#include "dsp/scrambler.hpp"
#include "dsp/vec.hpp"

namespace dssoc::dsp {
namespace {

std::vector<cfloat> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cfloat> out(n);
  for (cfloat& x : out) {
    x = cfloat(static_cast<float>(rng.uniform(-1.0, 1.0)),
               static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  return out;
}

std::vector<std::uint8_t> random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) {
    b = rng.bernoulli(0.5) ? 1 : 0;
  }
  return bits;
}

// --- FFT ---------------------------------------------------------------------

TEST(Fft, ImpulseTransformsToFlatSpectrum) {
  std::vector<cfloat> data(8, cfloat(0.0F, 0.0F));
  data[0] = cfloat(1.0F, 0.0F);
  fft(data);
  for (const cfloat x : data) {
    EXPECT_NEAR(x.real(), 1.0F, 1e-5F);
    EXPECT_NEAR(x.imag(), 0.0F, 1e-5F);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  std::vector<cfloat> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(tone) *
                         static_cast<double>(i) / static_cast<double>(n);
    data[i] = cfloat(static_cast<float>(std::cos(angle)),
                     static_cast<float>(std::sin(angle)));
  }
  fft(data);
  EXPECT_EQ(max_magnitude_index(data), tone);
  EXPECT_NEAR(data[tone].real(), static_cast<float>(n), 1e-2F);
}

TEST(Fft, MatchesNaiveDft) {
  const auto signal = random_signal(32, 7);
  auto fast = signal;
  fft(fast);
  const auto slow = dft(signal);
  EXPECT_LT(rms_error(fast, slow), 1e-3);
}

TEST(Fft, IdftMatchesIfft) {
  const auto signal = random_signal(16, 9);
  auto fast = signal;
  ifft(fast);
  const auto slow = idft(signal);
  EXPECT_LT(rms_error(fast, slow), 1e-4);
}

TEST(Fft, PlanRejectsNonPowerOfTwo) {
  EXPECT_THROW(FftPlan(0), DssocError);
  EXPECT_THROW(FftPlan(3), DssocError);
  EXPECT_THROW(FftPlan(100), DssocError);
}

TEST(Fft, PlanRejectsWrongBufferSize) {
  FftPlan plan(8);
  std::vector<cfloat> wrong(4);
  EXPECT_THROW(plan.forward(wrong), DssocError);
}

TEST(Fft, PlanIsReusable) {
  FftPlan plan(64);
  const auto signal = random_signal(64, 11);
  auto a = signal;
  auto b = signal;
  plan.forward(a);
  plan.forward(b);
  EXPECT_LT(rms_error(a, b), 1e-9);
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversSignal) {
  const std::size_t n = GetParam();
  const auto signal = random_signal(n, 13 + n);
  auto data = signal;
  const FftPlan plan(n);
  plan.forward(data);
  plan.inverse(data);
  EXPECT_LT(rms_error(data, signal), 1e-4);
}

TEST_P(FftRoundTrip, ParsevalEnergyPreserved) {
  const std::size_t n = GetParam();
  const auto signal = random_signal(n, 17 + n);
  auto data = signal;
  fft(data);
  EXPECT_NEAR(energy(data) / static_cast<double>(n), energy(signal),
              energy(signal) * 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 4, 8, 16, 64, 128, 256, 1024,
                                           4096));

TEST(FftShift, EvenLengthSwapsHalves) {
  std::vector<cfloat> data{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  fftshift(data);
  EXPECT_FLOAT_EQ(data[0].real(), 2.0F);
  EXPECT_FLOAT_EQ(data[1].real(), 3.0F);
  EXPECT_FLOAT_EQ(data[2].real(), 0.0F);
  EXPECT_FLOAT_EQ(data[3].real(), 1.0F);
}

TEST(FftShift, TrivialSizes) {
  std::vector<cfloat> one{{5, 0}};
  fftshift(one);
  EXPECT_FLOAT_EQ(one[0].real(), 5.0F);
  std::vector<cfloat> empty;
  fftshift(empty);  // must not crash
}

// --- vector ops ----------------------------------------------------------------

TEST(Vec, MultiplyConjIsCorrelationCore) {
  const std::vector<cfloat> a{{1, 2}, {3, -1}};
  const std::vector<cfloat> b{{2, 1}, {0, 1}};
  std::vector<cfloat> out(2);
  multiply_conj(a, b, out);
  EXPECT_FLOAT_EQ(out[0].real(), 4.0F);   // (1+2i)(2-1i) = 4+3i
  EXPECT_FLOAT_EQ(out[0].imag(), 3.0F);
  EXPECT_FLOAT_EQ(out[1].real(), -1.0F);  // (3-1i)(0-1i) = -1-3i
  EXPECT_FLOAT_EQ(out[1].imag(), -3.0F);
}

TEST(Vec, ConjugateScaleEnergy) {
  std::vector<cfloat> data{{1, 1}, {2, -2}};
  conjugate(data);
  EXPECT_FLOAT_EQ(data[0].imag(), -1.0F);
  EXPECT_FLOAT_EQ(data[1].imag(), 2.0F);
  scale(data, 2.0F);
  EXPECT_FLOAT_EQ(data[0].real(), 2.0F);
  EXPECT_NEAR(energy(data), 4.0 * (2.0 + 8.0), 1e-6);
}

TEST(Vec, MaxMagnitudeIndexFindsPeakAndTies) {
  const std::vector<cfloat> data{{1, 0}, {0, 3}, {3, 0}, {0, 1}};
  EXPECT_EQ(max_magnitude_index(data), 1u);  // first of the tied peaks
  EXPECT_EQ(max_magnitude_index(std::vector<cfloat>{}), 0u);
}

// --- radar ---------------------------------------------------------------------

TEST(Radar, ChirpHasUnitMagnitude) {
  const auto chirp = lfm_chirp(256, 2.0e5, 1.0e6);
  ASSERT_EQ(chirp.size(), 256u);
  for (const cfloat x : chirp) {
    EXPECT_NEAR(magnitude_squared(x), 1.0F, 1e-4F);
  }
}

class RadarDelaySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RadarDelaySweep, CorrelationRecoversPlantedDelay) {
  const std::size_t delay = GetParam();
  Rng rng(1234);
  const auto chirp = lfm_chirp(256, 2.0e5, 1.0e6);
  const auto echo = synthesize_echo(chirp, delay, 0.7F, 0.05F, rng);
  const auto corr = circular_correlate(echo, chirp);
  EXPECT_EQ(max_magnitude_index(corr), delay);
}

INSTANTIATE_TEST_SUITE_P(Delays, RadarDelaySweep,
                         ::testing::Values(0, 1, 17, 37, 100, 200, 255));

TEST(Radar, LagToRangeUsesTwoWayPath) {
  // lag of 2 samples at 1 MHz: 2 us round trip -> ~300 m one-way.
  EXPECT_NEAR(lag_to_range_m(2, 1.0e6), 299.79, 0.1);
  EXPECT_DOUBLE_EQ(lag_to_range_m(0, 1.0e6), 0.0);
}

TEST(Radar, DopplerBinToVelocityIsSignedAroundCenter) {
  // Center bin (m/2 after shift) is zero Doppler.
  EXPECT_DOUBLE_EQ(doppler_bin_to_velocity(64, 128, 2000.0, 0.03), 0.0);
  EXPECT_GT(doppler_bin_to_velocity(100, 128, 2000.0, 0.03), 0.0);
  EXPECT_LT(doppler_bin_to_velocity(10, 128, 2000.0, 0.03), 0.0);
}

TEST(Radar, CorrelateRejectsMismatchedSizes) {
  const auto a = random_signal(8, 1);
  const auto b = random_signal(16, 2);
  EXPECT_THROW(circular_correlate(a, b), DssocError);
  const auto c = random_signal(10, 3);
  EXPECT_THROW(circular_correlate(c, c), DssocError);
}

// --- scrambler -------------------------------------------------------------------

TEST(Scrambler, RoundTripIdentity) {
  const auto bits = random_bits(128, 5);
  EXPECT_EQ(descramble(scramble(bits)), bits);
}

TEST(Scrambler, WhitensConstantInput) {
  const std::vector<std::uint8_t> zeros(127, 0);
  const auto out = scramble(zeros);
  int ones = 0;
  for (const auto b : out) {
    ones += b;
  }
  // The LFSR period is 127; a full period has 64 ones.
  EXPECT_EQ(ones, 64);
}

TEST(Scrambler, RejectsZeroSeed) {
  EXPECT_THROW(scramble(std::vector<std::uint8_t>{1, 0}, 0), DssocError);
  EXPECT_THROW(scramble(std::vector<std::uint8_t>{1, 0}, 0x80), DssocError);
}

TEST(Scrambler, DifferentSeedsProduceDifferentStreams) {
  const std::vector<std::uint8_t> zeros(64, 0);
  EXPECT_NE(scramble(zeros, 0x5D), scramble(zeros, 0x2A));
}

// --- convolutional code -------------------------------------------------------------

TEST(ConvCode, EncodeRateAndTail) {
  const auto bits = random_bits(64, 21);
  const auto coded = convolutional_encode(bits);
  EXPECT_EQ(coded.size(), 2 * (64 + 6));
}

TEST(ConvCode, DecodeRecoversCleanCodeword) {
  const auto bits = random_bits(64, 23);
  EXPECT_EQ(viterbi_decode(convolutional_encode(bits)), bits);
}

TEST(ConvCode, CorrectsScatteredBitErrors) {
  const auto bits = random_bits(64, 29);
  auto coded = convolutional_encode(bits);
  coded[10] ^= 1;  // three well-separated hard errors
  coded[60] ^= 1;
  coded[110] ^= 1;
  EXPECT_EQ(viterbi_decode(coded), bits);
}

TEST(ConvCode, EmptyPayloadRoundTrips) {
  const std::vector<std::uint8_t> empty;
  const auto coded = convolutional_encode(empty);
  EXPECT_EQ(coded.size(), 12u);
  EXPECT_TRUE(viterbi_decode(coded).empty());
}

TEST(ConvCode, DecoderValidatesInput) {
  EXPECT_THROW(viterbi_decode(std::vector<std::uint8_t>(13, 0)), DssocError);
  EXPECT_THROW(viterbi_decode(std::vector<std::uint8_t>(4, 0)), DssocError);
}

class ConvCodeLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConvCodeLengthSweep, RoundTripAcrossLengths) {
  const auto bits = random_bits(GetParam(), 31 + GetParam());
  EXPECT_EQ(viterbi_decode(convolutional_encode(bits)), bits);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ConvCodeLengthSweep,
                         ::testing::Values(1, 2, 7, 16, 64, 100, 256));

// --- interleaver ---------------------------------------------------------------------

TEST(Interleaver, RoundTripIdentity) {
  const auto bits = random_bits(140, 37);
  EXPECT_EQ(deinterleave(interleave(bits, 10, 14), 10, 14), bits);
}

TEST(Interleaver, DispersesAdjacentBits) {
  std::vector<std::uint8_t> bits(140, 0);
  bits[0] = bits[1] = 1;  // adjacent burst
  const auto out = interleave(bits, 10, 14);
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i]) {
      positions.push_back(i);
    }
  }
  ASSERT_EQ(positions.size(), 2u);
  EXPECT_GE(positions[1] - positions[0], 10u);  // at least a column apart
}

TEST(Interleaver, ValidatesGeometry) {
  const auto bits = random_bits(10, 41);
  EXPECT_THROW(interleave(bits, 3, 4), DssocError);
  EXPECT_THROW(interleave(bits, 0, 10), DssocError);
  EXPECT_THROW(deinterleave(bits, 10, 2), DssocError);
}

// --- QPSK ------------------------------------------------------------------------------

TEST(Qpsk, RoundTripIdentity) {
  const auto bits = random_bits(140, 43);
  EXPECT_EQ(qpsk_demodulate(qpsk_modulate(bits)), bits);
}

TEST(Qpsk, SymbolsHaveUnitEnergy) {
  const auto symbols = qpsk_modulate(random_bits(64, 47));
  for (const cfloat s : symbols) {
    EXPECT_NEAR(magnitude_squared(s), 1.0F, 1e-5F);
  }
}

TEST(Qpsk, RobustToSmallNoise) {
  Rng rng(53);
  const auto bits = random_bits(256, 53);
  auto symbols = qpsk_modulate(bits);
  awgn(symbols, 0.1F, rng);
  EXPECT_EQ(qpsk_demodulate(symbols), bits);
}

TEST(Qpsk, RejectsOddBitCount) {
  EXPECT_THROW(qpsk_modulate(std::vector<std::uint8_t>(3, 0)), DssocError);
}

// --- OFDM pilots -------------------------------------------------------------------------

TEST(Pilots, CapacityExcludesPilotsAndGuards) {
  EXPECT_EQ(ofdm_data_capacity(), 64u - 4u - 2u);
}

TEST(Pilots, RoundTripFullAndPartialSymbols) {
  for (const std::size_t count : {1u, 12u, 30u, 58u}) {
    const auto data = random_signal(count, 59 + count);
    const auto symbol = insert_pilots(data);
    ASSERT_EQ(symbol.size(), kOfdmSubcarriers);
    const auto back = remove_pilots(symbol, count);
    EXPECT_LT(rms_error(back, data), 1e-9);
  }
}

TEST(Pilots, PilotTonesAndGuardsInPlace) {
  const auto symbol = insert_pilots(random_signal(58, 61));
  for (const std::size_t pilot : kPilotIndices) {
    EXPECT_FLOAT_EQ(symbol[pilot].real(), kPilotValue);
    EXPECT_FLOAT_EQ(symbol[pilot].imag(), 0.0F);
  }
  EXPECT_FLOAT_EQ(magnitude_squared(symbol[0]), 0.0F);
  EXPECT_FLOAT_EQ(magnitude_squared(symbol[32]), 0.0F);
  EXPECT_FLOAT_EQ(pilot_average(symbol).real(), kPilotValue);
}

TEST(Pilots, RejectsOverCapacity) {
  EXPECT_THROW(insert_pilots(random_signal(59, 67)), DssocError);
  const auto symbol = insert_pilots(random_signal(10, 71));
  EXPECT_THROW(remove_pilots(symbol, 59), DssocError);
  EXPECT_THROW(remove_pilots(random_signal(32, 73), 1), DssocError);
}

// --- CRC ------------------------------------------------------------------------------------

TEST(Crc, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (standard check value).
  const std::string text = "123456789";
  const std::vector<std::uint8_t> bytes(text.begin(), text.end());
  EXPECT_EQ(crc32_bytes(bytes), 0xCBF43926U);
}

TEST(Crc, AppendAndStripRoundTrip) {
  const auto bits = random_bits(64, 79);
  bool ok = false;
  EXPECT_EQ(check_and_strip_crc(append_crc_bits(bits), ok), bits);
  EXPECT_TRUE(ok);
}

TEST(Crc, DetectsCorruption) {
  const auto bits = random_bits(64, 83);
  auto framed = append_crc_bits(bits);
  framed[5] ^= 1;
  bool ok = true;
  check_and_strip_crc(framed, ok);
  EXPECT_FALSE(ok);
}

TEST(Crc, BitAndByteAgreeOnByteAlignedInput) {
  const std::vector<std::uint8_t> bytes{0xDE, 0xAD, 0xBE, 0xEF};
  std::vector<std::uint8_t> bits;
  for (const auto byte : bytes) {
    for (int i = 0; i < 8; ++i) {
      bits.push_back(static_cast<std::uint8_t>((byte >> i) & 1U));
    }
  }
  EXPECT_EQ(crc32_bits(bits), crc32_bytes(bytes));
}

// --- channel / framing ------------------------------------------------------------------------

TEST(Channel, AwgnZeroStddevIsIdentity) {
  Rng rng(89);
  const auto signal = random_signal(32, 89);
  auto noisy = signal;
  awgn(noisy, 0.0F, rng);
  EXPECT_LT(rms_error(noisy, signal), 1e-12);
}

TEST(Channel, PreambleIsDeterministic) {
  EXPECT_EQ(frame_preamble(64), frame_preamble(64));
  EXPECT_EQ(frame_preamble(64).size(), 64u);
}

class FrameOffsetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameOffsetSweep, MatchedFilterLocatesPreamble) {
  Rng rng(97);
  const auto payload = random_signal(128, 97);
  auto frame = build_frame(payload, 64, GetParam());
  awgn(frame, 0.05F, rng);
  EXPECT_EQ(matched_filter_locate(frame, 64), GetParam());
  const auto extracted = extract_payload(frame, GetParam(), 64, 128);
  EXPECT_LT(rms_error(extracted, payload), 0.2);
}

INSTANTIATE_TEST_SUITE_P(Offsets, FrameOffsetSweep,
                         ::testing::Values(0, 1, 5, 16, 31));

TEST(Channel, ExtractValidatesBounds) {
  const auto frame = build_frame(random_signal(16, 101), 8, 0);
  EXPECT_THROW(extract_payload(frame, 0, 8, 17), DssocError);
  EXPECT_THROW(matched_filter_locate(random_signal(4, 103), 8), DssocError);
}

// --- matrix -------------------------------------------------------------------------------------

TEST(Matrix, TransposeIsInvolution) {
  const auto data = random_signal(6 * 4, 107);
  const auto t = transpose(data, 6, 4);
  const auto back = transpose(t, 4, 6);
  EXPECT_LT(rms_error(back, data), 1e-12);
}

TEST(Matrix, TransposeMapsIndices) {
  std::vector<cfloat> data(2 * 3);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = cfloat(static_cast<float>(i), 0.0F);
  }
  const auto t = transpose(data, 2, 3);
  EXPECT_FLOAT_EQ(t[0].real(), 0.0F);  // t[0][0] = d[0][0]
  EXPECT_FLOAT_EQ(t[1].real(), 3.0F);  // t[0][1] = d[1][0]
  EXPECT_FLOAT_EQ(t[4].real(), 2.0F);  // t[2][0] = d[0][2]
}

TEST(Matrix, RowAccessors) {
  auto data = random_signal(3 * 5, 109);
  const auto row = matrix_row(data, 3, 5, 1);
  EXPECT_EQ(row.size(), 5u);
  std::vector<cfloat> replacement(5, cfloat(1.0F, -1.0F));
  set_matrix_row(data, 3, 5, 2, replacement);
  EXPECT_FLOAT_EQ(data[2 * 5 + 3].real(), 1.0F);
  EXPECT_THROW(matrix_row(data, 3, 5, 3), DssocError);
  EXPECT_THROW(set_matrix_row(data, 3, 5, 0, random_signal(4, 1)), DssocError);
}

}  // namespace
}  // namespace dssoc::dsp
