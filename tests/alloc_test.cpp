// Allocation-model regression tests.
//
// The engine's contract since the zero-allocation PR: after warm-up,
// processing a steady-state task event performs NO heap allocation — ready
// batches go through SmallVec scratch, application instances recycle
// through the AppInstancePool, cost/runfunc lookups are interned, and the
// stats vectors are reserved from the workload's known size. This file
// pins that property with a global operator-new hook (test-binary only):
// doubling the emulated frame — thousands of extra steady-state events —
// must not change the allocation count beyond a small constant (pool
// warm-up to the longer run's peak concurrency).
//
// It also unit-tests the allocation primitives (SmallVec, Pool,
// AppInstancePool) and proves pooled runs are bit-identical to
// DSSOC_POOL_DISABLE=1 runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "apps/registry.hpp"
#include "common/pool.hpp"
#include "common/small_vec.hpp"
#include "core/emulation.hpp"
#include "platform/platform.hpp"

// --- global allocation hook -------------------------------------------------
//
// Counts every operator-new while g_counting is set. Allocation itself is
// malloc-based so the hook is safe during static init and inside libstdc++.
//
// Under AddressSanitizer the hook must stay out: ASan's own operator
// new/delete interceptors provide redzones, poisoning and leak tracking, and
// replacing them with raw malloc would silently disable all of that for the
// whole binary. DSSOC_ALLOC_HOOK is 0 in sanitized builds (GCC defines
// __SANITIZE_ADDRESS__, clang exposes __has_feature(address_sanitizer));
// the counting tests skip, everything else runs under the sanitizer.
#if defined(__SANITIZE_ADDRESS__)
#define DSSOC_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DSSOC_ALLOC_HOOK 0
#else
#define DSSOC_ALLOC_HOOK 1
#endif
#else
#define DSSOC_ALLOC_HOOK 1
#endif

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = nullptr;
  if (align <= alignof(std::max_align_t)) {
    p = std::malloc(size > 0 ? size : 1);
  } else {
    if (posix_memalign(&p, align, size > 0 ? size : align) != 0) {
      p = nullptr;
    }
  }
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

#if DSSOC_ALLOC_HOOK
void* operator new(std::size_t size) { return counted_alloc(size, 0); }
void* operator new[](std::size_t size) { return counted_alloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // DSSOC_ALLOC_HOOK

namespace dssoc::core {
namespace {

/// Allocation count of running `fn` (single-threaded). Meaningful only when
/// the hook is compiled in; sanitized builds skip the counting tests.
template <typename Fn>
std::size_t count_allocations(Fn&& fn) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  std::forward<Fn>(fn)();
  g_counting.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

/// GTEST_SKIP for tests whose assertions are allocation counts.
#define DSSOC_REQUIRE_ALLOC_HOOK()                                        \
  do {                                                                    \
    if (!DSSOC_ALLOC_HOOK) {                                              \
      GTEST_SKIP()                                                        \
          << "operator-new counting hook disabled under AddressSanitizer"; \
    }                                                                     \
  } while (false)

// --- SmallVec ---------------------------------------------------------------

TEST(SmallVec, InlineCapacityAllocatesNothing) {
  DSSOC_REQUIRE_ALLOC_HOOK();
  const std::size_t allocs = count_allocations([] {
    SmallVec<int, 8> vec;
    for (int i = 0; i < 8; ++i) {
      vec.push_back(i);
    }
    vec.clear();
    for (int i = 0; i < 8; ++i) {
      vec.push_back(10 + i);
    }
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(SmallVec, GrowsToHeapAndKeepsCapacityAfterClear) {
  SmallVec<int, 4> vec;
  for (int i = 0; i < 100; ++i) {
    vec.push_back(i);
  }
  ASSERT_EQ(vec.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(vec[static_cast<std::size_t>(i)], i);
  }
  const std::size_t capacity = vec.capacity();
  EXPECT_GE(capacity, 100u);
  // clear() keeps the buffer: refilling to the same size allocates nothing.
  const std::size_t allocs = count_allocations([&] {
    vec.clear();
    for (int i = 0; i < 100; ++i) {
      vec.push_back(i);
    }
  });
  if (DSSOC_ALLOC_HOOK) {
    EXPECT_EQ(allocs, 0u);
  }
  EXPECT_EQ(vec.capacity(), capacity);
}

TEST(SmallVec, EraseIsStable) {
  SmallVec<int, 4> vec{1, 2, 3, 4, 5};
  auto it = vec.erase(vec.begin() + 1);
  EXPECT_EQ(*it, 3);
  it = vec.erase(vec.begin() + 2);  // removes 4
  EXPECT_EQ(*it, 5);
  ASSERT_EQ(vec.size(), 3u);
  EXPECT_EQ(vec[0], 1);
  EXPECT_EQ(vec[1], 3);
  EXPECT_EQ(vec[2], 5);
}

TEST(SmallVec, CopyAndMoveSemantics) {
  SmallVec<std::string, 2> source;
  source.push_back("alpha");
  source.push_back("beta");
  source.push_back("gamma");  // spills to heap

  SmallVec<std::string, 2> copy(source);
  ASSERT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy[2], "gamma");

  SmallVec<std::string, 2> moved(std::move(source));
  ASSERT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[0], "alpha");
  EXPECT_TRUE(source.empty());

  SmallVec<std::string, 2> assigned;
  assigned = moved;
  ASSERT_EQ(assigned.size(), 3u);
  EXPECT_EQ(assigned[1], "beta");

  // Inline move (no heap buffer to steal).
  SmallVec<std::string, 4> small{std::string("x"), std::string("y")};
  SmallVec<std::string, 4> small_moved(std::move(small));
  ASSERT_EQ(small_moved.size(), 2u);
  EXPECT_EQ(small_moved[1], "y");
}

TEST(SmallVec, PushBackOfOwnElementSurvivesGrowth) {
  // std::vector guarantees v.push_back(v[0]) works even when it triggers a
  // reallocation; SmallVec constructs the new element before moving the old
  // buffer, so the aliasing argument stays valid.
  SmallVec<std::string, 2> vec;
  vec.push_back("a rather long string that defeats SSO entirely......");
  vec.push_back("b");
  ASSERT_EQ(vec.size(), vec.capacity());  // next push grows
  vec.push_back(vec[0]);
  ASSERT_EQ(vec.size(), 3u);
  EXPECT_EQ(vec[2], vec[0]);
  EXPECT_EQ(vec[2], "a rather long string that defeats SSO entirely......");
}

TEST(SmallVec, ReverseIterationAndAssign) {
  SmallVec<int, 4> vec{1, 2, 3};
  std::vector<int> reversed(vec.rbegin(), vec.rend());
  EXPECT_EQ(reversed, (std::vector<int>{3, 2, 1}));
  const std::vector<int> other{7, 8, 9, 10, 11};
  vec.assign(other.begin(), other.end());
  ASSERT_EQ(vec.size(), 5u);
  EXPECT_EQ(vec.back(), 11);
}

// --- Pool -------------------------------------------------------------------

TEST(Pool, RoundTripsObjects) {
  Pool<std::string> pool;
  EXPECT_EQ(pool.acquire(), nullptr);
  pool.release(std::make_unique<std::string>("recycled"));
  EXPECT_EQ(pool.free_count(), 1u);
  auto object = pool.acquire();
  ASSERT_NE(object, nullptr);
  EXPECT_EQ(*object, "recycled");
  EXPECT_EQ(pool.free_count(), 0u);
  pool.release(nullptr);  // ignored
  EXPECT_EQ(pool.free_count(), 0u);
}

// --- AppInstancePool --------------------------------------------------------

AppModel pool_test_app() {
  AppBuilder builder("pool_app", "");
  builder.scalar_u32("n", 17)
      .buffer("data", 64)
      .node("A", {"n", "data"}, {}, {{"cpu", "a", ""}})
      .node("B", {"n"}, {"A"}, {{"cpu", "b", ""}});
  return builder.build();
}

/// Field-by-field equality of a recycled instance against a fresh one.
void expect_instance_equals_fresh(AppInstance& recycled, int instance_id,
                                  std::uint64_t seed, const AppModel& model) {
  AppInstance fresh(model, instance_id, seed);
  EXPECT_EQ(recycled.instance_id(), fresh.instance_id());
  EXPECT_EQ(recycled.completed_count(), 0u);
  EXPECT_EQ(recycled.injection_time, fresh.injection_time);
  EXPECT_EQ(recycled.rng().state(), fresh.rng().state());
  ASSERT_EQ(recycled.tasks().size(), fresh.tasks().size());
  for (std::size_t i = 0; i < fresh.tasks().size(); ++i) {
    const TaskInstance& a = recycled.tasks()[i];
    const TaskInstance& b = fresh.tasks()[i];
    EXPECT_EQ(a.state, b.state);
    EXPECT_EQ(a.remaining_predecessors, b.remaining_predecessors);
    EXPECT_EQ(a.pe_id, b.pe_id);
    EXPECT_EQ(a.chosen_platform, b.chosen_platform);
  }
  for (std::size_t v = 0; v < model.variables.size(); ++v) {
    const VarSpec& var = model.variables[v];
    if (var.is_ptr) {
      // Pointer storage holds each instance's *own* heap block address;
      // compare the re-applied block contents and the self-reference.
      void* stored = nullptr;
      std::memcpy(&stored, recycled.arena().storage(v), sizeof(stored));
      EXPECT_EQ(stored, recycled.arena().heap_block(v))
          << "self-reference of variable " << var.name;
      EXPECT_EQ(std::memcmp(recycled.arena().heap_block(v),
                            fresh.arena().heap_block(v), var.ptr_alloc_bytes),
                0)
          << "heap block of variable " << var.name;
    } else {
      EXPECT_EQ(std::memcmp(recycled.arena().storage(v),
                            fresh.arena().storage(v), var.bytes),
                0)
          << "storage of variable " << var.name;
    }
  }
}

TEST(AppInstancePool, RecycledInstanceMatchesFreshConstruction) {
  const AppModel model = pool_test_app();
  AppInstancePool pool;
  ASSERT_FALSE(pool.disabled());

  auto first = pool.acquire(model, 0, 111);
  EXPECT_EQ(pool.constructed(), 1u);
  // Dirty every piece of recyclable state.
  AppInstance* raw = first.get();
  std::uint32_t scribble = 0xDEADBEEF;
  std::memcpy(raw->arena().storage(0), &scribble, sizeof(scribble));
  std::memset(raw->arena().heap_block(1), 0xAB, 64);
  raw->rng().next_u64();
  TaskScratch scratch;
  raw->head_tasks(scratch);
  raw->complete_task(*scratch[0], scratch);
  raw->injection_time = 42;
  pool.release(std::move(first));

  auto second = pool.acquire(model, 7, 999);
  EXPECT_EQ(pool.recycled(), 1u);
  EXPECT_EQ(pool.constructed(), 1u);
  EXPECT_EQ(second.get(), raw);  // same storage, recycled
  expect_instance_equals_fresh(*second, 7, 999, model);
}

TEST(AppInstancePool, SteadyStateAcquireReleaseAllocatesNothing) {
  DSSOC_REQUIRE_ALLOC_HOOK();
  const AppModel model = pool_test_app();
  AppInstancePool pool;
  // Warm-up: materialize one instance and the pool's bookkeeping.
  pool.release(pool.acquire(model, 0, 1));
  const std::size_t allocs = count_allocations([&] {
    for (int i = 1; i < 50; ++i) {
      pool.release(pool.acquire(model, i, static_cast<std::uint64_t>(i)));
    }
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(AppInstancePool, DisableEnvTurnsPoolIntoFactory) {
  const AppModel model = pool_test_app();
  ASSERT_EQ(setenv("DSSOC_POOL_DISABLE", "1", 1), 0);
  {
    AppInstancePool pool;
    EXPECT_TRUE(pool.disabled());
    auto a = pool.acquire(model, 0, 1);
    AppInstance* raw = a.get();
    pool.release(std::move(a));  // dropped, not recycled
    auto b = pool.acquire(model, 1, 2);
    EXPECT_EQ(pool.recycled(), 0u);
    EXPECT_EQ(pool.constructed(), 2u);
    (void)raw;
  }
  ASSERT_EQ(unsetenv("DSSOC_POOL_DISABLE"), 0);
}

// --- engine-level properties ------------------------------------------------

struct EngineFixture {
  EngineFixture() {
    platform = platform::zcu102();
    apps::register_all_kernels(registry);
    library = apps::default_application_library();
  }

  EmulationSetup setup(const std::string& scheduler) const {
    EmulationSetup s;
    s.platform = &platform;
    s.soc = platform::parse_config_label("3C+2F");
    s.apps = &library;
    s.registry = &registry;
    s.cost_model = platform::default_cost_model();
    s.options.scheduler = scheduler;
    s.options.run_kernels = false;  // the timing-study configuration
    s.options.seed = 5;
    return s;
  }

  /// Deterministic arrivals (probability 1) at the fig10 low-rate mix, which
  /// FRFS and RANDOM sustain: concurrency — and therefore the instance pool
  /// — stops growing after warm-up.
  Workload sustained_mix(double frame_ms) const {
    Rng rng(3);
    return make_performance_workload(
        {{"pulse_doppler", sim_from_ms(12.0), 1.0},
         {"range_detection", sim_from_ms(0.8), 1.0},
         {"wifi_tx", sim_from_ms(5.0), 1.0},
         {"wifi_rx", sim_from_ms(5.0), 1.0}},
        sim_from_ms(frame_ms), rng);
  }

  /// A light WiFi-only stream that even the cost-aware policies sustain (MET
  /// serializes onto minimum-execution PEs and EFT's replan overhead grows
  /// with backlog, so the fig10 mix overloads them by design — the paper's
  /// own result — which is pool growth, not steady state).
  Workload sustained_light(double frame_ms) const {
    Rng rng(3);
    return make_performance_workload(
        {{"wifi_tx", sim_from_ms(1.0), 1.0},
         {"wifi_rx", sim_from_ms(1.0), 1.0}},
        sim_from_ms(frame_ms), rng);
  }

  platform::Platform platform;
  SharedObjectRegistry registry;
  ApplicationLibrary library;
};

std::uint64_t stats_digest(const EmulationStats& stats) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const TaskRecord& t : stats.tasks) {
    mix(static_cast<std::uint64_t>(t.app_instance));
    mix(static_cast<std::uint64_t>(t.pe_id));
    mix(static_cast<std::uint64_t>(t.ready_time));
    mix(static_cast<std::uint64_t>(t.dispatch_time));
    mix(static_cast<std::uint64_t>(t.start_time));
    mix(static_cast<std::uint64_t>(t.end_time));
  }
  mix(static_cast<std::uint64_t>(stats.makespan));
  mix(static_cast<std::uint64_t>(stats.scheduling_overhead_total));
  mix(stats.scheduling_events);
  return h;
}

TEST(AllocationModel, SteadyStateTaskEventsAllocateNothing) {
  EngineFixture fx;
  struct Case {
    const char* scheduler;
    bool light;
    double short_frame_ms;
    double long_frame_ms;
  };
  const Case cases[] = {
      {"FRFS", false, 20.0, 40.0},
      {"RANDOM", false, 20.0, 40.0},
      {"MET", true, 100.0, 200.0},
      {"EFT", true, 100.0, 200.0},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.scheduler);
    const Workload short_run = c.light ? fx.sustained_light(c.short_frame_ms)
                                       : fx.sustained_mix(c.short_frame_ms);
    const Workload long_run = c.light ? fx.sustained_light(c.long_frame_ms)
                                      : fx.sustained_mix(c.long_frame_ms);
    EmulationStats short_stats;
    EmulationStats long_stats;
    const std::size_t short_allocs = count_allocations([&] {
      short_stats = run_virtual(fx.setup(c.scheduler), short_run);
    });
    const std::size_t long_allocs = count_allocations([&] {
      long_stats = run_virtual(fx.setup(c.scheduler), long_run);
    });
    // The workload is genuinely sustained: doubling the frame doubles the
    // events, and the makespan tracks the frame instead of diverging.
    const std::size_t extra_events =
        long_stats.scheduling_events - short_stats.scheduling_events;
    ASSERT_GT(extra_events, 1000u);
    ASSERT_LT(long_stats.makespan_ms(), 2.6 * c.long_frame_ms);

    // Both runs pay init (reserves, lookup tables, pool warm-up to peak
    // concurrency); the longer run adds thousands of steady-state events.
    // Those events must be allocation-free: the counts may differ only by
    // a small constant (deeper warm-up — e.g. one more pooled instance at
    // peak, one more SmallVec doubling), never by a per-event term.
    const std::size_t delta = long_allocs > short_allocs
                                  ? long_allocs - short_allocs
                                  : short_allocs - long_allocs;
    if (DSSOC_ALLOC_HOOK) {
      EXPECT_LE(delta, 64u) << "short=" << short_allocs
                            << " long=" << long_allocs
                            << " extra_events=" << extra_events;
      EXPECT_LT(static_cast<double>(delta) /
                    static_cast<double>(extra_events),
                0.01);
    }
  }
}

TEST(AllocationModel, PooledRunsAreBitIdenticalToPoolDisabled) {
  EngineFixture fx;
  const Workload workload = fx.sustained_mix(10.0);
  // Depth 2 exercises the reservation-queue restart after an app's final
  // task completes — the one path that touches engine state while the
  // completed instance is already back in (or, disabled, gone from) the
  // pool. Regression guard: that restart once read the freed task.
  for (const int queue_depth : {1, 2}) {
    for (const char* scheduler : {"FRFS", "EFT", "RANDOM"}) {
      SCOPED_TRACE(std::string(scheduler) + "/depth" +
                   std::to_string(queue_depth));
      EmulationSetup setup = fx.setup(scheduler);
      setup.options.pe_queue_depth = queue_depth;
      const EmulationStats pooled = run_virtual(setup, workload);
      ASSERT_EQ(setenv("DSSOC_POOL_DISABLE", "1", 1), 0);
      const EmulationStats unpooled = run_virtual(setup, workload);
      ASSERT_EQ(unsetenv("DSSOC_POOL_DISABLE"), 0);
      EXPECT_EQ(pooled.makespan, unpooled.makespan);
      EXPECT_EQ(pooled.scheduling_overhead_total,
                unpooled.scheduling_overhead_total);
      EXPECT_EQ(stats_digest(pooled), stats_digest(unpooled));
    }
  }
}

TEST(AllocationModel, SharedPoolAcrossRunsStaysBitIdentical) {
  // The SweepRunner pattern: one pool serving consecutive points.
  EngineFixture fx;
  const Workload workload = fx.sustained_mix(10.0);
  const EmulationStats solo = run_virtual(fx.setup("FRFS"), workload);
  AppInstancePool pool;
  const EmulationStats first =
      run_virtual(fx.setup("FRFS"), workload, &pool);
  const EmulationStats second =
      run_virtual(fx.setup("FRFS"), workload, &pool);
  EXPECT_GT(pool.recycled(), 0u);
  EXPECT_EQ(stats_digest(solo), stats_digest(first));
  EXPECT_EQ(stats_digest(solo), stats_digest(second));
}

}  // namespace
}  // namespace dssoc::core
