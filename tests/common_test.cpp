// Unit tests for the common substrate: RNG determinism and distribution
// sanity, streaming statistics, box-plot summaries, string helpers, and the
// error taxonomy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/atomic_file.hpp"
#include "common/clock.hpp"
#include "common/config_hash.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"

namespace dssoc {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestoresSequence) {
  Rng rng(7);
  const std::uint64_t first = rng.next_u64();
  rng.next_u64();
  rng.reseed(7);
  EXPECT_EQ(rng.next_u64(), first);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5'000; ++i) {
    const std::uint64_t x = rng.next_below(7);
    EXPECT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues reached
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NormalHasApproximatelyUnitVariance) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) {
    stats.add(rng.normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0, 0.05);
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) {
    stats.add(rng.exponential(4.0));
  }
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RunningStats, TracksMinMaxMeanVariance) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, VarianceZeroForSingletonAndEmpty) {
  RunningStats stats;
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  stats.add(42.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 50.0), 2.5);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 50.0), DssocError);
}

TEST(Percentile, ThrowsOutOfRange) {
  EXPECT_THROW(percentile({1.0}, 101.0), DssocError);
}

TEST(FiveNumber, MatchesHandComputedQuartiles) {
  const auto s = five_number_summary({7.0, 15.0, 36.0, 39.0, 40.0, 41.0});
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 41.0);
  EXPECT_DOUBLE_EQ(s.median, 37.5);
  EXPECT_DOUBLE_EQ(s.q1, 20.25);
  EXPECT_DOUBLE_EQ(s.q3, 39.75);
}

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_EQ(sim_from_us(2.5), 2'500);
  EXPECT_EQ(sim_from_ms(1.0), 1'000'000);
  EXPECT_EQ(sim_from_sec(0.001), 1'000'000);
  EXPECT_DOUBLE_EQ(sim_to_us(1'500), 1.5);
  EXPECT_DOUBLE_EQ(sim_to_ms(2'000'000), 2.0);
  EXPECT_DOUBLE_EQ(sim_to_sec(3'000'000'000LL), 3.0);
}

TEST(Stopwatch, ElapsedIsMonotonic) {
  Stopwatch watch;
  const SimTime a = watch.elapsed();
  const SimTime b = watch.elapsed();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimStripsWhitespace) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("wifi_tx", "wifi"));
  EXPECT_FALSE(starts_with("wifi", "wifi_tx"));
  EXPECT_TRUE(ends_with("range_detection.so", ".so"));
  EXPECT_FALSE(ends_with(".so", "range.so"));
}

TEST(Strings, FormatDoubleAndPadding) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

TEST(Strings, CatConcatenatesMixedTypes) {
  EXPECT_EQ(cat("a", 1, '-', 2.5), "a1-2.5");
}

TEST(Crc32, MatchesKnownVector) {
  // The IEEE 802.3 check value: CRC-32 of the ASCII digits "123456789".
  const char digits[] = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Crc32, SeedChainingMatchesOneShot) {
  const char data[] = "split anywhere, same checksum";
  const std::size_t size = sizeof(data) - 1;
  const std::uint32_t whole = crc32(data, size);
  for (std::size_t cut = 0; cut <= size; ++cut) {
    EXPECT_EQ(crc32(data + cut, size - cut, crc32(data, cut)), whole);
  }
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> bytes(64, 0xA5);
  const std::uint32_t clean = crc32(bytes.data(), bytes.size());
  bytes[17] ^= 0x04;
  EXPECT_NE(crc32(bytes.data(), bytes.size()), clean);
}

TEST(Errors, RequireThrowsWithMessage) {
  try {
    DSSOC_REQUIRE(false, "boom");
    FAIL() << "expected throw";
  } catch (const DssocError& error) {
    EXPECT_STREQ(error.what(), "boom");
  }
}

TEST(Errors, ParseErrorCarriesLocation) {
  const ParseError error("bad token", 3, 14);
  EXPECT_EQ(error.line(), 3u);
  EXPECT_EQ(error.column(), 14u);
  EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
}

class PercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweep, MonotoneInP) {
  const std::vector<double> samples{5.0, 1.0, 9.0, 3.0, 7.0};
  const double p = GetParam();
  if (p < 100.0) {
    EXPECT_LE(percentile(samples, p), percentile(samples, p + 0.5));
  }
  EXPECT_GE(percentile(samples, p), 1.0);
  EXPECT_LE(percentile(samples, p), 9.0);
}

INSTANTIATE_TEST_SUITE_P(Percentiles, PercentileSweep,
                         ::testing::Values(0.0, 10.0, 25.0, 33.3, 50.0, 66.7,
                                           75.0, 90.0, 99.5));

// --- config hashing ---------------------------------------------------------

TEST(ConfigHash, DeterministicAndOrderSensitive) {
  const auto two_strings = [](std::string_view a, std::string_view b) {
    ConfigHasher hasher;
    return hasher.str(a).str(b).digest();
  };
  EXPECT_EQ(two_strings("FRFS", "EFT"), two_strings("FRFS", "EFT"));
  EXPECT_NE(two_strings("FRFS", "EFT"), two_strings("EFT", "FRFS"));
  // Length framing: field boundaries cannot alias.
  EXPECT_NE(two_strings("ab", "c"), two_strings("a", "bc"));
}

TEST(ConfigHash, TypeTagsKeepEqualBitPatternsDistinct) {
  ConfigHasher a;
  ConfigHasher b;
  a.u32(0);
  b.u64(0);
  EXPECT_NE(a.digest(), b.digest());
  ConfigHasher c;
  ConfigHasher d;
  c.boolean(true);
  d.u8(1);
  EXPECT_NE(c.digest(), d.digest());
}

TEST(ConfigHash, EveryFieldKindMovesTheDigest) {
  ConfigHasher base;
  const std::uint64_t empty = base.digest();
  ConfigHasher hasher;
  hasher.u8(1).u32(2).u64(3).i64(-4).f64(5.5).boolean(false).str("x");
  EXPECT_NE(hasher.digest(), empty);
}

TEST(ConfigHash, BuildFingerprintIsStableWithinOneBinary) {
  EXPECT_EQ(build_fingerprint(), build_fingerprint());
  EXPECT_NE(build_fingerprint(), 0u);
}

TEST(Strings, FormatHex64IsZeroPadded) {
  EXPECT_EQ(format_hex64(0), "0000000000000000");
  EXPECT_EQ(format_hex64(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(format_hex64(0xffffffffffffffffULL), "ffffffffffffffff");
}

// --- atomic file replacement ------------------------------------------------

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(AtomicFile, CreatesThenReplacesWholeFile) {
  const fs::path dir = fs::temp_directory_path() / "dssoc_atomic_file_test";
  fs::create_directories(dir);
  const std::string path = (dir / "artifact.json").string();

  write_file_atomic(path, "first contents\n");
  EXPECT_EQ(slurp(path), "first contents\n");
  write_file_atomic(path, "second contents, different length\n");
  EXPECT_EQ(slurp(path), "second contents, different length\n");

  // The temp file must not survive a successful rename.
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  fs::remove_all(dir);
}

TEST(AtomicFile, UnwritableDirectoryThrowsAndLeavesNothing) {
  EXPECT_THROW(write_file_atomic("/nonexistent-dir/artifact.json", "x"),
               DssocError);
}

}  // namespace
}  // namespace dssoc
