// Tests for the experiment layer: parallel sweep execution (determinism,
// ordering, error propagation, thread resolution) and the BENCH_sweep.json
// artifact writer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "apps/registry.hpp"
#include "core/emulation.hpp"
#include "exp/bench_json.hpp"
#include "exp/sweep.hpp"
#include "platform/platform.hpp"

namespace dssoc::exp {
namespace {

struct Fixture {
  Fixture() {
    platform = platform::zcu102();
    apps::register_all_kernels(registry);
    library = apps::default_application_library();
  }

  SweepPoint point(const std::string& config, const std::string& scheduler,
                   const core::Workload& workload) const {
    SweepPoint p;
    p.label = config + "/" + scheduler;
    p.setup.platform = &platform;
    p.setup.soc = platform::parse_config_label(config);
    p.setup.apps = &library;
    p.setup.registry = &registry;
    p.setup.cost_model = platform::default_cost_model();
    p.setup.options.scheduler = scheduler;
    p.workload = workload;
    return p;
  }

  platform::Platform platform;
  core::SharedObjectRegistry registry;
  core::ApplicationLibrary library;
};

std::vector<SweepPoint> mixed_points(const Fixture& fx) {
  const core::Workload workload = core::make_validation_workload(
      {{"range_detection", 2}, {"wifi_tx", 1}, {"wifi_rx", 1}});
  std::vector<SweepPoint> points;
  for (const char* config : {"1C+0F", "1C+1F", "2C+1F", "3C+2F"}) {
    for (const char* scheduler : {"FRFS", "MET", "EFT", "RANDOM"}) {
      points.push_back(fx.point(config, scheduler, workload));
    }
  }
  return points;
}

TEST(SweepRunner, ResultsArriveInInputOrder) {
  Fixture fx;
  const std::vector<SweepPoint> points = mixed_points(fx);
  const SweepRunner runner(4);
  const std::vector<SweepResult> results = runner.run(points);
  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(results[i].label, points[i].label);
    EXPECT_EQ(results[i].stats.config_label, points[i].setup.soc.label);
    EXPECT_GT(results[i].stats.makespan, 0);
    EXPECT_GE(results[i].wall_ms, 0.0);
  }
}

TEST(SweepRunner, ParallelRunIsBitIdenticalToSerialRun) {
  Fixture fx;
  const std::vector<SweepPoint> points = mixed_points(fx);
  const std::vector<SweepResult> serial = SweepRunner(1).run(points);
  const std::vector<SweepResult> parallel = SweepRunner(4).run(points);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].label);
    EXPECT_EQ(serial[i].stats.makespan, parallel[i].stats.makespan);
    EXPECT_EQ(serial[i].stats.scheduling_overhead_total,
              parallel[i].stats.scheduling_overhead_total);
    ASSERT_EQ(serial[i].stats.tasks.size(), parallel[i].stats.tasks.size());
    for (std::size_t t = 0; t < serial[i].stats.tasks.size(); ++t) {
      EXPECT_EQ(serial[i].stats.tasks[t].end_time,
                parallel[i].stats.tasks[t].end_time);
      EXPECT_EQ(serial[i].stats.tasks[t].pe_id,
                parallel[i].stats.tasks[t].pe_id);
    }
  }
}

TEST(SweepRunner, FunctionalKernelsRunSafelyInParallel) {
  // run_kernels=true executes real DSP kernels (FFT plan cache and all) on
  // pool threads; every point must still complete and stay deterministic.
  Fixture fx;
  const core::Workload workload = core::make_validation_workload(
      {{"wifi_rx", 1}, {"pulse_doppler", 1}});
  std::vector<SweepPoint> points;
  for (int i = 0; i < 6; ++i) {
    points.push_back(fx.point("2C+1F", "FRFS", workload));
  }
  const std::vector<SweepResult> results = SweepRunner(3).run(points);
  ASSERT_EQ(results.size(), 6u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].stats.makespan, results[0].stats.makespan);
  }
}

TEST(SweepRunner, FirstErrorByInputOrderIsRethrown) {
  Fixture fx;
  const core::Workload workload =
      core::make_validation_workload({{"wifi_tx", 1}});
  std::vector<SweepPoint> points;
  points.push_back(fx.point("1C+0F", "FRFS", workload));
  points.push_back(fx.point("1C+0F", "BOGUS", workload));  // unknown policy
  EXPECT_THROW(SweepRunner(2).run(points), ConfigError);
}

TEST(SweepRunner, EmptySweepYieldsEmptyResults) {
  EXPECT_TRUE(SweepRunner(2).run({}).empty());
}

TEST(SweepRunner, ThreadResolution) {
  EXPECT_EQ(SweepRunner(3).threads(), 3);
  EXPECT_GE(SweepRunner(0).threads(), 1);  // env var or hardware fallback
  EXPECT_GE(SweepRunner::resolve_threads(-5), 1);
}

TEST(PointSeed, DistinctAndDeterministic) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 256; ++i) {
    seeds.insert(point_seed(1, i));
  }
  EXPECT_EQ(seeds.size(), 256u);
  EXPECT_EQ(point_seed(1, 7), point_seed(1, 7));
  EXPECT_NE(point_seed(1, 7), point_seed(2, 7));
}

TEST(BenchJson, DocumentShape) {
  Fixture fx;
  const core::Workload workload =
      core::make_validation_workload({{"wifi_tx", 1}});
  const std::vector<SweepResult> results =
      SweepRunner(1).run({fx.point("1C+0F", "FRFS", workload)});
  const json::Value doc = sweep_to_json("unit_test", 2, 12.5, results);
  EXPECT_EQ(doc.at("bench").as_string(), "unit_test");
  EXPECT_EQ(doc.at("threads").as_int(), 2);
  EXPECT_EQ(doc.at("point_count").as_int(), 1);
  const json::Array& points = doc.at("points").as_array();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].at("label").as_string(), "1C+0F/FRFS");
  EXPECT_EQ(points[0].at("scheduler").as_string(), "FRFS");
  EXPECT_EQ(points[0].at("tasks").as_int(), 7);
  EXPECT_GT(points[0].at("makespan_ms").as_double(), 0.0);
  EXPECT_GE(points[0].at("wall_ms").as_double(), 0.0);
}

TEST(BenchJson, WriteAndParseRoundTrip) {
  Fixture fx;
  const core::Workload workload =
      core::make_validation_workload({{"range_detection", 1}});
  const std::vector<SweepResult> results =
      SweepRunner(1).run({fx.point("2C+0F", "FRFS", workload)});
  const std::string path = "exp_test_sweep.json";
  write_json_file(path, sweep_to_json("roundtrip", 1, 1.0, results));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const json::Value parsed = json::parse(buffer.str());
  EXPECT_EQ(parsed.at("bench").as_string(), "roundtrip");
  EXPECT_EQ(parsed.at("points").as_array().size(), 1u);
  std::remove(path.c_str());
}

TEST(BenchJson, UnwritablePathThrows) {
  EXPECT_THROW(write_json_file("/nonexistent-dir/x.json", json::Value(1)),
               DssocError);
}

}  // namespace
}  // namespace dssoc::exp
