// Tests for the experiment layer: parallel sweep execution (determinism,
// ordering, error propagation, thread resolution) and the BENCH_sweep.json
// artifact writer.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "apps/registry.hpp"
#include "core/emulation.hpp"
#include "exp/aggregate.hpp"
#include "exp/bench_json.hpp"
#include "exp/sweep.hpp"
#include "platform/platform.hpp"

namespace dssoc::exp {
namespace {

struct Fixture {
  Fixture() {
    platform = platform::zcu102();
    apps::register_all_kernels(registry);
    library = apps::default_application_library();
  }

  SweepPoint point(const std::string& config, const std::string& scheduler,
                   const core::Workload& workload) const {
    SweepPoint p;
    p.label = config + "/" + scheduler;
    p.setup.platform = &platform;
    p.setup.soc = platform::parse_config_label(config);
    p.setup.apps = &library;
    p.setup.registry = &registry;
    p.setup.cost_model = platform::default_cost_model();
    p.setup.options.scheduler = scheduler;
    p.workload = workload;
    return p;
  }

  platform::Platform platform;
  core::SharedObjectRegistry registry;
  core::ApplicationLibrary library;
};

std::vector<SweepPoint> mixed_points(const Fixture& fx) {
  const core::Workload workload = core::make_validation_workload(
      {{"range_detection", 2}, {"wifi_tx", 1}, {"wifi_rx", 1}});
  std::vector<SweepPoint> points;
  for (const char* config : {"1C+0F", "1C+1F", "2C+1F", "3C+2F"}) {
    for (const char* scheduler : {"FRFS", "MET", "EFT", "RANDOM"}) {
      points.push_back(fx.point(config, scheduler, workload));
    }
  }
  return points;
}

TEST(SweepRunner, ResultsArriveInInputOrder) {
  Fixture fx;
  const std::vector<SweepPoint> points = mixed_points(fx);
  const SweepRunner runner(4);
  const std::vector<SweepResult> results = runner.run(points);
  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(results[i].label, points[i].label);
    EXPECT_EQ(results[i].stats.config_label, points[i].setup.soc.label);
    EXPECT_GT(results[i].stats.makespan, 0);
    EXPECT_GE(results[i].wall_ms, 0.0);
  }
}

TEST(SweepRunner, ParallelRunIsBitIdenticalToSerialRun) {
  Fixture fx;
  const std::vector<SweepPoint> points = mixed_points(fx);
  const std::vector<SweepResult> serial = SweepRunner(1).run(points);
  const std::vector<SweepResult> parallel = SweepRunner(4).run(points);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].label);
    EXPECT_EQ(serial[i].stats.makespan, parallel[i].stats.makespan);
    EXPECT_EQ(serial[i].stats.scheduling_overhead_total,
              parallel[i].stats.scheduling_overhead_total);
    ASSERT_EQ(serial[i].stats.tasks.size(), parallel[i].stats.tasks.size());
    for (std::size_t t = 0; t < serial[i].stats.tasks.size(); ++t) {
      EXPECT_EQ(serial[i].stats.tasks[t].end_time,
                parallel[i].stats.tasks[t].end_time);
      EXPECT_EQ(serial[i].stats.tasks[t].pe_id,
                parallel[i].stats.tasks[t].pe_id);
    }
  }
}

TEST(SweepRunner, FunctionalKernelsRunSafelyInParallel) {
  // run_kernels=true executes real DSP kernels (FFT plan cache and all) on
  // pool threads; every point must still complete and stay deterministic.
  Fixture fx;
  const core::Workload workload = core::make_validation_workload(
      {{"wifi_rx", 1}, {"pulse_doppler", 1}});
  std::vector<SweepPoint> points;
  for (int i = 0; i < 6; ++i) {
    points.push_back(fx.point("2C+1F", "FRFS", workload));
  }
  const std::vector<SweepResult> results = SweepRunner(3).run(points);
  ASSERT_EQ(results.size(), 6u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].stats.makespan, results[0].stats.makespan);
  }
}

TEST(SweepRunner, FirstErrorByInputOrderIsRethrown) {
  Fixture fx;
  const core::Workload workload =
      core::make_validation_workload({{"wifi_tx", 1}});
  std::vector<SweepPoint> points;
  points.push_back(fx.point("1C+0F", "FRFS", workload));
  points.push_back(fx.point("1C+0F", "BOGUS", workload));  // unknown policy
  // The rethrow keeps the dynamic type (ConfigError stays catchable as
  // ConfigError) and prepends which point died, by index and label.
  try {
    SweepRunner(2).run(points);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("sweep point 1 (1C+0F/BOGUS)"),
              std::string::npos)
        << e.what();
  }
}

TEST(SweepRunner, EmptySweepYieldsEmptyResults) {
  EXPECT_TRUE(SweepRunner(2).run({}).empty());
}

TEST(SweepRunner, ThreadResolution) {
  EXPECT_EQ(SweepRunner(3).threads(), 3);
  EXPECT_GE(SweepRunner(0).threads(), 1);  // env var or hardware fallback
  EXPECT_GE(SweepRunner::resolve_threads(-5), 1);
}

TEST(PointSeed, DistinctAndDeterministic) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 256; ++i) {
    seeds.insert(point_seed(1, i));
  }
  EXPECT_EQ(seeds.size(), 256u);
  EXPECT_EQ(point_seed(1, 7), point_seed(1, 7));
  EXPECT_NE(point_seed(1, 7), point_seed(2, 7));
}

TEST(BenchJson, DocumentShape) {
  Fixture fx;
  const core::Workload workload =
      core::make_validation_workload({{"wifi_tx", 1}});
  const std::vector<SweepResult> results =
      SweepRunner(1).run({fx.point("1C+0F", "FRFS", workload)});
  const json::Value doc = sweep_to_json("unit_test", 2, 12.5, results);
  EXPECT_EQ(doc.at("schema_version").as_int(), 5);
  EXPECT_EQ(doc.at("saturated_count").as_int(), 0);
  EXPECT_EQ(doc.at("bench").as_string(), "unit_test");
  EXPECT_EQ(doc.at("threads").as_int(), 2);
  EXPECT_EQ(doc.at("point_count").as_int(), 1);
  EXPECT_EQ(doc.at("failed_count").as_int(), 0);
  EXPECT_EQ(doc.at("fabric").as_string(), "inproc");
  EXPECT_EQ(doc.at("worker_respawns").as_int(), 0);
  EXPECT_FALSE(doc.at("resumed").as_bool());
  EXPECT_EQ(doc.at("journal_points_reused").as_int(), 0);
  EXPECT_EQ(doc.at("interrupted").as_int(), 0);
  const json::Array& points = doc.at("points").as_array();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].at("label").as_string(), "1C+0F/FRFS");
  EXPECT_EQ(points[0].at("status").as_string(), "ok");
  EXPECT_EQ(points[0].at("source").as_string(), "run");
  EXPECT_EQ(points[0].at("retries").as_int(), 0);
  // The bit-identity proof key: 16 hex digits of the stats digest.
  EXPECT_EQ(points[0].at("digest").as_string().size(), 16u);
  EXPECT_EQ(points[0].at("scheduler").as_string(), "FRFS");
  EXPECT_EQ(points[0].at("tasks").as_int(), 7);
  EXPECT_GT(points[0].at("makespan_ms").as_double(), 0.0);
  EXPECT_GE(points[0].at("wall_ms").as_double(), 0.0);
}

TEST(BenchJson, FailedPointsCarryStatusNotMeasurements) {
  std::vector<SweepResult> results(2);
  results[0].label = "cfg/ok";
  results[0].stats.makespan = sim_from_ms(5.0);
  results[1].label = "cfg/bad";
  results[1].status = PointStatus::kFailed;
  results[1].error = "sweep point 1 (cfg/bad): worker crashed (signal 9)";
  results[1].retries = 2;
  SweepArtifactMeta meta;
  meta.fabric = "proc";
  meta.worker_respawns = 3;
  const json::Value doc = sweep_to_json("unit_test", 2, 1.0, results, meta);
  EXPECT_EQ(doc.at("fabric").as_string(), "proc");
  EXPECT_EQ(doc.at("worker_respawns").as_int(), 3);
  EXPECT_EQ(doc.at("failed_count").as_int(), 1);
  const json::Array& points = doc.at("points").as_array();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].at("status").as_string(), "ok");
  EXPECT_TRUE(points[0].as_object().contains("makespan_ms"));
  EXPECT_EQ(points[1].at("status").as_string(), "failed");
  EXPECT_EQ(points[1].at("retries").as_int(), 2);
  EXPECT_EQ(points[1].at("error").as_string(),
            "sweep point 1 (cfg/bad): worker crashed (signal 9)");
  // A failed point has no meaningful stats, so no measurement keys at all —
  // their absence is what bench_compare.py keys on.
  EXPECT_FALSE(points[1].as_object().contains("makespan_ms"));
  EXPECT_FALSE(points[1].as_object().contains("wall_ms"));
}

TEST(BenchJson, WriteAndParseRoundTrip) {
  Fixture fx;
  const core::Workload workload =
      core::make_validation_workload({{"range_detection", 1}});
  const std::vector<SweepResult> results =
      SweepRunner(1).run({fx.point("2C+0F", "FRFS", workload)});
  const std::string path = "exp_test_sweep.json";
  write_json_file(path, sweep_to_json("roundtrip", 1, 1.0, results));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const json::Value parsed = json::parse(buffer.str());
  EXPECT_EQ(parsed.at("bench").as_string(), "roundtrip");
  EXPECT_EQ(parsed.at("points").as_array().size(), 1u);
  std::remove(path.c_str());
}

TEST(BenchJson, UnwritablePathThrows) {
  EXPECT_THROW(write_json_file("/nonexistent-dir/x.json", json::Value(1)),
               DssocError);
}

// --- fork mode --------------------------------------------------------------

core::Workload perf_workload(double frame_ms) {
  Rng rng(3);
  return core::make_performance_workload(
      {{"wifi_tx", sim_from_ms(1.0), 1.0},
       {"wifi_rx", sim_from_ms(1.0), 1.0}},
      sim_from_ms(frame_ms), rng);
}

// EmulationStats::digest() hashes the full checkpoint encoding — strictly
// stronger than the old hand-rolled field hash this helper used to be.
std::uint64_t result_digest(const SweepResult& result) {
  return result.stats.digest();
}

/// Warm-up snapshot plus composite (warm-up prefix + shifted tail) points —
/// the fig10 fork-sweep pattern in miniature.
struct ForkSweep {
  SweepRunner::Warmup warm;
  std::vector<SweepPoint> points;
};

ForkSweep make_fork_sweep(const Fixture& fx, const std::string& scheduler) {
  const core::Workload warmup = perf_workload(2.0);
  SweepPoint base = fx.point("3C+2F", scheduler, warmup);
  base.setup.options.run_kernels = false;
  ForkSweep sweep;
  sweep.warm =
      SweepRunner::warm_up(base.setup, warmup, sim_from_ms(2.0));
  const SimTime offset = sweep.warm.snapshot.virtual_time();
  for (int i = 0; i < 4; ++i) {
    SweepPoint point = base;
    point.label = "3C+2F/" + scheduler + "/tail" + std::to_string(i);
    core::Workload tail = perf_workload(0.5 + 0.5 * i);
    point.workload.entries = warmup.entries;
    for (core::WorkloadEntry& entry : tail.entries) {
      entry.arrival += offset;
      point.workload.entries.push_back(std::move(entry));
    }
    sweep.points.push_back(std::move(point));
  }
  return sweep;
}

TEST(SweepRunnerFork, ForkedSweepIsBitIdenticalToColdSweep) {
  Fixture fx;
  const ForkSweep sweep = make_fork_sweep(fx, "FRFS");
  ASSERT_TRUE(sweep.warm.snapshot.quiescent());
  ASSERT_GE(sweep.warm.wall_ms, 0.0);

  // Thread-count sweep: serial, small pool, and the hardware default. Both
  // modes must return input-ordered, bit-identical results at every width.
  const std::vector<SweepResult> reference =
      SweepRunner(1).run(sweep.points);
  for (const int threads : {1, 4, 0}) {
    SCOPED_TRACE(threads);
    const SweepRunner runner(threads);
    const std::vector<SweepResult> cold = runner.run(sweep.points);
    const std::vector<SweepResult> forked =
        runner.run_forked(sweep.points, sweep.warm.snapshot);
    ASSERT_EQ(cold.size(), sweep.points.size());
    ASSERT_EQ(forked.size(), sweep.points.size());
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
      EXPECT_EQ(cold[i].label, sweep.points[i].label);
      EXPECT_EQ(forked[i].label, sweep.points[i].label);
      EXPECT_EQ(result_digest(cold[i]), result_digest(reference[i]));
      EXPECT_EQ(result_digest(forked[i]), result_digest(reference[i]));
    }
  }
}

TEST(SweepRunnerFork, PointSeedStreamsAreThreadCountInvariant) {
  // point_seed is pure, but drivers derive per-point seeds before the pool
  // ever runs; pin that the (seed, index) -> stream mapping the sweep
  // observes cannot depend on DSSOC_SWEEP_THREADS or pool width.
  std::vector<std::uint64_t> expected;
  for (std::size_t i = 0; i < 16; ++i) {
    expected.push_back(point_seed(42, i));
  }
  for (const char* threads : {"1", "4", "16"}) {
    ASSERT_EQ(setenv("DSSOC_SWEEP_THREADS", threads, 1), 0);
    EXPECT_EQ(SweepRunner(0).threads(), std::atoi(threads));
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(point_seed(42, i), expected[i]);
    }
  }
  ASSERT_EQ(unsetenv("DSSOC_SWEEP_THREADS"), 0);
}

TEST(SweepRunnerFork, MidSweepFailurePropagatesInBothModes) {
  Fixture fx;
  ForkSweep sweep = make_fork_sweep(fx, "FRFS");

  {  // cold mode: an unknown policy mid-sweep (healthy points around it)
    std::vector<SweepPoint> points = sweep.points;
    points[1].setup.options.scheduler = "BOGUS";
    EXPECT_THROW(SweepRunner(2).run(points), ConfigError);
  }
  {  // fork mode: a mid-sweep point whose tail violates the fork contract
     // (arrival before the snapshot's virtual time) throws StateError
     // through the same first-by-input-order rethrow.
    std::vector<SweepPoint> points = sweep.points;
    core::WorkloadEntry early;
    early.app_name = "wifi_tx";
    early.arrival = 0;
    points[2].workload.entries.push_back(std::move(early));
    EXPECT_THROW(SweepRunner(2).run_forked(points, sweep.warm.snapshot),
                 StateError);
  }
}

TEST(SweepRunnerFork, PoolDisabledParity) {
  Fixture fx;
  const ForkSweep sweep = make_fork_sweep(fx, "EFT");
  const std::vector<SweepResult> pooled_cold =
      SweepRunner(2).run(sweep.points);
  const std::vector<SweepResult> pooled_fork =
      SweepRunner(2).run_forked(sweep.points, sweep.warm.snapshot);

  ASSERT_EQ(setenv("DSSOC_POOL_DISABLE", "1", 1), 0);
  const std::vector<SweepResult> bare_cold = SweepRunner(2).run(sweep.points);
  const std::vector<SweepResult> bare_fork =
      SweepRunner(2).run_forked(sweep.points, sweep.warm.snapshot);
  ASSERT_EQ(unsetenv("DSSOC_POOL_DISABLE"), 0);

  for (std::size_t i = 0; i < sweep.points.size(); ++i) {
    SCOPED_TRACE(sweep.points[i].label);
    EXPECT_EQ(result_digest(bare_cold[i]), result_digest(pooled_cold[i]));
    EXPECT_EQ(result_digest(bare_fork[i]), result_digest(pooled_fork[i]));
    EXPECT_EQ(result_digest(pooled_fork[i]), result_digest(pooled_cold[i]));
  }
}

// --- aggregation ------------------------------------------------------------

std::vector<SweepResult> fake_results() {
  // Two "configs" x three "iterations", fig9-label style, with makespans
  // chosen so the reductions are easy to verify by hand.
  std::vector<SweepResult> results;
  const struct {
    const char* label;
    double makespan_ms;
    std::size_t events;
  } rows[] = {
      {"1C+1F/iter0", 10.0, 5}, {"1C+1F/iter1", 30.0, 5},
      {"1C+1F/iter2", 20.0, 5}, {"3C+2F/iter0", 2.0, 10},
      {"3C+2F/iter1", 4.0, 10}, {"3C+2F/iter2", 6.0, 10},
  };
  for (const auto& row : rows) {
    SweepResult result;
    result.label = row.label;
    result.stats.makespan = sim_from_ms(row.makespan_ms);
    result.stats.scheduling_events = row.events;
    result.stats.scheduling_overhead_total = sim_from_ms(1.0);
    results.push_back(std::move(result));
  }
  return results;
}

TEST(Aggregation, GroupsByLabelPrefixInFirstAppearanceOrder) {
  const std::vector<SweepResult> results = fake_results();
  const Aggregation aggregation = Aggregation::by_label_prefix(results);
  ASSERT_EQ(aggregation.groups().size(), 2u);
  EXPECT_EQ(aggregation.groups()[0].key, "1C+1F");
  EXPECT_EQ(aggregation.groups()[1].key, "3C+2F");

  const ResultGroup& first = aggregation.groups()[0];
  ASSERT_EQ(first.members.size(), 3u);
  EXPECT_EQ(first.makespans_ms(), (std::vector<double>{10.0, 30.0, 20.0}));
  EXPECT_DOUBLE_EQ(first.mean_makespan_ms(), 20.0);
  const FiveNumberSummary summary = first.makespan_summary_ms();
  EXPECT_DOUBLE_EQ(summary.min, 10.0);
  EXPECT_DOUBLE_EQ(summary.median, 20.0);
  EXPECT_DOUBLE_EQ(summary.max, 30.0);
  // Representative = the group's last point (the legacy utilization row).
  EXPECT_EQ(&first.representative(), &results[2].stats);

  const ResultGroup* found = aggregation.find("3C+2F");
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->mean_makespan_ms(), 4.0);
  EXPECT_EQ(aggregation.find("9C+9F"), nullptr);
}

TEST(Aggregation, CustomKeyAndOverheadReduction) {
  const std::vector<SweepResult> results = fake_results();
  const Aggregation by_events = Aggregation::by(
      results, [](const SweepResult& result) {
        return std::to_string(result.stats.scheduling_events) + "ev";
      });
  ASSERT_EQ(by_events.groups().size(), 2u);
  const ResultGroup* five = by_events.find("5ev");
  ASSERT_NE(five, nullptr);
  EXPECT_EQ(five->members.size(), 3u);
  // avg overhead per event = 1 ms / 5 events = 200 us for each member.
  EXPECT_NEAR(five->mean_avg_sched_overhead_us(), 200.0, 1e-9);
  // A label with no '/' forms its own group under the prefix convention.
  std::vector<SweepResult> bare(1);
  bare[0].label = "solo";
  const Aggregation solo = Aggregation::by_label_prefix(bare);
  ASSERT_EQ(solo.groups().size(), 1u);
  EXPECT_EQ(solo.groups()[0].key, "solo");
}

TEST(Aggregation, FailedMembersAreExcludedFromReductions) {
  std::vector<SweepResult> results = fake_results();
  results[1].status = PointStatus::kFailed;  // 1C+1F/iter1, the 30 ms point
  const Aggregation aggregation = Aggregation::by_label_prefix(results);
  const ResultGroup* group = aggregation.find("1C+1F");
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->members.size(), 3u);  // failed members still belong
  EXPECT_EQ(group->ok_count(), 2u);
  EXPECT_EQ(group->failed_count(), 1u);
  EXPECT_FALSE(group->all_ok());
  EXPECT_EQ(group->makespans_ms(), (std::vector<double>{10.0, 20.0}));
  EXPECT_DOUBLE_EQ(group->mean_makespan_ms(), 15.0);
  const ResultGroup* other = aggregation.find("3C+2F");
  ASSERT_NE(other, nullptr);
  EXPECT_TRUE(other->all_ok());
}

TEST(Aggregation, RepresentativeSkipsFailedTail) {
  std::vector<SweepResult> results = fake_results();
  results[2].status = PointStatus::kFailed;  // the group's last member
  const Aggregation aggregation = Aggregation::by_label_prefix(results);
  const ResultGroup* group = aggregation.find("1C+1F");
  ASSERT_NE(group, nullptr);
  // Last *ok* member, not last member.
  EXPECT_EQ(&group->representative(), &results[1].stats);
}

TEST(Aggregation, AllFailedGroupRefusesToSummarize) {
  std::vector<SweepResult> results = fake_results();
  results[0].status = PointStatus::kFailed;
  results[1].status = PointStatus::kFailed;
  results[2].status = PointStatus::kFailed;
  const Aggregation aggregation = Aggregation::by_label_prefix(results);
  const ResultGroup* group = aggregation.find("1C+1F");
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->ok_count(), 0u);
  EXPECT_TRUE(group->makespans_ms().empty());
  EXPECT_THROW(group->representative(), DssocError);
  EXPECT_THROW(group->mean_avg_sched_overhead_us(), DssocError);
}

}  // namespace
}  // namespace dssoc::exp
