// Checkpoint subsystem tests: the state_io stream primitives, the
// value-level save/load of AppInstance / VariableArena / AppInstancePool /
// EmulationStats, and the engine-level contract — a snapshot taken at any
// workload-manager cycle boundary restores bit-identically (same workload),
// and a quiescent snapshot forks onto an extended workload with results
// byte-equal to emulating the composite workload cold.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "common/state_io.hpp"
#include "core/app_instance.hpp"
#include "core/checkpoint.hpp"
#include "core/emulation.hpp"
#include "platform/platform.hpp"

namespace dssoc::core {
namespace {

// --- state_io ---------------------------------------------------------------

constexpr std::uint32_t kTestKind = state_tag('T', 'E', 'S', 'T');
constexpr std::uint32_t kTagA = state_tag('A', 'A', 'A', 'A');
constexpr std::uint32_t kTagB = state_tag('B', 'B', 'B', 'B');

TEST(StateIo, PrimitivesRoundTrip) {
  StateWriter out(kTestKind);
  out.begin_section(kTagA);
  out.u8(7);
  out.u32(0xDEADBEEFu);
  out.u64(0x0123456789ABCDEFull);
  out.i32(-42);
  out.i64(-1234567890123LL);
  out.f64(2.5);
  out.str("hello checkpoint");
  const std::uint8_t raw[3] = {1, 2, 3};
  out.bytes(raw, sizeof(raw));
  out.end_section();
  const std::vector<std::uint8_t> bytes = out.take();

  StateReader in(bytes.data(), bytes.size(), kTestKind);
  in.begin_section(kTagA);
  EXPECT_EQ(in.u8(), 7u);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.i32(), -42);
  EXPECT_EQ(in.i64(), -1234567890123LL);
  EXPECT_EQ(in.f64(), 2.5);
  EXPECT_EQ(in.str(), "hello checkpoint");
  std::uint8_t back[3] = {};
  in.bytes(back, sizeof(back));
  EXPECT_EQ(std::memcmp(back, raw, sizeof(raw)), 0);
  in.end_section();
  EXPECT_TRUE(in.at_end());
}

TEST(StateIo, SkipSectionStepsOverUnknownContent) {
  StateWriter out(kTestKind);
  out.begin_section(kTagA);
  out.str("engine-specific state the loader has no use for");
  out.u64(99);
  out.end_section();
  out.begin_section(kTagB);
  out.u32(5);
  out.end_section();
  const std::vector<std::uint8_t> bytes = out.take();

  StateReader in(bytes.data(), bytes.size(), kTestKind);
  EXPECT_EQ(in.begin_section(), kTagA);
  in.skip_section();
  in.begin_section(kTagB);
  EXPECT_EQ(in.u32(), 5u);
  in.end_section();
  EXPECT_TRUE(in.at_end());
}

TEST(StateIo, SectionDriftFailsLoudly) {
  StateWriter out(kTestKind);
  out.begin_section(kTagA);
  out.u32(1);
  out.u32(2);
  out.end_section();
  const std::vector<std::uint8_t> bytes = out.take();

  StateReader in(bytes.data(), bytes.size(), kTestKind);
  in.begin_section(kTagA);
  in.u32();  // one of two values consumed
  EXPECT_THROW(in.end_section(), StateError);
}

TEST(StateIo, WrongExpectedTagThrows) {
  StateWriter out(kTestKind);
  out.begin_section(kTagA);
  out.end_section();
  const std::vector<std::uint8_t> bytes = out.take();
  StateReader in(bytes.data(), bytes.size(), kTestKind);
  EXPECT_THROW(in.begin_section(kTagB), StateError);
}

TEST(StateIo, TruncatedStreamThrows) {
  StateWriter out(kTestKind);
  out.begin_section(kTagA);
  out.u64(12345);
  out.end_section();
  std::vector<std::uint8_t> bytes = out.take();
  bytes.resize(bytes.size() - 4);  // chop mid-value
  // Since format v2 the CRC-32 trailer check rejects the stream already at
  // construction: the chopped stream's last four bytes are payload, not its
  // checksum.
  EXPECT_THROW(StateReader(bytes.data(), bytes.size(), kTestKind),
               StateError);
}

TEST(StateIo, CrcTrailerCatchesPayloadBitFlip) {
  StateWriter out(kTestKind);
  out.begin_section(kTagA);
  out.u64(0x0123456789ABCDEFull);
  out.str("payload bytes the corruption lands in");
  out.end_section();
  std::vector<std::uint8_t> bytes = out.take();
  // Flip one bit well past the header: magic, version and kind all still
  // pass, so the CRC-32 trailer is the only thing standing between this
  // stream and a silent mis-load.
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_THROW(StateReader(bytes.data(), bytes.size(), kTestKind),
               StateError);
}

TEST(StateIo, CrcTrailerCatchesTrailerCorruption) {
  StateWriter out(kTestKind);
  out.begin_section(kTagA);
  out.u32(7);
  out.end_section();
  std::vector<std::uint8_t> bytes = out.take();
  bytes.back() ^= 0xFF;  // damage the stored checksum itself
  EXPECT_THROW(StateReader(bytes.data(), bytes.size(), kTestKind),
               StateError);
}

TEST(StateIo, MissingCrcTrailerThrows) {
  StateWriter out(kTestKind);
  std::vector<std::uint8_t> bytes = out.take();
  bytes.resize(bytes.size() - 4);  // header only, trailer chopped entirely
  EXPECT_THROW(StateReader(bytes.data(), bytes.size(), kTestKind),
               StateError);
}

TEST(StateIo, HeaderValidationRejectsLoudly) {
  StateWriter out(kTestKind);
  const std::vector<std::uint8_t> good = out.take();

  // Too short for a header at all.
  EXPECT_THROW(StateReader(good.data(), 4, kTestKind), StateError);

  // Wrong magic (byte-patch the first header word).
  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(StateReader(bad_magic.data(), bad_magic.size(), kTestKind),
               StateError);

  // Wrong format version: the version rule says REJECT, never reinterpret.
  std::vector<std::uint8_t> bad_version = good;
  bad_version[4] ^= 0xFF;
  EXPECT_THROW(StateReader(bad_version.data(), bad_version.size(), kTestKind),
               StateError);

  // Right format, wrong payload kind.
  EXPECT_THROW(StateReader(good.data(), good.size(), kTagA), StateError);
}

// --- AppInstance / VariableArena / AppInstancePool --------------------------

AppModel checkpoint_test_app() {
  AppBuilder builder("ckpt_app", "");
  builder.scalar_u32("n", 17)
      .buffer("data", 64)
      .node("A", {"n", "data"}, {}, {{"cpu", "a", ""}})
      .node("B", {"n"}, {"A"}, {{"cpu", "b", ""}});
  return builder.build();
}

std::vector<std::uint8_t> save_instance(const AppInstance& instance) {
  StateWriter out(kEngineSnapshotKind);
  instance.save(out);
  return out.take();
}

TEST(AppInstanceCheckpoint, RoundTripsRuntimeState) {
  const AppModel model = checkpoint_test_app();
  AppInstance source(model, 3, 77);
  source.injection_time = 42;
  source.rng().next_u64();
  TaskScratch scratch;
  source.head_tasks(scratch);
  TaskInstance& head = *scratch[0];
  head.ready_time = 10;
  head.dispatch_time = 11;
  head.start_time = 12;
  head.end_time = 20;
  head.pe_id = 2;
  head.chosen_platform = &head.node->platforms[0];
  source.complete_task(head, scratch);
  std::uint32_t scribble = 0xFEEDFACE;
  std::memcpy(source.arena().storage(0), &scribble, sizeof(scribble));
  const std::vector<std::uint8_t> bytes = save_instance(source);

  // Identity is framed by the engine, not the instance: load into a
  // different identity and everything but id/model adopts the snapshot.
  AppInstance target(model, 9, 12345);
  StateReader in(bytes.data(), bytes.size(), kEngineSnapshotKind);
  target.load(in);
  EXPECT_EQ(target.instance_id(), 9);
  EXPECT_EQ(target.injection_time, source.injection_time);
  EXPECT_EQ(target.completed_count(), source.completed_count());
  EXPECT_EQ(target.rng().state(), source.rng().state());
  ASSERT_EQ(target.tasks().size(), source.tasks().size());
  for (std::size_t i = 0; i < source.tasks().size(); ++i) {
    const TaskInstance& a = source.tasks()[i];
    const TaskInstance& b = target.tasks()[i];
    EXPECT_EQ(b.state, a.state);
    EXPECT_EQ(b.remaining_predecessors, a.remaining_predecessors);
    EXPECT_EQ(b.ready_time, a.ready_time);
    EXPECT_EQ(b.dispatch_time, a.dispatch_time);
    EXPECT_EQ(b.start_time, a.start_time);
    EXPECT_EQ(b.end_time, a.end_time);
    EXPECT_EQ(b.pe_id, a.pe_id);
    EXPECT_EQ(b.chosen_platform, a.chosen_platform);
  }
  std::uint32_t back = 0;
  std::memcpy(&back, target.arena().storage(0), sizeof(back));
  EXPECT_EQ(back, scribble);
}

TEST(AppInstanceCheckpoint, ModelMismatchThrows) {
  const AppModel model = checkpoint_test_app();
  AppInstance source(model, 0, 1);
  const std::vector<std::uint8_t> bytes = save_instance(source);

  AppBuilder other_builder("other_app", "");
  other_builder.scalar_u32("n", 1).node("only", {"n"}, {},
                                        {{"cpu", "x", ""}});
  const AppModel other = other_builder.build();
  AppInstance target(other, 0, 1);
  StateReader in(bytes.data(), bytes.size(), kEngineSnapshotKind);
  EXPECT_THROW(target.load(in), StateError);
}

TEST(VariableArenaCheckpoint, RestoredPointerVariableNeverAliases) {
  // The satellite-f hazard: a pointer variable's *storage* holds a heap
  // address. A snapshot serializes the source arena's address; restoring it
  // verbatim would make the restored instance read/write whatever instance
  // now owns that storage (after pool recycling, a *live* one). load() must
  // rewrite the stored address with the restoring arena's own block.
  const AppModel model = checkpoint_test_app();
  AppInstance source(model, 0, 1);
  std::memset(source.arena().heap_block(1), 0x5A, 64);
  void* source_block = source.arena().heap_block(1);
  const std::vector<std::uint8_t> bytes = save_instance(source);

  // `source` stays alive (its heap block is a live allocation), so a
  // restored alias would be observable as pointer equality.
  AppInstance target(model, 1, 2);
  StateReader in(bytes.data(), bytes.size(), kEngineSnapshotKind);
  target.load(in);

  void* stored = nullptr;
  std::memcpy(&stored, target.arena().storage(1), sizeof(stored));
  EXPECT_EQ(stored, target.arena().heap_block(1))
      << "restored pointer variable must self-reference";
  EXPECT_NE(stored, source_block)
      << "restored pointer variable aliases the snapshot source's arena";
  // Contents came across even though the address did not.
  EXPECT_EQ(std::memcmp(target.arena().heap_block(1), source_block, 64), 0);
}

TEST(VariableArenaCheckpoint, RecycledInstanceRestoreStaysSelfContained) {
  // Pool-recycling variant: snapshot an instance, release it (its storage
  // goes back to the pool), let a live instance take that storage, then
  // restore the snapshot into a fresh acquisition. The restored instance
  // must not touch the live instance's blocks.
  const AppModel model = checkpoint_test_app();
  AppInstancePool pool;
  if (pool.disabled()) {
    GTEST_SKIP() << "DSSOC_POOL_DISABLE is set";
  }
  auto original = pool.acquire(model, 0, 11);
  std::memset(original->arena().heap_block(1), 0x77, 64);
  const std::vector<std::uint8_t> bytes = save_instance(*original);
  pool.release(std::move(original));

  auto live = pool.acquire(model, 1, 22);  // recycles original's storage
  void* live_block = live->arena().heap_block(1);
  std::memset(live_block, 0x11, 64);

  auto restored = pool.acquire(model, 2, 33);  // fresh construction
  StateReader in(bytes.data(), bytes.size(), kEngineSnapshotKind);
  restored->load(in);
  void* stored = nullptr;
  std::memcpy(&stored, restored->arena().storage(1), sizeof(stored));
  EXPECT_EQ(stored, restored->arena().heap_block(1));
  EXPECT_NE(stored, live_block);
  // The live instance's block kept its own contents.
  std::uint8_t expected[64];
  std::memset(expected, 0x11, sizeof(expected));
  EXPECT_EQ(std::memcmp(live_block, expected, sizeof(expected)), 0);
  // The restored one got the snapshot's.
  std::memset(expected, 0x77, sizeof(expected));
  EXPECT_EQ(std::memcmp(restored->arena().heap_block(1), expected,
                        sizeof(expected)),
            0);
}

TEST(AppInstancePoolCheckpoint, CountersRoundTrip) {
  const AppModel model = checkpoint_test_app();
  AppInstancePool pool;
  pool.release(pool.acquire(model, 0, 1));
  pool.release(pool.acquire(model, 1, 2));
  StateWriter out(kEngineSnapshotKind);
  pool.save(out);
  const std::vector<std::uint8_t> bytes = out.take();

  AppInstancePool other;
  StateReader in(bytes.data(), bytes.size(), kEngineSnapshotKind);
  other.load(in);
  EXPECT_EQ(other.constructed(), pool.constructed());
  EXPECT_EQ(other.recycled(), pool.recycled());
}

// --- engine-level -----------------------------------------------------------

struct EngineFixture {
  EngineFixture() {
    platform = platform::zcu102();
    apps::register_all_kernels(registry);
    library = apps::default_application_library();
  }

  EmulationSetup setup(const std::string& scheduler) const {
    EmulationSetup s;
    s.platform = &platform;
    s.soc = platform::parse_config_label("3C+2F");
    s.apps = &library;
    s.registry = &registry;
    s.cost_model = platform::default_cost_model();
    s.options.scheduler = scheduler;
    s.options.run_kernels = false;
    s.options.seed = 5;
    return s;
  }

  Workload mix(double frame_ms, std::uint64_t rng_seed = 3) const {
    Rng rng(rng_seed);
    return make_performance_workload(
        {{"pulse_doppler", sim_from_ms(4.0), 1.0},
         {"wifi_tx", sim_from_ms(1.0), 1.0},
         {"wifi_rx", sim_from_ms(1.0), 1.0}},
        sim_from_ms(frame_ms), rng);
  }

  platform::Platform platform;
  SharedObjectRegistry registry;
  ApplicationLibrary library;
};

std::uint64_t stats_digest(const EmulationStats& stats) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const TaskRecord& t : stats.tasks) {
    mix(static_cast<std::uint64_t>(t.app_instance));
    mix(static_cast<std::uint64_t>(t.pe_id));
    mix(static_cast<std::uint64_t>(t.ready_time));
    mix(static_cast<std::uint64_t>(t.dispatch_time));
    mix(static_cast<std::uint64_t>(t.start_time));
    mix(static_cast<std::uint64_t>(t.end_time));
  }
  mix(static_cast<std::uint64_t>(stats.makespan));
  mix(static_cast<std::uint64_t>(stats.scheduling_overhead_total));
  mix(stats.scheduling_events);
  return h;
}

TEST(EmulationStatsCheckpoint, RoundTripsFullRecord) {
  EngineFixture fx;
  const Workload workload = fx.mix(4.0);
  const EmulationStats stats = run_virtual(fx.setup("FRFS"), workload);
  ASSERT_FALSE(stats.tasks.empty());
  StateWriter out(kEngineSnapshotKind);
  stats.save(out);
  const std::vector<std::uint8_t> bytes = out.take();

  EmulationStats loaded;
  StateReader in(bytes.data(), bytes.size(), kEngineSnapshotKind);
  loaded.load(in);
  EXPECT_EQ(loaded.config_label, stats.config_label);
  EXPECT_EQ(loaded.scheduler_name, stats.scheduler_name);
  EXPECT_EQ(loaded.tasks.size(), stats.tasks.size());
  EXPECT_EQ(loaded.apps.size(), stats.apps.size());
  EXPECT_EQ(loaded.pes.size(), stats.pes.size());
  EXPECT_EQ(stats_digest(loaded), stats_digest(stats));
}

// The tentpole acceptance gate: for every scheduler, snapshot mid-run,
// restore (into the source engine's successor AND into a fresh engine), run
// to completion, and require the statistics byte-stream to be identical to
// an uninterrupted run's.
TEST(EmulationCheckpoint, MidRunSnapshotRestoresBitIdentically) {
  EngineFixture fx;
  const Workload workload = fx.mix(6.0);
  for (const char* scheduler : {"FRFS", "MET", "EFT", "RANDOM"}) {
    SCOPED_TRACE(scheduler);
    const EmulationSetup setup = fx.setup(scheduler);
    const EmulationStats uninterrupted = run_virtual(setup, workload);
    const std::uint64_t expected = stats_digest(uninterrupted);

    Emulation source(setup, workload);
    const EngineSnapshot snap = source.snapshot(uninterrupted.makespan / 2);
    ASSERT_FALSE(snap.empty());
    EXPECT_GE(source.now(), uninterrupted.makespan / 2);

    // Continuing the source run is the trivial restore.
    const EmulationStats continued = source.finish();
    EXPECT_EQ(stats_digest(continued), expected);

    // Restoring into a brand-new engine is the real one.
    Emulation target(setup, workload);
    target.restore(snap);
    const EmulationStats restored = target.finish();
    EXPECT_EQ(stats_digest(restored), expected);
  }
}

TEST(EmulationCheckpoint, SnapshotMetaDescribesTheBoundary) {
  EngineFixture fx;
  const Workload workload = fx.mix(4.0);
  const EmulationSetup setup = fx.setup("FRFS");
  Emulation emulation(setup, workload);
  const EngineSnapshot snap = emulation.snapshot(sim_from_ms(1.0));
  const SnapshotMeta meta = snap.meta();
  EXPECT_EQ(meta.virtual_time, emulation.now());
  EXPECT_EQ(meta.scheduler, "FRFS");
  EXPECT_EQ(meta.total_entries, workload.size());
  EXPECT_EQ(meta.seed, 5u);
  EXPECT_GT(meta.pe_count, 0u);
  EXPECT_EQ(meta.prefix_hash,
            workload_prefix_hash(workload,
                                 static_cast<std::size_t>(
                                     meta.consumed_entries)));
}

TEST(EmulationCheckpoint, RestoreRejectsIncompatibleTargets) {
  EngineFixture fx;
  const Workload workload = fx.mix(3.0);
  const EmulationSetup frfs = fx.setup("FRFS");
  const EmulationSetup met = fx.setup("MET");
  Emulation source(frfs, workload);
  const EngineSnapshot snap = source.snapshot(sim_from_ms(1.0));

  {  // empty snapshot
    Emulation target(frfs, workload);
    EXPECT_THROW(target.restore(EngineSnapshot{}), StateError);
  }
  {  // different scheduler
    Emulation target(met, workload);
    EXPECT_THROW(target.restore(snap), StateError);
  }
  {  // different seed
    EmulationSetup reseeded = fx.setup("FRFS");
    reseeded.options.seed = 6;
    Emulation target(reseeded, workload);
    EXPECT_THROW(target.restore(snap), StateError);
  }
  {  // different queue depth
    EmulationSetup deeper = fx.setup("FRFS");
    deeper.options.pe_queue_depth = 2;
    Emulation target(deeper, workload);
    EXPECT_THROW(target.restore(snap), StateError);
  }
  {  // different workload from arrival zero: neither restore rule fits
     // (the source hash differs AND the consumed prefix cannot match).
    Rng rng(3);
    const Workload other = make_performance_workload(
        {{"wifi_tx", sim_from_ms(0.5), 1.0}}, sim_from_ms(3.0), rng);
    Emulation target(frfs, other);
    EXPECT_THROW(target.restore(snap), StateError);
  }
  {  // truncated byte stream
    std::vector<std::uint8_t> bytes = snap.data();
    bytes.resize(bytes.size() / 2);
    Emulation target(frfs, workload);
    EXPECT_THROW(target.restore(EngineSnapshot(std::move(bytes))),
                 StateError);
  }
}

Workload shifted_composite(const Workload& prefix, const Workload& tail,
                           SimTime offset) {
  Workload composite;
  composite.entries = prefix.entries;
  for (WorkloadEntry entry : tail.entries) {
    entry.arrival += offset;
    composite.entries.push_back(std::move(entry));
  }
  return composite;
}

TEST(EmulationCheckpoint, QuiescentForkMatchesColdCompositeRun) {
  EngineFixture fx;
  const Workload warmup = fx.mix(3.0);
  for (const char* scheduler : {"FRFS", "MET", "EFT", "RANDOM"}) {
    SCOPED_TRACE(scheduler);
    const EmulationSetup setup = fx.setup(scheduler);
    Emulation warm(setup, warmup);
    warm.run_until_idle(sim_from_ms(3.0));
    ASSERT_TRUE(warm.quiescent());
    const EngineSnapshot snap = warm.snapshot();
    ASSERT_TRUE(snap.quiescent());

    const Workload tail = fx.mix(2.0, /*rng_seed=*/17);
    const Workload composite =
        shifted_composite(warmup, tail, snap.virtual_time());

    const EmulationStats cold = run_virtual(setup, composite);
    Emulation forked(setup, composite);
    forked.restore(snap);
    const EmulationStats fork_stats = forked.finish();
    EXPECT_EQ(stats_digest(fork_stats), stats_digest(cold));
  }
}

TEST(EmulationCheckpoint, ForkRejectsTailBeforeSnapshotTime) {
  EngineFixture fx;
  const Workload warmup = fx.mix(3.0);
  const EmulationSetup setup = fx.setup("FRFS");
  Emulation warm(setup, warmup);
  warm.run_until_idle(sim_from_ms(3.0));
  const EngineSnapshot snap = warm.snapshot();
  ASSERT_TRUE(snap.quiescent());

  // A tail arrival before the snapshot's virtual time would have to be
  // retro-injected; the fork contract rejects it.
  const Workload tail = fx.mix(1.0, /*rng_seed=*/17);
  const Workload too_early = shifted_composite(warmup, tail, 0);
  Emulation target(setup, too_early);
  EXPECT_THROW(target.restore(snap), StateError);

  // A mismatched prefix is equally invalid, even with well-placed tails.
  Workload wrong_prefix =
      shifted_composite(warmup, tail, snap.virtual_time());
  wrong_prefix.entries[0].app_name = "wifi_tx";
  Emulation target2(setup, wrong_prefix);
  EXPECT_THROW(target2.restore(snap), StateError);
}

TEST(EmulationCheckpoint, SnapshotBytesAreDeterministic) {
  EngineFixture fx;
  const Workload workload = fx.mix(4.0);
  const EmulationSetup setup = fx.setup("EFT");
  Emulation a(setup, workload);
  Emulation b(setup, workload);
  const EngineSnapshot snap_a = a.snapshot(sim_from_ms(2.0));
  const EngineSnapshot snap_b = b.snapshot(sim_from_ms(2.0));
  EXPECT_EQ(snap_a.data(), snap_b.data());
}

}  // namespace
}  // namespace dssoc::core
