// Tests for the durable sweep journal (exp/journal.hpp) and the resume path
// in exp::run_sweep: canonical config hashing, append/recover round trips,
// the corruption matrix (torn tail, bit-flipped CRC, truncated header, wrong
// magic, version skew, stale hashes), crash-safe resume via the killsup
// fault, and incremental re-runs when one point's parameters change.
//
// Registered SERIAL: the suite drives run_sweep through DSSOC_SWEEP_JOURNAL
// / DSSOC_SWEEP_RESUME / DSSOC_FAULT_INJECT, which are process-global.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "core/emulation.hpp"
#include "exp/journal.hpp"
#include "exp/proc_pool.hpp"
#include "exp/sweep.hpp"
#include "platform/platform.hpp"

namespace dssoc::exp {
namespace {

namespace fs = std::filesystem;

/// Sets an environment variable for the test's scope, unsetting on
/// destruction so journal/resume/fault specs never leak across tests.
class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    EXPECT_EQ(setenv(name, value.c_str(), 1), 0);
  }
  ~EnvGuard() { unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
};

/// A unique journal path per test, removed on scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(fs::temp_directory_path() /
              ("dssoc_journal_test_" + std::to_string(::getpid()) + "_" +
               name)) {
    fs::remove(path_);
  }
  ~TempFile() { fs::remove(path_); }
  std::string path() const { return path_.string(); }
  std::uintmax_t size() const { return fs::file_size(path_); }
  void truncate(std::uintmax_t size) const { fs::resize_file(path_, size); }
  void flip_byte(std::uintmax_t offset) const {
    std::fstream io(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(io.is_open());
    io.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    io.get(byte);
    io.seekp(static_cast<std::streamoff>(offset));
    io.put(static_cast<char>(byte ^ 0xFF));
  }
  void overwrite(const std::string& contents) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << contents;
  }

 private:
  fs::path path_;
};

bool warnings_mention(const SweepJournal::Recovery& recovery,
                      const std::string& needle) {
  for (const std::string& warning : recovery.warnings) {
    if (warning.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

struct Fixture {
  Fixture() {
    platform = platform::zcu102();
    apps::register_all_kernels(registry);
    library = apps::default_application_library();
  }

  SweepPoint point(const std::string& config, const std::string& scheduler,
                   const core::Workload& workload) const {
    SweepPoint p;
    p.label = config + "/" + scheduler;
    p.setup.platform = &platform;
    p.setup.soc = platform::parse_config_label(config);
    p.setup.apps = &library;
    p.setup.registry = &registry;
    p.setup.cost_model = platform::default_cost_model();
    p.setup.options.scheduler = scheduler;
    p.workload = workload;
    return p;
  }

  std::vector<SweepPoint> small_sweep(int count) const {
    const core::Workload workload = core::make_validation_workload(
        {{"wifi_tx", 1}, {"range_detection", 1}});
    const char* schedulers[] = {"FRFS", "MET", "EFT"};
    std::vector<SweepPoint> points;
    for (int i = 0; i < count; ++i) {
      SweepPoint p = point("2C+1F", schedulers[i % 3], workload);
      p.label += "/pt" + std::to_string(i);
      points.push_back(std::move(p));
    }
    return points;
  }

  platform::Platform platform;
  core::SharedObjectRegistry registry;
  core::ApplicationLibrary library;
};

/// One genuinely emulated ok result (real stats, real digest) to journal.
SweepResult emulated_result(const Fixture& fx, const std::string& scheduler) {
  const core::Workload workload =
      core::make_validation_workload({{"wifi_tx", 1}});
  std::vector<SweepResult> results =
      SweepRunner(1).run({fx.point("1C+0F", scheduler, workload)});
  return std::move(results[0]);
}

// --- config hashing over sweep points ---------------------------------------

TEST(PointConfigHash, StableForIdenticalPoints) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(2);
  EXPECT_EQ(point_config_hash(points[0]), point_config_hash(points[0]));
  EXPECT_NE(point_config_hash(points[0]), point_config_hash(points[1]));
}

TEST(PointConfigHash, EveryResultDeterminingKnobFlipsTheHash) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(1);
  const std::uint64_t base = point_config_hash(points[0]);

  SweepPoint reseeded = points[0];
  reseeded.setup.options.seed = 12345;
  EXPECT_NE(point_config_hash(reseeded), base);

  SweepPoint rescheduled = points[0];
  rescheduled.setup.options.scheduler = "MET";
  EXPECT_NE(point_config_hash(rescheduled), base);

  SweepPoint relabelled = points[0];
  relabelled.label = "something-else";
  EXPECT_NE(point_config_hash(relabelled), base);

  SweepPoint rearrived = points[0];
  ASSERT_FALSE(rearrived.workload.entries.empty());
  rearrived.workload.entries[0].arrival += 1;
  EXPECT_NE(point_config_hash(rearrived), base);

  SweepPoint reconfigured = points[0];
  reconfigured.setup.soc = platform::parse_config_label("3C+0F");
  EXPECT_NE(point_config_hash(reconfigured), base);
}

// --- journal round trip -----------------------------------------------------

TEST(Journal, AppendRecoverRoundTripKeepsOkRecordsFindable) {
  Fixture fx;
  TempFile file("roundtrip");
  const SweepResult ok = emulated_result(fx, "FRFS");
  SweepResult failed;
  failed.label = "cfg/bad";
  failed.status = PointStatus::kFailed;
  failed.error = "worker crashed (exit code 42)";

  {
    SweepJournal journal(file.path());
    EXPECT_FALSE(journal.recovery().existed);
    EXPECT_EQ(journal.size(), 0u);
    journal.append(111, ok);
    journal.append(222, failed);
    EXPECT_EQ(journal.size(), 2u);
  }

  SweepJournal journal(file.path());
  EXPECT_TRUE(journal.recovery().existed);
  EXPECT_EQ(journal.recovery().records, 2u);
  EXPECT_EQ(journal.recovery().dropped_bytes, 0u);
  EXPECT_TRUE(journal.recovery().warnings.empty());

  const SweepResult* hit = journal.find_ok(111);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->label, ok.label);
  EXPECT_EQ(hit->status, PointStatus::kOk);
  EXPECT_EQ(hit->source, ResultSource::kJournal);
  EXPECT_EQ(hit->wall_ms, ok.wall_ms);
  // The whole point of the journal: the persisted stats are bit-identical.
  EXPECT_EQ(hit->stats.digest(), ok.stats.digest());

  // Failed records are recovered but never replayed.
  EXPECT_EQ(journal.find_ok(222), nullptr);
  EXPECT_EQ(journal.find_ok(999), nullptr);
}

// --- corruption matrix ------------------------------------------------------

TEST(Journal, TornRecordHeaderDropsOnlyTheTail) {
  Fixture fx;
  TempFile file("torn_header");
  std::uintmax_t first_record_end = 0;
  {
    SweepJournal journal(file.path());
    journal.append(1, emulated_result(fx, "FRFS"));
    first_record_end = file.size();
    journal.append(2, emulated_result(fx, "MET"));
  }
  // Crash mid-write of the second record's 12-byte frame header.
  file.truncate(first_record_end + 5);

  SweepJournal journal(file.path());
  EXPECT_EQ(journal.recovery().records, 1u);
  EXPECT_EQ(journal.recovery().dropped_bytes, 5u);
  EXPECT_TRUE(warnings_mention(journal.recovery(), "torn record header"))
      << "warnings: " << journal.recovery().warnings.size();
  EXPECT_NE(journal.find_ok(1), nullptr);
  EXPECT_EQ(journal.find_ok(2), nullptr);
}

TEST(Journal, TornRecordPayloadDropsOnlyTheTail) {
  Fixture fx;
  TempFile file("torn_payload");
  std::uintmax_t first_record_end = 0;
  {
    SweepJournal journal(file.path());
    journal.append(1, emulated_result(fx, "FRFS"));
    first_record_end = file.size();
    journal.append(2, emulated_result(fx, "MET"));
  }
  // Frame header intact, payload cut short: declared length exceeds EOF.
  file.truncate(first_record_end + 20);

  SweepJournal journal(file.path());
  EXPECT_EQ(journal.recovery().records, 1u);
  EXPECT_EQ(journal.recovery().dropped_bytes, 20u);
  EXPECT_TRUE(warnings_mention(journal.recovery(), "torn record"));
  EXPECT_NE(journal.find_ok(1), nullptr);
}

TEST(Journal, BitFlippedPayloadFailsCrcAndDropsTheTail) {
  Fixture fx;
  TempFile file("bitflip");
  std::uintmax_t first_record_end = 0;
  {
    SweepJournal journal(file.path());
    journal.append(1, emulated_result(fx, "FRFS"));
    first_record_end = file.size();
    journal.append(2, emulated_result(fx, "MET"));
  }
  ASSERT_GT(file.size(), first_record_end + 40);
  // Flip one byte inside the second record's state_io payload; the CRC-32
  // trailer (or the stream structure) must catch it.
  file.flip_byte(first_record_end + 30);

  SweepJournal journal(file.path());
  EXPECT_EQ(journal.recovery().records, 1u);
  EXPECT_GT(journal.recovery().dropped_bytes, 0u);
  EXPECT_TRUE(warnings_mention(journal.recovery(), "corrupt record"));
  EXPECT_NE(journal.find_ok(1), nullptr);
  EXPECT_EQ(journal.find_ok(2), nullptr);
}

TEST(Journal, RecoveryTruncatesSoAppendsLandCleanlyAfterTheValidPrefix) {
  Fixture fx;
  TempFile file("truncate_then_append");
  const SweepResult ok = emulated_result(fx, "FRFS");
  std::uintmax_t first_record_end = 0;
  {
    SweepJournal journal(file.path());
    journal.append(1, ok);
    first_record_end = file.size();
    journal.append(2, emulated_result(fx, "MET"));
  }
  file.truncate(first_record_end + 7);  // torn tail on disk

  {
    SweepJournal journal(file.path());
    EXPECT_EQ(journal.recovery().records, 1u);
    journal.append(3, emulated_result(fx, "EFT"));
  }
  // The torn bytes were truncated away before the append, so a third open
  // sees two pristine records and zero warnings.
  SweepJournal journal(file.path());
  EXPECT_EQ(journal.recovery().records, 2u);
  EXPECT_EQ(journal.recovery().dropped_bytes, 0u);
  EXPECT_TRUE(journal.recovery().warnings.empty());
  EXPECT_NE(journal.find_ok(1), nullptr);
  EXPECT_NE(journal.find_ok(3), nullptr);
}

TEST(Journal, TruncatedFileHeaderStartsTheJournalOver) {
  Fixture fx;
  TempFile file("short_header");
  { SweepJournal journal(file.path()); }
  file.truncate(4);  // half the 8-byte magic+version header

  SweepJournal journal(file.path());
  EXPECT_TRUE(journal.recovery().existed);
  EXPECT_EQ(journal.recovery().records, 0u);
  EXPECT_TRUE(warnings_mention(journal.recovery(), "truncated header"));
  journal.append(1, emulated_result(fx, "FRFS"));
  EXPECT_NE(journal.find_ok(1), nullptr);
}

TEST(Journal, NonJournalFileIsRefusedNotClobbered) {
  TempFile file("not_a_journal");
  const std::string contents = "definitely not a sweep journal\n";
  file.overwrite(contents);
  EXPECT_THROW(SweepJournal journal(file.path()), DssocError);
  // The refusal must leave the innocent bystander byte-identical.
  std::ifstream in(file.path(), std::ios::binary);
  const std::string after((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(after, contents);
}

TEST(Journal, FormatVersionSkewStartsTheJournalOver) {
  TempFile file("version_skew");
  // Valid magic 'DSSJ', bogus format version 99.
  file.overwrite(std::string("DSSJ") +
                 std::string({'\x63', '\x00', '\x00', '\x00'}));
  SweepJournal journal(file.path());
  EXPECT_TRUE(journal.recovery().existed);
  EXPECT_EQ(journal.recovery().records, 0u);
  EXPECT_TRUE(warnings_mention(journal.recovery(), "version"));
}

// --- run_sweep resume -------------------------------------------------------

TEST(SweepResume, ResumeWithoutJournalThrows) {
  Fixture fx;
  const EnvGuard resume("DSSOC_SWEEP_RESUME", "1");
  EXPECT_THROW(run_sweep(fx.small_sweep(1), 1), DssocError);
}

TEST(SweepResume, MalformedResumeValueThrows) {
  Fixture fx;
  TempFile file("bad_resume_value");
  const EnvGuard journal("DSSOC_SWEEP_JOURNAL", file.path());
  const EnvGuard resume("DSSOC_SWEEP_RESUME", "yes");
  EXPECT_THROW(run_sweep(fx.small_sweep(1), 1), DssocError);
}

TEST(SweepResume, FullResumeReplaysEveryPointBitIdentically) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(5);
  const SweepExecution clean = run_sweep(points, 2);  // no journal

  TempFile file("full_resume");
  const EnvGuard journal_env("DSSOC_SWEEP_JOURNAL", file.path());
  const SweepExecution first = run_sweep(points, 2);
  EXPECT_FALSE(first.resumed);
  EXPECT_EQ(first.journal_points_reused, 0u);
  EXPECT_TRUE(resume_summary(first).empty());

  const EnvGuard resume_env("DSSOC_SWEEP_RESUME", "1");
  const SweepExecution second = run_sweep(points, 2);
  EXPECT_TRUE(second.resumed);
  EXPECT_EQ(second.journal_points_reused, points.size());
  ASSERT_EQ(second.results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(points[i].label);
    EXPECT_EQ(second.results[i].status, PointStatus::kOk);
    EXPECT_EQ(second.results[i].source, ResultSource::kJournal);
    EXPECT_NE(second.results[i].config_hash, 0u);
    EXPECT_EQ(second.results[i].stats.digest(), clean.results[i].stats.digest());
  }
  const std::string summary = resume_summary(second);
  EXPECT_NE(summary.find("5 of 5"), std::string::npos) << summary;
}

TEST(SweepResume, ChangingOnePointReRunsOnlyThatPoint) {
  Fixture fx;
  std::vector<SweepPoint> points = fx.small_sweep(5);
  TempFile file("incremental");
  const EnvGuard journal_env("DSSOC_SWEEP_JOURNAL", file.path());
  run_sweep(points, 2);

  // Change one point's parameters: its config hash misses, everything else
  // replays. This is the incremental-sweep contract the ISSUE pins.
  points[2].setup.options.seed = 777;
  const SweepExecution clean_changed = [&] {
    // Reference digests for the *changed* sweep, without journal effects.
    unsetenv("DSSOC_SWEEP_JOURNAL");
    const SweepExecution execution = run_sweep(points, 2);
    setenv("DSSOC_SWEEP_JOURNAL", file.path().c_str(), 1);
    return execution;
  }();

  const EnvGuard resume_env("DSSOC_SWEEP_RESUME", "1");
  const SweepExecution resumed = run_sweep(points, 2);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.journal_points_reused, points.size() - 1);
  ASSERT_EQ(resumed.results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(points[i].label);
    EXPECT_EQ(resumed.results[i].source,
              i == 2 ? ResultSource::kRun : ResultSource::kJournal);
    EXPECT_EQ(resumed.results[i].stats.digest(),
              clean_changed.results[i].stats.digest());
  }
}

TEST(SweepResume, FailedJournalRecordsAlwaysReExecute) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(3);
  TempFile file("failed_records");
  {
    // Seed the journal with a *failed* record for point 1: a resume must
    // re-execute it rather than replay the failure.
    SweepJournal journal(file.path());
    SweepResult failed;
    failed.label = points[1].label;
    failed.status = PointStatus::kFailed;
    failed.error = "worker crashed (exit code 42)";
    journal.append(point_config_hash(points[1]), failed);
  }
  const EnvGuard journal_env("DSSOC_SWEEP_JOURNAL", file.path());
  const EnvGuard resume_env("DSSOC_SWEEP_RESUME", "1");
  const SweepExecution execution = run_sweep(points, 2);
  EXPECT_TRUE(execution.resumed);
  EXPECT_EQ(execution.journal_points_reused, 0u);
  for (const SweepResult& result : execution.results) {
    EXPECT_EQ(result.status, PointStatus::kOk);
    EXPECT_EQ(result.source, ResultSource::kRun);
  }
}

TEST(SweepResume, StaleConfigHashRecordsAreIgnored) {
  Fixture fx;
  TempFile file("stale_hashes");
  const EnvGuard journal_env("DSSOC_SWEEP_JOURNAL", file.path());
  run_sweep(fx.small_sweep(3), 2);

  // A *different* sweep against the same journal: every hash misses, every
  // point executes, and the old records just sit there harmlessly.
  std::vector<SweepPoint> other = fx.small_sweep(3);
  for (SweepPoint& point : other) {
    point.setup.options.seed = 4242;
  }
  const EnvGuard resume_env("DSSOC_SWEEP_RESUME", "1");
  const SweepExecution execution = run_sweep(other, 2);
  EXPECT_TRUE(execution.resumed);
  EXPECT_EQ(execution.journal_points_reused, 0u);
  for (const SweepResult& result : execution.results) {
    EXPECT_EQ(result.status, PointStatus::kOk);
    EXPECT_EQ(result.source, ResultSource::kRun);
  }
}

// --- crash-safe resume via killsup ------------------------------------------

TEST(SweepResume, KillsupMidSweepThenResumeIsBitIdenticalToUninterrupted) {
  Fixture fx;
  const std::vector<SweepPoint> points = fx.small_sweep(6);
  const SweepExecution clean = run_sweep(points, 2);  // no journal

  TempFile file("killsup");
  const EnvGuard journal_env("DSSOC_SWEEP_JOURNAL", file.path());
  {
    // The supervisor _exit(43)s after 3 results have been journaled —
    // the deterministic stand-in for an OOM-kill or CI timeout.
    const EnvGuard fault("DSSOC_FAULT_INJECT", "killsup@3");
    EXPECT_EXIT(run_sweep(points, 2), ::testing::ExitedWithCode(43), "");
  }
  {
    // Exactly 3 records survived the crash (append + fsync precede the
    // kill), and the torn-free file recovers without warnings.
    SweepJournal journal(file.path());
    EXPECT_EQ(journal.recovery().records, 3u);
    EXPECT_TRUE(journal.recovery().warnings.empty());
  }

  const EnvGuard resume_env("DSSOC_SWEEP_RESUME", "1");
  const SweepExecution resumed = run_sweep(points, 2);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.journal_points_reused, 3u);
  ASSERT_EQ(resumed.results.size(), points.size());
  std::size_t replayed = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(points[i].label);
    EXPECT_EQ(resumed.results[i].status, PointStatus::kOk);
    replayed += resumed.results[i].source == ResultSource::kJournal ? 1u : 0u;
    // The acceptance bar: the merged table is indistinguishable from the
    // uninterrupted run's, point by point.
    EXPECT_EQ(resumed.results[i].stats.digest(),
              clean.results[i].stats.digest());
  }
  EXPECT_EQ(replayed, 3u);
}

}  // namespace
}  // namespace dssoc::exp
