// Property-based sweeps over the virtual engine: for every configuration x
// scheduler combination, structural invariants of a correct emulation must
// hold — no PE executes two tasks at once, DAG precedence is respected,
// accounting is conserved, and utilization stays within [0, 100].
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "apps/registry.hpp"
#include "core/emulation.hpp"
#include "platform/platform.hpp"

namespace dssoc::core {
namespace {

struct SweepParam {
  const char* config;
  const char* scheduler;
};

class EngineInvariants
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
 protected:
  EmulationStats run(const Workload& workload) {
    platform::Platform platform = platform::zcu102();
    SharedObjectRegistry registry;
    apps::register_all_kernels(registry);
    ApplicationLibrary library = apps::default_application_library();

    EmulationSetup setup;
    setup.platform = &platform;
    setup.soc = platform::parse_config_label(std::get<0>(GetParam()));
    setup.apps = &library;
    setup.registry = &registry;
    setup.cost_model = platform::default_cost_model();
    setup.options.scheduler = std::get<1>(GetParam());
    setup.options.run_kernels = false;  // structural sweep, not functional
    return run_virtual(setup, workload);
  }
};

TEST_P(EngineInvariants, NoPeExecutesTwoTasksAtOnce) {
  const EmulationStats stats = run(make_validation_workload(
      {{"range_detection", 3}, {"wifi_tx", 2}, {"wifi_rx", 2}}));
  std::map<int, std::vector<std::pair<SimTime, SimTime>>> intervals;
  for (const TaskRecord& task : stats.tasks) {
    intervals[task.pe_id].emplace_back(task.start_time, task.end_time);
  }
  for (auto& [pe, spans] : intervals) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second)
          << "PE " << pe << " overlaps at interval " << i;
    }
  }
}

TEST_P(EngineInvariants, DagPrecedenceRespected) {
  const EmulationStats stats =
      run(make_validation_workload({{"range_detection", 2}}));
  // Map (instance, node) -> end time, then check every edge.
  std::map<std::pair<int, std::string>, SimTime> end_times;
  std::map<std::pair<int, std::string>, SimTime> start_times;
  for (const TaskRecord& task : stats.tasks) {
    end_times[{task.app_instance, task.node_name}] = task.end_time;
    start_times[{task.app_instance, task.node_name}] = task.start_time;
  }
  const AppModel model = apps::make_range_detection();
  for (const DagNode& node : model.nodes) {
    for (const std::string& pred : node.predecessors) {
      for (int instance = 0; instance < 2; ++instance) {
        EXPECT_GE(start_times.at({instance, node.name}),
                  end_times.at({instance, pred}))
            << node.name << " started before " << pred;
      }
    }
  }
}

TEST_P(EngineInvariants, AccountingIsConserved) {
  const Workload workload = make_validation_workload(
      {{"wifi_rx", 2}, {"wifi_tx", 2}, {"range_detection", 2}});
  const EmulationStats stats = run(workload);
  // Every injected app completes; every task is recorded exactly once.
  EXPECT_EQ(stats.apps.size(), 6u);
  EXPECT_EQ(stats.tasks.size(), 2u * 9 + 2u * 7 + 2u * 6);
  std::size_t pe_task_total = 0;
  for (const PERecord& pe : stats.pes) {
    pe_task_total += pe.tasks_executed;
    const double util = stats.pe_utilization_percent(pe.pe_id);
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 100.0 + 1e-9) << pe.label;
  }
  EXPECT_EQ(pe_task_total, stats.tasks.size());
  // Makespan is the max task end time.
  SimTime max_end = 0;
  for (const TaskRecord& task : stats.tasks) {
    max_end = std::max(max_end, task.end_time);
  }
  EXPECT_EQ(stats.makespan, max_end);
}

TEST_P(EngineInvariants, TasksRunOnlyOnSupportingPeTypes) {
  const EmulationStats stats = run(make_validation_workload(
      {{"range_detection", 2}, {"wifi_rx", 1}}));
  ApplicationLibrary library = apps::default_application_library();
  for (const TaskRecord& task : stats.tasks) {
    const AppModel& model = library.get(task.app_name);
    const DagNode& node = model.node(task.node_name);
    bool supported = false;
    for (const PlatformOption& option : node.platforms) {
      supported |= option.pe_type == task.pe_type;
    }
    EXPECT_TRUE(supported) << task.app_name << "/" << task.node_name
                           << " ran on unsupported PE type " << task.pe_type;
  }
}

TEST_P(EngineInvariants, ModeledModeIsDeterministic) {
  const Workload workload = make_validation_workload(
      {{"wifi_rx", 1}, {"range_detection", 2}});
  const EmulationStats a = run(workload);
  const EmulationStats b = run(workload);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.scheduling_overhead_total, b.scheduling_overhead_total);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSchedulerMatrix, EngineInvariants,
    ::testing::Combine(::testing::Values("1C+0F", "1C+2F", "2C+1F", "2C+2F",
                                         "3C+0F", "3C+2F"),
                       ::testing::Values("FRFS", "MET", "EFT", "RANDOM")),
    [](const ::testing::TestParamInfo<std::tuple<const char*, const char*>>&
           info) {
      std::string name = std::string(std::get<0>(info.param)) + "_" +
                         std::get<1>(info.param);
      std::replace(name.begin(), name.end(), '+', 'x');
      return name;
    });

}  // namespace
}  // namespace dssoc::core
