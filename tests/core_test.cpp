// Tests for the framework core: application model validation, the builder,
// Listing-1 JSON round trips, variable arenas, task-instance dependency
// tracking, workload generation (both modes), the resource-handler protocol
// and all four scheduling policies in isolation.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "core/app_json.hpp"
#include "core/app_model.hpp"
#include "core/emulation.hpp"
#include "core/kernel_registry.hpp"
#include "core/scheduler.hpp"
#include "core/workload.hpp"
#include "platform/platform.hpp"

namespace dssoc::core {
namespace {

AppModel tiny_app() {
  AppBuilder builder("tiny", "tiny.so");
  builder.scalar_u32("n", 4)
      .buffer("buf", 64)
      .node("A", {"n", "buf"}, {}, {{"cpu", "run_a", ""}}, {"fft", 8.0, 4.0})
      .node("B", {"buf"}, {"A"}, {{"cpu", "run_b", ""}})
      .node("C", {"buf"}, {"A"}, {{"cpu", "run_c", ""}})
      .node("D", {"n"}, {"B", "C"}, {{"cpu", "run_d", ""}});
  return builder.build();
}

// --- AppModel ---------------------------------------------------------------

TEST(AppModel, BuilderProducesValidatedModel) {
  const AppModel model = tiny_app();
  EXPECT_EQ(model.name, "tiny");
  EXPECT_EQ(model.nodes.size(), 4u);
  EXPECT_EQ(model.head_nodes().size(), 1u);
  EXPECT_EQ(model.node("A").successors.size(), 2u);  // symmetry derived
  EXPECT_EQ(model.node("D").predecessors.size(), 2u);
  EXPECT_TRUE(model.has_node("B"));
  EXPECT_FALSE(model.has_node("Z"));
  EXPECT_TRUE(model.has_variable("buf"));
}

TEST(AppModel, TopologicalOrderRespectsEdges) {
  const AppModel model = tiny_app();
  const auto order = model.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[order[i]] = i;
  }
  for (const DagNode& node : model.nodes) {
    for (const std::string& pred : node.predecessors) {
      EXPECT_LT(position[model.node_index(pred)], position[node.index]);
    }
  }
}

TEST(AppModel, RejectsCycles) {
  AppBuilder builder("cyclic", "");
  builder.scalar_u32("n", 1)
      .node("A", {}, {"B"}, {{"cpu", "a", ""}})
      .node("B", {}, {"A"}, {{"cpu", "b", ""}});
  EXPECT_THROW(builder.build(), DssocError);
}

TEST(AppModel, RejectsStructuralErrors) {
  {
    AppBuilder b("x", "");
    b.node("A", {"missing_var"}, {}, {{"cpu", "a", ""}});
    EXPECT_THROW(b.build(), DssocError);
  }
  {
    AppBuilder b("x", "");
    b.node("A", {}, {"ghost"}, {{"cpu", "a", ""}});
    EXPECT_THROW(b.build(), DssocError);
  }
  {
    AppBuilder b("x", "");
    b.node("A", {}, {}, {});  // no platforms
    EXPECT_THROW(b.build(), DssocError);
  }
  {
    AppBuilder b("x", "");
    b.node("A", {}, {}, {{"cpu", "a", ""}});
    b.node("A", {}, {}, {{"cpu", "a", ""}});  // duplicate node
    EXPECT_THROW(b.build(), DssocError);
  }
  {
    AppBuilder b("x", "");
    b.scalar_u32("v", 1).scalar_u32("v", 2);  // duplicate variable
    b.node("A", {}, {}, {{"cpu", "a", ""}});
    EXPECT_THROW(b.build(), DssocError);
  }
}

TEST(AppModel, UnknownLookupsThrow) {
  const AppModel model = tiny_app();
  EXPECT_THROW(model.node("nope"), DssocError);
  EXPECT_THROW(model.variable("nope"), DssocError);
  EXPECT_THROW(model.node_index("nope"), DssocError);
}

// --- JSON round trip (Listing 1 schema) ----------------------------------------

TEST(AppJson, ParsesListingOneStyleDocument) {
  const std::string doc = R"({
    "AppName": "range_detection",
    "SharedObject": "range_detection.so",
    "Variables": {
      "n_samples": {"bytes": 4, "is_ptr": false, "ptr_alloc_bytes": 0,
                     "val": [0, 1, 0, 0]},
      "lfm_waveform": {"bytes": 8, "is_ptr": true, "ptr_alloc_bytes": 2048,
                        "val": []}
    },
    "DAG": {
      "LFM": {
        "arguments": ["n_samples", "lfm_waveform"],
        "predecessors": [],
        "successors": ["FFT_1"],
        "platforms": [{"name": "cpu", "runfunc": "range_detect_LFM"}]
      },
      "FFT_1": {
        "arguments": ["n_samples", "lfm_waveform"],
        "predecessors": ["LFM"],
        "successors": [],
        "platforms": [
          {"name": "cpu", "runfunc": "range_detect_FFT_1_CPU"},
          {"name": "fft", "runfunc": "range_detect_FFT_1_ACCEL",
           "shared_object": "fft_accel.so"}]
      }
    }
  })";
  const AppModel model = app_from_json_text(doc);
  EXPECT_EQ(model.name, "range_detection");
  EXPECT_EQ(model.shared_object, "range_detection.so");
  ASSERT_EQ(model.variables.size(), 2u);
  // n_samples = little-endian 256.
  const VarSpec& n = model.variable("n_samples");
  EXPECT_EQ(n.bytes, 4u);
  EXPECT_FALSE(n.is_ptr);
  std::uint32_t value = 0;
  std::memcpy(&value, n.init_bytes.data(), 4);
  EXPECT_EQ(value, 256u);
  const VarSpec& wave = model.variable("lfm_waveform");
  EXPECT_TRUE(wave.is_ptr);
  EXPECT_EQ(wave.ptr_alloc_bytes, 2048u);
  const DagNode& fft1 = model.node("FFT_1");
  ASSERT_EQ(fft1.platforms.size(), 2u);
  EXPECT_EQ(fft1.platforms[1].shared_object, "fft_accel.so");
}

TEST(AppJson, RoundTripIsStable) {
  const AppModel model = tiny_app();
  const json::Value doc = app_to_json(model);
  const AppModel back = app_from_json(doc);
  EXPECT_EQ(back.name, model.name);
  EXPECT_EQ(back.nodes.size(), model.nodes.size());
  EXPECT_EQ(app_to_json(back), doc);
  // Cost annotations survive.
  EXPECT_EQ(back.node("A").cost.kernel, "fft");
  EXPECT_DOUBLE_EQ(back.node("A").cost.units, 8.0);
  EXPECT_DOUBLE_EQ(back.node("A").cost.samples, 4.0);
}

TEST(AppJson, RejectsBadSchema) {
  EXPECT_THROW(app_from_json_text("[]"), DssocError);
  EXPECT_THROW(app_from_json_text(R"({"AppName":"x"})"), DssocError);
  EXPECT_THROW(app_from_json_text(R"({
    "AppName":"x", "SharedObject":"x.so",
    "Variables": {"v": {"bytes": 4, "is_ptr": false,
                         "ptr_alloc_bytes": 0, "val": [300]}},
    "DAG": {}})"),
               DssocError);
}

// --- variable arena -------------------------------------------------------------

TEST(Arena, InitializesScalarsAndHeapBlocks) {
  AppBuilder builder("arena_app", "");
  builder.scalar_u32("n", 0xDEADBEEF)
      .buffer_init("data", 16, {1, 2, 3})
      .node("A", {"n", "data"}, {}, {{"cpu", "a", ""}});
  const AppModel model = builder.build();
  AppInstance instance(model, 0, 1);

  std::uint32_t n = 0;
  std::memcpy(&n, instance.arena().storage(0), 4);
  EXPECT_EQ(n, 0xDEADBEEFu);

  const auto* heap = static_cast<const std::uint8_t*>(
      instance.arena().heap_block(1));
  ASSERT_NE(heap, nullptr);
  EXPECT_EQ(instance.arena().heap_block_bytes(1), 16u);
  EXPECT_EQ(heap[0], 1);
  EXPECT_EQ(heap[2], 3);
  EXPECT_EQ(heap[3], 0);  // zero-filled beyond the initializer

  // The pointer variable's storage holds the heap block's address.
  void* stored = nullptr;
  std::memcpy(&stored, instance.arena().storage(1), sizeof(stored));
  EXPECT_EQ(stored, static_cast<void*>(instance.arena().heap_block(1)));
}

TEST(Arena, ReinitializeRestoresValues) {
  AppBuilder builder("arena_app2", "");
  builder.scalar_u32("n", 7).node("A", {"n"}, {}, {{"cpu", "a", ""}});
  const AppModel model = builder.build();
  AppInstance instance(model, 0, 1);
  std::uint32_t overwrite = 99;
  std::memcpy(instance.arena().storage(0), &overwrite, 4);
  instance.arena().reinitialize(model);
  std::uint32_t n = 0;
  std::memcpy(&n, instance.arena().storage(0), 4);
  EXPECT_EQ(n, 7u);
}

// --- task dependency tracking -----------------------------------------------------

TEST(AppInstance, CompletionReleasesSuccessors) {
  const AppModel model = tiny_app();
  AppInstance instance(model, 3, 42);
  EXPECT_EQ(instance.instance_id(), 3);
  EXPECT_FALSE(instance.is_complete());

  const auto heads = instance.head_tasks();
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads[0]->node->name, "A");
  EXPECT_EQ(heads[0]->state, TaskState::kReady);
  EXPECT_EQ(instance.task(model.node_index("D")).state, TaskState::kWaiting);

  auto ready = instance.complete_task(*heads[0]);
  ASSERT_EQ(ready.size(), 2u);  // B and C
  std::set<std::string> names{ready[0]->node->name, ready[1]->node->name};
  EXPECT_TRUE(names.count("B"));
  EXPECT_TRUE(names.count("C"));

  EXPECT_TRUE(instance.complete_task(*ready[0]).empty());  // D still waits
  auto last = instance.complete_task(*ready[1]);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0]->node->name, "D");
  EXPECT_TRUE(instance.complete_task(*last[0]).empty());
  EXPECT_TRUE(instance.is_complete());
  EXPECT_EQ(instance.completed_count(), 4u);
}

// --- kernel context ------------------------------------------------------------------

TEST(KernelContext, TypedAccessAndErrors) {
  AppBuilder builder("ctx_app", "");
  builder.scalar_u32("n", 5)
      .buffer("data", 8 * sizeof(float))
      .node("A", {"n", "data"}, {}, {{"cpu", "a", ""}});
  const AppModel model = builder.build();
  AppInstance instance(model, 0, 1);
  KernelContext ctx(instance, model.node("A"), nullptr);

  EXPECT_EQ(ctx.arg_count(), 2u);
  EXPECT_EQ(ctx.scalar<std::uint32_t>(0), 5u);
  ctx.scalar<std::uint32_t>(0) = 9;
  EXPECT_EQ(ctx.scalar<std::uint32_t>(0), 9u);

  const auto view = ctx.buffer<float>(1);
  EXPECT_EQ(view.size(), 8u);
  view[7] = 2.5F;
  EXPECT_FLOAT_EQ(ctx.buffer<float>(1)[7], 2.5F);

  EXPECT_EQ(ctx.accelerator(), nullptr);
  EXPECT_THROW(ctx.scalar<std::uint32_t>(1), DssocError);  // ptr via scalar()
  EXPECT_THROW(ctx.buffer<float>(0), DssocError);          // scalar via buffer()
  EXPECT_THROW(ctx.scalar<std::uint64_t>(0), DssocError);  // too wide
  EXPECT_THROW(ctx.scalar<std::uint32_t>(2), DssocError);  // out of range
}

// --- shared object registry ------------------------------------------------------------

TEST(Registry, ResolveAndFailureModes) {
  SharedObjectRegistry registry;
  SharedObject object("lib.so");
  bool ran = false;
  object.add_symbol("kernel", [&ran](KernelContext&) { ran = true; });
  registry.register_object(std::move(object));

  EXPECT_TRUE(registry.has_object("lib.so"));
  EXPECT_FALSE(registry.has_object("other.so"));
  EXPECT_TRUE(registry.object("lib.so").has_symbol("kernel"));
  EXPECT_THROW(registry.object("missing.so"), SymbolError);
  EXPECT_THROW(registry.resolve("lib.so", "missing"), SymbolError);
  EXPECT_THROW(registry.register_object(SharedObject("lib.so")), DssocError);

  const AppModel model = tiny_app();
  AppInstance instance(model, 0, 1);
  KernelContext ctx(instance, model.node("A"), nullptr);
  registry.resolve("lib.so", "kernel")(ctx);
  EXPECT_TRUE(ran);
}

TEST(Registry, DuplicateSymbolRejected) {
  SharedObject object("x.so");
  object.add_symbol("f", [](KernelContext&) {});
  EXPECT_THROW(object.add_symbol("f", [](KernelContext&) {}), DssocError);
}

// --- workload generation -----------------------------------------------------------------

TEST(Workload, ValidationModeInjectsEverythingAtZero) {
  const Workload w = make_validation_workload({{"a", 3}, {"b", 1}});
  EXPECT_EQ(w.size(), 4u);
  for (const WorkloadEntry& entry : w.entries) {
    EXPECT_EQ(entry.arrival, 0);
  }
  const auto counts = w.instance_counts();
  EXPECT_EQ(counts.at("a"), 3u);
  EXPECT_EQ(counts.at("b"), 1u);
}

TEST(Workload, PerformanceModeDeterministicAtProbabilityOne) {
  Rng rng(1);
  const SimTime frame = sim_from_ms(100.0);
  const Workload w = make_performance_workload(
      {{"app", period_for_count(frame, 123), 1.0}}, frame, rng);
  EXPECT_EQ(w.instance_counts().at("app"), 123u);
  // Sorted by arrival.
  for (std::size_t i = 1; i < w.entries.size(); ++i) {
    EXPECT_LE(w.entries[i - 1].arrival, w.entries[i].arrival);
  }
}

TEST(Workload, ProbabilityScalesExpectedCount) {
  Rng rng(7);
  const SimTime frame = sim_from_ms(100.0);
  const Workload w = make_performance_workload(
      {{"app", sim_from_ms(0.1), 0.5}}, frame, rng);
  // 1000 slots at p = 0.5: expect close to 500.
  EXPECT_GT(w.size(), 400u);
  EXPECT_LT(w.size(), 600u);
}

TEST(Workload, InjectionRateMatchesTableTwoRow) {
  Rng rng(1);
  const SimTime frame = sim_from_ms(100.0);
  const Workload w = make_performance_workload(
      {{"pd", period_for_count(frame, 8), 1.0},
       {"rd", period_for_count(frame, 123), 1.0},
       {"tx", period_for_count(frame, 20), 1.0},
       {"rx", period_for_count(frame, 20), 1.0}},
      frame, rng);
  EXPECT_EQ(w.size(), 171u);  // Table II, 1.71 jobs/ms row
  EXPECT_NEAR(w.offered_rate_per_ms(frame), 1.71, 0.02);
  // Effective rate spans only to the last arrival, so it reads higher.
  EXPECT_GE(w.effective_rate_per_ms(), w.offered_rate_per_ms(frame));
}

TEST(Workload, ValidatesParameters) {
  Rng rng(1);
  EXPECT_THROW(make_performance_workload({{"a", 0, 1.0}}, 100, rng),
               DssocError);
  EXPECT_THROW(make_performance_workload({{"a", 10, 1.5}}, 100, rng),
               DssocError);
  EXPECT_THROW(make_performance_workload({}, 0, rng), DssocError);
  EXPECT_THROW(make_validation_workload({{"a", -1}}), DssocError);
}

// --- resource handler protocol --------------------------------------------------------------

platform::PE test_pe(int id, platform::PEKind kind = platform::PEKind::kCpu,
                     const std::string& type_name = "cpu") {
  platform::PE pe;
  pe.id = id;
  pe.type = platform::PEType{type_name, kind, 1.0, "a53"};
  pe.label = "PE" + std::to_string(id);
  pe.host_core = 1;
  return pe;
}

TEST(ResourceHandler, IdleRunCompleteCycle) {
  const AppModel model = tiny_app();
  AppInstance instance(model, 0, 1);
  TaskInstance& task = *instance.head_tasks()[0];
  const PlatformOption* option = &task.node->platforms[0];

  ResourceHandler handler(test_pe(0));
  EXPECT_EQ(handler.status(), PEStatus::kIdle);
  EXPECT_TRUE(handler.can_accept());
  EXPECT_EQ(handler.collect_completed().task, nullptr);

  handler.assign(&task, option, 1234);
  EXPECT_EQ(handler.status(), PEStatus::kRun);
  EXPECT_FALSE(handler.can_accept());  // depth 1
  EXPECT_EQ(handler.load(), 1u);
  EXPECT_EQ(task.state, TaskState::kAssigned);
  EXPECT_EQ(task.dispatch_time, 1234);
  EXPECT_EQ(handler.peek_assignment().task, &task);

  handler.mark_complete();
  EXPECT_EQ(handler.status(), PEStatus::kComplete);
  const Assignment done = handler.collect_completed();
  EXPECT_EQ(done.task, &task);
  EXPECT_EQ(done.platform, option);
  EXPECT_EQ(handler.status(), PEStatus::kIdle);
}

TEST(ResourceHandler, ReservationQueueDepthTwo) {
  const AppModel model = tiny_app();
  AppInstance a(model, 0, 1);
  AppInstance b(model, 1, 2);
  TaskInstance& t1 = *a.head_tasks()[0];
  TaskInstance& t2 = *b.head_tasks()[0];
  const PlatformOption* option = &t1.node->platforms[0];

  ResourceHandler handler(test_pe(0), 2);
  handler.assign(&t1, option);
  EXPECT_TRUE(handler.can_accept());  // one slot left
  handler.assign(&t2, option);
  EXPECT_FALSE(handler.can_accept());
  EXPECT_EQ(handler.load(), 2u);

  handler.mark_complete();  // finishes t1; t2 is next
  EXPECT_EQ(handler.status(), PEStatus::kComplete);
  EXPECT_EQ(handler.collect_completed().task, &t1);
  EXPECT_EQ(handler.status(), PEStatus::kRun);
  EXPECT_EQ(handler.peek_assignment().task, &t2);
  handler.mark_complete();
  EXPECT_EQ(handler.collect_completed().task, &t2);
  EXPECT_EQ(handler.status(), PEStatus::kIdle);
}

TEST(ResourceHandler, RejectsInvalidDepthAndOverflow) {
  EXPECT_THROW(ResourceHandler(test_pe(0), 0), DssocError);
}

// --- schedulers --------------------------------------------------------------------------------

/// Fixed-cost estimator for isolated scheduler tests.
class FakeEstimator final : public ExecutionEstimator {
 public:
  SimTime estimate(const TaskInstance&, const PlatformOption&,
                   const ResourceHandler& handler) const override {
    // PE id 0 is the "fast" PE: half the cost of the others.
    return handler.pe().id == 0 ? 100 : 200;
  }
  SimTime available_at(const ResourceHandler&) const override { return 0; }
};

struct SchedulerFixture {
  SchedulerFixture()
      : model([] {
          AppBuilder b("sched_app", "");
          b.scalar_u32("n", 1);
          // Three independent CPU tasks plus one accel-only task.
          b.node("T0", {"n"}, {}, {{"cpu", "f", ""}});
          b.node("T1", {"n"}, {}, {{"cpu", "f", ""}});
          b.node("T2", {"n"}, {}, {{"cpu", "f", ""}});
          b.node("T_ACC", {"n"}, {}, {{"fft", "g", "fft_accel.so"}});
          return b.build();
        }()),
        instance(model, 0, 1) {
    handlers_storage.push_back(
        std::make_unique<ResourceHandler>(test_pe(0)));
    handlers_storage.push_back(
        std::make_unique<ResourceHandler>(test_pe(1)));
    handlers_storage.push_back(std::make_unique<ResourceHandler>(
        test_pe(2, platform::PEKind::kAccelerator, "fft")));
    for (auto& h : handlers_storage) {
      handlers.push_back(h.get());
    }
    for (TaskInstance& task : instance.tasks()) {
      ready.push_back(&task);
    }
    ctx.now = 0;
    ctx.estimator = &estimator;
    ctx.rng = &rng;
  }

  AppModel model;
  AppInstance instance;
  std::vector<std::unique_ptr<ResourceHandler>> handlers_storage;
  std::vector<ResourceHandler*> handlers;
  ReadyList ready;
  FakeEstimator estimator;
  Rng rng{5};
  SchedulerContext ctx;
};

TEST(Scheduler, SupportedOptionMatchesPeType) {
  SchedulerFixture fx;
  const TaskInstance& cpu_task = fx.instance.task(0);
  const TaskInstance& acc_task = fx.instance.task(3);
  EXPECT_NE(supported_option(cpu_task, *fx.handlers[0]), nullptr);
  EXPECT_EQ(supported_option(cpu_task, *fx.handlers[2]), nullptr);
  EXPECT_EQ(supported_option(acc_task, *fx.handlers[0]), nullptr);
  EXPECT_NE(supported_option(acc_task, *fx.handlers[2]), nullptr);
}

TEST(Scheduler, FrfsFillsAllSupportingPes) {
  SchedulerFixture fx;
  auto scheduler = make_frfs_scheduler();
  scheduler->schedule(fx.ready, fx.handlers, fx.ctx);
  // T0 -> PE0, T1 -> PE1, T2 stays (no CPU left), T_ACC -> accel.
  EXPECT_EQ(fx.ready.size(), 1u);
  EXPECT_EQ(fx.ready.front()->node->name, "T2");
  EXPECT_EQ(fx.handlers[0]->peek_assignment().task->node->name, "T0");
  EXPECT_EQ(fx.handlers[1]->peek_assignment().task->node->name, "T1");
  EXPECT_EQ(fx.handlers[2]->peek_assignment().task->node->name, "T_ACC");
}

TEST(Scheduler, MetBindsToFastestPeAndWaitsForIt) {
  SchedulerFixture fx;
  auto scheduler = make_met_scheduler();
  scheduler->schedule(fx.ready, fx.handlers, fx.ctx);
  // T0 lands on the fast PE 0. Classic MET binds T1 and T2 to PE 0 as well
  // (it has the minimum execution time), so they *wait* rather than running
  // on the slower PE 1.
  EXPECT_EQ(fx.handlers[0]->peek_assignment().task->node->name, "T0");
  EXPECT_EQ(fx.handlers[1]->peek_assignment().task, nullptr);
  EXPECT_EQ(fx.ready.size(), 2u);
  // The accel-only task still goes to the accelerator (its only option).
  EXPECT_EQ(fx.handlers[2]->peek_assignment().task->node->name, "T_ACC");
}

TEST(Scheduler, EftCommitsGloballyMinimalFinish) {
  SchedulerFixture fx;
  auto scheduler = make_eft_scheduler();
  scheduler->schedule(fx.ready, fx.handlers, fx.ctx);
  // All three assignable tasks placed; one CPU task remains.
  EXPECT_EQ(fx.ready.size(), 1u);
  EXPECT_NE(fx.handlers[0]->peek_assignment().task, nullptr);
  EXPECT_NE(fx.handlers[1]->peek_assignment().task, nullptr);
  EXPECT_NE(fx.handlers[2]->peek_assignment().task, nullptr);
}

TEST(Scheduler, RandomAssignsOnlySupportingPes) {
  SchedulerFixture fx;
  auto scheduler = make_random_scheduler();
  scheduler->schedule(fx.ready, fx.handlers, fx.ctx);
  const Assignment acc = fx.handlers[2]->peek_assignment();
  if (acc.task != nullptr) {
    EXPECT_EQ(acc.task->node->name, "T_ACC");  // only accel-capable task
  }
  // CPU handlers never received the accel-only task.
  for (int h : {0, 1}) {
    const Assignment assignment = fx.handlers[h]->peek_assignment();
    if (assignment.task != nullptr) {
      EXPECT_NE(assignment.task->node->name, "T_ACC");
    }
  }
}

TEST(Scheduler, PoliciesLeaveUnassignableTasksInReadyList) {
  SchedulerFixture fx;
  // Occupy the accelerator so T_ACC cannot be placed.
  const TaskInstance& blocker = fx.instance.task(0);
  fx.handlers[2]->assign(const_cast<TaskInstance*>(&blocker),
                         &blocker.node->platforms[0]);
  ReadyList ready{&fx.instance.task(3)};  // T_ACC only
  for (const auto& factory :
       {make_frfs_scheduler, make_met_scheduler, make_eft_scheduler,
        make_random_scheduler}) {
    auto scheduler = factory();
    scheduler->schedule(ready, fx.handlers, fx.ctx);
    EXPECT_EQ(ready.size(), 1u) << scheduler->name();
  }
}

TEST(SchedulerRegistry, DefaultLibraryAndCustomPolicies) {
  SchedulerRegistry& registry = SchedulerRegistry::instance();
  for (const char* name : {"FRFS", "MET", "EFT", "RANDOM"}) {
    EXPECT_TRUE(registry.has_policy(name)) << name;
    EXPECT_EQ(registry.create(name)->name(), name);
  }
  EXPECT_THROW(registry.create("HEFT_UNKNOWN"), ConfigError);

  // The plug-and-play integration point: register a custom policy.
  class NullScheduler final : public Scheduler {
   public:
    const std::string& name() const override {
      static const std::string n = "NULL_TEST";
      return n;
    }
    void schedule(ReadyList&, std::vector<ResourceHandler*>&,
                  SchedulerContext&) override {}
  };
  registry.register_policy("NULL_TEST",
                           [] { return std::make_unique<NullScheduler>(); });
  EXPECT_TRUE(registry.has_policy("NULL_TEST"));
  EXPECT_EQ(registry.create("NULL_TEST")->name(), "NULL_TEST");
}

// --- application library ----------------------------------------------------------------------

TEST(ApplicationLibrary, AddGetAndMissingError) {
  ApplicationLibrary library;
  library.add(tiny_app());
  EXPECT_TRUE(library.has("tiny"));
  EXPECT_EQ(library.get("tiny").nodes.size(), 4u);
  EXPECT_THROW(library.get("unknown_app"), DssocError);
  EXPECT_THROW(library.add(tiny_app()), DssocError);  // parsed twice
  EXPECT_EQ(library.size(), 1u);
}

}  // namespace
}  // namespace dssoc::core
