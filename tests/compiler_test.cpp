// Tests for the automatic application-conversion toolchain: IR construction
// and interpretation, dynamic tracing, kernel detection, outlining
// (functional equivalence!), structural hashing, recognition, DAG emission
// and the full pipeline on the monolithic range-detection program —
// including the case-study assertions (6 kernels: 3 I/O-like + 2 DFT +
// 1 IDFT; recognized swaps stay functionally correct).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/registry.hpp"
#include "compiler/pipeline.hpp"
#include "core/app_instance.hpp"
#include "core/app_json.hpp"
#include "compiler/radar_program.hpp"
#include "core/emulation.hpp"
#include "platform/platform.hpp"

namespace dssoc::compiler {
namespace {

// --- IR + interpreter ----------------------------------------------------------

Module simple_sum_program(std::size_t n) {
  FunctionBuilder fb("main");
  fb.alloc("data", n);
  fb.alloc("out", 1);
  const Reg zero = fb.constant(0.0);
  const Reg count = fb.constant(static_cast<double>(n));
  fb.for_loop(zero, count, [&](FunctionBuilder& b, Reg i) {
    b.store("data", i, b.mul(i, i));
  });
  const Reg acc = fb.mov(zero);
  fb.for_loop(zero, count, [&](FunctionBuilder& b, Reg i) {
    b.assign(acc, b.add(acc, b.load("data", i)));
  });
  const Reg idx = fb.constant(0.0);
  fb.store("out", idx, acc);
  fb.ret();
  Module module;
  module.entry = "main";
  module.functions.emplace("main", fb.build());
  return module;
}

TEST(Interp, ExecutesLoopsAndArrays) {
  const Module module = simple_sum_program(10);
  validate(module);
  OwningMemory memory;
  const std::size_t executed = execute(module, memory);
  EXPECT_GT(executed, 10u);
  // sum of squares 0..9 = 285.
  EXPECT_DOUBLE_EQ(memory.array("out")[0], 285.0);
}

TEST(Interp, BoundsAreChecked) {
  FunctionBuilder fb("main");
  fb.alloc("a", 4);
  const Reg idx = fb.constant(9.0);
  fb.store("a", idx, idx);
  fb.ret();
  Module module;
  module.entry = "main";
  module.functions.emplace("main", fb.build());
  OwningMemory memory;
  EXPECT_THROW(execute(module, memory), DssocError);
}

TEST(Interp, InstructionLimitGuardsRunaways) {
  FunctionBuilder fb("main");
  const Reg zero = fb.constant(0.0);
  const Reg huge = fb.constant(1e18);
  fb.for_loop(zero, huge, [&](FunctionBuilder& b, Reg) {
    b.constant(1.0);
  });
  fb.ret();
  Module module;
  module.entry = "main";
  module.functions.emplace("main", fb.build());
  OwningMemory memory;
  InterpreterLimits limits;
  limits.max_instructions = 10'000;
  EXPECT_THROW(execute(module, memory, limits), DssocError);
}

TEST(Interp, ValidationCatchesBrokenModules) {
  Module module;
  module.entry = "main";
  Function fn;
  fn.name = "main";
  EXPECT_THROW(
      [&] {
        Module m;
        m.entry = "main";
        m.functions.emplace("main", fn);  // no blocks
        validate(m);
      }(),
      DssocError);
  EXPECT_THROW(validate(module), DssocError);  // no entry
}

TEST(Trace, CountsBlocksAndAllocations) {
  const Module module = simple_sum_program(16);
  OwningMemory memory;
  const Trace trace = trace_execution(module, memory);
  EXPECT_GT(trace.executed_instructions, 0u);
  EXPECT_EQ(trace.allocations.at("data"), 16u);
  EXPECT_EQ(trace.allocations.at("out"), 1u);
  // Entry block runs once; loop bodies 16 times.
  EXPECT_EQ(trace.block_counts.at(0), 1u);
  std::size_t max_count = 0;
  for (const auto& [block, count] : trace.block_counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GE(max_count, 16u);
}

// --- kernel detection ---------------------------------------------------------------

TEST(Detect, FindsTwoHotLoopsInSumProgram) {
  const Module module = simple_sum_program(64);
  OwningMemory memory;
  const Trace trace = trace_execution(module, memory);
  const auto regions =
      detect_kernels(module.function("main"), trace, DetectionOptions{});
  std::size_t kernels = 0;
  for (const Region& region : regions) {
    kernels += region.is_kernel ? 1 : 0;
  }
  EXPECT_EQ(kernels, 2u);
  // Regions tile the function in order.
  int expected = 0;
  for (const Region& region : regions) {
    EXPECT_EQ(region.first_block, expected);
    expected = region.last_block + 1;
  }
  EXPECT_EQ(expected,
            static_cast<int>(module.function("main").blocks.size()));
}

TEST(Detect, HotRatioControlsSensitivity) {
  const Module module = simple_sum_program(16);
  OwningMemory memory;
  const Trace trace = trace_execution(module, memory);
  DetectionOptions strict;
  strict.hot_ratio = 1000.0;  // nothing qualifies
  const auto regions =
      detect_kernels(module.function("main"), trace, strict);
  for (const Region& region : regions) {
    EXPECT_FALSE(region.is_kernel);
  }
}

// --- outlining ---------------------------------------------------------------------

TEST(Outline, PreservesProgramBehaviour) {
  const Module module = simple_sum_program(32);
  OwningMemory memory;
  const Trace trace = trace_execution(module, memory);
  const auto regions = detect_kernels(module.function("main"), trace);
  const OutlineResult outlined = outline_regions(module, regions);

  EXPECT_EQ(outlined.region_functions.size(), regions.size());
  // The outlined program computes the same result from scratch.
  OwningMemory fresh;
  execute(outlined.module, fresh);
  EXPECT_DOUBLE_EQ(fresh.array("out")[0], 31.0 * 32.0 * 63.0 / 6.0);
}

TEST(Outline, SpillArrayCarriesLiveValues) {
  const Module module = simple_sum_program(8);
  OwningMemory memory;
  const Trace trace = trace_execution(module, memory);
  const auto regions = detect_kernels(module.function("main"), trace);
  const OutlineResult outlined = outline_regions(module, regions);
  bool spill_global = false;
  for (const auto& [name, size] : outlined.module.globals) {
    if (name == kSpillArray) {
      spill_global = true;
      EXPECT_GT(size, 0u);
    }
  }
  EXPECT_TRUE(spill_global);
  // Prologue/epilogue instructions are marked as spill code.
  bool saw_spill_instr = false;
  for (const std::string& fn_name : outlined.region_functions) {
    for (const BasicBlock& block :
         outlined.module.function(fn_name).blocks) {
      for (const Instr& instr : block.instrs) {
        saw_spill_instr |= instr.is_spill;
      }
    }
  }
  EXPECT_TRUE(saw_spill_instr);
}

// --- structural hashing / recognition ------------------------------------------------

TEST(Recognize, HashIsInvariantToNamesAndSize) {
  auto hash_of_dft = [](std::size_t n, const std::string& prefix) {
    FunctionBuilder fb("main");
    for (const std::string suffix : {"_ir", "_ii", "_or", "_oi"}) {
      fb.alloc(prefix + suffix, n);
    }
    const Reg count = fb.constant(static_cast<double>(n));
    const Reg zero = fb.constant(0.0);
    fb.for_loop(zero, count, [&](FunctionBuilder& b, Reg i) {
      b.store(prefix + "_ir", i, b.sin(i));
      b.store(prefix + "_ii", i, b.cos(i));
    });
    emit_naive_dft(fb, count, prefix + "_ir", prefix + "_ii", prefix + "_or",
                   prefix + "_oi");
    fb.ret();
    Module module;
    module.entry = "main";
    module.functions.emplace("main", fb.build());
    OwningMemory memory;
    const Trace trace = trace_execution(module, memory);
    const auto regions = detect_kernels(module.function("main"), trace);
    const OutlineResult outlined = outline_regions(module, regions);
    const Region* last_kernel = nullptr;
    for (const Region& region : regions) {
      if (region.is_kernel) {
        last_kernel = &region;
      }
    }
    EXPECT_NE(last_kernel, nullptr);
    return hash_function(outlined.module.function(last_kernel->name));
  };
  EXPECT_EQ(hash_of_dft(16, "a"), hash_of_dft(64, "completely_different"));
}

TEST(Recognize, StandardLibraryHasDistinctEntries) {
  const RecognitionLibrary library = RecognitionLibrary::standard();
  EXPECT_EQ(library.size(), 2u);
  EXPECT_EQ(library.match(0x1234), nullptr);
}

// --- full pipeline on the monolithic radar program -----------------------------------

RangeProgramParams small_params() {
  RangeProgramParams params;
  params.n = 64;
  params.delay = 11;
  return params;
}

TEST(Pipeline, MonolithicProgramComputesRangePeak) {
  const Module module = build_monolithic_range_detection(small_params());
  OwningMemory memory;
  execute(module, memory);
  const auto mag = memory.array("mag");
  const auto peak = static_cast<std::size_t>(
      std::max_element(mag.begin(), mag.end()) - mag.begin());
  EXPECT_EQ(peak, 11u);
}

TEST(Pipeline, DetectsSixKernelsInRangeDetection) {
  // Case study 4: "among the six kernels that are currently detected, three
  // of them consist of heavy file I/O, along with two kernels consisting of
  // two FFTs [DFTs] and one kernel consisting of the IFFT [IDFT]".
  const Module module = build_monolithic_range_detection(small_params());
  core::SharedObjectRegistry registry;
  CompileOptions options;
  options.app_name = "auto_rd_six";
  options.recognize = false;
  const CompiledApp compiled = compile_to_dag(module, options, registry);
  EXPECT_EQ(compiled.kernel_count(), 6u);
  EXPECT_GT(compiled.traced_instructions, 0u);
}

TEST(Pipeline, RecognizesTwoDftsAndOneIdft) {
  const Module module = build_monolithic_range_detection(small_params());
  core::SharedObjectRegistry registry;
  const RecognitionLibrary library = RecognitionLibrary::standard();
  CompileOptions options;
  options.app_name = "auto_rd_rec";
  const CompiledApp compiled =
      compile_to_dag(module, options, registry, &library);
  ASSERT_EQ(compiled.recognized.size(), 3u);
  std::size_t dfts = 0;
  std::size_t idfts = 0;
  for (const auto& [node, variant] : compiled.recognized) {
    if (variant == "library_fft") {
      ++dfts;
    } else if (variant == "library_ifft_product") {
      ++idfts;
    }
  }
  EXPECT_EQ(dfts, 2u);
  EXPECT_EQ(idfts, 1u);
  // Recognized nodes expose the accelerator platform.
  for (const auto& [node_name, variant] : compiled.recognized) {
    const core::DagNode& node = compiled.model.node(node_name);
    bool has_accel = false;
    for (const auto& option : node.platforms) {
      has_accel |= option.pe_type == "fft";
    }
    EXPECT_TRUE(has_accel) << node_name;
  }
}

TEST(Pipeline, EmittedJsonIsListingOneCompatible) {
  const Module module = build_monolithic_range_detection(small_params());
  core::SharedObjectRegistry registry;
  CompileOptions options;
  options.app_name = "auto_rd_json";
  options.recognize = false;
  const CompiledApp compiled = compile_to_dag(module, options, registry);
  // Parse the emitted document back through the application handler.
  const core::AppModel reparsed = core::app_from_json(compiled.dag_json);
  EXPECT_EQ(reparsed.name, "auto_rd_json");
  EXPECT_EQ(reparsed.nodes.size(), compiled.model.nodes.size());
  EXPECT_TRUE(reparsed.has_variable("mag"));
  EXPECT_TRUE(reparsed.has_variable(kSpillArray));
}

/// Runs the compiled app through the virtual engine and returns the
/// magnitude-peak index recovered from the instance memory — done by
/// re-executing the emitted kernels directly (engine functional mode).
std::size_t run_compiled_and_find_peak(const CompiledApp& compiled,
                                       core::SharedObjectRegistry& registry,
                                       const std::string& config) {
  platform::Platform platform = platform::zcu102();
  core::ApplicationLibrary library;
  library.add(compiled.model);

  // Execute kernels directly in DAG order against a standalone instance to
  // read back the mag array (the engine owns its instances internally).
  core::AppInstance instance(library.get(compiled.model.name), 0, 1);
  platform::FftAcceleratorDevice device(platform.accelerators.at("fft"));
  for (const std::size_t index : compiled.model.topological_order()) {
    const core::DagNode& node = compiled.model.nodes[index];
    const core::PlatformOption* chosen = &node.platforms.front();
    for (const auto& option : node.platforms) {
      if (option.pe_type == config) {
        chosen = &option;
      }
    }
    struct Port final : core::AcceleratorPort {
      explicit Port(platform::FftAcceleratorDevice& d) : device(d) {}
      void fft(std::span<dsp::cfloat> data, bool inverse) override {
        device.dma_in(data);
        device.start(data.size(), inverse);
        device.dma_out(data);
      }
      platform::FftAcceleratorDevice& device;
    } port(device);
    core::KernelContext ctx(instance, node,
                            chosen->pe_type == "fft" ? &port : nullptr);
    const std::string& object = chosen->shared_object.empty()
                                    ? compiled.model.shared_object
                                    : chosen->shared_object;
    registry.resolve(object, chosen->runfunc)(ctx);
  }
  const std::size_t mag_index = compiled.model.variable_index("mag");
  const auto* mag = static_cast<const double*>(
      instance.arena().heap_block(mag_index));
  const std::size_t n =
      instance.arena().heap_block_bytes(mag_index) / sizeof(double);
  return static_cast<std::size_t>(
      std::max_element(mag, mag + n) - mag);
}

TEST(Pipeline, CompiledAppStaysCorrectOnCpu) {
  const Module module = build_monolithic_range_detection(small_params());
  core::SharedObjectRegistry registry;
  CompileOptions options;
  options.app_name = "auto_rd_cpu";
  options.recognize = false;
  const CompiledApp compiled = compile_to_dag(module, options, registry);
  EXPECT_EQ(run_compiled_and_find_peak(compiled, registry, "cpu"), 11u);
}

TEST(Pipeline, OptimizedSwapPreservesOutput) {
  // "the application output remains correct" after the FFTW-style swap.
  const Module module = build_monolithic_range_detection(small_params());
  core::SharedObjectRegistry registry;
  const RecognitionLibrary library = RecognitionLibrary::standard();
  CompileOptions options;
  options.app_name = "auto_rd_opt";
  const CompiledApp compiled =
      compile_to_dag(module, options, registry, &library);
  EXPECT_EQ(run_compiled_and_find_peak(compiled, registry, "cpu"), 11u);
}

TEST(Pipeline, AcceleratorSwapPreservesOutput) {
  // "when replacing the DFT kernel with an FPGA-based accelerator call ...
  // the output remains correct".
  const Module module = build_monolithic_range_detection(small_params());
  core::SharedObjectRegistry registry;
  const RecognitionLibrary library = RecognitionLibrary::standard();
  CompileOptions options;
  options.app_name = "auto_rd_accel";
  const CompiledApp compiled =
      compile_to_dag(module, options, registry, &library);
  EXPECT_EQ(run_compiled_and_find_peak(compiled, registry, "fft"), 11u);
}

TEST(Pipeline, CompiledAppRunsInVirtualEngine) {
  const Module module = build_monolithic_range_detection(small_params());
  core::SharedObjectRegistry registry;
  const RecognitionLibrary library = RecognitionLibrary::standard();
  CompileOptions options;
  options.app_name = "auto_rd_engine";
  const CompiledApp compiled =
      compile_to_dag(module, options, registry, &library);

  platform::Platform platform = platform::zcu102();
  core::ApplicationLibrary apps;
  apps.add(compiled.model);
  core::EmulationSetup setup;
  setup.platform = &platform;
  setup.soc = platform::parse_config_label("3C+1F");
  setup.apps = &apps;
  setup.registry = &registry;
  setup.cost_model = platform::default_cost_model();
  const core::Workload workload =
      core::make_validation_workload({{"auto_rd_engine", 1}});
  const core::EmulationStats stats = core::run_virtual(setup, workload);
  EXPECT_EQ(stats.apps.size(), 1u);
  EXPECT_EQ(stats.tasks.size(), compiled.model.nodes.size());
}

TEST(Pipeline, RecognitionShrinksModeledCost) {
  // The emulated cost of a recognized DFT node must drop by orders of
  // magnitude (the 102x case-study effect, modeled).
  const Module module = build_monolithic_range_detection(
      RangeProgramParams{256, 37, 0.02});
  core::SharedObjectRegistry registry;
  const RecognitionLibrary library = RecognitionLibrary::standard();

  CompileOptions naive_options;
  naive_options.app_name = "auto_rd_naive_cost";
  naive_options.recognize = false;
  const CompiledApp naive = compile_to_dag(module, naive_options, registry);

  CompileOptions opt_options;
  opt_options.app_name = "auto_rd_opt_cost";
  const CompiledApp optimized =
      compile_to_dag(module, opt_options, registry, &library);

  const platform::CostModel cost_model = platform::default_cost_model();
  ASSERT_FALSE(optimized.recognized.empty());
  const std::string dft_node = optimized.recognized.front().first;
  const core::CostAnnotation& before = naive.model.node(dft_node).cost;
  const core::CostAnnotation& after = optimized.model.node(dft_node).cost;
  const SimTime cost_before =
      cost_model.cpu_cost(before.kernel, before.units, 1.0);
  const SimTime cost_after =
      cost_model.cpu_cost(after.kernel, after.units, 1.0);
  EXPECT_GT(cost_before, 20 * cost_after);
}

}  // namespace
}  // namespace dssoc::compiler
