// Integration tests for the real-time (threaded) engine: genuine POSIX
// threads per PE manager, condvar handshakes, real kernel execution and
// accelerator data staging. Functional assertions only — wall-clock values
// depend on the host.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "apps/registry.hpp"
#include "core/emulation.hpp"
#include "platform/platform.hpp"

namespace dssoc::core {
namespace {

struct RtFixture {
  RtFixture() {
    platform = platform::zcu102();
    apps::register_all_kernels(registry);
    library = apps::default_application_library();
  }

  EmulationSetup setup(const std::string& config,
                       const std::string& scheduler = "FRFS") {
    EmulationSetup s;
    s.platform = &platform;
    s.soc = platform::parse_config_label(config);
    s.apps = &library;
    s.registry = &registry;
    s.cost_model = platform::default_cost_model();
    s.options.scheduler = scheduler;
    return s;
  }

  platform::Platform platform;
  SharedObjectRegistry registry;
  ApplicationLibrary library;
};

TEST(RealTimeEngine, CompletesValidationWorkload) {
  RtFixture fx;
  const Workload workload = make_validation_workload(
      {{"wifi_tx", 1}, {"wifi_rx", 1}, {"range_detection", 1}});
  const EmulationStats stats = run_realtime(fx.setup("2C+0F"), workload);
  EXPECT_EQ(stats.apps.size(), 3u);
  EXPECT_EQ(stats.tasks.size(), 22u);
  EXPECT_GT(stats.makespan, 0);
}

TEST(RealTimeEngine, TaskTimingIsOrdered) {
  RtFixture fx;
  const Workload workload =
      make_validation_workload({{"range_detection", 1}});
  const EmulationStats stats = run_realtime(fx.setup("1C+0F"), workload);
  ASSERT_EQ(stats.tasks.size(), 6u);
  for (const TaskRecord& task : stats.tasks) {
    EXPECT_LE(task.start_time, task.end_time);
    EXPECT_GE(task.start_time, 0);
  }
}

TEST(RealTimeEngine, AcceleratorPathStaysFunctional) {
  // Force FFT tasks through the accelerator manager thread (DMA staging +
  // device transform) by providing an accelerator and the FRFS policy on a
  // pulse-Doppler slice; the run must still complete.
  RtFixture fx;
  apps::PulseDopplerParams params;
  params.pulses = 4;
  params.samples = 32;
  params.range_gates = 8;
  AppModel model = apps::make_pulse_doppler(params);
  // Drop the CPU fallback from accelerator-capable nodes: FRFS hands a task
  // to the first accepting PE, so with the fallback present the CPU can
  // legally absorb every FFT task whenever its queue has room, making
  // "accelerator used" a race. Accel-only options pin the routing.
  for (DagNode& node : model.nodes) {
    const bool has_accel = std::any_of(
        node.platforms.begin(), node.platforms.end(),
        [](const PlatformOption& o) { return o.pe_type == "fft"; });
    if (has_accel) {
      std::erase_if(node.platforms, [](const PlatformOption& o) {
        return o.pe_type != "fft";
      });
    }
  }
  ApplicationLibrary small;
  small.add(std::move(model));

  EmulationSetup s = fx.setup("1C+1F");
  s.apps = &small;
  const Workload workload = make_validation_workload({{"pulse_doppler", 1}});
  const EmulationStats stats = run_realtime(s, workload);
  EXPECT_EQ(stats.apps.size(), 1u);
  EXPECT_EQ(stats.tasks.size(), params.task_count());
  std::size_t accel_tasks = 0;
  for (const PERecord& pe : stats.pes) {
    if (pe.type == "fft") {
      accel_tasks = pe.tasks_executed;
    }
  }
  EXPECT_GT(accel_tasks, 0u);
}

TEST(RealTimeEngine, PerformanceModeDrainsTrace) {
  RtFixture fx;
  Rng rng(3);
  const Workload workload = make_performance_workload(
      {{"wifi_tx", sim_from_ms(1.0), 1.0}}, sim_from_ms(5.0), rng);
  const EmulationStats stats = run_realtime(fx.setup("2C+0F"), workload);
  EXPECT_EQ(stats.apps.size(), workload.size());
}

TEST(RealTimeEngine, EmptyWorkloadTerminates) {
  RtFixture fx;
  const EmulationStats stats = run_realtime(fx.setup("1C+0F"), Workload{});
  EXPECT_TRUE(stats.tasks.empty());
}

TEST(RealTimeEngine, AllSchedulersComplete) {
  RtFixture fx;
  const Workload workload = make_validation_workload(
      {{"range_detection", 2}, {"wifi_tx", 1}});
  for (const char* policy : {"FRFS", "MET", "EFT", "RANDOM"}) {
    const EmulationStats stats =
        run_realtime(fx.setup("2C+1F", policy), workload);
    EXPECT_EQ(stats.apps.size(), 3u) << policy;
  }
}

TEST(RealTimeEngine, ResumesFromQuiescentVirtualSnapshot) {
  // Checkpoint hand-off across engines: the virtual engine warms up to a
  // quiescent boundary, the threaded engine adopts the snapshot (completed
  // apps, PE totals, RNG) and executes only the tail, with timestamps
  // continuing from the snapshot's virtual time.
  RtFixture fx;
  const EmulationSetup setup = fx.setup("2C+0F");
  Rng rng(3);
  const Workload warmup = make_performance_workload(
      {{"wifi_tx", sim_from_ms(1.0), 1.0}}, sim_from_ms(2.0), rng);
  Emulation warm(setup, warmup);
  warm.run_until_idle(sim_from_ms(2.0));
  const EngineSnapshot snap = warm.snapshot();
  ASSERT_TRUE(snap.quiescent());
  const SimTime offset = snap.virtual_time();
  ASSERT_GT(offset, 0);

  Workload composite;
  composite.entries = warmup.entries;
  Rng tail_rng(3);
  Workload tail = make_performance_workload(
      {{"wifi_tx", sim_from_ms(1.0), 1.0}}, sim_from_ms(2.0), tail_rng);
  for (WorkloadEntry& entry : tail.entries) {
    entry.arrival += offset;
    composite.entries.push_back(entry);
  }

  const EmulationStats stats = run_realtime(setup, composite, nullptr, snap);
  EXPECT_EQ(stats.apps.size(), composite.size());
  EXPECT_GT(stats.makespan, offset);
  // The warm-up prefix arrives verbatim from the snapshot; only tail apps
  // carry post-resume injection times.
  std::size_t resumed_apps = 0;
  for (const AppRecord& app : stats.apps) {
    if (app.injection_time >= offset) {
      ++resumed_apps;
    }
  }
  EXPECT_EQ(resumed_apps, tail.size());
}

TEST(RealTimeEngine, MidFlightSnapshotIsRejected) {
  // A wall-clock engine cannot reconstruct in-flight task timelines; the
  // resume overload must refuse non-quiescent snapshots loudly.
  RtFixture fx;
  const EmulationSetup setup = fx.setup("1C+0F");
  const Workload workload = make_validation_workload({{"pulse_doppler", 1}});
  Emulation em(setup, workload);
  const EngineSnapshot snap = em.snapshot(1);  // first boundary: in flight
  ASSERT_FALSE(snap.quiescent());
  EXPECT_THROW(run_realtime(setup, workload, nullptr, snap), StateError);
}

TEST(RealTimeEngine, ReservationQueueDepthTwoCompletes) {
  RtFixture fx;
  EmulationSetup s = fx.setup("2C+0F");
  s.options.pe_queue_depth = 2;
  const Workload workload =
      make_validation_workload({{"range_detection", 4}});
  const EmulationStats stats = run_realtime(s, workload);
  EXPECT_EQ(stats.apps.size(), 4u);
  EXPECT_EQ(stats.tasks.size(), 24u);
}

}  // namespace
}  // namespace dssoc::core
