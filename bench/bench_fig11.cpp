// Fig. 11 reproduction — Odroid XU3 portability study: execution time for
// twelve BIG/LITTLE configurations against increasing injection rates,
// performance mode, FRFS.
//
// Expected shapes (paper): execution time ~linear in injection rate;
// 3BIG+2LTL best overall; 4BIG+3LTL and 4BIG+2LTL *slower* than 4BIG+1LTL
// because FRFS overhead is proportional to PE count and runs on a slow
// LITTLE overlay core.
//
// The 96 (config x rate) emulations are independent and run across the
// SweepRunner thread pool, or the fault-isolated process pool when
// DSSOC_SWEEP_FABRIC=proc (exp/proc_pool.hpp).
#include "bench/harness.hpp"

#include "common/error.hpp"
#include "exp/aggregate.hpp"
#include "exp/sweep_env.hpp"

int main() {
  using namespace dssoc;
  bench::Harness harness;
  const double window_ms = bench::full_scale() ? 100.0 : 10.0;
  const SimTime frame = sim_from_ms(window_ms);

  const char* configs[] = {"0BIG+3LTL", "1BIG+2LTL", "1BIG+3LTL",
                           "2BIG+1LTL", "2BIG+2LTL", "2BIG+3LTL",
                           "3BIG+1LTL", "3BIG+2LTL", "3BIG+3LTL",
                           "4BIG+1LTL", "4BIG+2LTL", "4BIG+3LTL"};
  const double rates[] = {4, 6, 8, 10, 12, 14, 16, 18};

  // Table II application mix, rescaled to each target rate.
  const double fractions[4] = {8.0 / 171.0, 123.0 / 171.0, 20.0 / 171.0,
                               20.0 / 171.0};

  std::vector<exp::SweepPoint> points;
  for (const char* config : configs) {
    for (const double rate : rates) {
      const double jobs = rate * window_ms;
      auto count = [&](double fraction) {
        return std::max<std::size_t>(
            1, static_cast<std::size_t>(jobs * fraction));
      };
      Rng rng(11);
      exp::SweepPoint point;
      point.label = cat(config, "/", format_double(rate, 0), "j_ms");
      point.workload = core::make_performance_workload(
          {{"pulse_doppler",
            core::period_for_count(frame, count(fractions[0])), 1.0},
           {"range_detection",
            core::period_for_count(frame, count(fractions[1])), 1.0},
           {"wifi_tx", core::period_for_count(frame, count(fractions[2])),
            1.0},
           {"wifi_rx", core::period_for_count(frame, count(fractions[3])),
            1.0}},
          frame, rng);
      point.time_frame = frame;
      point.setup = harness.setup(harness.odroid, config, "FRFS");
      point.setup.options.run_kernels = false;
      points.push_back(std::move(point));
    }
  }

  exp::SweepRun run = exp::run_sweep(points, exp::SweepEnv::from_env());
  const std::vector<exp::SweepResult>& results = run.execution.results;

  std::vector<std::string> headers = {"Config"};
  for (const double rate : rates) {
    headers.push_back(format_double(rate, 0) + " j/ms");
  }
  trace::Table table(std::move(headers));

  // Per-point groups, keyed by label; the grid row reads its cells by key.
  const exp::Aggregation by_point = exp::Aggregation::by(
      results, [](const exp::SweepResult& r) { return r.label; });
  for (const char* config : configs) {
    std::vector<std::string> row = {config};
    for (const double rate : rates) {
      const std::string key = cat(config, "/", format_double(rate, 0), "j_ms");
      const exp::ResultGroup* group = by_point.find(key);
      DSSOC_REQUIRE(group != nullptr,
                    cat("no sweep result labelled \"", key, "\""));
      row.push_back(
          group->ok_count() == 0
              ? "failed"
              : format_double(group->representative().makespan_sec(), 3));
    }
    table.add_row(std::move(row));
  }

  std::cout << "Fig. 11 — Odroid XU3 execution time (s) per configuration "
               "and injection rate (FRFS, performance mode, "
            << window_ms << " ms frame"
            << (bench::full_scale() ? ")" : "; DSSOC_BENCH_FULL=1 for 100 ms)")
            << "\nSweep: " << results.size() << " points on "
            << run.width_phrase() << ", "
            << format_double(run.total_wall_ms, 1) << " ms wall\n\n"
            << table.render() << '\n';
  std::cout << "Paper shape: linear growth in rate; 3BIG+2LTL best; "
               "4BIG+2LTL/4BIG+3LTL slower than 4BIG+1LTL (scheduling "
               "overhead scales with PE count on the LITTLE overlay).\n";
  return run.finish("bench_fig11");
}
