// Shared setup for the paper-reproduction benchmark binaries.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/registry.hpp"
#include "common/strings.hpp"
#include "core/emulation.hpp"
#include "platform/platform.hpp"
#include "trace/report.hpp"

namespace dssoc::bench {

/// Applications + kernels + platform wiring used by every experiment.
struct Harness {
  Harness()
      : zcu102(platform::zcu102()), odroid(platform::odroid_xu3()) {
    apps::register_all_kernels(registry);
    library = apps::default_application_library();
  }

  core::EmulationSetup setup(const platform::Platform& platform,
                             const std::string& config,
                             const std::string& scheduler = "FRFS") const {
    core::EmulationSetup s;
    s.platform = &platform;
    s.soc = platform::parse_config_label(config);
    s.apps = &library;
    s.registry = &registry;
    s.cost_model = platform::default_cost_model();
    s.options.scheduler = scheduler;
    return s;
  }

  platform::Platform zcu102;
  platform::Platform odroid;
  core::SharedObjectRegistry registry;
  core::ApplicationLibrary library;
};

/// True when DSSOC_BENCH_FULL=1: run the paper's full 100 ms injection
/// window instead of the scaled-down default (see EXPERIMENTS.md).
inline bool full_scale() {
  const char* env = std::getenv("DSSOC_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// Table II instance-count rows: per-application counts for a 100 ms frame.
struct TableTwoRow {
  double rate_jobs_per_ms;
  std::size_t pulse_doppler;
  std::size_t range_detection;
  std::size_t wifi_tx;
  std::size_t wifi_rx;
};

inline const TableTwoRow kTableTwo[] = {
    {1.71, 8, 123, 20, 20},   {2.28, 10, 164, 27, 27},
    {3.42, 15, 245, 41, 41},  {4.57, 18, 329, 55, 55},
    {6.92, 32, 495, 82, 83},
};

/// Builds the Table II-style performance-mode workload for one row, with the
/// counts scaled by `scale` (1.0 = the paper's 100 ms frame).
inline core::Workload table_two_workload(const TableTwoRow& row, double scale,
                                         SimTime frame, Rng& rng) {
  auto scaled = [&](std::size_t count) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(count) * scale));
  };
  return core::make_performance_workload(
      {{"pulse_doppler",
        core::period_for_count(frame, scaled(row.pulse_doppler)), 1.0},
       {"range_detection",
        core::period_for_count(frame, scaled(row.range_detection)), 1.0},
       {"wifi_tx", core::period_for_count(frame, scaled(row.wifi_tx)), 1.0},
       {"wifi_rx", core::period_for_count(frame, scaled(row.wifi_rx)), 1.0}},
      frame, rng);
}

}  // namespace dssoc::bench
